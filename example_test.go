package soferr_test

import (
	"context"
	"fmt"
	"log"

	"github.com/soferr/soferr"
)

// ExampleNewSystem compiles the paper's canonical component — a large
// cache on a half-busy daily loop — and queries the industry-standard
// AVF+SOFR estimate.
func ExampleNewSystem() {
	// Vulnerable 12h of every 24h loop: AVF = 0.5.
	tr, err := soferr.BusyIdleTrace(86400, 43200)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := soferr.NewSystem([]soferr.Component{{
		Name: "cache", RatePerYear: 2, Trace: tr,
	}})
	if err != nil {
		log.Fatal(err)
	}
	est, err := sys.MTTF(context.Background(), soferr.AVFSOFR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AVF = %.2f\n", soferr.AVF(tr))
	fmt.Printf("%v MTTF = %.0f days\n", est.Method, est.MTTF/86400)
	// Output:
	// AVF = 0.50
	// avf+sofr MTTF = 365 days
}

// ExampleSystem_Compare shows the paper's central result on one
// compiled System: at accelerated raw error rates the AVF shortcut
// overestimates the true (first-principles) MTTF of a low-duty-cycle
// workload by nearly 1/AVF.
func ExampleSystem_Compare() {
	// Busy 1h per 24h day: AVF ~ 0.042.
	tr, err := soferr.BusyIdleTrace(86400, 3600)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := soferr.NewSystem([]soferr.Component{{
		Name: "cache", RatePerYear: 1e4, Trace: tr, // ~accelerated-test rate
	}})
	if err != nil {
		log.Fatal(err)
	}
	ests, err := sys.Compare(context.Background(), soferr.AVFSOFR, soferr.SoftArch)
	if err != nil {
		log.Fatal(err)
	}
	shortcut, exact := ests[0], ests[1]
	fmt.Printf("avf+sofr says %.0f s, first principles say %.0f s\n",
		shortcut.MTTF, exact.MTTF)
	fmt.Printf("overestimate: %.1fx\n", shortcut.MTTF/exact.MTTF)
	// Output:
	// avf+sofr says 75686 s, first principles say 41997 s
	// overestimate: 1.8x
}

// ExampleSweep evaluates a small design-space grid — duty cycle x raw
// rate — in one call, asking where the AVF shortcut stops being safe.
// At terrestrial rates it is fine everywhere; at accelerated rates its
// error saturates at 1/AVF, exactly as the paper's Figure 3 predicts.
func ExampleSweep() {
	sources, err := soferr.BusyIdleSources(86400, []float64{0.5, 0.05})
	if err != nil {
		log.Fatal(err)
	}
	res, err := soferr.Sweep(context.Background(), soferr.Grid{
		Name:         "duty-vs-rate",
		Sources:      sources,
		RatesPerYear: []float64{10, 1e6},
		Methods:      []soferr.Method{soferr.AVFSOFR, soferr.SoftArch},
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("%-9s rate=%6g/yr  avf+sofr/exact = %.2f\n",
			r.Cell.SourceName, r.Cell.RatePerYear,
			r.Estimates[0].MTTF/r.Estimates[1].MTTF)
	}
	// Output:
	// duty=0.5  rate=    10/yr  avf+sofr/exact = 1.00
	// duty=0.5  rate= 1e+06/yr  avf+sofr/exact = 2.00
	// duty=0.05 rate=    10/yr  avf+sofr/exact = 1.00
	// duty=0.05 rate= 1e+06/yr  avf+sofr/exact = 20.00
}
