# Developer entry points. CI runs the same verify steps (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: all build test vet fmt-check docs race verify bench bench-go serve chaos lint lint-fix-baseline fuzz-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "needs gofmt:"; echo "$$out"; exit 1; fi

# docs mirrors the CI docs job: vet, formatting, and the godoc
# Example tests (which compile every documented snippet).
docs: vet fmt-check
	$(GO) test -run Example .

# race mirrors the CI race job: the Monte-Carlo worker pool first (the
# code most exposed to data races), then everything in short mode.
race:
	$(GO) test -race -short ./internal/montecarlo/...
	$(GO) test -race -short ./...

verify: vet build test

# bench records the Monte-Carlo engine micro-benchmarks in
# BENCH_mc.json, the fused engine's N-scaling and adaptive-precision
# numbers in BENCH_fused.json, the exact engine's closed-form-vs-
# adaptive-sampling comparison in BENCH_exact.json, the sweep engine's
# full-grid speedup in BENCH_sweep.json, and the query server's
# cold-vs-cache-hit request latency in BENCH_serve.json, so the perf
# trajectory is tracked PR over PR. Every report is validated against
# the shared schema (internal/benchfmt) after writing.
bench:
	$(GO) run ./cmd/soferr bench -out BENCH_mc.json -fused-out BENCH_fused.json -exact-out BENCH_exact.json -sweep-out BENCH_sweep.json -serve-out BENCH_serve.json
	$(GO) run ./cmd/soferr bench -validate

# serve runs the MTTF query service locally (POST a Spec to /v1/mttf;
# see README.md, "Serving").
serve:
	$(GO) run ./cmd/soferr serve -addr 127.0.0.1:8080 -v

# chaos mirrors the CI chaos job: the scripted fault-injection suite
# (compile failures, worker panics, eviction storms, cancellation races,
# stream cuts) under the race detector, non-short so nothing skips. See
# DESIGN.md, "Failure model".
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Panic|Injected|Eviction|Readyz|RetryAfter|Resume' ./internal/faultinject/... ./internal/montecarlo/... ./internal/sweep/... ./internal/server/... ./client/...

# lint runs the soferrlint static-contract suite (nondeterminism,
# hotpath, floatprec, allocfree, errcontract, ctxflow, faultpoint,
# gocontain — see DESIGN.md, "Static contracts") over every package via
# the go vet -vettool protocol, then the compiler-verified escape
# baseline diff (`soferrlint escape`). Editors can run the same binary:
# go vet -vettool=$$(which soferrlint).
lint:
	$(GO) build -o bin/soferrlint ./cmd/soferrlint
	$(GO) vet -vettool=bin/soferrlint ./...
	bin/soferrlint escape

# lint-fix-baseline deliberately regenerates the hotpath escape
# baseline from fresh compiler output, preserving per-entry comments
# for entries that survive. Review the diff before committing: every
# new line is a heap allocation in a trial kernel.
lint-fix-baseline:
	$(GO) build -o bin/soferrlint ./cmd/soferrlint
	bin/soferrlint escape -update

# fuzz-smoke gives each native fuzz target a short budget on top of its
# committed seed corpus (testdata/fuzz). CI runs the same step; longer
# local sessions: go test -fuzz FuzzSpecDecode -fuzztime 5m .
fuzz-smoke:
	$(GO) test -run FuzzSpecDecode -fuzz FuzzSpecDecode -fuzztime 15s .
	$(GO) test -run FuzzExactEngine -fuzz FuzzExactEngine -fuzztime 15s .
	$(GO) test -run FuzzMergedExposure -fuzz FuzzMergedExposure -fuzztime 15s ./internal/trace
	$(GO) test -run FuzzBatchedInversion -fuzz FuzzBatchedInversion -fuzztime 15s ./internal/trace

# bench-go runs the full go-test benchmark suite (experiments +
# substrates) without writing the JSON report.
bench-go:
	$(GO) test -run='^$$' -bench=. -benchmem .

clean:
	$(GO) clean ./...
