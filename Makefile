# Developer entry points. CI runs the same verify steps (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: all build test vet race verify bench bench-go clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race mirrors the CI race job: the Monte-Carlo worker pool first (the
# code most exposed to data races), then everything in short mode.
race:
	$(GO) test -race -short ./internal/montecarlo/...
	$(GO) test -race -short ./...

verify: vet build test

# bench records the Monte-Carlo engine micro-benchmarks in
# BENCH_mc.json so the perf trajectory is tracked PR over PR.
bench:
	$(GO) run ./cmd/soferr bench -out BENCH_mc.json

# bench-go runs the full go-test benchmark suite (experiments +
# substrates) without writing the JSON report.
bench-go:
	$(GO) test -run='^$$' -bench=. -benchmem .

clean:
	$(GO) clean ./...
