package soferr_test

import (
	"math"
	"testing"

	"github.com/soferr/soferr"
)

const yearSeconds = 365 * 86400.0

func TestBusyIdleTraceAVF(t *testing.T) {
	tr, err := soferr.BusyIdleTrace(86400, 43200)
	if err != nil {
		t.Fatal(err)
	}
	if got := soferr.AVF(tr); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AVF = %v, want 0.5", got)
	}
}

func TestAVFMTTFMatchesEquationOne(t *testing.T) {
	tr, err := soferr.BusyIdleTrace(100, 25)
	if err != nil {
		t.Fatal(err)
	}
	got, err := soferr.AVFMTTF(4 /* errors/year */, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := yearSeconds // 1/(4 x 0.25) years
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("AVF MTTF = %v s, want %v s", got, want)
	}
}

func TestEstimatorsAgreeWhereAVFIsValid(t *testing.T) {
	// Small rate x period: AVF, Monte Carlo, and SoftArch all agree.
	tr, err := soferr.BusyIdleTrace(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	comp := soferr.Component{Name: "c", RatePerYear: 1000, Trace: tr}
	avfEst, err := soferr.AVFMTTF(comp.RatePerYear, tr)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := soferr.SoftArchMTTF([]soferr.Component{comp})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := soferr.MonteCarloMTTF([]soferr.Component{comp}, soferr.MonteCarloOptions{Trials: 60000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avfEst-exact)/exact > 1e-3 {
		t.Errorf("AVF %v vs exact %v", avfEst, exact)
	}
	if math.Abs(mc.MTTF-exact)/exact > 0.02 {
		t.Errorf("MC %v vs exact %v", mc.MTTF, exact)
	}
}

func TestAVFBreaksAtHighRate(t *testing.T) {
	// The paper's core claim: with large rate x L, the AVF estimate
	// diverges from first principles.
	day, err := soferr.DayWorkload()
	if err != nil {
		t.Fatal(err)
	}
	const rate = 1e4 // errors/year: deep in the broken regime
	avfEst, err := soferr.AVFMTTF(rate, day)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := soferr.SoftArchMTTF([]soferr.Component{{Name: "p", RatePerYear: rate, Trace: day}})
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(avfEst-exact) / exact
	if relErr < 0.5 {
		t.Errorf("AVF error = %v, expected large divergence at high rate", relErr)
	}
	// And the closed form agrees with SoftArch.
	closed, err := soferr.BusyIdleMTTF(rate, 86400, 43200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(closed-exact)/exact > 1e-9 {
		t.Errorf("closed form %v vs SoftArch %v", closed, exact)
	}
}

func TestSOFRMTTF(t *testing.T) {
	got, err := soferr.SOFRMTTF([]float64{100, 100, 50})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (1.0/100 + 1.0/100 + 1.0/50)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SOFR = %v, want %v", got, want)
	}
}

func TestFigureAnchors(t *testing.T) {
	// Fig 3 anchor: baseline cache error small at L=1 day.
	e, err := soferr.BusyIdleAVFError(10, 86400, 43200)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.01 {
		t.Errorf("Fig3 baseline error = %v, want tiny", e)
	}
	// Fig 4 anchors.
	e2, err := soferr.SeriesHalfGaussianSOFRError(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2-0.15) > 0.03 {
		t.Errorf("Fig4 N=2 error = %v, want ~0.15", e2)
	}
}

func TestWorkloads(t *testing.T) {
	day, err := soferr.DayWorkload()
	if err != nil {
		t.Fatal(err)
	}
	week, err := soferr.WeekWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if day.Period() != 86400 || week.Period() != 7*86400 {
		t.Error("workload periods wrong")
	}
	if math.Abs(week.AVF()-5.0/7.0) > 1e-12 {
		t.Errorf("week AVF = %v", week.AVF())
	}
}

func TestSimulateBenchmarkAndCombined(t *testing.T) {
	if len(soferr.Benchmarks()) != 21 {
		t.Fatalf("Benchmarks() = %d names, want 21", len(soferr.Benchmarks()))
	}
	gzip, err := soferr.SimulateBenchmark("gzip", 30000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gzip.IPC() <= 0 {
		t.Errorf("IPC = %v", gzip.IPC())
	}
	if gzip.Int.AVF() <= 0 {
		t.Error("gzip integer AVF should be positive")
	}
	swim, err := soferr.SimulateBenchmark("swim", 30000, 1)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := soferr.CombinedWorkload(gzip.Int, swim.Int)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(combined.Period()-86400) > 1 {
		t.Errorf("combined period = %v", combined.Period())
	}
	wantAVF := (gzip.Int.AVF() + swim.Int.AVF()) / 2
	if math.Abs(combined.AVF()-wantAVF) > 0.02 {
		t.Errorf("combined AVF = %v, want ~%v", combined.AVF(), wantAVF)
	}
}

func TestUnionTrace(t *testing.T) {
	gzip, err := soferr.SimulateBenchmark("gzip", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	union, err := soferr.UnionTrace([]soferr.Component{
		{Name: "int", RatePerYear: 2.3e-6, Trace: gzip.Int},
		{Name: "fp", RatePerYear: 4.5e-6, Trace: gzip.FP},
		{Name: "decode", RatePerYear: 3.3e-6, Trace: gzip.Decode},
	})
	if err != nil {
		t.Fatal(err)
	}
	if union.RatePerYear != 2.3e-6+4.5e-6+3.3e-6 {
		t.Errorf("union rate = %v", union.RatePerYear)
	}
	if a := union.Trace.AVF(); a < 0 || a > 1 {
		t.Errorf("union AVF = %v", a)
	}

	// The union must preserve the system MTTF (superposition):
	// SoftArch on the three components == SoftArch on the union.
	multi, err := soferr.SoftArchMTTF([]soferr.Component{
		{Name: "int", RatePerYear: 2.3e-6, Trace: gzip.Int},
		{Name: "fp", RatePerYear: 4.5e-6, Trace: gzip.FP},
		{Name: "decode", RatePerYear: 3.3e-6, Trace: gzip.Decode},
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := soferr.SoftArchMTTF([]soferr.Component{union})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(multi-single)/single > 1e-9 {
		t.Errorf("union changed MTTF: %v vs %v", multi, single)
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := soferr.AVFMTTF(1, nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := soferr.UnionTrace(nil); err == nil {
		t.Error("empty union accepted")
	}
	if _, err := soferr.SimulateBenchmark("nope", 100, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := soferr.SoftArchMTTF([]soferr.Component{{Name: "x"}}); err == nil {
		t.Error("nil trace component accepted")
	}
	day, err := soferr.DayWorkload()
	if err != nil {
		t.Fatal(err)
	}
	gzip, err := soferr.SimulateBenchmark("gzip", 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := soferr.CombinedWorkload(day, gzip.Int); err == nil {
		t.Error("over-long combined phase accepted")
	}
}

func TestMonteCarloEngines(t *testing.T) {
	// The public Engine option must select working engines whose
	// estimates agree within combined Monte-Carlo noise.
	tr, err := soferr.BusyIdleTrace(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	comps := []soferr.Component{{Name: "c", RatePerYear: 3e6, Trace: tr}}
	var results []soferr.MonteCarloResult
	for _, e := range []soferr.Engine{soferr.Superposed, soferr.Naive, soferr.Inverted} {
		res, err := soferr.MonteCarloMTTF(comps, soferr.MonteCarloOptions{
			Trials: 60000, Seed: 5 + uint64(e), Engine: e,
		})
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		if res.MTTF <= 0 || res.StdErr <= 0 {
			t.Fatalf("engine %v: degenerate result %+v", e, res)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		diff := math.Abs(results[i].MTTF - results[0].MTTF)
		bound := 3 * math.Hypot(results[i].StdErr, results[0].StdErr)
		if diff > bound {
			t.Errorf("engines disagree: %v vs %v (diff %v > %v)",
				results[i].MTTF, results[0].MTTF, diff, bound)
		}
	}
}
