// Command soferrlint runs the soferr static-contract analyzers
// (nondeterminism, hotpath, errcontract, ctxflow, faultpoint — see
// DESIGN.md, "Static contracts") over Go packages.
//
// Two modes share one binary:
//
//	soferrlint ./...
//	    Standalone. The command re-executes itself through the go
//	    tool ("go vet -vettool=<self> <patterns>"), which loads,
//	    type-checks, and caches packages, then exits with go vet's
//	    status. Default pattern: ./...
//
//	go vet -vettool=$(which soferrlint) ./...
//	    Unitchecker protocol, driven by the go command directly; this
//	    is what editors and gopls-compatible tooling invoke, and what
//	    CI runs. Single analyzers can be selected the usual way:
//	    go vet -vettool=... -nondeterminism ./...
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/soferr/soferr/internal/lint"
)

func main() {
	args := os.Args[1:]
	if unitcheckerInvocation(args) {
		unitchecker.Main(lint.Suite()...) // never returns
	}
	os.Exit(standalone(args))
}

// unitcheckerInvocation reports whether the go command is driving this
// process with the vet tool protocol: a -V=full version probe, a
// -flags schema probe, or a unit *.cfg argument.
func unitcheckerInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// standalone re-executes the suite through go vet so the go command
// does the package loading. Flags (e.g. -nondeterminism) pass through
// ahead of the patterns.
func standalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "soferrlint: cannot locate own executable: %v\n", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "soferrlint: %v\n", err)
		return 2
	}
	return 0
}
