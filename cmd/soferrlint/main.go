// Command soferrlint runs the soferr static-contract analyzers
// (nondeterminism, hotpath, floatprec, allocfree, errcontract,
// ctxflow, faultpoint, gocontain — see DESIGN.md, "Static contracts")
// over Go packages.
//
// Three modes share one binary:
//
//	soferrlint ./...
//	    Standalone. The command re-executes itself through the go
//	    tool ("go vet -vettool=<self> <patterns>"), which loads,
//	    type-checks, and caches packages, then exits with go vet's
//	    status. Default pattern: ./...
//
//	go vet -vettool=$(which soferrlint) ./...
//	    Unitchecker protocol, driven by the go command directly; this
//	    is what editors and gopls-compatible tooling invoke, and what
//	    CI runs. Single analyzers can be selected the usual way:
//	    go vet -vettool=... -nondeterminism ./...
//
//	soferrlint escape [-update] [-C dir]
//	    Compiler-verified escape baseline: runs go build with
//	    -gcflags='-m -m' over the module, attributes "escapes to
//	    heap" / "moved to heap" diagnostics to //soferr:hotpath
//	    functions, and diffs them against the committed baseline
//	    (internal/lint/escape/testdata/escape_baseline.txt). -update
//	    regenerates the baseline deliberately; -C selects the module
//	    root (default ".").
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/soferr/soferr/internal/lint"
	"github.com/soferr/soferr/internal/lint/escape"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "escape" {
		os.Exit(escapeMode(args[1:]))
	}
	if unitcheckerInvocation(args) {
		unitchecker.Main(lint.Suite()...) // never returns
	}
	os.Exit(standalone(args))
}

// escapeMode runs the escape-baseline driver (see internal/lint/escape).
func escapeMode(args []string) int {
	fs := flag.NewFlagSet("soferrlint escape", flag.ContinueOnError)
	update := fs.Bool("update", false, "regenerate the committed baseline instead of diffing against it")
	dir := fs.String("C", ".", "module root to analyze")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "soferrlint escape: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	return escape.Main(*dir, *update, os.Stdout, os.Stderr)
}

// unitcheckerInvocation reports whether the go command is driving this
// process with the vet tool protocol: a -V=full version probe, a
// -flags schema probe, or a unit *.cfg argument.
func unitcheckerInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// standalone re-executes the suite through go vet so the go command
// does the package loading. Flags (e.g. -nondeterminism) pass through
// ahead of the patterns.
func standalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "soferrlint: cannot locate own executable: %v\n", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "soferrlint: %v\n", err)
		return 2
	}
	return 0
}
