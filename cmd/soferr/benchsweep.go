package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"github.com/soferr/soferr"
)

// sweepBenchReport is the schema of BENCH_sweep.json: the full-grid
// cost of the sweep engine vs the same grid evaluated as independent
// per-cell NewSystem calls, recorded PR over PR like BENCH_mc.json.
type sweepBenchReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// Grid shape: a rates x counts cross product whose effective-rate
	// products overlap heavily, so the shared-compilation dedup has
	// real work to do.
	Sources       int `json:"sources"`
	Rates         int `json:"rates"`
	Counts        int `json:"counts"`
	Cells         int `json:"cells"`
	UniqueSystems int `json:"unique_systems"`
	// NsPerGrid is the wall time of one full-grid evaluation.
	SweepNsPerGrid   float64 `json:"sweep_ns_per_grid"`
	Sweep1NsPerGrid  float64 `json:"sweep_workers1_ns_per_grid"`
	FlatNsPerGrid    float64 `json:"flat_ns_per_grid"`
	SpeedupShared    float64 `json:"speedup_shared_compilation"` // flat / sweep(workers=1)
	SpeedupTotal     float64 `json:"speedup_total"`              // flat / sweep(default workers)
	TraceSegments    int     `json:"trace_segments"`
	MethodsPerCell   int     `json:"methods_per_cell"`
	DeterministicFit bool    `json:"deterministic_methods_only"`
}

// runSweepBench measures the sweep engine's shared-compilation win on a
// dedup-heavy grid: geometric rate and count axes make most
// (rate x count) products coincide, so the engine compiles 15 unique
// systems where the flat path builds one System per cell (64) and pays
// the O(segments) SoftArch survival integral each time. Methods are
// deterministic (AVF+SOFR and SoftArch) so the recorded speedup
// measures the engine, not Monte-Carlo sampling noise.
func runSweepBench(ctx context.Context, stdout, stderr io.Writer, outPath string, verbose bool) error {
	logf := func(format string, args ...interface{}) {
		if verbose {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	// A simulator-derived trace with enough segments that per-system
	// precomputation is the measurable cost (the regime the engine
	// exists for; synthetic two-segment traces would understate it).
	logf("simulating gzip for the sweep-bench trace")
	simRes, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		return err
	}
	type segmented interface{ NumSegments() int }
	segs := 0
	if s, ok := simRes.Int.(segmented); ok {
		segs = s.NumSegments()
	}

	rates := make([]float64, 8)
	for i := range rates {
		rates[i] = 1e3 * float64(uint64(1)<<i) // 1e3 .. 1.28e5 errors/year
	}
	counts := make([]int, 8)
	for i := range counts {
		counts[i] = 1 << i // 1 .. 128
	}
	methods := []soferr.Method{soferr.AVFSOFR, soferr.SoftArch}
	grid := soferr.Grid{
		Name:         "bench-dedup",
		Sources:      []soferr.TraceSource{{Name: "gzip-int", Trace: simRes.Int}},
		RatesPerYear: rates,
		Counts:       counts,
		Methods:      methods,
		Seed:         1,
	}
	cells, err := grid.Cells()
	if err != nil {
		return err
	}
	unique := make(map[float64]bool)
	for _, c := range cells {
		unique[c.EffectiveRatePerYear()] = true
	}

	bench := func(name string, f func() error) (float64, error) {
		logf("bench %s", name)
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return 0, fmt.Errorf("bench %s: %w", name, benchErr)
		}
		if r.N == 0 {
			return 0, fmt.Errorf("bench %s: no iterations", name)
		}
		return float64(r.T.Nanoseconds()) / float64(r.N), nil
	}

	sweepGrid := func(workers int) func() error {
		return func() error {
			_, err := soferr.Sweep(ctx, grid, soferr.WithWorkers(workers))
			return err
		}
	}
	// The baseline the engine replaces: one independent NewSystem per
	// cell (no sharing across cells or methods), queried sequentially —
	// exactly what exp_space.go hand-rolled before the engine existed.
	flatGrid := func() error {
		for _, c := range cells {
			sys, err := soferr.NewSystem([]soferr.Component{{
				Name:        c.SourceName,
				RatePerYear: c.RatePerYear * float64(c.Count),
				Trace:       simRes.Int,
			}})
			if err != nil {
				return err
			}
			if _, err := sys.CompareWith(ctx,
				[]soferr.EstimateOption{soferr.WithSeed(c.Seed)}, methods...); err != nil {
				return err
			}
		}
		return nil
	}

	sweepNs, err := bench("SweepGrid/default-workers", sweepGrid(0))
	if err != nil {
		return err
	}
	sweep1Ns, err := bench("SweepGrid/workers=1", sweepGrid(1))
	if err != nil {
		return err
	}
	flatNs, err := bench("FlatGrid/per-cell-NewSystem", flatGrid)
	if err != nil {
		return err
	}

	report := sweepBenchReport{
		GoVersion:        runtime.Version(),
		GOARCH:           runtime.GOARCH,
		Sources:          len(grid.Sources),
		Rates:            len(rates),
		Counts:           len(counts),
		Cells:            len(cells),
		UniqueSystems:    len(unique),
		SweepNsPerGrid:   sweepNs,
		Sweep1NsPerGrid:  sweep1Ns,
		FlatNsPerGrid:    flatNs,
		SpeedupShared:    flatNs / sweep1Ns,
		SpeedupTotal:     flatNs / sweepNs,
		TraceSegments:    segs,
		MethodsPerCell:   len(methods),
		DeterministicFit: true,
	}
	fmt.Fprintf(stdout, "%-28s %14.0f ns/grid\n", "SweepGrid/default", sweepNs)
	fmt.Fprintf(stdout, "%-28s %14.0f ns/grid\n", "SweepGrid/workers=1", sweep1Ns)
	fmt.Fprintf(stdout, "%-28s %14.0f ns/grid\n", "FlatGrid/per-cell", flatNs)
	fmt.Fprintf(stdout, "sweep is %.1fx faster than per-cell NewSystem calls (%.1fx single-threaded; %d cells -> %d systems)\n",
		report.SpeedupTotal, report.SpeedupShared, report.Cells, report.UniqueSystems)

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", outPath)
	}
	return nil
}
