package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/client"
	"github.com/soferr/soferr/internal/design"
)

// runSweep implements the `soferr sweep` subcommand: build a design-
// space grid from the axis flags, evaluate it on the sweep engine, and
// stream the results as text, CSV, or JSON. The Section 5 experiment
// tables run on the same engine (`soferr run fig5 ...`); this command
// is the free-form counterpart for user-defined grids.
func runSweep(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloads    = fs.String("workloads", "", "schedule sources: comma-separated day,week,combined")
		duty         = fs.String("duty", "", "duty-cycle sources: comma-separated busy fractions in [0,1] over -period")
		period       = fs.Float64("period", 86400, "loop period in seconds for -duty sources")
		bench        = fs.String("bench", "", "benchmark sources: comma-separated names (simulated; see 'soferr workloads')")
		ns           = fs.String("ns", "", "N x S axis: comma-separated element x scale products (rate = NxS x 1e-8/yr)")
		rates        = fs.String("rates", "", "raw-rate axis in errors/year (alternative or addition to -ns)")
		counts       = fs.String("counts", "1", "component-count axis C")
		methods      = fs.String("methods", "", "estimator axis: comma-separated avf+sofr,montecarlo,softarch (default all)")
		trials       = fs.Int("trials", 0, "Monte-Carlo trials per cell (0 = default)")
		seed         = fs.Uint64("seed", 1, "base seed; per-cell streams derive from (seed, cell index)")
		engineName   = fs.String("engine", "", "Monte-Carlo engine: fused, inverted, superposed, or naive")
		samplerName  = fs.String("sampler", "", "Monte-Carlo sampler: pcg (default) or sobol")
		targetRSE    = fs.Float64("target-rse", 0, "adaptive precision target per cell (relative standard error; -trials becomes the cap)")
		workers      = fs.Int("workers", 0, "total sweep parallelism (0 = GOMAXPROCS)")
		instructions = fs.Int("instructions", 0, "instructions per simulated benchmark source (0 = default)")
		asCSV        = fs.Bool("csv", false, "emit CSV instead of text")
		asJSON       = fs.Bool("json", false, "emit JSON instead of text")
		verbose      = fs.Bool("v", false, "log progress to stderr")
		serverURL    = fs.String("server", "", "evaluate on a running `soferr serve` instance (base URL) instead of in-process")
		cursor       = fs.Int64("cursor", 0, "with -server: resume the sweep from this absolute cell index")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asCSV && *asJSON {
		return fmt.Errorf("sweep: -csv and -json are mutually exclusive")
	}

	// Axis flags lower onto declarative SourceSpecs, compiled through
	// the same soferr.Compiler path that serves file- and HTTP-supplied
	// Specs (`soferr run spec.json`, `soferr serve`), so every entry
	// point builds identical traces. Sources are lazy: nothing simulates
	// unless its axis point is actually swept, and benchmark simulations
	// are shared compiler-wide.
	comp := &soferr.Compiler{Instructions: *instructions, SimSeed: *seed}
	if *verbose {
		comp.Log = stderr
	}

	var srcSpecs []soferr.SourceSpec
	for _, w := range splitList(*workloads) {
		switch w {
		case "day", "week", "combined":
			srcSpecs = append(srcSpecs, soferr.SourceSpec{Name: w, Trace: soferr.TraceSpec{Kind: w}})
		default:
			return fmt.Errorf("sweep: unknown workload %q (want day, week, or combined)", w)
		}
	}
	if *duty != "" {
		duties, err := parseFloats(*duty)
		if err != nil {
			return fmt.Errorf("sweep: -duty: %w", err)
		}
		ds, err := soferr.BusyIdleSourceSpecs(*period, duties)
		if err != nil {
			return err
		}
		srcSpecs = append(srcSpecs, ds...)
	}
	for _, b := range splitList(*bench) {
		srcSpecs = append(srcSpecs, soferr.SourceSpec{
			Name:  b,
			Trace: soferr.TraceSpec{Kind: soferr.TraceKindBenchmark, Benchmark: b},
		})
	}
	if len(srcSpecs) == 0 {
		return fmt.Errorf("sweep: no sources (give -workloads, -duty, and/or -bench)")
	}
	for _, sp := range srcSpecs {
		if err := sp.Trace.Validate(); err != nil {
			return fmt.Errorf("sweep: source %s: %w", sp.Name, err)
		}
	}
	sources := comp.Sources(srcSpecs)

	var ratesPerYear []float64
	if *ns != "" {
		nsVals, err := parseFloats(*ns)
		if err != nil {
			return fmt.Errorf("sweep: -ns: %w", err)
		}
		for _, v := range nsVals {
			ratesPerYear = append(ratesPerYear, design.RatePerYear(v, 1))
		}
	}
	if *rates != "" {
		rs, err := parseFloats(*rates)
		if err != nil {
			return fmt.Errorf("sweep: -rates: %w", err)
		}
		ratesPerYear = append(ratesPerYear, rs...)
	}
	if len(ratesPerYear) == 0 {
		return fmt.Errorf("sweep: no rates (give -ns and/or -rates)")
	}

	countAxis, err := parseInts(*counts)
	if err != nil {
		return fmt.Errorf("sweep: -counts: %w", err)
	}

	var methodAxis []soferr.Method
	for _, m := range splitList(*methods) {
		mm, err := soferr.MethodByName(m)
		if err != nil {
			return err
		}
		methodAxis = append(methodAxis, mm)
	}
	if len(methodAxis) == 0 {
		methodAxis = soferr.Methods()
	}

	opts := []soferr.EstimateOption{soferr.WithWorkers(*workers)}
	if *trials > 0 {
		opts = append(opts, soferr.WithTrials(*trials))
	}
	// Zero means "no adaptive mode"; anything else (including a
	// sign-typo negative) goes through so the query layer can reject
	// out-of-domain targets instead of silently running fixed trials.
	if *targetRSE != 0 {
		opts = append(opts, soferr.WithTargetRelStdErr(*targetRSE))
	}
	if *engineName != "" {
		engine, err := soferr.EngineByName(*engineName)
		if err != nil {
			return err
		}
		opts = append(opts, soferr.WithEngine(engine))
	}
	sampler, err := soferr.SamplerByName(*samplerName)
	if err != nil {
		return err
	}
	opts = append(opts, soferr.WithSampler(sampler))

	if *cursor != 0 && *serverURL == "" {
		return fmt.Errorf("sweep: -cursor requires -server (local sweeps always run whole)")
	}

	// JSON collects (one valid document); text and CSV stream rows as
	// cells complete, which both the engine and the server's NDJSON
	// stream deliver in cell order. render handles one cell for all
	// three formats, shared by the local and -server paths.
	var jsonResults []soferr.CellResult
	var cw *csv.Writer
	switch {
	case *asJSON:
	case *asCSV:
		cw = csv.NewWriter(stdout)
		if err := cw.Write([]string{
			"source", "rate_per_year", "count", "seed",
			"method", "mttf_seconds", "fit", "stderr_seconds", "rel_stderr",
		}); err != nil {
			return err
		}
	default:
		fmt.Fprintf(stdout, "%-14s %12s %8s  %-10s %14s %12s %10s\n",
			"source", "rate/yr", "C", "method", "MTTF (s)", "FIT", "rel err")
	}
	render := func(res soferr.CellResult) error {
		switch {
		case *asJSON:
			jsonResults = append(jsonResults, res)
		case *asCSV:
			for _, e := range res.Estimates {
				if err := cw.Write([]string{
					res.Cell.SourceName,
					formatG(res.Cell.RatePerYear),
					strconv.Itoa(res.Cell.Count),
					strconv.FormatUint(res.Cell.Seed, 10),
					e.Method.String(),
					formatG(e.MTTF),
					formatG(e.FIT),
					formatG(e.StdErr),
					formatG(e.RelStdErr()),
				}); err != nil {
					return err
				}
			}
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
		default:
			for _, e := range res.Estimates {
				fmt.Fprintf(stdout, "%-14s %12.4g %8d  %-10s %14.6g %12.4g %9.2f%%\n",
					res.Cell.SourceName, res.Cell.RatePerYear, res.Cell.Count,
					e.Method.String(), e.MTTF, e.FIT, 100*e.RelStdErr())
			}
		}
		return nil
	}
	finish := func() error {
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(struct {
				Name  string              `json:"name"`
				Cells []soferr.CellResult `json:"cells"`
			}{"sweep", jsonResults})
		}
		return nil
	}

	if *serverURL != "" {
		// Client mode: stream the same grid from a running server over
		// NDJSON. The server derives per-cell seeds from absolute grid
		// indices, so the answers are bit-identical to the local path,
		// and a cut stream resumes automatically (or manually via
		// -cursor) without changing them.
		if *instructions != 0 {
			fmt.Fprintln(stderr, "sweep: -instructions is ignored with -server (the server bounds simulation itself)")
		}
		req := client.SweepRequest{
			Name:            "sweep",
			Sources:         srcSpecs,
			RatesPerYear:    ratesPerYear,
			Counts:          countAxis,
			Methods:         splitList(*methods),
			Seed:            *seed,
			Trials:          *trials,
			Engine:          *engineName,
			TargetRelStdErr: *targetRSE,
			Workers:         *workers,
			Cursor:          *cursor,
		}
		c := client.New(client.Config{BaseURL: *serverURL})
		err := c.SweepStream(ctx, req, func(sc client.SweepCell) error {
			if sc.Err != "" {
				return fmt.Errorf("sweep: cell %d (%s): %s", sc.Cell.Index, sc.Cell.SourceName, sc.Err)
			}
			return render(soferr.CellResult{Cell: sc.Cell, Estimates: sc.Estimates})
		})
		if err != nil {
			return err
		}
		return finish()
	}

	grid := soferr.Grid{
		Name:         "sweep",
		Sources:      sources,
		RatesPerYear: ratesPerYear,
		Counts:       countAxis,
		Methods:      methodAxis,
		Seed:         *seed,
	}
	cells, err := grid.Cells()
	if err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintf(stderr, "sweep: %d sources x %d rates x %d counts = %d cells, %d methods each\n",
			len(sources), len(ratesPerYear), len(countAxis), len(cells), len(methodAxis))
	}

	// Cancel on any early return (cell error, write error) so the
	// worker pool and reorder goroutine wind down instead of leaking —
	// SweepStream's channel must be drained or its context cancelled.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := soferr.SweepStream(ctx, grid, opts...)
	if err != nil {
		return err
	}
	done := 0
	for res := range ch {
		if res.Err != nil {
			return res.Err
		}
		done++
		if err := render(res); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if done != len(cells) {
		return fmt.Errorf("sweep: delivered %d of %d cells", done, len(cells))
	}
	return finish()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func formatG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
