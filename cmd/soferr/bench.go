package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

// benchEntry is one recorded micro-benchmark measurement.
type benchEntry struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchReport is the schema of BENCH_mc.json: the Monte-Carlo substrate
// micro-benchmarks per engine, plus the headline speedups, so the perf
// trajectory is recorded alongside the code from PR 1 onward.
type benchReport struct {
	GoVersion  string             `json:"go_version"`
	GOARCH     string             `json:"goarch"`
	Benchmarks []benchEntry       `json:"benchmarks"`
	Speedup    map[string]float64 `json:"speedup_inverted_vs_superposed"`
	// SpeedupSystem records the repeated-query speedup of a compiled
	// soferr.System over N independent flat MonteCarloMTTF calls at
	// identical settings (the build-once/query-forever headline).
	SpeedupSystem map[string]float64 `json:"speedup_system_vs_flat,omitempty"`
}

// runBench measures Monte-Carlo trial cost per engine on the two
// workloads the acceptance benchmarks use — the day schedule
// (BenchmarkMonteCarloTrials) and a simulator-derived SPEC trace
// (BenchmarkMonteCarloSPECTrace) — plus the compiled-System
// repeated-query path, and writes the JSON report.
func runBench(ctx context.Context, stdout, stderr io.Writer, outPath string, verbose bool) error {
	logf := func(format string, args ...interface{}) {
		if verbose {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	// Low-duty-cycle loop (busy 1h per 24h day, AVF ~ 0.04): the
	// low-AVF regime where arrival-enumerating engines reject ~1/AVF
	// raw arrivals per trial. Mirrors BenchmarkMonteCarloTrials.
	batch, err := trace.BusyIdle(24*3600, 3600)
	if err != nil {
		return err
	}

	// The same trace BenchmarkMonteCarloSPECTrace measures, built
	// through the same public entry point.
	logf("simulating gzip for the SPEC trace")
	simRes, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		return err
	}

	cases := []struct {
		name string
		comp montecarlo.Component
	}{
		{"MonteCarloTrials", montecarlo.Component{
			Name: "batch", Rate: 1e-4, Trace: batch,
		}},
		{"MonteCarloSPECTrace", montecarlo.Component{
			Name: "int", Rate: units.PerYearToPerSecond(1e6), Trace: simRes.Int,
		}},
	}
	engines := []montecarlo.Engine{montecarlo.Superposed, montecarlo.Naive, montecarlo.Inverted}

	report := benchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Speedup:   make(map[string]float64),
	}
	nsPerOp := make(map[string]map[string]float64)
	for _, c := range cases {
		nsPerOp[c.name] = make(map[string]float64)
		for _, e := range engines {
			comp, engine := c.comp, e
			logf("bench %s/%s", c.name, e)
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				if _, err := montecarlo.ComponentMTTF(ctx, comp, montecarlo.Config{
					Trials: b.N, Seed: 1, Engine: engine,
				}); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			})
			// b.Fatal aborts the benchmark goroutine and Benchmark
			// returns a zero-N result; surface the failure instead of
			// recording Inf/NaN.
			if benchErr != nil {
				return fmt.Errorf("bench %s/%s: %w", c.name, engine, benchErr)
			}
			if r.N == 0 {
				return fmt.Errorf("bench %s/%s: benchmark produced no iterations", c.name, engine)
			}
			entry := benchEntry{
				Name:        c.name,
				Engine:      e.String(),
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			}
			report.Benchmarks = append(report.Benchmarks, entry)
			nsPerOp[c.name][e.String()] = entry.NsPerOp
			fmt.Fprintf(stdout, "%-22s %-11s %14.1f ns/op %6d B/op %4d allocs/op\n",
				c.name, e.String(), entry.NsPerOp, entry.BytesPerOp, entry.AllocsPerOp)
		}
		report.Speedup[c.name] = nsPerOp[c.name]["superposed"] / nsPerOp[c.name]["inverted"]
		fmt.Fprintf(stdout, "%-22s inverted is %.1fx faster than superposed\n",
			c.name, report.Speedup[c.name])
	}

	// Repeated-query benchmark: one compiled System answering the same
	// Monte-Carlo query N times vs N flat MonteCarloMTTF calls.
	report.SpeedupSystem = make(map[string]float64)
	{
		const trials = 20000
		comps := []soferr.Component{{
			Name: "batch", RatePerYear: units.PerSecondToPerYear(1e-4), Trace: batch,
		}}
		sys, err := soferr.NewSystem(comps)
		if err != nil {
			return err
		}
		opts := []soferr.EstimateOption{
			soferr.WithTrials(trials), soferr.WithSeed(1), soferr.WithEngine(soferr.Inverted),
		}
		logf("bench RepeatedMonteCarloQuery/system")
		var queryErr error
		rSys := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.MTTF(ctx, soferr.MonteCarlo, opts...); err != nil {
					queryErr = err
					b.Fatal(err)
				}
			}
		})
		if queryErr != nil {
			return fmt.Errorf("bench RepeatedMonteCarloQuery/system: %w", queryErr)
		}
		logf("bench RepeatedMonteCarloQuery/flat")
		rFlat := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := soferr.MonteCarloMTTF(comps, soferr.MonteCarloOptions{
					Trials: trials, Seed: 1, Engine: soferr.Inverted,
				}); err != nil {
					queryErr = err
					b.Fatal(err)
				}
			}
		})
		if queryErr != nil {
			return fmt.Errorf("bench RepeatedMonteCarloQuery/flat: %w", queryErr)
		}
		if rSys.N == 0 || rFlat.N == 0 {
			return fmt.Errorf("bench RepeatedMonteCarloQuery: benchmark produced no iterations")
		}
		sysNs := float64(rSys.T.Nanoseconds()) / float64(rSys.N)
		flatNs := float64(rFlat.T.Nanoseconds()) / float64(rFlat.N)
		for _, entry := range []struct {
			name string
			ns   float64
			res  testing.BenchmarkResult
		}{{"system", sysNs, rSys}, {"flat", flatNs, rFlat}} {
			report.Benchmarks = append(report.Benchmarks, benchEntry{
				Name: "RepeatedMonteCarloQuery", Engine: entry.name, NsPerOp: entry.ns,
				Iterations:  entry.res.N,
				AllocsPerOp: entry.res.AllocsPerOp(),
				BytesPerOp:  entry.res.AllocedBytesPerOp(),
			})
			fmt.Fprintf(stdout, "%-22s %-11s %14.1f ns/op\n", "RepeatedMCQuery", entry.name, entry.ns)
		}
		report.SpeedupSystem["RepeatedMonteCarloQuery"] = flatNs / sysNs
		fmt.Fprintf(stdout, "%-22s compiled System is %.0fx faster than flat calls\n",
			"RepeatedMCQuery", report.SpeedupSystem["RepeatedMonteCarloQuery"])
	}

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", outPath)
	}
	return nil
}
