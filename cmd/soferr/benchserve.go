package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/server"
)

// serveBenchReport is the schema of BENCH_serve.json: end-to-end
// request latency through the query server, cold (the request compiles
// its Spec) versus cache-hit (the Spec's System — and, for repeated
// identical queries, the answer itself — is already compiled), recorded
// PR over PR like BENCH_mc.json.
type serveBenchReport struct {
	GoVersion string              `json:"go_version"`
	GOARCH    string              `json:"goarch"`
	Profiles  []serveBenchProfile `json:"profiles"`
}

// serveBenchProfile measures one request shape.
type serveBenchProfile struct {
	Name string `json:"name"`
	// ColdNsPerRequest is the latency of a request whose Spec is not in
	// the compiled-System LRU (each iteration uses a fresh Spec).
	ColdNsPerRequest float64 `json:"cold_ns_per_request"`
	// HitNsPerRequest is the latency of a repeated identical request:
	// compile cache hit plus query cache hit.
	HitNsPerRequest float64 `json:"hit_ns_per_request"`
	// Speedup is cold/hit: what compile-once-query-forever buys a
	// repeated Spec.
	Speedup float64 `json:"speedup_cold_vs_hit"`
}

// runServeBench measures the serving layer's cache contract on two
// request shapes: a Monte-Carlo query on a cheap synthetic Spec (cold
// cost ~ the query) and a deterministic query on a simulator-derived
// Spec with a large trace (cold cost ~ the compile). The benchmark
// drives real HTTP requests against an httptest server, so the
// recorded latencies include decoding, hashing, and encoding.
func runServeBench(ctx context.Context, stdout, stderr io.Writer, outPath string, verbose bool) error {
	logf := func(format string, args ...interface{}) {
		if verbose {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	comp := &soferr.Compiler{}
	srv := httptest.NewServer(server.New(server.Config{Compiler: comp, CacheSize: 64}))
	defer srv.Close()
	client := srv.Client()

	// Requests carry ctx so SIGINT aborts the benchmark loop like the
	// other bench phases.
	post := func(body map[string]interface{}) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/mttf", bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return fmt.Errorf("status %d: %s", resp.StatusCode, buf.String())
		}
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}

	busyIdleReq := func(rate float64) map[string]interface{} {
		return map[string]interface{}{
			"spec": soferr.Spec{Components: []soferr.ComponentSpec{{
				Name:        "batch",
				RatePerYear: rate,
				Trace:       soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 86400, BusySeconds: 3600},
			}}},
			"method": "montecarlo", "trials": 20000, "seed": 1, "engine": "inverted",
		}
	}
	// The simulator-derived Spec: the compile (alias table + exposure
	// samplers over a many-segment trace) is the dominant cold cost, and
	// the queried method is deterministic so the hit path measures pure
	// cache service. Instructions are pinned so the report is
	// self-describing; the one-time simulation itself is shared through
	// the compiler and excluded by warmup.
	specTraceReq := func(rate float64) map[string]interface{} {
		return map[string]interface{}{
			"spec": soferr.Spec{Components: []soferr.ComponentSpec{{
				Name:        "cpu",
				RatePerYear: rate,
				Trace: soferr.TraceSpec{Kind: soferr.TraceKindBenchmark, Benchmark: "gzip",
					Instructions: 50000, SimSeed: 1},
			}}},
			"method": "avf+sofr",
		}
	}

	bench := func(name string, f func(i int) error) (float64, error) {
		logf("bench %s", name)
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f(i); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return 0, fmt.Errorf("bench %s: %w", name, benchErr)
		}
		if r.N == 0 {
			return 0, fmt.Errorf("bench %s: no iterations", name)
		}
		return float64(r.T.Nanoseconds()) / float64(r.N), nil
	}

	report := serveBenchReport{GoVersion: runtime.Version(), GOARCH: runtime.GOARCH}
	profiles := []struct {
		name string
		req  func(rate float64) map[string]interface{}
		base float64
	}{
		{"mttf-montecarlo-busyidle", busyIdleReq, 1e4},
		{"mttf-avfsofr-spec-trace", specTraceReq, 1e5},
	}
	for _, p := range profiles {
		// Warm up the compiler's simulation cache (and the HTTP client)
		// so cold measures compile+query, not one-time setup.
		if err := post(p.req(p.base)); err != nil {
			return fmt.Errorf("bench %s warmup: %w", p.name, err)
		}
		// Distinct rates hash to distinct Specs, so every iteration
		// compiles; the offset keeps the grid clear of the warmup Spec.
		// The counter deliberately survives testing.Benchmark's
		// calibration reruns — resetting it would replay rates already
		// in the LRU and count cache hits as cold.
		coldIter := 0
		cold, err := bench(p.name+"/cold", func(int) error {
			coldIter++
			return post(p.req(p.base + 1 + float64(coldIter)*1e-3))
		})
		if err != nil {
			return err
		}
		hit, err := bench(p.name+"/hit", func(int) error {
			return post(p.req(p.base))
		})
		if err != nil {
			return err
		}
		prof := serveBenchProfile{
			Name:             p.name,
			ColdNsPerRequest: cold,
			HitNsPerRequest:  hit,
			Speedup:          cold / hit,
		}
		report.Profiles = append(report.Profiles, prof)
		fmt.Fprintf(stdout, "%-28s %14.0f ns/req cold %14.0f ns/req hit  (%.0fx)\n",
			p.name, prof.ColdNsPerRequest, prof.HitNsPerRequest, prof.Speedup)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", outPath)
	}
	return nil
}
