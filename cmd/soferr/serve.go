package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/server"
)

// runServe implements the `soferr serve` subcommand: the MTTF query
// service. It binds the listener, serves until ctx is cancelled
// (SIGINT/SIGTERM from main), then drains in-flight queries within the
// grace period. See internal/server for the endpoints and DESIGN.md,
// "Serving layer", for the cache contract.
func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		cacheSize     = fs.Int("cache", 128, "compiled-System LRU capacity (Specs cached by content hash)")
		maxConcurrent = fs.Int("max-concurrent", 0, "max in-flight query requests (0 = GOMAXPROCS)")
		trials        = fs.Int("trials", 0, "default Monte-Carlo trials for requests that set none (0 = package default)")
		timeout       = fs.Duration("timeout", 60*time.Second, "per-request deadline cap (0 = unlimited)")
		grace         = fs.Duration("grace", 30*time.Second, "shutdown grace period for in-flight queries")
		drainWait     = fs.Duration("drain-wait", 0, "pause between flipping /readyz to 503 and closing the listener, so load balancers stop routing first")
		maxSweepCells = fs.Int("max-sweep-cells", 0, "cells one sweep request may evaluate (0 = default 65536); larger grids page with cursor/limit")
		instructions  = fs.Int("instructions", 0, "instructions per simulated benchmark trace (0 = default)")
		simSeed       = fs.Uint64("sim-seed", 1, "benchmark simulation seed")
		verbose       = fs.Bool("v", false, "log failed requests to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	comp := &soferr.Compiler{Instructions: *instructions, SimSeed: *simSeed}
	cfg := server.Config{
		CacheSize:     *cacheSize,
		MaxConcurrent: *maxConcurrent,
		DefaultTrials: *trials,
		MaxTimeout:    *timeout,
		MaxSweepCells: *maxSweepCells,
		Compiler:      comp,
	}
	if *timeout == 0 {
		cfg.MaxTimeout = -1 // explicit zero disables the cap
	}
	if *verbose {
		cfg.Log = stderr
		comp.Log = stderr
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "soferr: serving on http://%s\n", ln.Addr())

	// Read/idle timeouts bound slow clients: a trickled request body
	// cannot hold a handler (and its concurrency slot) open forever.
	srv := server.New(cfg)
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // the listener failed outright
	case <-ctx.Done():
	}
	// Graceful shutdown, in readiness order: flip /readyz to 503 first
	// so load balancers stop routing here, optionally wait for that to
	// propagate, then stop accepting and drain in-flight queries.
	srv.BeginDrain()
	if *drainWait > 0 {
		fmt.Fprintf(stdout, "soferr: draining (readiness down, waiting %v)\n", *drainWait)
		select {
		case <-time.After(*drainWait):
		case err := <-serveErr:
			return err
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	fmt.Fprintln(stdout, "soferr: server stopped")
	return nil
}
