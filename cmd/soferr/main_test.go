package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestList(t *testing.T) {
	out, _, err := runCLI(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig3", "fig6b", "sec54", "extphase"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestConfig(t *testing.T) {
	out, _, err := runCLI(t, "config")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2.0 GHz") || !strings.Contains(out, "150 entries") {
		t.Errorf("config output missing Table 1 values:\n%s", out)
	}
}

func TestRunFig4(t *testing.T) {
	out, _, err := runCLI(t, "run", "fig4", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "rel err") {
		t.Errorf("fig4 output malformed:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	out, _, err := runCLI(t, "run", "fig4", "-quick", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "N components,") {
		t.Errorf("CSV output missing header:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Error("CSV output contains text-table decorations")
	}
}

func TestRunJSON(t *testing.T) {
	// One document — an array of tables — even for multiple
	// experiments, so the output is always parseable as a whole.
	out, _, err := runCLI(t, "run", "fig4", "-quick", "-json")
	if err != nil {
		t.Fatal(err)
	}
	type table struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	var tabs []table
	if err := json.Unmarshal([]byte(out), &tabs); err != nil {
		t.Fatalf("run -json emitted invalid JSON: %v\n%s", err, out)
	}
	if len(tabs) != 1 || tabs[0].ID != "fig4" || len(tabs[0].Rows) == 0 || len(tabs[0].Header) == 0 {
		t.Errorf("run -json table malformed: %+v", tabs)
	}

	out, _, err = runCLI(t, "run", "fig3", "-quick", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var more []table
	if err := json.Unmarshal([]byte(out), &more); err != nil {
		t.Fatalf("second -json run invalid: %v", err)
	}
}

func TestRunJSONAndCSVExclusive(t *testing.T) {
	if _, _, err := runCLI(t, "run", "fig4", "-quick", "-json", "-csv"); err == nil {
		t.Error("-json with -csv accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	_, _, err := runCLI(t, "run", "nope")
	if err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunMissingID(t *testing.T) {
	_, _, err := runCLI(t, "run")
	if err == nil {
		t.Error("missing id accepted")
	}
}

func TestUnknownCommand(t *testing.T) {
	_, _, err := runCLI(t, "frobnicate")
	if err == nil {
		t.Error("unknown command accepted")
	}
}

func TestNoArgs(t *testing.T) {
	_, _, err := runCLI(t)
	if err == nil {
		t.Error("no command accepted")
	}
}

func TestHelp(t *testing.T) {
	out, _, err := runCLI(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "commands:") {
		t.Error("help output malformed")
	}
}

func TestWorkloadsSurvey(t *testing.T) {
	out, _, err := runCLI(t, "workloads", "-instructions", "5000")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gzip", "swim", "sixtrack", "ipc"} {
		if !strings.Contains(out, want) {
			t.Errorf("workloads output missing %q", want)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 22 { // header + 21 benchmarks
		t.Errorf("workloads output should have 22 lines:\n%s", out)
	}
}

func TestRunEngineFlag(t *testing.T) {
	for _, engine := range []string{"inverted", "superposed", "naive", "exact"} {
		out, _, err := runCLI(t, "run", "fig4", "-quick", "-engine", engine)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !strings.Contains(out, "fig4") {
			t.Errorf("engine %s: malformed output:\n%s", engine, out)
		}
	}
}

func TestRunEngineFlagUnknown(t *testing.T) {
	_, _, err := runCLI(t, "run", "fig4", "-quick", "-engine", "warp")
	if err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestHelpMentionsBench(t *testing.T) {
	out, _, err := runCLI(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bench") || !strings.Contains(out, "-engine") {
		t.Errorf("help missing bench/engine documentation:\n%s", out)
	}
}

func TestSweepText(t *testing.T) {
	out, _, err := runCLI(t, "sweep",
		"-duty", "0.5", "-rates", "10,1e6", "-counts", "1,2",
		"-methods", "avf+sofr,softarch")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"duty=0.5", "avf+sofr", "softarch", "MTTF"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
	// 2 rates x 2 counts x 2 methods rows plus one header line.
	if got := strings.Count(strings.TrimSpace(out), "\n"); got != 8 {
		t.Errorf("sweep printed %d lines, want 9:\n%s", got+1, out)
	}
}

func TestSweepCSV(t *testing.T) {
	out, _, err := runCLI(t, "sweep",
		"-duty", "0.5", "-rates", "10", "-methods", "softarch", "-csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "source,rate_per_year,count,seed,method,") {
		t.Errorf("sweep CSV missing header:\n%s", out)
	}
	if !strings.Contains(out, "duty=0.5,10,1,") {
		t.Errorf("sweep CSV missing data row:\n%s", out)
	}
}

func TestSweepJSON(t *testing.T) {
	out, _, err := runCLI(t, "sweep",
		"-duty", "0.25,0.75", "-ns", "1e9", "-methods", "avf+sofr", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name  string `json:"name"`
		Cells []struct {
			Cell struct {
				SourceName  string  `json:"source_name"`
				RatePerYear float64 `json:"rate_per_year"`
			} `json:"cell"`
			Estimates []struct {
				Method string `json:"method"`
			} `json:"estimates"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("sweep -json is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(doc.Cells))
	}
	// -ns 1e9 is rate 10/yr under the paper's 1e-8/yr-per-bit baseline.
	if doc.Cells[0].Cell.RatePerYear != 10 {
		t.Errorf("NxS=1e9 gave rate %v, want 10", doc.Cells[0].Cell.RatePerYear)
	}
	if doc.Cells[0].Estimates[0].Method != "avf+sofr" {
		t.Errorf("method = %q", doc.Cells[0].Estimates[0].Method)
	}
}

func TestSweepFlagValidation(t *testing.T) {
	if _, _, err := runCLI(t, "sweep", "-rates", "10"); err == nil {
		t.Error("sweep without sources succeeded")
	}
	if _, _, err := runCLI(t, "sweep", "-duty", "0.5"); err == nil {
		t.Error("sweep without rates succeeded")
	}
	if _, _, err := runCLI(t, "sweep", "-duty", "0.5", "-rates", "10", "-csv", "-json"); err == nil {
		t.Error("sweep accepted -csv with -json")
	}
	if _, _, err := runCLI(t, "sweep", "-workloads", "weekend", "-rates", "10"); err == nil {
		t.Error("sweep accepted unknown workload")
	}
	if _, _, err := runCLI(t, "sweep", "-duty", "0.5", "-rates", "10", "-methods", "bogus"); err == nil {
		t.Error("sweep accepted unknown method")
	}
}

func TestHelpMentionsSweep(t *testing.T) {
	out, _, err := runCLI(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep") {
		t.Error("help does not mention the sweep subcommand")
	}
}
