// Command soferr runs the paper-reproduction experiments and utilities.
//
// Usage:
//
//	soferr list                      list the experiments (tables/figures)
//	soferr run <id>|all [flags]      run experiments and print their tables
//	soferr run <spec.json> [flags]   compile a system Spec file and compare methods
//	soferr sweep [flags]             evaluate a user-defined design-space grid
//	soferr serve [flags]             serve MTTF queries over HTTP (POST a Spec)
//	soferr workloads [flags]         simulate every benchmark; print stats and AVFs
//	soferr config                    print the Table 1 machine configuration
//	soferr bench [flags]             micro-benchmark the Monte-Carlo engines
//
// Flags for sweep (axes are comma-separated lists; the grid is their
// cross product, evaluated concurrently and deterministically on the
// sweep engine — see DESIGN.md, "Sweep engine"):
//
//	-workloads LIST  schedule sources: day, week, combined
//	-duty LIST       busy/idle sources by duty cycle over -period seconds
//	-bench LIST      simulated benchmark sources (see 'soferr workloads')
//	-ns LIST         raw-rate axis as N x S products (rate = NxS x 1e-8/yr)
//	-rates LIST      raw-rate axis in errors/year
//	-counts LIST     component-count axis C (default 1)
//	-methods LIST    estimator axis (default avf+sofr,montecarlo,softarch)
//	-trials N -seed N -engine NAME -sampler NAME -target-rse T -workers N -instructions N
//	-csv | -json     output format (default aligned text, streamed)
//
// Flags for run / workloads:
//
//	-trials N        run: Monte-Carlo trials per point (default 200000)
//	-instructions N  simulated instructions per benchmark (default 300000)
//	-seed N          deterministic seed (default 1)
//	-engine NAME     run: Monte-Carlo engine: fused (default), exact, inverted, superposed, naive
//	-sampler NAME    run <spec.json>: Monte-Carlo sampler: pcg (default) or sobol (quasi-Monte-Carlo)
//	-target-rse T    run <spec.json>: adaptive precision target (rel stderr; -trials caps it)
//	-methods LIST    run <spec.json>: methods to compare (default all)
//	-quick           run: shrink grids and trial counts
//	-csv             run: emit CSV instead of aligned text
//	-json            run: emit JSON (tables plus typed estimates)
//	-v               log progress to stderr
//
// Flags for serve (the MTTF query service; see internal/server for the
// endpoints and DESIGN.md, "Serving layer", for the cache contract):
//
//	-addr HOST:PORT    listen address (default 127.0.0.1:8080)
//	-cache N           compiled-System LRU capacity (default 128)
//	-max-concurrent N  in-flight query bound (default GOMAXPROCS)
//	-trials N          default Monte-Carlo trials (default 200000)
//	-timeout D         per-request deadline cap (default 60s; 0 = unlimited)
//	-grace D           shutdown grace period (default 30s)
//	-instructions N -sim-seed N -v
//
// Flags for bench:
//
//	-out FILE        Monte-Carlo JSON report path (default BENCH_mc.json)
//	-fused-out FILE  fused-engine JSON report path (default BENCH_fused.json)
//	-exact-out FILE  exact-engine JSON report path (default BENCH_exact.json)
//	-sweep-out FILE  sweep-engine JSON report path (default BENCH_sweep.json)
//	-serve-out FILE  query-server JSON report path (default BENCH_serve.json)
//	-validate [FILES] validate BENCH_*.json files against the shared schema
//	-v               log progress to stderr
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/benchfmt"
	"github.com/soferr/soferr/internal/experiments"
	"github.com/soferr/soferr/internal/turandot"
	"github.com/soferr/soferr/internal/workload"
)

func main() {
	// Interrupts cancel in-flight Monte-Carlo sweeps cleanly instead of
	// killing the process mid-table. After the first signal has
	// cancelled ctx, restore the default disposition so a second
	// interrupt kills immediately (e.g. to abort `serve`'s graceful
	// drain).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "soferr:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stdout)
		return fmt.Errorf("missing command")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		trials       = fs.Int("trials", 0, "Monte-Carlo trials per point (0 = default)")
		instructions = fs.Int("instructions", 0, "instructions per simulated benchmark (0 = default)")
		seed         = fs.Uint64("seed", 1, "deterministic seed")
		engineName   = fs.String("engine", "", "Monte-Carlo engine: fused, exact, inverted, superposed, or naive")
		samplerName  = fs.String("sampler", "", "run <spec.json>: Monte-Carlo sampler: pcg (default) or sobol")
		targetRSE    = fs.Float64("target-rse", 0, "run <spec.json>: adaptive precision target (relative standard error; trials become the cap)")
		methodsFlag  = fs.String("methods", "", "run <spec.json>: comma-separated methods to compare (default all)")
		quick        = fs.Bool("quick", false, "shrink grids and trial counts")
		asCSV        = fs.Bool("csv", false, "emit CSV instead of text")
		asJSON       = fs.Bool("json", false, "emit JSON (tables plus typed estimates) instead of text")
		verbose      = fs.Bool("v", false, "log progress to stderr")
	)

	switch cmd {
	case "list":
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil

	case "config":
		r := experiments.NewRunner(experiments.Options{Quick: true})
		tab, err := r.Table1(ctx)
		if err != nil {
			return err
		}
		return tab.Fprint(stdout)

	case "run":
		if len(rest) == 0 {
			return fmt.Errorf("run: need an experiment id, 'all', or a Spec JSON file (try 'soferr list')")
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		if *asCSV && *asJSON {
			return fmt.Errorf("run: -csv and -json are mutually exclusive")
		}
		// A Spec JSON file compiles through the same soferr.Spec path the
		// sweep CLI and the HTTP server use, so file- and HTTP-supplied
		// systems share one code path. Experiment ids always win: a file
		// in the working directory named "fig5" or "all" must not shadow
		// the experiment.
		if _, idErr := experiments.ByID(id); id != "all" && idErr != nil && isSpecFile(id) {
			return runSpecFile(ctx, id, stdout, stderr, specFileOptions{
				trials:       *trials,
				instructions: *instructions,
				seed:         *seed,
				engineName:   *engineName,
				samplerName:  *samplerName,
				targetRSE:    *targetRSE,
				methods:      *methodsFlag,
				asCSV:        *asCSV,
				asJSON:       *asJSON,
				verbose:      *verbose,
			})
		}
		opt := experiments.Options{
			Trials:       *trials,
			Instructions: *instructions,
			Seed:         *seed,
			Quick:        *quick,
		}
		if *engineName != "" {
			engine, err := soferr.EngineByName(*engineName)
			if err != nil {
				return err
			}
			opt.Engine = engine
		}
		if *verbose {
			opt.Log = stderr
		}
		r := experiments.NewRunner(opt)
		var list []experiments.Experiment
		if id == "all" {
			list = experiments.All()
		} else {
			e, err := experiments.ByID(id)
			if err != nil {
				return err
			}
			list = []experiments.Experiment{e}
		}
		// JSON output is one valid document — an array of tables — so
		// `run all -json` stays machine-parseable; collect before
		// emitting.
		var jsonTables []*experiments.Table
		for i, e := range list {
			tab, err := e.Run(r, ctx)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			switch {
			case *asJSON:
				jsonTables = append(jsonTables, tab)
			case *asCSV:
				if err := tab.WriteCSV(stdout); err != nil {
					return err
				}
			default:
				if err := tab.Fprint(stdout); err != nil {
					return err
				}
			}
			if i < len(list)-1 && !*asJSON {
				fmt.Fprintln(stdout)
			}
		}
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(jsonTables)
		}
		return nil

	case "workloads":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		n := *instructions
		if n == 0 {
			n = 100000
		}
		return runWorkloads(stdout, n, *seed)

	case "sweep":
		// sweep has its own axis flags; see cmd/soferr/sweep.go.
		return runSweep(ctx, rest, stdout, stderr)

	case "serve":
		// serve has its own flags; see cmd/soferr/serve.go.
		return runServe(ctx, rest, stdout, stderr)

	case "bench":
		// bench takes only its own flags; a stray -trials/-seed would
		// be silently ignored, so reject it instead of accepting it.
		bfs := flag.NewFlagSet("bench", flag.ContinueOnError)
		bfs.SetOutput(stderr)
		benchOut := bfs.String("out", "BENCH_mc.json", "Monte-Carlo JSON report path (empty to skip writing)")
		sweepOut := bfs.String("sweep-out", "BENCH_sweep.json", "sweep-engine JSON report path (empty to skip writing)")
		serveOut := bfs.String("serve-out", "BENCH_serve.json", "query-server JSON report path (empty to skip writing)")
		fusedOut := bfs.String("fused-out", "BENCH_fused.json", "fused-engine JSON report path (empty to skip writing)")
		exactOut := bfs.String("exact-out", "BENCH_exact.json", "exact-engine JSON report path (empty to skip writing)")
		validate := bfs.Bool("validate", false, "validate the listed BENCH_*.json files against the shared schema instead of benchmarking")
		benchVerbose := bfs.Bool("v", false, "log progress to stderr")
		if err := bfs.Parse(rest); err != nil {
			return err
		}
		if *validate {
			return validateBenchReports(stdout, bfs.Args())
		}
		if len(bfs.Args()) > 0 {
			return fmt.Errorf("bench: unexpected arguments %v (file arguments need -validate)", bfs.Args())
		}
		if err := runBench(ctx, stdout, stderr, *benchOut, *benchVerbose); err != nil {
			return err
		}
		if err := runFusedBench(ctx, stdout, stderr, *fusedOut, *benchVerbose); err != nil {
			return err
		}
		if err := runExactBench(ctx, stdout, stderr, *exactOut, *benchVerbose); err != nil {
			return err
		}
		if err := runSweepBench(ctx, stdout, stderr, *sweepOut, *benchVerbose); err != nil {
			return err
		}
		return runServeBench(ctx, stdout, stderr, *serveOut, *benchVerbose)

	case "help", "-h", "--help":
		usage(stdout)
		return nil

	default:
		usage(stderr)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// validateBenchReports checks BENCH_*.json files against the shared
// internal/benchfmt schema (CI runs this after the bench smoke). With
// no arguments it validates the default report set in the working
// directory.
func validateBenchReports(stdout io.Writer, paths []string) error {
	if len(paths) == 0 {
		paths = []string{"BENCH_mc.json", "BENCH_fused.json", "BENCH_exact.json", "BENCH_sweep.json", "BENCH_serve.json"}
	}
	for _, path := range paths {
		if err := benchfmt.ValidateFile(path); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: ok\n", path)
	}
	return nil
}

func runWorkloads(w io.Writer, instructions int, seed uint64) error {
	fmt.Fprintf(w, "%-9s %7s %8s %8s | %7s %7s %7s %7s\n",
		"bench", "ipc", "mispred", "l2miss", "dec", "int", "fp", "reg")
	for _, p := range workload.All() {
		prog, err := p.Generate(instructions, seed)
		if err != nil {
			return err
		}
		sim, err := turandot.New(turandot.DefaultConfig())
		if err != nil {
			return err
		}
		res, err := sim.Run(prog)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		tr, err := res.Traces()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-9s %7.3f %7.1f%% %8d | %7.3f %7.3f %7.3f %7.3f\n",
			p.Name, res.Stats.IPC(), 100*res.Stats.MispredictRate(), res.Stats.L2Misses,
			tr.Decode.AVF(), tr.Int.AVF(), tr.FP.AVF(), tr.RegFile.AVF())
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprint(w, `soferr - architecture-level soft error analysis (DSN'07 reproduction)

commands:
  list         list the experiments (paper tables/figures)
  run <id|all> run experiments and print their tables
  run <spec.json> compile a system Spec file and compare methods
  sweep        evaluate a user-defined design-space grid (workloads x rates x counts x methods)
  serve        serve MTTF queries over HTTP (POST a Spec to /v1/mttf, /v1/sweep, ...)
  workloads    simulate every benchmark; print stats and AVFs
  config       print the Table 1 machine configuration
  bench        micro-benchmark the engines; write BENCH_mc.json + BENCH_fused.json + BENCH_exact.json + BENCH_sweep.json + BENCH_serve.json

flags for run:
  -trials N -instructions N -seed N -engine fused|exact|inverted|superposed|naive -sampler pcg|sobol -target-rse T -methods LIST -quick -csv -json -v
flags for sweep:
  -workloads day,week,combined -duty LIST -period S -bench LIST
  -ns LIST -rates LIST -counts LIST -methods LIST
  -trials N -seed N -engine NAME -sampler NAME -target-rse T -workers N -instructions N -csv -json -v
flags for serve:
  -addr HOST:PORT -cache N -max-concurrent N -trials N -timeout D -grace D
  -instructions N -sim-seed N -v
flags for workloads:
  -instructions N -seed N
flags for bench:
  -out FILE -fused-out FILE -exact-out FILE -sweep-out FILE -serve-out FILE -validate [FILES] -v
`)
}
