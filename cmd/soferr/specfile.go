package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/soferr/soferr"
)

// specFileOptions carries the `soferr run` flags that apply when the
// argument is a Spec JSON file rather than an experiment id.
type specFileOptions struct {
	trials       int
	instructions int
	seed         uint64
	engineName   string
	samplerName  string
	targetRSE    float64
	methods      string
	asCSV        bool
	asJSON       bool
	verbose      bool
}

// isSpecFile reports whether the `run` argument names a Spec file
// instead of an experiment: a .json suffix or an existing regular file.
func isSpecFile(arg string) bool {
	if strings.HasSuffix(arg, ".json") {
		return true
	}
	st, err := os.Stat(arg)
	return err == nil && st.Mode().IsRegular()
}

// runSpecFile loads a soferr.Spec from a JSON file, compiles it through
// the same Compiler path the sweep CLI and the HTTP server use, and
// prints a method comparison. File-supplied and HTTP-supplied systems
// therefore share one code path end to end.
func runSpecFile(ctx context.Context, path string, stdout, stderr io.Writer, opt specFileOptions) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var spec soferr.Spec
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("%s: invalid spec: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	comp := &soferr.Compiler{Instructions: opt.instructions, SimSeed: opt.seed}
	if opt.verbose {
		comp.Log = stderr
	}
	sys, err := comp.Compile(spec)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	var methods []soferr.Method
	for _, m := range splitList(opt.methods) {
		mm, err := soferr.MethodByName(m)
		if err != nil {
			return err
		}
		methods = append(methods, mm)
	}
	opts := []soferr.EstimateOption{soferr.WithSeed(opt.seed)}
	if opt.trials > 0 {
		opts = append(opts, soferr.WithTrials(opt.trials))
	}
	// Zero means "no adaptive mode"; anything else (including a
	// sign-typo negative) goes through so the query layer can reject
	// out-of-domain targets instead of silently running fixed trials.
	if opt.targetRSE != 0 {
		opts = append(opts, soferr.WithTargetRelStdErr(opt.targetRSE))
	}
	// The run subcommand documents fused as its default engine
	// (matching the experiment harness); spec files get the same.
	engineName := opt.engineName
	if engineName == "" {
		engineName = "fused"
	}
	engine, err := soferr.EngineByName(engineName)
	if err != nil {
		return err
	}
	opts = append(opts, soferr.WithEngine(engine))
	sampler, err := soferr.SamplerByName(opt.samplerName)
	if err != nil {
		return err
	}
	opts = append(opts, soferr.WithSampler(sampler))
	ests, err := sys.CompareWith(ctx, opts, methods...)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	switch {
	case opt.asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Name      string            `json:"name,omitempty"`
			SpecHash  string            `json:"spec_hash"`
			Estimates []soferr.Estimate `json:"estimates"`
		}{spec.Name, spec.Hash(), ests})
	case opt.asCSV:
		cw := csv.NewWriter(stdout)
		if err := cw.Write([]string{"method", "mttf_seconds", "fit", "stderr_seconds", "rel_stderr"}); err != nil {
			return err
		}
		for _, e := range ests {
			if err := cw.Write([]string{
				e.Method.String(), formatG(e.MTTF), formatG(e.FIT),
				formatG(e.StdErr), formatG(e.RelStdErr()),
			}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	default:
		name := spec.Name
		if name == "" {
			name = path
		}
		fmt.Fprintf(stdout, "spec %s (%s, %d components)\n", name, spec.Hash()[:14], len(spec.Components))
		fmt.Fprintf(stdout, "%-10s %14s %12s %10s\n", "method", "MTTF (s)", "FIT", "rel err")
		for _, e := range ests {
			fmt.Fprintf(stdout, "%-10s %14.6g %12.4g %9.2f%%\n",
				e.Method.String(), e.MTTF, e.FIT, 100*e.RelStdErr())
		}
		return nil
	}
}
