package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

// fusedScalingEntry records per-trial cost at one component count N
// under the per-component Inverted engine and the system-level Fused
// engine.
type fusedScalingEntry struct {
	Components    int     `json:"components"`
	InvertedNsOp  float64 `json:"inverted_ns_per_trial"`
	FusedNsOp     float64 `json:"fused_ns_per_trial"`
	Speedup       float64 `json:"speedup_fused_vs_inverted"`
	InvertedAlloc int64   `json:"inverted_allocs_per_trial"`
	FusedAlloc    int64   `json:"fused_allocs_per_trial"`
}

// batchedBlockEntry records per-trial cost of the Fused engine's
// batched inversion kernel at one block size B on the N=64 profile,
// framed against both scalar baselines: the scalar fused kernel
// (BatchSize 1, same engine, batching alone) and the scalar Inverted
// engine (the pre-fused per-component path, kernel + merge combined).
type batchedBlockEntry struct {
	BlockSize       int     `json:"block_size"`
	BatchedNsOp     float64 `json:"batched_ns_per_trial"`
	SpeedupFused    float64 `json:"speedup_vs_scalar_fused"`
	SpeedupInverted float64 `json:"speedup_vs_scalar_inverted"`
}

// batchedReport is the `batched` section of BENCH_fused.json: the
// scalar baselines at N=64 plus one row per block size.
type batchedReport struct {
	Components       int                 `json:"components"`
	ScalarFusedNs    float64             `json:"scalar_fused_ns_per_trial"`
	ScalarInvertedNs float64             `json:"scalar_inverted_ns_per_trial"`
	Blocks           []batchedBlockEntry `json:"blocks"`
}

// qmcReport is the `qmc` section of BENCH_fused.json: adaptive
// trials-to-target under the PCG sampler vs the scrambled-Sobol
// sampler on the paper's SPEC-trace profile.
type qmcReport struct {
	Target       float64 `json:"target_rel_stderr"`
	PCGTrials    int     `json:"pcg_trials_to_target"`
	PCGRelSE     float64 `json:"pcg_rel_stderr"`
	SobolTrials  int     `json:"sobol_trials_to_target"`
	SobolRelSE   float64 `json:"sobol_rel_stderr"`
	TrialsRatio  float64 `json:"sobol_trials_fraction_of_pcg"`
	TrialsSaved  float64 `json:"trials_saved_fraction"`
}

// fusedAdaptiveReport compares a fixed-trial run against an adaptive
// TargetRelStdErr run on the paper's SPEC-trace profile.
type fusedAdaptiveReport struct {
	Target          float64 `json:"target_rel_stderr"`
	FixedTrials     int     `json:"fixed_trials"`
	FixedNs         float64 `json:"fixed_wall_ns"`
	FixedRelStdErr  float64 `json:"fixed_rel_stderr"`
	AdaptiveTrials  int     `json:"adaptive_trials"`
	AdaptiveNs      float64 `json:"adaptive_wall_ns"`
	AdaptiveRelSE   float64 `json:"adaptive_rel_stderr"`
	TrialsSaved     float64 `json:"trials_saved_fraction"`
	WallTimeSpeedup float64 `json:"wall_time_speedup"`
}

// fusedBenchReport is the schema of BENCH_fused.json: trial-cost
// scaling in the component count N (flat for Fused, linear for
// Inverted) plus the adaptive-precision comparison.
type fusedBenchReport struct {
	GoVersion string              `json:"go_version"`
	GOARCH    string              `json:"goarch"`
	Scaling   []fusedScalingEntry `json:"scaling"`
	SpeedupAt map[string]float64  `json:"speedup_at_n"`
	Batched   batchedReport       `json:"batched"`
	QMC       qmcReport           `json:"qmc"`
	Adaptive  fusedAdaptiveReport `json:"adaptive"`
}

// fusedBenchComponents builds N heterogeneous components sharing one
// 24-hour period with distinct duty cycles and rates: every component
// contributes its own segments to the merged hazard table, so the
// fused table genuinely grows with N while trial cost stays O(log S).
func fusedBenchComponents(n int) []montecarlo.Component {
	comps := make([]montecarlo.Component, n)
	for i := range comps {
		busy := float64(1 + i%17)
		tr, err := trace.BusyIdle(24, busy)
		if err != nil {
			panic(err) // static construction; cannot fail
		}
		comps[i] = montecarlo.Component{
			Name:  fmt.Sprintf("c%d", i),
			Rate:  1e-4 * float64(1+i%5),
			Trace: tr,
		}
	}
	return comps
}

// runFusedBench measures the tentpole claims and writes
// BENCH_fused.json: per-trial ns for N in {1, 4, 16, 64, 256}
// components under Inverted vs Fused (expect linear vs flat), the
// batched inversion kernel at B in {16, 64, 256} vs both scalar
// baselines at N=64, adaptive trials-to-target vs the fixed-200k
// default on the SPEC trace, and PCG-vs-Sobol trials to the same
// target.
func runFusedBench(ctx context.Context, stdout, stderr io.Writer, outPath string, verbose bool) error {
	logf := func(format string, args ...interface{}) {
		if verbose {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	report := fusedBenchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		SpeedupAt: make(map[string]float64),
	}

	var n64 *montecarlo.Compiled
	var n64Inverted float64
	for _, n := range []int{1, 4, 16, 64, 256} {
		compiled, err := montecarlo.Compile(fusedBenchComponents(n))
		if err != nil {
			return err
		}
		entry := fusedScalingEntry{Components: n}
		for _, engine := range []montecarlo.Engine{montecarlo.Inverted, montecarlo.Fused} {
			engine := engine
			logf("bench fused scaling N=%d %s", n, engine)
			// Warm lazily built state (the fused merge) so the table
			// build is not billed to the trials.
			if _, err := compiled.MTTF(ctx, montecarlo.Config{Trials: 64, Seed: 1, Engine: engine, Workers: 1}); err != nil {
				return err
			}
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				if _, err := compiled.MTTF(ctx, montecarlo.Config{
					Trials: b.N, Seed: 1, Engine: engine, Workers: 1,
				}); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			})
			if benchErr != nil {
				return fmt.Errorf("bench fused scaling N=%d %s: %w", n, engine, benchErr)
			}
			if r.N == 0 {
				return fmt.Errorf("bench fused scaling N=%d %s: no iterations", n, engine)
			}
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			switch engine {
			case montecarlo.Inverted:
				entry.InvertedNsOp = ns
				entry.InvertedAlloc = r.AllocsPerOp()
			case montecarlo.Fused:
				entry.FusedNsOp = ns
				entry.FusedAlloc = r.AllocsPerOp()
			}
		}
		entry.Speedup = entry.InvertedNsOp / entry.FusedNsOp
		report.Scaling = append(report.Scaling, entry)
		report.SpeedupAt[fmt.Sprintf("%d", n)] = entry.Speedup
		fmt.Fprintf(stdout, "%-22s N=%-4d inverted %10.1f ns/trial  fused %8.1f ns/trial  %5.1fx\n",
			"FusedScaling", n, entry.InvertedNsOp, entry.FusedNsOp, entry.Speedup)
		if n == 64 {
			n64 = compiled
			n64Inverted = entry.InvertedNsOp
		}
	}

	// Batched inversion kernel on the N=64 profile: the scalar fused
	// kernel (BatchSize 1) isolates what batching alone buys, and the
	// scalar Inverted baseline from the scaling loop frames the full
	// batched-fused-vs-per-component gap the acceptance test pins.
	batched := batchedReport{Components: 64, ScalarInvertedNs: n64Inverted}
	measureFused := func(batchSize int) (float64, error) {
		logf("bench batched N=64 B=%d", batchSize)
		if _, err := n64.MTTF(ctx, montecarlo.Config{
			Trials: 64, Seed: 1, Engine: montecarlo.Fused, Workers: 1, BatchSize: batchSize,
		}); err != nil {
			return 0, err
		}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			if _, err := n64.MTTF(ctx, montecarlo.Config{
				Trials: b.N, Seed: 1, Engine: montecarlo.Fused, Workers: 1, BatchSize: batchSize,
			}); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		})
		if benchErr != nil {
			return 0, fmt.Errorf("bench batched B=%d: %w", batchSize, benchErr)
		}
		if r.N == 0 {
			return 0, fmt.Errorf("bench batched B=%d: no iterations", batchSize)
		}
		return float64(r.T.Nanoseconds()) / float64(r.N), nil
	}
	scalarFused, err := measureFused(1)
	if err != nil {
		return err
	}
	batched.ScalarFusedNs = scalarFused
	for _, bsz := range []int{16, 64, 256} {
		ns, err := measureFused(bsz)
		if err != nil {
			return err
		}
		batched.Blocks = append(batched.Blocks, batchedBlockEntry{
			BlockSize:       bsz,
			BatchedNsOp:     ns,
			SpeedupFused:    scalarFused / ns,
			SpeedupInverted: n64Inverted / ns,
		})
		fmt.Fprintf(stdout, "%-22s N=64 B=%-4d %8.1f ns/trial  %5.2fx vs scalar fused  %6.1fx vs inverted\n",
			"BatchedScaling", bsz, ns, scalarFused/ns, n64Inverted/ns)
	}
	report.Batched = batched

	// Adaptive precision on the paper's SPEC-trace profile: the gzip
	// processor trace at 1e6 errors/year, as the acceptance benchmarks
	// use. Fixed 200k trials vs TargetRelStdErr = 1%.
	logf("simulating gzip for the adaptive profile")
	simRes, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		return err
	}
	specComp := []montecarlo.Component{{
		Name: "int", Rate: units.PerYearToPerSecond(1e6), Trace: simRes.Int,
	}}
	compiled, err := montecarlo.Compile(specComp)
	if err != nil {
		return err
	}
	const target = 0.01
	ad := fusedAdaptiveReport{Target: target, FixedTrials: soferr.DefaultTrials}
	logf("bench adaptive fixed-%d", ad.FixedTrials)
	var fixedRes montecarlo.Result
	rFixed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := compiled.MTTF(ctx, montecarlo.Config{
				Trials: soferr.DefaultTrials, Seed: uint64(i + 1), Engine: montecarlo.Fused,
			})
			if err != nil {
				b.Fatal(err)
			}
			fixedRes = res
		}
	})
	logf("bench adaptive target-%g", target)
	var adRes montecarlo.Result
	rAdaptive := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := compiled.MTTF(ctx, montecarlo.Config{
				Trials: soferr.DefaultTrials, Seed: uint64(i + 1), Engine: montecarlo.Fused,
				TargetRelStdErr: target,
			})
			if err != nil {
				b.Fatal(err)
			}
			adRes = res
		}
	})
	if rFixed.N == 0 || rAdaptive.N == 0 {
		return fmt.Errorf("bench adaptive: benchmark produced no iterations")
	}
	ad.FixedNs = float64(rFixed.T.Nanoseconds()) / float64(rFixed.N)
	ad.AdaptiveNs = float64(rAdaptive.T.Nanoseconds()) / float64(rAdaptive.N)
	ad.FixedRelStdErr = fixedRes.RelStdErr()
	ad.AdaptiveTrials = adRes.Trials
	ad.AdaptiveRelSE = adRes.RelStdErr()
	ad.TrialsSaved = 1 - float64(ad.AdaptiveTrials)/float64(ad.FixedTrials)
	ad.WallTimeSpeedup = ad.FixedNs / ad.AdaptiveNs
	report.Adaptive = ad
	fmt.Fprintf(stdout, "%-22s fixed %d trials (RSE %.4f) vs adaptive %d trials to RSE<=%g: %.1fx wall time\n",
		"FusedAdaptive", ad.FixedTrials, ad.FixedRelStdErr, ad.AdaptiveTrials, target, ad.WallTimeSpeedup)

	// QMC trials-to-target on the same SPEC profile: the adaptive loop
	// stops at the first block boundary where the target is met, so the
	// trial counts directly compare sampler efficiency.
	qmc := qmcReport{Target: target}
	for _, sampler := range []montecarlo.Sampler{montecarlo.PCG, montecarlo.Sobol} {
		logf("bench qmc %s target-%g", sampler, target)
		res, err := compiled.MTTF(ctx, montecarlo.Config{
			Trials: soferr.DefaultTrials, Seed: 1, Engine: montecarlo.Fused,
			TargetRelStdErr: target, Sampler: sampler,
		})
		if err != nil {
			return err
		}
		switch sampler {
		case montecarlo.PCG:
			qmc.PCGTrials, qmc.PCGRelSE = res.Trials, res.RelStdErr()
		case montecarlo.Sobol:
			qmc.SobolTrials, qmc.SobolRelSE = res.Trials, res.RelStdErr()
		}
	}
	qmc.TrialsRatio = float64(qmc.SobolTrials) / float64(qmc.PCGTrials)
	qmc.TrialsSaved = 1 - qmc.TrialsRatio
	report.QMC = qmc
	fmt.Fprintf(stdout, "%-22s RSE<=%g: pcg %d trials vs sobol %d trials (%.2fx fewer)\n",
		"QMCAdaptive", target, qmc.PCGTrials, qmc.SobolTrials, float64(qmc.PCGTrials)/float64(qmc.SobolTrials))

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", outPath)
	}
	return nil
}
