package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"testing"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/units"
)

// exactScalingEntry records, at one component count N, the cost of one
// exact closed-form query (cold: compile plus table build plus query;
// query: through the run path on tabulated state) against an adaptive
// Fused run targeting 1% relative standard error on the same system.
type exactScalingEntry struct {
	Components   int     `json:"components"`
	ExactColdNs  float64 `json:"exact_cold_ns"`
	ExactQueryNs float64 `json:"exact_query_ns"`
	AdaptiveNs   float64 `json:"adaptive_fused_ns"`
	// Speedup is per query once the system is tabulated — the cost
	// sweeps and the serving tier pay, and the apples-to-apples figure:
	// Fused amortizes the same one-time merged-table build, but then
	// pays the full sampling run on EVERY query (each seed/target
	// variation is a fresh run), while exact answers from the closed
	// form.
	Speedup float64 `json:"speedup_exact_vs_adaptive"`
	// ColdSpeedup charges exact the full compile+tabulate+query cost
	// for a single one-shot query against one adaptive run.
	ColdSpeedup float64 `json:"speedup_cold_vs_adaptive"`
}

// exactSpecReport is the acceptance profile: the paper's SPEC gzip
// trace at 1e6 errors/year, exact vs adaptive Fused at a 1% target.
type exactSpecReport struct {
	Target       float64 `json:"target_rel_stderr"`
	ExactColdNs  float64 `json:"exact_cold_ns"`
	ExactQueryNs float64 `json:"exact_query_ns"`
	AdaptiveNs   float64 `json:"adaptive_fused_ns"`
	// Speedup is per query on tabulated state (see exactScalingEntry);
	// ColdSpeedup charges exact the one-time tabulation too.
	Speedup      float64 `json:"speedup_exact_vs_adaptive"`
	ColdSpeedup  float64 `json:"speedup_cold_vs_adaptive"`
	ExactMTTF    float64 `json:"exact_mttf_seconds"`
	AdaptiveMTTF float64 `json:"adaptive_mttf_seconds"`
	// RelGap is |adaptive-exact|/exact: the sampling error the exact
	// engine removes, which should be within a few targets of zero.
	RelGap float64 `json:"rel_gap"`
}

// exactBenchReport is the schema of BENCH_exact.json.
type exactBenchReport struct {
	GoVersion string              `json:"go_version"`
	GOARCH    string              `json:"goarch"`
	Scaling   []exactScalingEntry `json:"scaling"`
	Spec      exactSpecReport     `json:"spec_trace"`
}

// runExactBench measures the exact engine's headline claim — answers in
// microseconds with zero variance where adaptive sampling needs
// milliseconds to reach 1% — and writes BENCH_exact.json.
func runExactBench(ctx context.Context, stdout, stderr io.Writer, outPath string, verbose bool) error {
	logf := func(format string, args ...interface{}) {
		if verbose {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	report := exactBenchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	const target = 0.01

	for _, n := range []int{1, 4, 16, 64, 256} {
		comps := fusedBenchComponents(n)
		entry := exactScalingEntry{Components: n}

		logf("bench exact cold N=%d", n)
		rCold := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				compiled, err := montecarlo.Compile(comps)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := compiled.ExactMTTF(); err != nil {
					b.Fatal(err)
				}
			}
		})

		compiled, err := montecarlo.Compile(comps)
		if err != nil {
			return err
		}
		if _, err := compiled.ExactMTTF(); err != nil {
			return err
		}
		logf("bench exact warm N=%d", n)
		rWarm := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compiled.MTTF(ctx, montecarlo.Config{Engine: montecarlo.Exact}); err != nil {
					b.Fatal(err)
				}
			}
		})

		logf("bench exact adaptive-fused N=%d", n)
		rAd := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compiled.MTTF(ctx, montecarlo.Config{
					Seed: uint64(i + 1), Engine: montecarlo.Fused, TargetRelStdErr: target,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if rCold.N == 0 || rWarm.N == 0 || rAd.N == 0 {
			return fmt.Errorf("bench exact scaling N=%d: benchmark produced no iterations", n)
		}
		entry.ExactColdNs = float64(rCold.T.Nanoseconds()) / float64(rCold.N)
		entry.ExactQueryNs = float64(rWarm.T.Nanoseconds()) / float64(rWarm.N)
		entry.AdaptiveNs = float64(rAd.T.Nanoseconds()) / float64(rAd.N)
		entry.Speedup = entry.AdaptiveNs / entry.ExactQueryNs
		entry.ColdSpeedup = entry.AdaptiveNs / entry.ExactColdNs
		report.Scaling = append(report.Scaling, entry)
		fmt.Fprintf(stdout, "%-22s N=%-4d exact cold %10.1f ns  query %8.1f ns  adaptive-fused %12.1f ns  %9.0fx (cold %.1fx)\n",
			"ExactScaling", n, entry.ExactColdNs, entry.ExactQueryNs, entry.AdaptiveNs, entry.Speedup, entry.ColdSpeedup)
	}

	// The acceptance profile: the SPEC gzip processor trace at 1e6
	// errors/year, as the fused adaptive benchmark uses.
	logf("simulating gzip for the exact SPEC profile")
	simRes, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		return err
	}
	specComps := []montecarlo.Component{{
		Name: "int", Rate: units.PerYearToPerSecond(1e6), Trace: simRes.Int,
	}}
	spec := exactSpecReport{Target: target}
	logf("bench exact spec cold")
	rCold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compiled, err := montecarlo.Compile(specComps)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := compiled.ExactMTTF(); err != nil {
				b.Fatal(err)
			}
		}
	})
	compiled, err := montecarlo.Compile(specComps)
	if err != nil {
		return err
	}
	spec.ExactMTTF, err = compiled.ExactMTTF()
	if err != nil {
		return err
	}
	logf("bench exact spec query")
	rWarm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.MTTF(ctx, montecarlo.Config{Engine: montecarlo.Exact}); err != nil {
				b.Fatal(err)
			}
		}
	})
	logf("bench exact spec adaptive-fused")
	var adRes montecarlo.Result
	rAd := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := compiled.MTTF(ctx, montecarlo.Config{
				Seed: uint64(i + 1), Engine: montecarlo.Fused, TargetRelStdErr: target,
			})
			if err != nil {
				b.Fatal(err)
			}
			adRes = res
		}
	})
	if rCold.N == 0 || rWarm.N == 0 || rAd.N == 0 {
		return fmt.Errorf("bench exact spec: benchmark produced no iterations")
	}
	spec.ExactColdNs = float64(rCold.T.Nanoseconds()) / float64(rCold.N)
	spec.ExactQueryNs = float64(rWarm.T.Nanoseconds()) / float64(rWarm.N)
	spec.AdaptiveNs = float64(rAd.T.Nanoseconds()) / float64(rAd.N)
	spec.Speedup = spec.AdaptiveNs / spec.ExactQueryNs
	spec.ColdSpeedup = spec.AdaptiveNs / spec.ExactColdNs
	spec.AdaptiveMTTF = adRes.MTTF
	spec.RelGap = math.Abs(adRes.MTTF-spec.ExactMTTF) / spec.ExactMTTF
	report.Spec = spec
	fmt.Fprintf(stdout, "%-22s exact query %0.1f ns (cold %0.1f us) vs adaptive-fused (RSE<=%g) %0.1f us: %.0fx per query (cold %.1fx), rel gap %.2e\n",
		"ExactSpec", spec.ExactQueryNs, spec.ExactColdNs/1e3, target, spec.AdaptiveNs/1e3, spec.Speedup, spec.ColdSpeedup, spec.RelGap)

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", outPath)
	}
	return nil
}
