package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a threadsafe io.Writer: runServe writes to it from the
// command goroutine while the test polls it for the bound address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var urlRE = regexp.MustCompile(`http://[0-9.:]+`)

// startServe launches `soferr serve` on a free port and returns its
// base URL plus a shutdown function that cancels the command and
// returns its error.
func startServe(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout := &syncBuffer{}
	stderr := &syncBuffer{}
	done := make(chan error, 1)
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(ctx, args, stdout, stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	var url string
	for url == "" {
		if m := urlRE.FindString(stdout.String()); m != "" {
			url = m
			break
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited before binding: %v (stderr: %s)", err, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never printed its address (stdout: %q)", stdout.String())
		}
		time.Sleep(time.Millisecond)
	}
	return url, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(60 * time.Second):
			t.Fatal("serve did not stop after cancellation")
			return nil
		}
	}
}

func postJSON(t *testing.T, url string, body map[string]interface{}) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func busyIdleSpecJSON(rate float64) map[string]interface{} {
	return map[string]interface{}{
		"components": []map[string]interface{}{{
			"name":          "cache",
			"rate_per_year": rate,
			"trace":         map[string]interface{}{"kind": "busyidle", "period_seconds": 10, "busy_seconds": 4},
		}},
	}
}

// TestServeEndToEnd boots the real subcommand, queries it, and shuts it
// down cleanly with a query in flight — the CLI-level acceptance test
// for `soferr serve`.
func TestServeEndToEnd(t *testing.T) {
	url, stop := startServe(t)

	// healthz answers.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// A served MTTF query succeeds and carries the estimate.
	status, body := postJSON(t, url+"/v1/mttf", map[string]interface{}{
		"spec": busyIdleSpecJSON(1e6), "method": "montecarlo",
		"trials": 2000, "seed": 3, "engine": "inverted",
	})
	if status != http.StatusOK {
		t.Fatalf("mttf status %d: %s", status, body)
	}
	var mttfResp struct {
		SpecHash string `json:"spec_hash"`
		Estimate struct {
			MTTF float64 `json:"mttf_seconds"`
		} `json:"estimate"`
	}
	if err := json.Unmarshal(body, &mttfResp); err != nil {
		t.Fatalf("mttf response invalid: %v\n%s", err, body)
	}
	if !(mttfResp.Estimate.MTTF > 0) || !strings.HasPrefix(mttfResp.SpecHash, "sha256:") {
		t.Errorf("mttf response malformed: %s", body)
	}

	// A served sweep succeeds.
	status, body = postJSON(t, url+"/v1/sweep", map[string]interface{}{
		"sources": []map[string]interface{}{{
			"name":  "half",
			"trace": map[string]interface{}{"kind": "busyidle", "period_seconds": 10, "busy_seconds": 5},
		}},
		"rates_per_year": []float64{10, 1e4},
		"methods":        []string{"avf+sofr"},
	})
	if status != http.StatusOK {
		t.Fatalf("sweep status %d: %s", status, body)
	}
	var sweepResp struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &sweepResp); err != nil || sweepResp.Count != 2 {
		t.Fatalf("sweep response malformed (%v): %s", err, body)
	}

	// Fire a slow query, then cancel the command while it runs: the
	// query must complete (graceful drain) and the command exit nil.
	slow := make(chan error, 1)
	slowStatus := make(chan int, 1)
	go func() {
		data, _ := json.Marshal(map[string]interface{}{
			"spec": map[string]interface{}{
				"components": []map[string]interface{}{{
					"rate_per_year": 1e4,
					"trace":         map[string]interface{}{"kind": "busyidle", "period_seconds": 86400, "busy_seconds": 43200},
				}},
			},
			"method": "montecarlo", "engine": "superposed", "trials": 3000000,
		})
		resp, err := http.Post(url+"/v1/mttf", "application/json", bytes.NewReader(data))
		if err != nil {
			slow <- err
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		slowStatus <- resp.StatusCode
		slow <- nil
	}()
	time.Sleep(50 * time.Millisecond) // let the query reach the server
	if err := stop(); err != nil {
		t.Fatalf("serve returned %v", err)
	}
	if err := <-slow; err != nil {
		t.Fatalf("in-flight query failed across shutdown: %v", err)
	}
	if st := <-slowStatus; st != http.StatusOK {
		t.Fatalf("in-flight query status %d", st)
	}
}

func TestServeBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"serve", "-addr", "not-an-address"}, &out, &errOut); err == nil {
		t.Error("bad listen address accepted")
	}
	if err := run(context.Background(), []string{"serve", "-bogus"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunSpecFile covers `soferr run <spec.json>`: the file-supplied
// side of the shared Spec code path.
func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "system.json")
	spec := busyIdleSpecJSON(1e6)
	spec["name"] = "batch"
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out, _, err := runCLI(t, "run", path, "-trials", "2000")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"spec batch", "avf+sofr", "montecarlo", "softarch", "MTTF"} {
		if !strings.Contains(out, want) {
			t.Errorf("spec-file output missing %q:\n%s", want, out)
		}
	}

	// JSON output is typed and carries the spec hash.
	out, _, err = runCLI(t, "run", path, "-trials", "2000", "-json", "-methods", "MC,softarch")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name      string `json:"name"`
		SpecHash  string `json:"spec_hash"`
		Estimates []struct {
			Method string  `json:"method"`
			MTTF   float64 `json:"mttf_seconds"`
		} `json:"estimates"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("spec-file -json invalid: %v\n%s", err, out)
	}
	if doc.Name != "batch" || !strings.HasPrefix(doc.SpecHash, "sha256:") || len(doc.Estimates) != 2 {
		t.Errorf("spec-file -json malformed: %+v", doc)
	}
	if doc.Estimates[0].Method != "montecarlo" || doc.Estimates[1].Method != "softarch" {
		t.Errorf("methods = %+v", doc.Estimates)
	}

	// Bad files fail loudly.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"components": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "run", badPath); err == nil {
		t.Error("empty-component spec file accepted")
	}
	typoPath := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(typoPath, []byte(`{"component": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "run", typoPath); err == nil {
		t.Error("unknown-field spec file accepted")
	}
	if _, _, err := runCLI(t, "run", filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing spec file accepted")
	}
}

// TestRunSpecFileSamplerFlag covers `-sampler` on the spec-file path:
// sobol runs thread through to the estimate (and its JSON), unknown
// names and sampler-incompatible engines fail loudly.
func TestRunSpecFileSamplerFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "system.json")
	data, err := json.Marshal(busyIdleSpecJSON(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "run", path, "-trials", "2000", "-engine", "fused",
		"-sampler", "sobol", "-json", "-methods", "MC")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"sobol"`) {
		t.Errorf("-json output does not record the sobol sampler:\n%s", out)
	}
	if _, _, err := runCLI(t, "run", path, "-sampler", "halton"); err == nil ||
		!strings.Contains(err.Error(), "halton") {
		t.Errorf("unknown sampler: err = %v, want rejection naming halton", err)
	}
	if _, _, err := runCLI(t, "run", path, "-trials", "2000",
		"-engine", "superposed", "-sampler", "sobol"); err == nil {
		t.Error("sobol accepted on an arrival-enumerating engine")
	}
}

// TestRunExperimentIDWinsOverFile: a stray file in the working
// directory named after an experiment id must not shadow the
// experiment.
func TestRunExperimentIDWinsOverFile(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"fig4", "all"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("not a spec"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	out, _, err := runCLI(t, "run", "fig4", "-quick")
	if err != nil {
		t.Fatalf("file named fig4 shadowed the experiment: %v", err)
	}
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "rel err") {
		t.Errorf("fig4 output malformed:\n%s", out)
	}
}

// TestRunSpecFileNeverFailing: a Spec whose system can never fail
// compares cleanly end to end — exit 0 with "+Inf" MTTFs, not an
// error (the CLI leg of the no-failure bugfix).
func TestRunSpecFileNeverFailing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "never.json")
	spec := map[string]interface{}{
		"name": "idle",
		"components": []map[string]interface{}{{
			"name":          "idle",
			"rate_per_year": 5,
			"trace":         map[string]interface{}{"kind": "busyidle", "period_seconds": 10, "busy_seconds": 0},
		}},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "run", path, "-trials", "100")
	if err != nil {
		t.Fatalf("never-failing spec errored: %v", err)
	}
	if !strings.Contains(out, "+Inf") {
		t.Errorf("never-failing spec output lacks +Inf:\n%s", out)
	}
	for _, want := range []string{"avf+sofr", "montecarlo", "softarch"} {
		if !strings.Contains(out, want) {
			t.Errorf("never-failing spec output missing %q:\n%s", want, out)
		}
	}
	// The JSON form round-trips the infinite MTTFs as "+Inf" strings.
	out, _, err = runCLI(t, "run", path, "-trials", "100", "-json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"+Inf"`) {
		t.Errorf("JSON output lacks \"+Inf\":\n%s", out)
	}
}

// TestRunSpecFileAdaptiveTarget covers the -target-rse flag: the
// Monte-Carlo estimate records the target and stops below the trial
// cap.
func TestRunSpecFileAdaptiveTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "system.json")
	data, err := json.Marshal(busyIdleSpecJSON(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "run", path, "-methods", "mc", "-engine", "fused", "-target-rse", "0.02", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Estimates []struct {
			Method string  `json:"method"`
			Trials int     `json:"trials"`
			Engine string  `json:"engine"`
			Target float64 `json:"target_rel_stderr"`
		} `json:"estimates"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(doc.Estimates) != 1 {
		t.Fatalf("estimates = %+v", doc.Estimates)
	}
	est := doc.Estimates[0]
	if est.Engine != "fused" || est.Target != 0.02 {
		t.Errorf("estimate = %+v, want fused engine with target 0.02", est)
	}
	if est.Trials <= 0 || est.Trials >= 200000 {
		t.Errorf("adaptive trials = %d, want (0, 200000)", est.Trials)
	}
}

// TestBenchValidate covers `soferr bench -validate`: well-formed
// reports pass, malformed ones fail with the file named.
func TestBenchValidate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "BENCH_good.json")
	if err := os.WriteFile(good, []byte(`{"go_version":"go1.24.0","goarch":"amd64","speedup":3.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "bench", "-validate", good)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("validate output missing ok:\n%s", out)
	}
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte(`{"goarch":"amd64"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "bench", "-validate", bad); err == nil {
		t.Error("malformed report accepted")
	}
	// File arguments without -validate are rejected, not ignored.
	if _, _, err := runCLI(t, "bench", good); err == nil {
		t.Error("bench with stray file argument accepted")
	}
}

// TestSweepServerMode covers `soferr sweep -server`: the client-mode
// sweep must render bit-identical output to the in-process path, and
// -cursor must resume from an absolute cell index without changing the
// tail.
func TestSweepServerMode(t *testing.T) {
	url, stop := startServe(t)
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("serve returned %v", err)
		}
	}()

	gridArgs := []string{
		"sweep", "-duty", "0.5", "-rates", "10,1e4", "-counts", "1,2",
		"-methods", "avf+sofr,mc", "-trials", "2000", "-seed", "7", "-csv",
	}
	local, _, err := runCLI(t, gridArgs...)
	if err != nil {
		t.Fatal(err)
	}
	served, _, err := runCLI(t, append(gridArgs, "-server", url)...)
	if err != nil {
		t.Fatal(err)
	}
	if served != local {
		t.Errorf("-server output differs from local:\n--- local ---\n%s--- served ---\n%s", local, served)
	}

	// -cursor K resumes at absolute cell K: header plus the tail of the
	// full run (4 cells x 2 method rows; cursor 2 keeps the last 2 cells).
	resumed, _, err := runCLI(t, append(gridArgs, "-server", url, "-cursor", "2")...)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(local, "\n"), "\n")
	want := strings.Join(append(lines[:1:1], lines[5:]...), "\n") + "\n"
	if resumed != want {
		t.Errorf("-cursor 2 output:\n%s\nwant header + last 2 cells:\n%s", resumed, want)
	}

	// -cursor without -server is rejected, not silently ignored.
	if _, _, err := runCLI(t, "sweep", "-duty", "0.5", "-rates", "10", "-cursor", "1"); err == nil {
		t.Error("-cursor without -server accepted")
	}

	// A dead server surfaces a transport error, not a hang or success.
	if _, _, err := runCLI(t, "sweep", "-duty", "0.5", "-rates", "10", "-server", "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable -server accepted")
	}
}
