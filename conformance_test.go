package soferr_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/units"
)

// samplingEngines are the four Monte-Carlo engines the conformance
// suite cross-checks against the closed-form Exact engine — together
// the five engines every query runs across.
var samplingEngines = []soferr.Engine{soferr.Superposed, soferr.Naive, soferr.Inverted, soferr.Fused}

// conformanceCase is one system of the multi-engine conformance table.
type conformanceCase struct {
	name  string
	comps []soferr.Component
	// exactOK: the Exact engine must answer; otherwise it must refuse
	// with ErrExactUnavailable while every sampling engine still works.
	exactOK bool
	// derivation1, when non-zero, is the independent closed-form MTTF
	// (Derivation 1 / SoftArch union) the Exact engine must match to
	// machine precision.
	derivation1 float64
	// neverFails: every engine must answer +Inf with zero stderr.
	neverFails bool
	// distributionOK: Reliability/FailureQuantile must answer (engine-
	// independent queries; false for the lazy mixture, where no exact
	// tabulation exists).
	distributionOK bool
}

func conformanceCases(t *testing.T) []conformanceCase {
	t.Helper()
	mustSys := func(period, busy float64) soferr.Trace {
		tr, err := soferr.BusyIdleTrace(period, busy)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	d1 := func(ratePerYear, period, busy float64) float64 {
		m, err := soferr.BusyIdleMTTF(ratePerYear, period, busy)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	multiInterval, err := soferr.PeriodicTrace(12, []soferr.Interval{
		{Start: 1, End: 3}, {Start: 5, End: 5.5}, {Start: 8, End: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	levels, err := soferr.TraceFromLevels([]float64{0.8, 0.1, 0.6, 0, 0.3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := soferr.PeriodicTrace(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	gzip, err := soferr.SimulateBenchmark("gzip", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	swim, err := soferr.SimulateBenchmark("swim", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := soferr.CombinedWorkload(gzip.Int, swim.Int)
	if err != nil {
		t.Fatal(err)
	}

	return []conformanceCase{
		{
			name:           "busy-idle single",
			comps:          []soferr.Component{{Name: "c", RatePerYear: 1e6, Trace: mustSys(10, 4)}},
			exactOK:        true,
			derivation1:    d1(1e6, 10, 4),
			distributionOK: true,
		},
		{
			name:           "multi-interval single",
			comps:          []soferr.Component{{Name: "c", RatePerYear: 5e5, Trace: multiInterval}},
			exactOK:        true,
			distributionOK: true,
		},
		{
			name:           "fractional levels single",
			comps:          []soferr.Component{{Name: "c", RatePerYear: 8e5, Trace: levels}},
			exactOK:        true,
			distributionOK: true,
		},
		{
			name: "multi-component equal period",
			comps: []soferr.Component{
				{Name: "a", RatePerYear: 4e5, Trace: mustSys(10, 3)},
				{Name: "b", RatePerYear: 2e5, Trace: multiInterval},
				{Name: "c", RatePerYear: 6e5, Trace: mustSys(10, 7)},
			},
			exactOK:        true,
			distributionOK: true,
		},
		{
			name: "commensurate unequal periods",
			comps: []soferr.Component{
				{Name: "a", RatePerYear: 3e5, Trace: mustSys(6, 2)},
				{Name: "b", RatePerYear: 1e5, Trace: mustSys(8, 5)},
				{Name: "c", RatePerYear: 2e5, Trace: mustSys(12, 9)},
			},
			exactOK:        true,
			distributionOK: true,
		},
		{
			name:           "never failing",
			comps:          []soferr.Component{{Name: "idle", RatePerYear: 1e6, Trace: idle}},
			exactOK:        true,
			neverFails:     true,
			distributionOK: true,
		},
		{
			name:           "single lazy long-loop",
			comps:          []soferr.Component{{Name: "combined", RatePerYear: 1e8, Trace: combined}},
			exactOK:        true,
			distributionOK: true,
		},
		{
			name: "mixed lazy and materialized",
			comps: []soferr.Component{
				{Name: "combined", RatePerYear: 1e8, Trace: combined},
				{Name: "piecewise", RatePerYear: 1e8, Trace: gzip.Int},
			},
			exactOK:        false,
			distributionOK: false,
		},
	}
}

// TestEngineConformance is the multi-engine conformance harness: every
// system in the table is queried through all five engines, asserting
// that the Exact engine matches its closed-form reference to machine
// precision (or refuses with the typed sentinel), that every sampling
// engine lands within stated Monte-Carlo confidence bounds of the
// reference, and that the deterministic contract (zero stderr, zero
// trials, seed-free caching, Compare integration) holds end to end.
func TestEngineConformance(t *testing.T) {
	ctx := context.Background()
	const trials = 20000
	for _, tc := range conformanceCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys, err := soferr.NewSystem(tc.comps, soferr.WithName(tc.name))
			if err != nil {
				t.Fatal(err)
			}

			exactEst, exactErr := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithEngine(soferr.Exact))
			if !tc.exactOK {
				if !errors.Is(exactErr, soferr.ErrExactUnavailable) {
					t.Fatalf("exact err = %v, want ErrExactUnavailable", exactErr)
				}
			} else {
				if exactErr != nil {
					t.Fatalf("exact MTTF: %v", exactErr)
				}
				if exactEst.StdErr != 0 || exactEst.Trials != 0 || exactEst.Seed != 0 ||
					exactEst.TargetRelStdErr != 0 || exactEst.Engine != soferr.Exact {
					t.Errorf("exact estimate breaks the deterministic contract: %+v", exactEst)
				}
				if tc.neverFails {
					if !math.IsInf(exactEst.MTTF, 1) {
						t.Errorf("exact MTTF = %v, want +Inf", exactEst.MTTF)
					}
				} else if !(exactEst.MTTF > 0) || math.IsInf(exactEst.MTTF, 1) {
					t.Errorf("exact MTTF = %v, want finite positive", exactEst.MTTF)
				}
				if tc.derivation1 != 0 {
					if re := math.Abs(exactEst.MTTF-tc.derivation1) / tc.derivation1; re > 1e-12 {
						t.Errorf("exact MTTF = %v, Derivation 1 = %v (rel err %v)", exactEst.MTTF, tc.derivation1, re)
					}
				}
				// Exact is seed- and trial-free: a query with any sampling
				// options hits the same cache entry, with the options
				// normalized out of the estimate.
				cached, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithEngine(soferr.Exact),
					soferr.WithTrials(12345), soferr.WithSeed(99), soferr.WithTargetRelStdErr(0.1))
				if err != nil {
					t.Fatal(err)
				}
				if !cached.Cached {
					t.Error("exact query with sampling options missed the seed-free cache entry")
				}
				if cached.MTTF != exactEst.MTTF || cached.Trials != 0 || cached.Seed != 0 || cached.TargetRelStdErr != 0 {
					t.Errorf("exact cache normalization broken: %+v vs %+v", cached, exactEst)
				}
				// Compare integration: the Monte-Carlo row of a method
				// comparison under the Exact engine is the exact value.
				// (AVF+SOFR is the second method because it answers on
				// every system here; SoftArch rejects unequal periods.)
				ests, err := sys.CompareWith(ctx, []soferr.EstimateOption{soferr.WithEngine(soferr.Exact)},
					soferr.AVFSOFR, soferr.MonteCarlo)
				if err != nil {
					t.Fatalf("CompareWith(exact): %v", err)
				}
				for _, est := range ests {
					if est.Method == soferr.MonteCarlo && est.MTTF != exactEst.MTTF {
						t.Errorf("CompareWith MC row = %v, exact = %v", est.MTTF, exactEst.MTTF)
					}
				}
			}

			// Reference for the sampling engines: exact when available,
			// else the Fused estimate at an independent seed.
			ref := exactEst.MTTF
			if !tc.exactOK {
				fest, err := sys.MTTF(ctx, soferr.MonteCarlo,
					soferr.WithEngine(soferr.Fused), soferr.WithTrials(trials), soferr.WithSeed(1234567))
				if err != nil {
					t.Fatalf("fused reference: %v", err)
				}
				ref = fest.MTTF
			}

			for _, e := range samplingEngines {
				est, err := sys.MTTF(ctx, soferr.MonteCarlo,
					soferr.WithEngine(e), soferr.WithTrials(trials), soferr.WithSeed(17))
				if err != nil {
					t.Fatalf("%v MTTF: %v", e, err)
				}
				if est.Engine != e {
					t.Errorf("estimate engine = %v, want %v", est.Engine, e)
				}
				if tc.neverFails {
					if !math.IsInf(est.MTTF, 1) || est.StdErr != 0 {
						t.Errorf("%v never-failing = %+v, want +Inf with zero stderr", e, est)
					}
					continue
				}
				if est.Trials != trials || !(est.StdErr > 0) {
					t.Errorf("%v estimate lost its sampling metadata: %+v", e, est)
				}
				// 6 sigma two-sided: over this whole table a false alarm is
				// ~never, while a wrong closed form (even a 3% bias) fails
				// deterministically at these trial counts.
				if diff := math.Abs(est.MTTF - ref); diff > 6*est.StdErr {
					t.Errorf("%v MTTF = %v vs reference %v: off by %v > 6*stderr (%v)",
						e, est.MTTF, ref, diff, 6*est.StdErr)
				}
			}

			// Distribution queries are engine-independent; on systems the
			// exact tabulation covers they must satisfy the generalized-
			// inverse property, and on the lazy mixture they must fail
			// loudly rather than approximate.
			if tc.distributionOK {
				if tc.neverFails {
					rel, err := sys.Reliability(ctx, 1e12)
					if err != nil || rel != 1 {
						t.Errorf("never-failing Reliability = %v, %v; want 1", rel, err)
					}
				} else {
					checkQuantileReliabilityConsistency(t, tc.name, sys)
				}
			} else {
				if _, err := sys.Reliability(ctx, 1); err == nil {
					t.Error("Reliability on untabulatable system succeeded")
				}
			}
		})
	}
}

// TestExactMatchesDerivationOneProperty is the randomized Derivation 1
// property: on busy/idle systems the Exact engine reproduces the
// closed form to <= 1e-12 relative error; on equal-period systems it
// matches the independent SoftArch union integral; and C identical
// in-phase copies superpose exactly to one component at C x rate.
func TestExactMatchesDerivationOneProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	relErr := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	exactMTTF := func(comps []soferr.Component) float64 {
		t.Helper()
		sys, err := soferr.NewSystem(comps)
		if err != nil {
			t.Fatal(err)
		}
		est, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithEngine(soferr.Exact))
		if err != nil {
			t.Fatal(err)
		}
		return est.MTTF
	}

	for i := 0; i < 60; i++ {
		period := math.Exp(rng.Float64()*10 - 3)
		rate := math.Exp(rng.Float64()*24 - 8) // errors/year across ~14 decades
		busy := period * (0.05 + 0.9*rng.Float64())

		tr, err := soferr.BusyIdleTrace(period, busy)
		if err != nil {
			t.Fatal(err)
		}
		want, err := soferr.BusyIdleMTTF(rate, period, busy)
		if err != nil {
			t.Fatal(err)
		}
		got := exactMTTF([]soferr.Component{{Name: "c", RatePerYear: rate, Trace: tr}})
		if re := relErr(got, want); re > 1e-12 {
			t.Errorf("case %d (rate %g, period %g, busy %g): exact %v vs Derivation 1 %v (rel err %v)",
				i, rate, period, busy, got, want, re)
		}

		// C-copies identity: C components with the same trace and rate
		// superpose to a single component at C x rate.
		c := 2 + rng.Intn(4)
		copies := make([]soferr.Component, c)
		for j := range copies {
			copies[j] = soferr.Component{Name: fmt.Sprintf("copy%d", j), RatePerYear: rate, Trace: tr}
		}
		scaled := exactMTTF([]soferr.Component{{Name: "c", RatePerYear: float64(c) * rate, Trace: tr}})
		if re := relErr(exactMTTF(copies), scaled); re > 1e-12 {
			t.Errorf("case %d: %d-copies MTTF differs from %dx-rate MTTF (rel err %v)", i, c, c, re)
		}

		// Equal-period heterogeneous system vs the independent SoftArch
		// union-integral implementation.
		tr2, err := soferr.BusyIdleTrace(period, period*(0.1+0.8*rng.Float64()))
		if err != nil {
			t.Fatal(err)
		}
		comps := []soferr.Component{
			{Name: "a", RatePerYear: rate, Trace: tr},
			{Name: "b", RatePerYear: rate * (0.1 + rng.Float64()), Trace: tr2},
		}
		want2, err := soferr.SoftArchMTTF(comps)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(exactMTTF(comps), want2); re > 1e-12 {
			t.Errorf("case %d: exact vs SoftArch union on equal periods (rel err %v)", i, re)
		}
	}
}

// TestExactMetamorphic covers the metamorphic relations of the exact
// integrator: rate scaling on always-vulnerable traces, monotone
// reliability from R(0) = 1, and quantile/reliability inversion on the
// merged-table path (commensurate unequal periods).
func TestExactMetamorphic(t *testing.T) {
	ctx := context.Background()

	// Always-vulnerable: failures are a homogeneous Poisson process, so
	// MTTF = 1/rate exactly and MTTF(k*rate) = MTTF(rate)/k.
	alwaysMTTF := func(ratePerYear float64) float64 {
		t.Helper()
		tr, err := soferr.BusyIdleTrace(10, 10)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: ratePerYear, Trace: tr}})
		if err != nil {
			t.Fatal(err)
		}
		est, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithEngine(soferr.Exact))
		if err != nil {
			t.Fatal(err)
		}
		return est.MTTF
	}
	const base = 1e4
	m1 := alwaysMTTF(base)
	if want := 1 / units.PerYearToPerSecond(base); math.Abs(m1-want)/want > 1e-12 {
		t.Errorf("always-vulnerable MTTF = %v, want 1/rate = %v", m1, want)
	}
	for _, k := range []float64{2, 10, 1e6} {
		mk := alwaysMTTF(base * k)
		if re := math.Abs(mk-m1/k) / (m1 / k); re > 1e-12 {
			t.Errorf("MTTF(%g*rate) = %v, want MTTF/k = %v (rel err %v)", k, mk, m1/k, re)
		}
	}

	// Reliability through the merged-table (commensurate unequal
	// periods) path: R(0) = 1 exactly, monotone non-increasing, in
	// [0, 1] everywhere, including across hyperperiod boundaries.
	mk := func(period, busy float64) soferr.Trace {
		tr, err := soferr.BusyIdleTrace(period, busy)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	sys, err := soferr.NewSystem([]soferr.Component{
		{Name: "a", RatePerYear: 2e5, Trace: mk(6, 2)},
		{Name: "b", RatePerYear: 1e5, Trace: mk(8, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := sys.Reliability(ctx, 0)
	if err != nil || r0 != 1 {
		t.Fatalf("R(0) = %v, %v; want exactly 1", r0, err)
	}
	prev := 1.0
	for x := 0.5; x < 200; x *= 1.7 {
		r, err := sys.Reliability(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev || r < 0 || r > 1 {
			t.Errorf("R(%v) = %v (prev %v): not monotone in [0, 1]", x, r, prev)
		}
		prev = r
	}

	// 1 - R(Q(p)) == p on the same merged-table path.
	checkQuantileReliabilityConsistency(t, "commensurate metamorphic", sys)
}

// TestExactSpecTraceSpeedup pins the acceptance figure behind
// BENCH_exact.json: on the SPEC gzip trace profile, an exact query on
// tabulated state is >= 100x faster than one adaptive Fused run at a 1%
// relative-stderr target (in practice it is >1000x: nanoseconds versus
// milliseconds, since every adaptive query re-runs ~16k trials while
// exact reads the closed form both engines' shared table implies).
func TestExactSpecTraceSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-time comparison skipped in -short")
	}
	simRes, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := montecarlo.Compile([]montecarlo.Component{{
		Name: "int", Rate: units.PerYearToPerSecond(1e6), Trace: simRes.Int,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfgExact := montecarlo.Config{Engine: montecarlo.Exact}
	cfgAdaptive := montecarlo.Config{Engine: montecarlo.Fused, TargetRelStdErr: 0.01, Workers: 1}

	// Warm both paths: the exact tabulation and the fused state build
	// are one-time costs shared with the sampling engines.
	exact, err := compiled.MTTF(ctx, cfgExact)
	if err != nil {
		t.Fatal(err)
	}
	cfgAdaptive.Seed = 1
	ad, err := compiled.MTTF(ctx, cfgAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	if gap := math.Abs(ad.MTTF-exact.MTTF) / exact.MTTF; gap > 5*0.01 {
		t.Fatalf("adaptive MTTF %v vs exact %v: rel gap %v", ad.MTTF, exact.MTTF, gap)
	}

	const exactIters = 200000
	start := time.Now()
	for i := 0; i < exactIters; i++ {
		if _, err := compiled.MTTF(ctx, cfgExact); err != nil {
			t.Fatal(err)
		}
	}
	exactNs := float64(time.Since(start).Nanoseconds()) / exactIters

	const adIters = 5
	start = time.Now()
	for i := 0; i < adIters; i++ {
		cfgAdaptive.Seed = uint64(i + 1)
		if _, err := compiled.MTTF(ctx, cfgAdaptive); err != nil {
			t.Fatal(err)
		}
	}
	adNs := float64(time.Since(start).Nanoseconds()) / adIters

	speedup := adNs / exactNs
	t.Logf("exact query %.1f ns, adaptive fused %.0f ns, speedup %.0fx", exactNs, adNs, speedup)
	if speedup < 100 {
		t.Errorf("exact query speedup = %.1fx, want >= 100x (exact %.1f ns, adaptive %.0f ns)",
			speedup, exactNs, adNs)
	}
}
