package soferr

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"github.com/soferr/soferr/internal/benchsim"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/turandot"
	"github.com/soferr/soferr/internal/workload"
)

// Trace-spec kinds: the declarative constructors a TraceSpec can name.
// Kind matching is case-insensitive.
const (
	// TraceKindBusyIdle is the paper's canonical synthetic loop:
	// vulnerable for the first BusySeconds of every PeriodSeconds.
	TraceKindBusyIdle = "busyidle"
	// TraceKindPeriodic is a 0/1 loop of PeriodSeconds with the listed
	// vulnerable Intervals.
	TraceKindPeriodic = "periodic"
	// TraceKindDay is the Section 4.2 "day" schedule (24-hour loop, busy
	// during the day, idle at night).
	TraceKindDay = "day"
	// TraceKindWeek is the Section 4.2 "week" schedule (busy five
	// business days, idle on the weekend).
	TraceKindWeek = "week"
	// TraceKindCombined is the Section 4.2 "combined" schedule: a
	// 24-hour loop whose halves repeat the A and B benchmark traces
	// (defaulting to the paper's representative gzip/swim pair).
	TraceKindCombined = "combined"
	// TraceKindBenchmark simulates a bundled SPEC CPU2000-like benchmark
	// on the Table 1 machine and uses one of its component masking
	// traces (Unit; default the processor-level union).
	TraceKindBenchmark = "benchmark"
)

// Benchmark units a TraceKindBenchmark spec can select.
const (
	// UnitProcessor is the rate-weighted union of the integer,
	// floating-point, and decode traces (Section 4.2's processor-level
	// failure model; the default).
	UnitProcessor = "processor"
	UnitInt       = "int"
	UnitFP        = "fp"
	UnitDecode    = "decode"
	UnitRegFile   = "regfile"
)

// TraceSpec is a declarative, JSON-serializable trace constructor: it
// names one of the package's trace builders plus its parameters, so a
// masking trace can be described in a config file or an HTTP request
// and built on demand. Which fields matter depends on Kind; unused
// fields must be zero (Validate enforces the required ones).
type TraceSpec struct {
	// Kind selects the constructor (TraceKind*, case-insensitive).
	Kind string `json:"kind"`

	// PeriodSeconds and BusySeconds parameterize busyidle; Period and
	// Intervals parameterize periodic.
	PeriodSeconds float64    `json:"period_seconds,omitempty"`
	BusySeconds   float64    `json:"busy_seconds,omitempty"`
	Intervals     []Interval `json:"intervals,omitempty"`

	// Benchmark names the bundled benchmark to simulate; Unit selects
	// which component trace to use (default UnitProcessor).
	// Instructions and SimSeed override the compiler's simulation
	// defaults (300000 instructions, seed 1) when non-zero. Because a
	// TraceSpec can arrive from an untrusted client, Instructions is
	// capped at MaxSpecInstructions; set Compiler.Instructions for
	// larger operator-controlled simulations.
	Benchmark    string `json:"benchmark,omitempty"`
	Unit         string `json:"unit,omitempty"`
	Instructions int    `json:"instructions,omitempty"`
	SimSeed      uint64 `json:"sim_seed,omitempty"`

	// A and B are the combined schedule's half-day benchmark specs. Nil
	// means the paper's representative pair (gzip and swim, processor
	// unit).
	A *TraceSpec `json:"a,omitempty"`
	B *TraceSpec `json:"b,omitempty"`
}

// Validate checks the spec's structure without building anything:
// known kind, required parameters present and finite, benchmark names
// resolvable.
func (ts TraceSpec) Validate() error { return ts.validate("trace") }

func (ts TraceSpec) validate(path string) error {
	switch strings.ToLower(ts.Kind) {
	case TraceKindBusyIdle:
		if !(ts.PeriodSeconds > 0) || math.IsInf(ts.PeriodSeconds, 0) {
			return fmt.Errorf("%s: busyidle needs period_seconds > 0, got %v", path, ts.PeriodSeconds)
		}
		if ts.BusySeconds < 0 || ts.BusySeconds > ts.PeriodSeconds || math.IsNaN(ts.BusySeconds) {
			return fmt.Errorf("%s: busy_seconds %v outside [0, %v]", path, ts.BusySeconds, ts.PeriodSeconds)
		}
	case TraceKindPeriodic:
		if !(ts.PeriodSeconds > 0) || math.IsInf(ts.PeriodSeconds, 0) {
			return fmt.Errorf("%s: periodic needs period_seconds > 0, got %v", path, ts.PeriodSeconds)
		}
		cursor := 0.0
		for i, iv := range ts.Intervals {
			if iv.Start < cursor || math.IsNaN(iv.Start) {
				return fmt.Errorf("%s: interval %d overlaps or is unsorted", path, i)
			}
			if iv.End <= iv.Start || iv.End > ts.PeriodSeconds || math.IsNaN(iv.End) {
				return fmt.Errorf("%s: interval %d out of range: [%v, %v)", path, i, iv.Start, iv.End)
			}
			cursor = iv.End
		}
	case TraceKindDay, TraceKindWeek:
		// No parameters.
	case TraceKindBenchmark:
		if err := validateBenchmarkSpec(ts, path); err != nil {
			return err
		}
	case TraceKindCombined:
		for _, half := range []struct {
			name string
			spec *TraceSpec
		}{{"a", ts.A}, {"b", ts.B}} {
			if half.spec == nil {
				continue // defaults to the representative pair
			}
			hp := path + "." + half.name
			if strings.EqualFold(half.spec.Kind, TraceKindCombined) {
				return fmt.Errorf("%s: combined halves cannot nest another combined schedule", hp)
			}
			if err := half.spec.validate(hp); err != nil {
				return err
			}
		}
	case "":
		return fmt.Errorf("%s: missing kind (want busyidle, periodic, day, week, combined, or benchmark)", path)
	default:
		return fmt.Errorf("%s: unknown kind %q (want busyidle, periodic, day, week, combined, or benchmark)", path, ts.Kind)
	}
	return nil
}

func validateBenchmarkSpec(ts TraceSpec, path string) error {
	if ts.Benchmark == "" {
		return fmt.Errorf("%s: benchmark spec needs a benchmark name (see 'soferr workloads')", path)
	}
	if _, err := workload.PhasedByName(ts.Benchmark); err != nil {
		if _, err := workload.ByName(ts.Benchmark); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	switch strings.ToLower(ts.Unit) {
	case "", UnitProcessor, UnitInt, UnitFP, UnitDecode, UnitRegFile:
	default:
		return fmt.Errorf("%s: unknown unit %q (want processor, int, fp, decode, or regfile)", path, ts.Unit)
	}
	if ts.Instructions < 0 {
		return fmt.Errorf("%s: negative instructions %d", path, ts.Instructions)
	}
	if ts.Instructions > MaxSpecInstructions {
		return fmt.Errorf("%s: instructions %d exceeds the per-spec cap %d (set Compiler.Instructions for larger operator-controlled simulations)",
			path, ts.Instructions, MaxSpecInstructions)
	}
	return nil
}

// MaxSpecInstructions caps a TraceSpec's per-benchmark simulated
// instruction count. Specs are accepted from untrusted clients (the
// query server), and simulation cost is linear in instructions, so the
// cap bounds the work one request can demand to a few seconds.
// Operator-controlled defaults (Compiler.Instructions, the CLI
// -instructions flag) are not capped.
const MaxSpecInstructions = 2_000_000

// label derives a display name for unnamed sources and components.
func (ts TraceSpec) label() string {
	switch strings.ToLower(ts.Kind) {
	case TraceKindBenchmark:
		return ts.Benchmark
	case TraceKindBusyIdle:
		return fmt.Sprintf("busyidle(%g/%g)", ts.BusySeconds, ts.PeriodSeconds)
	default:
		return strings.ToLower(ts.Kind)
	}
}

// ComponentSpec describes one failure source of a Spec: a trace
// constructor plus the raw error rate, optionally replicated Count
// times in phase.
type ComponentSpec struct {
	// Name labels the component in error messages (optional).
	Name string `json:"name,omitempty"`
	// RatePerYear is the per-component raw (pre-masking) soft error rate
	// in errors/year.
	RatePerYear float64 `json:"rate_per_year"`
	// Count is the number of identical in-phase copies in series
	// (default 1). Identical in-phase components superpose exactly to
	// one component at Count x RatePerYear, which is how the compiled
	// System represents them.
	Count int `json:"count,omitempty"`
	// Trace constructs the component's masking trace.
	Trace TraceSpec `json:"trace"`
}

// Spec is the canonical, declarative description of a series system:
// what a config file or an HTTP request supplies where Go code would
// pass []Component to NewSystem. A Spec is plain data — it marshals to
// stable JSON, validates without compiling, hashes to a stable content
// key (Hash), and compiles to an immutable *System (Compile). Equal
// Specs hash equal, so a cache keyed by Hash serves one compiled System
// to every equivalent request (see internal/server).
type Spec struct {
	// Name labels the compiled system (optional).
	Name string `json:"name,omitempty"`
	// Components are the system's failure sources (at least one).
	Components []ComponentSpec `json:"components"`
}

// Validate checks the spec's structure: at least one component, finite
// non-negative rates, non-negative counts, and valid trace specs. It is
// what Compile runs first, and what the query server runs on every
// decoded request.
func (s Spec) Validate() error {
	if len(s.Components) == 0 {
		return fmt.Errorf("soferr: spec %q has no components", s.Name)
	}
	for i, c := range s.Components {
		path := fmt.Sprintf("soferr: spec %q component %d", s.Name, i)
		if c.Name != "" {
			path = fmt.Sprintf("soferr: spec %q component %d (%s)", s.Name, i, c.Name)
		}
		if c.RatePerYear < 0 || math.IsNaN(c.RatePerYear) || math.IsInf(c.RatePerYear, 0) {
			return fmt.Errorf("%s: invalid rate_per_year %v", path, c.RatePerYear)
		}
		if c.Count < 0 {
			return fmt.Errorf("%s: negative count %d", path, c.Count)
		}
		if err := c.Trace.validate(path + ": trace"); err != nil {
			return err
		}
	}
	return nil
}

// Hash returns a stable content hash of the spec: "sha256:" plus the
// hex digest of the spec's canonical JSON encoding. Equal Spec values
// always hash equal, so the hash is a safe cache key for compiled
// Systems; distinct encodings of the same semantics (an omitted default
// versus the default written out) hash apart, which only costs a
// duplicate cache entry, never a wrong answer.
func (s Spec) Hash() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Non-finite floats cannot marshal; such specs also fail
		// Validate, so this path only keys never-compilable specs. Hash
		// a by-value rendering (pointers dereferenced) so equal Spec
		// values still hash equal.
		data = canonicalSpecBytes(s)
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// canonicalSpecBytes renders a spec deterministically by value for the
// non-marshalable fallback: every field in declaration order, nested
// TraceSpecs dereferenced (never their addresses).
func canonicalSpecBytes(s Spec) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "spec|%q", s.Name)
	for _, c := range s.Components {
		fmt.Fprintf(&b, "|comp{%q %x %d ", c.Name, math.Float64bits(c.RatePerYear), c.Count)
		writeCanonicalTrace(&b, c.Trace)
		b.WriteString("}")
	}
	return []byte(b.String())
}

func writeCanonicalTrace(b *strings.Builder, ts TraceSpec) {
	fmt.Fprintf(b, "trace{%q %x %x [", ts.Kind,
		math.Float64bits(ts.PeriodSeconds), math.Float64bits(ts.BusySeconds))
	for _, iv := range ts.Intervals {
		fmt.Fprintf(b, "(%x %x)", math.Float64bits(iv.Start), math.Float64bits(iv.End))
	}
	fmt.Fprintf(b, "] %q %q %d %d ", ts.Benchmark, ts.Unit, ts.Instructions, ts.SimSeed)
	for _, half := range []*TraceSpec{ts.A, ts.B} {
		if half == nil {
			b.WriteString("nil ")
		} else {
			writeCanonicalTrace(b, *half)
		}
	}
	b.WriteString("}")
}

// Compile validates the spec and builds it into an immutable System
// using a fresh Compiler (default simulation settings, no shared
// benchmark cache). Services compiling many specs should hold one
// Compiler and call its Compile method instead, so specs that share
// benchmark simulations share the work.
func (s Spec) Compile() (*System, error) {
	var c Compiler
	return c.Compile(s)
}

// Compiler turns Specs into compiled Systems. It caches benchmark
// simulations (the expensive, deterministic part of trace building) per
// (benchmark, instructions, seed), so many specs — or one server's
// whole request stream — share each simulation. The zero value is
// ready to use; a Compiler is safe for concurrent use.
type Compiler struct {
	// Instructions is the default per-benchmark simulated instruction
	// count for specs that do not set their own (default 300000).
	Instructions int
	// SimSeed is the default benchmark-generation seed for specs that do
	// not set their own (default 1; 0 means the default).
	SimSeed uint64
	// Log, when non-nil, receives progress lines for benchmark
	// simulations.
	Log io.Writer

	mu    sync.Mutex
	sims  map[simKey]*simEntry
	procs map[simKey]*procEntry
}

type simKey struct {
	bench        string
	instructions int
	seed         uint64
}

// simEntry and procEntry are single-flight cache slots: the entry is
// published under the lock before anyone computes, and every requester
// runs once.Do, so concurrent requests for one key share one
// simulation (or union) instead of racing to duplicate it.
type simEntry struct {
	once   sync.Once
	traces *turandot.ComponentTraces
	err    error
}

type procEntry struct {
	once  sync.Once
	trace *trace.Piecewise
	err   error
}

// maxCompilerCacheEntries bounds each of the compiler's caches. Keys
// are client-controlled (benchmark, instructions, sim seed), so a
// server compiler fed adversarial seed churn would otherwise grow one
// full component-trace set per distinct key forever; past the cap an
// arbitrary entry is evicted (in-flight waiters keep their pointer and
// finish normally).
const maxCompilerCacheEntries = 64

// Compile validates a spec and builds its System: one trace per
// component spec, Count copies superposed into an effective rate, all
// through the compiler's shared benchmark cache.
func (c *Compiler) Compile(spec Spec) (*System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	comps := make([]Component, len(spec.Components))
	for i, cs := range spec.Components {
		tr, err := c.BuildTrace(cs.Trace)
		if err != nil {
			name := cs.Name
			if name == "" {
				name = cs.Trace.label()
			}
			return nil, fmt.Errorf("soferr: spec %q component %d (%s): %w", spec.Name, i, name, err)
		}
		count := cs.Count
		if count == 0 {
			count = 1
		}
		name := cs.Name
		if name == "" {
			name = cs.Trace.label()
		}
		comps[i] = Component{
			Name:        name,
			RatePerYear: cs.RatePerYear * float64(count),
			Trace:       tr,
		}
	}
	return NewSystem(comps, WithName(spec.Name))
}

// BuildTrace constructs the masking trace a TraceSpec describes,
// consulting the compiler's benchmark cache for simulated kinds.
func (c *Compiler) BuildTrace(ts TraceSpec) (Trace, error) {
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("soferr: %w", err)
	}
	switch strings.ToLower(ts.Kind) {
	case TraceKindBusyIdle:
		return BusyIdleTrace(ts.PeriodSeconds, ts.BusySeconds)
	case TraceKindPeriodic:
		return PeriodicTrace(ts.PeriodSeconds, ts.Intervals)
	case TraceKindDay:
		return workload.Day()
	case TraceKindWeek:
		return workload.Week()
	case TraceKindBenchmark:
		return c.benchmarkTrace(ts)
	case TraceKindCombined:
		a, b := ts.A, ts.B
		if a == nil {
			a = &TraceSpec{Kind: TraceKindBenchmark, Benchmark: combinedBenchA}
		}
		if b == nil {
			b = &TraceSpec{Kind: TraceKindBenchmark, Benchmark: combinedBenchB}
		}
		ta, err := c.BuildTrace(*a)
		if err != nil {
			return nil, err
		}
		tb, err := c.BuildTrace(*b)
		if err != nil {
			return nil, err
		}
		pa, ok := ta.(*trace.Piecewise)
		if !ok {
			return nil, fmt.Errorf("soferr: combined half a is not a materialized trace (%T)", ta)
		}
		pb, ok := tb.(*trace.Piecewise)
		if !ok {
			return nil, fmt.Errorf("soferr: combined half b is not a materialized trace (%T)", tb)
		}
		return workload.Combined(pa, pb)
	default:
		// Validate rejected unknown kinds already.
		return nil, fmt.Errorf("soferr: unknown trace kind %q", ts.Kind)
	}
}

// The combined schedule's representative benchmark pair: the shared
// internal/benchsim definition, so Spec-built and harness-built
// combined schedules cannot drift apart.
const (
	combinedBenchA = benchsim.SPECIntRepresentative
	combinedBenchB = benchsim.SPECFPRepresentative
)

func (c *Compiler) simSettings(ts TraceSpec) simKey {
	key := simKey{bench: ts.Benchmark, instructions: ts.Instructions, seed: ts.SimSeed}
	if key.instructions <= 0 {
		key.instructions = c.Instructions
	}
	if key.instructions <= 0 {
		key.instructions = defaultSimInstructions
	}
	if key.seed == 0 {
		key.seed = c.SimSeed
	}
	if key.seed == 0 {
		key.seed = defaultSimSeed
	}
	return key
}

// The package-wide simulation defaults live in internal/benchsim,
// shared with the experiment harness.
const (
	defaultSimInstructions = benchsim.DefaultInstructions
	defaultSimSeed         = benchsim.DefaultSeed
)

// benchmarkTrace returns the requested unit trace of a simulated
// benchmark, running the simulation at most once per (benchmark,
// instructions, seed).
func (c *Compiler) benchmarkTrace(ts TraceSpec) (Trace, error) {
	key := c.simSettings(ts)
	unit := strings.ToLower(ts.Unit)
	if unit == "" {
		unit = UnitProcessor
	}
	if unit == UnitProcessor {
		return c.processorTrace(key)
	}
	sim, err := c.simulate(key)
	if err != nil {
		return nil, err
	}
	switch unit {
	case UnitInt:
		return sim.Int, nil
	case UnitFP:
		return sim.FP, nil
	case UnitDecode:
		return sim.Decode, nil
	case UnitRegFile:
		return sim.RegFile, nil
	default:
		return nil, fmt.Errorf("soferr: unknown benchmark unit %q", ts.Unit)
	}
}

// procEntryFor returns (creating if needed) the single-flight slot for
// a processor-union key, evicting an arbitrary entry past the cap.
func (c *Compiler) procEntryFor(key simKey) *procEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.procs == nil {
		c.procs = make(map[simKey]*procEntry)
	}
	if e, ok := c.procs[key]; ok {
		return e
	}
	if len(c.procs) >= maxCompilerCacheEntries {
		for k := range c.procs {
			delete(c.procs, k)
			break
		}
	}
	e := &procEntry{}
	c.procs[key] = e
	return e
}

// processorTrace builds (and caches, single-flight) the processor-level
// union trace: the rate-weighted union of the integer, floating-point,
// and decode unit traces, coarsened exactly as the experiment harness
// does.
func (c *Compiler) processorTrace(key simKey) (*trace.Piecewise, error) {
	e := c.procEntryFor(key)
	e.once.Do(func() { e.trace, e.err = c.buildProcessorTrace(key) })
	if e.err != nil {
		c.dropProc(key, e)
	}
	return e.trace, e.err
}

func (c *Compiler) buildProcessorTrace(key simKey) (*trace.Piecewise, error) {
	sim, err := c.simulate(key)
	if err != nil {
		return nil, err
	}
	// One shared pipeline with the experiment harness (see
	// internal/benchsim): spec-built and harness-built systems agree
	// bit for bit by construction.
	union, err := benchsim.ProcessorUnion(key.bench, sim)
	if err != nil {
		return nil, fmt.Errorf("soferr: %w", err)
	}
	return union, nil
}

// dropProc removes a failed entry so a later request can retry, but
// only if the slot still holds that exact entry (it may have been
// evicted and replaced meanwhile).
func (c *Compiler) dropProc(key simKey, e *procEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.procs[key]; ok && cur == e {
		delete(c.procs, key)
	}
}

// simEntryFor mirrors procEntryFor for raw benchmark simulations.
func (c *Compiler) simEntryFor(key simKey) *simEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sims == nil {
		c.sims = make(map[simKey]*simEntry)
	}
	if e, ok := c.sims[key]; ok {
		return e
	}
	if len(c.sims) >= maxCompilerCacheEntries {
		for k := range c.sims {
			delete(c.sims, k)
			break
		}
	}
	e := &simEntry{}
	c.sims[key] = e
	return e
}

// simulate runs (and caches, single-flight) one benchmark simulation on
// the Table 1 machine: concurrent requests for one (benchmark,
// instructions, seed) share a single run. Phased-program names are
// accepted alongside the plain profiles, mirroring the experiment
// harness.
func (c *Compiler) simulate(key simKey) (*turandot.ComponentTraces, error) {
	e := c.simEntryFor(key)
	e.once.Do(func() { e.traces, e.err = c.runSimulation(key) })
	if e.err != nil {
		c.dropSim(key, e)
	}
	return e.traces, e.err
}

func (c *Compiler) runSimulation(key simKey) (*turandot.ComponentTraces, error) {
	return benchsim.Simulate(key.bench, key.instructions, key.seed, c.Log)
}

func (c *Compiler) dropSim(key simKey, e *simEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.sims[key]; ok && cur == e {
		delete(c.sims, key)
	}
}

// SourceSpec names a TraceSpec for use on a sweep's trace axis: the
// declarative counterpart of TraceSource, decodable from JSON.
type SourceSpec struct {
	// Name labels the source in cells and results (default: derived from
	// the trace spec).
	Name string `json:"name,omitempty"`
	// Trace describes the source's masking trace.
	Trace TraceSpec `json:"trace"`
}

// Sources converts declarative source specs into lazy TraceSources
// backed by the compiler: each source's trace is built at most once per
// sweep, only if some cell references it, and benchmark simulations are
// shared compiler-wide. The `soferr sweep` CLI and the server's
// /v1/sweep endpoint both build their axes through this path.
func (c *Compiler) Sources(specs []SourceSpec) []TraceSource {
	out := make([]TraceSource, len(specs))
	for i, sp := range specs {
		name := sp.Name
		if name == "" {
			name = sp.Trace.label()
		}
		ts := sp.Trace
		out[i] = TraceSource{
			Name:  name,
			Build: func() (Trace, error) { return c.BuildTrace(ts) },
		}
	}
	return out
}
