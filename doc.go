// Package soferr is an architecture-level soft-error reliability
// toolkit: a Go reproduction of "Architecture-Level Soft Error
// Analysis: Examining the Limits of Common Assumptions" (Li, Adve,
// Bose, Rivers — DSN 2007).
//
// # What it does
//
// Radiation-induced soft errors are transient bit flips. Architectural
// masking means most raw errors do not affect program outcome, and the
// industry-standard way to account for it is the AVF+SOFR method:
// derate each component's raw error rate by its architecture
// vulnerability factor (AVF), sum the derated failure rates (SOFR), and
// invert to get the system MTTF. Both steps assume things about the
// masked failure process — uniform vulnerability and exponential times
// to failure — that architectural masking can violate.
//
// This package provides every tool needed to quantify when that
// matters:
//
//   - Masking traces (Trace): periodic descriptions of when a raw error
//     in a component would be masked, built from schedules, bit vectors,
//     or the bundled cycle-level processor simulator.
//   - The AVF step (AVF, AVFMTTF) and the SOFR step (SOFRMTTF).
//   - A first-principles Monte-Carlo estimator (MonteCarloMTTF) that
//     makes neither assumption.
//   - A SoftArch-style exact survival model (SoftArchMTTF) that computes
//     the same quantity in closed form.
//   - Closed-form analytics for the paper's counter-example workloads
//     (BusyIdleMTTF and friends).
//   - A trace-driven out-of-order POWER4-like timing simulator and 21
//     SPEC CPU2000-like synthetic workloads (SimulateBenchmark) that
//     generate realistic masking traces.
//
// # Quick start
//
//	tr, _ := soferr.BusyIdleTrace(24*time.Hour.Seconds(), 12*time.Hour.Seconds())
//	avfEstimate, _ := soferr.AVFMTTF(10 /* errors/year */, tr)
//	truth, _ := soferr.SoftArchMTTF([]soferr.Component{{
//		Name: "cache", RatePerYear: 10, Trace: tr,
//	}})
//	fmt.Printf("AVF says %.0fs, first principles say %.0fs\n", avfEstimate, truth)
//
// See examples/ for runnable programs and DESIGN.md / EXPERIMENTS.md for
// the mapping from the paper's tables and figures to this code.
package soferr
