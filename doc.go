// Package soferr is an architecture-level soft-error reliability
// toolkit: a Go reproduction of "Architecture-Level Soft Error
// Analysis: Examining the Limits of Common Assumptions" (Li, Adve,
// Bose, Rivers — DSN 2007).
//
// # What it does
//
// Radiation-induced soft errors are transient bit flips. Architectural
// masking means most raw errors do not affect program outcome, and the
// industry-standard way to account for it is the AVF+SOFR method:
// derate each component's raw error rate by its architecture
// vulnerability factor (AVF), sum the derated failure rates (SOFR), and
// invert to get the system MTTF. Both steps assume things about the
// masked failure process — uniform vulnerability and exponential times
// to failure — that architectural masking can violate.
//
// This package provides every tool needed to quantify when that
// matters:
//
//   - Masking traces (Trace): periodic descriptions of when a raw error
//     in a component would be masked, built from schedules, bit vectors,
//     or the bundled cycle-level processor simulator.
//   - A compiled System (NewSystem): validate components once,
//     precompute what every estimator shares, then query MTTF by method
//     (AVFSOFR, MonteCarlo, SoftArch), compare methods on identical
//     state (Compare), and ask distribution-level questions the flat
//     API cannot express (Reliability, FailureQuantile). Monte-Carlo
//     queries choose among five engines (WithEngine) — including Fused,
//     which samples the whole system from one merged cumulative-hazard
//     table in O(log S) per trial regardless of the component count,
//     and Exact, which integrates that same table in closed form (zero
//     trials, zero stderr; ErrExactUnavailable where no tabulation
//     exists) — and can target a precision instead of a trial count
//     (WithTargetRelStdErr): trials run in deterministic doubling
//     rounds until the relative standard error meets the target. The
//     closed-form engines can also swap their uniform source for a
//     scrambled Sobol sequence (WithSampler(Sobol)): quasi-Monte-Carlo
//     reaches a 1% precision target in a fraction of the PCG trial
//     count, with the standard error estimated from independently
//     scrambled replicates and recorded per estimate
//     (Estimate.Sampler).
//   - A design-space sweep engine (Sweep, SweepStream, SweepCells): a
//     Grid of named axes — workloads/traces, raw rates, component
//     counts, estimator methods — evaluated concurrently with one
//     compiled System per unique configuration and deterministic
//     per-cell seeds, so full-grid results are bit-identical for any
//     worker count. The paper's Section 5 tables run on this engine.
//   - A declarative system description (Spec): components as named
//     trace constructors plus rates and counts, JSON-serializable, with
//     validation, a stable content hash (equal Specs hash equal), and
//     Compile to a *System — the wire format of the `soferr serve` HTTP
//     query service, whose compiled-System LRU is keyed by that hash. A
//     Compiler shares benchmark simulations across many Specs.
//   - The flat convenience functions for one-shot use: the AVF step
//     (AVF, AVFMTTF), the SOFR step (SOFRMTTF), the first-principles
//     Monte-Carlo estimator (MonteCarloMTTF), and the SoftArch-style
//     exact survival model (SoftArchMTTF). These are thin wrappers over
//     a single-use System and agree with it bit-for-bit.
//   - Closed-form analytics for the paper's counter-example workloads
//     (BusyIdleMTTF and friends).
//   - A trace-driven out-of-order POWER4-like timing simulator and 21
//     SPEC CPU2000-like synthetic workloads (SimulateBenchmark) that
//     generate realistic masking traces.
//
// # Quick start
//
// Build a System once, then query it as often as you like — every
// query after the first is answered from precompiled state:
//
//	tr, _ := soferr.BusyIdleTrace(24*time.Hour.Seconds(), 12*time.Hour.Seconds())
//	sys, _ := soferr.NewSystem([]soferr.Component{{
//		Name: "cache", RatePerYear: 10, Trace: tr,
//	}})
//	ctx := context.Background()
//	ests, _ := sys.Compare(ctx, soferr.AVFSOFR, soferr.MonteCarlo, soferr.SoftArch)
//	for _, e := range ests {
//		fmt.Printf("%-10v MTTF %.0fs (FIT %.1f)\n", e.Method, e.MTTF, e.FIT)
//	}
//	surviveYear, _ := sys.Reliability(ctx, 365*86400)
//	p01, _ := sys.FailureQuantile(ctx, 0.01)
//	fmt.Printf("P(survive 1yr) = %.4f; 1%% of fleets fail by %.0fs\n", surviveYear, p01)
//
// Monte-Carlo queries take functional options (WithTrials, WithSeed,
// WithEngine, WithWorkers, WithTimeLimit) and honor context
// cancellation mid-run. Seeded runs are deterministic, so repeated
// identical queries are served from a transparent cache.
//
// To evaluate a whole design space rather than one system, sweep a
// grid — every cell's methods run against one shared compiled System,
// and cells with equal (trace, rate x count) products share compilation:
//
//	results, _ := soferr.Sweep(ctx, soferr.Grid{
//		Sources:      sources,              // workloads ([]TraceSource)
//		RatesPerYear: []float64{10, 1e4},   // raw-rate axis
//		Counts:       []int{1, 8, 5000},    // cluster-size axis
//		Seed:         1,                    // per-cell streams derive from this
//	})
//
// The same engine backs the `soferr sweep` CLI subcommand and the
// paper's Section 5 experiment tables (`soferr run fig5 ...`), and the
// whole query surface is servable over HTTP (`soferr serve`): clients
// POST a Spec and estimate options, and equal Specs share one compiled
// System server-side. The serving tier is chaos-hardened — panics in
// estimation code are contained to typed errors on the one request
// that hit them, overload 503s carry Retry-After, readiness
// (/readyz) flips before shutdown drains, and /v1/sweep pages and
// streams with a resumable cursor whose every window is bit-identical
// to the single-shot sweep. The client subpackage
// (github.com/soferr/soferr/client) wraps it all with retry, backoff,
// automatic grid splitting, and stream resume; `soferr sweep -server`
// drives a remote sweep through it. See README.md, "Serving", and
// DESIGN.md, "Failure model".
//
// See README.md for an overview, examples/ for runnable programs, and
// DESIGN.md / EXPERIMENTS.md for the mapping from the paper's tables
// and figures to this code.
//
//soferr:deterministic
package soferr
