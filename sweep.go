package soferr

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"github.com/soferr/soferr/internal/sweep"
	"github.com/soferr/soferr/internal/trace"
)

// TraceSource is one point on a sweep's trace axis: a named workload.
// Exactly one of Trace (pre-materialized) and Build (lazy constructor)
// should be set. A lazy source is built at most once per sweep, and
// only if some cell references it, so expensive sources — simulated
// benchmarks, large unions — cost nothing unless actually swept.
type TraceSource struct {
	// Name labels the source in cells, results, and errors.
	Name string
	// Trace is the pre-materialized masking trace, if available.
	Trace Trace
	// Build constructs the trace on first use.
	Build func() (Trace, error)
}

// Cell is one evaluation point of a sweep: Count identical components,
// each with raw rate RatePerYear (errors/year) filtered by the
// referenced source's trace, estimated under the cell's Seed. See the
// internal sweep package for field semantics; most callers receive
// cells from Grid.Cells rather than building them by hand.
type Cell = sweep.Cell

// CellSeed derives the deterministic per-cell seed used by Grid.Cells:
// a SplitMix64 mix of (base seed, cell index). Exported so hand-built
// cell slices (SweepCells) can reproduce the grid derivation.
func CellSeed(base uint64, index int) uint64 { return sweep.CellSeed(base, index) }

// Grid is a design-space sweep specification: the cross product of a
// trace axis, a per-component raw-rate axis, a component-count axis,
// and an estimator-method axis — the shape of the paper's Section 5
// evaluation (Table 2 varies workload, N x S, and C the same way).
type Grid struct {
	// Name labels the grid in reports.
	Name string
	// Sources is the workload/trace axis (required).
	Sources []TraceSource
	// RatesPerYear is the per-component raw-rate axis in errors/year
	// (required). The paper's convention: rate = N x S x 1e-8/year.
	RatesPerYear []float64
	// Counts is the component-count axis C (optional; nil means {1}).
	// A cell with count C models C identical in-phase components in
	// series, which superpose exactly to one component at C x rate.
	Counts []int
	// Methods is the estimator axis (optional; nil means all three).
	// Every method of a cell runs against the same compiled System, so
	// the comparison is apples-to-apples per cell.
	Methods []Method
	// Seed is the base seed; each cell derives its own stream via
	// CellSeed(Seed, index), so estimates are bit-identical for any
	// worker count.
	Seed uint64
	// SeedFn, when non-nil, overrides the derived per-cell seeds (it
	// receives the cell with axis indices filled in). The experiment
	// harness uses it to preserve historical random streams; most
	// callers should leave it nil.
	SeedFn func(Cell) uint64
}

// Cells enumerates the grid's cells in row-major axis order (sources
// outermost, then rates, then counts) with per-cell seeds assigned.
func (g Grid) Cells() ([]Cell, error) {
	ig := sweep.Grid{
		Name:         g.Name,
		Sources:      toSweepSources(g.Sources),
		RatesPerYear: g.RatesPerYear,
		Counts:       g.Counts,
	}
	cells, err := ig.Cells(g.Seed)
	if err != nil {
		return nil, err
	}
	if g.SeedFn != nil {
		for i := range cells {
			cells[i].Seed = g.SeedFn(cells[i])
		}
	}
	return cells, nil
}

// CellResult is the outcome of one sweep cell: the cell's coordinates
// plus one Estimate per requested method, in method order. Err is set
// (and Estimates nil) when the cell failed — a broken source, an
// uncompilable system, or a failed query.
type CellResult struct {
	Cell      Cell       `json:"cell"`
	Estimates []Estimate `json:"estimates,omitempty"`
	Err       error      `json:"-"`
}

// Sweep evaluates every cell of the grid and returns the results in
// cell order. It is the collecting form of SweepStream and fails fast:
// the first cell error (in cell order) cancels the remaining work and
// is returned.
//
// The engine compiles one System per unique (source, rate x count)
// product and shares it across cells — including across methods, which
// all run against the same compiled state — so a full grid is cheaper
// than per-cell NewSystem calls while remaining bit-identical to them.
// Options apply to every cell (WithSeed is overridden by the per-cell
// seeds; WithWorkers bounds the sweep's total parallelism).
func Sweep(ctx context.Context, g Grid, opts ...EstimateOption) ([]CellResult, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	return SweepCellsAll(ctx, g.Sources, cells, g.Methods, nil, opts...)
}

// SweepCellsAll is the collecting form of SweepCells: it evaluates an
// explicit cell slice and returns the results in cell order, failing
// fast on the first cell error (in cell order). onResult, when
// non-nil, observes each successful result as it completes — progress
// reporting for long sweeps; it is called from the collecting
// goroutine, in cell order.
func SweepCellsAll(ctx context.Context, sources []TraceSource, cells []Cell, methods []Method, onResult func(CellResult), opts ...EstimateOption) ([]CellResult, error) {
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := SweepCells(ctx, sources, cells, methods, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]CellResult, 0, len(cells))
	var firstErr error
	for res := range ch {
		if res.Err != nil && firstErr == nil {
			firstErr = res.Err
			cancel() // fail fast; keep draining so the pool shuts down
			continue
		}
		if firstErr == nil {
			out = append(out, res)
			if onResult != nil {
				onResult(res)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// The stream closes early (without per-cell errors) only when the
	// caller's context was cancelled.
	if len(out) != len(cells) {
		if err := parent.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("soferr: sweep delivered %d of %d cells", len(out), len(cells))
	}
	return out, nil
}

// SweepStream is Sweep without collection: it returns a channel that
// delivers exactly one CellResult per cell, in cell order, then closes.
// Per-cell errors are delivered on the channel rather than stopping the
// sweep. Consumers must either drain the channel or cancel ctx.
func SweepStream(ctx context.Context, g Grid, opts ...EstimateOption) (<-chan CellResult, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	return SweepCells(ctx, g.Sources, cells, g.Methods, opts...)
}

// SweepCells is the sweep engine's explicit-cell entry point: it
// evaluates an arbitrary cell slice (not necessarily a cross product —
// duplicate coordinates with distinct seeds are legal) against the
// given sources and methods, streaming results in cell order. Grid
// sweeps and the experiment harness both run on this path.
//
// Each cell's Index is normalized to its slice position. nil methods
// means all three. Deduplication, determinism, and channel semantics
// are as documented on Sweep and SweepStream.
func SweepCells(ctx context.Context, sources []TraceSource, cells []Cell, methods []Method, opts ...EstimateOption) (<-chan CellResult, error) {
	if len(methods) == 0 {
		methods = Methods()
	}
	var set estimateSettings
	for _, opt := range opts {
		opt(&set)
	}
	// WithWorkers bounds the sweep's total parallelism: the pool runs
	// up to that many cells at once, and any cores left over (small
	// grids on wide machines) go to each cell's Monte-Carlo query.
	total := set.workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	pool := total
	if pool > len(cells) {
		pool = len(cells)
	}
	if pool < 1 {
		pool = 1
	}
	innerWorkers := total / pool
	if innerWorkers < 1 {
		innerWorkers = 1
	}

	baseOpts := append([]EstimateOption(nil), opts...)
	ch, err := sweep.Run(ctx, toSweepSources(sources), cells, sweep.Options{Workers: pool},
		func(name string, tr trace.Trace, effRatePerYear float64) (*System, error) {
			return NewSystem([]Component{{Name: name, RatePerYear: effRatePerYear, Trace: tr}}, WithName(name))
		},
		func(ctx context.Context, sys *System, c Cell) ([]Estimate, error) {
			cellOpts := append(append([]EstimateOption(nil), baseOpts...),
				WithSeed(c.Seed), WithWorkers(innerWorkers))
			ests, err := sys.CompareWith(ctx, cellOpts, methods...)
			if err != nil && set.engine == Exact && errors.Is(err, ErrExactUnavailable) {
				// The cell's hazard cannot be tabulated (incommensurate
				// periods, over-cap merge, lazy trace mixtures): degrade
				// this cell — and only this cell — to the Fused sampler,
				// which handles any trace mixture exactly. The switch is
				// observable: the cell's estimates record Engine = Fused.
				fallback := append(cellOpts, WithEngine(Fused))
				return sys.CompareWith(ctx, fallback, methods...)
			}
			return ests, err
		})
	if err != nil {
		return nil, err
	}
	out := make(chan CellResult)
	go func() {
		defer close(out)
		for r := range ch {
			select {
			case out <- CellResult{Cell: r.Cell, Estimates: r.Value, Err: r.Err}:
			case <-ctx.Done():
				for range ch {
				}
				return
			}
		}
	}()
	return out, nil
}

// toSweepSources adapts the public sources to the engine's. The public
// Trace interface and the internal trace.Trace are structurally
// identical, so values convert implicitly; only the Build signature
// needs a wrapper.
func toSweepSources(sources []TraceSource) []sweep.Source {
	out := make([]sweep.Source, len(sources))
	for i, s := range sources {
		out[i] = sweep.Source{Name: s.Name, Trace: s.Trace}
		if s.Build != nil {
			build := s.Build
			out[i].Build = func() (trace.Trace, error) { return build() }
		}
	}
	return out
}

// BusyIdleSourceSpecs returns one declarative SourceSpec per duty
// cycle: a busy/idle loop of the given period, vulnerable for
// duty x period seconds of each iteration, named "duty=<d>". It is the
// single definition of the duty-cycle axis (the paper's utilization
// dimension: the day schedule is duty 0.5 over 24 hours, the week
// schedule duty 5/7 over a week); BusyIdleSources and the CLI both
// build on it.
func BusyIdleSourceSpecs(period float64, dutyCycles []float64) ([]SourceSpec, error) {
	out := make([]SourceSpec, len(dutyCycles))
	for i, d := range dutyCycles {
		if d < 0 || d > 1 {
			return nil, fmt.Errorf("soferr: duty cycle %v outside [0, 1]", d)
		}
		out[i] = SourceSpec{
			Name:  fmt.Sprintf("duty=%g", d),
			Trace: TraceSpec{Kind: TraceKindBusyIdle, PeriodSeconds: period, BusySeconds: d * period},
		}
	}
	return out, nil
}

// BusyIdleSources is BusyIdleSourceSpecs with the traces materialized
// eagerly: one TraceSource per duty cycle, ready for a Grid.
func BusyIdleSources(period float64, dutyCycles []float64) ([]TraceSource, error) {
	specs, err := BusyIdleSourceSpecs(period, dutyCycles)
	if err != nil {
		return nil, err
	}
	var c Compiler
	out := make([]TraceSource, len(specs))
	for i, sp := range specs {
		tr, err := c.BuildTrace(sp.Trace)
		if err != nil {
			return nil, err
		}
		out[i] = TraceSource{Name: sp.Name, Trace: tr}
	}
	return out, nil
}
