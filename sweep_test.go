package soferr_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/soferr/soferr"
)

func sweepTestGrid(t *testing.T) soferr.Grid {
	t.Helper()
	sources, err := soferr.BusyIdleSources(86400, []float64{0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return soferr.Grid{
		Name:         "test",
		Sources:      sources,
		RatesPerYear: []float64{10, 1e4, 2e4},
		Counts:       []int{1, 2},
		Seed:         1,
	}
}

func sweepOpts(extra ...soferr.EstimateOption) []soferr.EstimateOption {
	return append([]soferr.EstimateOption{
		soferr.WithTrials(2000),
		soferr.WithEngine(soferr.Inverted),
	}, extra...)
}

// TestSweepDeterministicAcrossWorkerCounts is the acceptance check:
// fixed seed, any worker count, bit-identical estimates.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	g := sweepTestGrid(t)
	ctx := context.Background()
	one, err := soferr.Sweep(ctx, g, sweepOpts(soferr.WithWorkers(1))...)
	if err != nil {
		t.Fatal(err)
	}
	many, err := soferr.Sweep(ctx, g, sweepOpts(soferr.WithWorkers(13))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(many) || len(one) != 12 {
		t.Fatalf("result lengths %d vs %d, want 12", len(one), len(many))
	}
	for i := range one {
		if one[i].Cell != many[i].Cell {
			t.Errorf("cell %d differs: %+v vs %+v", i, one[i].Cell, many[i].Cell)
		}
		if len(one[i].Estimates) != 3 {
			t.Fatalf("cell %d has %d estimates, want 3 (all methods)", i, len(one[i].Estimates))
		}
		for m := range one[i].Estimates {
			a, b := one[i].Estimates[m], many[i].Estimates[m]
			if a != b {
				t.Errorf("cell %d method %v: %+v vs %+v", i, a.Method, a, b)
			}
		}
	}
}

// TestSweepMatchesFlatSystemQueries pins the engine's transparency: a
// sweep is bit-identical to hand-rolling NewSystem + CompareWith per
// cell, so the shared-compilation dedup is purely an optimization.
func TestSweepMatchesFlatSystemQueries(t *testing.T) {
	g := sweepTestGrid(t)
	ctx := context.Background()
	res, err := soferr.Sweep(ctx, g, sweepOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		sys, err := soferr.NewSystem([]soferr.Component{{
			Name:        c.SourceName,
			RatePerYear: c.RatePerYear * float64(c.Count),
			Trace:       g.Sources[c.Source].Trace,
		}})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.CompareWith(ctx, sweepOpts(soferr.WithSeed(c.Seed)))
		if err != nil {
			t.Fatal(err)
		}
		got := res[i].Estimates
		if len(got) != len(want) {
			t.Fatalf("cell %d: %d estimates vs %d", i, len(got), len(want))
		}
		for m := range want {
			// Cached is the one field the engine may legitimately set
			// differently (cells sharing a system may hit its cache).
			a, b := got[m], want[m]
			a.Cached, b.Cached = false, false
			if a != b {
				t.Errorf("cell %d method %v: sweep %+v != flat %+v", i, a.Method, a, b)
			}
		}
	}
}

func TestSweepStreamOrderAndMethodsSubset(t *testing.T) {
	g := sweepTestGrid(t)
	g.Methods = []soferr.Method{soferr.SoftArch, soferr.AVFSOFR}
	ch, err := soferr.SweepStream(context.Background(), g, sweepOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for res := range ch {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Cell.Index != i {
			t.Errorf("result %d carries index %d", i, res.Cell.Index)
		}
		if len(res.Estimates) != 2 ||
			res.Estimates[0].Method != soferr.SoftArch ||
			res.Estimates[1].Method != soferr.AVFSOFR {
			t.Errorf("cell %d estimates not in method order: %+v", i, res.Estimates)
		}
		i++
	}
	if i != 12 {
		t.Errorf("streamed %d results, want 12", i)
	}
}

func TestSweepLazySourceBuiltOnce(t *testing.T) {
	tr, err := soferr.BusyIdleTrace(86400, 43200)
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	g := soferr.Grid{
		Sources: []soferr.TraceSource{{
			Name: "lazy",
			Build: func() (soferr.Trace, error) {
				builds.Add(1)
				return tr, nil
			},
		}},
		RatesPerYear: []float64{10, 100, 1000},
		Methods:      []soferr.Method{soferr.AVFSOFR},
	}
	if _, err := soferr.Sweep(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 1 {
		t.Errorf("Build ran %d times, want 1", got)
	}
}

func TestSweepFailFast(t *testing.T) {
	boom := errors.New("no such workload")
	g := soferr.Grid{
		Sources: []soferr.TraceSource{{
			Name:  "broken",
			Build: func() (soferr.Trace, error) { return nil, boom },
		}},
		RatesPerYear: []float64{10},
	}
	_, err := soferr.Sweep(context.Background(), g)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not name the source", err)
	}
}

func TestSweepSeedFnOverride(t *testing.T) {
	g := sweepTestGrid(t)
	g.SeedFn = func(c soferr.Cell) uint64 {
		return uint64(c.Source)*1000 + uint64(c.RateIndex)*10 + uint64(c.CountIndex)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		want := uint64(c.Source)*1000 + uint64(c.RateIndex)*10 + uint64(c.CountIndex)
		if c.Seed != want {
			t.Errorf("cell %d seed %d, want %d", c.Index, c.Seed, want)
		}
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := soferr.Sweep(ctx, sweepTestGrid(t), sweepOpts()...)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestBusyIdleSources(t *testing.T) {
	srcs, err := soferr.BusyIdleSources(100, []float64{0, 0.25, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, 0.25, 1} {
		if got := srcs[i].Trace.AVF(); got != want {
			t.Errorf("source %d AVF = %v, want %v", i, got, want)
		}
	}
	if srcs[1].Name != "duty=0.25" {
		t.Errorf("source name %q", srcs[1].Name)
	}
	if _, err := soferr.BusyIdleSources(100, []float64{1.5}); err == nil {
		t.Error("accepted duty cycle > 1")
	}
}

// TestSweepExactEngine: under WithEngine(Exact) every tabulatable cell
// is answered in closed form — zero stderr, zero trials, and equal to
// Derivation 1 for the busy/idle grid — with Engine = Exact recorded on
// the estimate.
func TestSweepExactEngine(t *testing.T) {
	g := sweepTestGrid(t)
	g.Methods = []soferr.Method{soferr.MonteCarlo}
	res, err := soferr.Sweep(context.Background(), g, soferr.WithEngine(soferr.Exact))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	duties := []float64{0.5, 0.1}
	for i, r := range res {
		est := r.Estimates[0]
		if est.Engine != soferr.Exact || est.StdErr != 0 || est.Trials != 0 || est.Seed != 0 {
			t.Fatalf("cell %d estimate is not deterministic-exact: %+v", i, est)
		}
		c := cells[i]
		want, err := soferr.BusyIdleMTTF(c.RatePerYear*float64(c.Count), 86400, duties[c.Source]*86400)
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(est.MTTF-want) / want; re > 1e-12 {
			t.Errorf("cell %d exact MTTF = %v, Derivation 1 = %v (rel err %v)", i, est.MTTF, want, re)
		}
	}
}

// TestSweepExactFallbackToFused: a cell whose merged hazard table is
// refused (here: a single trace over the segment cap, so even the
// one-component merge exceeds DefaultMaxMergedSegments) degrades to the
// Fused sampler for that cell only, observably via Estimate.Engine; the
// tabulatable cell in the same sweep stays exact.
func TestSweepExactFallbackToFused(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >4M-segment trace")
	}
	bits := make([]bool, (1<<22)+2)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	huge, err := soferr.TraceFromBits(bits, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	small, err := soferr.BusyIdleTrace(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := soferr.Grid{
		Name: "fallback",
		Sources: []soferr.TraceSource{
			{Name: "huge", Trace: huge},
			{Name: "small", Trace: small},
		},
		RatesPerYear: []float64{1e6},
		Methods:      []soferr.Method{soferr.MonteCarlo},
		Seed:         1,
	}
	res, err := soferr.Sweep(context.Background(), g,
		soferr.WithEngine(soferr.Exact), soferr.WithTrials(500))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d cells, want 2", len(res))
	}
	hugeEst, smallEst := res[0].Estimates[0], res[1].Estimates[0]
	if hugeEst.Engine != soferr.Fused || hugeEst.Trials != 500 || !(hugeEst.StdErr > 0) {
		t.Errorf("over-cap cell did not fall back to Fused sampling: %+v", hugeEst)
	}
	if smallEst.Engine != soferr.Exact || smallEst.StdErr != 0 || smallEst.Trials != 0 {
		t.Errorf("tabulatable cell lost the exact engine: %+v", smallEst)
	}
}
