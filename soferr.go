package soferr

import (
	"context"
	"errors"
	"fmt"

	"github.com/soferr/soferr/internal/analytic"
	"github.com/soferr/soferr/internal/avf"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/sofr"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
	"github.com/soferr/soferr/internal/workload"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errUnionEmpty = errors.New("soferr: union of no components")
	errNilTrace   = errors.New("soferr: nil trace")
)

// Trace is a masking trace: an infinitely repeating description of when
// a raw soft error striking a component would be masked. All times are
// seconds; the instantaneous vulnerability is a probability in [0, 1],
// and its time-average over one period is the component's AVF.
type Trace interface {
	// Period returns the workload loop length in seconds.
	Period() float64
	// AVF returns the architecture vulnerability factor.
	AVF() float64
	// VulnAt returns the probability that a raw error arriving at time
	// t is unmasked.
	VulnAt(t float64) float64
	// SurvivalIntegral returns the one-period survival integral and
	// total exposure for a raw error process of the given rate in
	// errors/second; see the softarch documentation for the math.
	SurvivalIntegral(rate float64) (integral, exposure float64)
}

// Interval is a half-open vulnerable time span [Start, End) in seconds.
type Interval struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Component is one failure source: a raw soft error process, in
// errors/year (the paper's convention; 1e-8 errors/year per bit is the
// terrestrial baseline), filtered by a masking trace.
type Component struct {
	// Name labels the component in error messages.
	Name string
	// RatePerYear is the raw (pre-masking) soft error rate.
	RatePerYear float64
	// Trace is the component's masking trace.
	Trace Trace
}

// BusyIdleTrace returns a trace for the paper's canonical synthetic
// loop: vulnerable for the first busy seconds of every period-second
// iteration, masked for the remainder.
func BusyIdleTrace(period, busy float64) (Trace, error) {
	return trace.BusyIdle(period, busy)
}

// PeriodicTrace returns a 0/1 trace with the given vulnerable intervals
// inside each period.
func PeriodicTrace(period float64, vulnerable []Interval) (Trace, error) {
	ivs := make([]trace.Interval, len(vulnerable))
	for i, v := range vulnerable {
		ivs[i] = trace.Interval{Start: v.Start, End: v.End}
	}
	return trace.Periodic(period, ivs)
}

// TraceFromBits returns a cycle-granularity trace: bit i covers
// [i, i+1) * cycleSeconds and is vulnerable when true.
func TraceFromBits(bits []bool, cycleSeconds float64) (Trace, error) {
	return trace.FromBits(bits, cycleSeconds)
}

// TraceFromLevels returns a trace from per-cycle vulnerability levels
// in [0, 1] (e.g. the live fraction of a register file).
func TraceFromLevels(levels []float64, cycleSeconds float64) (Trace, error) {
	return trace.FromLevels(levels, cycleSeconds)
}

// DayWorkload returns the paper's "day" schedule: a 24-hour loop, busy
// during the day and idle at night (Section 4.2).
func DayWorkload() (Trace, error) { return workload.Day() }

// WeekWorkload returns the paper's "week" schedule: busy five business
// days, idle on the weekend.
func WeekWorkload() (Trace, error) { return workload.Week() }

// CombinedWorkload returns the paper's "combined" schedule: a 24-hour
// loop whose halves repeat two benchmark traces (typically obtained
// from SimulateBenchmark). Both traces must be materialized traces as
// produced by this package.
func CombinedWorkload(a, b Trace) (Trace, error) {
	pa, ok := a.(*trace.Piecewise)
	if !ok {
		return nil, fmt.Errorf("soferr: combined workload needs materialized traces, got %T", a)
	}
	pb, ok := b.(*trace.Piecewise)
	if !ok {
		return nil, fmt.Errorf("soferr: combined workload needs materialized traces, got %T", b)
	}
	return workload.Combined(pa, pb)
}

// UnionTrace merges component unit traces into a single trace using the
// components' raw rates as weights; the union is exact for both the
// Monte-Carlo and SoftArch estimators (Poisson superposition). All
// traces must be materialized and share one period. The returned
// component carries the summed rate.
func UnionTrace(components []Component) (Component, error) {
	if len(components) == 0 {
		return Component{}, errUnionEmpty
	}
	weights := make([]float64, len(components))
	pieces := make([]*trace.Piecewise, len(components))
	total := 0.0
	for i, c := range components {
		p, ok := c.Trace.(*trace.Piecewise)
		if !ok {
			return Component{}, fmt.Errorf("soferr: component %s: union needs materialized traces, got %T", c.Name, c.Trace)
		}
		pieces[i] = p
		weights[i] = c.RatePerYear
		total += c.RatePerYear
	}
	u, err := trace.WeightedUnion(weights, pieces)
	if err != nil {
		return Component{}, err
	}
	return Component{Name: "union", RatePerYear: total, Trace: u}, nil
}

// ShiftTrace returns a copy of a materialized trace delayed by offset
// seconds (wrapped into the period). Phase shifts model staggered or
// time-zoned fleets: the paper's cluster analysis assumes all
// components run in phase, which is the worst case for SOFR, and
// shifting lets users quantify how fast SOFR recovers as phases
// decorrelate.
func ShiftTrace(tr Trace, offset float64) (Trace, error) {
	p, ok := tr.(*trace.Piecewise)
	if !ok {
		return nil, fmt.Errorf("soferr: ShiftTrace needs a materialized trace, got %T", tr)
	}
	return trace.Shift(p, offset)
}

// AVF returns the architecture vulnerability factor of a trace.
func AVF(tr Trace) float64 { return tr.AVF() }

// AVFMTTF applies the AVF step (Equation 1 of the paper): it returns
// 1/(rate x AVF) in seconds for a component with the given raw rate in
// errors/year.
func AVFMTTF(ratePerYear float64, tr Trace) (float64, error) {
	if tr == nil {
		return 0, errNilTrace
	}
	return avf.MTTF(units.PerYearToPerSecond(ratePerYear), tr.AVF())
}

// SOFRMTTF applies the SOFR step (Equations 2-3): the system MTTF, in
// seconds, of a series system with the given component MTTFs in
// seconds.
func SOFRMTTF(componentMTTFs []float64) (float64, error) {
	return sofr.SystemMTTF(componentMTTFs)
}

// Engine selects the Monte-Carlo trial implementation.
type Engine = montecarlo.Engine

const (
	// Superposed simulates the union Poisson process and thins every
	// raw arrival (the package's historical default; exact, but cost
	// grows with the masked-arrival count).
	Superposed = montecarlo.Superposed
	// Naive simulates each component separately, mirroring the paper's
	// Section 4.3 description literally.
	Naive = montecarlo.Naive
	// Inverted samples each component's first unmasked arrival in
	// closed form by inverting the trace's cumulative exposure:
	// O(log S) per trial, independent of rate and AVF.
	Inverted = montecarlo.Inverted
	// Fused samples the whole system's failure time from one merged
	// cumulative-hazard table (the superposition of the components'
	// thinned processes, aligned on their hyperperiod): one Exp(1) draw
	// plus one binary search per trial, O(log S_total), independent of
	// the component count. Components whose traces cannot join the
	// merge fall back to per-component sampling inside the same trial.
	Fused = montecarlo.Fused
	// EngineFused is an alias for Fused, matching the engine's wire
	// name ("fused") as the server and CLI docs spell it.
	EngineFused = montecarlo.Fused
	// Exact integrates the merged cumulative-hazard table in closed
	// form instead of sampling it: zero trials, zero standard error,
	// microsecond queries. Estimates record Trials = 0 and Seed = 0;
	// WithTrials, WithSeed, and WithTargetRelStdErr are ignored.
	// Systems whose hazard cannot be tabulated (incommensurate periods,
	// over-cap merges, lazy traces alongside other components) return
	// ErrExactUnavailable; the sweep planner falls back to Fused on it.
	Exact = montecarlo.Exact
	// EngineExact is an alias for Exact, matching the engine's wire
	// name ("exact") as the server and CLI docs spell it.
	EngineExact = montecarlo.Exact
)

// ErrExactUnavailable tags Exact-engine queries on systems whose
// cumulative hazard cannot be tabulated in closed form (incommensurate
// periods, an over-cap merged table, or non-materialized traces
// alongside other failing components). Callers branch with errors.Is
// and fall back to a sampling engine; it also wraps the underlying
// cause, so errors.Is against the specific merge refusal still works.
var ErrExactUnavailable = montecarlo.ErrExactUnavailable

// Sampler selects the uniform-draw source behind a Monte-Carlo query.
type Sampler = montecarlo.Sampler

const (
	// PCG is the default pseudo-random sampler: per-trial reseeded PCG
	// streams, bit-identical for any worker count or batch size. The
	// zero value, so existing callers are unchanged.
	PCG = montecarlo.PCG
	// Sobol is the quasi-Monte-Carlo sampler: an Owen-scrambled Sobol
	// sequence feeds the closed-form draws of the Inverted and Fused
	// engines, typically reaching a precision target in far fewer
	// trials than PCG. The standard error comes from independent
	// scrambled replicates, so adaptive precision targeting works
	// unchanged. Engines without a fixed per-trial draw count
	// (Superposed, Naive, or any system with thinning-fallback
	// components) reject it with ErrSamplerUnsupported.
	Sobol = montecarlo.Sobol
)

// ErrSamplerUnsupported tags Sobol-sampler queries on engine/system
// combinations without a fixed per-trial draw count (the Superposed and
// Naive engines, or systems whose components fall back to literal
// thinning). Callers branch with errors.Is and fall back to the PCG
// sampler.
var ErrSamplerUnsupported = montecarlo.ErrSamplerUnsupported

// MonteCarloOptions tunes MonteCarloMTTF.
type MonteCarloOptions struct {
	// Trials is the number of independent trials (default 200000).
	Trials int
	// Seed makes runs reproducible; equal seeds give identical results.
	Seed uint64
	// Engine selects the trial implementation (default Superposed; use
	// Inverted for rate- and AVF-independent trial cost).
	Engine Engine
	// Sampler selects the uniform-draw source (default PCG; Sobol for
	// quasi-Monte-Carlo convergence on the Inverted and Fused engines).
	Sampler Sampler
}

// MonteCarloResult is a first-principles MTTF estimate.
type MonteCarloResult struct {
	// MTTF is the estimated mean time to failure in seconds.
	MTTF float64
	// StdErr is the standard error of the estimate.
	StdErr float64
	// Trials is the number of trials used.
	Trials int
}

// MonteCarloMTTF estimates the series-system MTTF from first principles
// (Section 4.3 of the paper): exponential raw-error arrivals filtered
// by each component's masking trace, with no AVF or SOFR assumption.
//
// It is the convenience path over a single-use System: equal components
// and settings give results bit-identical to
// NewSystem(components) + MTTF(ctx, MonteCarlo, ...). Build a System
// directly to amortize compilation and caching across queries, and for
// cancellation.
//
//soferr:allow ctxflow documented ctx-less convenience wrapper over a single-use System; callers needing cancellation build a System
func MonteCarloMTTF(components []Component, opt MonteCarloOptions) (MonteCarloResult, error) {
	sys, err := NewSystem(components)
	if err != nil {
		return MonteCarloResult{}, err
	}
	est, err := sys.MTTF(context.Background(), MonteCarlo,
		WithTrials(opt.Trials), WithSeed(opt.Seed), WithEngine(opt.Engine), WithSampler(opt.Sampler))
	if err != nil {
		return MonteCarloResult{}, err
	}
	return MonteCarloResult{MTTF: est.MTTF, StdErr: est.StdErr, Trials: est.Trials}, nil
}

// SoftArchMTTF computes the exact first-principles MTTF, in seconds, of
// a series system via the SoftArch-style survival model (Section 5.4).
// It returns +Inf if no component can ever fail.
//
// It is the convenience path over a single-use System; see NewSystem
// for the build-once/query-many surface.
//
//soferr:allow ctxflow documented ctx-less convenience wrapper over a single-use System; callers needing cancellation build a System
func SoftArchMTTF(components []Component) (float64, error) {
	sys, err := NewSystem(components)
	if err != nil {
		return 0, err
	}
	est, err := sys.MTTF(context.Background(), SoftArch)
	if err != nil {
		return 0, err
	}
	return est.MTTF, nil
}

// BusyIdleMTTF returns the exact MTTF, in seconds, of a component with
// raw rate ratePerYear (errors/year) running the busy/idle loop —
// Derivation 1 of the paper, the closed form behind Figure 3.
func BusyIdleMTTF(ratePerYear, period, busy float64) (float64, error) {
	return analytic.BusyIdleMTTF(units.PerYearToPerSecond(ratePerYear), period, busy)
}

// BusyIdleAVFError returns the relative error of the AVF step on the
// busy/idle loop: one point of the paper's Figure 3.
func BusyIdleAVFError(ratePerYear, period, busy float64) (float64, error) {
	return analytic.BusyIdleAVFError(units.PerYearToPerSecond(ratePerYear), period, busy)
}

// SeriesHalfGaussianSOFRError returns the relative error of the SOFR
// step for a series system of n components with half-Gaussian time to
// failure: one point of the paper's Figure 4.
func SeriesHalfGaussianSOFRError(n int) (float64, error) {
	return analytic.SeriesHalfGaussianSOFRError(n)
}

func toMonteCarlo(components []Component) ([]montecarlo.Component, error) {
	out := make([]montecarlo.Component, len(components))
	for i, c := range components {
		if c.Trace == nil {
			return nil, fmt.Errorf("soferr: component %s has nil trace", c.Name)
		}
		out[i] = montecarlo.Component{
			Name:  c.Name,
			Rate:  units.PerYearToPerSecond(c.RatePerYear),
			Trace: c.Trace,
		}
	}
	return out, nil
}
