package soferr_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/soferr/soferr"
)

// estimatesEqual compares every field bit-for-bit, treating NaN as
// equal to NaN (the one case == cannot express).
func estimatesEqual(a, b soferr.Estimate) bool {
	feq := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return a.Method == b.Method && feq(a.MTTF, b.MTTF) && feq(a.FIT, b.FIT) &&
		feq(a.StdErr, b.StdErr) && a.Trials == b.Trials && a.Seed == b.Seed &&
		a.Engine == b.Engine && a.Sampler == b.Sampler &&
		feq(a.TargetRelStdErr, b.TargetRelStdErr) && a.Cached == b.Cached
}

func roundTrip(t *testing.T, est soferr.Estimate) {
	t.Helper()
	data, err := json.Marshal(est)
	if err != nil {
		t.Fatalf("marshal %+v: %v", est, err)
	}
	var back soferr.Estimate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if !estimatesEqual(est, back) {
		t.Errorf("round trip changed the estimate:\n in  %+v\n out %+v\n via %s", est, back, data)
	}
}

// TestEstimateJSONRoundTripFromQueries is the regression test for the
// confirmed PR 4 bug: json.Unmarshal(json.Marshal(est)) used to drop
// Method/MTTF and error on the string-encoded engine name. Every method
// must round-trip exactly, from real queries.
func TestEstimateJSONRoundTripFromQueries(t *testing.T) {
	ctx := context.Background()
	tr := mustBusyIdle(t, 10, 4)
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: 1e6, Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range soferr.Methods() {
		est, err := sys.MTTF(ctx, m,
			soferr.WithTrials(2000), soferr.WithSeed(7), soferr.WithEngine(soferr.Inverted))
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, est)
	}
	// Cached Monte-Carlo estimates round-trip too (Cached = true).
	est, err := sys.MTTF(ctx, soferr.MonteCarlo,
		soferr.WithTrials(2000), soferr.WithSeed(7), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	if !est.Cached {
		t.Fatal("second identical query not served from cache")
	}
	roundTrip(t, est)

	// Sobol-sampler estimates record the sampler and round-trip it.
	qmc, err := sys.MTTF(ctx, soferr.MonteCarlo,
		soferr.WithTrials(2000), soferr.WithSeed(7),
		soferr.WithEngine(soferr.Fused), soferr.WithSampler(soferr.Sobol))
	if err != nil {
		t.Fatal(err)
	}
	if qmc.Sampler != soferr.Sobol {
		t.Fatalf("Sobol query recorded sampler %v", qmc.Sampler)
	}
	roundTrip(t, qmc)

	// Infinite-MTTF estimates (a system that cannot fail) round-trip
	// through the "+Inf" string encoding.
	idle, err := soferr.PeriodicTrace(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	never, err := soferr.NewSystem([]soferr.Component{{Name: "idle", RatePerYear: 5, Trace: idle}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []soferr.Method{soferr.AVFSOFR, soferr.SoftArch} {
		inf, err := never.MTTF(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(inf.MTTF, 1) {
			t.Fatalf("%v MTTF = %v, want +Inf", m, inf.MTTF)
		}
		roundTrip(t, inf)
	}
}

// TestEstimateJSONRoundTripProperty fuzzes the encoder with randomized
// estimates for all three methods, including non-finite MTTF/FIT/StdErr
// values, and asserts exact field recovery.
func TestEstimateJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	specials := []float64{0, 1, 1e-300, 1e300, math.Inf(1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	randFloat := func() float64 {
		if rng.Intn(4) == 0 {
			return specials[rng.Intn(len(specials))]
		}
		return math.Ldexp(rng.Float64(), rng.Intn(600)-300)
	}
	methods := soferr.Methods()
	engines := []soferr.Engine{soferr.Superposed, soferr.Naive, soferr.Inverted, soferr.Fused}
	for i := 0; i < 500; i++ {
		m := methods[rng.Intn(len(methods))]
		est := soferr.Estimate{
			Method: m,
			MTTF:   randFloat(),
			FIT:    randFloat(),
		}
		if m == soferr.MonteCarlo {
			est.StdErr = randFloat()
			est.Trials = rng.Intn(1 << 20)
			est.Seed = rng.Uint64()
			est.Engine = engines[rng.Intn(len(engines))]
			if rng.Intn(2) == 0 {
				est.Sampler = soferr.Sobol
			}
			est.Cached = rng.Intn(2) == 0
			if rng.Intn(2) == 0 {
				est.TargetRelStdErr = 1 / (2 + rng.Float64()*100)
			}
		}
		roundTrip(t, est)
	}
}

func TestJSONFloatEncodings(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{`"+Inf"`, math.Inf(1)},
		{`"Inf"`, math.Inf(1)},
		{`"+Infinity"`, math.Inf(1)},
		{`"-Inf"`, math.Inf(-1)},
		{`"-Infinity"`, math.Inf(-1)},
		{`"nan"`, math.NaN()},
		{`"NaN"`, math.NaN()},
		{`"1.5"`, 1.5},
		{`2.25`, 2.25},
	}
	for _, c := range cases {
		var f soferr.JSONFloat
		if err := json.Unmarshal([]byte(c.in), &f); err != nil {
			t.Errorf("unmarshal %s: %v", c.in, err)
			continue
		}
		if got := float64(f); math.Float64bits(got) != math.Float64bits(c.want) {
			t.Errorf("unmarshal %s = %v, want %v", c.in, got, c.want)
		}
	}
	var f soferr.JSONFloat
	if err := json.Unmarshal([]byte(`"bogus"`), &f); err == nil {
		t.Error("bogus float string accepted")
	}

	// Per encoding/json convention, null is a no-op for Estimate too.
	est := soferr.Estimate{Method: soferr.SoftArch, MTTF: 42}
	if err := json.Unmarshal([]byte(`null`), &est); err != nil {
		t.Errorf("unmarshal null: %v", err)
	}
	if est.MTTF != 42 {
		t.Errorf("null overwrote the estimate: %+v", est)
	}
}

// TestZeroMTTFEstimate is the regression test for the zero-MTTF FIT
// bug: an MTTF of zero must report an infinite failure rate, not the
// FIT = 0 that means "cannot fail", and RelStdErr must be 0 (not NaN)
// for deterministic zero-MTTF estimates.
func TestZeroMTTFEstimate(t *testing.T) {
	est := soferr.Estimate{Method: soferr.SoftArch, MTTF: 0, FIT: math.Inf(1)}
	if got := est.RelStdErr(); got != 0 {
		t.Errorf("deterministic zero-MTTF RelStdErr = %v, want 0", got)
	}
	roundTrip(t, est)

	// Stochastic zero-MTTF with zero spread is deterministic in effect.
	mc := soferr.Estimate{Method: soferr.MonteCarlo, MTTF: 0, StdErr: 0, Trials: 10}
	if got := mc.RelStdErr(); got != 0 {
		t.Errorf("zero-stderr zero-MTTF RelStdErr = %v, want 0", got)
	}

	// Finite estimates keep the usual ratio.
	fin := soferr.Estimate{Method: soferr.MonteCarlo, MTTF: 100, StdErr: 5}
	if got := fin.RelStdErr(); got != 0.05 {
		t.Errorf("RelStdErr = %v, want 0.05", got)
	}
	// Infinite estimates are perfectly known.
	inf := soferr.Estimate{Method: soferr.SoftArch, MTTF: math.Inf(1)}
	if got := inf.RelStdErr(); got != 0 {
		t.Errorf("infinite-MTTF RelStdErr = %v, want 0", got)
	}
}

// TestNameParsingCaseInsensitive covers the usability satellite: method
// and engine names parse case-insensitively through the single shared
// parser, and truly unknown names still produce the full rejection
// message.
func TestNameParsingCaseInsensitive(t *testing.T) {
	methodCases := map[string]soferr.Method{
		"MC": soferr.MonteCarlo, "MonteCarlo": soferr.MonteCarlo, "MONTECARLO": soferr.MonteCarlo,
		"AVF+SOFR": soferr.AVFSOFR, "AvfSofr": soferr.AVFSOFR,
		"SoftArch": soferr.SoftArch, "SOFTARCH": soferr.SoftArch,
	}
	for name, want := range methodCases {
		got, err := soferr.MethodByName(name)
		if err != nil || got != want {
			t.Errorf("MethodByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := soferr.MethodByName("warp"); err == nil {
		t.Error("unknown method accepted")
	} else if !strings.Contains(err.Error(), `"warp"`) ||
		!strings.Contains(err.Error(), "avf+sofr, montecarlo, or softarch") {
		t.Errorf("unknown-method message unhelpful: %v", err)
	}

	engineCases := map[string]soferr.Engine{
		"Inverted": soferr.Inverted, "INVERTED": soferr.Inverted,
		"Superposed": soferr.Superposed, "Naive": soferr.Naive,
		"Fused": soferr.Fused, "FUSED": soferr.EngineFused,
	}
	for name, want := range engineCases {
		got, err := soferr.EngineByName(name)
		if err != nil || got != want {
			t.Errorf("EngineByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := soferr.EngineByName("quantum"); err == nil {
		t.Error("unknown engine accepted")
	} else if !strings.Contains(err.Error(), `"quantum"`) ||
		!strings.Contains(err.Error(), "superposed, naive, inverted, fused, or exact") {
		t.Errorf("unknown-engine message unhelpful: %v", err)
	}

	samplerCases := map[string]soferr.Sampler{
		"": soferr.PCG, "pcg": soferr.PCG, "PCG": soferr.PCG,
		"sobol": soferr.Sobol, "Sobol": soferr.Sobol, "SOBOL": soferr.Sobol,
	}
	for name, want := range samplerCases {
		got, err := soferr.SamplerByName(name)
		if err != nil || got != want {
			t.Errorf("SamplerByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := soferr.SamplerByName("halton"); err == nil {
		t.Error("unknown sampler accepted")
	} else if !strings.Contains(err.Error(), `"halton"`) ||
		!strings.Contains(err.Error(), "pcg or sobol") {
		t.Errorf("unknown-sampler message unhelpful: %v", err)
	}
}

// TestInvalidArgumentSentinel: out-of-domain query arguments are
// tagged with ErrInvalidArgument so serving layers can classify them
// as caller mistakes without parsing messages.
func TestInvalidArgumentSentinel(t *testing.T) {
	ctx := context.Background()
	tr := mustBusyIdle(t, 10, 4)
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: 10, Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Reliability(ctx, -1); !errors.Is(err, soferr.ErrInvalidArgument) {
		t.Errorf("Reliability(-1) error %v is not ErrInvalidArgument", err)
	}
	if _, err := sys.FailureQuantile(ctx, 1.5); !errors.Is(err, soferr.ErrInvalidArgument) {
		t.Errorf("FailureQuantile(1.5) error %v is not ErrInvalidArgument", err)
	}
	if _, err := sys.Reliability(ctx, 86400); err != nil {
		t.Errorf("valid query tagged: %v", err)
	}
}
