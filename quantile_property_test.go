package soferr_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/soferr/soferr"
)

// quantileProbes are the probabilities the consistency property is
// checked at: the boundaries, a deep tail, and the bulk.
var quantileProbes = []float64{0, 1e-12, 0.25, 0.5, 1 - 1e-15}

// checkQuantileReliabilityConsistency asserts the defining property of
// the generalized inverse on a system where failures only land at
// vulnerable instants: F(FailureQuantile(p)) == p, with
// F(t) = 1 - Reliability(t).
func checkQuantileReliabilityConsistency(t *testing.T, name string, sys *soferr.System) {
	t.Helper()
	ctx := context.Background()
	for _, p := range quantileProbes {
		q, err := sys.FailureQuantile(ctx, p)
		if err != nil {
			t.Fatalf("%s: FailureQuantile(%v): %v", name, p, err)
		}
		if q < 0 || math.IsNaN(q) {
			t.Fatalf("%s: FailureQuantile(%v) = %v", name, p, q)
		}
		rel, err := sys.Reliability(ctx, q)
		if err != nil {
			t.Fatalf("%s: Reliability(%v): %v", name, q, err)
		}
		got := 1 - rel
		// The inversion is closed-form (piecewise-linear exposure), so
		// the only error is float roundoff through exp/log1p: a few ulps
		// relative, with an absolute floor for p = 0.
		tol := 1e-9*p + 1e-15
		if math.Abs(got-p) > tol {
			t.Errorf("%s: 1-Reliability(FailureQuantile(%g)) = %g (|diff| %.3g > %.3g)",
				name, p, got, math.Abs(got-p), tol)
		}
	}
	// p = 1 is the essential supremum of a periodic failing system:
	// always +Inf.
	q1, err := sys.FailureQuantile(ctx, 1)
	if err != nil {
		t.Fatalf("%s: FailureQuantile(1): %v", name, err)
	}
	if !math.IsInf(q1, 1) {
		t.Errorf("%s: FailureQuantile(1) = %v, want +Inf", name, q1)
	}
}

// TestQuantileReliabilityConsistencyProperty promotes the manually
// verified quantile/reliability agreement into a property test over
// random busy/idle and multi-segment systems (0/1 intervals, fractional
// levels, and multi-component unions sharing one period).
func TestQuantileReliabilityConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	randIntervals := func(period float64) []soferr.Interval {
		n := 1 + rng.Intn(4)
		var ivs []soferr.Interval
		cursor := 0.0
		for i := 0; i < n && cursor < period; i++ {
			gap := rng.Float64() * (period - cursor) / 2
			width := rng.Float64() * (period - cursor - gap) / 2
			if width <= 0 {
				break
			}
			ivs = append(ivs, soferr.Interval{Start: cursor + gap, End: cursor + gap + width})
			cursor += gap + width
		}
		if len(ivs) == 0 {
			ivs = []soferr.Interval{{Start: 0, End: period / 2}}
		}
		return ivs
	}

	for i := 0; i < 40; i++ {
		period := math.Exp(rng.Float64()*12 - 2) // ~0.14s .. ~22000s
		rate := math.Exp(rng.Float64()*20 - 5)   // errors/year over ~11 decades
		var (
			sys  *soferr.System
			name string
			err  error
		)
		switch i % 4 {
		case 0: // busy/idle
			busy := rng.Float64() * period
			if busy == 0 {
				busy = period / 3
			}
			tr, terr := soferr.BusyIdleTrace(period, busy)
			if terr != nil {
				t.Fatal(terr)
			}
			name = fmt.Sprintf("busyidle[%d]", i)
			sys, err = soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: rate, Trace: tr}})
		case 1: // multi-interval 0/1 trace
			tr, terr := soferr.PeriodicTrace(period, randIntervals(period))
			if terr != nil {
				t.Fatal(terr)
			}
			name = fmt.Sprintf("periodic[%d]", i)
			sys, err = soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: rate, Trace: tr}})
		case 2: // fractional vulnerability levels
			levels := make([]float64, 3+rng.Intn(6))
			for j := range levels {
				levels[j] = rng.Float64()
			}
			levels[0] = 0.8 // ensure some vulnerability
			tr, terr := soferr.TraceFromLevels(levels, period/float64(len(levels)))
			if terr != nil {
				t.Fatal(terr)
			}
			name = fmt.Sprintf("levels[%d]", i)
			sys, err = soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: rate, Trace: tr}})
		case 3: // multi-component union sharing one period
			tr1, terr := soferr.PeriodicTrace(period, randIntervals(period))
			if terr != nil {
				t.Fatal(terr)
			}
			tr2, terr := soferr.BusyIdleTrace(period, period*(0.1+0.8*rng.Float64()))
			if terr != nil {
				t.Fatal(terr)
			}
			name = fmt.Sprintf("union[%d]", i)
			sys, err = soferr.NewSystem([]soferr.Component{
				{Name: "a", RatePerYear: rate, Trace: tr1},
				{Name: "b", RatePerYear: rate * (0.1 + rng.Float64()), Trace: tr2},
			})
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkQuantileReliabilityConsistency(t, name, sys)
	}
}
