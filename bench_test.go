// Benchmarks regenerating every table and figure in the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus
// micro-benchmarks of the substrates that dominate their cost.
//
// Each BenchmarkFigN/BenchmarkTableN/BenchmarkSecN runs the full
// experiment that reproduces the corresponding paper artifact, using
// reduced grids (Quick) so a complete -bench=. pass stays laptop-sized.
// The recorded full-scale tables live in EXPERIMENTS.md.
package soferr_test

import (
	"context"
	"testing"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/experiments"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/turandot"
	"github.com/soferr/soferr/internal/workload"
)

// benchRunner is shared across experiment benchmarks so that simulator
// runs are cached once, as the CLI does.
func benchRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{
		Quick: true, Trials: 20000, Instructions: 50000, Seed: 1,
	})
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(r, context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkSec51(b *testing.B)  { runExperiment(b, "sec51") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6a(b *testing.B)  { runExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { runExperiment(b, "fig6b") }
func BenchmarkSec54(b *testing.B)  { runExperiment(b, "sec54") }

// --- Substrate micro-benchmarks ---

// BenchmarkSimulator measures timing-simulator throughput in
// instructions retired per benchmark-op.
func BenchmarkSimulator(b *testing.B) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := prof.Generate(100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := turandot.New(turandot.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGen measures synthetic trace generation.
func BenchmarkWorkloadGen(b *testing.B) {
	prof, err := workload.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prof.Generate(100000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// mcEngines are the trial implementations compared head-to-head by the
// Monte-Carlo micro-benchmarks (and recorded in BENCH_mc.json by
// `soferr bench` / `make bench`).
var mcEngines = []montecarlo.Engine{
	montecarlo.Superposed, montecarlo.Naive, montecarlo.Inverted, montecarlo.Fused,
}

// BenchmarkMonteCarloTrials measures Monte-Carlo trial throughput per
// engine on a low-duty-cycle component (busy 1h per 24h day, AVF ~
// 0.04; b.N = trials). Low AVF is the regime that dominates the
// design-space sweeps: the arrival-enumerating engines reject ~1/AVF
// raw arrivals per trial before the first unmasked one, while the
// inverted engine's cost is a constant.
func BenchmarkMonteCarloTrials(b *testing.B) {
	batch, err := trace.BusyIdle(24*3600, 3600)
	if err != nil {
		b.Fatal(err)
	}
	comp := montecarlo.Component{Rate: 1e-4, Trace: batch}
	for _, e := range mcEngines {
		b.Run(e.String(), func(b *testing.B) {
			if _, err := montecarlo.ComponentMTTF(context.Background(), comp, montecarlo.Config{
				Trials: b.N, Seed: 1, Engine: e,
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMonteCarloSPECTrace measures trials per engine against a
// real simulator trace with ~10^4 segments.
func BenchmarkMonteCarloSPECTrace(b *testing.B) {
	res, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	comp := soferr.Component{Name: "int", RatePerYear: 1e6, Trace: res.Int}
	for _, e := range mcEngines {
		b.Run(e.String(), func(b *testing.B) {
			if _, err := soferr.MonteCarloMTTF([]soferr.Component{comp},
				soferr.MonteCarloOptions{Trials: b.N, Seed: 1, Engine: e}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRepeatedMonteCarloQuery measures the build-once/query-many
// payoff of the compiled System: each op is one 20k-trial Monte-Carlo
// MTTF query at fixed settings. The system variant compiles once and
// answers repeats from its (deterministic, hence transparent) query
// cache; the flat variant pays validation, unit conversion, engine
// precomputation, and the full trial loop every call.
func BenchmarkRepeatedMonteCarloQuery(b *testing.B) {
	batch, err := trace.BusyIdle(24*3600, 3600)
	if err != nil {
		b.Fatal(err)
	}
	comps := []soferr.Component{{Name: "batch", RatePerYear: 3153.6, Trace: batch}}
	const trials = 20000
	b.Run("system", func(b *testing.B) {
		sys, err := soferr.NewSystem(comps)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
				soferr.WithTrials(trials), soferr.WithSeed(1), soferr.WithEngine(soferr.Inverted)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := soferr.MonteCarloMTTF(comps, soferr.MonteCarloOptions{
				Trials: trials, Seed: 1, Engine: soferr.Inverted,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRepeatedSoftArchQuery measures the same amortization for the
// deterministic SoftArch method: the flat call rebuilds the
// rate-weighted union and re-integrates survival per call; the compiled
// System computes both once.
func BenchmarkRepeatedSoftArchQuery(b *testing.B) {
	res, err := soferr.SimulateBenchmark("swim", 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	comps := []soferr.Component{
		{Name: "int", RatePerYear: 2.3e-6, Trace: res.Int},
		{Name: "fp", RatePerYear: 4.5e-6, Trace: res.FP},
		{Name: "decode", RatePerYear: 3.3e-6, Trace: res.Decode},
		{Name: "regfile", RatePerYear: 1.0e-4, Trace: res.RegFile},
	}
	b.Run("system", func(b *testing.B) {
		sys, err := soferr.NewSystem(comps)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.MTTF(context.Background(), soferr.SoftArch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := soferr.SoftArchMTTF(comps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSurvivalIntegral measures the SoftArch closed-form path on a
// simulator trace.
func BenchmarkSurvivalIntegral(b *testing.B) {
	res, err := soferr.SimulateBenchmark("swim", 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr := res.FP
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		integral, _ := tr.SurvivalIntegral(1e-3)
		sink += integral
	}
	_ = sink
}

// BenchmarkTraceLookup measures VulnAt on a segment-rich trace.
func BenchmarkTraceLookup(b *testing.B) {
	res, err := soferr.SimulateBenchmark("mcf", 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr := res.Int
	period := tr.Period()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tr.VulnAt(float64(i) * period / 1e6)
	}
	_ = sink
}

// BenchmarkWeightedUnion measures merging unit traces into a processor
// trace.
func BenchmarkWeightedUnion(b *testing.B) {
	res, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	ts := []*trace.Piecewise{
		res.Int.(*trace.Piecewise),
		res.FP.(*trace.Piecewise),
		res.Decode.(*trace.Piecewise),
	}
	w := []float64{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.WeightedUnion(w, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoftArchSystem measures the exact system-MTTF path used by
// Section 5.4 (union + survival integral) on simulator traces.
func BenchmarkSoftArchSystem(b *testing.B) {
	res, err := soferr.SimulateBenchmark("swim", 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	comps := []soferr.Component{
		{Name: "int", RatePerYear: 2.3e-6, Trace: res.Int},
		{Name: "fp", RatePerYear: 4.5e-6, Trace: res.FP},
		{Name: "decode", RatePerYear: 3.3e-6, Trace: res.Decode},
		{Name: "regfile", RatePerYear: 1.0e-4, Trace: res.RegFile},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := soferr.SoftArchMTTF(comps); err != nil {
			b.Fatal(err)
		}
	}
}
