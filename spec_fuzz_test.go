package soferr_test

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/soferr/soferr"
)

// FuzzSpecDecode drives arbitrary bytes through the Spec JSON boundary
// — the same path every config file and HTTP request takes — and
// checks the decode contract: no panic anywhere, Hash is stable and
// well-formed, and a decoded Spec survives a marshal/unmarshal
// round-trip with its hash and validity intact.
func FuzzSpecDecode(f *testing.F) {
	seeds := []string{
		`{"components":[{"rate_per_year":1e-8,"trace":{"kind":"busyidle","period_seconds":1,"busy_seconds":0.5}}]}`,
		`{"name":"cluster","components":[{"name":"node","rate_per_year":2e-8,"count":64,"trace":{"kind":"week"}}]}`,
		`{"components":[{"rate_per_year":1,"trace":{"kind":"periodic","period_seconds":2,"intervals":[{"start":0,"end":1}]}}]}`,
		`{"components":[{"rate_per_year":1,"trace":{"kind":"benchmark","benchmark":"gzip","unit":"regfile","instructions":1000,"sim_seed":7}}]}`,
		`{"components":[{"rate_per_year":1,"trace":{"kind":"combined","a":{"kind":"benchmark","benchmark":"gzip"},"b":{"kind":"benchmark","benchmark":"swim"}}}]}`,
		`{"components":[]}`,
		`{"components":[{"rate_per_year":-1,"trace":{"kind":"busyidle","period_seconds":0}}]}`,
		`{"components":[{"rate_per_year":1,"trace":{"kind":"nosuchkind"}}]}`,
		`null`,
		`{"components":`,
		"{\"name\":\"caf\u00e9 \\ufffd\",\"components\":[{\"trace\":{\"kind\":\"day\"}}]}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s soferr.Spec
		if err := json.Unmarshal(data, &s); err != nil {
			t.Skip()
		}
		h := s.Hash()
		if !strings.HasPrefix(h, "sha256:") || len(h) != len("sha256:")+64 {
			t.Fatalf("Hash() = %q, want sha256: plus 64 hex digits", h)
		}
		if h2 := s.Hash(); h2 != h {
			t.Fatalf("Hash() unstable: %q then %q", h, h2)
		}
		verr := s.Validate() // must not panic, valid or not

		out, err := json.Marshal(s)
		if err != nil {
			// Only non-finite floats fail to marshal, and JSON input
			// cannot produce them.
			t.Fatalf("marshal of decoded spec failed: %v", err)
		}
		var s2 soferr.Spec
		if err := json.Unmarshal(out, &s2); err != nil {
			t.Fatalf("re-decode of marshaled spec failed: %v", err)
		}
		if h2 := s2.Hash(); h2 != h {
			t.Fatalf("hash changed across marshal round-trip: %q then %q", h, h2)
		}
		if verr2 := s2.Validate(); (verr == nil) != (verr2 == nil) {
			t.Fatalf("validity changed across marshal round-trip: %v then %v", verr, verr2)
		}
	})
}
