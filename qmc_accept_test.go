// Non-short acceptance tests for the batched-kernel + QMC PR, run on
// the paper's SPEC-trace profile (the gzip processor trace at 1e6
// errors/year, as BENCH_fused.json records).
package soferr_test

import (
	"context"
	"math"
	"testing"

	"github.com/soferr/soferr"
)

// TestQMCTrialsToTargetHalved is the QMC acceptance criterion: on the
// SPEC-trace profile, the adaptive loop under the scrambled-Sobol
// sampler must reach the 1% relative-standard-error target in at most
// half the trials the PCG sampler needs (the `qmc` section of
// BENCH_fused.json records the measured ratio).
func TestQMCTrialsToTargetHalved(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark simulation skipped in -short mode")
	}
	res, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := soferr.NewSystem([]soferr.Component{
		{Name: "int", RatePerYear: 1e6, Trace: res.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.01
	ctx := context.Background()
	run := func(s soferr.Sampler) soferr.Estimate {
		est, err := sys.MTTF(ctx, soferr.MonteCarlo,
			soferr.WithSeed(1), soferr.WithEngine(soferr.Fused),
			soferr.WithSampler(s), soferr.WithTargetRelStdErr(target))
		if err != nil {
			t.Fatal(err)
		}
		if est.RelStdErr() > target {
			t.Errorf("%v run stopped at RSE %v > target %v", s, est.RelStdErr(), target)
		}
		return est
	}
	pcg := run(soferr.PCG)
	sobol := run(soferr.Sobol)
	if pcg.Trials >= soferr.DefaultTrials {
		t.Fatalf("PCG did not converge below the trial cap (%d); the profile no longer exercises the adaptive loop", pcg.Trials)
	}
	if 2*sobol.Trials > pcg.Trials {
		t.Errorf("Sobol needed %d trials to RSE<=%v, PCG %d: want Sobol <= half of PCG",
			sobol.Trials, target, pcg.Trials)
	}
	// The two samplers estimate the same quantity: agreement within the
	// combined error bars guards against a QMC stderr that is small
	// because it is wrong.
	if diff, bound := math.Abs(pcg.MTTF-sobol.MTTF), 5*(pcg.StdErr+sobol.StdErr); diff > bound {
		t.Errorf("pcg %v vs sobol %v (|diff| %v > %v)", pcg.MTTF, sobol.MTTF, diff, bound)
	}
}
