package soferr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/soferr/soferr/internal/avf"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/sofr"
	"github.com/soferr/soferr/internal/softarch"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

// Method selects an MTTF estimation method on a compiled System.
type Method int

const (
	// AVFSOFR is the industry-standard two-step shortcut: derate each
	// component's raw rate by its AVF (Equation 1), sum the derated
	// failure rates, and invert (Equations 2-3). Deterministic.
	AVFSOFR Method = iota + 1
	// MonteCarlo estimates the MTTF from first principles by sampling
	// raw-error arrivals against the masking traces (Section 4.3).
	// Stochastic: estimates carry a standard error, and equal seeds give
	// bit-identical results.
	MonteCarlo
	// SoftArch computes the same first-principles quantity in closed
	// form via the survival integral (Section 5.4). Deterministic.
	SoftArch
)

// String returns the method's CLI/JSON name.
func (m Method) String() string {
	switch m {
	case AVFSOFR:
		return "avf+sofr"
	case MonteCarlo:
		return "montecarlo"
	case SoftArch:
		return "softarch"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// MethodByName parses a method name as printed by String (plus the
// aliases "avfsofr" and "mc"). Matching is case-insensitive, so the
// CLI flags, server request decoding, and JSON round-trips all accept
// "MC" or "MonteCarlo" as readily as "montecarlo".
func MethodByName(name string) (Method, error) {
	switch strings.ToLower(name) {
	case "avf+sofr", "avfsofr":
		return AVFSOFR, nil
	case "montecarlo", "mc":
		return MonteCarlo, nil
	case "softarch":
		return SoftArch, nil
	default:
		return 0, fmt.Errorf("soferr: unknown method %q (want avf+sofr, montecarlo, or softarch)", name)
	}
}

// EngineByName parses a Monte-Carlo engine name as printed by
// Engine.String, case-insensitively. It is the single name-parsing
// point shared by the CLI -engine flags and the server's request
// decoding.
func EngineByName(name string) (Engine, error) {
	return montecarlo.EngineByName(name)
}

// SamplerByName parses a sampler name as printed by Sampler.String,
// case-insensitively; the empty string is the PCG default. Like
// EngineByName it is the single name-parsing point shared by the CLI
// -sampler flags and the server's request decoding.
func SamplerByName(name string) (Sampler, error) {
	return montecarlo.SamplerByName(name)
}

// Methods returns all estimation methods in comparison order.
func Methods() []Method { return []Method{AVFSOFR, MonteCarlo, SoftArch} }

// DefaultTrials is the default Monte-Carlo trial count.
const DefaultTrials = montecarlo.DefaultTrials

// ErrNoFailurePossible is returned by sample-collecting Monte-Carlo
// runs on a system in which no component can ever fail (every rate or
// AVF is zero): such a system has no failure-time distribution to
// sample. MTTF queries no longer return it — every method, Monte-Carlo
// included, reports MTTF = +Inf with FIT = 0 for a never-failing
// system.
var ErrNoFailurePossible = montecarlo.ErrNoFailurePossible

// ErrInvalidArgument tags query errors caused by out-of-domain
// arguments (a negative time, a probability outside [0, 1]). Callers
// serving untrusted queries can errors.Is against it to distinguish
// caller mistakes from internal failures.
var ErrInvalidArgument = errors.New("invalid argument")

// Estimate is the unified result of one MTTF query: every method
// returns the same shape, so estimates from different methods (or
// different systems) compare directly.
type Estimate struct {
	// Method produced this estimate.
	Method Method
	// MTTF is the estimated mean time to failure in seconds (+Inf when
	// the system cannot fail).
	MTTF float64
	// FIT is the equivalent failure rate in failures per 1e9
	// device-hours (0 when the system cannot fail).
	FIT float64
	// StdErr is the standard error of the estimate in seconds; zero for
	// the deterministic methods.
	StdErr float64
	// Trials and Seed record the Monte-Carlo settings used; zero for
	// the deterministic methods.
	Trials int
	Seed   uint64
	// Engine is the Monte-Carlo trial implementation used (zero
	// otherwise).
	Engine Engine
	// Sampler is the uniform-draw source the Monte-Carlo run used (PCG,
	// the zero value, unless WithSampler selected another). For Sobol
	// runs, Trials is still the effective trial count the estimate
	// averaged over — QMC points count one-for-one as trials.
	Sampler Sampler
	// TargetRelStdErr is the adaptive precision target the query asked
	// for (WithTargetRelStdErr); zero for fixed-trial runs. When set,
	// Trials records the trial count the adaptive run actually used and
	// StdErr the precision it achieved.
	TargetRelStdErr float64
	// Cached reports whether the estimate was served from the system's
	// query cache rather than recomputed. Cached Monte-Carlo estimates
	// are bit-identical to recomputation: equal seeds, trials, and
	// engine always produce equal results.
	Cached bool
}

// RelStdErr returns StdErr/MTTF: the relative precision of the
// estimate. Deterministic estimates (StdErr zero) return 0 even when
// the MTTF itself is zero or infinite.
func (e Estimate) RelStdErr() float64 {
	if e.StdErr == 0 {
		return 0
	}
	if math.IsInf(e.MTTF, 1) {
		return 0
	}
	return e.StdErr / e.MTTF
}

// MarshalJSON renders the estimate with stable string names for method
// and engine and JSON-safe encodings for non-finite floats ("+Inf",
// "NaN" as strings). UnmarshalJSON inverts it exactly:
// json.Unmarshal(json.Marshal(e)) reproduces every field.
func (e Estimate) MarshalJSON() ([]byte, error) {
	out := map[string]interface{}{
		"method":       e.Method.String(),
		"mttf_seconds": JSONFloat(e.MTTF),
		"fit":          JSONFloat(e.FIT),
	}
	if e.Method == MonteCarlo {
		out["stderr_seconds"] = JSONFloat(e.StdErr)
		out["trials"] = e.Trials
		out["seed"] = e.Seed
		out["engine"] = e.Engine.String()
		out["sampler"] = e.Sampler.String()
		out["cached"] = e.Cached
		if e.TargetRelStdErr != 0 {
			out["target_rel_stderr"] = JSONFloat(e.TargetRelStdErr)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the encoding produced by MarshalJSON: string
// method/engine names (case-insensitive) and "+Inf"/"-Inf"/"NaN"
// strings for non-finite floats. Fields absent from the document (the
// Monte-Carlo block is omitted for deterministic estimates) are left at
// their zero values, which is exactly what MarshalJSON elided.
func (e *Estimate) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		// Per encoding/json convention, unmarshaling null is a no-op.
		return nil
	}
	var raw struct {
		Method string    `json:"method"`
		MTTF   JSONFloat `json:"mttf_seconds"`
		FIT    JSONFloat `json:"fit"`
		StdErr JSONFloat `json:"stderr_seconds"`
		Trials  int       `json:"trials"`
		Seed    uint64    `json:"seed"`
		Engine  string    `json:"engine"`
		Sampler string    `json:"sampler"`
		Target  JSONFloat `json:"target_rel_stderr"`
		Cached  bool      `json:"cached"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	method, err := MethodByName(raw.Method)
	if err != nil {
		return err
	}
	var engine Engine
	if raw.Engine != "" {
		engine, err = EngineByName(raw.Engine)
		if err != nil {
			return err
		}
	}
	// SamplerByName treats the empty string as the PCG default, so
	// documents predating the sampler field decode unchanged.
	sampler, err := SamplerByName(raw.Sampler)
	if err != nil {
		return err
	}
	*e = Estimate{
		Method:          method,
		MTTF:            float64(raw.MTTF),
		FIT:             float64(raw.FIT),
		StdErr:          float64(raw.StdErr),
		Trials:          raw.Trials,
		Seed:            raw.Seed,
		Engine:          engine,
		Sampler:         sampler,
		TargetRelStdErr: float64(raw.Target),
		Cached:          raw.Cached,
	}
	return nil
}

// JSONFloat is a float64 that survives JSON: non-finite values marshal
// as the strings "+Inf", "-Inf", and "NaN" (encoding/json rejects them
// as bare numbers) and unmarshal from either form. The package's JSON
// surfaces (Estimate, the query server) use it for every field that can
// legitimately be infinite, like the MTTF of a system that cannot fail.
type JSONFloat float64

// MarshalJSON encodes finite values as numbers and non-finite values as
// quoted strings.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON accepts a JSON number or one of the strings emitted by
// MarshalJSON ("Inf" and "Infinity" spellings are accepted too).
func (f *JSONFloat) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) > 1 && s[0] == '"' {
		var str string
		if err := json.Unmarshal(data, &str); err != nil {
			return err
		}
		switch strings.ToLower(str) {
		case "+inf", "inf", "+infinity", "infinity":
			*f = JSONFloat(math.Inf(1))
		case "-inf", "-infinity":
			*f = JSONFloat(math.Inf(-1))
		case "nan":
			*f = JSONFloat(math.NaN())
		default:
			// Permit quoted finite numbers for symmetry with other
			// string-encoded JSON APIs.
			v, err := strconv.ParseFloat(str, 64)
			if err != nil {
				return fmt.Errorf("soferr: invalid float %q", str)
			}
			*f = JSONFloat(v)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// SystemOption configures NewSystem.
type SystemOption func(*systemConfig)

type systemConfig struct {
	name    string
	noCache bool
}

// WithName labels the system in error messages.
func WithName(name string) SystemOption {
	return func(c *systemConfig) { c.name = name }
}

// WithoutQueryCache disables memoization of query results. Queries are
// deterministic at fixed settings, so the cache is semantically
// transparent; disabling it is useful only for benchmarking the
// underlying estimators.
func WithoutQueryCache() SystemOption {
	return func(c *systemConfig) { c.noCache = true }
}

// EstimateOption tunes one MTTF/Compare query. Zero or unset values
// mean defaults, so options can be threaded through unconditionally.
type EstimateOption func(*estimateSettings)

type estimateSettings struct {
	trials    int
	seed      uint64
	engine    Engine
	sampler   Sampler
	workers   int
	timeLimit time.Duration
	targetRSE float64
}

// WithTrials sets the Monte-Carlo trial count (default DefaultTrials).
func WithTrials(n int) EstimateOption {
	return func(s *estimateSettings) { s.trials = n }
}

// WithSeed selects the deterministic random stream; equal seeds (with
// equal trials and engine) give bit-identical estimates.
func WithSeed(seed uint64) EstimateOption {
	return func(s *estimateSettings) { s.seed = seed }
}

// WithEngine selects the Monte-Carlo trial implementation (default
// Superposed; use Inverted for rate- and AVF-independent trial cost,
// Fused for component-count-independent trial cost, or Exact for the
// trial-free closed-form answer with zero standard error).
func WithEngine(e Engine) EstimateOption {
	return func(s *estimateSettings) { s.engine = e }
}

// WithSampler selects the Monte-Carlo uniform-draw source (default
// PCG). Sobol switches the Inverted and Fused engines to Owen-scrambled
// quasi-Monte-Carlo points: variance falls near O(1/n) instead of
// O(1/sqrt n), so adaptive precision targets are reached in far fewer
// trials. Sampler-incompatible engines (Superposed, Naive, or systems
// with thinning-fallback components) reject Sobol with
// ErrSamplerUnsupported; the Exact engine ignores samplers entirely.
func WithSampler(s Sampler) EstimateOption {
	return func(set *estimateSettings) { set.sampler = s }
}

// WithWorkers bounds Monte-Carlo parallelism (default GOMAXPROCS).
// Worker count never changes the estimate, only the wall time.
func WithWorkers(n int) EstimateOption {
	return func(s *estimateSettings) { s.workers = n }
}

// WithTimeLimit bounds the query's wall time: the query's context is
// cancelled after d, and an over-budget Monte-Carlo run returns
// context.DeadlineExceeded.
func WithTimeLimit(d time.Duration) EstimateOption {
	return func(s *estimateSettings) { s.timeLimit = d }
}

// WithTargetRelStdErr switches a Monte-Carlo query to adaptive
// precision targeting: trials run in deterministic doubling rounds
// until the relative standard error (StdErr/MTTF) reaches target, the
// trial cap (WithTrials, default DefaultTrials) stops it, or the
// query's context ends. Adaptive estimates are bit-identical for any
// worker count, record the trials actually used in Estimate.Trials,
// and carry the target in Estimate.TargetRelStdErr. A target of zero
// means a fixed-trial run; targets outside [0, 1) are rejected with
// ErrInvalidArgument.
func WithTargetRelStdErr(target float64) EstimateOption {
	return func(s *estimateSettings) { s.targetRSE = target }
}

// exposureTrace is the capability the distribution-level queries need:
// a trace whose cumulative exposure m(t) can be evaluated and inverted.
// Both materialized trace kinds (Piecewise and the lazy LongLoop that
// backs CombinedWorkload) provide it.
type exposureTrace interface {
	Trace
	TotalExposure() float64
	Exposure(x float64) float64
	InvertExposure(e float64) float64
}

// System is an immutable, precompiled series system: NewSystem
// validates the components once, converts units, and precomputes the
// state every estimator shares — per-second rates, per-component AVF
// MTTFs, the Monte-Carlo alias table and exposure-inversion samplers,
// and the rate-weighted union trace behind the distribution queries.
// All queries are safe for concurrent use, and deterministic queries
// (plus seeded Monte-Carlo runs, which are deterministic too) are
// memoized, so a long-lived System answers repeated traffic at
// cache-hit cost.
type System struct {
	name       string
	components []Component
	noCache    bool

	mc *montecarlo.Compiled

	// avfSofr is the precomputed AVF+SOFR estimate (deterministic).
	avfSofr float64
	avfErr  error

	// Union of the live components (rate-weighted), for SoftArch and
	// the distribution queries. It is compiled lazily (unionOnce) so
	// Monte-Carlo-only users — including the flat MonteCarloMTTF
	// wrapper — never pay the O(segments) merge. unionErr defers
	// union-impossible configurations (mismatched periods,
	// non-materialized traces in a multi-component system) to the
	// queries that need the union.
	unionOnce  sync.Once
	unionRate  float64 // errors/second, live components only
	unionTrace exposureTrace
	unionErr   error

	softArchOnce sync.Once
	softArchMTTF float64
	softArchErr  error

	mcCache     sync.Map // mcCacheKey -> Estimate
	mcCacheSize atomic.Int64
}

// maxCachedEstimates bounds the Monte-Carlo query cache. A serving
// System fed per-request seeds or trial counts would otherwise grow one
// Estimate per distinct setting forever; past the cap, results are
// still computed and returned, just not retained.
const maxCachedEstimates = 4096

type mcCacheKey struct {
	trials    int
	seed      uint64
	engine    Engine
	sampler   Sampler
	targetRSE float64
}

// NewSystem compiles components into an immutable System. It validates
// every component (non-nil trace, finite non-negative rate) and
// precomputes everything the estimators share; afterwards every query
// runs against read-only state. Components that can never fail (zero
// rate or zero AVF) are legal: if nothing can fail, every method —
// Monte-Carlo included — reports MTTF = +Inf with FIT = 0.
func NewSystem(components []Component, opts ...SystemOption) (*System, error) {
	var cfg systemConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	label := cfg.name
	if label == "" {
		label = "system"
	}
	if len(components) == 0 {
		return nil, fmt.Errorf("soferr: %s has no components", label)
	}
	s := &System{
		name:       cfg.name,
		components: make([]Component, len(components)),
		noCache:    cfg.noCache,
	}
	copy(s.components, components)
	for i, c := range s.components {
		if c.Trace == nil {
			return nil, fmt.Errorf("soferr: %s component %d (%s) has nil trace", label, i, c.Name)
		}
		if c.RatePerYear < 0 || math.IsNaN(c.RatePerYear) || math.IsInf(c.RatePerYear, 0) {
			return nil, fmt.Errorf("soferr: %s component %d (%s) has invalid rate %v", label, i, c.Name, c.RatePerYear)
		}
	}

	mcs, err := toMonteCarlo(s.components)
	if err != nil {
		return nil, err
	}
	s.mc, err = montecarlo.Compile(mcs)
	if err != nil {
		return nil, fmt.Errorf("soferr: %s: %w", label, err)
	}

	// AVF+SOFR is cheap and deterministic: compute at build time.
	mttfs := make([]float64, len(s.components))
	for i, c := range s.components {
		mttfs[i], err = avf.MTTF(units.PerYearToPerSecond(c.RatePerYear), c.Trace.AVF())
		if err != nil {
			s.avfErr = fmt.Errorf("soferr: %s component %s: %w", label, c.Name, err)
			break
		}
	}
	if s.avfErr == nil {
		s.avfSofr, s.avfErr = sofr.SystemMTTF(mttfs)
	}
	return s, nil
}

// ensureUnion compiles the union on first use by a query that needs it.
func (s *System) ensureUnion() {
	s.unionOnce.Do(s.compileUnion)
}

// compileUnion builds the rate-weighted union of the live components
// that backs SoftArch and the distribution queries. Configurations
// without a usable union record the error instead of failing the
// build: the per-method MTTF queries do not all need it.
func (s *System) compileUnion() {
	var live []Component
	for _, c := range s.components {
		if c.RatePerYear > 0 && c.Trace.AVF() > 0 {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return // never fails; Reliability is identically 1
	}
	for _, c := range live {
		s.unionRate += units.PerYearToPerSecond(c.RatePerYear)
	}
	if len(live) == 1 {
		et, ok := live[0].Trace.(exposureTrace)
		if !ok {
			s.unionErr = fmt.Errorf("soferr: distribution queries need materialized traces, got %T", live[0].Trace)
			return
		}
		s.unionTrace = et
		return
	}
	// Per-second weights match package softarch's internal union
	// exactly, so the SoftArch query through this union is
	// bit-identical to the flat softarch.SystemMTTF path.
	weights := make([]float64, len(live))
	pieces := make([]*trace.Piecewise, len(live))
	for i, c := range live {
		p, ok := c.Trace.(*trace.Piecewise)
		if !ok {
			s.unionErr = fmt.Errorf("soferr: component %s: multi-component distribution queries need materialized traces, got %T", c.Name, c.Trace)
			return
		}
		pieces[i] = p
		weights[i] = units.PerYearToPerSecond(c.RatePerYear)
	}
	u, err := trace.WeightedUnion(weights, pieces)
	if err != nil {
		s.unionErr = fmt.Errorf("soferr: %w", err)
		return
	}
	s.unionTrace = u
}

// Name returns the system's label (empty unless WithName was given).
func (s *System) Name() string { return s.name }

// Components returns a copy of the compiled component list.
func (s *System) Components() []Component {
	out := make([]Component, len(s.components))
	copy(out, s.components)
	return out
}

// RatePerYear returns the summed raw (pre-masking) error rate.
func (s *System) RatePerYear() float64 {
	total := 0.0
	for _, c := range s.components {
		total += c.RatePerYear
	}
	return total
}

// MTTF estimates the system MTTF with the given method. Settings that a
// method does not use are ignored (seeds do not change AVF+SOFR).
// Deterministic methods and repeated identical Monte-Carlo queries are
// served from the compiled state at cache-hit cost.
func (s *System) MTTF(ctx context.Context, method Method, opts ...EstimateOption) (Estimate, error) {
	var set estimateSettings
	for _, opt := range opts {
		opt(&set)
	}
	if set.timeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, set.timeLimit)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	switch method {
	case AVFSOFR:
		if s.avfErr != nil {
			return Estimate{}, s.avfErr
		}
		return newEstimate(AVFSOFR, s.avfSofr, 0, estimateSettings{}), nil
	case SoftArch:
		s.softArchOnce.Do(func() {
			s.softArchMTTF, s.softArchErr = s.computeSoftArch()
		})
		if s.softArchErr != nil {
			return Estimate{}, s.softArchErr
		}
		return newEstimate(SoftArch, s.softArchMTTF, 0, estimateSettings{}), nil
	case MonteCarlo:
		return s.monteCarlo(ctx, set)
	default:
		return Estimate{}, fmt.Errorf("soferr: unknown method %v", method)
	}
}

// Compare runs several methods against the same compiled state and
// returns their estimates in argument order. With no methods given it
// compares all three. Settings apply to every stochastic method, so the
// comparison is apples-to-apples at one (trials, seed, engine) point.
func (s *System) Compare(ctx context.Context, methods ...Method) ([]Estimate, error) {
	return s.CompareWith(ctx, nil, methods...)
}

// CompareWith is Compare with explicit per-query options.
func (s *System) CompareWith(ctx context.Context, opts []EstimateOption, methods ...Method) ([]Estimate, error) {
	if len(methods) == 0 {
		methods = Methods()
	}
	out := make([]Estimate, 0, len(methods))
	for _, m := range methods {
		est, err := s.MTTF(ctx, m, opts...)
		if err != nil {
			// The underlying error is already package-prefixed; only
			// name the failing method.
			return nil, fmt.Errorf("%v: %w", m, err)
		}
		out = append(out, est)
	}
	return out, nil
}

func (s *System) computeSoftArch() (float64, error) {
	// Reuse the compiled union instead of rebuilding it per query; the
	// per-second weights make this identical to softarch.SystemMTTF on
	// the raw components.
	s.ensureUnion()
	if s.unionRate == 0 {
		return math.Inf(1), nil
	}
	if s.unionErr == nil {
		return softarch.ComponentMTTF(s.unionRate, s.unionTrace)
	}
	// No precompiled union (e.g. a single live component whose trace is
	// not materialized): fall back to the flat path, which handles any
	// single Trace and reports precise errors otherwise.
	sas := make([]softarch.Component, len(s.components))
	for i, c := range s.components {
		sas[i] = softarch.Component{
			Name:  c.Name,
			Rate:  units.PerYearToPerSecond(c.RatePerYear),
			Trace: c.Trace,
		}
	}
	return softarch.SystemMTTF(sas)
}

func (s *System) monteCarlo(ctx context.Context, set estimateSettings) (Estimate, error) {
	// Normalize the settings that determine the result so equivalent
	// queries share one cache entry. Workers and time limits change
	// only the wall time, never the value.
	if set.trials <= 0 {
		set.trials = DefaultTrials
	}
	if set.engine == 0 {
		set.engine = Superposed
	}
	if set.targetRSE < 0 || set.targetRSE >= 1 || math.IsNaN(set.targetRSE) {
		return Estimate{}, fmt.Errorf("soferr: Monte-Carlo target relative standard error %v outside [0, 1): %w",
			set.targetRSE, ErrInvalidArgument)
	}
	if set.engine == Exact {
		// The exact engine is trial-free and deterministic: trials,
		// seed, sampler, and precision target cannot change the answer,
		// so they are normalized out of the cache key and the estimate —
		// every exact query on this system shares one cache entry.
		set.trials, set.seed, set.sampler, set.targetRSE = 0, 0, PCG, 0
	}
	key := mcCacheKey{trials: set.trials, seed: set.seed, engine: set.engine, sampler: set.sampler, targetRSE: set.targetRSE}
	if !s.noCache {
		if v, ok := s.mcCache.Load(key); ok {
			est := v.(Estimate)
			est.Cached = true
			return est, nil
		}
	}
	res, err := s.mc.MTTF(ctx, montecarlo.Config{
		Trials:          set.trials,
		Seed:            set.seed,
		Engine:          set.engine,
		Sampler:         set.sampler,
		Workers:         set.workers,
		TargetRelStdErr: set.targetRSE,
	})
	if err != nil {
		return Estimate{}, err
	}
	est := newEstimate(MonteCarlo, res.MTTF, res.StdErr, set)
	est.Trials = res.Trials
	// Bounded retention: LoadOrStore so concurrent first-queries count
	// each key once; a race can overshoot the cap by at most the number
	// of in-flight queries.
	if !s.noCache && s.mcCacheSize.Load() < maxCachedEstimates {
		if _, loaded := s.mcCache.LoadOrStore(key, est); !loaded {
			s.mcCacheSize.Add(1)
		}
	}
	return est, nil
}

func newEstimate(m Method, mttf, stderr float64, set estimateSettings) Estimate {
	est := Estimate{
		Method: m,
		MTTF:   mttf,
		StdErr: stderr,
	}
	switch {
	case mttf == 0:
		// A zero MTTF is instantaneous failure: infinite failure rate,
		// not the FIT = 0 of a system that cannot fail.
		est.FIT = math.Inf(1)
	case !math.IsInf(mttf, 1):
		est.FIT = units.PerYearToFIT(units.PerSecondToPerYear(1 / mttf))
	}
	if m == MonteCarlo {
		est.Trials = set.trials
		est.Seed = set.seed
		est.Engine = set.engine
		est.Sampler = set.sampler
		est.TargetRelStdErr = set.targetRSE
	}
	return est
}

// Reliability returns the exact probability that the system survives
// (suffers no unmasked error) through [0, t]: the first-principles
// survival function S(t) = exp(-sum_i rate_i * m_i(t)) the flat MTTF
// API cannot express. All failing components must have materialized
// traces; systems with several failing components need a shared period
// or commensurate periods (the latter answer from the merged hazard
// table that also backs the Exact engine).
func (s *System) Reliability(ctx context.Context, t float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if t < 0 || math.IsNaN(t) {
		return 0, fmt.Errorf("soferr: Reliability at invalid time %v: %w", t, ErrInvalidArgument)
	}
	s.ensureUnion()
	if s.unionRate == 0 {
		return 1, nil // no component can ever fail
	}
	if s.unionErr != nil {
		// The equal-period union is not the only exact route: the
		// merged hazard table (the Exact engine's state) covers
		// commensurate unequal periods too. Only if both refuse is the
		// query unanswerable, and the union's error names the cause.
		if r, exErr := s.mc.ExactReliability(t); exErr == nil {
			return r, nil
		}
		return 0, s.unionErr
	}
	if math.IsInf(t, 1) {
		// exposureAt would compute Inf - Inf; a failing periodic system
		// accumulates unbounded hazard, so survival forever is zero.
		return 0, nil
	}
	return math.Exp(-s.unionRate * exposureAt(s.unionTrace, t)), nil
}

// FailureQuantile returns the time by which the system has failed with
// probability p: the generalized inverse of 1 - Reliability. The result
// is the earliest instant at which the failure probability exceeds p
// (failures only land at vulnerable instants, so quantiles jump across
// idle spans). p = 0 returns the first vulnerable instant; p = 1 and
// systems that can never fail return +Inf.
func (s *System) FailureQuantile(ctx context.Context, p float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("soferr: FailureQuantile of invalid probability %v: %w", p, ErrInvalidArgument)
	}
	if p == 1 {
		return math.Inf(1), nil
	}
	s.ensureUnion()
	if s.unionRate == 0 {
		return math.Inf(1), nil
	}
	if s.unionErr != nil {
		// As in Reliability: commensurate unequal periods invert on the
		// merged hazard table instead.
		if q, exErr := s.mc.ExactFailureQuantile(p); exErr == nil {
			return q, nil
		}
		return 0, s.unionErr
	}
	// F(t) = 1 - exp(-R*m(t)) > p  <=>  m(t) > -log1p(-p)/R.
	target := -math.Log1p(-p) / s.unionRate
	tr := s.unionTrace
	total := tr.TotalExposure()
	period := tr.Period()
	k := math.Floor(target / total)
	rem := target - k*total
	if rem < 0 {
		rem = 0
	}
	// Float roundoff can push rem to exactly total; fold it into one
	// more whole period so the inner inversion stays in-range.
	if rem >= total {
		k++
		rem -= total
	}
	return k*period + tr.InvertExposure(rem), nil
}

// exposureAt evaluates the cumulative exposure m(t) for any t >= 0:
// whole periods contribute multiples of the one-period exposure and the
// remainder is one table lookup.
func exposureAt(tr exposureTrace, t float64) float64 {
	period := tr.Period()
	k := math.Floor(t / period)
	return k*tr.TotalExposure() + tr.Exposure(t-k*period)
}
