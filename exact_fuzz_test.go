package soferr_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"github.com/soferr/soferr"
)

// fuzzMaxInstructions bounds per-case benchmark simulation so the
// fuzzer spends its budget on engine states, not on cycle simulation.
const fuzzMaxInstructions = 50000

// FuzzExactEngine: any valid Spec, queried through the Exact engine,
// must either refuse with the typed ErrExactUnavailable sentinel or
// return a non-NaN, non-negative (finite or +Inf) estimate with the
// deterministic contract (zero stderr/trials/seed) that satisfies the
// Reliability/Quantile invariants. Silent nonsense — NaN MTTFs,
// untyped errors, reliabilities outside [0, 1], quantiles the CDF
// contradicts — is the failure mode this hunts.
func FuzzExactEngine(f *testing.F) {
	seeds := []string{
		`{"components":[{"rate_per_year":1e6,"trace":{"kind":"busyidle","period_seconds":10,"busy_seconds":4}}]}`,
		`{"components":[{"rate_per_year":3e5,"trace":{"kind":"busyidle","period_seconds":6,"busy_seconds":2}},{"rate_per_year":1e5,"trace":{"kind":"busyidle","period_seconds":8,"busy_seconds":5}}]}`,
		`{"components":[{"rate_per_year":1e6,"trace":{"kind":"busyidle","period_seconds":10,"busy_seconds":4}},{"rate_per_year":1e6,"trace":{"kind":"busyidle","period_seconds":3.141592653589793,"busy_seconds":1}}]}`,
		`{"components":[{"rate_per_year":1e8,"trace":{"kind":"combined","a":{"kind":"benchmark","benchmark":"gzip","instructions":2000},"b":{"kind":"benchmark","benchmark":"swim","instructions":2000}}},{"rate_per_year":1e8,"trace":{"kind":"benchmark","benchmark":"gzip","instructions":2000}}]}`,
		`{"components":[{"rate_per_year":0,"trace":{"kind":"busyidle","period_seconds":1,"busy_seconds":0.5}}]}`,
		`{"components":[{"rate_per_year":5e5,"count":4,"trace":{"kind":"periodic","period_seconds":12,"intervals":[{"start":1,"end":3},{"start":8,"end":11}]}}]}`,
		`{"components":[{"rate_per_year":1e300,"trace":{"kind":"busyidle","period_seconds":1e-6,"busy_seconds":1e-6}}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	// One compiler for the whole run so benchmark simulations are
	// cached across cases; small default instruction count for specs
	// that do not set their own.
	compiler := &soferr.Compiler{Instructions: 10000}
	ctx := context.Background()

	f.Fuzz(func(t *testing.T, data []byte) {
		var s soferr.Spec
		if err := json.Unmarshal(data, &s); err != nil {
			t.Skip()
		}
		if err := s.Validate(); err != nil {
			t.Skip()
		}
		for _, c := range s.Components {
			for _, ts := range []*soferr.TraceSpec{&c.Trace, c.Trace.A, c.Trace.B} {
				if ts != nil && ts.Instructions > fuzzMaxInstructions {
					t.Skip()
				}
			}
		}
		sys, err := compiler.Compile(s)
		if err != nil {
			t.Skip() // structurally valid but semantically rejected
		}

		est, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithEngine(soferr.Exact))
		if err != nil {
			if errors.Is(err, soferr.ErrExactUnavailable) {
				return // the typed refusal is the other legal outcome
			}
			t.Fatalf("exact MTTF failed with untyped error: %v", err)
		}
		if math.IsNaN(est.MTTF) || est.MTTF < 0 {
			t.Fatalf("exact MTTF = %v", est.MTTF)
		}
		if est.StdErr != 0 || est.Trials != 0 || est.Seed != 0 || est.Engine != soferr.Exact {
			t.Fatalf("exact estimate breaks the deterministic contract: %+v", est)
		}

		r0, err := sys.Reliability(ctx, 0)
		if err != nil {
			t.Fatalf("Reliability(0) after successful exact MTTF: %v", err)
		}
		if r0 != 1 {
			t.Fatalf("Reliability(0) = %v, want exactly 1", r0)
		}
		q, err := sys.FailureQuantile(ctx, 0.5)
		if err != nil {
			t.Fatalf("FailureQuantile(0.5) after successful exact MTTF: %v", err)
		}
		if math.IsInf(est.MTTF, 1) {
			if !math.IsInf(q, 1) {
				t.Fatalf("never-failing system has median %v, want +Inf", q)
			}
			return
		}
		if !(est.MTTF > 0) {
			return // degenerate instantly-failing limit; no CDF to probe
		}
		if math.IsNaN(q) || q < 0 {
			t.Fatalf("median failure time = %v", q)
		}
		rHalf, err := sys.Reliability(ctx, q/2)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := sys.Reliability(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if rq < 0 || rq > 1 || rHalf < 0 || rHalf > 1 {
			t.Fatalf("reliability outside [0, 1]: R(q/2) = %v, R(q) = %v", rHalf, rq)
		}
		if rq > rHalf {
			t.Fatalf("reliability not monotone: R(%v) = %v > R(%v) = %v", q, rq, q/2, rHalf)
		}
		// Right-continuity of the generalized inverse: F(Q(p)) >= p.
		if got := 1 - rq; got < 0.5-1e-9 {
			t.Fatalf("F(median) = %v < 0.5", got)
		}
	})
}
