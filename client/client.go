// Package client is the Go client for the soferr query service
// (internal/server, started with `soferr serve`). It speaks the /v1
// JSON protocol and bakes in the retry discipline the server's failure
// model expects of callers:
//
//   - Transient failures — network errors and overload 503s — are
//     retried with exponential backoff and seeded jitter, honoring the
//     server's Retry-After hint as a floor on the wait.
//   - Permanent failures surface as *APIError carrying the structured
//     envelope (status, message, and machine-readable fields).
//   - Sweeps too large for one request are split automatically into
//     cursor/limit pages sized by the server's advertised
//     max_sweep_cells; the server enumerates per-cell seeds from
//     absolute grid indices, so the paged union is bit-identical to an
//     unpaged sweep.
//   - SweepStream consumes the NDJSON streaming mode and resumes a
//     truncated stream from the last delivered cell's index + 1,
//     again bit-identically.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/xrand"
)

// Defaults for Config zero values.
const (
	DefaultMaxRetries  = 4
	DefaultBaseBackoff = 100 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// Config tunes a Client. The zero value (plus a BaseURL) is a sensible
// production client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts per logical request beyond the
	// first (default 4; negative disables retries).
	MaxRetries int
	// BaseBackoff is the first retry's backoff (default 100ms); waits
	// double per attempt up to MaxBackoff (default 5s) plus jitter, and
	// never undercut a server Retry-After hint.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter stream; 0 uses a fixed
	// default, so set it when many clients start in lockstep.
	JitterSeed uint64
}

// Client is a soferr query-service client. It is safe for concurrent
// use.
type Client struct {
	base    string
	httpc   *http.Client
	retries int
	backMin time.Duration
	backMax time.Duration

	mu  sync.Mutex
	rng *xrand.Rand
}

// New builds a Client from the config.
func New(cfg Config) *Client {
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	retries := cfg.MaxRetries
	if retries == 0 {
		retries = DefaultMaxRetries
	}
	if retries < 0 {
		retries = 0
	}
	backMin := cfg.BaseBackoff
	if backMin <= 0 {
		backMin = DefaultBaseBackoff
	}
	backMax := cfg.MaxBackoff
	if backMax <= 0 {
		backMax = DefaultMaxBackoff
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 0x5eed
	}
	return &Client{
		base:    strings.TrimRight(cfg.BaseURL, "/"),
		httpc:   httpc,
		retries: retries,
		backMin: backMin,
		backMax: backMax,
		rng:     xrand.New(seed),
	}
}

// APIError is a structured failure from the server: the /v1 error
// envelope plus the Retry-After hint. Retryable failures are consumed
// by the client's own retry loop; an APIError escaping to the caller is
// one retries cannot fix (or that exhausted them).
type APIError struct {
	Status  int
	Message string
	// RetryAfterSeconds is the server's back-off hint on overload
	// responses (from the envelope or the Retry-After header).
	RetryAfterSeconds int
	// MaxSweepCells and RequestedCells are set on sweep-cap overflows;
	// Sweep uses them to auto-split the grid.
	MaxSweepCells  int64
	RequestedCells int64
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// retryable reports whether the failure is worth resending: only
// overload (503) is, everything else is the request's or the server's
// permanent problem.
func (e *APIError) retryable() bool { return e.Status == http.StatusServiceUnavailable }

// Options are the estimate options shared by MTTF and Compare,
// mirroring the server's wire fields.
type Options struct {
	Trials int    `json:"trials,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Engine string `json:"engine,omitempty"`
	// Sampler is the Monte-Carlo draw source ("pcg" default, "sobol"
	// for quasi-Monte-Carlo); unknown names are permanent 422s.
	Sampler         string  `json:"sampler,omitempty"`
	TargetRelStdErr float64 `json:"target_rel_stderr,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	TimeoutMS       int64   `json:"timeout_ms,omitempty"`
}

// MTTFResult is the /v1/mttf response.
type MTTFResult struct {
	SpecHash        string          `json:"spec_hash"`
	CompileCacheHit bool            `json:"compile_cache_hit"`
	CompileMS       float64         `json:"compile_ms"`
	Estimate        soferr.Estimate `json:"estimate"`
}

// MTTF runs one estimate. method "" means the server default
// (montecarlo).
func (c *Client) MTTF(ctx context.Context, spec soferr.Spec, method string, opt Options) (MTTFResult, error) {
	var out MTTFResult
	err := c.do(ctx, "/v1/mttf", nil, struct {
		Spec   soferr.Spec `json:"spec"`
		Method string      `json:"method,omitempty"`
		Options
	}{spec, method, opt}, &out)
	return out, err
}

// CompareResult is the /v1/compare response.
type CompareResult struct {
	SpecHash        string            `json:"spec_hash"`
	CompileCacheHit bool              `json:"compile_cache_hit"`
	CompileMS       float64           `json:"compile_ms"`
	Estimates       []soferr.Estimate `json:"estimates"`
}

// Compare runs several methods against one compiled system. nil
// methods means the server default (all three).
func (c *Client) Compare(ctx context.Context, spec soferr.Spec, methods []string, opt Options) (CompareResult, error) {
	var out CompareResult
	err := c.do(ctx, "/v1/compare", nil, struct {
		Spec    soferr.Spec `json:"spec"`
		Methods []string    `json:"methods,omitempty"`
		Options
	}{spec, methods, opt}, &out)
	return out, err
}

// Reliability queries the survival probability at t seconds.
func (c *Client) Reliability(ctx context.Context, spec soferr.Spec, tSeconds float64) (float64, error) {
	var out struct {
		Reliability soferr.JSONFloat `json:"reliability"`
	}
	err := c.do(ctx, "/v1/reliability", nil, struct {
		Spec     soferr.Spec `json:"spec"`
		TSeconds float64     `json:"t_seconds"`
	}{spec, tSeconds}, &out)
	return float64(out.Reliability), err
}

// Quantile queries the failure-time quantile at probability p.
func (c *Client) Quantile(ctx context.Context, spec soferr.Spec, p float64) (float64, error) {
	var out struct {
		TSeconds soferr.JSONFloat `json:"t_seconds"`
	}
	err := c.do(ctx, "/v1/quantile", nil, struct {
		Spec soferr.Spec `json:"spec"`
		P    float64     `json:"p"`
	}{spec, p}, &out)
	return float64(out.TSeconds), err
}

// SweepRequest mirrors the server's /v1/sweep request body. Cursor and
// Limit select a window of the grid (both zero = the whole grid); the
// paging the client does on top never changes per-cell seeds, because
// the server derives them from absolute grid indices.
type SweepRequest struct {
	Name            string              `json:"name,omitempty"`
	Sources         []soferr.SourceSpec `json:"sources"`
	RatesPerYear    []float64           `json:"rates_per_year"`
	Counts          []int               `json:"counts,omitempty"`
	Methods         []string            `json:"methods,omitempty"`
	Seed            uint64              `json:"seed,omitempty"`
	Trials          int                 `json:"trials,omitempty"`
	Engine          string              `json:"engine,omitempty"`
	Sampler         string              `json:"sampler,omitempty"`
	TargetRelStdErr float64             `json:"target_rel_stderr,omitempty"`
	Workers         int                 `json:"workers,omitempty"`
	TimeoutMS       int64               `json:"timeout_ms,omitempty"`
	Cursor          int64               `json:"cursor,omitempty"`
	Limit           int64               `json:"limit,omitempty"`
}

// SweepResult is the collected sweep outcome: every requested cell in
// absolute-index order. When the client auto-split the request, Pages
// counts the server round-trips it took.
type SweepResult struct {
	Name  string              `json:"name,omitempty"`
	Cells []soferr.CellResult `json:"cells"`
	Total int64               `json:"total"`
	Pages int                 `json:"pages"`
}

// sweepPage is the server's per-request response shape.
type sweepPage struct {
	Name       string              `json:"name"`
	Cells      []soferr.CellResult `json:"cells"`
	Count      int                 `json:"count"`
	Cursor     int64               `json:"cursor"`
	NextCursor int64               `json:"next_cursor"`
	Total      int64               `json:"total"`
}

// Sweep evaluates the requested grid window, splitting it into
// cursor/limit pages automatically when the server refuses it with a
// max_sweep_cells overflow. The assembled result is bit-identical to a
// single-request sweep of the same window.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResult, error) {
	var out SweepResult
	cursor := req.Cursor
	end := int64(-1) // exclusive window end; -1 = to the grid's end
	if req.Limit > 0 {
		end = req.Cursor + req.Limit
	}
	pageLimit := int64(0) // 0 = not paging (yet)
	for {
		r := req
		r.Cursor = cursor
		r.Limit = pageLimit
		if end >= 0 && (pageLimit == 0 || end-cursor < pageLimit) {
			r.Limit = end - cursor
		}
		var page sweepPage
		err := c.do(ctx, "/v1/sweep", nil, r, &page)
		if apiErr, ok := err.(*APIError); ok && pageLimit == 0 && apiErr.MaxSweepCells > 0 &&
			apiErr.RequestedCells > apiErr.MaxSweepCells {
			// The window exceeds the per-request cap: page at the size
			// the server advertised. (A second overflow means the grid
			// exceeds the server's enumerable bound — not splittable —
			// and is returned as-is above since pageLimit is now set.)
			pageLimit = apiErr.MaxSweepCells
			continue
		}
		if err != nil {
			return out, err
		}
		out.Name = page.Name
		out.Total = page.Total
		out.Cells = append(out.Cells, page.Cells...)
		out.Pages++
		if page.NextCursor == 0 || (end >= 0 && page.NextCursor >= end) {
			return out, nil
		}
		cursor = page.NextCursor
	}
}

// SweepCell is one NDJSON stream line: a cell with either its
// estimates or its error string.
type SweepCell struct {
	Cell      soferr.Cell       `json:"cell"`
	Estimates []soferr.Estimate `json:"estimates,omitempty"`
	Err       string            `json:"error,omitempty"`
}

// streamLine decodes result and terminator lines alike.
type streamLine struct {
	SweepCell
	Done       bool  `json:"done"`
	NextCursor int64 `json:"next_cursor"`
	Total      int64 `json:"total"`
}

// SweepStream consumes the sweep's NDJSON streaming mode, calling fn
// once per cell in absolute-index order. A stream cut before its
// {"done":true} terminator — a dropped connection, a crashed-and-
// restarted server — is resumed from the last delivered cell's
// index + 1; the server re-enumerates the grid, so the resumed tail is
// bit-identical to what the uninterrupted stream would have carried.
// fn returning an error aborts the stream with that error.
func (c *Client) SweepStream(ctx context.Context, req SweepRequest, fn func(SweepCell) error) error {
	cursor := req.Cursor
	end := int64(-1)
	if req.Limit > 0 {
		end = req.Cursor + req.Limit
	}
	stalls := 0
	for attempt := 0; ; attempt++ {
		r := req
		r.Cursor = cursor
		r.Limit = 0
		if end >= 0 {
			r.Limit = end - cursor
		}
		next, done, err := c.streamOnce(ctx, r, fn)
		if done {
			return nil
		}
		if err != nil {
			var apiErr *APIError
			if ok := asAPIError(err, &apiErr); ok && !apiErr.retryable() {
				return err
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		// Truncated (or refused with overload): resume from where the
		// stream stopped. Progress resets the retry budget — only
		// consecutive no-progress attempts count against it.
		if next > cursor {
			cursor = next
			stalls = 0
		} else {
			stalls++
			if stalls > c.retries {
				if err == nil {
					err = fmt.Errorf("stream truncated at cursor %d", cursor)
				}
				return fmt.Errorf("client: sweep stream stalled after %d attempts: %w", stalls, err)
			}
		}
		retryAfter := 0
		var apiErr *APIError
		if asAPIError(err, &apiErr) {
			retryAfter = apiErr.RetryAfterSeconds
		}
		if serr := c.sleep(ctx, c.backoff(stalls, retryAfter)); serr != nil {
			return serr
		}
	}
}

// streamOnce runs one streaming request. next is the cursor to resume
// from (last delivered index + 1, or the unchanged cursor when nothing
// arrived); done reports that the terminator line was seen.
func (c *Client) streamOnce(ctx context.Context, req SweepRequest, fn func(SweepCell) error) (next int64, done bool, err error) {
	next = req.Cursor
	data, err := json.Marshal(req)
	if err != nil {
		return next, false, fmt.Errorf("client: encode request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sweep?stream=ndjson", bytes.NewReader(data))
	if err != nil {
		return next, false, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(httpReq)
	if err != nil {
		return next, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return next, false, parseAPIError(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// A malformed line usually means it was cut mid-write:
			// treat as truncation and resume before it.
			return next, false, fmt.Errorf("client: bad stream line: %w", err)
		}
		if line.Done {
			return next, true, nil
		}
		if err := fn(line.SweepCell); err != nil {
			return next, false, err
		}
		next = int64(line.Cell.Index) + 1
	}
	// EOF without the terminator: truncated.
	return next, false, sc.Err()
}

// do runs one JSON POST with the retry discipline: network errors and
// overload 503s back off (honoring Retry-After) and resend, anything
// else returns immediately — 200 decoded into out, failures as
// *APIError.
func (c *Client) do(ctx context.Context, path string, query url.Values, body, out interface{}) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.httpc.Do(req)
		var respBody []byte
		if err == nil {
			respBody, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if attempt >= c.retries {
				return fmt.Errorf("client: %s: %w (after %d attempts)", path, err, attempt+1)
			}
			if serr := c.sleep(ctx, c.backoff(attempt, 0)); serr != nil {
				return serr
			}
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(respBody, out); err != nil {
				return fmt.Errorf("client: decode %s response: %w", path, err)
			}
			return nil
		}
		apiErr := parseAPIError(resp, respBody)
		if apiErr.retryable() && attempt < c.retries {
			if serr := c.sleep(ctx, c.backoff(attempt, apiErr.RetryAfterSeconds)); serr != nil {
				return serr
			}
			continue
		}
		return apiErr
	}
}

// parseAPIError lifts a non-200 response into an *APIError, preferring
// the structured envelope and falling back to the raw body.
func parseAPIError(resp *http.Response, body []byte) *APIError {
	var envelope struct {
		Error struct {
			Status            int    `json:"status"`
			Message           string `json:"message"`
			RetryAfterSeconds int    `json:"retry_after_seconds"`
			MaxSweepCells     int64  `json:"max_sweep_cells"`
			RequestedCells    int64  `json:"requested_cells"`
		} `json:"error"`
	}
	apiErr := &APIError{Status: resp.StatusCode}
	if json.Unmarshal(body, &envelope) == nil && envelope.Error.Status != 0 {
		apiErr.Message = envelope.Error.Message
		apiErr.RetryAfterSeconds = envelope.Error.RetryAfterSeconds
		apiErr.MaxSweepCells = envelope.Error.MaxSweepCells
		apiErr.RequestedCells = envelope.Error.RequestedCells
	} else {
		apiErr.Message = strings.TrimSpace(string(body))
	}
	if apiErr.RetryAfterSeconds == 0 {
		if v := resp.Header.Get("Retry-After"); v != "" {
			fmt.Sscanf(v, "%d", &apiErr.RetryAfterSeconds)
		}
	}
	return apiErr
}

// asAPIError is errors.As without the reflection import churn for the
// one type we match.
func asAPIError(err error, target **APIError) bool {
	if err == nil {
		return false
	}
	if e, ok := err.(*APIError); ok {
		*target = e
		return true
	}
	return false
}

// backoff computes the wait before retry attempt (0-based): the doubled
// base, capped, plus up to 50% seeded jitter — never below the server's
// Retry-After hint.
func (c *Client) backoff(attempt, retryAfterSeconds int) time.Duration {
	d := c.backMin
	for i := 0; i < attempt && d < c.backMax; i++ {
		d *= 2
	}
	if d > c.backMax {
		d = c.backMax
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Float64() * float64(d) * 0.5)
	c.mu.Unlock()
	d += jitter
	if hint := time.Duration(retryAfterSeconds) * time.Second; d < hint {
		d = hint
	}
	return d
}

// sleep waits d or until ctx ends.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
