package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/server"
)

func testSpec(rate float64) soferr.Spec {
	return soferr.Spec{
		Name: "batch",
		Components: []soferr.ComponentSpec{{
			Name:        "cache",
			RatePerYear: rate,
			Trace:       soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 4},
		}},
	}
}

func sweepReq() SweepRequest {
	return SweepRequest{
		Name: "grid",
		Sources: []soferr.SourceSpec{
			{Name: "half", Trace: soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 5}},
			{Name: "tenth", Trace: soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 1}},
		},
		RatesPerYear: []float64{1e4, 1e6},
		Counts:       []int{1, 16},
		Methods:      []string{"montecarlo"},
		Seed:         7,
		Trials:       1000,
		Engine:       "inverted",
	}
}

// directSweep computes the same grid in-process for bit-comparison.
func directSweep(t *testing.T) []soferr.CellResult {
	t.Helper()
	half, err := soferr.BusyIdleTrace(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	tenth, err := soferr.BusyIdleTrace(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := soferr.Sweep(context.Background(), soferr.Grid{
		Name:         "grid",
		Sources:      []soferr.TraceSource{{Name: "half", Trace: half}, {Name: "tenth", Trace: tenth}},
		RatesPerYear: []float64{1e4, 1e6},
		Counts:       []int{1, 16},
		Methods:      []soferr.Method{soferr.MonteCarlo},
		Seed:         7,
	}, soferr.WithTrials(1000), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func checkCells(t *testing.T, label string, got []soferr.CellResult, want []soferr.CellResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cells, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Cell.Index != want[i].Cell.Index || got[i].Cell.Seed != want[i].Cell.Seed {
			t.Errorf("%s: cell %d coordinates differ: %+v vs %+v", label, i, got[i].Cell, want[i].Cell)
		}
		if len(got[i].Estimates) != len(want[i].Estimates) {
			t.Fatalf("%s: cell %d: %d estimates, want %d", label, i, len(got[i].Estimates), len(want[i].Estimates))
		}
		for j := range want[i].Estimates {
			g, w := got[i].Estimates[j], want[i].Estimates[j]
			if g.MTTF != w.MTTF || g.StdErr != w.StdErr || g.Seed != w.Seed {
				t.Errorf("%s: cell %d estimate %d: %+v != %+v", label, i, j, g, w)
			}
		}
	}
}

// TestMTTFBitIdenticalToDirect: the client round-trip changes nothing —
// a served estimate equals the in-process query bit for bit.
func TestMTTFBitIdenticalToDirect(t *testing.T) {
	srv := httptest.NewServer(server.New(server.Config{}))
	defer srv.Close()
	c := New(Config{BaseURL: srv.URL, HTTPClient: srv.Client()})

	spec := testSpec(1e6)
	got, err := c.MTTF(context.Background(), spec, "montecarlo",
		Options{Trials: 5000, Seed: 3, Engine: "inverted"})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
		soferr.WithTrials(5000), soferr.WithSeed(3), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate.MTTF != want.MTTF || got.Estimate.StdErr != want.StdErr {
		t.Errorf("client estimate %+v != direct %+v", got.Estimate, want)
	}
	if got.SpecHash != spec.Hash() {
		t.Errorf("spec hash %q != %q", got.SpecHash, spec.Hash())
	}

	// A permanent failure surfaces as a structured *APIError, untried.
	if _, err := c.MTTF(context.Background(), spec, "no-such-method", Options{}); err == nil {
		t.Error("bad method did not fail")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.Status != http.StatusBadRequest {
		t.Errorf("bad method error = %v, want *APIError with 400", err)
	}
}

// TestRetriesOverloadNotClientErrors: 503s are retried with backoff
// until the server recovers; 4xx responses are returned immediately.
func TestRetriesOverloadNotClientErrors(t *testing.T) {
	real := server.New(server.Config{})
	var calls atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"status":503,"message":"busy"}}`))
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	c := New(Config{BaseURL: proxy.URL, HTTPClient: proxy.Client(),
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	got, err := c.MTTF(context.Background(), testSpec(1e6), "montecarlo", Options{Trials: 500, Seed: 1})
	if err != nil {
		t.Fatalf("overload retries failed: %v", err)
	}
	if got.Estimate.Trials == 0 {
		t.Error("retried request returned an empty estimate")
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (2 overloads + success)", n)
	}

	// Exhausted retries surface the overload error.
	calls.Store(-1000)
	cFail := New(Config{BaseURL: proxy.URL, HTTPClient: proxy.Client(),
		MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if _, err := cFail.MTTF(context.Background(), testSpec(1e6), "montecarlo", Options{}); err == nil {
		t.Error("exhausted retries did not fail")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("exhausted-retries error = %v, want 503 APIError", err)
	}
}

// TestBackoffHonorsRetryAfter: the server's Retry-After hint floors the
// wait even when the exponential backoff would retry sooner.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	c := New(Config{BaseURL: "http://unused", BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if d := c.backoff(0, 1); d < time.Second {
		t.Errorf("backoff with Retry-After 1 = %v, want >= 1s", d)
	}
	if d := c.backoff(0, 0); d > 100*time.Millisecond {
		t.Errorf("backoff without hint = %v, want small", d)
	}
}

// TestSweepAutoSplit: a grid over the server's per-request cap is
// split into cursor pages sized by the advertised max_sweep_cells, and
// the reassembled result is bit-identical to an unpaged sweep.
func TestSweepAutoSplit(t *testing.T) {
	srv := httptest.NewServer(server.New(server.Config{MaxSweepCells: 3}))
	defer srv.Close()
	c := New(Config{BaseURL: srv.URL, HTTPClient: srv.Client()})

	got, err := c.Sweep(context.Background(), sweepReq())
	if err != nil {
		t.Fatal(err)
	}
	if got.Pages < 3 {
		t.Errorf("8-cell sweep under cap 3 used %d pages, want >= 3", got.Pages)
	}
	if got.Total != 8 {
		t.Errorf("total = %d, want 8", got.Total)
	}
	checkCells(t, "auto-split", got.Cells, directSweep(t))
}

// TestSweepStreamResumesAfterCut is the client half of the resumable-
// stream contract: a stream the server drops mid-page is resumed from
// the last delivered index + 1, and the reassembled cell sequence is
// bit-identical to an uninterrupted sweep — each cell delivered exactly
// once.
func TestSweepStreamResumesAfterCut(t *testing.T) {
	real := server.New(server.Config{})
	var calls atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First attempt: deliver ~3 lines, then cut the connection
			// before the terminator.
			rec := httptest.NewRecorder()
			real.ServeHTTP(rec, r)
			lines := 0
			body := rec.Body.Bytes()
			cut := len(body)
			for i, b := range body {
				if b == '\n' {
					lines++
					if lines == 3 {
						cut = i + 1
						break
					}
				}
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Write(body[:cut])
			panic(http.ErrAbortHandler)
		}
		real.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	c := New(Config{BaseURL: proxy.URL, HTTPClient: proxy.Client(),
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	var got []soferr.CellResult
	err := c.SweepStream(context.Background(), sweepReq(), func(sc SweepCell) error {
		if sc.Err != "" {
			t.Errorf("cell %d carried error %q", sc.Cell.Index, sc.Err)
		}
		got = append(got, soferr.CellResult{Cell: sc.Cell, Estimates: sc.Estimates})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() < 2 {
		t.Error("stream was never cut; the resume path went unexercised")
	}
	checkCells(t, "resumed stream", got, directSweep(t))
}
