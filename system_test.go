package soferr_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/soferr/soferr"
)

func mustBusyIdle(t *testing.T, period, busy float64) soferr.Trace {
	t.Helper()
	tr, err := soferr.BusyIdleTrace(period, busy)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCompareAgreesWithFlatFunctionsBitForBit is the api_redesign
// acceptance gate: every method on one compiled System must reproduce
// the legacy flat functions exactly — equal seeds, equal bits.
func TestCompareAgreesWithFlatFunctionsBitForBit(t *testing.T) {
	ctx := context.Background()
	tr1 := mustBusyIdle(t, 10, 4)
	tr2 := mustBusyIdle(t, 10, 7)
	comps := []soferr.Component{
		{Name: "a", RatePerYear: 3e6, Trace: tr1},
		{Name: "b", RatePerYear: 1e6, Trace: tr2},
		{Name: "c", RatePerYear: 5e5, Trace: tr1},
	}
	sys, err := soferr.NewSystem(comps)
	if err != nil {
		t.Fatal(err)
	}
	const (
		trials = 40000
		seed   = 42
	)
	ests, err := sys.CompareWith(ctx,
		[]soferr.EstimateOption{soferr.WithTrials(trials), soferr.WithSeed(seed)},
		soferr.AVFSOFR, soferr.MonteCarlo, soferr.SoftArch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("Compare returned %d estimates, want 3", len(ests))
	}

	// Legacy AVF+SOFR composition.
	var mttfs []float64
	for _, c := range comps {
		m, err := soferr.AVFMTTF(c.RatePerYear, c.Trace)
		if err != nil {
			t.Fatal(err)
		}
		mttfs = append(mttfs, m)
	}
	wantAVF, err := soferr.SOFRMTTF(mttfs)
	if err != nil {
		t.Fatal(err)
	}
	if ests[0].MTTF != wantAVF {
		t.Errorf("AVFSOFR: system %v != flat %v", ests[0].MTTF, wantAVF)
	}

	// Legacy Monte Carlo at identical settings.
	mc, err := soferr.MonteCarloMTTF(comps, soferr.MonteCarloOptions{Trials: trials, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if ests[1].MTTF != mc.MTTF || ests[1].StdErr != mc.StdErr || ests[1].Trials != mc.Trials {
		t.Errorf("MonteCarlo: system %+v != flat %+v", ests[1], mc)
	}

	// Legacy SoftArch.
	sa, err := soferr.SoftArchMTTF(comps)
	if err != nil {
		t.Fatal(err)
	}
	if ests[2].MTTF != sa {
		t.Errorf("SoftArch: system %v != flat %v", ests[2].MTTF, sa)
	}

	// Per-method metadata.
	if ests[1].Method != soferr.MonteCarlo || ests[1].Seed != seed || ests[1].Engine != soferr.Superposed {
		t.Errorf("MonteCarlo estimate metadata wrong: %+v", ests[1])
	}
	for _, e := range ests {
		if e.MTTF > 0 && !math.IsInf(e.MTTF, 1) && e.FIT <= 0 {
			t.Errorf("%v: FIT not populated: %+v", e.Method, e)
		}
	}
}

func TestSystemQueryCacheIsTransparent(t *testing.T) {
	ctx := context.Background()
	tr := mustBusyIdle(t, 10, 4)
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: 1e6, Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}
	opts := []soferr.EstimateOption{soferr.WithTrials(20000), soferr.WithSeed(7), soferr.WithEngine(soferr.Inverted)}
	first, err := sys.MTTF(ctx, soferr.MonteCarlo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first query reported Cached")
	}
	second, err := sys.MTTF(ctx, soferr.MonteCarlo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat query not served from cache")
	}
	if second.MTTF != first.MTTF || second.StdErr != first.StdErr {
		t.Errorf("cache changed the estimate: %+v vs %+v", second, first)
	}

	// Different settings miss the cache and differ statistically.
	other, err := sys.MTTF(ctx, soferr.MonteCarlo,
		soferr.WithTrials(20000), soferr.WithSeed(8), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different seed served from cache")
	}
	if other.MTTF == first.MTTF {
		t.Error("different seed produced identical MTTF (cache key too loose?)")
	}

	// A cache-disabled system recomputes but agrees bit-for-bit.
	noCache, err := soferr.NewSystem(
		[]soferr.Component{{Name: "c", RatePerYear: 1e6, Trace: tr}},
		soferr.WithoutQueryCache())
	if err != nil {
		t.Fatal(err)
	}
	again, err := noCache.MTTF(ctx, soferr.MonteCarlo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Error("cache-disabled system reported Cached")
	}
	if again.MTTF != first.MTTF {
		t.Errorf("recomputation differs from cached value: %v vs %v", again.MTTF, first.MTTF)
	}
}

// TestCompiledSystemRepeatedQuerySpeedup asserts the acceptance
// criterion directly: N repeated Monte-Carlo queries on one System must
// be at least 5x faster than N flat MonteCarloMTTF calls. The compiled
// path runs the trials once and serves repeats from the cache, so the
// true ratio approaches N; asserting 5x at N=20 leaves a wide margin
// for scheduler noise.
func TestCompiledSystemRepeatedQuerySpeedup(t *testing.T) {
	const (
		n      = 20
		trials = 20000
	)
	tr := mustBusyIdle(t, 86400, 3600)
	comps := []soferr.Component{{Name: "batch", RatePerYear: 3000, Trace: tr}}
	opt := soferr.MonteCarloOptions{Trials: trials, Seed: 1, Engine: soferr.Inverted}

	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := soferr.MonteCarloMTTF(comps, opt); err != nil {
			t.Fatal(err)
		}
	}
	flat := time.Since(start)

	sys, err := soferr.NewSystem(comps)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < n; i++ {
		if _, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
			soferr.WithTrials(trials), soferr.WithSeed(1), soferr.WithEngine(soferr.Inverted)); err != nil {
			t.Fatal(err)
		}
	}
	compiled := time.Since(start)

	if compiled*5 > flat {
		t.Errorf("repeated queries: compiled System took %v, flat took %v (want >=5x speedup)", compiled, flat)
	}
}

func TestNewSystemErrorPaths(t *testing.T) {
	tr := mustBusyIdle(t, 10, 4)
	if _, err := soferr.NewSystem(nil); err == nil {
		t.Error("nil component slice accepted")
	}
	if _, err := soferr.NewSystem([]soferr.Component{}); err == nil {
		t.Error("empty component slice accepted")
	}
	if _, err := soferr.NewSystem([]soferr.Component{{Name: "x", RatePerYear: 1}}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := soferr.NewSystem([]soferr.Component{{Name: "x", RatePerYear: math.NaN(), Trace: tr}}); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := soferr.NewSystem([]soferr.Component{{Name: "x", RatePerYear: -1, Trace: tr}}); err == nil {
		t.Error("negative rate accepted")
	}

	// Mismatched but commensurate periods: the equal-period union does
	// not exist (SoftArch still errors), but the distribution queries
	// now answer from the merged hazard table instead of failing.
	mixed := []soferr.Component{
		{Name: "a", RatePerYear: 10, Trace: tr},
		{Name: "b", RatePerYear: 10, Trace: mustBusyIdle(t, 20, 4)},
	}
	sys, err := soferr.NewSystem(mixed)
	if err != nil {
		t.Fatalf("mismatched periods should compile, got %v", err)
	}
	if _, err := sys.MTTF(context.Background(), soferr.SoftArch); err == nil {
		t.Error("SoftArch on mismatched periods succeeded")
	}
	if r, err := sys.Reliability(context.Background(), 5); err != nil {
		t.Errorf("Reliability on commensurate mismatched periods failed: %v", err)
	} else if r <= 0 || r >= 1 {
		t.Errorf("Reliability(5) = %v on a failing system, want in (0, 1)", r)
	}
	if q, err := sys.FailureQuantile(context.Background(), 0.5); err != nil {
		t.Errorf("FailureQuantile on commensurate mismatched periods failed: %v", err)
	} else if q <= 0 || math.IsInf(q, 1) {
		t.Errorf("FailureQuantile(0.5) = %v, want finite positive", q)
	}
	if _, err := sys.MTTF(context.Background(), soferr.MonteCarlo, soferr.WithTrials(2000)); err != nil {
		t.Errorf("Monte Carlo on mismatched periods failed: %v", err)
	}

	// Incommensurate periods (the exact LCM of 10 and pi is beyond any
	// usable repetition count): neither the union nor the merged table
	// exists, so the distribution queries surface the union's error.
	incomm := []soferr.Component{
		{Name: "a", RatePerYear: 10, Trace: tr},
		{Name: "b", RatePerYear: 10, Trace: mustBusyIdle(t, math.Pi, 1)},
	}
	isys, err := soferr.NewSystem(incomm)
	if err != nil {
		t.Fatalf("incommensurate periods should compile, got %v", err)
	}
	if _, err := isys.Reliability(context.Background(), 5); err == nil {
		t.Error("Reliability on incommensurate periods succeeded")
	}
	if _, err := isys.FailureQuantile(context.Background(), 0.5); err == nil {
		t.Error("FailureQuantile on incommensurate periods succeeded")
	}

	// Unknown method.
	if _, err := sys.MTTF(context.Background(), soferr.Method(99)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestNonMaterializedTraceErrors(t *testing.T) {
	// A combined workload is a lazy LongLoop: legal for estimation but
	// rejected by the constructors that require Piecewise traces.
	gzip, err := soferr.SimulateBenchmark("gzip", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	swim, err := soferr.SimulateBenchmark("swim", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := soferr.CombinedWorkload(gzip.Int, swim.Int)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := soferr.CombinedWorkload(combined, gzip.Int); err == nil {
		t.Error("CombinedWorkload accepted a non-materialized trace")
	}
	if _, err := soferr.ShiftTrace(combined, 10); err == nil {
		t.Error("ShiftTrace accepted a non-materialized trace")
	}
	if _, err := soferr.UnionTrace([]soferr.Component{
		{Name: "a", RatePerYear: 1, Trace: combined},
		{Name: "b", RatePerYear: 1, Trace: gzip.Int},
	}); err == nil {
		t.Error("UnionTrace accepted a non-materialized trace")
	}
	// But a single-component System over the LongLoop supports the
	// whole query surface, including the distribution queries.
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "combined", RatePerYear: 1e5, Trace: combined}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MTTF(context.Background(), soferr.SoftArch); err != nil {
		t.Errorf("SoftArch on LongLoop system: %v", err)
	}
	rel, err := sys.Reliability(context.Background(), combined.Period()/3)
	if err != nil {
		t.Fatalf("Reliability on LongLoop system: %v", err)
	}
	if rel <= 0 || rel >= 1 {
		t.Errorf("Reliability = %v, want in (0,1)", rel)
	}
}

func TestMonteCarloCancellation(t *testing.T) {
	tr := mustBusyIdle(t, 10, 4)
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: 1e6, Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled context: immediate ctx.Err, nothing cached.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithTrials(50000), soferr.WithSeed(3)); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled query returned %v, want context.Canceled", err)
	}

	// Time limit expiring mid-run: DeadlineExceeded, and the estimate
	// must still be computable afterwards (no poisoned cache entry).
	_, err = sys.MTTF(context.Background(), soferr.MonteCarlo,
		soferr.WithTrials(80_000_000), soferr.WithSeed(3), soferr.WithTimeLimit(5*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("over-budget query returned %v, want context.DeadlineExceeded", err)
	}
	est, err := sys.MTTF(context.Background(), soferr.MonteCarlo, soferr.WithTrials(5000), soferr.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if est.Cached || est.MTTF <= 0 {
		t.Errorf("post-cancellation query wrong: %+v", est)
	}
}

func TestReliabilityMatchesSurvivalClosedForm(t *testing.T) {
	ctx := context.Background()
	// Busy/idle: m(t) is piecewise linear, so S(t) = exp(-r*m(t)) has a
	// simple closed form to check against.
	const (
		period      = 10.0
		busy        = 4.0
		ratePerYear = 3e6
	)
	tr := mustBusyIdle(t, period, busy)
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: ratePerYear, Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}
	rate := ratePerYear / (365 * 86400.0)
	exposure := func(t float64) float64 {
		k := math.Floor(t / period)
		rem := t - k*period
		return k*busy + math.Min(rem, busy)
	}
	for _, tt := range []float64{0, 1, 3.9, 4, 7, 10, 10.5, 25, 1e4} {
		got, err := sys.Reliability(ctx, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-rate * exposure(tt))
		if math.Abs(got-want) > 1e-12*want+1e-300 {
			t.Errorf("Reliability(%v) = %v, want %v", tt, got, want)
		}
	}
	if r0, _ := sys.Reliability(ctx, 0); r0 != 1 {
		t.Errorf("Reliability(0) = %v, want 1", r0)
	}
	if rInf, err := sys.Reliability(ctx, math.Inf(1)); err != nil || rInf != 0 {
		t.Errorf("Reliability(+Inf) = %v, %v; want 0 for a failing system", rInf, err)
	}
	if _, err := sys.Reliability(ctx, -1); err == nil {
		t.Error("negative time accepted")
	}

	// Multi-component system: survival functions multiply.
	tr2 := mustBusyIdle(t, period, 7)
	multi, err := soferr.NewSystem([]soferr.Component{
		{Name: "a", RatePerYear: ratePerYear, Trace: tr},
		{Name: "b", RatePerYear: 2 * ratePerYear, Trace: tr2},
	})
	if err != nil {
		t.Fatal(err)
	}
	single2, err := soferr.NewSystem([]soferr.Component{{Name: "b", RatePerYear: 2 * ratePerYear, Trace: tr2}})
	if err != nil {
		t.Fatal(err)
	}
	at := 6.0
	ra, _ := sys.Reliability(ctx, at)
	rb, _ := single2.Reliability(ctx, at)
	rm, err := multi.Reliability(ctx, at)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rm-ra*rb)/rm > 1e-9 {
		t.Errorf("multi-component Reliability %v != product %v", rm, ra*rb)
	}
}

func TestFailureQuantileInvertsReliability(t *testing.T) {
	ctx := context.Background()
	tr := mustBusyIdle(t, 10, 4)
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: 3e6, Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{1e-6, 0.01, 0.25, 0.5, 0.9, 0.999} {
		tq, err := sys.FailureQuantile(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := sys.Reliability(ctx, tq)
		if err != nil {
			t.Fatal(err)
		}
		// At the quantile the failure CDF equals p (the quantile lands
		// inside a vulnerable segment for these p, so no jump).
		if math.Abs((1-rel)-p) > 1e-9 {
			t.Errorf("F(FailureQuantile(%v)) = %v, want %v", p, 1-rel, p)
		}
	}
	// Quantiles are monotone in p.
	prev := -1.0
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		tq, err := sys.FailureQuantile(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if tq < prev {
			t.Errorf("quantile not monotone at p=%v: %v < %v", p, tq, prev)
		}
		prev = tq
	}
	if q1, _ := sys.FailureQuantile(ctx, 1); !math.IsInf(q1, 1) {
		t.Errorf("FailureQuantile(1) = %v, want +Inf", q1)
	}
	if _, err := sys.FailureQuantile(ctx, 1.5); err == nil {
		t.Error("out-of-range probability accepted")
	}

	// Median versus MTTF sanity: for this near-exponential regime the
	// median must sit below the mean.
	med, err := sys.FailureQuantile(ctx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.MTTF(ctx, soferr.SoftArch)
	if err != nil {
		t.Fatal(err)
	}
	if med >= est.MTTF {
		t.Errorf("median %v >= mean %v for a sub-exponential TTF", med, est.MTTF)
	}
}

func TestNeverFailingSystem(t *testing.T) {
	ctx := context.Background()
	idle, err := soferr.PeriodicTrace(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "idle", RatePerYear: 5, Trace: idle}})
	if err != nil {
		t.Fatal(err)
	}
	// Every method — Monte-Carlo included, on every engine — reports
	// the well-typed +Inf answer for a never-failing system: no error.
	for _, m := range []soferr.Method{soferr.AVFSOFR, soferr.SoftArch, soferr.MonteCarlo} {
		est, err := sys.MTTF(ctx, m, soferr.WithTrials(100))
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(est.MTTF, 1) || est.FIT != 0 {
			t.Errorf("%v on never-failing system: %+v", m, est)
		}
		if est.StdErr != 0 || est.RelStdErr() != 0 {
			t.Errorf("%v on never-failing system has nonzero spread: %+v", m, est)
		}
	}
	for _, e := range []soferr.Engine{soferr.Superposed, soferr.Naive, soferr.Inverted, soferr.Fused} {
		est, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithTrials(100), soferr.WithEngine(e))
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		if !math.IsInf(est.MTTF, 1) || est.FIT != 0 || est.StdErr != 0 {
			t.Errorf("engine %v on never-failing system: %+v", e, est)
		}
	}
	if rel, _ := sys.Reliability(ctx, 1e12); rel != 1 {
		t.Errorf("Reliability = %v, want 1", rel)
	}
	if q, _ := sys.FailureQuantile(ctx, 0.5); !math.IsInf(q, 1) {
		t.Errorf("FailureQuantile = %v, want +Inf", q)
	}
}

func TestMethodNamesAndJSON(t *testing.T) {
	for _, m := range soferr.Methods() {
		back, err := soferr.MethodByName(m.String())
		if err != nil || back != m {
			t.Errorf("MethodByName(%q) = %v, %v", m.String(), back, err)
		}
	}
	if _, err := soferr.MethodByName("warp"); err == nil {
		t.Error("unknown method name accepted")
	}

	tr := mustBusyIdle(t, 10, 4)
	sys, err := soferr.NewSystem([]soferr.Component{{Name: "c", RatePerYear: 1e6, Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
		soferr.WithTrials(2000), soferr.WithSeed(9), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"method":"montecarlo"`, `"engine":"inverted"`, `"trials":2000`, `"seed":9`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("estimate JSON missing %s: %s", want, data)
		}
	}

	// Infinite MTTFs must marshal, not error.
	idle, err := soferr.PeriodicTrace(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	never, err := soferr.NewSystem([]soferr.Component{{Name: "idle", RatePerYear: 5, Trace: idle}})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := never.MTTF(context.Background(), soferr.SoftArch)
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(inf)
	if err != nil {
		t.Fatalf("infinite estimate failed to marshal: %v", err)
	}
	if !strings.Contains(string(data), `"+Inf"`) {
		t.Errorf("infinite MTTF not encoded: %s", data)
	}
}

func TestSystemAccessors(t *testing.T) {
	tr := mustBusyIdle(t, 10, 4)
	comps := []soferr.Component{
		{Name: "a", RatePerYear: 2, Trace: tr},
		{Name: "b", RatePerYear: 3, Trace: tr},
	}
	sys, err := soferr.NewSystem(comps, soferr.WithName("rack-7"))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "rack-7" {
		t.Errorf("Name = %q", sys.Name())
	}
	if got := sys.RatePerYear(); got != 5 {
		t.Errorf("RatePerYear = %v, want 5", got)
	}
	cp := sys.Components()
	if len(cp) != 2 || cp[0].Name != "a" {
		t.Errorf("Components = %+v", cp)
	}
	cp[0].RatePerYear = 99 // must not alias internal state
	if sys.RatePerYear() != 5 {
		t.Error("Components() aliases internal state")
	}
}

func TestSystemConcurrentQueries(t *testing.T) {
	// A compiled System is shared state: hammer every query surface
	// from many goroutines so the race detector can vet the caches
	// (survival memo, SoftArch once, Monte-Carlo query cache).
	tr := mustBusyIdle(t, 10, 4)
	sys, err := soferr.NewSystem([]soferr.Component{
		{Name: "a", RatePerYear: 1e6, Trace: tr},
		{Name: "b", RatePerYear: 2e6, Trace: mustBusyIdle(t, 10, 6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := sys.MTTF(ctx, soferr.MonteCarlo,
					soferr.WithTrials(2000), soferr.WithSeed(uint64(g%3))); err != nil {
					errs <- err
					return
				}
				if _, err := sys.MTTF(ctx, soferr.SoftArch); err != nil {
					errs <- err
					return
				}
				if _, err := sys.Reliability(ctx, float64(i+1)); err != nil {
					errs <- err
					return
				}
				if _, err := sys.FailureQuantile(ctx, 0.5); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFusedEngineThroughSystem: the fused engine is reachable through
// the public query surface and statistically agrees with the inverted
// engine on a multi-component system.
func TestFusedEngineThroughSystem(t *testing.T) {
	ctx := context.Background()
	comps := []soferr.Component{
		{Name: "a", RatePerYear: 3e6, Trace: mustBusyIdle(t, 6, 2)},
		{Name: "b", RatePerYear: 1e6, Trace: mustBusyIdle(t, 9, 5)},
		{Name: "c", RatePerYear: 5e5, Trace: mustBusyIdle(t, 18, 11)},
	}
	sys, err := soferr.NewSystem(comps)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := sys.MTTF(ctx, soferr.MonteCarlo,
		soferr.WithTrials(60000), soferr.WithSeed(1), soferr.WithEngine(soferr.Fused))
	if err != nil {
		t.Fatal(err)
	}
	if fused.Engine != soferr.Fused {
		t.Errorf("estimate engine = %v, want fused", fused.Engine)
	}
	inv, err := sys.MTTF(ctx, soferr.MonteCarlo,
		soferr.WithTrials(60000), soferr.WithSeed(2), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	if diff, bound := math.Abs(fused.MTTF-inv.MTTF), 5*(fused.StdErr+inv.StdErr); diff > bound {
		t.Errorf("fused %v vs inverted %v (|diff| %v > %v)", fused.MTTF, inv.MTTF, diff, bound)
	}
	// The deterministic SoftArch answer is exact: fused must be within
	// a few standard errors of it too.
	sa, err := sys.MTTF(ctx, soferr.SoftArch)
	if err == nil {
		if diff := math.Abs(fused.MTTF - sa.MTTF); diff > 5*fused.StdErr {
			t.Errorf("fused %v vs exact %v (|diff| %v > %v)", fused.MTTF, sa.MTTF, diff, 5*fused.StdErr)
		}
	}
	// Fused JSON round-trips with its engine name.
	data, err := json.Marshal(fused)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"fused"`) {
		t.Errorf("marshaled fused estimate lacks the engine name: %s", data)
	}
	var back soferr.Estimate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Engine != soferr.Fused {
		t.Errorf("round-tripped engine = %v, want fused", back.Engine)
	}
}

// TestWithTargetRelStdErr covers the adaptive query surface: the
// target is validated, recorded on the estimate, reached with fewer
// trials than the fixed default, cached transparently, and
// deterministic across worker counts.
func TestWithTargetRelStdErr(t *testing.T) {
	ctx := context.Background()
	sys, err := soferr.NewSystem([]soferr.Component{
		{Name: "a", RatePerYear: 3e6, Trace: mustBusyIdle(t, 10, 4)},
		{Name: "b", RatePerYear: 1e6, Trace: mustBusyIdle(t, 10, 7)},
	})
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.01
	est, err := sys.MTTF(ctx, soferr.MonteCarlo,
		soferr.WithSeed(3), soferr.WithEngine(soferr.Fused), soferr.WithTargetRelStdErr(target))
	if err != nil {
		t.Fatal(err)
	}
	if est.TargetRelStdErr != target {
		t.Errorf("estimate target = %v, want %v", est.TargetRelStdErr, target)
	}
	if est.RelStdErr() > target {
		t.Errorf("achieved RSE %v > target %v", est.RelStdErr(), target)
	}
	if est.Trials >= soferr.DefaultTrials {
		t.Errorf("adaptive run used %d trials, want fewer than the fixed default %d", est.Trials, soferr.DefaultTrials)
	}
	roundTrip(t, est)

	// Repeating the identical adaptive query hits the cache,
	// bit-identically; a different target is a different cache key.
	again, err := sys.MTTF(ctx, soferr.MonteCarlo,
		soferr.WithSeed(3), soferr.WithEngine(soferr.Fused), soferr.WithTargetRelStdErr(target))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeated adaptive query not served from cache")
	}
	again.Cached = false
	if again != est {
		t.Errorf("cached adaptive estimate differs: %+v vs %+v", again, est)
	}
	other, err := sys.MTTF(ctx, soferr.MonteCarlo,
		soferr.WithSeed(3), soferr.WithEngine(soferr.Fused), soferr.WithTargetRelStdErr(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different target served the other target's cache entry")
	}

	// Worker count never changes an adaptive estimate.
	w1, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithSeed(9),
		soferr.WithEngine(soferr.Fused), soferr.WithTargetRelStdErr(0.02), soferr.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := soferr.NewSystem(sys.Components(), soferr.WithoutQueryCache())
	if err != nil {
		t.Fatal(err)
	}
	w4, err := sys2.MTTF(ctx, soferr.MonteCarlo, soferr.WithSeed(9),
		soferr.WithEngine(soferr.Fused), soferr.WithTargetRelStdErr(0.02), soferr.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if w1.MTTF != w4.MTTF || w1.StdErr != w4.StdErr || w1.Trials != w4.Trials {
		t.Errorf("worker count changed adaptive estimate: %+v vs %+v", w1, w4)
	}

	// Out-of-domain targets are tagged ErrInvalidArgument.
	for _, bad := range []float64{-0.1, 1, 2, math.NaN()} {
		if _, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithTargetRelStdErr(bad)); !errors.Is(err, soferr.ErrInvalidArgument) {
			t.Errorf("target %v: err = %v, want ErrInvalidArgument", bad, err)
		}
	}
}

// TestAdaptiveBeatsFixedTrialsOnSPECTrace is the acceptance criterion
// on the paper's SPEC-trace profile: an adaptive 1%-target run must
// reach its target with (far) fewer trials than the fixed-200k
// default, on the fused engine.
func TestAdaptiveBeatsFixedTrialsOnSPECTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark simulation skipped in -short mode")
	}
	res, err := soferr.SimulateBenchmark("gzip", 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := soferr.NewSystem([]soferr.Component{
		{Name: "int", RatePerYear: 1e6, Trace: res.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.01
	est, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
		soferr.WithSeed(1), soferr.WithEngine(soferr.Fused), soferr.WithTargetRelStdErr(target))
	if err != nil {
		t.Fatal(err)
	}
	if est.RelStdErr() > target {
		t.Errorf("adaptive run stopped at RSE %v > target %v", est.RelStdErr(), target)
	}
	if est.Trials >= soferr.DefaultTrials {
		t.Errorf("adaptive run used %d trials, want fewer than the fixed default %d", est.Trials, soferr.DefaultTrials)
	}
	// And it agrees with the fixed run within the combined error bars.
	fixed, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
		soferr.WithSeed(1), soferr.WithEngine(soferr.Fused))
	if err != nil {
		t.Fatal(err)
	}
	if diff, bound := math.Abs(est.MTTF-fixed.MTTF), 5*(est.StdErr+fixed.StdErr); diff > bound {
		t.Errorf("adaptive %v vs fixed %v (|diff| %v > %v)", est.MTTF, fixed.MTTF, diff, bound)
	}
}
