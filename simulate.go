package soferr

import (
	"github.com/soferr/soferr/internal/turandot"
	"github.com/soferr/soferr/internal/workload"
)

// Benchmarks returns the names of the bundled SPEC CPU2000-like
// synthetic benchmarks (9 integer, 12 floating point).
func Benchmarks() []string { return workload.Names() }

// BenchmarkResult bundles the outcome of simulating one benchmark on
// the base POWER4-like machine: timing statistics and the masking
// traces of the four components studied in the paper (Section 4.1).
type BenchmarkResult struct {
	// Name is the benchmark simulated.
	Name string
	// Cycles and Instructions describe the run; IPC = Instructions/Cycles.
	Cycles       uint64
	Instructions uint64
	// BranchMispredictRate is the fraction of branches mispredicted.
	BranchMispredictRate float64
	// Decode, Int, FP, and RegFile are the masking traces of the
	// instruction-decode unit, integer units, floating-point units, and
	// register file.
	Decode  Trace
	Int     Trace
	FP      Trace
	RegFile Trace
}

// IPC returns retired instructions per cycle.
func (r *BenchmarkResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// SimulateBenchmark generates the named synthetic benchmark and runs it
// through the cycle-level out-of-order timing simulator configured per
// the paper's Table 1, returning the component masking traces.
//
// instructions controls trace length (the paper used 100M; a few
// hundred thousand give stable AVFs in seconds of CPU time). seed makes
// generation deterministic.
func SimulateBenchmark(name string, instructions int, seed uint64) (*BenchmarkResult, error) {
	prof, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	prog, err := prof.Generate(instructions, seed)
	if err != nil {
		return nil, err
	}
	sim, err := turandot.New(turandot.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(prog)
	if err != nil {
		return nil, err
	}
	traces, err := res.Traces()
	if err != nil {
		return nil, err
	}
	return &BenchmarkResult{
		Name:                 name,
		Cycles:               res.Stats.Cycles,
		Instructions:         res.Stats.Instructions,
		BranchMispredictRate: res.Stats.MispredictRate(),
		Decode:               traces.Decode,
		Int:                  traces.Int,
		FP:                   traces.FP,
		RegFile:              traces.RegFile,
	}, nil
}
