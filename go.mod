module github.com/soferr/soferr

go 1.24
