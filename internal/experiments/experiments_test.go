package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

func quickRunner() *Runner {
	return NewRunner(Options{Quick: true, Trials: 15000, Instructions: 40000, Seed: 1})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig3", "fig4", "sec51", "fig5", "fig6a", "fig6b", "sec54", "extdist", "extphase", "extphases"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Paper == "" || all[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig3" {
		t.Errorf("ByID returned %s", e.ID)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// pct parses a "+12.3%" cell.
func pct(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q: %v", cell, err)
	}
	return v
}

func TestTable1ContainsPaperValues(t *testing.T) {
	tab, err := quickRunner().Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	text := tab.String()
	for _, want := range []string{
		"2.0 GHz", "8 per cycle", "150 entries", "256 entries",
		"2 integer, 2 FP, 2 load-store, 1 branch",
		"1/4/35 add/multiply/divide", "5 default, 28 divide (pipelined)",
		"32KB, 2-way, 128-byte line", "64KB, 1-way, 128-byte line",
		"1MB, 4-way, 128-byte line", "77 cycles",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2ContainsDesignSpace(t *testing.T) {
	tab, err := quickRunner().Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	text := tab.String()
	for _, want := range []string{"1e+05", "1e+09", "5000", "500000", "day", "week", "combined"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFig3ErrorsGrowWithRateAndL(t *testing.T) {
	tab, err := quickRunner().Fig3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(tab.Rows))
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	// Errors grow along both axes.
	if pct(t, last[3]) <= pct(t, last[1]) {
		t.Errorf("error at 5x (%s) not above 1x (%s) for L=16", last[3], last[1])
	}
	if pct(t, last[3]) <= pct(t, first[3]) {
		t.Errorf("error at L=16 (%s) not above L=1 (%s) at 5x", last[3], first[3])
	}
	// Paper anchors: small at baseline, substantial at 5x/16 days.
	if pct(t, last[1]) > 10 {
		t.Errorf("baseline error %s should stay below 10%%", last[1])
	}
	if pct(t, last[3]) < 15 {
		t.Errorf("5x error %s should exceed 15%%", last[3])
	}
}

func TestFig4MatchesPaperAnchors(t *testing.T) {
	tab, err := quickRunner().Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var n2, n32 float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "2":
			n2 = pct(t, row[3])
		case "32":
			n32 = pct(t, row[3])
		}
	}
	// SOFR underestimates: paper reports ~15% at N=2 and ~32% at N=32.
	if n2 > -12 || n2 < -18 {
		t.Errorf("N=2 error = %v%%, want ~-15%%", n2)
	}
	if n32 > -28 || n32 < -36 {
		t.Errorf("N=32 error = %v%%, want ~-32%%", n32)
	}
}

func TestFig5DayErrorsGrowWithNS(t *testing.T) {
	tab, err := quickRunner().Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var day []float64
	for _, row := range tab.Rows {
		if row[0] == "day" {
			day = append(day, pct(t, row[6]))
		}
	}
	if len(day) < 2 {
		t.Fatalf("day rows missing: %v", tab.Rows)
	}
	if day[len(day)-1] <= day[0] {
		t.Errorf("day AVF error did not grow with NxS: %v", day)
	}
	// At NxS=1e11 the day workload is far along its sigmoid.
	if day[len(day)-1] < 10 {
		t.Errorf("day error at large NxS = %v%%, want >= 10%%", day[len(day)-1])
	}
}

func TestFig6bDayAndWeekShapes(t *testing.T) {
	tab, err := quickRunner().Fig6b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Collect err by (workload, NxS, C).
	get := func(w, ns string, c string) (float64, bool) {
		for _, row := range tab.Rows {
			if row[0] == w && row[1] == ns && row[2] == c {
				return pct(t, row[5]), true
			}
		}
		return 0, false
	}
	smallDay, ok1 := get("day", "1e+06", "8")
	bigDay, ok2 := get("day", "1e+08", "50000")
	if !ok1 || !ok2 {
		t.Fatalf("missing day rows in %v", tab.Rows)
	}
	if smallDay > 5 {
		t.Errorf("day error at small C/NxS = %v%%, want ~0", smallDay)
	}
	if bigDay < 50 {
		t.Errorf("day error at large C/NxS = %v%%, want large (paper: 50%%, saturation: 100%%)", bigDay)
	}
	// Week reaches higher error than day at the same small-to-mid point.
	dayMid, ok3 := get("day", "1e+06", "50000")
	weekMid, ok4 := get("week", "1e+06", "50000")
	if ok3 && ok4 && weekMid <= dayMid {
		t.Errorf("week error (%v%%) not above day (%v%%) at same point", weekMid, dayMid)
	}
}

func TestSec54SoftArchAgreesWithMC(t *testing.T) {
	tab, err := quickRunner().Sec54(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		e := pct(t, row[3])
		if e > 3 || e < -3 {
			t.Errorf("point %s: SoftArch vs MC = %v%%, want within MC noise", row[0], e)
		}
	}
	// The System.Compare migration attaches typed estimates: one
	// SoftArch + one Monte-Carlo estimate per point.
	if len(tab.Estimates) != 2*len(tab.Rows) {
		t.Fatalf("got %d estimates for %d rows, want 2 per row", len(tab.Estimates), len(tab.Rows))
	}
	for _, pe := range tab.Estimates {
		if pe.Point == "" || pe.Estimate.MTTF <= 0 {
			t.Errorf("malformed point estimate: %+v", pe)
		}
	}
	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"id": "sec54"`, `"estimates"`, `"method": "montecarlo"`, `"method": "softarch"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}

func TestSec51SmallErrors(t *testing.T) {
	tab, err := quickRunner().Sec51(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("expected >=10 rows (3 benchmarks x 5), got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		e := pct(t, row[6])
		// At 15k trials the MC standard error is ~0.8%, so allow 3%.
		if e > 3 || e < -3 {
			t.Errorf("%s/%s: err = %v%%, want within sampling noise", row[0], row[1], e)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "test",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "note")
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: test ==", "a  b", "1  2", "note: note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}
	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if csvBuf.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", csvBuf.String())
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3.156e7 * 2, "2yr"},
		{86400 * 3, "3d"},
		{7200, "2h"},
		{5, "5s"},
		{0.002, "2ms"},
		{2e-6, "2us"},
		{3e-10, "0.3ns"},
	}
	for _, tt := range cases {
		if got := fmtSeconds(tt.in); got != tt.want {
			t.Errorf("fmtSeconds(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
	if fmtPct(0.123) != "+12.3%" {
		t.Errorf("fmtPct = %q", fmtPct(0.123))
	}
	if fmtPct(-0.05) != "-5.0%" {
		t.Errorf("fmtPct = %q", fmtPct(-0.05))
	}
}

func TestFig6aSmallCAccurate(t *testing.T) {
	tab, err := quickRunner().Fig6a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if row[2] != "8" {
			continue
		}
		e := pct(t, row[5])
		if e > 3 || e < -3 {
			t.Errorf("%s C=8 NxS=%s: err %v%%, SPEC SOFR should be accurate at small C", row[0], row[1], e)
		}
	}
}

func TestExtDistShapes(t *testing.T) {
	tab, err := quickRunner().ExtDist(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// First row (small NxS) must be near-exponential.
	first := tab.Rows[0]
	cv, err2 := strconv.ParseFloat(first[2], 64)
	if err2 != nil {
		t.Fatal(err2)
	}
	if cv < 0.9 || cv > 1.1 {
		t.Errorf("CV at small NxS = %v, want ~1", cv)
	}
	ks, err2 := strconv.ParseFloat(first[3], 64)
	if err2 != nil {
		t.Fatal(err2)
	}
	if ks > 0.05 {
		t.Errorf("KS at small NxS = %v, want ~0", ks)
	}
}

func TestExtPhaseStaggerKillsError(t *testing.T) {
	tab, err := quickRunner().ExtPhase(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inPhase := pct(t, tab.Rows[0][5])
	staggered := pct(t, tab.Rows[len(tab.Rows)-1][5])
	if inPhase < 50 {
		t.Errorf("in-phase error = %v%%, want large", inPhase)
	}
	if staggered > 5 || staggered < -5 {
		t.Errorf("staggered error = %v%%, want ~0", staggered)
	}
}

func TestExtPhasesRuns(t *testing.T) {
	tab, err := quickRunner().ExtPhases(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("want rows for both workloads, got %d", len(tab.Rows))
	}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		seen[row[0]] = true
	}
	if !seen["gzip"] || !seen["phased-int"] {
		t.Errorf("missing workloads in %v", tab.Rows)
	}
}
