package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/soferr/soferr"
)

// Table is a rendered experiment result: the rows/series a paper table
// or figure reports.
type Table struct {
	// ID is the experiment identifier (e.g. "fig3").
	ID string `json:"id"`
	// Title describes the table.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows holds the cells, one slice per row.
	Rows [][]string `json:"rows"`
	// Notes carries caveats and paper-comparison remarks.
	Notes []string `json:"notes,omitempty"`
	// Estimates carries the typed estimates behind the rendered cells,
	// for experiments that query compiled Systems; the JSON output
	// emits them alongside the string grid.
	Estimates []PointEstimate `json:"estimates,omitempty"`
}

// PointEstimate labels one soferr.Estimate with the design point that
// produced it.
type PointEstimate struct {
	Point    string          `json:"point"`
	Estimate soferr.Estimate `json:"estimate"`
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddEstimates attaches typed estimates for one design point.
func (t *Table) AddEstimates(point string, ests ...soferr.Estimate) {
	for _, e := range ests {
		t.Estimates = append(t.Estimates, PointEstimate{Point: point, Estimate: e})
	}
}

// WriteJSON renders the table as one JSON object (the machine-readable
// counterpart of Fprint/WriteCSV), including any typed estimates.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (header first, notes omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Fprint(&b); err != nil {
		return fmt.Sprintf("table %s: %v", t.ID, err)
	}
	return b.String()
}

// fmtSeconds renders a duration in seconds with a readable unit.
func fmtSeconds(s float64) string {
	switch {
	case math.IsInf(s, 1):
		return "inf"
	case s >= 3.156e9:
		return fmt.Sprintf("%.3gcy", s/3.156e9)
	case s >= 3.156e7:
		return fmt.Sprintf("%.3gyr", s/3.156e7)
	case s >= 86400:
		return fmt.Sprintf("%.3gd", s/86400)
	case s >= 3600:
		return fmt.Sprintf("%.3gh", s/3600)
	case s >= 1:
		return fmt.Sprintf("%.3gs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3gms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3gus", s*1e6)
	default:
		return fmt.Sprintf("%.3gns", s*1e9)
	}
}

// fmtPct renders a fraction as a signed percentage.
func fmtPct(f float64) string {
	return fmt.Sprintf("%+.1f%%", 100*f)
}

// fmtSci renders a float in compact scientific notation.
func fmtSci(f float64) string {
	return fmt.Sprintf("%.3g", f)
}
