package experiments

import (
	"context"
	"fmt"

	"github.com/soferr/soferr/internal/analytic"
	"github.com/soferr/soferr/internal/design"
	"github.com/soferr/soferr/internal/turandot"
	"github.com/soferr/soferr/internal/units"
)

// Table1 reproduces the paper's Table 1: the base POWER4-like processor
// configuration, read back from the simulator's default config so the
// table can never drift from the implementation.
func (r *Runner) Table1(ctx context.Context) (*Table, error) {
	cfg := turandot.DefaultConfig()
	t := &Table{
		ID:     "table1",
		Title:  "Base POWER4-like processor configuration (Table 1)",
		Header: []string{"parameter", "value"},
	}
	add := func(k, v string) { t.AddRow(k, v) }
	add("Processor frequency", "2.0 GHz")
	add("Fetch/finish rate", fmt.Sprintf("%d per cycle", cfg.FetchWidth))
	add("Retirement rate", fmt.Sprintf("1 dispatch-group (=%d, max) per cycle", cfg.RetireWidth))
	add("Functional units", fmt.Sprintf("%d integer, %d FP, %d load-store, %d branch",
		cfg.IntUnits, cfg.FPUnits, cfg.LSUnits, cfg.BrUnits))
	add("Integer FU latencies", fmt.Sprintf("%d/%d/%d add/multiply/divide",
		cfg.IntALULatency, cfg.IntMulLatency, cfg.IntDivLatency))
	add("FP FU latencies", fmt.Sprintf("%d default, %d divide (pipelined)",
		cfg.FPLatency, cfg.FPDivLatency))
	add("Reorder buffer size", fmt.Sprintf("%d entries", cfg.ROBSize))
	add("Register file size", fmt.Sprintf("%d entries (%d integer, %d FP, and various control)",
		cfg.RegFileEntries, cfg.IntRenameRegs, cfg.FPRenameRegs))
	add("Memory queue size", fmt.Sprintf("%d entries", cfg.MemQueueSize))
	add("iTLB", fmt.Sprintf("%d entries", cfg.Mem.ITLB.Entries))
	add("dTLB", fmt.Sprintf("%d entries", cfg.Mem.DTLB.Entries))
	add("L1 Dcache", fmt.Sprintf("%dKB, %d-way, %d-byte line",
		cfg.Mem.L1D.SizeBytes/1024, cfg.Mem.L1D.Ways, cfg.Mem.L1D.LineBytes))
	add("L1 Icache", fmt.Sprintf("%dKB, %d-way, %d-byte line",
		cfg.Mem.L1I.SizeBytes/1024, cfg.Mem.L1I.Ways, cfg.Mem.L1I.LineBytes))
	add("L2 (Unified)", fmt.Sprintf("%dMB, %d-way, %d-byte line",
		cfg.Mem.L2.SizeBytes/(1024*1024), cfg.Mem.L2.Ways, cfg.Mem.L2.LineBytes))
	add("L1 Latency", fmt.Sprintf("%d cycles", cfg.Mem.L1D.LatencyCycles))
	add("L2 Latency", fmt.Sprintf("%d cycles", cfg.Mem.L2.LatencyCycles))
	add("Main memory Latency", fmt.Sprintf("%d cycles", cfg.Mem.MemLatencyCycles))
	return t, nil
}

// Table2 renders the Table 2 design space.
func (r *Runner) Table2(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Design space explored (Table 2)",
		Header: []string{"dimension", "values"},
	}
	ns := ""
	for i, n := range design.ElementCounts {
		if i > 0 {
			ns += "  "
		}
		ns += fmtSci(n)
	}
	ss := ""
	for i, s := range design.ScaleFactors {
		if i > 0 {
			ss += "  "
		}
		ss += fmtSci(s)
	}
	cs := ""
	for i, c := range design.ComponentCounts {
		if i > 0 {
			cs += "  "
		}
		cs += fmt.Sprintf("%d", c)
	}
	ws := ""
	for i, w := range design.Workloads() {
		if i > 0 {
			ws += "  "
		}
		ws += w.String()
	}
	t.AddRow("N (elements per component)", ns)
	t.AddRow("S (raw-rate scaling factor)", ss)
	t.AddRow("C (components in system)", cs)
	t.AddRow("Workload", ws)
	t.Notes = append(t.Notes,
		"component raw error rate = N x S x 1e-8 errors/year (0.001 FIT per element)")
	return t, nil
}

// Fig3 reproduces Figure 3: the relative error of the AVF step for a
// ~100MB (1e9-bit) cache running a loop of L days, busy for L/2, at the
// baseline rate (10 errors/year for the full cache) and at 3x and 5x.
// The values come from the paper's own closed form (Derivation 1), so
// this table matches the paper exactly, not just in shape.
func (r *Runner) Fig3(ctx context.Context) (*Table, error) {
	const cacheBits = 1e9
	baseRate := units.ComponentRatePerSecond(cacheBits, 1) // 10 errors/year
	scales := []float64{1, 3, 5}

	t := &Table{
		ID:     "fig3",
		Title:  "AVF-step relative error, 1e9-bit cache, busy/idle loop (Figure 3)",
		Header: []string{"L (days)", "err @1x (10/yr)", "err @3x (30/yr)", "err @5x (50/yr)"},
	}
	lDays := []float64{1, 2, 4, 8, 12, 16}
	if r.opt.Quick {
		lDays = []float64{1, 8, 16}
	}
	for _, ld := range lDays {
		l := ld * units.SecondsPerDay
		a := l / 2
		row := []string{fmt.Sprintf("%g", ld)}
		for _, s := range scales {
			e, err := analytic.BusyIdleAVFError(baseRate*s, l, a)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtPct(e))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: errors small at the baseline rate, significant at 3x-5x and large L",
		"values are exact (Derivation 1 closed form), so they match the paper's Figure 3 directly")
	return t, nil
}

// Fig4 reproduces Figure 4: the SOFR-step error for systems of N
// components whose time to failure has density 2/sqrt(pi) e^(-x^2).
func (r *Runner) Fig4(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "SOFR-step relative error, half-Gaussian components (Figure 4)",
		Header: []string{"N components", "true MTTF", "SOFR MTTF", "rel err"},
	}
	ns := []int{2, 4, 8, 16, 24, 32}
	if r.opt.Quick {
		ns = []int{2, 8, 32}
	}
	for _, n := range ns {
		real, err := analytic.SeriesHalfGaussianMTTF(n)
		if err != nil {
			return nil, err
		}
		sofr, err := analytic.SeriesHalfGaussianSOFRMTTF(n)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtSci(real), fmtSci(sofr), fmtPct((sofr-real)/real))
	}
	t.Notes = append(t.Notes,
		"paper: error grows from ~15% at N=2 to ~32% at N=32")
	return t, nil
}
