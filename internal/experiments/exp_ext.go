package experiments

import (
	"context"
	"fmt"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/design"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/sofr"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/workload"
)

// The two experiments below extend the paper along the future-work
// directions its conclusions motivate: measuring the failure-time
// distribution directly (the object the SOFR step assumes exponential),
// and relaxing the all-components-in-phase worst case of the cluster
// analysis.

// ExtDist measures the shape of the time-to-failure distribution for
// the day workload across raw error rates: coefficient of variation
// (CV, = 1 for exponential) and Kolmogorov-Smirnov distance from the
// exponential with the same mean. It quantifies *how* the SOFR
// assumption fails, not just by how much the MTTF moves.
func (r *Runner) ExtDist(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "extdist",
		Title: "Extension: TTF distribution shape vs exponential, day workload",
		Header: []string{
			"NxS", "MTTF", "CV (exp: 1)", "KS vs exp", "median/mean (exp: 0.69)",
		},
	}
	grid := []float64{1e8, 1e9, 1e10, 1e11, 1e12}
	if r.opt.Quick {
		grid = []float64{1e8, 1e11}
	}
	day, err := workload.Day()
	if err != nil {
		return nil, err
	}
	for _, ns := range grid {
		rate := design.RatePerSecond(ns, 1)
		r.logf("extdist: NxS=%g", ns)
		samples, err := montecarlo.SystemTTFSamples(
			ctx,
			[]montecarlo.Component{{Rate: rate, Trace: day}},
			montecarlo.Config{Trials: r.opt.Trials, Seed: r.opt.Seed ^ uint64(ns), Engine: r.opt.Engine},
		)
		if err != nil {
			return nil, err
		}
		st, err := montecarlo.ComputeTTFStats(samples)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmtSci(ns), fmtSeconds(st.Mean),
			fmt.Sprintf("%.3f", st.CV),
			fmt.Sprintf("%.3f", st.KSExponential),
			fmt.Sprintf("%.3f", st.Median/st.Mean),
		)
	}
	t.Notes = append(t.Notes,
		"at small NxS the masked TTF is exponential (CV=1, KS~0): Section 3.2.1's regime",
		"non-exponentiality peaks at intermediate NxS (rate x busy-window ~ 1), where idle nights punch holes in the TTF density no exponential can match",
		"at very large NxS nearly every trial fails inside the first busy window and the TTF is again nearly exponential in shape (truncated), though the MTTF itself is half the SOFR prediction")
	return t, nil
}

// ExtPhase evaluates the SOFR error for a day-workload cluster whose
// nodes are phase-staggered instead of in phase. k stagger groups shift
// the busy window by period/k each; k=1 is the paper's in-phase worst
// case, and large k approximates a globally load-balanced fleet.
func (r *Runner) ExtPhase(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "extphase",
		Title: "Extension: SOFR error vs phase stagger, day workload cluster",
		Header: []string{
			"stagger groups", "C", "NxS", "SOFR MTTF", "MC MTTF", "rel err",
		},
	}
	const (
		c  = 5000
		ns = 1e8
	)
	day, err := workload.Day()
	if err != nil {
		return nil, err
	}
	rateY := design.RatePerYear(ns, 1)
	staggers := []int{1, 2, 4, 8, 24}
	if r.opt.Quick {
		staggers = []int{1, 24}
	}
	// Per-component MTTF is phase-independent (a shift does not change
	// a single component's failure law from its own start of time), so
	// SOFR's estimate is the same for every stagger.
	comp, err := r.mcMTTF(ctx, rateY, day, 0xFA5E)
	if err != nil {
		return nil, err
	}
	sofrMTTF, err := sofr.Identical(comp.MTTF, c)
	if err != nil {
		return nil, err
	}
	// The stagger axis is a trace-source axis: the cluster with k equal
	// groups, group i shifted by i*period/k, is (by Poisson
	// superposition) a single component at rate C*lambda with the
	// equal-weighted union of the shifted traces. Each union is built
	// lazily by the sweep engine, at most once, and the k systems are
	// evaluated concurrently.
	sources := make([]soferr.TraceSource, len(staggers))
	cells := make([]soferr.Cell, len(staggers))
	for ki, k := range staggers {
		k := k
		sources[ki] = soferr.TraceSource{
			Name: fmt.Sprintf("stagger=%d", k),
			Build: func() (soferr.Trace, error) {
				shifted := make([]*trace.Piecewise, k)
				weights := make([]float64, k)
				for i := 0; i < k; i++ {
					s, err := trace.Shift(day, float64(i)*day.Period()/float64(k))
					if err != nil {
						return nil, err
					}
					shifted[i] = s
					weights[i] = 1
				}
				return trace.WeightedUnion(weights, shifted)
			},
		}
		cells[ki] = soferr.Cell{
			Source:      ki,
			RatePerYear: rateY * float64(c),
			Count:       1,
			Seed:        r.opt.Seed ^ (0xFA5E ^ uint64(k)),
		}
	}
	ests, err := r.sweepEstimates(ctx, "extphase", sources, cells,
		[]soferr.Method{soferr.MonteCarlo})
	if err != nil {
		return nil, err
	}
	for ki, k := range staggers {
		mcSys := ests[ki][0].MTTF
		t.AddRow(
			fmt.Sprintf("%d", k), fmt.Sprintf("%d", c), fmtSci(ns),
			fmtSeconds(sofrMTTF), fmtSeconds(mcSys),
			fmtPct((sofrMTTF-mcSys)/mcSys),
		)
	}
	t.Notes = append(t.Notes,
		"k=1 is the paper's in-phase worst case; staggering phases flattens system-level utilization and SOFR's error vanishes",
		"with k=2 the day workload's two half-day groups tile the whole day: system vulnerability is constant and SOFR becomes exact",
		"operationally: SOFR is trustworthy for diverse/staggered fleets, dangerous for synchronized ones")
	return t, nil
}

// ExtPhases contrasts SOFR error for a stationary benchmark (gzip)
// against a phased program with the same length but genuine
// macro-phase structure (phased-int: compiler-like gcc/mcf/gzip
// phases). The paper identifies "the longest repeated phase of the
// workload" as the third parameter governing AVF+SOFR validity
// (Section 1); phase structure lengthens the effective L without
// lengthening the trace, pulling the SOFR error onset to smaller
// NxS x C.
func (r *Runner) ExtPhases(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "extphases",
		Title: "Extension: SOFR error with and without workload macro-phases",
		Header: []string{
			"workload", "NxS", "C", "SOFR MTTF", "MC MTTF", "rel err",
		},
	}
	nsGrid := []float64{1e12, 1e13, 1e14}
	const c = 500000
	names := []string{"gzip", "phased-int"}
	if r.opt.Quick {
		nsGrid = []float64{1e14}
	}
	sources := make([]soferr.TraceSource, len(names))
	for i, name := range names {
		proc, err := r.ProcessorTrace(name)
		if err != nil {
			return nil, err
		}
		sources[i] = soferr.TraceSource{Name: name, Trace: proc}
	}
	cells, err := sofrCells(r.opt.Seed, len(names), nsGrid, []int{c},
		func(ns float64, _ int) uint64 { return uint64(ns) ^ 0xBEEF })
	if err != nil {
		return nil, err
	}
	ests, err := r.sweepEstimates(ctx, "extphases", sources, cells,
		[]soferr.Method{soferr.MonteCarlo})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, name := range names {
		for _, ns := range nsGrid {
			sofrMTTF, err := sofr.Identical(ests[i][0].MTTF, c)
			if err != nil {
				return nil, err
			}
			mcSys := ests[i+1][0].MTTF
			i += 2
			t.AddRow(
				name, fmtSci(ns), fmt.Sprintf("%d", c),
				fmtSeconds(sofrMTTF), fmtSeconds(mcSys),
				fmtPct((sofrMTTF-mcSys)/mcSys),
			)
		}
	}
	t.Notes = append(t.Notes,
		"both workloads have the same trace length; only the phased one has long-timescale utilization variation",
		"the phased program reaches a given SOFR error at smaller NxS, demonstrating that the paper's L parameter is the phase length, not the trace length")
	return t, nil
}
