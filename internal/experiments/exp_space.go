package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/design"
	"github.com/soferr/soferr/internal/sofr"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

// The Section 5 design-space experiments all have the same shape — a
// grid of (workload, raw rate, component count) points, each estimated
// by one or more methods — so they run on the public sweep engine
// (soferr.SweepCells): cells are built explicitly (the historical
// per-point seed salts predate the engine's index-derived seeds and
// are preserved so recorded tables stay bit-identical), evaluated
// concurrently with shared compiled state, and assembled into rows in
// the original nesting order.

// pointSystem compiles a single (possibly superposed) design-space
// component into a queryable System.
func (r *Runner) pointSystem(ratePerYear float64, tr trace.Trace) (*soferr.System, error) {
	return soferr.NewSystem([]soferr.Component{{Name: "point", RatePerYear: ratePerYear, Trace: tr}})
}

// mcOpts are the Monte-Carlo settings shared by every design-space
// query, salted so distinct points get distinct streams.
func (r *Runner) mcOpts(seedSalt uint64) []soferr.EstimateOption {
	return []soferr.EstimateOption{
		soferr.WithTrials(r.opt.Trials),
		soferr.WithSeed(r.opt.Seed ^ seedSalt),
		soferr.WithEngine(r.opt.Engine),
	}
}

// mcMTTF runs the Monte-Carlo estimator for a single (possibly
// superposed) component through the public System API.
func (r *Runner) mcMTTF(ctx context.Context, ratePerYear float64, tr trace.Trace, seedSalt uint64) (soferr.Estimate, error) {
	sys, err := r.pointSystem(ratePerYear, tr)
	if err != nil {
		return soferr.Estimate{}, err
	}
	return sys.MTTF(ctx, soferr.MonteCarlo, r.mcOpts(seedSalt)...)
}

// sweepEstimates evaluates explicit cells through the sweep engine with
// the runner's settings, returning one estimate slice per cell (indexed
// by cell position, parallel to methods). The engine shares compiled
// systems across cells with equal (source, rate x count) products and
// is deterministic for any worker count, so the results are
// bit-identical to sequential per-point System queries.
func (r *Runner) sweepEstimates(ctx context.Context, label string, sources []soferr.TraceSource, cells []soferr.Cell, methods []soferr.Method) ([][]soferr.Estimate, error) {
	res, err := soferr.SweepCellsAll(ctx, sources, cells, methods,
		func(cr soferr.CellResult) {
			r.logf("%s: %s rate/yr=%g C=%d done (%d/%d)",
				label, cr.Cell.SourceName, cr.Cell.RatePerYear, cr.Cell.Count,
				cr.Cell.Index+1, len(cells))
		},
		soferr.WithTrials(r.opt.Trials), soferr.WithEngine(r.opt.Engine))
	if err != nil {
		return nil, err
	}
	out := make([][]soferr.Estimate, len(cells))
	for _, cr := range res {
		out[cr.Cell.Index] = cr.Estimates
	}
	return out, nil
}

// Fig5 reproduces Figure 5: the error of the AVF step relative to Monte
// Carlo for the synthesized workloads (day, week, combined) at
// representative values of N x S, for a single component (C = 1).
func (r *Runner) Fig5(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "fig5",
		Title: "AVF-step error vs Monte Carlo, synthesized workloads, C=1 (Figure 5)",
		Header: []string{
			"workload", "NxS", "rate/yr", "AVF",
			"MC MTTF", "AVF MTTF", "rel err", "exact err",
		},
	}
	grid := []float64{1e8, 1e9, 1e10, 1e11, 1e12}
	if r.opt.Quick {
		grid = []float64{1e9, 1e11}
	}
	workloads := []design.Workload{design.WorkloadDay, design.WorkloadWeek, design.WorkloadCombined}
	sources := make([]soferr.TraceSource, len(workloads))
	for i, w := range workloads {
		tr, err := r.WorkloadTrace(w)
		if err != nil {
			return nil, err
		}
		sources[i] = soferr.TraceSource{Name: w.String(), Trace: tr}
	}
	var cells []soferr.Cell
	for wi := range workloads {
		for ni, ns := range grid {
			cells = append(cells, soferr.Cell{
				Source: wi, RateIndex: ni,
				RatePerYear: design.RatePerYear(ns, 1), Count: 1,
				Seed: r.opt.Seed ^ uint64(ns),
			})
		}
	}
	ests, err := r.sweepEstimates(ctx, "fig5", sources, cells,
		[]soferr.Method{soferr.MonteCarlo, soferr.SoftArch})
	if err != nil {
		return nil, err
	}
	i := 0
	for wi, w := range workloads {
		avfVal := sources[wi].Trace.AVF()
		for _, ns := range grid {
			rate := design.RatePerSecond(ns, 1)
			mc, exact := ests[i][0], ests[i][1].MTTF
			i++
			avfMTTF := 1 / (rate * avfVal)
			t.AddRow(
				w.String(), fmtSci(ns), fmtSci(units.PerSecondToPerYear(rate)),
				fmt.Sprintf("%.3f", avfVal),
				fmtSeconds(mc.MTTF), fmtSeconds(avfMTTF),
				fmtPct((avfMTTF-mc.MTTF)/mc.MTTF),
				fmtPct((avfMTTF-exact)/exact),
			)
		}
	}
	t.Notes = append(t.Notes,
		"paper: SPEC workloads show <0.5% error everywhere; synthesized workloads show significant error once NxS is large (paper: >=1e9), up to ~90%",
		"the error saturates at (1/AVF - 1): +100% for day, +40% for week",
		"'exact err' replaces the MC reference with the closed-form survival integral (no sampling noise)")
	return t, nil
}

// Fig6a reproduces Figure 6(a): SOFR error vs Monte Carlo for clusters
// of C processors running SPEC benchmarks, at representative N x S.
func (r *Runner) Fig6a(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "fig6a",
		Title: "SOFR-step error vs Monte Carlo, SPEC workloads (Figure 6a)",
		Header: []string{
			"benchmark", "NxS", "C", "SOFR MTTF", "MC MTTF", "rel err",
		},
	}
	benchmarks := []string{"gzip", "swim", "mcf"}
	nsGrid := []float64{1e9, 2e12, 1e14, 1e15}
	cGrid := design.ComponentCounts
	if r.opt.Quick {
		benchmarks = []string{"gzip"}
		nsGrid = []float64{1e9, 1e15}
		cGrid = []int{8, 500000}
	}
	sources := make([]soferr.TraceSource, len(benchmarks))
	for i, b := range benchmarks {
		proc, err := r.ProcessorTrace(b)
		if err != nil {
			return nil, err
		}
		sources[i] = soferr.TraceSource{Name: b, Trace: proc}
	}
	cells, err := sofrCells(r.opt.Seed, len(benchmarks), nsGrid, cGrid,
		func(ns float64, c int) uint64 { return uint64(ns) + uint64(c) })
	if err != nil {
		return nil, err
	}
	ests, err := r.sweepEstimates(ctx, "fig6a", sources, cells,
		[]soferr.Method{soferr.MonteCarlo})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, b := range benchmarks {
		for _, ns := range nsGrid {
			for _, c := range cGrid {
				sofrMTTF, err := sofr.Identical(ests[i][0].MTTF, c)
				if err != nil {
					return nil, err
				}
				mcSys := ests[i+1][0].MTTF
				i += 2
				t.AddRow(
					b, fmtSci(ns), fmt.Sprintf("%d", c),
					fmtSeconds(sofrMTTF), fmtSeconds(mcSys),
					fmtPct((sofrMTTF-mcSys)/mcSys),
				)
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: accurate for C=2 or 8 at all NxS; significant error only for C>=5000 with very large NxS (>=2e12 at 1e9 bits)",
		"our benchmark loop is ~1e5x shorter than the paper's 100M-instruction traces, so error onset shifts to proportionally larger NxS x C; the shape (error grows with C and NxS, negligible at small C) is preserved")
	return t, nil
}

// sofrCells enumerates the cell pairs behind one SOFR design point per
// (source, N x S, C) grid coordinate: the component cell (count 1, per
// Section 4.2 the SOFR input) followed by the superposed system cell
// (count C). Seeds reproduce the harness's historical salts — the
// component stream is Seed ^ salt(ns, c) and the system stream
// Seed ^ (salt(ns, c) ^ 0xC0FFEE), exactly as the pre-engine sequential
// code drew them — so the recorded tables are unchanged.
func sofrCells(seed uint64, numSources int, nsGrid []float64, cGrid []int, salt func(ns float64, c int) uint64) ([]soferr.Cell, error) {
	var cells []soferr.Cell
	for si := 0; si < numSources; si++ {
		for ni, ns := range nsGrid {
			rate := design.RatePerYear(ns, 1)
			for ci, c := range cGrid {
				s := salt(ns, c)
				cells = append(cells,
					soferr.Cell{
						Source: si, RateIndex: ni, CountIndex: ci,
						RatePerYear: rate, Count: 1,
						Seed: seed ^ s,
					},
					soferr.Cell{
						Source: si, RateIndex: ni, CountIndex: ci,
						RatePerYear: rate, Count: c,
						Seed: seed ^ (s ^ 0xC0FFEE),
					})
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiments: empty SOFR grid")
	}
	return cells, nil
}

// Fig6b reproduces Figure 6(b): SOFR error vs Monte Carlo for clusters
// running the synthesized workloads.
func (r *Runner) Fig6b(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "fig6b",
		Title: "SOFR-step error vs Monte Carlo, synthesized workloads (Figure 6b)",
		Header: []string{
			"workload", "NxS", "C", "SOFR MTTF", "MC MTTF", "rel err",
		},
	}
	nsGrid := []float64{1e5, 1e6, 1e7, 1e8}
	cGrid := design.ComponentCounts
	workloads := []design.Workload{design.WorkloadDay, design.WorkloadWeek, design.WorkloadCombined}
	if r.opt.Quick {
		nsGrid = []float64{1e6, 1e8}
		cGrid = []int{8, 50000}
		workloads = []design.Workload{design.WorkloadDay, design.WorkloadWeek}
	}
	sources := make([]soferr.TraceSource, len(workloads))
	for i, w := range workloads {
		tr, err := r.WorkloadTrace(w)
		if err != nil {
			return nil, err
		}
		sources[i] = soferr.TraceSource{Name: w.String(), Trace: tr}
	}
	cells, err := sofrCells(r.opt.Seed, len(workloads), nsGrid, cGrid,
		func(ns float64, c int) uint64 { return uint64(ns) + uint64(c)*3 })
	if err != nil {
		return nil, err
	}
	ests, err := r.sweepEstimates(ctx, "fig6b", sources, cells,
		[]soferr.Method{soferr.MonteCarlo})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, w := range workloads {
		for _, ns := range nsGrid {
			for _, c := range cGrid {
				sofrMTTF, err := sofr.Identical(ests[i][0].MTTF, c)
				if err != nil {
					return nil, err
				}
				mcSys := ests[i+1][0].MTTF
				i += 2
				t.AddRow(
					w.String(), fmtSci(ns), fmt.Sprintf("%d", c),
					fmtSeconds(sofrMTTF), fmtSeconds(mcSys),
					fmtPct((sofrMTTF-mcSys)/mcSys),
				)
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: day at NxS=1e8 shows 11% (C=5000) and 50% (C=50000); week shows 32%/80%; combined smaller but significant",
		"first-principles saturation is +100% (day), +40% (week): error rises along a sigmoid in C x NxS and our grid includes both the onset and the saturated regime",
		"week reaches large errors at ~10x smaller C x NxS than day (its busy window is 10x longer), matching the paper's week > day ordering at fixed parameters")
	return t, nil
}

// Sec54 reproduces Section 5.4: SoftArch (first-principles survival
// model) vs Monte Carlo across the design space, comparing both methods
// on one compiled System per point. The paper reports <1% discrepancy
// for single components and <2% for full systems.
func (r *Runner) Sec54(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "sec54",
		Title:  "SoftArch vs Monte Carlo across the design space (Section 5.4)",
		Header: []string{"point", "SoftArch MTTF", "MC MTTF", "rel err", "MC rel stderr"},
	}
	type point struct {
		name string
		w    design.Workload
		ns   float64
		c    int
	}
	points := []point{
		{"day C=1 NxS=1e7", design.WorkloadDay, 1e7, 1},
		{"day C=1 NxS=1e11", design.WorkloadDay, 1e11, 1},
		{"week C=1 NxS=1e9", design.WorkloadWeek, 1e9, 1},
		{"combined C=1 NxS=1e9", design.WorkloadCombined, 1e9, 1},
		{"SPEC int C=1 NxS=1e14", design.WorkloadSPECInt, 1e14, 1},
		{"SPEC fp C=1 NxS=1e14", design.WorkloadSPECFP, 1e14, 1},
		{"day C=5000 NxS=1e8", design.WorkloadDay, 1e8, 5000},
		{"week C=50000 NxS=1e8", design.WorkloadWeek, 1e8, 50000},
		{"SPEC int C=500000 NxS=2e12", design.WorkloadSPECInt, 2e12, 500000},
	}
	if r.opt.Quick {
		points = points[:4]
	}
	var sources []soferr.TraceSource
	srcIdx := make(map[design.Workload]int)
	cells := make([]soferr.Cell, len(points))
	for i, p := range points {
		si, ok := srcIdx[p.w]
		if !ok {
			tr, err := r.WorkloadTrace(p.w)
			if err != nil {
				return nil, err
			}
			si = len(sources)
			sources = append(sources, soferr.TraceSource{Name: p.w.String(), Trace: tr})
			srcIdx[p.w] = si
		}
		// The superposed point rate C x N x S x baseline is folded into
		// RatePerYear (count 1) exactly as the sequential code built its
		// pointSystem, so the product stays bit-identical.
		cells[i] = soferr.Cell{
			Source:      si,
			RatePerYear: design.RatePerYear(p.ns, 1) * float64(p.c),
			Count:       1,
			Seed:        r.opt.Seed ^ (uint64(p.ns) ^ uint64(p.c)),
		}
	}
	ests, err := r.sweepEstimates(ctx, "sec54", sources, cells,
		[]soferr.Method{soferr.SoftArch, soferr.MonteCarlo})
	if err != nil {
		return nil, err
	}
	worstSingle, worstSystem := 0.0, 0.0
	for i, p := range points {
		exact, mc := ests[i][0], ests[i][1]
		rel := (exact.MTTF - mc.MTTF) / mc.MTTF
		if p.c == 1 {
			worstSingle = math.Max(worstSingle, math.Abs(rel))
		} else {
			worstSystem = math.Max(worstSystem, math.Abs(rel))
		}
		t.AddRow(p.name, fmtSeconds(exact.MTTF), fmtSeconds(mc.MTTF), fmtPct(rel),
			fmt.Sprintf("%.2f%%", 100*mc.RelStdErr()))
		t.AddEstimates(p.name, ests[i]...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("worst single-component |err| = %.2f%% (paper: <1%%), worst system |err| = %.2f%% (paper: <2%%)",
			100*worstSingle, 100*worstSystem),
		"discrepancies are Monte-Carlo sampling noise: SoftArch computes the same first-principles quantity in closed form")
	return t, nil
}
