package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/avf"
	"github.com/soferr/soferr/internal/design"
	"github.com/soferr/soferr/internal/sofr"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
	"github.com/soferr/soferr/internal/workload"
)

// sec51Benchmarks returns the benchmark set for the Section 5.1
// validation: all 21 by default, 3 representatives in quick mode.
func (r *Runner) sec51Benchmarks() []string {
	if r.opt.Quick {
		return []string{"gzip", "swim", "mcf"}
	}
	return workload.Names()
}

// Sec51 reproduces Section 5.1: for today's uniprocessors running SPEC,
// both the AVF step (per component) and the SOFR step (whole processor)
// agree with Monte Carlo to within sampling noise (<0.5% in the paper's
// 1M-trial runs).
func (r *Runner) Sec51(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "sec51",
		Title: "AVF+SOFR vs Monte Carlo: uniprocessor running SPEC (Section 5.1)",
		Header: []string{
			"benchmark", "component", "AVF", "rate/yr",
			"MC MTTF", "AVF MTTF", "rel err",
		},
	}
	worst := 0.0
	worstSOFR := 0.0
	for _, b := range r.sec51Benchmarks() {
		traces, err := r.benchTraces(b)
		if err != nil {
			return nil, err
		}
		comps := []struct {
			name   string
			ratePY float64
			mask   *trace.Piecewise
		}{
			{"integer", design.IntUnitRatePerYear, traces.Int},
			{"fp", design.FPUnitRatePerYear, traces.FP},
			{"decode", design.DecodeUnitRatePerYear, traces.Decode},
			{"regfile", design.RegFileRatePerYear, traces.RegFile},
		}
		var (
			procComponents []soferr.Component
			mttfsForSOFR   []float64
		)
		for _, c := range comps {
			rate := units.PerYearToPerSecond(c.ratePY)
			avfVal := c.mask.AVF()
			avfMTTF, err := avf.MTTF(rate, avfVal)
			if err != nil {
				return nil, err
			}
			if avfVal == 0 {
				// Component never vulnerable under this workload: both
				// methods agree on an infinite MTTF.
				t.AddRow(b, c.name, "0.000", fmtSci(c.ratePY), "inf", "inf", "+0.0%")
				continue
			}
			r.logf("sec51: %s/%s", b, c.name)
			mc, err := r.mcMTTF(ctx, c.ratePY, c.mask, hash51(b, c.name))
			if err != nil {
				return nil, err
			}
			rel := (avfMTTF - mc.MTTF) / mc.MTTF
			worst = math.Max(worst, math.Abs(rel))
			t.AddRow(b, c.name,
				fmt.Sprintf("%.3f", avfVal), fmtSci(c.ratePY),
				fmtSeconds(mc.MTTF), fmtSeconds(avfMTTF), fmtPct(rel))
			procComponents = append(procComponents, soferr.Component{
				Name: c.name, RatePerYear: c.ratePY, Trace: c.mask,
			})
			mttfsForSOFR = append(mttfsForSOFR, mc.MTTF)
		}
		// Whole-processor SOFR vs whole-processor Monte Carlo, both
		// against one compiled processor System.
		sofrMTTF, err := sofr.SystemMTTF(mttfsForSOFR)
		if err != nil {
			return nil, err
		}
		proc, err := soferr.NewSystem(procComponents, soferr.WithName(b+" processor"))
		if err != nil {
			return nil, err
		}
		sys, err := proc.MTTF(ctx, soferr.MonteCarlo, r.mcOpts(hash51(b, "system"))...)
		if err != nil {
			return nil, err
		}
		rel := (sofrMTTF - sys.MTTF) / sys.MTTF
		worstSOFR = math.Max(worstSOFR, math.Abs(rel))
		t.AddRow(b, "processor (SOFR)", "-", "-",
			fmtSeconds(sys.MTTF), fmtSeconds(sofrMTTF), fmtPct(rel))
		t.AddEstimates(b+" processor", sys)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("worst AVF-step |err| = %.2f%%, worst SOFR-step |err| = %.2f%%", 100*worst, 100*worstSOFR),
		fmt.Sprintf("paper: <0.5%% at 1e6 trials; at %d trials the MC standard error alone is ~%.2f%%",
			r.opt.Trials, 100/math.Sqrt(float64(r.opt.Trials))))
	return t, nil
}

// hash51 derives a deterministic seed salt for a (benchmark, component)
// pair.
func hash51(b, c string) uint64 {
	h := uint64(1469598103934665603)
	for _, s := range []string{b, "/", c} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return h
}
