// Package experiments regenerates every table and figure of the paper's
// evaluation: the Table 1 configuration, the Table 2 design space, the
// analytic Figures 3 and 4, the Monte-Carlo design-space Figures 5 and
// 6(a)/6(b), and the Section 5.1 / 5.4 validation results. Each
// experiment returns a Table whose rows mirror what the paper reports.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/soferr/soferr/internal/benchsim"
	"github.com/soferr/soferr/internal/design"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/turandot"
	"github.com/soferr/soferr/internal/workload"
)

// Options configures an experiment run. The zero value gives the
// defaults used for the recorded results in EXPERIMENTS.md.
type Options struct {
	// Trials is the Monte-Carlo trial count per point (default 200000;
	// the paper used 1e6 — see DESIGN.md on precision).
	Trials int
	// Seed drives all stochastic components deterministically.
	Seed uint64
	// Instructions is the per-benchmark simulated instruction count
	// (default 300000; the paper simulated 100M Turandot instructions).
	Instructions int
	// Quick shrinks grids and trial counts for use in tests.
	Quick bool
	// Engine selects the Monte-Carlo trial implementation (default
	// Fused: every design-space trace is a materialized Piecewise, so
	// the system-level merged-hazard sampler applies exactly and the
	// sweep cost becomes independent of rate, AVF, and component
	// count; traces that cannot merge fall back per component, so the
	// default is exact for every experiment).
	Engine montecarlo.Engine
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 200000
	}
	if o.Engine == 0 {
		o.Engine = montecarlo.Fused
	}
	if o.Instructions <= 0 {
		o.Instructions = benchsim.DefaultInstructions
	}
	if o.Quick {
		if o.Trials > 30000 {
			o.Trials = 30000
		}
		if o.Instructions > 60000 {
			o.Instructions = 60000
		}
	}
	return o
}

// Runner executes experiments, caching benchmark simulations so that
// experiments sharing workloads (Fig 6a, Sections 5.1/5.4) do not
// re-simulate.
type Runner struct {
	opt Options

	mu     sync.Mutex
	traces map[string]*turandot.ComponentTraces
	procs  map[string]*trace.Piecewise
}

// NewRunner builds a runner with the given options.
func NewRunner(opt Options) *Runner {
	return &Runner{
		opt:    opt.withDefaults(),
		traces: make(map[string]*turandot.ComponentTraces),
		procs:  make(map[string]*trace.Piecewise),
	}
}

// Options returns the runner's effective options.
func (r *Runner) Options() Options { return r.opt }

func (r *Runner) logf(format string, args ...interface{}) {
	if r.opt.Log != nil {
		fmt.Fprintf(r.opt.Log, format+"\n", args...)
	}
}

// benchTraces simulates one benchmark on the Table 1 machine and
// returns the four component masking traces, cached per benchmark.
// Phased-program names (workload.PhasedByName) are accepted too. The
// pipeline itself is the shared internal/benchsim implementation, so
// harness-built traces are bit-identical to Spec/HTTP-built ones.
func (r *Runner) benchTraces(name string) (*turandot.ComponentTraces, error) {
	r.mu.Lock()
	if t, ok := r.traces[name]; ok {
		r.mu.Unlock()
		return t, nil
	}
	r.mu.Unlock()

	t, err := benchsim.Simulate(name, r.opt.Instructions, r.opt.Seed, r.opt.Log)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.traces[name] = t
	r.mu.Unlock()
	return t, nil
}

// ProcessorTrace returns the processor-level masking trace of a benchmark:
// the rate-weighted union of the integer, floating-point, and decode
// unit traces (Section 4.2 applies these three simultaneously for
// processor-level failure), cached per benchmark.
func (r *Runner) ProcessorTrace(name string) (*trace.Piecewise, error) {
	r.mu.Lock()
	if p, ok := r.procs[name]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()

	t, err := r.benchTraces(name)
	if err != nil {
		return nil, err
	}
	union, err := benchsim.ProcessorUnion(name, t)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.procs[name] = union
	r.mu.Unlock()
	return union, nil
}

// WorkloadTrace builds the masking trace for a Table 2 workload family.
// SPEC families use the named representative benchmark's processor
// trace; day and week are the Section 4.2 schedules; combined
// concatenates two benchmark processor traces in a 24-hour loop.
func (r *Runner) WorkloadTrace(w design.Workload) (trace.Trace, error) {
	switch w {
	case design.WorkloadDay:
		return workload.Day()
	case design.WorkloadWeek:
		return workload.Week()
	case design.WorkloadCombined:
		a, err := r.ProcessorTrace(combinedBenchA)
		if err != nil {
			return nil, err
		}
		b, err := r.ProcessorTrace(combinedBenchB)
		if err != nil {
			return nil, err
		}
		return workload.Combined(a, b)
	case design.WorkloadSPECInt:
		return r.ProcessorTrace(specIntRepresentative)
	case design.WorkloadSPECFP:
		return r.ProcessorTrace(specFPRepresentative)
	default:
		return nil, fmt.Errorf("experiments: unknown workload %v", w)
	}
}

// Representative benchmarks for workload families and the combined
// schedule: the shared internal/benchsim definition, so harness-built
// and Spec-built systems agree by construction.
const (
	specIntRepresentative = benchsim.SPECIntRepresentative
	specFPRepresentative  = benchsim.SPECFPRepresentative
	combinedBenchA        = benchsim.SPECIntRepresentative
	combinedBenchB        = benchsim.SPECFPRepresentative
)

// Experiment is a registered, runnable experiment.
type Experiment struct {
	// ID is the short identifier used by the CLI (e.g. "fig3").
	ID string
	// Title is a one-line description.
	Title string
	// Paper cites where the artifact appears in the paper.
	Paper string
	// Run executes the experiment. Cancelling ctx aborts in-flight
	// Monte-Carlo sweeps and returns ctx.Err().
	Run func(r *Runner, ctx context.Context) (*Table, error)
}

var registry = []Experiment{
	{ID: "table1", Title: "Base POWER4-like processor configuration", Paper: "Table 1", Run: (*Runner).Table1},
	{ID: "table2", Title: "Design space explored", Paper: "Table 2", Run: (*Runner).Table2},
	{ID: "fig3", Title: "AVF-step error for a large cache on a busy/idle loop", Paper: "Figure 3", Run: (*Runner).Fig3},
	{ID: "fig4", Title: "SOFR-step error for near-exponential components", Paper: "Figure 4", Run: (*Runner).Fig4},
	{ID: "sec51", Title: "AVF+SOFR vs Monte Carlo: uniprocessor running SPEC", Paper: "Section 5.1", Run: (*Runner).Sec51},
	{ID: "fig5", Title: "AVF-step error across the design space (synthesized workloads)", Paper: "Figure 5", Run: (*Runner).Fig5},
	{ID: "fig6a", Title: "SOFR-step error across the design space (SPEC)", Paper: "Figure 6(a)", Run: (*Runner).Fig6a},
	{ID: "fig6b", Title: "SOFR-step error across the design space (synthesized)", Paper: "Figure 6(b)", Run: (*Runner).Fig6b},
	{ID: "sec54", Title: "SoftArch vs Monte Carlo across the design space", Paper: "Section 5.4", Run: (*Runner).Sec54},
	{ID: "extdist", Title: "TTF distribution shape vs the exponential assumption", Paper: "extension", Run: (*Runner).ExtDist},
	{ID: "extphase", Title: "SOFR error vs phase-staggered clusters", Paper: "extension", Run: (*Runner).ExtPhase},
	{ID: "extphases", Title: "SOFR error with and without workload macro-phases", Paper: "extension", Run: (*Runner).ExtPhases},
}

// All returns every registered experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, ids)
}
