// Package mem models the memory hierarchy of the base POWER4-like
// processor (Table 1): set-associative write-allocate caches with true
// LRU replacement, and fully-associative LRU TLBs. The model is a
// hit/miss timing model only — no data is stored — which is all a
// trace-driven timing simulator needs.
package mem

import (
	"errors"
	"fmt"
	"math/bits"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errEmptyTLB   = errors.New("mem: TLB needs at least one entry")
	errBadLatency = errors.New("mem: non-positive memory latency")
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size.
	LineBytes int
	// Ways is the set associativity (1 = direct mapped).
	Ways int
	// LatencyCycles is the access latency on a hit at this level.
	LatencyCycles int
}

// Validate checks structural sanity: power-of-two line size and a whole
// number of sets.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: non-positive cache geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("mem: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Ways
	if sets == 0 || sets*c.Ways != lines {
		return fmt.Errorf("mem: %d lines not divisible into %d ways", lines, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is a set-associative cache with true LRU replacement.
type Cache struct {
	cfg       CacheConfig
	sets      int
	indexBits int
	offBits   int
	tags      []uint64 // sets x ways
	valid     []bool
	age       []uint64 // LRU stamps
	clock     uint64

	hits   uint64
	misses uint64
}

// NewCache builds a cache from a validated configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		indexBits: bits.TrailingZeros(uint(sets)),
		offBits:   bits.TrailingZeros(uint(cfg.LineBytes)),
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		age:       make([]uint64, lines),
	}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up addr, updating LRU state, and reports whether it hit.
// On a miss the line is allocated (write-allocate for stores too).
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	line := addr >> uint(c.offBits)
	set := int(line) & (c.sets - 1)
	tag := line >> uint(c.indexBits)
	base := set * c.cfg.Ways

	victim := base
	oldest := c.age[base]
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.age[i] = c.clock
			c.hits++
			return true
		}
		if !c.valid[i] {
			victim = i
			oldest = 0
		} else if c.age[i] < oldest {
			victim = i
			oldest = c.age[i]
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.age[victim] = c.clock
	c.misses++
	return false
}

// Hits returns the number of hits recorded so far.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses recorded so far.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.age[i] = 0
		c.tags[i] = 0
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}

// TLBConfig describes a fully-associative translation buffer.
type TLBConfig struct {
	// Entries is the number of mappings held.
	Entries int
	// PageBytes is the page size.
	PageBytes int
	// MissPenaltyCycles is the table-walk cost added on a miss.
	MissPenaltyCycles int
}

// Validate checks the configuration.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 {
		return errEmptyTLB
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("mem: page size %d not a positive power of two", c.PageBytes)
	}
	return nil
}

// TLB is a fully-associative LRU translation buffer.
type TLB struct {
	cfg      TLBConfig
	pageBits int
	pages    []uint64
	valid    []bool
	age      []uint64
	clock    uint64

	hits   uint64
	misses uint64
}

// NewTLB builds a TLB from a validated configuration.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &TLB{
		cfg:      cfg,
		pageBits: bits.TrailingZeros(uint(cfg.PageBytes)),
		pages:    make([]uint64, cfg.Entries),
		valid:    make([]bool, cfg.Entries),
		age:      make([]uint64, cfg.Entries),
	}, nil
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Access translates addr, updating LRU state, and reports a hit.
func (t *TLB) Access(addr uint64) bool {
	t.clock++
	page := addr >> uint(t.pageBits)
	victim := 0
	oldest := t.age[0]
	for i := range t.pages {
		if t.valid[i] && t.pages[i] == page {
			t.age[i] = t.clock
			t.hits++
			return true
		}
		if !t.valid[i] {
			victim = i
			oldest = 0
		} else if t.age[i] < oldest {
			victim = i
			oldest = t.age[i]
		}
	}
	t.pages[victim] = page
	t.valid[victim] = true
	t.age[victim] = t.clock
	t.misses++
	return false
}

// Hits returns the number of hits recorded so far.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the number of misses recorded so far.
func (t *TLB) Misses() uint64 { return t.misses }

// Hierarchy bundles the Table 1 memory system: split L1s, a unified L2,
// main memory, and the two TLBs. It returns access latencies in cycles.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB
	// MemLatencyCycles is the contentionless main-memory latency.
	MemLatencyCycles int
}

// HierarchyConfig configures a Hierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2     CacheConfig
	ITLB, DTLB       TLBConfig
	MemLatencyCycles int
}

// NewHierarchy builds the full memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := NewCache(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	itlb, err := NewTLB(cfg.ITLB)
	if err != nil {
		return nil, fmt.Errorf("ITLB: %w", err)
	}
	dtlb, err := NewTLB(cfg.DTLB)
	if err != nil {
		return nil, fmt.Errorf("DTLB: %w", err)
	}
	if cfg.MemLatencyCycles <= 0 {
		return nil, errBadLatency
	}
	return &Hierarchy{
		L1I: l1i, L1D: l1d, L2: l2,
		ITLB: itlb, DTLB: dtlb,
		MemLatencyCycles: cfg.MemLatencyCycles,
	}, nil
}

// FetchLatency returns the instruction-fetch latency for addr in cycles.
func (h *Hierarchy) FetchLatency(addr uint64) int {
	lat := 0
	if !h.ITLB.Access(addr) {
		lat += h.ITLB.Config().MissPenaltyCycles
	}
	if h.L1I.Access(addr) {
		return lat + h.L1I.Config().LatencyCycles
	}
	if h.L2.Access(addr) {
		return lat + h.L2.Config().LatencyCycles
	}
	return lat + h.MemLatencyCycles
}

// DataLatency returns the data-access latency for addr in cycles.
func (h *Hierarchy) DataLatency(addr uint64) int {
	lat := 0
	if !h.DTLB.Access(addr) {
		lat += h.DTLB.Config().MissPenaltyCycles
	}
	if h.L1D.Access(addr) {
		return lat + h.L1D.Config().LatencyCycles
	}
	if h.L2.Access(addr) {
		return lat + h.L2.Config().LatencyCycles
	}
	return lat + h.MemLatencyCycles
}
