package mem

import "testing"

func newCache(t *testing.T, size, line, ways, lat int) *Cache {
	t.Helper()
	c, err := NewCache(CacheConfig{SizeBytes: size, LineBytes: line, Ways: ways, LatencyCycles: lat})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{},
		{SizeBytes: 1024, LineBytes: 48, Ways: 1},   // line not power of two
		{SizeBytes: 1000, LineBytes: 64, Ways: 1},   // size not multiple
		{SizeBytes: 1024, LineBytes: 64, Ways: 5},   // lines not divisible
		{SizeBytes: 64 * 3, LineBytes: 64, Ways: 1}, // sets not power of two
		{SizeBytes: -1, LineBytes: 64, Ways: 1},     // negative
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	good := CacheConfig{SizeBytes: 32 * 1024, LineBytes: 128, Ways: 2, LatencyCycles: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Table 1 L1D config rejected: %v", err)
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := newCache(t, 1024, 64, 2, 1)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x1030) { // same 64-byte line
		t.Error("same-line access missed")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 2,1", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 256B total => 2 sets. Addresses mapping to set 0
	// with distinct tags: 0x000, 0x080, 0x100 (line = addr>>6, set = line&1).
	c := newCache(t, 256, 64, 2, 1)
	c.Access(0x000) // miss, fills way 0
	c.Access(0x080) // miss, fills way 1
	c.Access(0x000) // hit, refreshes LRU
	c.Access(0x100) // miss, evicts 0x080 (LRU)
	if !c.Access(0x000) {
		t.Error("0x000 should have survived (was MRU)")
	}
	if c.Access(0x080) {
		t.Error("0x080 should have been evicted")
	}
}

func TestCacheDirectMappedConflict(t *testing.T) {
	// Direct-mapped 128B, 64B lines => 2 sets; 0x000 and 0x080 conflict.
	c := newCache(t, 128, 64, 1, 1)
	c.Access(0x000)
	c.Access(0x080)
	if c.Access(0x000) {
		t.Error("conflicting line should have been evicted")
	}
}

func TestCacheFullyUtilized(t *testing.T) {
	// Working set equal to capacity: after warmup, everything hits.
	c := newCache(t, 1024, 64, 4, 1)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 1024; a += 64 {
			c.Access(a)
		}
	}
	if c.Hits() != 16 || c.Misses() != 16 {
		t.Errorf("hits=%d misses=%d, want 16,16", c.Hits(), c.Misses())
	}
}

func TestCacheReset(t *testing.T) {
	c := newCache(t, 1024, 64, 2, 1)
	c.Access(0x40)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("stats not cleared")
	}
	if c.Access(0x40) {
		t.Error("line survived reset")
	}
}

func TestTLBValidation(t *testing.T) {
	if err := (TLBConfig{Entries: 0, PageBytes: 4096}).Validate(); err == nil {
		t.Error("zero entries should fail")
	}
	if err := (TLBConfig{Entries: 4, PageBytes: 1000}).Validate(); err == nil {
		t.Error("non-power-of-two page should fail")
	}
	if err := (TLBConfig{Entries: 128, PageBytes: 4096}).Validate(); err != nil {
		t.Errorf("Table 1 TLB config rejected: %v", err)
	}
}

func TestTLBLRU(t *testing.T) {
	tlb, err := NewTLB(TLBConfig{Entries: 2, PageBytes: 4096, MissPenaltyCycles: 30})
	if err != nil {
		t.Fatal(err)
	}
	tlb.Access(0 * 4096)
	tlb.Access(1 * 4096)
	tlb.Access(0 * 4096) // refresh page 0
	tlb.Access(2 * 4096) // evict page 1
	if !tlb.Access(0 * 4096) {
		t.Error("page 0 evicted despite MRU")
	}
	if tlb.Access(1 * 4096) {
		t.Error("page 1 should have been evicted")
	}
	if tlb.Hits() != 2 {
		t.Errorf("hits = %d, want 2", tlb.Hits())
	}
}

func TestTLBSamePage(t *testing.T) {
	tlb, err := NewTLB(TLBConfig{Entries: 4, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	tlb.Access(100)
	if !tlb.Access(4000) { // same page
		t.Error("same-page access missed")
	}
}

func table1Hierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{
		L1I:              CacheConfig{SizeBytes: 64 * 1024, LineBytes: 128, Ways: 1, LatencyCycles: 1},
		L1D:              CacheConfig{SizeBytes: 32 * 1024, LineBytes: 128, Ways: 2, LatencyCycles: 1},
		L2:               CacheConfig{SizeBytes: 1024 * 1024, LineBytes: 128, Ways: 4, LatencyCycles: 10},
		ITLB:             TLBConfig{Entries: 128, PageBytes: 4096, MissPenaltyCycles: 30},
		DTLB:             TLBConfig{Entries: 128, PageBytes: 4096, MissPenaltyCycles: 30},
		MemLatencyCycles: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLatencies(t *testing.T) {
	h := table1Hierarchy(t)
	// Cold access: TLB miss (30) + L1 miss + L2 miss -> memory (77).
	if got := h.DataLatency(0x10000); got != 30+77 {
		t.Errorf("cold data latency = %d, want 107", got)
	}
	// Warm: everything hits -> 1 cycle.
	if got := h.DataLatency(0x10000); got != 1 {
		t.Errorf("warm data latency = %d, want 1", got)
	}
	// Evict from L1D but not L2: stream enough distinct lines through
	// the same L1 set, then return. L1D has 128 sets; lines mapping to
	// set 0 are 128*128 bytes apart.
	stride := uint64(128 * 128)
	for i := uint64(1); i <= 8; i++ {
		h.DataLatency(0x10000 + i*stride)
	}
	if got := h.DataLatency(0x10000); got != 10 {
		t.Errorf("L2-hit latency = %d, want 10", got)
	}
}

func TestHierarchyFetchPath(t *testing.T) {
	h := table1Hierarchy(t)
	if got := h.FetchLatency(0x0); got != 30+77 {
		t.Errorf("cold fetch = %d, want 107", got)
	}
	if got := h.FetchLatency(0x40); got != 1 { // same 128B line, same page
		t.Errorf("warm fetch = %d, want 1", got)
	}
}

func TestHierarchyConfigErrors(t *testing.T) {
	_, err := NewHierarchy(HierarchyConfig{})
	if err == nil {
		t.Error("empty config should fail")
	}
}
