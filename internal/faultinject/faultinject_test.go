package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() true with no schedule")
	}
	if err := Fire("anything"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if Snapshot() != nil {
		t.Error("disarmed Snapshot not nil")
	}
}

func TestExplicitHitsFireDeterministically(t *testing.T) {
	defer Arm(Schedule{Rules: []Rule{{Point: "p", Hits: []int{2, 4}}}})()
	var fired []int
	for i := 1; i <= 5; i++ {
		if err := Fire("p"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not wrap ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Errorf("fired at %v, want [2 4]", fired)
	}
	st := Snapshot()["p"]
	if st.Hits != 5 || st.Fired != 2 {
		t.Errorf("stats = %+v, want 5 hits, 2 fired", st)
	}
}

func TestExplicitErrorAndCountCap(t *testing.T) {
	sentinel := errors.New("boom")
	defer Arm(Schedule{Rules: []Rule{{Point: "p", Count: 2, Err: sentinel}}})()
	var n int
	for i := 0; i < 10; i++ {
		if err := Fire("p"); err != nil {
			if !errors.Is(err, sentinel) {
				t.Fatalf("error %v does not wrap sentinel", err)
			}
			n++
		}
	}
	if n != 2 {
		t.Errorf("fired %d times, want the Count cap of 2", n)
	}
}

func TestProbabilisticFiringIsSeeded(t *testing.T) {
	run := func(seed uint64) []int {
		defer Arm(Schedule{Seed: seed, Rules: []Rule{{Point: "p", P: 0.5}}})()
		var fired []int
		for i := 1; i <= 64; i++ {
			if Fire("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("P=0.5 fired %d/64 times; schedule degenerate", len(a))
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("same seed, different firing sets: %v vs %v", a, b)
		}
	}
	if c := run(8); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical firing sets")
		}
	}
}

func TestPanicAction(t *testing.T) {
	defer Arm(Schedule{Rules: []Rule{{Point: "p", PanicMsg: "die"}}})()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("no panic")
		}
		if s, ok := rec.(string); !ok || !strings.Contains(s, "die") || !strings.Contains(s, "p") {
			t.Errorf("panic value %v lacks point and message", rec)
		}
	}()
	Fire("p")
}

func TestDelayAction(t *testing.T) {
	defer Arm(Schedule{Rules: []Rule{{Point: "p", Delay: 30 * time.Millisecond}}})()
	start := time.Now()
	Fire("p")
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delay rule slept %v, want >= 30ms", d)
	}
}

func TestUnruledPointCountsHits(t *testing.T) {
	defer Arm(Schedule{Rules: []Rule{{Point: "other"}}})()
	for i := 0; i < 3; i++ {
		if err := Fire("plain"); err != nil {
			t.Fatalf("unruled point fired: %v", err)
		}
	}
	if st := Snapshot()["plain"]; st.Hits != 3 || st.Fired != 0 {
		t.Errorf("unruled stats = %+v, want 3 hits, 0 fired", st)
	}
}

// TestConcurrentFire exercises the registry under the race detector:
// concurrent hits at one probabilistic point must stay consistent
// (hits == calls, fired <= hits).
func TestConcurrentFire(t *testing.T) {
	defer Arm(Schedule{Seed: 1, Rules: []Rule{{Point: "p", P: 0.3}}})()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Fire("p")
			}
		}()
	}
	wg.Wait()
	st := Snapshot()["p"]
	if st.Hits != workers*per {
		t.Errorf("hits = %d, want %d", st.Hits, workers*per)
	}
	if st.Fired <= 0 || st.Fired > st.Hits {
		t.Errorf("fired = %d out of range (0, %d]", st.Fired, st.Hits)
	}
}

func TestDisarmRestoresCleanState(t *testing.T) {
	disarm := Arm(Schedule{Rules: []Rule{{Point: "p"}}})
	if Fire("p") == nil {
		t.Fatal("armed every-hit rule did not fire")
	}
	disarm()
	if err := Fire("p"); err != nil {
		t.Fatalf("Fire after disarm: %v", err)
	}
	if Armed() {
		t.Error("Armed() true after disarm")
	}
}
