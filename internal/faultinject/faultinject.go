// Package faultinject is a deterministic, scripted fault-injection
// registry for chaos-testing the serving stack the same way the paper
// tests hardware: inject a fault at a named point, then assert the
// system degrades the way its failure model promises (see DESIGN.md,
// "Failure model").
//
// Production code threads named injection points through its failure-
// prone seams — compile goroutines, trial workers, request handlers —
// by calling Fire(point). When the registry is disarmed (the default,
// and the only state production ever runs in) Fire is a single atomic
// load returning nil: zero allocations, no locks, no behavior change.
// A chaos test arms a Schedule of Rules; each rule names a point and
// scripts when it fires (explicit 1-based hit indices, or a seeded
// per-hit probability) and what it does (sleep, return an error,
// panic), so the same schedule replays the same faults run after run.
//
// Determinism contract: a rule with explicit Hits fires at exactly
// those hit indices of its point, in whatever order concurrent callers
// reach them; a probabilistic rule consults the k-th draw of a stream
// seeded by (Schedule.Seed, rule index) at its k-th hit, so the set of
// firing hit indices is a deterministic function of the schedule. When
// a fault does not fire, Fire returns nil and the caller's seeded
// computation proceeds bit-identically to an unarmed run.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/soferr/soferr/internal/xrand"
)

// ErrInjected is the default error an armed Rule returns from Fire
// when it fires without a more specific Err. Callers that inject
// non-error effects (forcing a cache eviction, say) test Fire's result
// against it via errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule scripts the faults at one injection point. The zero effect
// fields mean "just count the hit"; effects apply in order Delay,
// PanicMsg, Err.
type Rule struct {
	// Point names the injection point the rule arms.
	Point string
	// Hits lists the 1-based hit indices at which the rule fires.
	// Empty means every hit (still subject to P and Count).
	Hits []int
	// P, when in (0, 1), fires each hit with this probability, drawn
	// from a stream seeded by (Schedule.Seed, rule index). Zero means
	// non-probabilistic.
	P float64
	// Count caps the total number of fires (0 = unlimited).
	Count int
	// Delay is slept before the other effects when the rule fires
	// (slow-compile, slow-handler faults). A rule with ONLY Delay set is
	// latency-only: Fire sleeps and returns nil, so the caller proceeds
	// (slowly). Combine Delay with Err or PanicMsg for slow-then-fail.
	Delay time.Duration
	// PanicMsg, when non-empty, makes Fire panic with
	// "faultinject: <point>: <msg>" after the delay.
	PanicMsg string
	// Err is returned by Fire after the delay (defaults to ErrInjected
	// when the rule fires with no panic and no explicit error).
	Err error
}

// Schedule is an armed set of rules plus the seed for probabilistic
// firing decisions.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// PointStats counts one point's activity since arming.
type PointStats struct {
	// Hits is the number of times Fire reached the point.
	Hits int64
	// Fired is the number of those hits at which a rule fired.
	Fired int64
}

// armedRule is one rule's mutable firing state. The mutex keeps the
// hit counter and the probabilistic stream in lockstep so the k-th hit
// always consumes the k-th draw.
type armedRule struct {
	rule  Rule
	mu    sync.Mutex
	hits  int64
	fired int64
	rng   *xrand.Rand
}

// registry is the armed state; nil (the atomic pointer's zero) means
// disarmed.
type registry struct {
	rules map[string][]*armedRule

	// statsMu guards stats for points without rules; per-rule counters
	// live on the rules themselves.
	statsMu sync.Mutex
	stats   map[string]*PointStats
}

var armed atomic.Pointer[registry]

// Arm installs the schedule and returns a disarm function. Arming
// replaces any previously armed schedule; tests should defer the
// returned disarm. Counters start at zero.
func Arm(s Schedule) (disarm func()) {
	reg := &registry{
		rules: make(map[string][]*armedRule),
		stats: make(map[string]*PointStats),
	}
	for i, r := range s.Rules {
		ar := &armedRule{rule: r}
		if r.P > 0 && r.P < 1 {
			ar.rng = xrand.New(s.Seed*0x9e3779b97f4a7c15 + uint64(i) + 1)
		}
		reg.rules[r.Point] = append(reg.rules[r.Point], ar)
	}
	armed.Store(reg)
	return Disarm
}

// Disarm removes the armed schedule; Fire returns to its zero-overhead
// disabled path.
func Disarm() { armed.Store(nil) }

// Armed reports whether a schedule is currently armed.
func Armed() bool { return armed.Load() != nil }

// Fire records a hit at point and applies the first armed rule that
// fires there: it sleeps the rule's Delay, panics if PanicMsg is set,
// and returns the rule's Err (ErrInjected when the rule has no effects
// at all; nil for a latency-only rule, whose fault is the wait). With
// no armed schedule — production — it is a single atomic load
// returning nil.
func Fire(point string) error {
	reg := armed.Load()
	if reg == nil {
		return nil
	}
	return reg.fire(point)
}

func (reg *registry) fire(point string) error {
	rules := reg.rules[point]
	if len(rules) == 0 {
		reg.statsMu.Lock()
		st := reg.stats[point]
		if st == nil {
			st = &PointStats{}
			reg.stats[point] = st
		}
		st.Hits++
		reg.statsMu.Unlock()
		return nil
	}
	for _, ar := range rules {
		fired := ar.hit()
		if !fired {
			continue
		}
		r := ar.rule
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		if r.PanicMsg != "" {
			panic(fmt.Sprintf("faultinject: %s: %s", point, r.PanicMsg))
		}
		if r.Err != nil {
			return fmt.Errorf("faultinject: %s: %w", point, r.Err)
		}
		if r.Delay > 0 {
			// Latency-only rule: the fault is the wait itself.
			return nil
		}
		return fmt.Errorf("%s: %w", point, ErrInjected)
	}
	return nil
}

// hit advances the rule's hit counter and decides whether this hit
// fires, consuming exactly one probabilistic draw per hit so the
// firing set depends only on the schedule.
func (ar *armedRule) hit() bool {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	ar.hits++
	if ar.rule.Count > 0 && ar.fired >= int64(ar.rule.Count) {
		return false
	}
	fire := true
	if ar.rng != nil {
		fire = ar.rng.Float64() < ar.rule.P
	}
	if fire && len(ar.rule.Hits) > 0 {
		fire = false
		for _, h := range ar.rule.Hits {
			if int64(h) == ar.hits {
				fire = true
				break
			}
		}
	}
	if fire {
		ar.fired++
	}
	return fire
}

// Snapshot returns per-point hit and fired counts since arming (nil
// when disarmed). Points with several rules sum their counters; Hits
// counts each Fire call once per matching rule set, so for the common
// one-rule-per-point schedules it is simply the call count.
func Snapshot() map[string]PointStats {
	reg := armed.Load()
	if reg == nil {
		return nil
	}
	out := make(map[string]PointStats)
	for point, rules := range reg.rules {
		var st PointStats
		for _, ar := range rules {
			ar.mu.Lock()
			st.Fired += ar.fired
			ar.mu.Unlock()
		}
		// Hits at a multi-rule point would double-count per rule; report
		// the first rule's view of the call count.
		rules[0].mu.Lock()
		st.Hits = rules[0].hits
		rules[0].mu.Unlock()
		out[point] = st
	}
	reg.statsMu.Lock()
	for point, st := range reg.stats {
		out[point] = *st
	}
	reg.statsMu.Unlock()
	return out
}
