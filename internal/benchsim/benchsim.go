// Package benchsim is the one implementation of the benchmark-trace
// pipeline: generate a bundled workload, run it through the Table 1
// timing simulator, and (optionally) union the unit traces into the
// processor-level masking trace. Both the experiment harness
// (internal/experiments.Runner) and the public Spec compiler
// (soferr.Compiler) build on it, which is what guarantees that
// harness-built and Spec/HTTP-built systems agree bit for bit — there
// is no second copy of the unit rates, the union order, or the
// coarsening window to drift.
package benchsim

import (
	"fmt"
	"io"

	"github.com/soferr/soferr/internal/design"
	"github.com/soferr/soferr/internal/isa"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/turandot"
	"github.com/soferr/soferr/internal/workload"
)

// Default simulation settings, shared by the experiment harness and
// the public Spec compiler so their notion of "the default trace"
// cannot drift apart.
const (
	// DefaultInstructions is the per-benchmark simulated instruction
	// count (the paper used 100M; a few hundred thousand give stable
	// AVFs in seconds of CPU time).
	DefaultInstructions = 300000
	// DefaultSeed drives benchmark generation deterministically.
	DefaultSeed = 1
)

// The representative benchmark pair for workload families and the
// combined schedule (the paper leaves the choice open): gzip stands in
// for SPECint, swim for SPECfp, and the combined schedule runs one
// half-day of each.
const (
	SPECIntRepresentative = "gzip"
	SPECFPRepresentative  = "swim"
)

// CoarsenWindow is the canonical segment-merge window for processor
// unions: it preserves the AVF exactly and distorts survival
// quantities only at O((rate x window)^2) — unmeasurable at any rate
// in the design space — while making Monte-Carlo lookups on low-IPC
// benchmarks several times faster.
const CoarsenWindow = 200000

// Simulate generates the named benchmark (phased-program names are
// accepted alongside the plain profiles) and runs it on the Table 1
// machine, returning the four component masking traces. log, when
// non-nil, receives one progress line before the simulation.
func Simulate(name string, instructions int, seed uint64, log io.Writer) (*turandot.ComponentTraces, error) {
	var (
		prog []isa.Inst
		err  error
	)
	if pp, perr := workload.PhasedByName(name); perr == nil {
		prog, err = pp.Generate(instructions, seed)
	} else {
		var prof workload.Profile
		prof, err = workload.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, err = prof.Generate(instructions, seed)
	}
	if err != nil {
		return nil, err
	}
	sim, err := turandot.New(turandot.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if log != nil {
		fmt.Fprintf(log, "simulating %s (%d instructions)\n", name, len(prog))
	}
	res, err := sim.Run(prog)
	if err != nil {
		return nil, fmt.Errorf("simulate %s: %w", name, err)
	}
	return res.Traces()
}

// ProcessorUnion builds the processor-level masking trace of a
// simulated benchmark: the rate-weighted union of the integer,
// floating-point, and decode unit traces (Section 4.2 applies these
// three simultaneously for processor-level failure), coarsened with
// the canonical window.
func ProcessorUnion(name string, t *turandot.ComponentTraces) (*trace.Piecewise, error) {
	intR, fpR, decR := design.UnitRatesPerSecond()
	union, err := trace.WeightedUnion(
		[]float64{intR, fpR, decR},
		[]*trace.Piecewise{t.Int, t.FP, t.Decode},
	)
	if err != nil {
		return nil, fmt.Errorf("union %s: %w", name, err)
	}
	union, err = trace.Coarsen(union, CoarsenWindow)
	if err != nil {
		return nil, fmt.Errorf("coarsen %s: %w", name, err)
	}
	return union, nil
}
