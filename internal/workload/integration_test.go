package workload_test

import (
	"testing"

	"github.com/soferr/soferr/internal/turandot"
	"github.com/soferr/soferr/internal/workload"
)

// simulate runs one benchmark through the Table 1 machine.
func simulate(t *testing.T, name string, n int) *turandot.Result {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Generate(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := turandot.New(turandot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIntBenchmarkUtilization(t *testing.T) {
	// An integer benchmark must exercise the integer unit far more than
	// the FP unit (Section 4.1's masking traces depend on this contrast).
	res := simulate(t, "gzip", 60000)
	traces, err := res.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if traces.Int.AVF() < 0.05 {
		t.Errorf("gzip integer AVF = %v, implausibly idle", traces.Int.AVF())
	}
	if traces.FP.AVF() > traces.Int.AVF()/2 {
		t.Errorf("gzip FP AVF %v not well below int AVF %v", traces.FP.AVF(), traces.Int.AVF())
	}
	if traces.Decode.AVF() <= 0 || traces.Decode.AVF() > 1 {
		t.Errorf("decode AVF = %v", traces.Decode.AVF())
	}
	if traces.RegFile.AVF() <= 0 || traces.RegFile.AVF() > 1 {
		t.Errorf("regfile AVF = %v", traces.RegFile.AVF())
	}
}

func TestFPBenchmarkUtilization(t *testing.T) {
	res := simulate(t, "swim", 60000)
	traces, err := res.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if traces.FP.AVF() < 0.10 {
		t.Errorf("swim FP AVF = %v, implausibly idle", traces.FP.AVF())
	}
	if traces.FP.AVF() <= traces.Int.AVF()/2 {
		t.Errorf("swim FP AVF %v should rival int AVF %v", traces.FP.AVF(), traces.Int.AVF())
	}
}

func TestMemoryBoundVsComputeBound(t *testing.T) {
	// mcf (huge random footprint) must achieve clearly lower IPC than
	// gzip (small strided footprint).
	mcf := simulate(t, "mcf", 40000)
	gzip := simulate(t, "gzip", 40000)
	if mcf.Stats.IPC() >= gzip.Stats.IPC() {
		t.Errorf("mcf IPC %v >= gzip IPC %v — memory behaviour not differentiating",
			mcf.Stats.IPC(), gzip.Stats.IPC())
	}
	if mcf.Stats.L2Misses < gzip.Stats.L2Misses {
		t.Errorf("mcf L2 misses %d < gzip %d", mcf.Stats.L2Misses, gzip.Stats.L2Misses)
	}
}

func TestBranchyVsRegular(t *testing.T) {
	// gcc (30% unpredictable branches) must mispredict more than swim
	// (2% unpredictable, strongly biased).
	gcc := simulate(t, "gcc", 40000)
	swim := simulate(t, "swim", 40000)
	if gcc.Stats.MispredictRate() <= swim.Stats.MispredictRate() {
		t.Errorf("gcc mispredict rate %v <= swim %v",
			gcc.Stats.MispredictRate(), swim.Stats.MispredictRate())
	}
}

func TestAllBenchmarksRunAndProduceTraces(t *testing.T) {
	for _, p := range workload.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res := simulate(t, p.Name, 20000)
			if res.Stats.Retired != 20000 {
				t.Fatalf("retired %d/20000", res.Stats.Retired)
			}
			if ipc := res.Stats.IPC(); ipc < 0.02 || ipc > 5 {
				t.Errorf("IPC = %v implausible", ipc)
			}
			traces, err := res.Traces()
			if err != nil {
				t.Fatal(err)
			}
			for name, avf := range map[string]float64{
				"decode": traces.Decode.AVF(),
				"int":    traces.Int.AVF(),
				"fp":     traces.FP.AVF(),
				"reg":    traces.RegFile.AVF(),
			} {
				if avf < 0 || avf > 1 {
					t.Errorf("%s AVF = %v", name, avf)
				}
			}
		})
	}
}
