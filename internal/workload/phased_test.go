package workload

import "testing"

func TestPhasedProgramsBuiltins(t *testing.T) {
	pps := PhasedPrograms()
	if len(pps) != 2 {
		t.Fatalf("built-ins = %d, want 2", len(pps))
	}
	for _, pp := range pps {
		if err := pp.Validate(); err != nil {
			t.Errorf("%s invalid: %v", pp.Name, err)
		}
	}
	if _, err := PhasedByName("phased-int"); err != nil {
		t.Error(err)
	}
	if _, err := PhasedByName("nope"); err == nil {
		t.Error("unknown phased program accepted")
	}
}

func TestPhasedGenerateCounts(t *testing.T) {
	pp, err := PhasedByName("phased-int")
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	prog, err := pp.Generate(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != n {
		t.Fatalf("generated %d, want %d", len(prog), n)
	}
	for i := range prog {
		if err := prog[i].Validate(); err != nil {
			t.Fatalf("instruction %d: %v", i, err)
		}
	}
}

func TestPhasedCodeRangesDisjoint(t *testing.T) {
	pp, err := PhasedByName("phased-int")
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	prog, err := pp.Generate(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Phase boundaries: instructions from different phases must use
	// disjoint PC ranges.
	f0 := pp.Phases[0].Fraction / (pp.Phases[0].Fraction + pp.Phases[1].Fraction + pp.Phases[2].Fraction)
	cut := int(float64(n) * f0)
	maxPhase0 := uint64(0)
	for i := 0; i < cut; i++ {
		if prog[i].PC > maxPhase0 {
			maxPhase0 = prog[i].PC
		}
	}
	minPhase1 := ^uint64(0)
	for i := cut; i < cut+1000; i++ {
		if prog[i].PC < minPhase1 {
			minPhase1 = prog[i].PC
		}
	}
	if minPhase1 <= maxPhase0 {
		t.Errorf("phase PC ranges overlap: phase0 max %#x, phase1 min %#x", maxPhase0, minPhase1)
	}
}

func TestPhasedUtilizationVaries(t *testing.T) {
	// The point of phases: the instruction mix — and hence unit
	// utilization — must differ across phases.
	pp, err := PhasedByName("phased-fp")
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	prog, err := pp.Generate(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	countFP := func(lo, hi int) float64 {
		fp := 0
		for i := lo; i < hi; i++ {
			if prog[i].Class.IsFP() {
				fp++
			}
		}
		return float64(fp) / float64(hi-lo)
	}
	firstPhase := countFP(0, n/5)
	lastPhase := countFP(4*n/5, n)
	if firstPhase == lastPhase {
		t.Error("FP fraction identical across phases; phases not differentiating")
	}
}

func TestPhasedValidation(t *testing.T) {
	if err := (PhasedProgram{Name: "x"}).Validate(); err == nil {
		t.Error("no phases accepted")
	}
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	bad := PhasedProgram{
		Name: "bad",
		Phases: []ProgramPhase{
			{Profile: p, Fraction: 1},
			{Profile: p, Fraction: -1},
		},
	}
	if err := bad.Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := bad.Generate(100, 1); err == nil {
		t.Error("Generate on invalid program accepted")
	}
	good := PhasedProgram{
		Name: "ok",
		Phases: []ProgramPhase{
			{Profile: p, Fraction: 1},
			{Profile: p, Fraction: 1},
		},
	}
	if _, err := good.Generate(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestPhasedDeterministic(t *testing.T) {
	pp, err := PhasedByName("phased-int")
	if err != nil {
		t.Fatal(err)
	}
	a, err := pp.Generate(5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pp.Generate(5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}
