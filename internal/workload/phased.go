package workload

import (
	"fmt"

	"github.com/soferr/soferr/internal/isa"
)

// PhasedProgram models a long-running program as a sequence of
// behavioural phases — e.g. a compiler alternating between branchy
// parsing, pointer-chasing optimization, and tight code emission.
//
// Phases are the paper's third key parameter: the AVF+SOFR error
// depends on "the length of the full execution or the longest repeated
// phase of the workload" (Section 1). A single Profile produces
// statistically stationary traces whose effective L is tiny regardless
// of length; a PhasedProgram produces genuine utilization variation
// across its period, which is what pushes the error onset to smaller
// raw-rate x component-count products (see the extphases experiment).
type PhasedProgram struct {
	// Name identifies the phased program.
	Name string
	// Phases run in order, each contributing Fraction of the dynamic
	// instructions; the whole sequence is the workload's loop
	// iteration.
	Phases []ProgramPhase
}

// ProgramPhase is one behavioural phase.
type ProgramPhase struct {
	// Profile describes the phase's behaviour.
	Profile Profile
	// Fraction is the share of dynamic instructions (normalized across
	// phases).
	Fraction float64
}

// Validate reports structural errors.
func (pp PhasedProgram) Validate() error {
	if pp.Name == "" {
		return fmt.Errorf("workload: phased program without name")
	}
	if len(pp.Phases) < 2 {
		return fmt.Errorf("workload: %s: need at least 2 phases", pp.Name)
	}
	total := 0.0
	for i, ph := range pp.Phases {
		if err := ph.Profile.Validate(); err != nil {
			return fmt.Errorf("workload: %s phase %d: %w", pp.Name, i, err)
		}
		if ph.Fraction <= 0 {
			return fmt.Errorf("workload: %s phase %d: non-positive fraction", pp.Name, i)
		}
		total += ph.Fraction
	}
	if total <= 0 {
		return fmt.Errorf("workload: %s: zero total fraction", pp.Name)
	}
	return nil
}

// Generate produces n dynamic instructions walking the phases in order.
// Each phase's code occupies a distinct address range so the phases
// behave like separate program sections in the instruction cache and
// branch predictor.
func (pp PhasedProgram) Generate(n int, seed uint64) ([]isa.Inst, error) {
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: need n > 0, got %d", n)
	}
	total := 0.0
	for _, ph := range pp.Phases {
		total += ph.Fraction
	}
	prog := make([]isa.Inst, 0, n)
	codeBase := uint64(0)
	emitted := 0
	for i, ph := range pp.Phases {
		count := int(float64(n) * ph.Fraction / total)
		if i == len(pp.Phases)-1 {
			count = n - emitted // absorb rounding in the last phase
		}
		if count <= 0 {
			continue
		}
		chunk, err := ph.Profile.Generate(count, seed+uint64(i)*0x9e37)
		if err != nil {
			return nil, err
		}
		for j := range chunk {
			chunk[j].PC += codeBase
		}
		prog = append(prog, chunk...)
		emitted += count
		codeBase += ph.Profile.CodeFootprint
	}
	return prog, nil
}

// PhasedPrograms returns the built-in phased workloads: an integer
// program alternating compiler-like phases and a floating-point program
// alternating solver-like phases.
func PhasedPrograms() []PhasedProgram {
	byName := func(n string) Profile {
		p, err := ByName(n)
		if err != nil {
			panic("workload: built-in profile missing: " + n)
		}
		return p
	}
	return []PhasedProgram{
		{
			Name: "phased-int",
			Phases: []ProgramPhase{
				{Profile: byName("gcc"), Fraction: 0.4},  // branchy front end
				{Profile: byName("mcf"), Fraction: 0.3},  // pointer-chasing middle
				{Profile: byName("gzip"), Fraction: 0.3}, // tight back end
			},
		},
		{
			Name: "phased-fp",
			Phases: []ProgramPhase{
				{Profile: byName("fma3d"), Fraction: 0.4}, // assembly phase
				{Profile: byName("swim"), Fraction: 0.4},  // streaming solve
				{Profile: byName("ammp"), Fraction: 0.2},  // irregular update
			},
		},
	}
}

// PhasedByName returns the built-in phased program with the given name.
func PhasedByName(name string) (PhasedProgram, error) {
	for _, pp := range PhasedPrograms() {
		if pp.Name == name {
			return pp, nil
		}
	}
	return PhasedProgram{}, fmt.Errorf("workload: unknown phased program %q", name)
}
