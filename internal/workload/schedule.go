package workload

import (
	"errors"
	"fmt"

	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errCombinedShape = errors.New("workload: Combined needs two benchmark traces")
)

// The three synthesized long-horizon workloads of Section 4.2. Their
// loop sizes (24 hours, one week) are what stress the AVF+SOFR
// assumptions: utilization varies over time scales far beyond anything
// SPEC exhibits.

// Day returns the "day" workload: a 24-hour loop, busy during the day
// (the first half) and idle at night.
func Day() (*trace.Piecewise, error) {
	return trace.BusyIdle(units.SecondsPerDay, units.SecondsPerDay/2)
}

// Week returns the "week" workload: a one-week loop, busy for the five
// business days and idle over the weekend.
func Week() (*trace.Piecewise, error) {
	return trace.BusyIdle(units.SecondsPerWeek, 5*units.SecondsPerDay)
}

// Combined returns the "combined" workload: a 24-hour loop whose first
// half repeats benchmark trace a and whose second half repeats benchmark
// trace b. The benchmark traces are processor-level masking traces with
// sub-second periods, so the result is represented lazily.
func Combined(a, b *trace.Piecewise) (*trace.LongLoop, error) {
	if a == nil || b == nil {
		return nil, errCombinedShape
	}
	const half = units.SecondsPerDay / 2
	if a.Period() > half || b.Period() > half {
		return nil, fmt.Errorf("workload: benchmark periods (%v, %v) exceed half a day", a.Period(), b.Period())
	}
	return trace.NewLongLoop(
		trace.LoopPhase{Inner: a, Reps: trace.RepeatFor(a, half)},
		trace.LoopPhase{Inner: b, Reps: trace.RepeatFor(b, half)},
	)
}
