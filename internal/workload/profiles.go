package workload

import (
	"fmt"
	"sort"
)

// The profile parameters below are calibrated qualitatively against
// published SPEC CPU2000 characterizations: mcf and art are memory-bound
// with large, poorly-localized footprints; crafty, vortex, and gcc are
// control-heavy; swim, mgrid, applu, and lucas stream over large arrays;
// sixtrack and fma3d are dense floating-point compute; gzip and bzip2
// are compression kernels with tight integer loops. The absolute
// parameters matter only through the utilization statistics of the
// resulting masking traces.

const (
	kb = 1024
	mb = 1024 * 1024
)

func specIntProfiles() []Profile {
	return []Profile{
		{
			Name: "gzip", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.48, IntMul: 0.02, Load: 0.22, Store: 0.10, Branch: 0.18},
			DepP: 0.45, RandomBranchFrac: 0.12, TakenBias: 0.92,
			DataFootprint: 2 * mb, StrideFrac: 0.75, CodeFootprint: 16 * kb,
		},
		{
			Name: "vpr", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.42, IntMul: 0.03, IntDiv: 0.005, FPOp: 0.05, Load: 0.26, Store: 0.08, Branch: 0.155},
			DepP: 0.5, RandomBranchFrac: 0.2, TakenBias: 0.9,
			DataFootprint: 8 * mb, StrideFrac: 0.45, CodeFootprint: 24 * kb,
		},
		{
			Name: "gcc", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.40, IntMul: 0.01, Load: 0.26, Store: 0.12, Branch: 0.21},
			DepP: 0.55, RandomBranchFrac: 0.2, TakenBias: 0.9,
			DataFootprint: 16 * mb, StrideFrac: 0.4, CodeFootprint: 96 * kb,
		},
		{
			Name: "mcf", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.33, IntMul: 0.01, Load: 0.35, Store: 0.09, Branch: 0.22},
			DepP: 0.6, RandomBranchFrac: 0.25, TakenBias: 0.88,
			DataFootprint: 96 * mb, StrideFrac: 0.1, CodeFootprint: 8 * kb,
		},
		{
			Name: "crafty", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.46, IntMul: 0.02, IntDiv: 0.002, Load: 0.27, Store: 0.07, Branch: 0.178},
			DepP: 0.4, RandomBranchFrac: 0.15, TakenBias: 0.91,
			DataFootprint: 4 * mb, StrideFrac: 0.35, CodeFootprint: 48 * kb,
		},
		{
			Name: "parser", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.41, IntMul: 0.01, Load: 0.27, Store: 0.10, Branch: 0.21},
			DepP: 0.55, RandomBranchFrac: 0.18, TakenBias: 0.9,
			DataFootprint: 24 * mb, StrideFrac: 0.3, CodeFootprint: 32 * kb,
		},
		{
			Name: "gap", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.45, IntMul: 0.04, IntDiv: 0.004, Load: 0.24, Store: 0.09, Branch: 0.176},
			DepP: 0.45, RandomBranchFrac: 0.12, TakenBias: 0.92,
			DataFootprint: 32 * mb, StrideFrac: 0.5, CodeFootprint: 32 * kb,
		},
		{
			Name: "vortex", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.40, IntMul: 0.01, Load: 0.28, Store: 0.13, Branch: 0.18},
			DepP: 0.5, RandomBranchFrac: 0.1, TakenBias: 0.94,
			DataFootprint: 48 * mb, StrideFrac: 0.45, CodeFootprint: 80 * kb,
		},
		{
			Name: "bzip2", Suite: SuiteInt,
			Mix:  Mix{IntALU: 0.50, IntMul: 0.02, Load: 0.23, Store: 0.09, Branch: 0.16},
			DepP: 0.42, RandomBranchFrac: 0.15, TakenBias: 0.92,
			DataFootprint: 64 * mb, StrideFrac: 0.65, CodeFootprint: 16 * kb,
		},
	}
}

func specFPProfiles() []Profile {
	return []Profile{
		{
			Name: "wupwise", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.18, FPOp: 0.40, FPDiv: 0.005, Load: 0.26, Store: 0.10, Branch: 0.055},
			DepP: 0.35, RandomBranchFrac: 0.05, TakenBias: 0.95,
			DataFootprint: 64 * mb, StrideFrac: 0.8, CodeFootprint: 16 * kb,
		},
		{
			Name: "swim", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.14, FPOp: 0.42, Load: 0.29, Store: 0.12, Branch: 0.03},
			DepP: 0.3, RandomBranchFrac: 0.02, TakenBias: 0.97,
			DataFootprint: 96 * mb, StrideFrac: 0.95, CodeFootprint: 8 * kb,
		},
		{
			Name: "mgrid", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.16, FPOp: 0.46, Load: 0.28, Store: 0.07, Branch: 0.03},
			DepP: 0.32, RandomBranchFrac: 0.02, TakenBias: 0.97,
			DataFootprint: 56 * mb, StrideFrac: 0.9, CodeFootprint: 12 * kb,
		},
		{
			Name: "applu", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.15, FPOp: 0.44, FPDiv: 0.01, Load: 0.28, Store: 0.09, Branch: 0.03},
			DepP: 0.35, RandomBranchFrac: 0.03, TakenBias: 0.96,
			DataFootprint: 80 * mb, StrideFrac: 0.85, CodeFootprint: 24 * kb,
		},
		{
			Name: "mesa", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.28, FPOp: 0.30, FPDiv: 0.008, Load: 0.24, Store: 0.10, Branch: 0.072},
			DepP: 0.42, RandomBranchFrac: 0.1, TakenBias: 0.92,
			DataFootprint: 16 * mb, StrideFrac: 0.6, CodeFootprint: 64 * kb,
		},
		{
			Name: "art", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.20, FPOp: 0.33, Load: 0.34, Store: 0.07, Branch: 0.06},
			DepP: 0.4, RandomBranchFrac: 0.08, TakenBias: 0.94,
			DataFootprint: 4 * mb, StrideFrac: 0.3, CodeFootprint: 8 * kb,
		},
		{
			Name: "equake", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.22, FPOp: 0.34, FPDiv: 0.006, Load: 0.30, Store: 0.08, Branch: 0.054},
			DepP: 0.45, RandomBranchFrac: 0.06, TakenBias: 0.94,
			DataFootprint: 40 * mb, StrideFrac: 0.5, CodeFootprint: 16 * kb,
		},
		{
			Name: "facerec", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.19, FPOp: 0.38, Load: 0.28, Store: 0.09, Branch: 0.06},
			DepP: 0.38, RandomBranchFrac: 0.07, TakenBias: 0.94,
			DataFootprint: 24 * mb, StrideFrac: 0.7, CodeFootprint: 24 * kb,
		},
		{
			Name: "ammp", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.21, FPOp: 0.36, FPDiv: 0.012, Load: 0.29, Store: 0.08, Branch: 0.048},
			DepP: 0.48, RandomBranchFrac: 0.08, TakenBias: 0.93,
			DataFootprint: 32 * mb, StrideFrac: 0.35, CodeFootprint: 24 * kb,
		},
		{
			Name: "lucas", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.15, FPOp: 0.45, Load: 0.27, Store: 0.10, Branch: 0.03},
			DepP: 0.3, RandomBranchFrac: 0.02, TakenBias: 0.97,
			DataFootprint: 96 * mb, StrideFrac: 0.9, CodeFootprint: 16 * kb,
		},
		{
			Name: "fma3d", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.20, FPOp: 0.40, FPDiv: 0.008, Load: 0.26, Store: 0.10, Branch: 0.032},
			DepP: 0.36, RandomBranchFrac: 0.05, TakenBias: 0.95,
			DataFootprint: 64 * mb, StrideFrac: 0.65, CodeFootprint: 96 * kb,
		},
		{
			Name: "sixtrack", Suite: SuiteFP,
			Mix:  Mix{IntALU: 0.17, FPOp: 0.50, FPDiv: 0.01, Load: 0.22, Store: 0.06, Branch: 0.04},
			DepP: 0.33, RandomBranchFrac: 0.03, TakenBias: 0.96,
			DataFootprint: 8 * mb, StrideFrac: 0.8, CodeFootprint: 48 * kb,
		},
	}
}

// SPECInt returns the 9 integer benchmark profiles (Section 4.1 uses 9
// integer and 12 floating-point benchmarks).
func SPECInt() []Profile { return specIntProfiles() }

// SPECFP returns the 12 floating-point benchmark profiles.
func SPECFP() []Profile { return specFPProfiles() }

// All returns every benchmark profile, integer suite first.
func All() []Profile {
	return append(specIntProfiles(), specFPProfiles()...)
}

// Names returns the benchmark names in suite order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name
	}
	return names
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, known)
}
