package workload

import (
	"math"
	"testing"

	"github.com/soferr/soferr/internal/isa"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

func TestProfilesComplete(t *testing.T) {
	if got := len(SPECInt()); got != 9 {
		t.Errorf("SPECInt count = %d, want 9 (Section 4.1)", got)
	}
	if got := len(SPECFP()); got != 12 {
		t.Errorf("SPECFP count = %d, want 12 (Section 4.1)", got)
	}
	if got := len(All()); got != 21 {
		t.Errorf("All count = %d, want 21", got)
	}
	seen := make(map[string]bool)
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mcf" || p.Suite != SuiteInt {
		t.Errorf("ByName(mcf) = %+v", p)
	}
	if _, err := ByName("nosuchbench"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Generate(5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs across identical generations", i)
		}
	}
	c, err := p.Generate(5000, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidInstructions(t *testing.T) {
	for _, p := range All() {
		prog, err := p.Generate(2000, 7)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(prog) != 2000 {
			t.Fatalf("%s: got %d instructions", p.Name, len(prog))
		}
		for i := range prog {
			if err := prog[i].Validate(); err != nil {
				t.Fatalf("%s instruction %d: %v", p.Name, i, err)
			}
		}
	}
}

func TestGenerateMixMatchesProfile(t *testing.T) {
	p, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	prog, err := p.Generate(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[isa.Class]int)
	for i := range prog {
		counts[prog[i].Class]++
	}
	total := p.Mix.total()
	check := func(class isa.Class, want float64) {
		got := float64(counts[class]) / n
		want /= total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v fraction = %v, want ~%v", class, got, want)
		}
	}
	check(isa.FPOp, p.Mix.FPOp)
	check(isa.Load, p.Mix.Load)
	check(isa.Store, p.Mix.Store)
	check(isa.Branch, p.Mix.Branch)
	check(isa.IntALU, p.Mix.IntALU)
}

func TestGeneratePCsLoopOverCode(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Generate(30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxPC := uint64(0)
	for i := range prog {
		if prog[i].PC > maxPC {
			maxPC = prog[i].PC
		}
	}
	if maxPC >= p.CodeFootprint {
		t.Errorf("PC %d outside code footprint %d", maxPC, p.CodeFootprint)
	}
	// The trace is longer than the code, so PCs must repeat.
	if prog[0].PC != prog[int(p.CodeFootprint/4)].PC {
		t.Error("PCs do not loop over the code footprint")
	}
}

func TestGenerateAddressesWithinFootprint(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Generate(50000, 5)
	if err != nil {
		t.Fatal(err)
	}
	const dataBase = uint64(0x1000_0000)
	for i := range prog {
		if !prog[i].Class.IsMem() {
			continue
		}
		if prog[i].Addr < dataBase || prog[i].Addr >= dataBase+p.DataFootprint {
			t.Fatalf("address %#x outside footprint", prog[i].Addr)
		}
		if prog[i].Addr%8 != 0 {
			t.Fatalf("unaligned address %#x", prog[i].Addr)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Generate(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	bad := p
	bad.DepP = 0
	if _, err := bad.Generate(10, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestDaySchedule(t *testing.T) {
	d, err := Day()
	if err != nil {
		t.Fatal(err)
	}
	if d.Period() != units.SecondsPerDay {
		t.Errorf("period = %v, want one day", d.Period())
	}
	if math.Abs(d.AVF()-0.5) > 1e-12 {
		t.Errorf("AVF = %v, want 0.5 (busy half the day)", d.AVF())
	}
	if d.VulnAt(1000) != 1 {
		t.Error("daytime should be vulnerable")
	}
	if d.VulnAt(units.SecondsPerDay-1000) != 0 {
		t.Error("night should be masked")
	}
}

func TestWeekSchedule(t *testing.T) {
	w, err := Week()
	if err != nil {
		t.Fatal(err)
	}
	if w.Period() != units.SecondsPerWeek {
		t.Errorf("period = %v, want one week", w.Period())
	}
	want := 5.0 / 7.0
	if math.Abs(w.AVF()-want) > 1e-12 {
		t.Errorf("AVF = %v, want 5/7", w.AVF())
	}
}

func TestCombinedSchedule(t *testing.T) {
	a, err := trace.BusyIdle(1e-3, 0.8e-3) // busy benchmark
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.BusyIdle(1e-3, 0.2e-3) // idle benchmark
	if err != nil {
		t.Fatal(err)
	}
	c, err := Combined(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Period()-units.SecondsPerDay) > 1.0 {
		t.Errorf("period = %v, want ~1 day", c.Period())
	}
	wantAVF := (0.8 + 0.2) / 2
	if math.Abs(c.AVF()-wantAVF) > 1e-9 {
		t.Errorf("AVF = %v, want %v", c.AVF(), wantAVF)
	}
	// First half follows a, second half follows b.
	if got := c.VulnAt(0.85e-3); got != 0 {
		t.Errorf("first-half idle point = %v, want 0", got)
	}
	if got := c.VulnAt(units.SecondsPerDay/2 + 0.1e-3); got != 1 {
		t.Errorf("second-half busy point = %v, want 1", got)
	}
}

func TestCombinedValidation(t *testing.T) {
	if _, err := Combined(nil, nil); err == nil {
		t.Error("nil traces accepted")
	}
	long, err := trace.BusyIdle(units.SecondsPerDay, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combined(long, long); err == nil {
		t.Error("over-long benchmark trace accepted")
	}
}

func TestSuiteString(t *testing.T) {
	if SuiteInt.String() != "int" || SuiteFP.String() != "fp" {
		t.Error("suite names wrong")
	}
	if Suite(9).String() == "" {
		t.Error("unknown suite should render")
	}
}
