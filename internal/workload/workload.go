// Package workload generates the workloads of Section 4: synthetic
// instruction traces standing in for the SPEC CPU2000 suite, and the
// long-horizon utilization schedules (day, week, combined) used to probe
// the AVF+SOFR assumptions at large time scales.
//
// Real SPEC traces are not redistributable, so each benchmark is
// replaced by a deterministic synthetic generator parameterized by
// instruction mix, register-dependency locality, branch predictability,
// and memory footprint/locality. The AVF+SOFR analysis consumes only the
// per-component utilization statistics of the resulting masking traces,
// which these parameters control directly, so the substitution preserves
// the behaviour the paper's experiments depend on (see DESIGN.md).
package workload

import (
	"fmt"

	"github.com/soferr/soferr/internal/isa"
	"github.com/soferr/soferr/internal/xrand"
)

// Suite labels a benchmark as integer or floating point.
type Suite int

// Suites of SPEC CPU2000.
const (
	SuiteInt Suite = iota + 1
	SuiteFP
)

// String returns "int" or "fp".
func (s Suite) String() string {
	switch s {
	case SuiteInt:
		return "int"
	case SuiteFP:
		return "fp"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// Mix is an instruction-class mixture. Fields need not sum exactly to 1;
// they are normalized during generation.
type Mix struct {
	IntALU float64
	IntMul float64
	IntDiv float64
	FPOp   float64
	FPDiv  float64
	Load   float64
	Store  float64
	Branch float64
}

func (m Mix) total() float64 {
	return m.IntALU + m.IntMul + m.IntDiv + m.FPOp + m.FPDiv + m.Load + m.Store + m.Branch
}

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name is the benchmark name (SPEC CPU2000 naming).
	Name string
	// Suite is the SPEC suite the profile models.
	Suite Suite
	// Mix is the instruction-class mixture.
	Mix Mix
	// DepP is the geometric parameter of register-dependency distance:
	// larger means tighter dependency chains (less ILP).
	DepP float64
	// RandomBranchFrac is the fraction of branch instructions with
	// data-dependent (unpredictable) outcomes; the rest follow a strong
	// bias and predict well.
	RandomBranchFrac float64
	// TakenBias is the taken probability of predictable branches.
	TakenBias float64
	// DataFootprint is the data working-set size in bytes.
	DataFootprint uint64
	// StrideFrac is the fraction of memory accesses that walk
	// sequentially; the rest are uniform over the footprint.
	StrideFrac float64
	// CodeFootprint is the static code size in bytes; instruction
	// addresses loop over it.
	CodeFootprint uint64
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without name")
	}
	if p.Mix.total() <= 0 {
		return fmt.Errorf("workload: %s: empty mix", p.Name)
	}
	if p.DepP <= 0 || p.DepP > 1 {
		return fmt.Errorf("workload: %s: DepP %v outside (0,1]", p.Name, p.DepP)
	}
	if p.RandomBranchFrac < 0 || p.RandomBranchFrac > 1 {
		return fmt.Errorf("workload: %s: RandomBranchFrac %v outside [0,1]", p.Name, p.RandomBranchFrac)
	}
	if p.TakenBias < 0 || p.TakenBias > 1 {
		return fmt.Errorf("workload: %s: TakenBias %v outside [0,1]", p.Name, p.TakenBias)
	}
	if p.DataFootprint < 4096 {
		return fmt.Errorf("workload: %s: DataFootprint %d too small", p.Name, p.DataFootprint)
	}
	if p.CodeFootprint < 256 {
		return fmt.Errorf("workload: %s: CodeFootprint %d too small", p.Name, p.CodeFootprint)
	}
	return nil
}

// staticSlot is one instruction of the synthetic loop body. Classes,
// registers, and behaviour are fixed per slot — as in real code — while
// branch outcomes and some memory addresses vary per dynamic instance.
type staticSlot struct {
	class isa.Class
	dest  isa.Reg
	src1  isa.Reg
	src2  isa.Reg

	// Memory slots: strided slots walk one of a small set of shared
	// sequential streams (like array traversals); the rest are uniform
	// over the footprint.
	strided bool
	stream  int

	// Branch slots: predictable slots behave like loop branches — taken
	// except once every period iterations (or the inverse for
	// exit-style branches) — which is the history structure real
	// predictors exploit; random slots are data-dependent 50/50.
	random   bool
	inverted bool
	period   uint32
	phase    uint32
	count    uint32
}

// numStreams is the number of concurrent sequential access streams
// (array traversals) a workload sustains.
const numStreams = 8

// Generate produces n dynamic instructions deterministically from the
// profile and seed.
//
// Generation is two-phase, mirroring how real programs behave: first a
// static loop body of CodeFootprint/4 instructions is synthesized (fixed
// class, registers, and memory/branch behaviour per PC), then the
// dynamic trace walks that body repeatedly. Static structure is what
// lets the simulated branch predictor and caches behave as they would on
// real code.
func (p Profile) Generate(n int, seed uint64) ([]isa.Inst, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: need n > 0, got %d", n)
	}
	r := xrand.New(seed ^ hashName(p.Name))
	body := p.buildBody(r)

	footprintWords := p.DataFootprint / 8
	const dataBase = uint64(0x1000_0000)
	var streams [numStreams]uint64
	for s := range streams {
		streams[s] = uint64(r.Intn(int(footprintWords)))
	}
	prog := make([]isa.Inst, n)
	for i := 0; i < n; i++ {
		slot := &body[i%len(body)]
		in := &prog[i]
		in.PC = uint64(i%len(body)) * 4
		in.Class = slot.class
		in.Dest = slot.dest
		in.Src1 = slot.src1
		in.Src2 = slot.src2
		switch {
		case slot.class.IsMem():
			var word uint64
			if slot.strided {
				streams[slot.stream] = (streams[slot.stream] + 1) % footprintWords
				word = streams[slot.stream]
			} else {
				word = uint64(r.Intn(int(footprintWords)))
			}
			in.Addr = dataBase + word*8
		case slot.class == isa.Branch:
			if slot.random {
				in.Taken = r.Bool(0.5)
			} else {
				slot.count++
				atBoundary := (slot.count+slot.phase)%slot.period == 0
				in.Taken = atBoundary == slot.inverted
			}
		}
	}
	return prog, nil
}

// buildBody synthesizes the static loop body.
func (p Profile) buildBody(r *xrand.Rand) []staticSlot {
	codeWords := int(p.CodeFootprint / 4)

	// Stratified class assignment: exact mix up to rounding, then
	// shuffled deterministically.
	classes := []isa.Class{
		isa.IntALU, isa.IntMul, isa.IntDiv, isa.FPOp,
		isa.FPDiv, isa.Load, isa.Store, isa.Branch,
	}
	weights := []float64{
		p.Mix.IntALU, p.Mix.IntMul, p.Mix.IntDiv, p.Mix.FPOp,
		p.Mix.FPDiv, p.Mix.Load, p.Mix.Store, p.Mix.Branch,
	}
	total := p.Mix.total()
	assigned := make([]isa.Class, 0, codeWords)
	for ci, w := range weights {
		count := int(w / total * float64(codeWords))
		for k := 0; k < count; k++ {
			assigned = append(assigned, classes[ci])
		}
	}
	for len(assigned) < codeWords {
		assigned = append(assigned, isa.IntALU) // rounding remainder
	}
	assigned = assigned[:codeWords]
	perm := r.Perm(codeWords)
	shuffled := make([]isa.Class, codeWords)
	for i, j := range perm {
		shuffled[j] = assigned[i]
	}

	// Register assignment: a writable window per class plus a few
	// read-only registers (stack/global pointers) that are read but
	// never redefined.
	const (
		writableInt = 24
		writableFP  = 24
		readOnly    = 4
	)
	var (
		recentInt []isa.Reg
		recentFP  []isa.Reg
		intRR     int
		fpRR      int
	)
	destInt := func() isa.Reg {
		reg := isa.IntReg(readOnly + intRR%writableInt)
		intRR++
		recentInt = append(recentInt, reg)
		if len(recentInt) > writableInt {
			recentInt = recentInt[1:]
		}
		return reg
	}
	destFP := func() isa.Reg {
		reg := isa.FPReg(readOnly + fpRR%writableFP)
		fpRR++
		recentFP = append(recentFP, reg)
		if len(recentFP) > writableFP {
			recentFP = recentFP[1:]
		}
		return reg
	}
	srcFrom := func(recent []isa.Reg, readOnlyBase func(int) isa.Reg) isa.Reg {
		if len(recent) == 0 || r.Bool(0.06) {
			return readOnlyBase(r.Intn(readOnly))
		}
		d := r.Geometric(p.DepP)
		if d > len(recent) {
			d = len(recent)
		}
		return recent[len(recent)-d]
	}
	srcInt := func() isa.Reg { return srcFrom(recentInt, isa.IntReg) }
	srcFP := func() isa.Reg { return srcFrom(recentFP, isa.FPReg) }

	body := make([]staticSlot, codeWords)
	for i := range body {
		s := &body[i]
		s.class = shuffled[i]
		switch s.class {
		case isa.IntALU, isa.IntMul, isa.IntDiv:
			s.src1 = srcInt()
			s.src2 = srcInt()
			s.dest = destInt()
		case isa.FPOp, isa.FPDiv:
			s.src1 = srcFP()
			s.src2 = srcFP()
			s.dest = destFP()
		case isa.Load:
			s.src1 = srcInt() // address register
			if p.Suite == SuiteFP && r.Bool(0.7) {
				s.dest = destFP()
			} else {
				s.dest = destInt()
			}
			s.strided = r.Bool(p.StrideFrac)
			s.stream = r.Intn(numStreams)
		case isa.Store:
			s.src1 = srcInt() // address register
			if p.Suite == SuiteFP && r.Bool(0.7) {
				s.src2 = srcFP()
			} else {
				s.src2 = srcInt()
			}
			s.strided = r.Bool(p.StrideFrac)
			s.stream = r.Intn(numStreams)
		case isa.Branch:
			s.src1 = srcInt()
			s.random = r.Bool(p.RandomBranchFrac)
			if !s.random {
				// Loop trip count derived from the bias: a branch taken
				// with probability b corresponds to a loop of about
				// 1/(1-b) iterations.
				trip := int(1/(1-p.TakenBias) + 0.5)
				if trip < 2 {
					trip = 2
				}
				if trip > 64 {
					trip = 64
				}
				// Vary trip counts across slots around the profile mean.
				trip += r.Intn(trip/2+1) - trip/4
				if trip < 2 {
					trip = 2
				}
				s.period = uint32(trip)
				s.phase = uint32(r.Intn(trip))
				s.inverted = r.Bool(0.15) // some exit-style branches
			}
		}
	}
	return body
}

// hashName folds a benchmark name into the seed so that different
// benchmarks with the same user seed produce unrelated streams.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
