package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

func TestCycleConversionRoundTrip(t *testing.T) {
	for _, cycles := range []float64{0, 1, 7, 2e9, 1.5e14} {
		got := SecondsToCycles(CyclesToSeconds(cycles))
		if !almostEqual(got, cycles, 1e-12) {
			t.Errorf("round trip %v -> %v", cycles, got)
		}
	}
}

func TestCycleDuration(t *testing.T) {
	if got := CyclesToSeconds(CyclesPerSecond); got != 1.0 {
		t.Errorf("one second of cycles = %v s, want 1", got)
	}
	if got := CyclesToSeconds(1); got != 0.5e-9 {
		t.Errorf("one cycle = %v s, want 0.5ns", got)
	}
}

func TestFITConversions(t *testing.T) {
	// Exact arithmetic: 0.001 FIT = 1e-12 failures/hour = 8.76e-9/year.
	if got := FITToPerYear(0.001); !almostEqual(got, 8.76e-9, 1e-12) {
		t.Errorf("0.001 FIT = %v errors/year, want 8.76e-9", got)
	}
	// The paper rounds this to 1e-8 errors/year; the baseline constant
	// follows the paper's stated value, within the same order of magnitude.
	if ratio := BaselinePerBitPerYear / FITToPerYear(0.001); ratio < 1 || ratio > 1.2 {
		t.Errorf("baseline/0.001FIT ratio = %v, want within [1, 1.2]", ratio)
	}
	if got := PerYearToFIT(FITToPerYear(42.5)); !almostEqual(got, 42.5, 1e-12) {
		t.Errorf("FIT round trip = %v, want 42.5", got)
	}
}

func TestPerYearPerSecondRoundTrip(t *testing.T) {
	f := func(r float64) bool {
		r = math.Abs(r)
		return almostEqual(PerSecondToPerYear(PerYearToPerSecond(r)), r, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComponentRate(t *testing.T) {
	// The paper's Fig 3 cache: 1e9 bits at baseline rate => 10 errors/year.
	if got := ComponentRatePerYear(1e9, 1); !almostEqual(got, 10, 1e-12) {
		t.Errorf("1e9-bit cache rate = %v errors/year, want 10", got)
	}
	// Scaling factor multiplies linearly (Table 2).
	if got := ComponentRatePerYear(1e6, 5000); !almostEqual(got, 1e6*5000*1e-8, 1e-12) {
		t.Errorf("scaled rate = %v", got)
	}
}

func TestMTTFFromRate(t *testing.T) {
	if got := MTTFFromRate(0); !math.IsInf(got, 1) {
		t.Errorf("MTTF at zero rate = %v, want +Inf", got)
	}
	if got := MTTFFromRate(2); got != 0.5 {
		t.Errorf("MTTF at rate 2 = %v, want 0.5", got)
	}
}

func TestHorizonConstants(t *testing.T) {
	if SecondsPerDay != 86400 {
		t.Errorf("SecondsPerDay = %v", SecondsPerDay)
	}
	if SecondsPerWeek != 7*86400 {
		t.Errorf("SecondsPerWeek = %v", SecondsPerWeek)
	}
	if SecondsPerYear != 365*86400 {
		t.Errorf("SecondsPerYear = %v", SecondsPerYear)
	}
}
