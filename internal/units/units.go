// Package units defines the time and failure-rate conventions shared by
// every estimator in this repository.
//
// Continuous time is measured in seconds as float64. The paper (Table 1)
// models a 2.0 GHz processor, so one cycle is 0.5 ns; long-horizon
// workloads (the day and week schedules of Section 4.2) are expressed
// directly in seconds and never enumerate cycles.
//
// Raw soft-error rates follow the paper's conventions: the baseline
// per-bit rate is 1e-8 errors/year (0.001 FIT), and a component's raw
// rate is the product N x S x baseline where N is the number of elements
// (bits) and S the environment scaling factor (Table 2).
package units

import "math"

// Time conversion constants.
const (
	// CyclesPerSecond is the clock rate of the base processor (Table 1).
	CyclesPerSecond = 2.0e9

	// SecondsPerCycle is the duration of one processor cycle.
	SecondsPerCycle = 1.0 / CyclesPerSecond

	// SecondsPerHour, SecondsPerDay, SecondsPerWeek and SecondsPerYear
	// convert the paper's workload horizons into model time. A year is
	// 365 days, matching the errors/year convention used for raw rates.
	SecondsPerHour = 3600.0
	SecondsPerDay  = 24 * SecondsPerHour
	SecondsPerWeek = 7 * SecondsPerDay
	SecondsPerYear = 365 * SecondsPerDay
)

// Failure-rate constants.
const (
	// HoursPerBillion is the observation window defining the FIT unit:
	// failures in time = failures per 1e9 device-hours.
	HoursPerBillion = 1.0e9

	// BaselinePerBitPerYear is the terrestrial raw soft error rate for
	// one bit of on-chip storage under current technology: 1e-8
	// errors/year = 0.001 FIT (Sections 3.1.2 and 4.2).
	BaselinePerBitPerYear = 1.0e-8
)

// CyclesToSeconds converts a cycle count to seconds at the base clock.
func CyclesToSeconds(cycles float64) float64 { return cycles * SecondsPerCycle }

// SecondsToCycles converts seconds to cycles at the base clock.
func SecondsToCycles(seconds float64) float64 { return seconds * CyclesPerSecond }

// PerYearToPerSecond converts a rate in errors/year to errors/second.
func PerYearToPerSecond(perYear float64) float64 { return perYear / SecondsPerYear }

// PerSecondToPerYear converts a rate in errors/second to errors/year.
func PerSecondToPerYear(perSecond float64) float64 { return perSecond * SecondsPerYear }

// FITToPerYear converts a FIT rate (failures per 1e9 hours) to errors/year.
func FITToPerYear(fit float64) float64 {
	return fit / HoursPerBillion * (SecondsPerYear / SecondsPerHour)
}

// PerYearToFIT converts errors/year to a FIT rate.
func PerYearToFIT(perYear float64) float64 {
	return perYear * HoursPerBillion / (SecondsPerYear / SecondsPerHour)
}

// ComponentRatePerYear returns the raw error rate, in errors/year, of a
// component with n elements under environment scaling factor s, using the
// paper's baseline per-bit rate (Table 2: rate = N x S x baseline).
func ComponentRatePerYear(n, s float64) float64 {
	return n * s * BaselinePerBitPerYear
}

// ComponentRatePerSecond is ComponentRatePerYear converted to errors/second.
func ComponentRatePerSecond(n, s float64) float64 {
	return PerYearToPerSecond(ComponentRatePerYear(n, s))
}

// MTTFFromRate returns the mean time to failure, in seconds, of an
// exponential failure process with the given rate in errors/second.
// A zero rate yields +Inf.
func MTTFFromRate(perSecond float64) float64 {
	if perSecond == 0 {
		return math.Inf(1)
	}
	return 1 / perSecond
}
