package numeric

import "math"

// ExpInvCDF returns the standard-exponential quantile -log(1-u) for
// u in [0, 1), using log1p so that small u (the common case: most
// uniform draws are far from 1) loses no precision to cancellation.
//
//soferr:hotpath
func ExpInvCDF(u float64) float64 { return -math.Log1p(-u) }

// TruncExpInvCDF returns the quantile of a standard exponential
// conditioned on being below the value whose CDF is pmax: the inverse
// CDF of Exp(1) truncated to [0, -log(1-pmax)), evaluated at u in
// [0, 1). pmax is passed as a probability (1 - e^(-bound)) rather than
// as the bound itself so callers can compute it once with
// OneMinusExpNeg and keep full precision when the bound is tiny.
//
//soferr:hotpath
func TruncExpInvCDF(u, pmax float64) float64 { return -math.Log1p(-u * pmax) }

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm) with exact-merge support (Chan et al.), so per-worker
// accumulators can be combined without materializing samples. The zero
// value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add accumulates one observation.
//
//soferr:hotpath
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w. The result is identical (up
// to floating-point association) to having accumulated o's samples
// after w's.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (NaN if empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance (0 for a single
// sample, NaN when empty — matching MeanStdErr's conventions).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		if w.n == 1 {
			return 0
		}
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	if w.n == 1 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}
