package numeric

import (
	"math"
	"sort"
	"testing"

	"github.com/soferr/soferr/internal/xrand"
)

func TestSortWithIndexAgainstStdSort(t *testing.T) {
	r := xrand.New(1)
	for _, n := range []int{0, 1, 2, 3, 12, 13, 64, 257, 4096} {
		for rep := 0; rep < 5; rep++ {
			vals := make([]float64, n)
			idx := make([]int, n)
			orig := make([]float64, n)
			for i := range vals {
				switch rep {
				case 1:
					vals[i] = float64(i) // already sorted
				case 2:
					vals[i] = float64(n - i) // reversed
				case 3:
					vals[i] = float64(i % 3) // heavy ties
				default:
					vals[i] = r.Float64()
				}
				idx[i] = i
				orig[i] = vals[i]
			}
			SortWithIndex(vals, idx)
			if !sort.Float64sAreSorted(vals) {
				t.Fatalf("n=%d rep=%d: not sorted", n, rep)
			}
			for p, id := range idx {
				if vals[p] != orig[id] {
					t.Fatalf("n=%d rep=%d: idx[%d]=%d inconsistent (%g vs %g)", n, rep, p, id, vals[p], orig[id])
				}
			}
			seen := make([]bool, n)
			for _, id := range idx {
				if id < 0 || id >= n || seen[id] {
					t.Fatalf("n=%d rep=%d: idx not a permutation", n, rep)
				}
				seen[id] = true
			}
		}
	}
}

func TestSortWithIndexInfinities(t *testing.T) {
	vals := []float64{math.Inf(1), 0, math.Inf(-1), 1, math.Inf(1)}
	idx := []int{0, 1, 2, 3, 4}
	SortWithIndex(vals, idx)
	if !sort.Float64sAreSorted(vals) {
		t.Fatalf("infinities not sorted: %v", vals)
	}
}

func TestSortWithIndexMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mismatched lengths")
		}
	}()
	SortWithIndex(make([]float64, 3), make([]int, 2))
}

func TestSortWithIndexDoesNotAllocate(t *testing.T) {
	r := xrand.New(2)
	vals := make([]float64, 256)
	idx := make([]int, 256)
	allocs := testing.AllocsPerRun(100, func() {
		for i := range vals {
			vals[i] = r.Float64()
			idx[i] = i
		}
		SortWithIndex(vals, idx)
	})
	if allocs != 0 {
		t.Fatalf("SortWithIndex allocates %.1f per call, want 0", allocs)
	}
}
