package numeric

import (
	"math"
	"testing"
)

func TestExpInvCDF(t *testing.T) {
	cases := []struct{ u, want float64 }{
		{0, 0},
		{0.5, math.Ln2},
		{1 - 1.0/math.E, 1},
	}
	for _, tt := range cases {
		if got := ExpInvCDF(tt.u); math.Abs(got-tt.want) > 1e-14 {
			t.Errorf("ExpInvCDF(%v) = %v, want %v", tt.u, got, tt.want)
		}
	}
	// Stability for tiny u: -log(1-u) = u + u^2/2 + O(u^3) with no
	// cancellation, so the relative deviation from u is ~u/2.
	for _, u := range []float64{1e-18, 1e-12, 1e-9} {
		if got := ExpInvCDF(u); RelErr(got, u) > u+1e-15 {
			t.Errorf("ExpInvCDF(%v) = %v, want ~%v", u, got, u)
		}
	}
}

func TestTruncExpInvCDF(t *testing.T) {
	// The truncated quantile must stay strictly inside [0, bound) and
	// equal the untruncated quantile rescaled through the CDF.
	for _, bound := range []float64{1e-12, 0.1, 5, 100} {
		pmax := OneMinusExpNeg(bound)
		for _, u := range []float64{0, 0.25, 0.5, 0.999999} {
			got := TruncExpInvCDF(u, pmax)
			if got < 0 || got >= bound {
				t.Errorf("TruncExpInvCDF(%v, bound %v) = %v outside [0, bound)", u, bound, got)
			}
			want := ExpInvCDF(u * pmax)
			if math.Abs(got-want) > 1e-14*math.Max(1, want) {
				t.Errorf("TruncExpInvCDF(%v, %v) = %v, want %v", u, pmax, got, want)
			}
		}
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2.5, 6, 5.25, 3.5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean, se := MeanStdErr(xs)
	if RelErr(w.Mean(), mean) > 1e-13 {
		t.Errorf("Welford mean %v vs two-pass %v", w.Mean(), mean)
	}
	if RelErr(w.StdErr(), se) > 1e-13 {
		t.Errorf("Welford stderr %v vs two-pass %v", w.StdErr(), se)
	}
	if w.Count() != int64(len(xs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(xs))
	}
}

func TestWelfordMerge(t *testing.T) {
	// Merging chunked accumulators must equal one sequential pass,
	// whatever the chunk boundaries (including empty chunks).
	xs := make([]float64, 1000)
	for i := range xs {
		// Deterministic ill-conditioned data: large offset, small spread.
		xs[i] = 1e9 + math.Sin(float64(i))
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for _, chunks := range []int{1, 3, 7, 1000} {
		var merged Welford
		size := (len(xs) + chunks - 1) / chunks
		for lo := 0; lo < len(xs); lo += size {
			hi := lo + size
			if hi > len(xs) {
				hi = len(xs)
			}
			var part Welford
			for _, x := range xs[lo:hi] {
				part.Add(x)
			}
			merged.Merge(part)
		}
		merged.Merge(Welford{}) // empty merge is a no-op
		if RelErr(merged.Mean(), whole.Mean()) > 1e-12 {
			t.Errorf("%d chunks: mean %v vs %v", chunks, merged.Mean(), whole.Mean())
		}
		if RelErr(merged.Variance(), whole.Variance()) > 1e-6 {
			t.Errorf("%d chunks: variance %v vs %v", chunks, merged.Variance(), whole.Variance())
		}
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.StdErr()) {
		t.Error("empty accumulator should report NaN")
	}
	w.Add(7)
	if w.Mean() != 7 || w.StdErr() != 0 || w.Variance() != 0 {
		t.Errorf("single sample: mean %v stderr %v", w.Mean(), w.StdErr())
	}
	var into Welford
	into.Merge(w) // merge into empty adopts the other side
	if into.Mean() != 7 || into.Count() != 1 {
		t.Errorf("merge into empty: %+v", into)
	}
}
