package numeric

// SortWithIndex sorts vals ascending in place, applying the identical
// permutation to idx (parallel slices of equal length). It is the batch
// sweep helper of the Monte-Carlo batched inversion kernel: the kernel
// sorts a block of hazard draws, resolves them in one forward sweep
// over the hazard table, and uses idx to scatter the results back to
// trial order.
//
// The sort is allocation-free (the trial loop's allocation budget is
// asserted by TestTrialLoopDoesNotAllocate): median-of-three quicksort,
// recursing on the smaller partition and looping on the larger so the
// stack depth is O(log n), with insertion sort below a small cutoff.
// It is not stable, which is irrelevant to the kernel: equal keys
// produce equal sweep results wherever they land.
//
// NaN keys are unsupported (they would break the pivot ordering); the
// kernel's keys come from TruncExpInvCDF, which never produces NaN for
// valid inputs. Panics on mismatched lengths.
//
//soferr:hotpath
func SortWithIndex(vals []float64, idx []int) {
	if len(vals) != len(idx) {
		panic("numeric: SortWithIndex length mismatch")
	}
	quickSortWithIndex(vals, idx)
}

const insertionCutoff = 12

//soferr:hotpath
func quickSortWithIndex(vals []float64, idx []int) {
	for len(vals) > insertionCutoff {
		p := partitionWithIndex(vals, idx)
		// Recurse into the smaller side, loop on the larger: depth O(log n).
		if p < len(vals)-p-1 {
			quickSortWithIndex(vals[:p], idx[:p])
			vals, idx = vals[p+1:], idx[p+1:]
		} else {
			quickSortWithIndex(vals[p+1:], idx[p+1:])
			vals, idx = vals[:p], idx[:p]
		}
	}
	// Insertion sort for the base case.
	for i := 1; i < len(vals); i++ {
		v, id := vals[i], idx[i]
		j := i - 1
		for j >= 0 && vals[j] > v {
			vals[j+1], idx[j+1] = vals[j], idx[j]
			j--
		}
		vals[j+1], idx[j+1] = v, id
	}
}

// partitionWithIndex partitions around a median-of-three pivot and
// returns its final position.
//
//soferr:hotpath
func partitionWithIndex(vals []float64, idx []int) int {
	n := len(vals)
	mid := n / 2
	// Order (first, mid, last) so vals[0] <= vals[mid] <= vals[n-1],
	// then use the median as the pivot.
	if vals[mid] < vals[0] {
		vals[mid], vals[0] = vals[0], vals[mid]
		idx[mid], idx[0] = idx[0], idx[mid]
	}
	if vals[n-1] < vals[0] {
		vals[n-1], vals[0] = vals[0], vals[n-1]
		idx[n-1], idx[0] = idx[0], idx[n-1]
	}
	if vals[n-1] < vals[mid] {
		vals[n-1], vals[mid] = vals[mid], vals[n-1]
		idx[n-1], idx[mid] = idx[mid], idx[n-1]
	}
	// Park the pivot at n-2 (vals[n-1] is already >= pivot).
	vals[mid], vals[n-2] = vals[n-2], vals[mid]
	idx[mid], idx[n-2] = idx[n-2], idx[mid]
	pivot := vals[n-2]
	i := 0
	for j := 0; j < n-2; j++ {
		if vals[j] < pivot {
			vals[i], vals[j] = vals[j], vals[i]
			idx[i], idx[j] = idx[j], idx[i]
			i++
		}
	}
	vals[i], vals[n-2] = vals[n-2], vals[i]
	idx[i], idx[n-2] = idx[n-2], idx[i]
	return i
}
