package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOneMinusExpNegSmall(t *testing.T) {
	// For tiny x, 1-e^-x ~= x; naive evaluation loses all precision.
	for _, x := range []float64{1e-18, 1e-15, 1e-12, 1e-9} {
		got := OneMinusExpNeg(x)
		if RelErr(got, x) > 1e-9 {
			t.Errorf("OneMinusExpNeg(%g) = %g, want ~%g", x, got, x)
		}
	}
}

func TestOneMinusExpNegLarge(t *testing.T) {
	if got := OneMinusExpNeg(800); got != 1 {
		t.Errorf("OneMinusExpNeg(800) = %v, want 1", got)
	}
}

func TestExpNegClamp(t *testing.T) {
	if got := ExpNeg(1e6); got != 0 {
		t.Errorf("ExpNeg(1e6) = %v, want 0", got)
	}
	if got := ExpNeg(1); RelErr(got, math.Exp(-1)) > 1e-15 {
		t.Errorf("ExpNeg(1) = %v", got)
	}
}

func TestIntegratePolynomial(t *testing.T) {
	// int_0^1 3x^2 dx = 1.
	got, err := Integrate(func(x float64) float64 { return 3 * x * x }, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if RelErr(got, 1) > 1e-10 {
		t.Errorf("integral = %v, want 1", got)
	}
}

func TestIntegrateSin(t *testing.T) {
	// int_0^pi sin(x) dx = 2.
	got, err := Integrate(math.Sin, 0, math.Pi, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if RelErr(got, 2) > 1e-10 {
		t.Errorf("integral = %v, want 2", got)
	}
}

func TestIntegrateReversedEmpty(t *testing.T) {
	got, err := Integrate(math.Sin, 1, 1, 1e-10)
	if err != nil || got != 0 {
		t.Errorf("empty interval integral = %v, err %v", got, err)
	}
}

func TestIntegrateToInfGaussian(t *testing.T) {
	// int_0^inf e^(-x^2) dx = sqrt(pi)/2.
	got, err := IntegrateToInf(func(x float64) float64 { return math.Exp(-x * x) }, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(math.Pi) / 2
	if RelErr(got, want) > 1e-8 {
		t.Errorf("integral = %v, want %v", got, want)
	}
}

func TestIntegrateToInfExpMean(t *testing.T) {
	// int_0^inf x * l*e^(-l*x) dx = 1/l.
	const l = 3.0
	got, err := IntegrateToInf(func(x float64) float64 { return x * l * math.Exp(-l*x) }, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if RelErr(got, 1/l) > 1e-8 {
		t.Errorf("mean = %v, want %v", got, 1/l)
	}
}

func TestKahanSum(t *testing.T) {
	// 1 + 1e-16 added 1e5 times: naive summation drops the small terms.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 100000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-11
	if RelErr(k.Sum(), want) > 1e-12 {
		t.Errorf("Kahan sum = %.17g, want %.17g", k.Sum(), want)
	}
}

func TestGeometricSeries(t *testing.T) {
	f := func(r float64) bool {
		r = math.Mod(math.Abs(r), 0.999)
		direct := 0.0
		p := 1.0
		for i := 0; i < 10000; i++ {
			direct += p
			p *= r
		}
		return RelErr(GeometricSeriesSum(r), direct) < 1e-6 || p > 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(GeometricSeriesSum(1), 1) {
		t.Error("GeometricSeriesSum(1) should be +Inf")
	}
}

func TestArithGeometricSeries(t *testing.T) {
	const r = 0.5
	direct := 0.0
	p := 1.0
	for i := 0; i < 200; i++ {
		direct += float64(i) * p
		p *= r
	}
	if RelErr(ArithGeometricSeriesSum(r), direct) > 1e-12 {
		t.Errorf("sum i*r^i = %v, want %v", ArithGeometricSeriesSum(r), direct)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(1.1, 1.0); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("RelErr(1.1,1) = %v", got)
	}
	if RelErr(0.5, 0) != 0.5 {
		t.Errorf("RelErr(0.5,0) = %v", RelErr(0.5, 0))
	}
}

func TestMeanStdErr(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mean, se := MeanStdErr(xs)
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	// Sample stddev = sqrt(32/7); stderr = that / sqrt(8).
	want := math.Sqrt(32.0/7.0) / math.Sqrt(8)
	if RelErr(se, want) > 1e-12 {
		t.Errorf("stderr = %v, want %v", se, want)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if RelErr(root, math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-9); err == nil {
		t.Error("expected bracket error")
	}
}
