// Package numeric supplies the small numerical-analysis toolkit used by
// the analytic models: adaptive quadrature (for the Section 3.2.2
// min-of-N integral), numerically stable exponential forms (for the
// Derivation 1 closed form across twelve decades of lambda*L), and
// compensated summation for the Monte-Carlo averages.
//
//soferr:deterministic
package numeric

import (
	"errors"
	"math"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNoBracket = errors.New("numeric: Bisect endpoints do not bracket a root")
)

// ErrNoConvergence is returned when an iterative routine exhausts its
// budget before meeting its tolerance.
var ErrNoConvergence = errors.New("numeric: no convergence")

// OneMinusExpNeg returns 1 - e^(-x) without cancellation for small x.
func OneMinusExpNeg(x float64) float64 { return -math.Expm1(-x) }

// ExpNeg returns e^(-x); it exists for symmetry and to centralize the
// clamp of very large arguments to zero (avoiding denormal noise).
func ExpNeg(x float64) float64 {
	if x > 745 {
		return 0
	}
	return math.Exp(-x)
}

// Integrate computes the definite integral of f over [a, b] by adaptive
// Simpson quadrature with the given relative tolerance.
//
// The refinement criterion uses an absolute error budget derived from
// the magnitude of the whole integral (with a machine-epsilon floor), so
// regions where the integrand vanishes terminate immediately instead of
// recursing forever chasing an unattainable relative error.
func Integrate(f func(float64) float64, a, b, tol float64) (float64, error) {
	if a == b { //soferr:allow floatprec degenerate-interval guard comparing the caller's own bounds for identity; a near-miss interval should still be integrated, not zeroed
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)

	// First refinement both improves the scale estimate and seeds the
	// recursion.
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	scale := math.Max(math.Abs(whole), math.Abs(left)+math.Abs(right))
	if scale == 0 {
		scale = 1
	}
	eps := tol * scale
	floor := 0x1p-52 * scale // cannot resolve below machine epsilon

	st := adaptiveState{f: f, floor: floor, budget: 4_000_000}
	lv := st.refine(a, m, fa, flm, fm, left, eps/2, 60)
	rv := st.refine(m, b, fm, frm, fb, right, eps/2, 60)
	if st.exhausted {
		return lv + rv, ErrNoConvergence
	}
	return lv + rv, nil
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// adaptiveState carries the shared evaluation budget of one Integrate
// call.
type adaptiveState struct {
	f         func(float64) float64
	floor     float64
	budget    int
	exhausted bool
}

func (st *adaptiveState) refine(a, b, fa, fm, fb, whole, eps float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := st.f(lm), st.f(rm)
	st.budget -= 2
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if math.Abs(delta) <= 15*math.Max(eps, st.floor) || depth <= 0 || st.budget <= 0 {
		if depth <= 0 || st.budget <= 0 {
			if math.Abs(delta) > 15*math.Max(eps, st.floor) {
				st.exhausted = true
			}
		}
		return left + right + delta/15
	}
	half := eps / 2
	if half < st.floor {
		half = st.floor
	}
	return st.refine(a, m, fa, flm, fm, left, half, depth-1) +
		st.refine(m, b, fm, frm, fb, right, half, depth-1)
}

// IntegrateToInf integrates f over [a, +inf) for integrands with
// (super-)exponentially decaying tails. It maps the tail through
// x = a + t/(1-t) onto [0, 1).
func IntegrateToInf(f func(float64) float64, a, tol float64) (float64, error) {
	g := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		u := 1 - t
		x := a + t/u
		w := 1 / (u * u)
		v := f(x) * w
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	return Integrate(g, 0, 1, tol)
}

// KahanSum accumulates float64 values with compensated (Kahan-Babuska)
// summation. The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates x.
//
//soferr:hotpath
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// GeometricSeriesSum returns sum_{i=0..inf} r^i = 1/(1-r) for |r| < 1.
func GeometricSeriesSum(r float64) float64 {
	if math.Abs(r) >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - r)
}

// ArithGeometricSeriesSum returns sum_{i=0..inf} i*r^i = r/(1-r)^2 for
// |r| < 1 (the identity used in Derivation 1 of the paper's appendix).
func ArithGeometricSeriesSum(r float64) float64 {
	if math.Abs(r) >= 1 {
		return math.Inf(1)
	}
	d := 1 - r
	return r / (d * d)
}

// RelErr returns |got-want| / |want|; if want is zero it returns |got|.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Mean returns the arithmetic mean of xs (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum() / float64(len(xs))
}

// MeanStdErr returns the sample mean and its standard error.
func MeanStdErr(xs []float64) (mean, stderr float64) {
	n := float64(len(xs))
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	mean = Mean(xs)
	if n == 1 {
		return mean, 0
	}
	var k KahanSum
	for _, x := range xs {
		d := x - mean
		k.Add(d * d)
	}
	variance := k.Sum() / (n - 1)
	return mean, math.Sqrt(variance / n)
}

// Erf is math.Erf re-exported so callers need only this package.
func Erf(x float64) float64 { return math.Erf(x) }

// Bisect finds a root of f in [a, b] where f(a) and f(b) have opposite
// signs, to within xtol.
func Bisect(f func(float64) float64, a, b, xtol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, errNoBracket
	}
	for i := 0; i < 200; i++ {
		m := (a + b) / 2
		if b-a <= xtol {
			return m, nil
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, ErrNoConvergence
}
