// Package avf implements the AVF step of the AVF+SOFR methodology
// (Section 2.2, Mukherjee et al. [8]): a component's failure rate is its
// raw error rate derated by its architecture vulnerability factor, and
// its MTTF is the reciprocal:
//
//	MTTF_c = 1 / (lambda_c * AVF_c)     (Equation 1)
//
// The AVF itself is the fraction of time the component holds
// architecturally correct execution (ACE) state, which is exactly the
// time-average of the masking trace's instantaneous vulnerability.
package avf

import (
	"errors"
	"fmt"
	"math"

	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNilTrace = errors.New("avf: nil trace")
)

// OfTrace returns the AVF of a masking trace: the fraction of time a raw
// error would be unmasked.
func OfTrace(tr trace.Trace) float64 { return tr.AVF() }

// MTTF returns the AVF-step MTTF estimate (Equation 1) in seconds for a
// component with the given raw error rate (errors/second) and AVF.
// It returns +Inf when the derated rate is zero.
func MTTF(rate, avf float64) (float64, error) {
	if rate < 0 || math.IsNaN(rate) {
		return 0, fmt.Errorf("avf: invalid rate %v", rate)
	}
	if avf < 0 || avf > 1 || math.IsNaN(avf) {
		return 0, fmt.Errorf("avf: AVF %v outside [0,1]", avf)
	}
	derated := rate * avf
	if derated == 0 {
		return math.Inf(1), nil
	}
	return 1 / derated, nil
}

// ComponentMTTF applies the AVF step to a component described by its raw
// rate and masking trace.
func ComponentMTTF(rate float64, tr trace.Trace) (float64, error) {
	if tr == nil {
		return 0, errNilTrace
	}
	return MTTF(rate, tr.AVF())
}

// DeratedFIT returns the component's failure rate in FITs after AVF
// derating, for a raw rate given in errors/second.
func DeratedFIT(rate, avf float64) (float64, error) {
	if rate < 0 || math.IsNaN(rate) {
		return 0, fmt.Errorf("avf: invalid rate %v", rate)
	}
	if avf < 0 || avf > 1 || math.IsNaN(avf) {
		return 0, fmt.Errorf("avf: AVF %v outside [0,1]", avf)
	}
	return units.PerYearToFIT(units.PerSecondToPerYear(rate * avf)), nil
}
