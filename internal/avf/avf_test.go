package avf

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

func TestMTTFEquationOne(t *testing.T) {
	// Equation 1: MTTF = 1/(lambda * AVF).
	got, err := MTTF(0.5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1/(0.5*0.4) {
		t.Errorf("MTTF = %v, want %v", got, 1/(0.5*0.4))
	}
}

func TestMTTFZeroDeratedRate(t *testing.T) {
	for _, tt := range []struct{ rate, avf float64 }{{0, 0.5}, {1, 0}, {0, 0}} {
		got, err := MTTF(tt.rate, tt.avf)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(got, 1) {
			t.Errorf("MTTF(%v,%v) = %v, want +Inf", tt.rate, tt.avf, got)
		}
	}
}

func TestMTTFValidation(t *testing.T) {
	if _, err := MTTF(-1, 0.5); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := MTTF(1, 1.5); err == nil {
		t.Error("AVF > 1 should fail")
	}
	if _, err := MTTF(1, -0.1); err == nil {
		t.Error("negative AVF should fail")
	}
	if _, err := MTTF(math.NaN(), 0.5); err == nil {
		t.Error("NaN rate should fail")
	}
}

func TestOfTrace(t *testing.T) {
	p, err := trace.BusyIdle(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := OfTrace(p); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("OfTrace = %v, want 0.3", got)
	}
}

func TestComponentMTTF(t *testing.T) {
	p, err := trace.BusyIdle(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComponentMTTF(2, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("ComponentMTTF = %v, want 1", got)
	}
	if _, err := ComponentMTTF(1, nil); err == nil {
		t.Error("nil trace should fail")
	}
}

func TestMTTFScalesInversely(t *testing.T) {
	f := func(rawRate, rawAVF float64) bool {
		rate := math.Mod(math.Abs(rawRate), 1e6) + 1e-9
		avfVal := math.Mod(math.Abs(rawAVF), 0.99) + 0.005
		m1, err1 := MTTF(rate, avfVal)
		m2, err2 := MTTF(2*rate, avfVal)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(m1/m2-2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeratedFIT(t *testing.T) {
	// A raw rate of 1 error/year with AVF 1 is ~114 FIT
	// (1e9 hours / 8760 hours-per-year).
	rate := units.PerYearToPerSecond(1)
	got, err := DeratedFIT(rate, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e9 / 8760.0
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("FIT = %v, want %v", got, want)
	}
	half, err := DeratedFIT(rate, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half-want/2)/want > 1e-9 {
		t.Errorf("derated FIT = %v, want %v", half, want/2)
	}
	if _, err := DeratedFIT(-1, 0.5); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := DeratedFIT(1, 2); err == nil {
		t.Error("AVF > 1 should fail")
	}
}
