package dist

import (
	"math"
	"testing"
)

func TestHalfGaussianSurvival(t *testing.T) {
	hg := HalfGaussian{}
	if got := hg.Survival(0); got != 1 {
		t.Errorf("Survival(0) = %v, want 1", got)
	}
	if got := hg.Survival(-3); got != 1 {
		t.Errorf("Survival(-3) = %v, want 1", got)
	}
	// erfc is monotone decreasing to zero.
	prev := 1.0
	for x := 0.1; x < 6; x += 0.1 {
		s := hg.Survival(x)
		if s >= prev || s < 0 {
			t.Fatalf("Survival not strictly decreasing at %v: %v >= %v", x, s, prev)
		}
		prev = s
	}
}

func TestMinOfIIDMeanMatchesClosedForms(t *testing.T) {
	// N=1: the half-Gaussian mean is 1/sqrt(pi).
	one := MinOfIID{X: HalfGaussian{}, N: 1}
	if got, want := one.Mean(), 1/math.Sqrt(math.Pi); math.Abs(got-want) > 1e-9 {
		t.Errorf("N=1 mean = %v, want %v", got, want)
	}
	// N=2: E[min] = integral erfc(x)^2 dx = (2-sqrt(2))/sqrt(pi).
	two := MinOfIID{X: HalfGaussian{}, N: 2}
	if got, want := two.Mean(), (2-math.Sqrt2)/math.Sqrt(math.Pi); math.Abs(got-want) > 1e-9 {
		t.Errorf("N=2 mean = %v, want %v", got, want)
	}
}

func TestMinOfIIDMeanDecreasesInN(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		m := MinOfIID{X: HalfGaussian{}, N: n}.Mean()
		if math.IsNaN(m) || m <= 0 || m >= prev {
			t.Fatalf("N=%d mean = %v (prev %v)", n, m, prev)
		}
		prev = m
	}
}
