// Package dist provides the minimal continuous-distribution toolkit
// behind the Section 3.2.2 construction: distributions described by
// their survival function, and the min-of-N-i.i.d. transform whose mean
// is the exact series-system MTTF that Figure 4 compares against SOFR.
package dist

import (
	"math"

	"github.com/soferr/soferr/internal/numeric"
)

// Dist is a nonnegative continuous distribution described by its
// survival function.
type Dist interface {
	// Survival returns P(X > x).
	Survival(x float64) float64
}

// HalfGaussian is the paper's Section 3.2.2 component distribution: the
// absolute value of a N(0, 1/2) variable, with density 2/sqrt(pi) *
// e^(-x^2) on x >= 0 and mean 1/sqrt(pi).
type HalfGaussian struct{}

// Survival returns P(X > x) = erfc(x) for x >= 0.
func (HalfGaussian) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(x)
}

// Mean returns 1/sqrt(pi).
func (HalfGaussian) Mean() float64 { return 1 / math.Sqrt(math.Pi) }

// MinOfIID is the minimum of N independent copies of X: the failure law
// of a series system of N identical components.
type MinOfIID struct {
	X Dist
	N int
}

// Survival returns P(min > x) = P(X > x)^N.
func (m MinOfIID) Survival(x float64) float64 {
	s := m.X.Survival(x)
	if s <= 0 {
		return 0
	}
	return math.Pow(s, float64(m.N))
}

// Mean returns E[min] = int_0^inf P(min > x) dx by quadrature, or NaN
// if the quadrature fails to converge.
func (m MinOfIID) Mean() float64 {
	v, err := numeric.IntegrateToInf(m.Survival, 0, 1e-12)
	if err != nil {
		return math.NaN()
	}
	return v
}
