package xrand

import (
	"fmt"
	"math/bits"
	"sync"
)

// This file implements the low-discrepancy side of the package: a Sobol
// digital (t, s)-sequence in base 2 with Owen-style nested uniform
// scrambling. The Monte-Carlo engine plugs it beneath the exposure
// inversion in place of the PCG stream (Config.Sampler = "sobol"), so
// the same closed-form trial kernels integrate over a point set whose
// star discrepancy decays like log(n)^d/n instead of the 1/sqrt(n)
// Monte-Carlo rate.
//
// Construction. Dimension j is generated from a primitive polynomial of
// degree s_j over GF(2) and odd initial direction integers m_1..m_s
// (m_k < 2^k), extended by the classical Sobol recurrence. The first
// dimensions use the classical Bratley-Fox/Joe-Kuo polynomials and
// initial values; higher dimensions draw their polynomials from a
// deterministic enumeration of the remaining primitive polynomials
// (smallest degree first) with initial values from a fixed SplitMix64
// stream. Every dimension is a (0, 1)-sequence in base 2 regardless of
// the m values — the direction matrix is upper triangular with ones on
// the diagonal because every m_k is odd — so one-dimensional
// projections are perfectly stratified by construction, and the
// property tests check the pairwise projections statistically.
//
// Scrambling. Owen's nested uniform scrambling makes every scrambled
// point uniformly distributed on [0,1)^d while preserving the digital
// net structure, which is what turns a deterministic quadrature rule
// into an unbiased estimator with a measurable standard error: K
// independently scrambled replicates of the same sequence give K
// independent estimates whose spread is an honest error bar. The
// implementation is the standard hash-based form (Laine-Karras): the
// bit-reversed value is passed through a hash whose output bits depend
// only on equal-or-lower input bits, which is exactly a random
// permutation of the nested dyadic intervals.

// MaxSobolDims bounds the dimension count of one Sobol sequence. The
// trial kernels need two coordinates per exposure inversion, so this
// covers systems of up to 32 per-component draws; callers needing more
// pad the remaining draws from a PCG stream (see montecarlo).
const MaxSobolDims = 64

// Sobol holds the direction numbers of a d-dimensional Sobol sequence.
// It is immutable after construction and safe for concurrent use; the
// scrambled views returned by Scrambled share it.
type Sobol struct {
	dims int
	// v[j][k] is direction number k (0-based) of dimension j, stored
	// with its leading digit at bit 31.
	v [][32]uint32
}

// sobolClassicRow is one classical (polynomial, initial values) row:
// degree s, interior coefficient bits a, and the initial m values.
type sobolClassicRow struct {
	s int
	a uint32
	m []uint32
}

// sobolClassic lists the classical direction-number rows for the first
// dimensions after the van der Corput dimension (Bratley-Fox, as
// tabulated in Joe & Kuo's new-joe-kuo-6 table).
var sobolClassic = []sobolClassicRow{
	{s: 1, a: 0, m: []uint32{1}},
	{s: 2, a: 1, m: []uint32{1, 3}},
	{s: 3, a: 1, m: []uint32{1, 3, 1}},
	{s: 3, a: 2, m: []uint32{1, 1, 1}},
	{s: 4, a: 1, m: []uint32{1, 1, 3, 3}},
	{s: 4, a: 4, m: []uint32{1, 3, 5, 13}},
	{s: 5, a: 2, m: []uint32{1, 1, 5, 5, 17}},
}

var (
	sobolTableOnce sync.Once
	sobolTable     [][32]uint32
)

// NewSobol returns the shared Sobol sequence truncated to dims
// dimensions. dims must be in [1, MaxSobolDims].
func NewSobol(dims int) (*Sobol, error) {
	if dims < 1 || dims > MaxSobolDims {
		return nil, fmt.Errorf("xrand: NewSobol dims %d outside [1, %d]", dims, MaxSobolDims)
	}
	sobolTableOnce.Do(buildSobolTable)
	return &Sobol{dims: dims, v: sobolTable[:dims]}, nil
}

// Dims returns the dimension count.
func (s *Sobol) Dims() int { return s.dims }

// buildSobolTable constructs direction numbers for all MaxSobolDims
// dimensions: dimension 0 is van der Corput, the next len(sobolClassic)
// use the classical rows, and the rest use enumerated primitive
// polynomials with seeded initial values.
func buildSobolTable() {
	table := make([][32]uint32, MaxSobolDims)
	for k := 0; k < 32; k++ {
		table[0][k] = 1 << (31 - k)
	}
	rows := make([]sobolClassicRow, 0, MaxSobolDims-1)
	rows = append(rows, sobolClassic...)
	used := make(map[[2]uint32]bool, MaxSobolDims)
	for _, r := range rows {
		used[[2]uint32{uint32(r.s), r.a}] = true
	}
	sm := uint64(0x5eed5eed5eed5eed) // fixed: the table is part of the determinism contract
	for deg := 1; len(rows) < MaxSobolDims-1; deg++ {
		for a := uint32(0); a < 1<<(deg-1) && len(rows) < MaxSobolDims-1; a++ {
			if used[[2]uint32{uint32(deg), a}] || !primitiveGF2(deg, a) {
				continue
			}
			m := make([]uint32, deg)
			for k := range m {
				// Any odd m_k < 2^(k+1) preserves the (0,1)-sequence
				// property; draw from the fixed stream.
				m[k] = (uint32(splitmix64(&sm)) | 1) & (1<<(k+1) - 1)
			}
			rows = append(rows, sobolClassicRow{s: deg, a: a, m: m})
		}
	}
	for j, row := range rows {
		table[j+1] = directionNumbers(row)
	}
	sobolTable = table
}

// directionNumbers expands one (polynomial, initial m) row into 32
// direction numbers via the Sobol recurrence
//
//	m_k = 2a_1 m_{k-1} ^ 4a_2 m_{k-2} ^ ... ^ 2^s m_{k-s} ^ m_{k-s}.
func directionNumbers(row sobolClassicRow) [32]uint32 {
	s := row.s
	m := make([]uint32, 32)
	copy(m, row.m)
	for k := s; k < 32; k++ {
		mk := m[k-s] ^ (m[k-s] << uint(s))
		for i := 1; i < s; i++ {
			if row.a>>(uint(s)-1-uint(i))&1 == 1 {
				mk ^= m[k-i] << uint(i)
			}
		}
		m[k] = mk
	}
	var v [32]uint32
	for k := 0; k < 32; k++ {
		v[k] = m[k] << (31 - uint(k))
	}
	return v
}

// primitiveGF2 reports whether the degree-deg polynomial with interior
// coefficient bits a (x^deg + a_1 x^(deg-1) + ... + a_{deg-1} x + 1) is
// primitive over GF(2): x must have order exactly 2^deg - 1 in the
// quotient ring.
func primitiveGF2(deg int, a uint32) bool {
	// poly as a bitmask including the leading and constant terms.
	poly := uint64(1)<<uint(deg) | uint64(a)<<1 | 1
	order := uint64(1)<<uint(deg) - 1
	if polyPowX(order, poly, deg) != 1 {
		return false
	}
	for _, q := range factorize(order) {
		if polyPowX(order/q, poly, deg) == 1 {
			return false
		}
	}
	return true
}

// polyPowX computes x^e mod poly over GF(2), for polynomials of degree
// deg <= 32 (elements fit in uint64 during the multiply).
func polyPowX(e uint64, poly uint64, deg int) uint64 {
	result := uint64(1)
	base := uint64(2) // x
	if deg == 1 {
		base = polyMod(base, poly, deg)
	}
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = polyMod(clmul(result, base), poly, deg)
		}
		base = polyMod(clmul(base, base), poly, deg)
	}
	return result
}

// clmul is carry-less multiplication over GF(2)[x].
func clmul(a, b uint64) uint64 {
	var r uint64
	for ; b != 0; b &= b - 1 {
		r ^= a << uint(bits.TrailingZeros64(b))
	}
	return r
}

// polyMod reduces a modulo poly (degree deg) over GF(2).
func polyMod(a, poly uint64, deg int) uint64 {
	for top := bits.Len64(a) - 1; top >= deg; top = bits.Len64(a) - 1 {
		a ^= poly << uint(top-deg)
	}
	return a
}

// factorize returns the distinct prime factors of n by trial division
// (n <= 2^32 here: polynomial degrees are small).
func factorize(n uint64) []uint64 {
	var fs []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// raw returns the unscrambled 32-bit Sobol value of dimension j at the
// given index, via the Gray-code XOR form (random access: O(popcount)).
//
//soferr:hotpath
func (s *Sobol) raw(j int, index uint64) uint32 {
	g := uint32(index) ^ uint32(index>>1)
	var x uint32
	for ; g != 0; g &= g - 1 {
		x ^= s.v[j][bits.TrailingZeros32(g)]
	}
	return x
}

// ScrambledSobol is one Owen-scrambled replicate of a Sobol sequence:
// an immutable view combining the shared direction numbers with one
// per-dimension scramble key set. Equal (sequence, seed) pairs produce
// bit-identical points; distinct seeds produce independently scrambled
// replicates. Safe for concurrent use.
type ScrambledSobol struct {
	s     *Sobol
	seeds []uint32
}

// Scrambled returns the Owen-scrambled replicate of s keyed by seed.
func (s *Sobol) Scrambled(seed uint64) *ScrambledSobol {
	seeds := make([]uint32, s.dims)
	sm := seed
	for j := range seeds {
		seeds[j] = uint32(splitmix64(&sm) >> 32)
	}
	return &ScrambledSobol{s: s, seeds: seeds}
}

// Point fills pt (len <= Dims) with the scrambled point at the given
// 0-based index. Coordinates are in the open interval (0, 1): the
// scrambled integer is offset by half an ulp of the 32-bit grid, so a
// coordinate can feed a logarithm directly.
//
//soferr:hotpath
func (ss *ScrambledSobol) Point(index uint64, pt []float64) {
	for j := range pt {
		x := owenScramble(ss.s.raw(j, index), ss.seeds[j])
		pt[j] = (float64(x) + 0.5) * 0x1p-32
	}
}

// owenScramble applies hash-based Owen scrambling (Laine-Karras): in
// the bit-reversed domain every output bit depends only on
// equal-or-lower input bits plus the seed, which permutes the nested
// dyadic intervals uniformly.
//
//soferr:hotpath
func owenScramble(x, seed uint32) uint32 {
	x = bits.Reverse32(x)
	x ^= x * 0x3d20adea
	x += seed
	x *= (seed >> 16) | 1
	x ^= x * 0x05526c56
	x ^= x * 0x53a22864
	return bits.Reverse32(x)
}
