package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 identical outputs across distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("sibling streams agree at step %d", i)
		}
	}
}

func TestSplitReproducible(t *testing.T) {
	mk := func() []uint64 {
		p := New(99)
		c := p.Split()
		out := make([]uint64, 16)
		for i := range out {
			out[i] = c.Uint64()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split stream not reproducible at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	r := New(13)
	const n = 300000
	const rate = 2.5
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1/rate) > 0.01/rate {
		t.Errorf("exp mean = %v, want %v", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.05/(rate*rate) {
		t.Errorf("exp variance = %v, want %v", variance, 1/(rate*rate))
	}
}

func TestExpMemoryless(t *testing.T) {
	// P(X > s+t | X > s) should equal P(X > t): compare tail frequencies.
	r := New(17)
	const n = 400000
	const rate = 1.0
	var tailT, tailSTgivenS, countS int
	const s, tt = 0.7, 0.9
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x > tt {
			tailT++
		}
		if x > s {
			countS++
			if x > s+tt {
				tailSTgivenS++
			}
		}
	}
	pT := float64(tailT) / n
	pCond := float64(tailSTgivenS) / float64(countS)
	if math.Abs(pT-pCond) > 0.01 {
		t.Errorf("memoryless violated: P(X>t)=%v vs P(X>s+t|X>s)=%v", pT, pCond)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	const n = 200000
	const p = 0.2
	sum := 0.0
	for i := 0; i < n; i++ {
		k := r.Geometric(p)
		if k < 1 {
			t.Fatalf("geometric sample %d < 1", k)
		}
		sum += float64(k)
	}
	mean := sum / n
	if math.Abs(mean-1/p) > 0.05/p {
		t.Errorf("geometric mean = %v, want %v", mean, 1/p)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(29)
	for i := 0; i < 100; i++ {
		if k := r.Geometric(1); k != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", k)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(31)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want 1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(37)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(41)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1.0)
	}
	_ = sink
}

func TestExpMomentsAcrossRates(t *testing.T) {
	// Mean, variance, and CV of Exp(rate) across eighteen decades of
	// rate (1e-9 to 1e9): inversion must not lose the distribution's
	// shape at either extreme of the design space's raw-rate range.
	const n = 200000
	for _, rate := range []float64{1e-9, 1e-3, 1.0, 1e3, 1e9} {
		r := New(31)
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.Exp(rate)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		// Standard error of the mean of Exp(rate) is (1/rate)/sqrt(n).
		if math.Abs(mean-1/rate) > 4/(rate*math.Sqrt(n)) {
			t.Errorf("rate %g: mean = %v, want %v", rate, mean, 1/rate)
		}
		cv := math.Sqrt(variance) / mean
		if math.Abs(cv-1) > 0.02 {
			t.Errorf("rate %g: CV = %v, want 1", rate, cv)
		}
	}
}

func TestBoolMoments(t *testing.T) {
	// Bernoulli frequencies across p, bounded by 4 binomial sigmas.
	const n = 200000
	for _, p := range []float64{0.001, 0.01, 0.25, 0.5, 0.9, 0.999} {
		r := New(37)
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		sigma := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 4*sigma {
			t.Errorf("Bool(%v) frequency = %v (|err| > 4 sigma = %v)", p, got, 4*sigma)
		}
	}
}

func TestBoolDegenerate(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	// Reseed must reproduce New's stream exactly, from any prior state:
	// the trial loop relies on one reused Rand being bit-identical to a
	// freshly allocated one per trial.
	r := New(999)
	for i := 0; i < 17; i++ {
		r.Uint64() // scramble the state
	}
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		r.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 256; i++ {
			if got, want := r.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("seed %d: Reseed diverged from New at step %d: %x != %x", seed, i, got, want)
			}
		}
	}
}

func TestReseedDoesNotAllocate(t *testing.T) {
	r := New(1)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Reseed(7)
		_ = r.Uint64()
	})
	if allocs != 0 {
		t.Errorf("Reseed allocates %v times per call, want 0", allocs)
	}
}
