package xrand

import (
	"math"
	"testing"
)

func TestNewSobolBounds(t *testing.T) {
	for _, dims := range []int{0, -1, MaxSobolDims + 1} {
		if _, err := NewSobol(dims); err == nil {
			t.Errorf("NewSobol(%d): want error, got nil", dims)
		}
	}
	s, err := NewSobol(MaxSobolDims)
	if err != nil {
		t.Fatalf("NewSobol(%d): %v", MaxSobolDims, err)
	}
	if s.Dims() != MaxSobolDims {
		t.Fatalf("Dims() = %d, want %d", s.Dims(), MaxSobolDims)
	}
}

// TestSobolDirectionDiagonal checks the structural invariant that makes
// every dimension a (0,1)-sequence: the direction matrix is upper
// triangular with ones on the diagonal, i.e. direction number k has bit
// (31-k) set and no lower bits.
func TestSobolDirectionDiagonal(t *testing.T) {
	s, err := NewSobol(MaxSobolDims)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s.Dims(); j++ {
		for k := 0; k < 32; k++ {
			v := s.v[j][k]
			if v&(1<<(31-uint(k))) == 0 {
				t.Fatalf("dim %d direction %d = %#x: diagonal bit clear (m_k even)", j, k, v)
			}
			if v&(1<<(31-uint(k))-1) != 0 {
				t.Fatalf("dim %d direction %d = %#x: bits below the diagonal set", j, k, v)
			}
		}
	}
}

// TestSobolClassicPrimitive checks that every hard-coded classical
// polynomial row really is primitive — a typo in the table would break
// the sequence quality silently.
func TestSobolClassicPrimitive(t *testing.T) {
	for i, row := range sobolClassic {
		if !primitiveGF2(row.s, row.a) {
			t.Errorf("classic row %d: polynomial (s=%d, a=%d) not primitive", i, row.s, row.a)
		}
		if len(row.m) != row.s {
			t.Errorf("classic row %d: %d initial values for degree %d", i, len(row.m), row.s)
		}
		for k, m := range row.m {
			if m%2 == 0 || m >= 1<<(uint(k)+1) {
				t.Errorf("classic row %d: m[%d] = %d invalid", i, k, m)
			}
		}
	}
}

// TestSobolStratification is the core (0,1)-sequence property, which
// Owen scrambling preserves: for every dimension, the first 2^k points
// land exactly one per dyadic interval of width 2^-k.
func TestSobolStratification(t *testing.T) {
	s, err := NewSobol(MaxSobolDims)
	if err != nil {
		t.Fatal(err)
	}
	ss := s.Scrambled(12345)
	pt := make([]float64, s.Dims())
	for _, k := range []uint{1, 4, 8, 12} {
		n := uint64(1) << k
		hit := make([][]bool, s.Dims())
		for j := range hit {
			hit[j] = make([]bool, n)
		}
		for i := uint64(0); i < n; i++ {
			ss.Point(i, pt)
			for j, x := range pt {
				if x <= 0 || x >= 1 {
					t.Fatalf("point %d dim %d = %g outside (0,1)", i, j, x)
				}
				cell := uint64(x * float64(n))
				if hit[j][cell] {
					t.Fatalf("level %d dim %d: cell %d hit twice by point %d", k, j, cell, i)
				}
				hit[j][cell] = true
			}
		}
	}
}

// TestSobolPairwiseMoments mirrors the PCG moment tests: over the first
// 4096 scrambled points, each coordinate's mean is near 1/2 and each
// adjacent-pair product mean is near 1/4 (independence of projections).
// Tolerances are far tighter than Monte-Carlo at the same n would
// allow, which is the point of the sequence.
func TestSobolPairwiseMoments(t *testing.T) {
	s, err := NewSobol(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 99, 0xdeadbeef} {
		ss := s.Scrambled(seed)
		pt := make([]float64, s.Dims())
		const n = 4096
		mean := make([]float64, s.Dims())
		prod := make([]float64, s.Dims()-1)
		for i := uint64(0); i < n; i++ {
			ss.Point(i, pt)
			for j, x := range pt {
				mean[j] += x
				if j+1 < len(pt) {
					prod[j] += x * pt[j+1]
				}
			}
		}
		for j := range mean {
			mean[j] /= n
			if math.Abs(mean[j]-0.5) > 2e-3 {
				t.Errorf("seed %d dim %d: mean %.6f, want 0.5 +- 2e-3", seed, j, mean[j])
			}
		}
		for j := range prod {
			prod[j] /= n
			if math.Abs(prod[j]-0.25) > 4e-3 {
				t.Errorf("seed %d dims (%d,%d): E[xy] %.6f, want 0.25 +- 4e-3", seed, j, j+1, prod[j])
			}
		}
	}
}

// TestSobolScrambleDeterminism: equal seeds give bit-identical
// sequences, distinct seeds give distinct ones.
func TestSobolScrambleDeterminism(t *testing.T) {
	s, err := NewSobol(8)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Scrambled(42)
	b := s.Scrambled(42)
	c := s.Scrambled(43)
	pa := make([]float64, 8)
	pb := make([]float64, 8)
	pc := make([]float64, 8)
	differs := false
	for i := uint64(0); i < 256; i++ {
		a.Point(i, pa)
		b.Point(i, pb)
		c.Point(i, pc)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("point %d dim %d: equal seeds differ (%g vs %g)", i, j, pa[j], pb[j])
			}
			if pa[j] != pc[j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical sequences")
	}
}

// TestSobolPointDoesNotAllocate: Point is on the trial hot path and
// must not allocate.
func TestSobolPointDoesNotAllocate(t *testing.T) {
	s, err := NewSobol(4)
	if err != nil {
		t.Fatal(err)
	}
	ss := s.Scrambled(7)
	pt := make([]float64, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		ss.Point(123, pt)
	})
	if allocs != 0 {
		t.Fatalf("Point allocates %.1f per call, want 0", allocs)
	}
}

func BenchmarkSobolPoint2D(b *testing.B) {
	s, err := NewSobol(2)
	if err != nil {
		b.Fatal(err)
	}
	ss := s.Scrambled(1)
	pt := make([]float64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ss.Point(uint64(i), pt)
	}
}
