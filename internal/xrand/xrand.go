// Package xrand provides the deterministic random-number streams used by
// the Monte-Carlo engine, the workload generators, and the timing
// simulator.
//
// Requirements that the standard library does not meet directly:
//
//   - Splittable streams: a parent stream must be able to derive many
//     child streams (one per Monte-Carlo worker, one per benchmark
//     generator) such that the children are statistically independent and
//     the whole tree is reproducible from a single root seed.
//   - Stability: results must not depend on the Go release's internal
//     rand source.
//
// The generator is PCG-XSH-RR 64/32 on a 64-bit LCG state with a
// per-stream increment, the same construction as the reference PCG
// family. Seeding and splitting use SplitMix64 so that small or
// correlated user seeds still produce well-mixed streams.
//
//soferr:deterministic
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random stream. The zero value is not
// valid; use New or Split.
type Rand struct {
	state uint64
	inc   uint64 // odd
}

// New returns a stream seeded from seed. Distinct seeds give
// independent-looking streams; the same seed reproduces the same stream.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets r in place to the exact stream New(seed) would return.
// It exists so hot loops that need one fresh stream per iteration (the
// Monte-Carlo trial loop derives a stream per trial index) can reuse a
// single Rand value instead of allocating one per iteration.
//
//soferr:hotpath
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	r.state = splitmix64(&sm)
	r.inc = splitmix64(&sm) | 1
	r.next32() // advance past the seed-correlated first output
}

// Split derives a child stream from r. The child is independent of
// subsequent output of r, and repeated Splits yield distinct streams.
func (r *Rand) Split() *Rand {
	// Derive the child from two parent outputs through SplitMix64 so the
	// child's (state, inc) pair is decorrelated from the parent sequence.
	sm := r.Uint64()
	state := splitmix64(&sm)
	sm ^= r.Uint64()
	inc := splitmix64(&sm) | 1
	c := &Rand{state: state, inc: inc}
	c.next32()
	return c
}

// next32 returns the next 32 raw bits (PCG-XSH-RR output function).
//
//soferr:hotpath
func (r *Rand) next32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
//
//soferr:hotpath
func (r *Rand) Uint64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return r.next32() }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
//
//soferr:hotpath
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1): never exactly zero, so
// it is safe as the argument of a logarithm.
//
//soferr:hotpath
func (r *Rand) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection keeps the result unbiased.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint64(n)
	threshold := -bound % bound
	for {
		x := r.Uint64()
		hi, lo := bits.Mul64(x, bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0 or is not finite.
//
//soferr:hotpath
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		panic("xrand: Exp with non-positive or non-finite rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Norm returns a standard normal value (Box-Muller; the second value of
// each pair is discarded to keep the stream stateless beyond the PCG
// state).
func (r *Rand) Norm() float64 {
	u := r.Float64Open()
	v := r.Float64Open()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns the 1-based count of Bernoulli(p) trials up to and
// including the first success. It panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric with p outside (0,1]")
	}
	if p == 1 {
		return 1
	}
	// Inversion: ceil(log(U)/log(1-p)) is geometric on {1,2,...}.
	u := r.Float64Open()
	k := math.Ceil(math.Log(u) / math.Log1p(-p))
	if k < 1 {
		k = 1
	}
	const maxInt = int(^uint(0) >> 1)
	if k > float64(maxInt) {
		return maxInt
	}
	return int(k)
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
