package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/soferr/soferr/internal/trace"
)

// ErrCellPanic tags a cell whose compile or eval callback panicked.
// The panic is contained to the claiming worker and delivered as that
// cell's per-cell error — the sweep (and the process) continues with
// the remaining cells.
var ErrCellPanic = errors.New("sweep: cell evaluation panicked")

// Options tunes a Run.
type Options struct {
	// Workers bounds the number of cells evaluated concurrently
	// (default GOMAXPROCS, capped at the cell count). Worker count
	// never changes results, only wall time.
	Workers int
}

// Result pairs one cell with its evaluation outcome. Exactly one of
// Value and Err is meaningful; a cell whose source failed to build,
// whose system failed to compile, or whose eval errored carries the
// error and the zero Value.
type Result[R any] struct {
	Cell  Cell
	Value R
	Err   error
}

// Run evaluates every cell on a worker pool and returns a channel that
// delivers exactly one Result per cell, in cell order, then closes.
//
// Shared state is deduplicated: each source's trace is resolved at most
// once (lazy Build included), and compile is called exactly once per
// unique (source, effective rate) pair — cells whose Count x RatePerYear
// products coincide share the compiled system. eval runs once per cell
// with that shared system; per-cell seeds make it deterministic for any
// worker count.
//
// The cell slice is copied and each cell's Index and SourceName are
// normalized before evaluation. Errors are per-cell: a failing cell
// does not stop its siblings. Cancelling ctx stops scheduling new
// cells and makes delivery best-effort — the channel closes promptly
// once the in-flight cells drain, possibly without emitting results
// that had already completed — so consumers must either drain the
// channel or cancel ctx, and should treat an early close as the
// context's error.
func Run[S, R any](
	ctx context.Context,
	sources []Source,
	cells []Cell,
	opt Options,
	compile func(name string, tr trace.Trace, effRatePerYear float64) (S, error),
	eval func(ctx context.Context, sys S, cell Cell) (R, error),
) (<-chan Result[R], error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: no cells")
	}
	work := make([]Cell, len(cells))
	copy(work, cells)
	for i := range work {
		c := &work[i]
		c.Index = i
		if c.Source < 0 || c.Source >= len(sources) {
			return nil, fmt.Errorf("sweep: cell %d references source %d of %d", i, c.Source, len(sources))
		}
		c.SourceName = sources[c.Source].Name
		if c.Count < 1 {
			return nil, fmt.Errorf("sweep: cell %d has invalid count %d", i, c.Count)
		}
		if c.RatePerYear < 0 || math.IsNaN(c.RatePerYear) || math.IsInf(c.RatePerYear, 0) {
			return nil, fmt.Errorf("sweep: cell %d has invalid rate %v", i, c.RatePerYear)
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}

	// Lazy per-source trace resolution, built at most once.
	srcs := newOnceTable(len(sources), func(i int) (trace.Trace, error) {
		s := sources[i]
		if s.Trace != nil {
			return s.Trace, nil
		}
		if s.Build == nil {
			return nil, fmt.Errorf("sweep: source %d (%s) has neither Trace nor Build", i, s.Name)
		}
		tr, err := s.Build()
		if err != nil {
			return nil, fmt.Errorf("sweep: source %s: %w", s.Name, err)
		}
		if tr == nil {
			return nil, fmt.Errorf("sweep: source %s built a nil trace", s.Name)
		}
		return tr, nil
	})

	// One compiled system per unique (source, effective rate): the cell
	// planner's shared-compilation dedup. Keys are enumerated up front
	// so the map itself is read-only during the run.
	type sysKey struct {
		source int
		eff    float64
	}
	systems := make(map[sysKey]*onceVal[S])
	for i := range work {
		k := sysKey{work[i].Source, work[i].EffectiveRatePerYear()}
		if systems[k] == nil {
			key := k
			systems[k] = &onceVal[S]{compute: func() (S, error) {
				var zero S
				tr, err := srcs.get(key.source)
				if err != nil {
					return zero, err
				}
				return compile(sources[key.source].Name, tr, key.eff)
			}}
		}
	}

	inner := make(chan Result[R], workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//soferr:allow gocontain the containment boundary is deliberately per cell (the recover below), so a panicking cell reports ErrCellPanic and the worker keeps claiming; outside that boundary only the atomic claim, a slice index, and a send on a channel we own remain
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(work) {
					return
				}
				c := work[i]
				res := Result[R]{Cell: c}
				// Claimed cells always report — even when their compile
				// or eval panics — so the in-order emitter never waits
				// on a gap; unclaimed cells are simply never delivered.
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							res.Err = fmt.Errorf("sweep: cell %d (%s): %w: %v\n%s",
								c.Index, c.SourceName, ErrCellPanic, rec, debug.Stack())
						}
					}()
					if err := ctx.Err(); err != nil {
						res.Err = err
					} else if sys, err := systems[sysKey{c.Source, c.EffectiveRatePerYear()}].get(); err != nil {
						res.Err = fmt.Errorf("sweep: cell %d (%s): %w", c.Index, c.SourceName, err)
					} else if res.Value, res.Err = eval(ctx, sys, c); res.Err != nil {
						res.Err = fmt.Errorf("sweep: cell %d (%s): %w", c.Index, c.SourceName, res.Err)
					}
				}()
				inner <- res
			}
		}()
	}
	//soferr:allow gocontain wg.Wait-then-close pair; neither call can panic (the counter never goes negative and inner is closed exactly once, here), and a recover would be dead code
	go func() {
		wg.Wait()
		close(inner)
	}()

	// Reorder completed cells into cell order. Workers claim indices
	// monotonically and every claimed cell reports, so the completed
	// set is always a prefix plus a bounded in-flight window.
	out := make(chan Result[R])
	//soferr:allow gocontain the reorder loop touches only channels and a map it owns (out is closed solely by its own defer), so nothing here can panic, and a recover could not restore the in-order emission invariant — a loud crash in tests beats silently dropped cells
	go func() {
		defer close(out)
		pending := make(map[int]Result[R], workers)
		nextEmit := 0
		for r := range inner {
			pending[r.Cell.Index] = r
			for {
				e, ok := pending[nextEmit]
				if !ok {
					break
				}
				delete(pending, nextEmit)
				select {
				case out <- e:
					nextEmit++
				case <-ctx.Done():
					// Consumer gave up: drain the workers and exit
					// without blocking on an abandoned channel.
					for range inner {
					}
					return
				}
			}
		}
	}()
	return out, nil
}

// onceVal computes a value at most once, concurrently-safely, caching
// both the value and the error.
type onceVal[T any] struct {
	once    sync.Once
	compute func() (T, error)
	val     T
	err     error
}

func (o *onceVal[T]) get() (T, error) {
	o.once.Do(func() {
		// Contain panics here too: sync.Once marks itself done even
		// when its function panics, so without the recover a panicking
		// compile would leave every sharing cell a zero value with a
		// nil error.
		defer func() {
			if rec := recover(); rec != nil {
				o.err = fmt.Errorf("%w: %v\n%s", ErrCellPanic, rec, debug.Stack())
			}
		}()
		o.val, o.err = o.compute()
		o.compute = nil
	})
	return o.val, o.err
}

// onceTable is an indexed family of onceVals.
type onceTable[T any] struct {
	entries []onceVal[T]
}

func newOnceTable[T any](n int, compute func(i int) (T, error)) *onceTable[T] {
	t := &onceTable[T]{entries: make([]onceVal[T], n)}
	for i := range t.entries {
		i := i
		t.entries[i].compute = func() (T, error) { return compute(i) }
	}
	return t
}

func (t *onceTable[T]) get(i int) (T, error) { return t.entries[i].get() }
