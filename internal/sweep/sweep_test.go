package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/soferr/soferr/internal/trace"
)

func busyIdle(t *testing.T, period, busy float64) *trace.Piecewise {
	t.Helper()
	tr, err := trace.BusyIdle(period, busy)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testGrid(t *testing.T) Grid {
	t.Helper()
	return Grid{
		Name: "test",
		Sources: []Source{
			{Name: "half", Trace: busyIdle(t, 100, 50)},
			{Name: "tenth", Trace: busyIdle(t, 100, 10)},
		},
		RatesPerYear: []float64{1, 10, 100},
		Counts:       []int{1, 2},
	}
}

func TestGridCellsEnumeration(t *testing.T) {
	g := testGrid(t)
	cells, err := g.Cells(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != g.NumCells() || len(cells) != 12 {
		t.Fatalf("got %d cells, want 12 (NumCells %d)", len(cells), g.NumCells())
	}
	// Row-major: sources outermost, then rates, then counts.
	want := Cell{
		Index: 0, Source: 0, SourceName: "half", RateIndex: 0, CountIndex: 0,
		RatePerYear: 1, Count: 1, Seed: CellSeed(7, 0),
	}
	if cells[0] != want {
		t.Errorf("cells[0] = %+v, want %+v", cells[0], want)
	}
	last := cells[len(cells)-1]
	if last.Source != 1 || last.RatePerYear != 100 || last.Count != 2 || last.Index != 11 {
		t.Errorf("last cell = %+v", last)
	}
	seen := make(map[uint64]bool)
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if seen[c.Seed] {
			t.Errorf("duplicate seed %d at cell %d", c.Seed, i)
		}
		seen[c.Seed] = true
	}
}

func TestGridDefaultCounts(t *testing.T) {
	g := testGrid(t)
	g.Counts = nil
	cells, err := g.Cells(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	for _, c := range cells {
		if c.Count != 1 {
			t.Errorf("cell %d count = %d, want 1", c.Index, c.Count)
		}
	}
}

func TestGridValidate(t *testing.T) {
	tr := busyIdle(t, 100, 50)
	cases := []struct {
		name string
		g    Grid
	}{
		{"no sources", Grid{RatesPerYear: []float64{1}}},
		{"no rates", Grid{Sources: []Source{{Name: "a", Trace: tr}}}},
		{"empty source", Grid{Sources: []Source{{Name: "a"}}, RatesPerYear: []float64{1}}},
		{"negative rate", Grid{Sources: []Source{{Name: "a", Trace: tr}}, RatesPerYear: []float64{-1}}},
		{"NaN rate", Grid{Sources: []Source{{Name: "a", Trace: tr}}, RatesPerYear: []float64{math.NaN()}}},
		{"zero count", Grid{Sources: []Source{{Name: "a", Trace: tr}}, RatesPerYear: []float64{1}, Counts: []int{0}}},
	}
	for _, tc := range cases {
		if err := tc.g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid grid", tc.name)
		}
		if _, err := tc.g.Cells(1); err == nil {
			t.Errorf("%s: Cells accepted invalid grid", tc.name)
		}
	}
}

func TestCellSeedStable(t *testing.T) {
	// The derivation is part of the determinism contract: pin a value so
	// accidental changes (which would silently re-randomize every
	// recorded sweep) fail loudly.
	if got := CellSeed(0, 0); got != CellSeed(0, 0) {
		t.Fatalf("CellSeed not deterministic: %d", got)
	}
	if CellSeed(1, 0) == CellSeed(1, 1) || CellSeed(0, 3) == CellSeed(1, 3) {
		t.Error("CellSeed collides on adjacent inputs")
	}
	// The first SplitMix64 output for seed 0 (a published reference
	// value): base 0, index 0 mixes exactly one golden-gamma step.
	const want uint64 = 0xe220a8397b1dcdaf
	if got := CellSeed(0, 0); got != want {
		t.Errorf("CellSeed(0, 0) = %#x, want %#x", got, want)
	}
}

// evalID is a cheap deterministic "estimate" for engine tests: it
// captures everything that identifies the evaluated configuration.
type evalID struct {
	Sys  string
	Cell Cell
}

// runIDs sweeps the grid with a string "system" (source=effRate label)
// and returns the streamed results.
func runIDs(t *testing.T, g Grid, workers int, compiles, builds *atomic.Int64) []Result[evalID] {
	t.Helper()
	cells, err := g.Cells(3)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Run(context.Background(), g.Sources, cells, Options{Workers: workers},
		func(name string, tr trace.Trace, eff float64) (string, error) {
			if compiles != nil {
				compiles.Add(1)
			}
			return fmt.Sprintf("%s@%g", name, eff), nil
		},
		func(ctx context.Context, sys string, c Cell) (evalID, error) {
			return evalID{Sys: sys, Cell: c}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var out []Result[evalID]
	for r := range ch {
		out = append(out, r)
	}
	return out
}

func TestRunStreamsInCellOrder(t *testing.T) {
	g := testGrid(t)
	res := runIDs(t, g, 8, nil, nil)
	if len(res) != 12 {
		t.Fatalf("got %d results, want 12", len(res))
	}
	for i, r := range res {
		if r.Cell.Index != i {
			t.Errorf("result %d carries cell index %d", i, r.Cell.Index)
		}
		if r.Err != nil {
			t.Errorf("cell %d: %v", i, r.Err)
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid(t)
	one := runIDs(t, g, 1, nil, nil)
	many := runIDs(t, g, 16, nil, nil)
	if !reflect.DeepEqual(one, many) {
		t.Errorf("results differ between 1 and 16 workers:\n%v\n%v", one, many)
	}
}

func TestRunSharedCompilation(t *testing.T) {
	// rates x counts = {1,10,100} x {1,2} has effective products
	// {1,2,10,20,100,200}: all distinct, so 6 per source. Overlapping
	// products must dedup: rates {1,2} x counts {1,2} gives products
	// {1,2,2,4} = 3 unique.
	g := testGrid(t)
	g.RatesPerYear = []float64{1, 2}
	g.Counts = []int{1, 2}
	var compiles atomic.Int64
	res := runIDs(t, g, 4, &compiles, nil)
	if len(res) != 8 {
		t.Fatalf("got %d results", len(res))
	}
	if got := compiles.Load(); got != 6 { // 3 unique products x 2 sources
		t.Errorf("compile ran %d times, want 6", got)
	}
	// Cells with equal (source, effective rate) saw the same system.
	bySys := make(map[string][]int)
	for _, r := range res {
		bySys[r.Value.Sys] = append(bySys[r.Value.Sys], r.Cell.Index)
	}
	if len(bySys) != 6 {
		t.Errorf("saw %d distinct systems, want 6: %v", len(bySys), bySys)
	}
}

func TestRunLazySourceBuiltOnce(t *testing.T) {
	var builds atomic.Int64
	tr := busyIdle(t, 100, 50)
	g := Grid{
		Sources: []Source{{Name: "lazy", Build: func() (trace.Trace, error) {
			builds.Add(1)
			return tr, nil
		}}},
		RatesPerYear: []float64{1, 2, 3, 4, 5, 6},
	}
	res := runIDs(t, g, 8, nil, nil)
	if len(res) != 6 {
		t.Fatalf("got %d results", len(res))
	}
	if got := builds.Load(); got != 1 {
		t.Errorf("Build ran %d times, want 1", got)
	}
}

func TestRunUnreferencedSourceNotBuilt(t *testing.T) {
	var builds atomic.Int64
	tr := busyIdle(t, 100, 50)
	sources := []Source{
		{Name: "used", Trace: tr},
		{Name: "unused", Build: func() (trace.Trace, error) {
			builds.Add(1)
			return tr, nil
		}},
	}
	cells := []Cell{{Source: 0, RatePerYear: 1, Count: 1}}
	ch, err := Run(context.Background(), sources, cells, Options{},
		func(name string, tr trace.Trace, eff float64) (int, error) { return 0, nil },
		func(ctx context.Context, sys int, c Cell) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	for range ch {
	}
	if builds.Load() != 0 {
		t.Error("unreferenced lazy source was built")
	}
}

func TestRunPerCellErrors(t *testing.T) {
	boom := errors.New("boom")
	tr := busyIdle(t, 100, 50)
	sources := []Source{
		{Name: "good", Trace: tr},
		{Name: "bad", Build: func() (trace.Trace, error) { return nil, boom }},
	}
	cells := []Cell{
		{Source: 0, RatePerYear: 1, Count: 1},
		{Source: 1, RatePerYear: 1, Count: 1},
		{Source: 0, RatePerYear: 2, Count: 1},
	}
	ch, err := Run(context.Background(), sources, cells, Options{Workers: 1},
		func(name string, tr trace.Trace, eff float64) (int, error) { return 1, nil },
		func(ctx context.Context, sys int, c Cell) (int, error) { return sys, nil })
	if err != nil {
		t.Fatal(err)
	}
	var got []Result[int]
	for r := range ch {
		got = append(got, r)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Errorf("good cells errored: %v, %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil || !errors.Is(got[1].Err, boom) {
		t.Errorf("bad cell error = %v, want wrapped boom", got[1].Err)
	}
}

func TestRunValidation(t *testing.T) {
	tr := busyIdle(t, 100, 50)
	sources := []Source{{Name: "a", Trace: tr}}
	compile := func(name string, tr trace.Trace, eff float64) (int, error) { return 0, nil }
	eval := func(ctx context.Context, sys int, c Cell) (int, error) { return 0, nil }
	bad := [][]Cell{
		nil,
		{{Source: 2, RatePerYear: 1, Count: 1}},
		{{Source: -1, RatePerYear: 1, Count: 1}},
		{{Source: 0, RatePerYear: 1, Count: 0}},
		{{Source: 0, RatePerYear: math.Inf(1), Count: 1}},
	}
	for i, cells := range bad {
		if _, err := Run(context.Background(), sources, cells, Options{}, compile, eval); err == nil {
			t.Errorf("case %d: Run accepted invalid cells", i)
		}
	}
}

func TestRunIndexNormalized(t *testing.T) {
	tr := busyIdle(t, 100, 50)
	sources := []Source{{Name: "a", Trace: tr}}
	cells := []Cell{
		{Index: 99, Source: 0, RatePerYear: 1, Count: 1},
		{Index: -5, Source: 0, RatePerYear: 2, Count: 1},
	}
	ch, err := Run(context.Background(), sources, cells, Options{},
		func(name string, tr trace.Trace, eff float64) (int, error) { return 0, nil },
		func(ctx context.Context, sys int, c Cell) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for r := range ch {
		if r.Cell.Index != i {
			t.Errorf("result %d has index %d", i, r.Cell.Index)
		}
		if r.Cell.SourceName != "a" {
			t.Errorf("result %d source name %q", i, r.Cell.SourceName)
		}
		i++
	}
	if cells[0].Index != 99 {
		t.Error("Run mutated the caller's cell slice")
	}
}

func TestRunCancellation(t *testing.T) {
	tr := busyIdle(t, 100, 50)
	sources := []Source{{Name: "a", Trace: tr}}
	var cells []Cell
	for i := 0; i < 64; i++ {
		cells = append(cells, Cell{Source: 0, RatePerYear: float64(i + 1), Count: 1})
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, len(cells))
	ch, err := Run(ctx, sources, cells, Options{Workers: 2},
		func(name string, tr trace.Trace, eff float64) (int, error) { return 0, nil },
		func(ctx context.Context, sys int, c Cell) (int, error) {
			started <- struct{}{}
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	// Cancellation is best-effort delivery: the channel must close
	// promptly (no leaked pool), whatever was delivered must be in cell
	// order, and anything delivered after the cancel either succeeded
	// or carries the context error. Collecting callers get the definite
	// answer from soferr.Sweep, which reports the context error.
	last := -1
	n := 0
	for r := range ch {
		n++
		if r.Cell.Index <= last {
			t.Errorf("out-of-order delivery: %d after %d", r.Cell.Index, last)
		}
		last = r.Cell.Index
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Errorf("cell %d: err = %v, want context.Canceled", r.Cell.Index, r.Err)
		}
	}
	if n > len(cells) {
		t.Errorf("got %d results for %d cells", n, len(cells))
	}
}

// TestRunPanicContainedPerCell: a panicking eval (or compile) is a
// per-cell ErrCellPanic error — the sweep delivers every other cell
// and the process survives.
func TestRunPanicContainedPerCell(t *testing.T) {
	tr := busyIdle(t, 100, 50)
	sources := []Source{{Name: "a", Trace: tr}}
	cells := []Cell{
		{Source: 0, RatePerYear: 1, Count: 1},
		{Source: 0, RatePerYear: 2, Count: 1},
		{Source: 0, RatePerYear: 3, Count: 1},
	}
	ch, err := Run(context.Background(), sources, cells, Options{Workers: 2},
		func(name string, tr trace.Trace, eff float64) (int, error) {
			if eff == 3 {
				panic("compile kaboom")
			}
			return int(eff), nil
		},
		func(ctx context.Context, sys int, c Cell) (int, error) {
			if c.RatePerYear == 2 {
				panic("eval kaboom")
			}
			return sys, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var got []Result[int]
	for r := range ch {
		got = append(got, r)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	if got[0].Err != nil {
		t.Errorf("healthy cell errored: %v", got[0].Err)
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(got[i].Err, ErrCellPanic) {
			t.Errorf("cell %d err = %v, want ErrCellPanic", i, got[i].Err)
		}
	}
	if !strings.Contains(fmt.Sprint(got[1].Err), "eval kaboom") ||
		!strings.Contains(fmt.Sprint(got[2].Err), "compile kaboom") {
		t.Errorf("panic values missing from errors:\n%v\n%v", got[1].Err, got[2].Err)
	}
}
