// Package sweep is the design-space sweep engine: it evaluates a grid
// of reliability configurations — the shape of the paper's Section 5
// evaluation, which varies workload, raw-rate product N x S, and
// component count C (Table 2) — without recompiling shared state per
// grid point.
//
// The package deals in three ideas:
//
//   - A Source names one masking-trace axis point (a workload). Sources
//     may be pre-materialized or lazily built; a lazy source is built at
//     most once per run no matter how many cells reference it.
//   - A Cell is one evaluation point: (source, per-component raw rate,
//     component count, seed). Grid enumerates cells as the row-major
//     cross product of its axes; callers with non-product designs (the
//     experiment harness preserves historical per-point seed salts)
//     hand-build the cell slice instead.
//   - Run streams one result per cell, in cell order, from a bounded
//     worker pool. Identical components in series superpose exactly
//     (the union of C i.i.d. thinned Poisson processes with one trace
//     is a single process at C x rate), so cells sharing a
//     (source, rate x count) product share one compiled system: the
//     planner deduplicates compilation, and deterministic per-system
//     results are computed once and served to every duplicate cell.
//
// Determinism contract: every cell carries its own seed (derived from
// (base seed, cell index) by CellSeed unless the caller overrides it),
// and the pool never lets scheduling touch a result — estimates are
// bit-identical for any worker count. See DESIGN.md, "Sweep engine".
//
// The package is evaluator-agnostic: Run is generic over the compiled
// system and result types, and the public soferr.Sweep surface supplies
// compile/eval callbacks backed by soferr.NewSystem and System.MTTF.
//
//soferr:deterministic
package sweep

import (
	"errors"
	"fmt"
	"math"

	"github.com/soferr/soferr/internal/trace"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNoSources = errors.New("sweep: grid has no sources")
	errNoRates   = errors.New("sweep: grid has no rates")
)

// Source is one point on a grid's trace axis: a named workload whose
// masking trace is either pre-materialized (Trace) or built on first
// use (Build). Exactly one of the two should be set; Trace wins when
// both are.
type Source struct {
	// Name labels the source in cells, results, and errors.
	Name string
	// Trace is the pre-materialized masking trace, if available.
	Trace trace.Trace
	// Build constructs the trace lazily. It is called at most once per
	// Run, only if some cell references the source, so expensive sources
	// (simulated benchmarks) cost nothing unless swept.
	Build func() (trace.Trace, error)
}

// Cell is one evaluation point of a sweep: Count identical components,
// each with raw rate RatePerYear filtered by the source's trace.
type Cell struct {
	// Index is the cell's position in the swept cell slice. Run
	// normalizes it to the slice position, so results (which may be
	// consumed out of a channel) can always be mapped back.
	Index int `json:"index"`
	// Source indexes the sweep's source slice; SourceName echoes that
	// source's name (Run fills it in).
	Source     int    `json:"source"`
	SourceName string `json:"source_name,omitempty"`
	// RateIndex and CountIndex locate the cell on the grid's rate and
	// count axes. Grid.Cells always sets them; they exist so
	// seed-derivation overrides can recover the original axis values
	// without inverting floating-point arithmetic. Hand-built cell
	// slices choose their own convention (the engine never reads them),
	// so a zero only means "axis position 0" for cells that set them.
	RateIndex  int `json:"rate_index"`
	CountIndex int `json:"count_index"`
	// RatePerYear is the per-component raw (pre-masking) soft error
	// rate in errors/year.
	RatePerYear float64 `json:"rate_per_year"`
	// Count is the number of identical components in series.
	Count int `json:"count"`
	// Seed selects the cell's deterministic random stream for
	// stochastic estimators.
	Seed uint64 `json:"seed"`
}

// EffectiveRatePerYear is the superposed raw rate of the cell's series
// system: Count identical components at RatePerYear each are exactly
// one component at Count x RatePerYear for every estimator in this
// repository, which is what lets cells share compiled systems.
func (c Cell) EffectiveRatePerYear() float64 {
	return c.RatePerYear * float64(c.Count)
}

// Grid is a cross product of named axes: every source, at every
// per-component raw rate, at every component count.
type Grid struct {
	// Name labels the grid in reports.
	Name string
	// Sources is the trace axis (required).
	Sources []Source
	// RatesPerYear is the per-component raw-rate axis in errors/year
	// (required; the paper's N x S x baseline products).
	RatesPerYear []float64
	// Counts is the component-count axis C (optional; nil means {1}).
	Counts []int
}

// counts returns the effective count axis.
func (g Grid) counts() []int {
	if len(g.Counts) == 0 {
		return []int{1}
	}
	return g.Counts
}

// NumCells returns the number of cells the grid enumerates.
func (g Grid) NumCells() int {
	return len(g.Sources) * len(g.RatesPerYear) * len(g.counts())
}

// Validate checks the axes without enumerating cells.
func (g Grid) Validate() error {
	if len(g.Sources) == 0 {
		return errNoSources
	}
	for i, s := range g.Sources {
		if s.Trace == nil && s.Build == nil {
			return fmt.Errorf("sweep: source %d (%s) has neither Trace nor Build", i, s.Name)
		}
	}
	if len(g.RatesPerYear) == 0 {
		return errNoRates
	}
	for i, r := range g.RatesPerYear {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("sweep: rate %d is invalid (%v)", i, r)
		}
	}
	for i, c := range g.Counts {
		if c < 1 {
			return fmt.Errorf("sweep: count %d is invalid (%d)", i, c)
		}
	}
	return nil
}

// Cells enumerates the grid in row-major axis order (sources outermost,
// then rates, then counts), assigning each cell a deterministic seed
// derived from (seed, cell index) by CellSeed.
func (g Grid) Cells(seed uint64) ([]Cell, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	counts := g.counts()
	cells := make([]Cell, 0, g.NumCells())
	for si := range g.Sources {
		for ri, rate := range g.RatesPerYear {
			for ci, count := range counts {
				i := len(cells)
				cells = append(cells, Cell{
					Index:       i,
					Source:      si,
					SourceName:  g.Sources[si].Name,
					RateIndex:   ri,
					CountIndex:  ci,
					RatePerYear: rate,
					Count:       count,
					Seed:        CellSeed(seed, i),
				})
			}
		}
	}
	return cells, nil
}

// CellSeed derives the deterministic random seed of cell index under a
// base seed: a SplitMix64 finalizer over a Weyl sequence, so adjacent
// indices (and small base seeds) still produce well-mixed, distinct
// streams. The derivation is part of the determinism contract — a grid
// re-run with the same base seed evaluates identical streams no matter
// how the cells are scheduled.
func CellSeed(base uint64, index int) uint64 {
	x := base + (uint64(index)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
