package montecarlo

import (
	"math"

	"github.com/soferr/soferr/internal/numeric"
)

// ExposureInverter is the trace capability the Inverted engine needs: a
// precomputed cumulative-exposure table that can be inverted in O(log S).
// trace.Piecewise implements it; lazy traces that do not are handled by
// per-component thinning inside the same trial.
type ExposureInverter interface {
	Period() float64
	TotalExposure() float64
	InvertExposure(e float64) float64
}

// invComp is the per-component precomputation for inverted sampling.
//
// A raw Poisson process of rate lambda thinned by the periodic
// vulnerability v(t) is an inhomogeneous Poisson process with
// cumulative hazard H(t) = lambda*m(t), where m is the cumulative
// exposure. The first unmasked arrival T satisfies H(T) = E with
// E ~ Exp(1), so T = H^-1(E). Because m advances by exactly
// m(L) per period, the inversion splits into a geometric number of
// whole survived periods plus a truncated-exponential remainder
// inverted on the one-period table — O(log S) total, independent of
// the raw rate, the AVF, and the number of masked arrivals.
type invComp struct {
	rate   float64
	period float64
	// pFail = 1 - e^(-rate*m(L)): probability of failing within any one
	// period, kept as a probability so tiny exposures lose no precision.
	pFail float64
	// perPeriodExposure = rate * m(L): the cumulative hazard of one period.
	perPeriodExposure float64
	inv               ExposureInverter

	// Fallback when the trace cannot invert exposure: literal thinning.
	thinning bool
	comp     *Component
}

// newInvComps precomputes inverted samplers for every component that
// can fail. Components whose traces lack an exposure table fall back to
// thinning.
func newInvComps(components []Component) []invComp {
	out := make([]invComp, 0, len(components))
	for i := range components {
		c := &components[i]
		if c.Rate == 0 || c.Trace.AVF() == 0 {
			continue // can never fail; contributes +Inf to the min
		}
		inv, ok := c.Trace.(ExposureInverter)
		if !ok {
			out = append(out, invComp{thinning: true, comp: c})
			continue
		}
		h := c.Rate * inv.TotalExposure()
		out = append(out, invComp{
			rate:              c.Rate,
			period:            inv.Period(),
			pFail:             numeric.OneMinusExpNeg(h),
			perPeriodExposure: h,
			inv:               inv,
		})
	}
	return out
}

// sample draws one first-unmasked-arrival time for the component. It
// draws through the drawSource — exactly the per-trial PCG stream
// under the default sampler, or two Sobol coordinates under QMC —
// consuming either two uniforms or (zero-exposure early return) none,
// a count that is fixed per component across trials so the Sobol
// dimension assignment stays aligned.
//
//soferr:hotpath
func (ic *invComp) sample(ds *drawSource) float64 {
	if ic.perPeriodExposure == 0 {
		// rate*m(L) underflowed to zero: failure is beyond any
		// representable horizon.
		return math.Inf(1)
	}
	// Whole survived periods: P(K >= k) = e^(-k*rate*m(L)), i.e.
	// K = floor(Exp(1) / (rate*m(L))). Kept in float64 so huge counts
	// (low-rate regimes) lose only relative precision, not correctness.
	k := math.Floor(numeric.ExpInvCDF(ds.Float64Open()) / ic.perPeriodExposure)
	// Within-period exposure target, conditioned on failing inside a
	// period (memorylessness makes it independent of K): a truncated
	// exponential with mass pFail, mapped back to time by one binary
	// search over the trace's cumulative-exposure table.
	e := numeric.TruncExpInvCDF(ds.Float64(), ic.pFail) / ic.rate
	return k*ic.period + ic.inv.InvertExposure(e)
}

// trialInverted samples the system failure time as the min of
// per-component first unmasked arrivals, each drawn in closed form
// (or by thinning for non-invertible traces). A trial in which no
// component fails within the representable horizon (every per-period
// exposure underflowed to zero) reports +Inf, the never-failing
// answer, rather than an error.
//
//soferr:hotpath
func trialInverted(comps []invComp, ds *drawSource, maxArrivals int) (float64, error) {
	best := math.Inf(1)
	for i := range comps {
		ic := &comps[i]
		if ic.thinning {
			t, failed, err := thinFirstArrival(ic.comp, &ds.rng, best, maxArrivals)
			if err != nil {
				return 0, err
			}
			if failed && t < best {
				best = t
			}
			continue
		}
		if t := ic.sample(ds); t < best {
			best = t
		}
	}
	return best, nil
}
