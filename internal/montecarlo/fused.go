package montecarlo

import (
	"math"

	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
)

// fusedState is the Fused engine's precomputation: one merged
// system-level cumulative-hazard table covering every component whose
// trace can join the merge, plus per-component fallback samplers for
// the rest.
//
// The merged table exists because independent thinned Poisson
// processes superpose: the system's first failure is the first arrival
// of the process with cumulative hazard H(t) = sum_i rate_i*m_i(t),
// periodic on the components' hyperperiod. Sampling it is the
// single-component inverted closed form verbatim — a geometric number
// of whole survived hyperperiods plus one truncated-exponential
// remainder mapped back to time by one binary search — so a trial
// costs O(log S_total) regardless of the component count.
//
// Components fall back out of the merge in two ways, both preserving
// exactness: a non-materialized trace (lazy LongLoop) is sampled
// per-component as the Inverted engine would (closed form via its own
// ExposureInverter, or thinning), and if the materialized traces'
// periods are incommensurate — or the merged table would exceed the
// segment cap — the whole merge degrades to per-component inverted
// sampling. The min of the merged draw and the fallback draws is the
// system failure time either way.
type fusedState struct {
	// merged is nil when no component could join the merge (or the
	// merge failed); rest then carries every live component.
	merged   *trace.MergedExposure
	totalHaz float64 // merged.Total(): cumulative hazard per hyperperiod
	pFail    float64 // 1 - e^(-totalHaz), kept in probability space
	period   float64 // merged.Period(): the hyperperiod
	rest     []invComp
}

// fusedState returns (building on first use) the Fused engine's merged
// precomputation.
func (c *Compiled) fusedState() *fusedState {
	c.fusedOnce.Do(func() { c.fused = newFusedState(c.components) })
	return c.fused
}

func newFusedState(components []Component) *fusedState {
	var rates []float64
	var pieces []*trace.Piecewise
	var rest []Component
	for i := range components {
		comp := &components[i]
		if comp.Rate == 0 || comp.Trace.AVF() == 0 {
			continue // can never fail; contributes +Inf to the min
		}
		if p, ok := comp.Trace.(*trace.Piecewise); ok {
			rates = append(rates, comp.Rate)
			pieces = append(pieces, p)
			continue
		}
		rest = append(rest, *comp)
	}
	fs := &fusedState{}
	if len(pieces) > 0 {
		m, err := trace.NewMergedExposure(rates, pieces, 0)
		if err != nil {
			// Incommensurate periods or an over-cap table: degrade to
			// per-component inverted sampling, which is exact for any
			// period mixture. Fall back with the components in their
			// ORIGINAL order (not mergeable-last) so the degraded trial
			// consumes the shared per-trial stream exactly as
			// trialInverted does — bit-identical, not just
			// distributionally equal.
			fs.rest = newInvComps(components)
			return fs
		}
		fs.merged = m
		fs.totalHaz = m.Total()
		fs.pFail = numeric.OneMinusExpNeg(fs.totalHaz)
		fs.period = m.Period()
	}
	fs.rest = newInvComps(rest)
	return fs
}

// trialFused samples one system failure time: one closed-form draw on
// the merged hazard table, then per-component fallback draws for
// components outside the merge, taking the min. A trial in which
// nothing fails within the representable horizon reports +Inf.
//
//soferr:hotpath
func trialFused(fs *fusedState, ds *drawSource, maxArrivals int) (float64, error) {
	best := math.Inf(1)
	if fs.merged != nil && fs.totalHaz > 0 {
		// Identical math to invComp.sample, one level up: whole survived
		// hyperperiods are geometric with hazard totalHaz per period,
		// and the within-period remainder is a truncated exponential
		// inverted on the merged table.
		k := math.Floor(numeric.ExpInvCDF(ds.Float64Open()) / fs.totalHaz)
		h := numeric.TruncExpInvCDF(ds.Float64(), fs.pFail)
		best = k*fs.period + fs.merged.Invert(h)
	}
	for i := range fs.rest {
		ic := &fs.rest[i]
		if ic.thinning {
			t, failed, err := thinFirstArrival(ic.comp, &ds.rng, best, maxArrivals)
			if err != nil {
				return 0, err
			}
			if failed && t < best {
				best = t
			}
			continue
		}
		if t := ic.sample(ds); t < best {
			best = t
		}
	}
	return best, nil
}

// batchable reports whether the batched inversion kernel can serve
// this fused state: it needs a live merged table (the thing the sweep
// amortizes) and a thinning-free remainder (thinning's draw count
// depends on the running minimum, which the deferred sweep does not
// have yet).
func (fs *fusedState) batchable() bool {
	if fs.merged == nil || fs.totalHaz <= 0 {
		return false
	}
	for i := range fs.rest {
		if fs.rest[i].thinning {
			return false
		}
	}
	return true
}

// newFusedBatchFactory returns a factory building per-worker batched
// fused kernels of the given batch size. The kernel resolves a batch
// in four phases — draw, sort, sweep, emit — and returns per-trial
// values bit-identical to trialFused under the same (seed, trial)
// streams:
//
//  1. Per trial (in trial order, each on its own reseeded stream): the
//     hyperperiod count k and the within-period hazard target h from
//     the same two uniforms trialFused draws, then the closed-form
//     fallback samples for components outside the merge, folded to
//     their running min. Only the merged-table inversion is deferred.
//  2. The batch's hazard targets are argsorted (allocation-free,
//     worker-local scratch).
//  3. One forward sweep over the merged table resolves every target
//     (trace.MergedExposure.InvertSortedInto): identical segment,
//     identical arithmetic as the scalar Invert, but a monotone
//     galloping cursor instead of B independent binary searches —
//     O(log gap) per element, O(B) total when targets cluster.
//  4. Results are emitted in trial order as min(k*period + x, rest),
//     the same min trialFused computes (the fallback min never depends
//     on the merged draw, so deferring the inversion is observationally
//     identical).
func newFusedBatchFactory(fs *fusedState, seed uint64, batchSize int) func() batchFn {
	return func() batchFn {
		base := make([]float64, batchSize) // k*period per trial
		hs := make([]float64, batchSize)   // hazard targets, sorted in place
		restm := make([]float64, batchSize)
		res := make([]float64, batchSize)
		idx := make([]int, batchSize)
		return func(ds *drawSource, lo, n int, out []float64) {
			for j := 0; j < n; j++ {
				ds.beginTrial(seed, lo+j)
				k := math.Floor(numeric.ExpInvCDF(ds.Float64Open()) / fs.totalHaz)
				hs[j] = numeric.TruncExpInvCDF(ds.Float64(), fs.pFail)
				base[j] = k * fs.period
				rm := math.Inf(1)
				for i := range fs.rest {
					if t := fs.rest[i].sample(ds); t < rm {
						rm = t
					}
				}
				restm[j] = rm
				idx[j] = j
			}
			numeric.SortWithIndex(hs[:n], idx[:n])
			fs.merged.InvertSortedInto(hs[:n], idx[:n], res[:n])
			for j := 0; j < n; j++ {
				v := base[j] + res[j]
				if restm[j] < v {
					v = restm[j]
				}
				out[j] = v
			}
		}
	}
}
