package montecarlo

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/soferr/soferr/internal/analytic"
	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/softarch"
	"github.com/soferr/soferr/internal/trace"
)

func TestExactMatchesClosedForm(t *testing.T) {
	// Single busy/idle component: the exact engine must reproduce
	// Derivation 1 to near machine precision — no sampling tolerance.
	cases := []struct {
		name               string
		rate, period, busy float64
	}{
		{"tiny rateL", 1e-9, 24, 8},
		{"small rateL", 1e-3, 10, 5},
		{"moderate rateL", 0.05, 10, 5},
		{"large rateL", 0.5, 10, 2},
		{"always vulnerable", 0.01, 10, 10},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			c, err := Compile([]Component{{Rate: tt.rate, Trace: busyIdle(t, tt.period, tt.busy)}})
			if err != nil {
				t.Fatal(err)
			}
			want, err := analytic.BusyIdleMTTF(tt.rate, tt.period, tt.busy)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.ExactMTTF()
			if err != nil {
				t.Fatal(err)
			}
			if re := numeric.RelErr(got, want); re > 1e-12 {
				t.Errorf("ExactMTTF = %v, Derivation 1 = %v (rel err %v)", got, want, re)
			}
		})
	}
}

func TestExactMultiComponentMatchesSoftArch(t *testing.T) {
	// Equal-period heterogeneous components: the exact engine's merged
	// table and package softarch's weighted union compute the same
	// integral by different routes; they must agree to near machine
	// precision.
	comps := []Component{
		{Name: "a", Rate: 0.02, Trace: busyIdle(t, 10, 3)},
		{Name: "b", Rate: 0.01, Trace: busyIdle(t, 10, 7)},
		{Name: "c", Rate: 0.05, Trace: busyIdle(t, 10, 5)},
	}
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ExactMTTF()
	if err != nil {
		t.Fatal(err)
	}
	sas := make([]softarch.Component, len(comps))
	for i, mc := range comps {
		sas[i] = softarch.Component{Name: mc.Name, Rate: mc.Rate, Trace: mc.Trace}
	}
	want, err := softarch.SystemMTTF(sas)
	if err != nil {
		t.Fatal(err)
	}
	if re := numeric.RelErr(got, want); re > 1e-12 {
		t.Errorf("ExactMTTF = %v, softarch = %v (rel err %v)", got, want, re)
	}
}

func TestExactCommensuratePeriods(t *testing.T) {
	// Commensurate unequal periods exercise the hyperperiod merge; the
	// result must match quadrature of the merged survival function.
	comps := []Component{
		{Name: "a", Rate: 0.03, Trace: busyIdle(t, 6, 2)},
		{Name: "b", Rate: 0.01, Trace: busyIdle(t, 8, 5)},
	}
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ExactMTTF()
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.NewMergedExposure(
		[]float64{0.03, 0.01},
		[]*trace.Piecewise{busyIdle(t, 6, 2), busyIdle(t, 8, 5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	integral, err := numeric.Integrate(func(x float64) float64 {
		return math.Exp(-m.CumHazard(x))
	}, 0, m.Period(), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := integral / numeric.OneMinusExpNeg(m.Total())
	if re := numeric.RelErr(got, want); re > 1e-9 {
		t.Errorf("ExactMTTF = %v, quadrature = %v (rel err %v)", got, want, re)
	}
}

func TestExactRunIntegration(t *testing.T) {
	// Engine Exact through the normal run path: zero trials, zero
	// stderr, identical for any seed/trials/target settings, equal to
	// the direct ExactMTTF call.
	c, err := Compile([]Component{{Rate: 0.01, Trace: busyIdle(t, 10, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ExactMTTF()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, cfg := range []Config{
		{Engine: Exact},
		{Engine: Exact, Trials: 7, Seed: 99, Workers: 3},
		{Engine: Exact, TargetRelStdErr: 0.5},
	} {
		res, err := c.MTTF(ctx, cfg)
		if err != nil {
			t.Fatalf("MTTF(%+v): %v", cfg, err)
		}
		if res.MTTF != want || res.StdErr != 0 || res.Trials != 0 {
			t.Errorf("MTTF(%+v) = %+v, want {MTTF: %v, StdErr: 0, Trials: 0}", cfg, res, want)
		}
	}
	if _, err := c.TTFSamples(ctx, Config{Engine: Exact}); !errors.Is(err, ErrExactNoSamples) {
		t.Errorf("TTFSamples under Exact: err = %v, want ErrExactNoSamples", err)
	}
}

func TestExactTypedRefusals(t *testing.T) {
	// Incommensurate periods: the typed umbrella AND the underlying
	// merge refusal must both be visible to errors.Is.
	c, err := Compile([]Component{
		{Rate: 0.01, Trace: busyIdle(t, 10, 4)},
		{Rate: 0.01, Trace: busyIdle(t, math.Pi, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ExactMTTF()
	if !errors.Is(err, ErrExactUnavailable) {
		t.Errorf("incommensurate ExactMTTF err = %v, want ErrExactUnavailable", err)
	}
	if !errors.Is(err, trace.ErrIncommensurate) {
		t.Errorf("incommensurate ExactMTTF err = %v, want to wrap trace.ErrIncommensurate", err)
	}
	if _, rerr := c.ExactReliability(5); !errors.Is(rerr, ErrExactUnavailable) {
		t.Errorf("incommensurate ExactReliability err = %v", rerr)
	}
	if _, qerr := c.ExactFailureQuantile(0.5); !errors.Is(qerr, ErrExactUnavailable) {
		t.Errorf("incommensurate ExactFailureQuantile err = %v", qerr)
	}
	// The run path surfaces the same typed error.
	if _, err := c.MTTF(context.Background(), Config{Engine: Exact}); !errors.Is(err, ErrExactUnavailable) {
		t.Errorf("run-path err = %v, want ErrExactUnavailable", err)
	}

	// A lazy trace alongside another failing component cannot join a
	// merge: typed refusal, not a silent fallback.
	inner := busyIdle(t, 10, 4)
	ll, err := trace.NewLongLoop(trace.LoopPhase{Inner: inner, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile([]Component{
		{Rate: 0.01, Trace: ll},
		{Rate: 0.01, Trace: busyIdle(t, 20, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ExactMTTF(); !errors.Is(err, ErrExactUnavailable) {
		t.Errorf("lazy-mixture ExactMTTF err = %v, want ErrExactUnavailable", err)
	}
}

func TestExactLazySingleComponent(t *testing.T) {
	// A single lazy LongLoop needs no merge: its own survival integral
	// is the system integral. Two reps of a busy/idle loop integrate to
	// exactly the one-rep closed form.
	inner := busyIdle(t, 10, 4)
	ll, err := trace.NewLongLoop(trace.LoopPhase{Inner: inner, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	const rate = 0.02
	c, err := Compile([]Component{{Rate: rate, Trace: ll}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ExactMTTF()
	if err != nil {
		t.Fatal(err)
	}
	want, err := analytic.BusyIdleMTTF(rate, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if re := numeric.RelErr(got, want); re > 1e-12 {
		t.Errorf("lazy ExactMTTF = %v, Derivation 1 = %v (rel err %v)", got, want, re)
	}
	// The distribution queries work through the LongLoop's exposure
	// interface too.
	r, err := c.ExactReliability(7)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Exp(-rate * 4); numeric.RelErr(r, want) > 1e-12 {
		t.Errorf("lazy ExactReliability(7) = %v, want %v", r, want)
	}
	if _, err := c.ExactFailureQuantile(0.25); err != nil {
		t.Errorf("lazy ExactFailureQuantile: %v", err)
	}
}

func TestExactNeverFailing(t *testing.T) {
	// Zero AVF: the well-typed never-failing answer on every exact
	// query — +Inf MTTF through the run path included.
	idle, err := trace.NewPiecewise([]trace.Segment{{Start: 0, End: 10, Vuln: 0}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile([]Component{{Rate: 5, Trace: idle}})
	if err != nil {
		t.Fatal(err)
	}
	if mttf, err := c.ExactMTTF(); err != nil || !math.IsInf(mttf, 1) {
		t.Errorf("never-failing ExactMTTF = %v, %v; want +Inf", mttf, err)
	}
	if r, err := c.ExactReliability(1e18); err != nil || r != 1 {
		t.Errorf("never-failing ExactReliability = %v, %v; want 1", r, err)
	}
	if q, err := c.ExactFailureQuantile(0.5); err != nil || !math.IsInf(q, 1) {
		t.Errorf("never-failing ExactFailureQuantile = %v, %v; want +Inf", q, err)
	}
	res, err := c.MTTF(context.Background(), Config{Engine: Exact})
	if err != nil || !math.IsInf(res.MTTF, 1) || res.StdErr != 0 {
		t.Errorf("run-path never-failing = %+v, %v; want +Inf with zero stderr", res, err)
	}
}

func TestExactGeometricTailPrecision(t *testing.T) {
	// An almost-never-failing system: H(P) ~ 8e-16 per period. A naive
	// 1-exp(-H(P)) denominator would cancel to rounding noise; expm1
	// keeps the MTTF within 1e-12 of Derivation 1.
	const rate = 1e-16
	c, err := Compile([]Component{{Rate: rate, Trace: busyIdle(t, 24, 8)}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ExactMTTF()
	if err != nil {
		t.Fatal(err)
	}
	want, err := analytic.BusyIdleMTTF(rate, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	if re := numeric.RelErr(got, want); re > 1e-12 {
		t.Errorf("tiny-hazard ExactMTTF = %v, Derivation 1 = %v (rel err %v)", got, want, re)
	}
	if math.IsInf(got, 1) || got <= 0 {
		t.Fatalf("tiny-hazard MTTF = %v, want large finite", got)
	}

	// The quantile target for tiny p is -log1p(-p) = p exactly at this
	// magnitude; a log(1-p) evaluation would collapse to zero and
	// return the first vulnerable instant for every tiny p.
	const p = 1e-18
	q, err := c.ExactFailureQuantile(p)
	if err != nil {
		t.Fatal(err)
	}
	// H(Q(p)) must equal p: Q(p) = k*P + invert(rem) with k = floor(p/H(P)).
	hp := rate * 8.0 // per-period hazard
	wantK := math.Floor(p / hp)
	if gotK := math.Floor(q / 24); gotK != wantK {
		t.Errorf("tiny-p quantile survived %v periods, want %v", gotK, wantK)
	}
	if q <= 0 || math.IsInf(q, 1) {
		t.Errorf("tiny-p quantile = %v, want finite positive", q)
	}
}

func TestExactReliabilityQuantileInvariants(t *testing.T) {
	// Multi-component commensurate system: R(0) = 1, R non-increasing,
	// R(+Inf) = 0, and 1 - R(Q(p)) == p wherever the quantile lands
	// inside a vulnerable span.
	c, err := Compile([]Component{
		{Rate: 0.005, Trace: busyIdle(t, 6, 2)},
		{Rate: 0.002, Trace: busyIdle(t, 8, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := c.ExactReliability(0)
	if err != nil || r0 != 1 {
		t.Errorf("R(0) = %v, %v; want exactly 1", r0, err)
	}
	prev := 1.0
	for _, x := range []float64{0.1, 1, 3, 6, 8, 24, 25, 100, 1e4, 1e8} {
		r, err := c.ExactReliability(x)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev {
			t.Errorf("R(%v) = %v > previous %v; want non-increasing", x, r, prev)
		}
		if r < 0 || r > 1 {
			t.Errorf("R(%v) = %v outside [0, 1]", x, r)
		}
		prev = r
	}
	if rInf, err := c.ExactReliability(math.Inf(1)); err != nil || rInf != 0 {
		t.Errorf("R(+Inf) = %v, %v; want 0", rInf, err)
	}
	for _, p := range []float64{1e-12, 0.01, 0.25, 0.5, 0.9, 0.999999} {
		q, err := c.ExactFailureQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.ExactReliability(q)
		if err != nil {
			t.Fatal(err)
		}
		// Right-continuity: F(Q(p)) >= p always; equality holds when
		// Q(p) falls strictly inside a vulnerable span.
		if got := 1 - r; got < p-1e-9*p-1e-15 {
			t.Errorf("F(Q(%v)) = %v < p", p, got)
		}
	}
	if q1, err := c.ExactFailureQuantile(1); err != nil || !math.IsInf(q1, 1) {
		t.Errorf("Q(1) = %v, %v; want +Inf", q1, err)
	}
	// Domain validation.
	if _, err := c.ExactReliability(-1); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := c.ExactFailureQuantile(1.5); err == nil {
		t.Error("out-of-domain probability accepted")
	}
}
