// Package montecarlo estimates MTTF from first principles, exactly as
// the paper's reference method (Section 4.3): for every trial it draws
// raw error arrivals from independent exponential inter-arrival times,
// masks each arrival according to the component's masking trace, and
// records the time of the first unmasked arrival; the system fails when
// its earliest component fails. The average over trials is the MTTF, and
// no AVF or SOFR assumption is involved.
//
// Five engines are provided:
//
//   - The naive engine simulates every component separately and takes
//     the minimum, mirroring the paper's description literally.
//   - The superposition engine exploits the fact that the union of
//     independent Poisson processes is a Poisson process of the summed
//     rate, with each arrival belonging to component i with probability
//     rate_i/total (sampled in O(1) by an alias table). The first
//     unmasked arrival of the union is exactly the system failure time,
//     so the cost per arrival is independent of the number of
//     components. This is what makes the paper's 500,000-processor
//     clusters (Table 2) simulable.
//   - The inverted engine samples each component's first unmasked
//     arrival in closed form by inverting the cumulative exposure m(t)
//     that trace.Piecewise precomputes: a thinned Poisson process is an
//     inhomogeneous Poisson process with cumulative hazard rate*m(t),
//     so one Exp(1) draw splits into a geometric number of survived
//     periods plus one binary search over the one-period exposure
//     table — O(log S) per trial, independent of the raw rate, the
//     AVF, and the number of masked arrivals that the other engines
//     must enumerate and reject.
//   - The fused engine applies the same closed form to the whole
//     system at once: the superposition of the components' thinned
//     processes has cumulative hazard H(t) = sum_i rate_i*m_i(t), so
//     one merged hazard table (trace.MergedExposure, aligned on the
//     components' hyperperiod) turns a system trial into one Exp(1)
//     draw plus one binary search — O(log S_total) per trial,
//     independent of the component count N that the inverted engine
//     still loops over.
//   - The exact engine is not a sampler at all: it integrates the
//     merged hazard table once — segment-wise closed-form
//     int exp(-H(t)) dt within one hyperperiod, geometric tail
//     exp(-H(P)) across hyperperiods — and answers MTTF, Reliability,
//     and FailureQuantile with no RNG, no trials, and zero standard
//     error. Systems the table cannot represent (incommensurate
//     periods, over-cap merges, lazy traces alongside others) are
//     refused with the typed ErrExactUnavailable so callers can fall
//     back to a sampling engine.
//
// The engines are property-tested against each other and against the
// closed forms in package analytic.
//
//soferr:deterministic
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/soferr/soferr/internal/faultinject"
	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/xrand"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNoComponents = errors.New("montecarlo: no components")
)

// Component is one failure source: a raw-error Poisson process filtered
// by a masking trace.
type Component struct {
	// Name labels the component in errors and reports.
	Name string
	// Rate is the raw soft error rate in errors/second.
	Rate float64
	// Trace is the component's masking trace.
	Trace trace.Trace
}

// Engine selects the trial implementation.
type Engine int

const (
	// Superposed simulates the union Poisson process (default; exact
	// and O(1) in the number of components, but O(arrivals) in the
	// masked-arrival count).
	Superposed Engine = iota + 1
	// Naive simulates each component separately and takes the minimum.
	Naive
	// Inverted samples each component's first unmasked arrival in
	// closed form by exposure inversion: O(log S) per component per
	// trial, independent of rate and AVF. Traces that do not expose an
	// exposure table (see ExposureInverter) fall back to thinning.
	Inverted
	// Fused samples the whole system's failure time from the merged
	// cumulative-hazard table (the superposition of the components'
	// thinned processes): one Exp(1) draw plus one binary search per
	// trial, O(log S_total), independent of the component count.
	// Components whose traces cannot join the merge (non-materialized
	// traces, incommensurate periods) fall back to per-component
	// sampling inside the same trial, exactly as Inverted would.
	Fused
	// Exact integrates the merged cumulative-hazard table in closed
	// form instead of sampling it: MTTF = int_0^inf exp(-H(t)) dt,
	// evaluated as one hyperperiod's segment-wise truncated-exponential
	// integral times the geometric series in exp(-H(P)). Deterministic:
	// no RNG, no trials, zero standard error. Queries on systems whose
	// hazard cannot be tabulated return ErrExactUnavailable.
	Exact
)

// String returns the engine's CLI name.
func (e Engine) String() string {
	switch e {
	case Superposed:
		return "superposed"
	case Naive:
		return "naive"
	case Inverted:
		return "inverted"
	case Fused:
		return "fused"
	case Exact:
		return "exact"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// EngineByName parses a CLI engine name, case-insensitively.
func EngineByName(name string) (Engine, error) {
	switch strings.ToLower(name) {
	case "superposed":
		return Superposed, nil
	case "naive":
		return Naive, nil
	case "inverted":
		return Inverted, nil
	case "fused":
		return Fused, nil
	case "exact":
		return Exact, nil
	default:
		return 0, fmt.Errorf("montecarlo: unknown engine %q (want superposed, naive, inverted, fused, or exact)", name)
	}
}

// Config controls a Monte-Carlo run. The zero value is usable: it means
// DefaultTrials trials, seed 0, all engines defaulted.
type Config struct {
	// Trials is the number of independent trials (default DefaultTrials).
	Trials int
	// Seed selects the deterministic random stream. Runs with equal
	// seeds, trials, and engine produce identical results regardless of
	// worker count.
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Engine selects the trial implementation (default Superposed).
	Engine Engine
	// MaxArrivalsPerTrial aborts pathological trials (vanishing AVF with
	// a non-zero rate) in the arrival-enumerating engines. Default 100
	// million. The Inverted and Fused engines draw no arrivals and
	// ignore it except for thinning fallbacks.
	MaxArrivalsPerTrial int
	// TargetRelStdErr, when positive, switches the run to adaptive
	// precision targeting: trials run in deterministic doubling rounds
	// until the streamed relative standard error (StdErr/MTTF) reaches
	// the target, the Trials cap is hit, or ctx ends. The round
	// schedule depends only on the trial indices (per-trial streams
	// derive from the seed), so adaptive results are bit-identical for
	// any worker count, exactly like fixed-trial runs. Sample-collecting
	// runs (TTFSamples) ignore it.
	TargetRelStdErr float64
	// Sampler selects the uniform source beneath the trial kernels
	// (default PCG). The Sobol low-discrepancy sampler requires the
	// Inverted or Fused engine on a fully invertible system; see
	// Sampler and ErrSamplerUnsupported.
	Sampler Sampler
	// BatchSize tunes the batched inversion kernel of the Fused engine:
	// the number of trials whose hazard draws are sorted and resolved
	// in one forward sweep over the merged table. 0 means
	// DefaultBatchSize, applied only when the merged table has at least
	// minBatchSegments segments (below that the argsort costs more than
	// the searches it replaces); an explicit size is always honored.
	// 1 forces the scalar kernel (the conformance oracle); larger
	// values are capped at one trial block. Results are bit-identical
	// for every batch size — the knob only moves throughput.
	BatchSize int
}

// DefaultTrials matches the precision regime of the paper's 1,000,000
// trials closely enough for <1% standard error on every experiment while
// keeping the full design-space sweep laptop-sized.
const DefaultTrials = 200000

// DefaultBatchSize is the batched inversion kernel's default block of
// deferred hazard draws: large enough that the sorted forward sweep
// amortizes the merged table walk and stays branch-predictable, small
// enough that the per-worker scratch lives in L1.
const DefaultBatchSize = 64

// minBatchSegments gates the *default* batch kernel by merged-table
// size: below this many segments a scalar binary search is one or two
// comparisons, cheaper than the ~log(B) argsort comparisons batching
// spends per trial (measured crossover is between ~5 and ~18 segments
// on the bench profiles). An explicit Config.BatchSize bypasses the
// gate.
const minBatchSegments = 8

// Result is a Monte-Carlo MTTF estimate.
type Result struct {
	// MTTF is the mean observed time to failure in seconds.
	MTTF float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// Trials is the number of trials used.
	Trials int
}

// RelStdErr returns StdErr/MTTF (NaN for a zero-MTTF result).
func (r Result) RelStdErr() float64 { return r.StdErr / r.MTTF }

// ErrNoFailurePossible is returned by sample-collecting runs
// (TTFSamples) when every component has AVF = 0 or rate = 0: a
// never-failing system has no failure-time distribution to sample.
// MTTF queries on such a system do not error; they report MTTF = +Inf
// with zero standard error, consistent with the deterministic
// estimators.
var ErrNoFailurePossible = errors.New("montecarlo: no component can ever fail (zero rate or zero AVF)")

// ErrTrialPanic tags a run whose trial worker panicked — a panicking
// trace implementation, a corrupted table, or an injected chaos fault.
// The panic is contained in the worker goroutine and surfaced as a
// normal error on the estimate path (wrapping ErrTrialPanic, with the
// panic value and stack in the message) instead of killing the
// process; sibling workers are cancelled as for any trial error.
var ErrTrialPanic = errors.New("montecarlo: trial worker panicked")

// fiTrialPoint is the chaos-test injection point hit once per claimed
// trial block inside each worker goroutine (see internal/faultinject).
// Disarmed — always, in production — it costs one atomic load per
// trialBlock trials.
const fiTrialPoint = "montecarlo.trial"

// fiRelayPoint is the chaos-test injection point hit once per run at
// the start of the context-cancellation relay goroutine (which only
// exists for contexts with a Done channel). Disarmed it costs one
// atomic load per run.
const fiRelayPoint = "montecarlo.cancelrelay"

// Compiled is a validated series system with every engine's shared
// precomputation done once — rate totals, the alias table for
// superposed component attribution, and the exposure-inversion samplers
// — so that repeated queries (different trial counts, seeds, or
// engines) skip straight to the trial loop.
type Compiled struct {
	components []Component
	total      float64
	// anyVulnerable records whether some component can ever fail; when
	// false every MTTF query reports +Inf (and TTFSamples returns
	// ErrNoFailurePossible).
	anyVulnerable bool
	alias         *aliasTable // nil unless len(components) > 2
	inv           []invComp

	// fused is the Fused engine's merged-hazard precomputation, built
	// lazily on first use: the merge walks every segment of every
	// component over the hyperperiod, which non-Fused queries should
	// never pay for.
	fusedOnce sync.Once
	fused     *fusedState

	// exact is the Exact engine's closed-form integration state. It is
	// built separately from fused because the two handle merge refusal
	// oppositely: the Fused sampler silently degrades to per-component
	// draws, while the Exact integrator must surface the typed error.
	exactOnce sync.Once
	exact     *exactState
}

// Compile validates components and precomputes the per-engine shared
// state. The component slice is copied; the traces are shared and must
// not be mutated afterwards.
func Compile(components []Component) (*Compiled, error) {
	if len(components) == 0 {
		return nil, errNoComponents
	}
	c := &Compiled{components: make([]Component, len(components))}
	copy(c.components, components)
	for i := range c.components {
		comp := &c.components[i]
		if comp.Rate < 0 || math.IsNaN(comp.Rate) || math.IsInf(comp.Rate, 0) {
			return nil, fmt.Errorf("montecarlo: component %d (%s) has invalid rate %v", i, comp.Name, comp.Rate)
		}
		if comp.Trace == nil {
			return nil, fmt.Errorf("montecarlo: component %d (%s) has nil trace", i, comp.Name)
		}
		c.total += comp.Rate
		if comp.Rate > 0 && comp.Trace.AVF() > 0 {
			c.anyVulnerable = true
		}
	}
	if len(c.components) > 2 {
		weights := make([]float64, len(c.components))
		for i := range c.components {
			weights[i] = c.components[i].Rate
		}
		c.alias = newAliasTable(weights)
	}
	c.inv = newInvComps(c.components)
	return c, nil
}

// Components returns the compiled component list (shared; read-only).
func (c *Compiled) Components() []Component { return c.components }

// TotalRate returns the summed raw error rate in errors/second.
func (c *Compiled) TotalRate() float64 { return c.total }

// MTTF estimates the system MTTF. Failure times are folded into
// streaming accumulators as they are produced, so memory is O(workers),
// not O(trials). Cancelling ctx aborts the run mid-trial and returns
// ctx.Err(), distinct from any trial error.
func (c *Compiled) MTTF(ctx context.Context, cfg Config) (Result, error) {
	res, _, err := c.run(ctx, cfg, false)
	return res, err
}

// TTFSamples runs the engine and returns the raw per-trial failure
// times sorted ascending; see SystemTTFSamples.
func (c *Compiled) TTFSamples(ctx context.Context, cfg Config) ([]float64, error) {
	_, samples, err := c.run(ctx, cfg, true)
	return samples, err
}

// SystemMTTF estimates the MTTF of a series system of components: a
// single-use convenience over Compile + MTTF. Cancelling ctx aborts the
// run and returns ctx.Err().
func SystemMTTF(ctx context.Context, components []Component, cfg Config) (Result, error) {
	c, err := Compile(components)
	if err != nil {
		return Result{}, err
	}
	return c.MTTF(ctx, cfg)
}

// trialBlock is the unit of work a worker claims at a time. Blocks are
// accumulated independently and merged in block order, so the result is
// bit-identical for any worker count or scheduling. It is also the
// first round of an adaptive (TargetRelStdErr) run.
const trialBlock = 4096

// run executes the engine. With collect it also returns the raw
// per-trial failure times (in trial order); otherwise samples are
// folded into per-block Welford accumulators and never materialized.
func (c *Compiled) run(ctx context.Context, cfg Config, collect bool) (Result, []float64, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, nil, err
	}
	if !c.anyVulnerable {
		if collect {
			return Result{}, nil, ErrNoFailurePossible
		}
		// A system that can never fail has a well-defined answer, not an
		// error: MTTF = +Inf, known exactly (consistent with the
		// deterministic estimators and with FIT = 0).
		return Result{MTTF: math.Inf(1)}, nil, nil
	}
	if cfg.TargetRelStdErr < 0 || math.IsNaN(cfg.TargetRelStdErr) {
		return Result{}, nil, fmt.Errorf("montecarlo: invalid TargetRelStdErr %v", cfg.TargetRelStdErr)
	}

	if cfg.Engine == Exact {
		// The Exact engine runs no trials: the answer is the closed-form
		// integral, independent of Trials, Seed, Workers, and
		// TargetRelStdErr. Sample collection is impossible without an
		// RNG, so TTFSamples refuses with a typed error.
		if collect {
			return Result{}, nil, ErrExactNoSamples
		}
		mttf, err := c.ExactMTTF()
		if err != nil {
			return Result{}, nil, err
		}
		return Result{MTTF: mttf}, nil, nil
	}

	trials := cfg.Trials
	if trials <= 0 {
		trials = DefaultTrials
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	br, err := c.newBlockRunner(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	stopRelay := br.startCancelRelay(ctx)
	defer stopRelay()

	if cfg.TargetRelStdErr > 0 && !collect {
		res, err := c.runAdaptive(ctx, br, cfg.TargetRelStdErr, trials, workers)
		// Join the relay before deciding the outcome, so a relay-side
		// failure (today only an injected chaos fault) is never lost to
		// a round boundary that happened to precede it.
		stopRelay()
		if err == nil {
			err = br.err()
		}
		if err != nil {
			return Result{}, nil, err
		}
		return res, nil, nil
	}

	var samples []float64
	var accs []numeric.Welford
	numBlocks := (trials + trialBlock - 1) / trialBlock
	if collect {
		samples = make([]float64, trials)
	} else {
		accs = make([]numeric.Welford, numBlocks*br.reps)
	}
	br.runRange(0, trials, workers, accs, samples)
	// Join the relay before reading the error state: its failure path
	// writes trialErr, and stopping it here makes the read race-free
	// and the injected-fault tests deterministic.
	stopRelay()
	// Context cancellation wins over trial errors: the caller asked the
	// run to stop, and partial-trial errors after that are moot.
	if err := ctx.Err(); err != nil {
		return Result{}, nil, err
	}
	if err := br.err(); err != nil {
		return Result{}, nil, err
	}

	if collect {
		mean, se := numeric.MeanStdErr(samples)
		return Result{MTTF: mean, StdErr: se, Trials: trials}, samples, nil
	}
	merged := make([]numeric.Welford, br.reps)
	mergeBlockAccs(merged, accs)
	return finishResult(merged, trials), nil, nil
}

// mergeBlockAccs folds per-block accumulators (reps consecutive
// entries per block, in block order) into one accumulator per
// replicate. Block order makes the merge independent of worker
// scheduling — the determinism contract.
func mergeBlockAccs(merged, accs []numeric.Welford) {
	reps := len(merged)
	for b := 0; b < len(accs)/reps; b++ {
		for r := 0; r < reps; r++ {
			merged[r].Merge(accs[b*reps+r])
		}
	}
}

// newBlockRunner resolves a Config into a ready-to-run blockRunner:
// the per-engine trial kernel, the sampler mode (with Sobol
// eligibility validated against the engine's draw layout), and the
// batched-kernel factory when the Fused engine's merged table can use
// it.
func (c *Compiled) newBlockRunner(cfg Config) (*blockRunner, error) {
	trial, err := c.trialFunc(cfg)
	if err != nil {
		return nil, err
	}
	br := &blockRunner{trial: trial, seed: cfg.Seed, reps: 1}

	engine := cfg.Engine
	if engine == 0 {
		engine = Superposed
	}
	if cfg.Sampler == Sobol {
		dims, err := c.qmcTrialDims(engine)
		if err != nil {
			return nil, err
		}
		// dims == 0 means no sampler consumes draws (every per-period
		// exposure underflowed): all trials are +Inf whatever the
		// sampler, so the PCG path is already exact and replicate-free.
		if dims > 0 {
			qs, err := newQMCState(cfg.Seed, dims)
			if err != nil {
				return nil, err
			}
			br.qmc = qs
			br.reps = qmcReplicates
		}
	} else if cfg.Sampler != PCG {
		return nil, fmt.Errorf("montecarlo: unknown sampler %v", cfg.Sampler)
	}

	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("montecarlo: invalid BatchSize %d", cfg.BatchSize)
	}
	bsz := cfg.BatchSize
	if bsz == 0 {
		bsz = DefaultBatchSize
	}
	if bsz > trialBlock {
		bsz = trialBlock
	}
	if bsz > 1 && engine == Fused {
		fs := c.fusedState()
		if fs.batchable() && (cfg.BatchSize > 0 || fs.merged.NumSegments() >= minBatchSegments) {
			br.batchSize = bsz
			br.newBatch = newFusedBatchFactory(fs, cfg.Seed, bsz)
		}
	}
	return br, nil
}

// trialFunc resolves the per-engine trial implementation over the
// precompiled shared state. The closed-form engines (Inverted, Fused)
// draw through the drawSource so the Sobol sampler can feed them; the
// arrival-enumerating engines draw straight from its PCG stream, which
// is the identical stream (the draw source delegates bit-for-bit).
func (c *Compiled) trialFunc(cfg Config) (func(ds *drawSource) (float64, error), error) {
	maxArrivals := cfg.MaxArrivalsPerTrial
	if maxArrivals <= 0 {
		maxArrivals = 100_000_000
	}
	engine := cfg.Engine
	if engine == 0 {
		engine = Superposed
	}
	components := c.components
	switch engine {
	case Naive:
		return func(ds *drawSource) (float64, error) {
			return trialNaive(components, &ds.rng, maxArrivals)
		}, nil
	case Inverted:
		return func(ds *drawSource) (float64, error) {
			return trialInverted(c.inv, ds, maxArrivals)
		}, nil
	case Fused:
		fs := c.fusedState()
		return func(ds *drawSource) (float64, error) {
			return trialFused(fs, ds, maxArrivals)
		}, nil
	case Superposed:
		return func(ds *drawSource) (float64, error) {
			return trialSuperposed(components, c.total, c.alias, &ds.rng, maxArrivals)
		}, nil
	default:
		return nil, fmt.Errorf("montecarlo: unknown engine %v", engine)
	}
}

// replicateStats reduces per-replicate accumulators to a point
// estimate and its standard error. A single replicate (the PCG
// sampler) reports the plain streamed mean and iid standard error,
// exactly as before the sampler abstraction existed. Multiple
// replicates (the Sobol sampler) report the pooled mean — every trial
// weighs equally — with the standard error of the replicate means:
// scrambled-QMC trials within one replicate are deliberately
// anti-correlated, so the iid formula would overstate the error, while
// the K replicates are genuinely independent.
func replicateStats(reps []numeric.Welford) (mean, se float64) {
	if len(reps) == 1 {
		return reps[0].Mean(), reps[0].StdErr()
	}
	var pooled, means numeric.Welford
	for _, w := range reps {
		pooled.Merge(w)
		means.Add(w.Mean())
	}
	// Welford.StdErr over the K replicate means is sd(means)/sqrt(K):
	// the standard error of their average, which the pooled mean is
	// (replicates hold equal trial counts by block alignment).
	return pooled.Mean(), means.StdErr()
}

// finishResult folds the merged per-replicate accumulators into a
// Result. A mean of +Inf (every trial beyond the representable
// horizon) is an exactly known answer, not a noisy one: its standard
// error is forced to 0 rather than the NaN that Inf-valued Welford
// updates produce.
func finishResult(reps []numeric.Welford, trials int) Result {
	mean, se := replicateStats(reps)
	if math.IsInf(mean, 1) {
		se = 0
	}
	return Result{MTTF: mean, StdErr: se, Trials: trials}
}

// adaptiveConverged reports whether the merged accumulators meet the
// relative-standard-error target. Infinite means are exactly known;
// NaN spreads (mixed finite/Inf samples) never converge early.
func adaptiveConverged(reps []numeric.Welford, target float64) bool {
	mean, se := replicateStats(reps)
	if math.IsInf(mean, 1) {
		return true
	}
	if math.IsNaN(se) || mean == 0 {
		return se == 0
	}
	return se <= target*math.Abs(mean)
}

// runAdaptive executes doubling rounds of trials until the streamed
// relative standard error crosses target, the trial cap is reached, or
// the run is canceled. The rounds cover the same absolute trial-index
// space as a fixed run (per-trial streams from (seed, index), blocks
// merged in index order), so the result at a given stop point is
// bit-identical for any worker count; the stop decision itself depends
// only on round-boundary statistics, which are equally deterministic.
func (c *Compiled) runAdaptive(ctx context.Context, br *blockRunner, target float64, cap, workers int) (Result, error) {
	merged := make([]numeric.Welford, br.reps)
	done := 0
	round := trialBlock
	if round > cap {
		round = cap
	}
	for {
		numBlocks := (round - done + trialBlock - 1) / trialBlock
		accs := make([]numeric.Welford, numBlocks*br.reps)
		br.runRange(done, round, workers, accs, nil)
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if err := br.err(); err != nil {
			return Result{}, err
		}
		mergeBlockAccs(merged, accs)
		done = round
		if adaptiveConverged(merged, target) || done >= cap {
			return finishResult(merged, done), nil
		}
		round *= 2
		if round > cap {
			round = cap
		}
	}
}

// batchFn resolves per-trial failure times for trials
// [base, base+n) of the absolute index space into out[:n], using the
// worker's draw source for the per-trial streams. Batch kernels are
// restricted to configurations that cannot produce trial errors (no
// thinning fallbacks), so the signature carries none.
type batchFn func(ds *drawSource, base, n int, out []float64)

// blockRunner executes trial blocks across a worker pool. Workers
// reuse one draw source (a Rand value reseeded per trial, plus the
// shared Sobol replicates in QMC mode), so the steady-state trial loop
// performs no allocations (asserted by TestTrialLoopDoesNotAllocate);
// per-run setup (accumulator slices, per-worker batch scratch,
// goroutines) stays O(workers + blocks).
type blockRunner struct {
	trial func(ds *drawSource) (float64, error)
	seed  uint64
	// qmc is non-nil for the Sobol sampler; reps is the number of
	// interleaved replicate accumulators per block (1 for PCG).
	qmc  *qmcState
	reps int
	// newBatch, when non-nil, builds a per-worker batched kernel with
	// its own scratch (size batchSize); the worker then resolves each
	// claimed block in batched sub-ranges instead of per-trial calls.
	newBatch  func() batchFn
	batchSize int
	canceled  atomic.Bool
	mu        sync.Mutex
	trialErr  error
}

func (br *blockRunner) fail(err error) {
	br.mu.Lock()
	if br.trialErr == nil {
		br.trialErr = err
	}
	br.mu.Unlock()
	// One bad trace means every sibling's remaining trials are wasted
	// work: cancel instead of burning the trial budget.
	br.canceled.Store(true)
}

// err returns the first recorded trial error. Reads go through the
// lock because the cancellation relay can record a failure while
// adaptive rounds are still consulting the error state.
func (br *blockRunner) err() error {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.trialErr
}

// startCancelRelay mirrors ctx cancellation onto the canceled flag the
// trial loops already poll, so a context check costs one atomic load
// per trial instead of a channel select. A context that can never be
// canceled needs no relay and gets a no-op stop. The returned stop
// function is idempotent and joins the goroutine, so a caller that
// stops the relay before reading the error state observes any
// relay-side failure.
func (br *blockRunner) startCancelRelay(ctx context.Context) (stop func()) {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	quit := make(chan struct{})
	joined := make(chan struct{})
	go func() {
		defer close(joined)
		// The relay shares the workers' containment contract: a panic
		// here — reachable today only through the chaos injection point
		// below — becomes a typed trial error on the estimate path
		// instead of killing the process.
		defer func() {
			if rec := recover(); rec != nil {
				br.fail(fmt.Errorf("%w: cancellation relay: %v\n%s", ErrTrialPanic, rec, debug.Stack()))
			}
		}()
		if err := faultinject.Fire(fiRelayPoint); err != nil {
			br.fail(err)
			return
		}
		select {
		case <-done:
			br.canceled.Store(true)
		case <-quit:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(quit) })
		<-joined
	}
}

// runRange executes trials [lo, hi) of the absolute trial-index space;
// lo must be trialBlock-aligned. Summary mode (samples nil) folds each
// block into reps consecutive accumulators starting at
// accs[(blockIndex-lo/trialBlock)*reps], one per Sobol replicate
// (trial i belongs to replicate i mod reps; reps is 1 for PCG, so the
// layout and fold order are exactly the historical ones). Collect mode
// writes samples[i] per trial. Blocks are claimed off an atomic
// counter, so any worker count produces the same per-block
// accumulators.
func (br *blockRunner) runRange(lo, hi, workers int, accs []numeric.Welford, samples []float64) {
	baseBlock := lo / trialBlock
	endBlock := (hi + trialBlock - 1) / trialBlock
	if workers > endBlock-baseBlock {
		workers = endBlock - baseBlock
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Contain panics to the worker: a panicking trace (or an
			// injected chaos fault) becomes a typed trial error and
			// cancels the siblings; the process — and the caller's
			// estimate path — survives.
			defer func() {
				if rec := recover(); rec != nil {
					br.fail(fmt.Errorf("%w: %v\n%s", ErrTrialPanic, rec, debug.Stack()))
				}
			}()
			var ds drawSource
			br.initDrawSource(&ds)
			// reps accumulators and the batch kernel's scratch are
			// per-worker, allocated once per runRange: the per-trial
			// steady state stays allocation-free.
			reps := br.reps
			accLocal := make([]numeric.Welford, reps)
			var batch batchFn
			var bout []float64
			if br.newBatch != nil {
				batch = br.newBatch()
				bout = make([]float64, br.batchSize)
			}
			for {
				b := baseBlock + int(next.Add(1)-1)
				if b >= endBlock || br.canceled.Load() {
					return
				}
				if err := faultinject.Fire(fiTrialPoint); err != nil {
					br.fail(err)
					return
				}
				blo := b * trialBlock
				bhi := blo + trialBlock
				if bhi > hi {
					bhi = hi
				}
				for r := range accLocal {
					accLocal[r] = numeric.Welford{}
				}
				if batch != nil {
					for sub := blo; sub < bhi; sub += br.batchSize {
						if br.canceled.Load() {
							return
						}
						n := bhi - sub
						if n > br.batchSize {
							n = br.batchSize
						}
						batch(&ds, sub, n, bout)
						for j := 0; j < n; j++ {
							if samples != nil {
								samples[sub+j] = bout[j]
							} else {
								accLocal[(sub+j)%reps].Add(bout[j])
							}
						}
					}
				} else {
					for i := blo; i < bhi; i++ {
						if br.canceled.Load() {
							return
						}
						ds.beginTrial(br.seed, i)
						v, err := br.trial(&ds)
						if err != nil {
							br.fail(err)
							return
						}
						if samples != nil {
							samples[i] = v
						} else {
							accLocal[i%reps].Add(v)
						}
					}
				}
				if samples == nil {
					copy(accs[(b-baseBlock)*reps:], accLocal)
				}
			}
		}()
	}
	wg.Wait()
}

// ComponentMTTF estimates the MTTF of a single component.
func ComponentMTTF(ctx context.Context, c Component, cfg Config) (Result, error) {
	return SystemMTTF(ctx, []Component{c}, cfg)
}

// trialStream derives the deterministic stream for one trial. Using a
// per-trial stream makes the estimate independent of scheduling and
// worker count.
func trialStream(seed, trial uint64) *xrand.Rand {
	return xrand.New(seed*0x9e3779b97f4a7c15 + trial + 1)
}

// reseedTrialStream is trialStream without the allocation: it resets a
// reused Rand to the identical per-trial stream (xrand.Reseed matches
// xrand.New bit for bit).
//
//soferr:hotpath
func reseedTrialStream(r *xrand.Rand, seed, trial uint64) {
	r.Reseed(seed*0x9e3779b97f4a7c15 + trial + 1)
}

// trialSuperposed simulates the union process: arrivals at the summed
// rate, each attributed to a component proportionally to its rate and
// masked by that component's trace.
//
//soferr:hotpath
func trialSuperposed(components []Component, total float64, alias *aliasTable, r *xrand.Rand, maxArrivals int) (float64, error) {
	t := 0.0
	for n := 0; n < maxArrivals; n++ {
		t += r.Exp(total) //soferr:allow floatprec arrival clock; compensated summation would reorder the rounding and change every seeded trial result, and the clock's error is dwarfed by Monte-Carlo error
		c := pick(components, total, alias, r)
		if r.Bool(c.Trace.VulnAt(t)) {
			return t, nil
		}
	}
	//soferr:allow allocfree abort path past the arrival cap; the error formatting boxes its arguments off the steady state
	return 0, fmt.Errorf("montecarlo: trial exceeded %d arrivals without failure", maxArrivals) //soferr:allow hotpath abort path past the arrival cap; allocating off the steady state is fine
}

// pick selects a component with probability proportional to its rate,
// via the alias table when one was built and a linear scan otherwise.
// Both consume exactly one uniform draw.
//
//soferr:hotpath
func pick(components []Component, total float64, alias *aliasTable, r *xrand.Rand) *Component {
	if len(components) == 1 {
		return &components[0]
	}
	if alias != nil {
		return &components[alias.pick(r.Float64())]
	}
	u := r.Float64() * total
	acc := 0.0
	for i := range components {
		acc += components[i].Rate //soferr:allow floatprec CDF walk over the component rates; the alias table and this scan must keep making bitwise-identical picks for the seeded streams, and a pick is correct to within one ulp of the rate sum either way
		if u < acc {
			return &components[i]
		}
	}
	return &components[len(components)-1]
}

// trialNaive simulates each component to failure independently and
// returns the earliest failure time. A trial in which no component
// fails within the representable horizon reports +Inf, the
// never-failing answer, rather than an error.
//
//soferr:hotpath
func trialNaive(components []Component, r *xrand.Rand, maxArrivals int) (float64, error) {
	best := math.Inf(1)
	for i := range components {
		c := &components[i]
		t, failed, err := thinFirstArrival(c, r, best, maxArrivals)
		if err != nil {
			return 0, err
		}
		if failed && t < best {
			best = t
		}
	}
	return best, nil
}

// thinFirstArrival draws raw arrivals for one component and thins them
// against the trace until the first unmasked arrival, giving up once t
// exceeds cutoff (a later arrival cannot beat the running minimum).
// failed reports whether an unmasked arrival at t < cutoff was found.
//
//soferr:hotpath
func thinFirstArrival(c *Component, r *xrand.Rand, cutoff float64, maxArrivals int) (t float64, failed bool, err error) {
	if c.Rate == 0 || c.Trace.AVF() == 0 {
		return 0, false, nil
	}
	for n := 0; n < maxArrivals; n++ {
		t += r.Exp(c.Rate) //soferr:allow floatprec arrival clock; compensated summation would reorder the rounding and change every seeded trial result, and the clock's error is dwarfed by Monte-Carlo error
		if t >= cutoff {
			return 0, false, nil
		}
		if r.Bool(c.Trace.VulnAt(t)) {
			return t, true, nil
		}
	}
	//soferr:allow allocfree abort path past the arrival cap; the error formatting boxes its arguments off the steady state
	return 0, false, fmt.Errorf("montecarlo: component %s exceeded %d arrivals", c.Name, maxArrivals) //soferr:allow hotpath abort path past the arrival cap; allocating off the steady state is fine
}
