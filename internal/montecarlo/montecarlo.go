// Package montecarlo estimates MTTF from first principles, exactly as
// the paper's reference method (Section 4.3): for every trial it draws
// raw error arrivals from independent exponential inter-arrival times,
// masks each arrival according to the component's masking trace, and
// records the time of the first unmasked arrival; the system fails when
// its earliest component fails. The average over trials is the MTTF, and
// no AVF or SOFR assumption is involved.
//
// Two engines are provided:
//
//   - The naive engine simulates every component separately and takes
//     the minimum, mirroring the paper's description literally.
//   - The superposition engine exploits the fact that the union of
//     independent Poisson processes is a Poisson process of the summed
//     rate, with each arrival belonging to component i with probability
//     rate_i/total. The first unmasked arrival of the union is exactly
//     the system failure time, so the cost is independent of the number
//     of components. This is what makes the paper's 500,000-processor
//     clusters (Table 2) simulable; the two engines are property-tested
//     against each other.
package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/xrand"
)

// Component is one failure source: a raw-error Poisson process filtered
// by a masking trace.
type Component struct {
	// Name labels the component in errors and reports.
	Name string
	// Rate is the raw soft error rate in errors/second.
	Rate float64
	// Trace is the component's masking trace.
	Trace trace.Trace
}

// Engine selects the trial implementation.
type Engine int

const (
	// Superposed simulates the union Poisson process (default; exact
	// and O(1) in the number of components).
	Superposed Engine = iota + 1
	// Naive simulates each component separately and takes the minimum.
	Naive
)

// Config controls a Monte-Carlo run. The zero value is usable: it means
// DefaultTrials trials, seed 0, all engines defaulted.
type Config struct {
	// Trials is the number of independent trials (default DefaultTrials).
	Trials int
	// Seed selects the deterministic random stream. Runs with equal
	// seeds, trials, and engine produce identical results regardless of
	// worker count.
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Engine selects the trial implementation (default Superposed).
	Engine Engine
	// MaxArrivalsPerTrial aborts pathological trials (vanishing AVF with
	// a non-zero rate). Default 100 million.
	MaxArrivalsPerTrial int
}

// DefaultTrials matches the precision regime of the paper's 1,000,000
// trials closely enough for <1% standard error on every experiment while
// keeping the full design-space sweep laptop-sized.
const DefaultTrials = 200000

// Result is a Monte-Carlo MTTF estimate.
type Result struct {
	// MTTF is the mean observed time to failure in seconds.
	MTTF float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// Trials is the number of trials used.
	Trials int
}

// RelStdErr returns StdErr/MTTF (NaN for a zero-MTTF result).
func (r Result) RelStdErr() float64 { return r.StdErr / r.MTTF }

// ErrNoFailurePossible is returned when every component has AVF = 0 or
// rate = 0, so the system can never fail.
var ErrNoFailurePossible = errors.New("montecarlo: no component can ever fail (zero rate or zero AVF)")

// SystemMTTF estimates the MTTF of a series system of components.
func SystemMTTF(components []Component, cfg Config) (Result, error) {
	res, _, err := systemMTTFImpl(components, cfg)
	return res, err
}

// systemMTTFImpl runs the engine and returns both the summary and the
// raw per-trial failure times (in trial order).
func systemMTTFImpl(components []Component, cfg Config) (Result, []float64, error) {
	if len(components) == 0 {
		return Result{}, nil, errors.New("montecarlo: no components")
	}
	total := 0.0
	anyVulnerable := false
	for i, c := range components {
		if c.Rate < 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
			return Result{}, nil, fmt.Errorf("montecarlo: component %d (%s) has invalid rate %v", i, c.Name, c.Rate)
		}
		if c.Trace == nil {
			return Result{}, nil, fmt.Errorf("montecarlo: component %d (%s) has nil trace", i, c.Name)
		}
		total += c.Rate
		if c.Rate > 0 && c.Trace.AVF() > 0 {
			anyVulnerable = true
		}
	}
	if !anyVulnerable {
		return Result{}, nil, ErrNoFailurePossible
	}

	trials := cfg.Trials
	if trials <= 0 {
		trials = DefaultTrials
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	engine := cfg.Engine
	if engine == 0 {
		engine = Superposed
	}
	maxArrivals := cfg.MaxArrivalsPerTrial
	if maxArrivals <= 0 {
		maxArrivals = 100_000_000
	}

	samples := make([]float64, trials)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		trialErr error
	)
	chunk := (trials + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > trials {
			hi = trials
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				r := trialStream(cfg.Seed, uint64(i))
				var (
					v   float64
					err error
				)
				switch engine {
				case Naive:
					v, err = trialNaive(components, r, maxArrivals)
				default:
					v, err = trialSuperposed(components, total, r, maxArrivals)
				}
				if err != nil {
					mu.Lock()
					if trialErr == nil {
						trialErr = err
					}
					mu.Unlock()
					return
				}
				samples[i] = v
			}
		}(lo, hi)
	}
	wg.Wait()
	if trialErr != nil {
		return Result{}, nil, trialErr
	}

	mean, se := numeric.MeanStdErr(samples)
	return Result{MTTF: mean, StdErr: se, Trials: trials}, samples, nil
}

// ComponentMTTF estimates the MTTF of a single component.
func ComponentMTTF(c Component, cfg Config) (Result, error) {
	return SystemMTTF([]Component{c}, cfg)
}

// trialStream derives the deterministic stream for one trial. Using a
// per-trial stream makes the estimate independent of scheduling and
// worker count.
func trialStream(seed, trial uint64) *xrand.Rand {
	return xrand.New(seed*0x9e3779b97f4a7c15 + trial + 1)
}

// trialSuperposed simulates the union process: arrivals at the summed
// rate, each attributed to a component proportionally to its rate and
// masked by that component's trace.
func trialSuperposed(components []Component, total float64, r *xrand.Rand, maxArrivals int) (float64, error) {
	t := 0.0
	for n := 0; n < maxArrivals; n++ {
		t += r.Exp(total)
		c := pick(components, total, r)
		if r.Bool(c.Trace.VulnAt(t)) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("montecarlo: trial exceeded %d arrivals without failure", maxArrivals)
}

// pick selects a component with probability proportional to its rate.
func pick(components []Component, total float64, r *xrand.Rand) *Component {
	if len(components) == 1 {
		return &components[0]
	}
	u := r.Float64() * total
	acc := 0.0
	for i := range components {
		acc += components[i].Rate
		if u < acc {
			return &components[i]
		}
	}
	return &components[len(components)-1]
}

// trialNaive simulates each component to failure independently and
// returns the earliest failure time.
func trialNaive(components []Component, r *xrand.Rand, maxArrivals int) (float64, error) {
	best := math.Inf(1)
	for i := range components {
		c := &components[i]
		if c.Rate == 0 || c.Trace.AVF() == 0 {
			continue
		}
		t := 0.0
		failed := false
		for n := 0; n < maxArrivals; n++ {
			t += r.Exp(c.Rate)
			if t >= best {
				// Cannot beat the current minimum; later arrivals only
				// grow t, so this component is irrelevant to the trial.
				failed = true
				break
			}
			if r.Bool(c.Trace.VulnAt(t)) {
				best = t
				failed = true
				break
			}
		}
		if !failed {
			return 0, fmt.Errorf("montecarlo: component %s exceeded %d arrivals", c.Name, maxArrivals)
		}
	}
	if math.IsInf(best, 1) {
		return 0, errors.New("montecarlo: no component failed")
	}
	return best, nil
}
