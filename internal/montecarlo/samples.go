package montecarlo

import (
	"context"
	"errors"
	"math"
	"sort"

	"github.com/soferr/soferr/internal/numeric"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errTooFewSamples   = errors.New("montecarlo: need at least 2 samples")
	errUnsortedSamples = errors.New("montecarlo: samples not sorted")
)

// SystemTTFSamples runs the Monte-Carlo engine and returns the raw
// time-to-failure samples (sorted ascending) instead of only their
// mean. Samples expose the shape of the failure distribution, which is
// what the SOFR step assumes to be exponential — see TTFStats for
// direct tests of that assumption.
func SystemTTFSamples(ctx context.Context, components []Component, cfg Config) ([]float64, error) {
	c, err := Compile(components)
	if err != nil {
		return nil, err
	}
	samples, err := c.TTFSamples(ctx, cfg)
	if err != nil {
		return nil, err
	}
	sort.Float64s(samples)
	return samples, nil
}

// TTFStats summarizes a time-to-failure sample for distribution-shape
// analysis.
type TTFStats struct {
	// Mean and StdDev of the sample.
	Mean   float64
	StdDev float64
	// CV is the coefficient of variation, StdDev/Mean. An exponential
	// distribution has CV = 1; masking-induced clustering pushes it
	// away from 1.
	CV float64
	// Median and P90 are sample quantiles.
	Median float64
	P90    float64
	// KSExponential is the Kolmogorov-Smirnov distance between the
	// sample and an exponential distribution with the same mean: the
	// maximum absolute difference between their CDFs. Zero means
	// exactly exponential; the SOFR step implicitly assumes this is
	// small.
	KSExponential float64
}

// ComputeTTFStats summarizes sorted time-to-failure samples.
func ComputeTTFStats(sorted []float64) (TTFStats, error) {
	n := len(sorted)
	if n < 2 {
		return TTFStats{}, errTooFewSamples
	}
	for i := 1; i < n; i++ {
		if sorted[i] < sorted[i-1] {
			return TTFStats{}, errUnsortedSamples
		}
	}
	mean, se := numeric.MeanStdErr(sorted)
	sd := se * math.Sqrt(float64(n))
	st := TTFStats{
		Mean:   mean,
		StdDev: sd,
		CV:     sd / mean,
		Median: quantileSorted(sorted, 0.5),
		P90:    quantileSorted(sorted, 0.9),
	}
	// KS distance against Exp(1/mean): D = max_i |F_emp - F_exp| over
	// the sample points, evaluating the empirical CDF from both sides.
	rate := 1 / mean
	maxD := 0.0
	for i, x := range sorted {
		fExp := numeric.OneMinusExpNeg(rate * x)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if d := math.Abs(fExp - lo); d > maxD {
			maxD = d
		}
		if d := math.Abs(fExp - hi); d > maxD {
			maxD = d
		}
	}
	st.KSExponential = maxD
	return st, nil
}

// quantileSorted returns the q-quantile of a sorted sample by linear
// interpolation.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
