package montecarlo

import (
	"context"
	"math"
	"sort"
	"testing"
	"time"

	"github.com/soferr/soferr/internal/analytic"
	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
)

func TestFusedMatchesClosedForm(t *testing.T) {
	// Single component: the merged table is the component's own hazard
	// table, and the fused estimate must reproduce Derivation 1.
	cases := []struct {
		name               string
		rate, period, busy float64
	}{
		{"small rateL", 1e-3, 10, 5},
		{"moderate rateL", 0.05, 10, 5},
		{"large rateL", 0.5, 10, 2},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			tr := busyIdle(t, tt.period, tt.busy)
			want, err := analytic.BusyIdleMTTF(tt.rate, tt.period, tt.busy)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ComponentMTTF(context.Background(), Component{Rate: tt.rate, Trace: tr},
				Config{Trials: 150000, Seed: 7, Engine: Fused})
			if err != nil {
				t.Fatal(err)
			}
			if numeric.RelErr(res.MTTF, want) > 0.015 {
				t.Errorf("fused = %v, closed form = %v (relerr %v)", res.MTTF, want, numeric.RelErr(res.MTTF, want))
			}
		})
	}
}

// fusedTestSystem is a heterogeneous multi-period system whose periods
// (6, 9, 12) are commensurate with hyperperiod 36: the regime the
// merged table exists for.
func fusedTestSystem(t *testing.T) []Component {
	t.Helper()
	frac, err := trace.NewPiecewise([]trace.Segment{
		{Start: 0, End: 4, Vuln: 0.3}, {Start: 4, End: 12, Vuln: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	return []Component{
		{Name: "a", Rate: 0.05, Trace: busyIdle(t, 6, 2)},
		{Name: "b", Rate: 0.02, Trace: busyIdle(t, 9, 5)},
		{Name: "c", Rate: 0.08, Trace: frac},
	}
}

func TestFusedMatchesInvertedDistribution(t *testing.T) {
	// Fused and Inverted sample the same distribution through different
	// factorizations, so trial-level bit-identity is not expected; the
	// first-arrival distributions must agree. Compare means within
	// combined standard errors and the empirical CDFs by a two-sample
	// Kolmogorov-Smirnov bound.
	comps := fusedTestSystem(t)
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	fused, err := c.TTFSamples(context.Background(), Config{Trials: n, Seed: 3, Engine: Fused})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := c.TTFSamples(context.Background(), Config{Trials: n, Seed: 4, Engine: Inverted})
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(fused)
	sort.Float64s(inv)

	fm, fse := numeric.MeanStdErr(fused)
	im, ise := numeric.MeanStdErr(inv)
	if diff, bound := math.Abs(fm-im), 5*(fse+ise); diff > bound {
		t.Errorf("means differ: fused %v vs inverted %v (|diff| %v > %v)", fm, im, diff, bound)
	}

	// Two-sample KS distance; the alpha=0.001 critical value is
	// 1.95*sqrt((n+m)/(n*m)) ~= 0.0113 at n=m=60000.
	ks := ksTwoSample(fused, inv)
	if crit := 1.95 * math.Sqrt(2.0/float64(n)); ks > crit {
		t.Errorf("KS distance %v exceeds %v", ks, crit)
	}

	// Both engines must also agree with the exact softarch-free
	// reference: the Superposed engine thins literal arrivals.
	sup, err := c.MTTF(context.Background(), Config{Trials: n, Seed: 5, Engine: Superposed})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(fm, sup.MTTF) > 0.03 {
		t.Errorf("fused %v vs superposed %v", fm, sup.MTTF)
	}
}

// ksTwoSample returns the Kolmogorov-Smirnov distance between two
// sorted samples.
func ksTwoSample(a, b []float64) float64 {
	i, j := 0, 0
	maxD := 0.0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		d := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

func TestFusedFallbackForNonMaterializedTraces(t *testing.T) {
	// A lazy LongLoop cannot join the merge; it must be sampled
	// per-component inside the same trial, and the estimate must agree
	// with the all-inverted engine.
	inner := busyIdle(t, 1e-3, 0.5e-3)
	ll, err := trace.NewLongLoop(trace.LoopPhase{Inner: inner, Reps: trace.RepeatFor(inner, 2.0)})
	if err != nil {
		t.Fatal(err)
	}
	comps := []Component{
		{Name: "lazy", Rate: 0.03, Trace: ll},
		{Name: "piece", Rate: 0.05, Trace: busyIdle(t, 2, 0.5)},
	}
	fused, err := SystemMTTF(context.Background(), comps, Config{Trials: 60000, Seed: 9, Engine: Fused})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := SystemMTTF(context.Background(), comps, Config{Trials: 60000, Seed: 10, Engine: Inverted})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(fused.MTTF, inv.MTTF) > 0.03 {
		t.Errorf("fused %v vs inverted %v", fused.MTTF, inv.MTTF)
	}
}

func TestFusedIncommensurateFallback(t *testing.T) {
	// Incommensurate periods (1 and pi) make the merge refuse; Fused
	// must degrade to per-component inverted sampling and still match.
	comps := []Component{
		{Name: "unit", Rate: 0.1, Trace: busyIdle(t, 1, 0.4)},
		{Name: "pi", Rate: 0.07, Trace: busyIdle(t, math.Pi, 1)},
	}
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	if fs := c.fusedState(); fs.merged != nil {
		t.Fatal("incommensurate merge unexpectedly succeeded")
	}
	fused, err := c.MTTF(context.Background(), Config{Trials: 60000, Seed: 2, Engine: Fused})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := c.MTTF(context.Background(), Config{Trials: 60000, Seed: 2, Engine: Inverted})
	if err != nil {
		t.Fatal(err)
	}
	// With no merged subset the Fused trial IS the inverted trial:
	// identical samplers, identical draw order, identical streams.
	if fused.MTTF != inv.MTTF || fused.StdErr != inv.StdErr {
		t.Errorf("degraded fused %+v != inverted %+v", fused, inv)
	}

	// The bit-identity must survive component-order shuffling too: a
	// lazy trace interleaved between the (unmergeable) materialized
	// ones must be sampled in the original component order, exactly as
	// trialInverted orders its draws.
	inner := busyIdle(t, 1e-3, 0.5e-3)
	ll, err := trace.NewLongLoop(trace.LoopPhase{Inner: inner, Reps: trace.RepeatFor(inner, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	mixed := []Component{
		{Name: "unit", Rate: 0.1, Trace: busyIdle(t, 1, 0.4)},
		{Name: "lazy", Rate: 0.05, Trace: ll},
		{Name: "pi", Rate: 0.07, Trace: busyIdle(t, math.Pi, 1)},
	}
	cm, err := Compile(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if fs := cm.fusedState(); fs.merged != nil {
		t.Fatal("incommensurate mixed merge unexpectedly succeeded")
	}
	fusedMixed, err := cm.MTTF(context.Background(), Config{Trials: 20000, Seed: 5, Engine: Fused})
	if err != nil {
		t.Fatal(err)
	}
	invMixed, err := cm.MTTF(context.Background(), Config{Trials: 20000, Seed: 5, Engine: Inverted})
	if err != nil {
		t.Fatal(err)
	}
	if fusedMixed != invMixed {
		t.Errorf("degraded mixed-trace fused %+v != inverted %+v", fusedMixed, invMixed)
	}
}

func TestFusedDeterminismAcrossWorkerCounts(t *testing.T) {
	comps := fusedTestSystem(t)
	var results []Result
	for _, workers := range []int{1, 3, 8} {
		res, err := SystemMTTF(context.Background(), comps, Config{Trials: 30000, Seed: 42, Workers: workers, Engine: Fused})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for _, res := range results[1:] {
		if res != results[0] {
			t.Errorf("worker count changed fused result: %+v vs %+v", res, results[0])
		}
	}
}

func TestAdaptiveTargetRelStdErr(t *testing.T) {
	comps := fusedTestSystem(t)
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.01
	res, err := c.MTTF(context.Background(), Config{
		Trials: 200000, Seed: 6, Engine: Fused, TargetRelStdErr: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelStdErr() > target {
		t.Errorf("adaptive run stopped at RSE %v > target %v", res.RelStdErr(), target)
	}
	if res.Trials >= 200000 {
		t.Errorf("adaptive run used %d trials, expected to stop before the 200000 cap", res.Trials)
	}
	if res.Trials%trialBlock != 0 {
		t.Errorf("adaptive trial count %d is not block-aligned", res.Trials)
	}

	// An unreachable target must stop at the cap, not loop forever.
	capped, err := c.MTTF(context.Background(), Config{
		Trials: 8192, Seed: 6, Engine: Fused, TargetRelStdErr: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Trials != 8192 {
		t.Errorf("capped adaptive run used %d trials, want 8192", capped.Trials)
	}
	// The capped adaptive run covers the same trial-index prefix as a
	// fixed run of the same size: bit-identical estimates.
	fixed, err := c.MTTF(context.Background(), Config{Trials: 8192, Seed: 6, Engine: Fused})
	if err != nil {
		t.Fatal(err)
	}
	if capped.MTTF != fixed.MTTF || capped.StdErr != fixed.StdErr {
		t.Errorf("adaptive-at-cap %+v != fixed %+v", capped, fixed)
	}

	// Invalid targets are rejected.
	if _, err := c.MTTF(context.Background(), Config{Trials: 100, TargetRelStdErr: -0.5}); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := c.MTTF(context.Background(), Config{Trials: 100, TargetRelStdErr: math.NaN()}); err == nil {
		t.Error("NaN target accepted")
	}
}

func TestAdaptiveDeterminismAcrossWorkerCounts(t *testing.T) {
	// The adaptive stop decision happens at deterministic round
	// boundaries, so both the chosen trial count and the estimate must
	// be bit-identical for any worker count — for every engine.
	comps := fusedTestSystem(t)
	for _, engine := range []Engine{Superposed, Naive, Inverted, Fused} {
		var results []Result
		for _, workers := range []int{1, 2, 7} {
			res, err := SystemMTTF(context.Background(), comps, Config{
				Trials: 100000, Seed: 11, Workers: workers, Engine: engine, TargetRelStdErr: 0.02,
			})
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
		for _, res := range results[1:] {
			if res != results[0] {
				t.Errorf("%v: worker count changed adaptive result: %+v vs %+v", engine, res, results[0])
			}
		}
	}
}

func TestTrialLoopDoesNotAllocate(t *testing.T) {
	// The steady-state trial loop must not allocate per trial for any
	// engine: per-trial streams reuse one Rand per worker. Per-run
	// setup (block accumulators, the worker goroutine) is O(1) in the
	// trial count, so allocations for a 3-block run must stay far below
	// one per trial.
	comps := fusedTestSystem(t)
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const trials = 3 * trialBlock
	for _, engine := range []Engine{Superposed, Naive, Inverted, Fused} {
		// Warm lazily built state (the fused merge) outside the loop.
		if _, err := c.MTTF(ctx, Config{Trials: 16, Seed: 1, Engine: engine, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := c.MTTF(ctx, Config{Trials: trials, Seed: 1, Engine: engine, Workers: 1}); err != nil {
				t.Fatal(err)
			}
		})
		// ~10 setup allocations per run (accumulator slice, goroutine,
		// closures); one alloc per trial would be >= 12288.
		if allocs > 64 {
			t.Errorf("%v: %v allocations per %d-trial run, want O(1) setup only", engine, allocs, trials)
		}
	}
}

func TestFusedSpeedupAtN64(t *testing.T) {
	// The acceptance criterion: at 64 components the fused engine's
	// one-draw trials must beat the inverted engine's per-component
	// loop by >= 3x (the measured gap is far larger; 3x leaves room for
	// noisy CI machines).
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	const n = 64
	comps := make([]Component, n)
	for i := range comps {
		// Heterogeneous duty cycles on one shared period: every
		// component contributes its own segments to the merged table.
		busy := 1 + float64(i%17)
		comps[i] = Component{Rate: 1e-4 * float64(1+i%5), Trace: mustBusyIdleB(t, 24, busy)}
	}
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const trials = 60000
	measure := func(engine Engine) time.Duration {
		// Warm up lazy state and caches, then time single-threaded.
		if _, err := c.MTTF(ctx, Config{Trials: 256, Seed: 1, Engine: engine, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := c.MTTF(ctx, Config{Trials: trials, Seed: 1, Engine: engine, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	inv := measure(Inverted)
	fused := measure(Fused)
	if speedup := float64(inv) / float64(fused); speedup < 3 {
		t.Errorf("fused speedup at N=%d is %.1fx (inverted %v, fused %v), want >= 3x", n, speedup, inv, fused)
	}
}

// TestBatchedSpeedupAtN64 is the batched-kernel acceptance criterion:
// at 64 components the Fused engine's batched inversion kernel (the
// default block of 64) must improve per-trial cost by >= 2x over the
// scalar Inverted profile. The scalar fused kernel (BatchSize 1) is
// measured alongside and logged, so BENCH_fused.json's two framings
// (vs scalar-inverted, vs scalar-fused) are both visible here; only
// the robust inverted framing is asserted, since batching alone sits
// close to memory-bandwidth noise on small tables.
func TestBatchedSpeedupAtN64(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	const n = 64
	comps := make([]Component, n)
	for i := range comps {
		busy := 1 + float64(i%17)
		comps[i] = Component{Rate: 1e-4 * float64(1+i%5), Trace: mustBusyIdleB(t, 24, busy)}
	}
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const trials = 60000
	measure := func(engine Engine, batchSize int) time.Duration {
		if _, err := c.MTTF(ctx, Config{Trials: 256, Seed: 1, Engine: engine, Workers: 1, BatchSize: batchSize}); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := c.MTTF(ctx, Config{Trials: trials, Seed: 1, Engine: engine, Workers: 1, BatchSize: batchSize}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	inv := measure(Inverted, 0)
	scalar := measure(Fused, 1)
	batched := measure(Fused, DefaultBatchSize)
	t.Logf("N=%d: inverted %v, scalar fused %v, batched fused %v (%.2fx vs scalar fused)",
		n, inv, scalar, batched, float64(scalar)/float64(batched))
	if speedup := float64(inv) / float64(batched); speedup < 2 {
		t.Errorf("batched kernel speedup at N=%d is %.1fx vs inverted (inverted %v, batched %v), want >= 2x",
			n, speedup, inv, batched)
	}
}

func mustBusyIdleB(t *testing.T, period, busy float64) *trace.Piecewise {
	t.Helper()
	p, err := trace.BusyIdle(period, busy)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
