package montecarlo

import (
	"context"
	"math"
	"testing"

	"github.com/soferr/soferr/internal/analytic"
	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/xrand"
)

func TestInvertedAgainstClosedForm(t *testing.T) {
	// The inverted engine must reproduce Derivation 1's closed form in
	// every rate*L regime, including the extremes where the arrival-
	// enumerating engines need thousands of draws per trial.
	cases := []struct {
		name               string
		rate, period, busy float64
	}{
		{"tiny rateL", 1e-6, 10, 5},
		{"small rateL", 1e-3, 10, 5},
		{"moderate rateL", 0.05, 10, 5},
		{"large rateL", 0.5, 10, 2},
		{"huge rateL", 50, 10, 2},
		{"asymmetric", 0.2, 100, 10},
		{"narrow window", 0.01, 1000, 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			tr := busyIdle(t, tt.period, tt.busy)
			want, err := analytic.BusyIdleMTTF(tt.rate, tt.period, tt.busy)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ComponentMTTF(context.Background(), Component{Rate: tt.rate, Trace: tr},
				Config{Trials: 150000, Seed: 7, Engine: Inverted})
			if err != nil {
				t.Fatal(err)
			}
			if numeric.RelErr(res.MTTF, want) > 0.015 {
				t.Errorf("MC = %v, closed form = %v (relerr %v, stderr %v)",
					res.MTTF, want, numeric.RelErr(res.MTTF, want), res.RelStdErr())
			}
		})
	}
}

// TestEnginesAgreeWithinStdErr is the cross-engine property test: on
// every (trace, rate, seed) triple the three engines must produce MTTFs
// within 3 combined standard errors of each other. Distinct seeds per
// engine keep the estimates independent, so the 3-sigma bound holds
// with ~99.7% probability per comparison.
func TestEnginesAgreeWithinStdErr(t *testing.T) {
	fractional, err := trace.NewPiecewise([]trace.Segment{
		{Start: 0, End: 2, Vuln: 0.8},
		{Start: 2, End: 5, Vuln: 0},
		{Start: 5, End: 7, Vuln: 0.25},
		{Start: 7, End: 10, Vuln: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := []struct {
		name string
		tr   trace.Trace
	}{
		{"busyidle", mustBusyIdle(t, 10, 5)},
		{"narrow", mustBusyIdle(t, 100, 2)},
		{"fractional", fractional},
	}
	rates := []float64{1e-4, 1e-2, 1}
	seeds := []uint64{1, 99}
	const trials = 40000
	for _, trc := range traces {
		for _, rate := range rates {
			for _, seed := range seeds {
				comps := []Component{{Rate: rate, Trace: trc.tr}}
				results := make(map[Engine]Result)
				for _, e := range []Engine{Superposed, Naive, Inverted} {
					res, err := SystemMTTF(context.Background(), comps, Config{
						Trials: trials, Seed: seed + uint64(e)<<32, Engine: e,
					})
					if err != nil {
						t.Fatalf("%s rate=%g seed=%d engine=%v: %v", trc.name, rate, seed, e, err)
					}
					results[e] = res
				}
				for _, pair := range [][2]Engine{
					{Superposed, Inverted}, {Naive, Inverted}, {Superposed, Naive},
				} {
					a, b := results[pair[0]], results[pair[1]]
					diff := math.Abs(a.MTTF - b.MTTF)
					bound := 3 * math.Hypot(a.StdErr, b.StdErr)
					if diff > bound {
						t.Errorf("%s rate=%g seed=%d: %v=%v vs %v=%v differ by %v > %v",
							trc.name, rate, seed, pair[0], a.MTTF, pair[1], b.MTTF, diff, bound)
					}
				}
			}
		}
	}
}

func mustBusyIdle(t *testing.T, period, busy float64) trace.Trace {
	t.Helper()
	return busyIdle(t, period, busy)
}

func TestInvertedSystem(t *testing.T) {
	// A heterogeneous series system: inverted min-of-components must
	// agree with the superposed union engine.
	a := busyIdle(t, 10, 5)
	b := busyIdle(t, 10, 3)
	c := busyIdle(t, 24, 6)
	comps := []Component{
		{Name: "a", Rate: 0.1, Trace: a},
		{Name: "b", Rate: 0.05, Trace: b},
		{Name: "c", Rate: 0.02, Trace: c},
	}
	sup, err := SystemMTTF(context.Background(), comps, Config{Trials: 120000, Seed: 3, Engine: Superposed})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := SystemMTTF(context.Background(), comps, Config{Trials: 120000, Seed: 4, Engine: Inverted})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(sup.MTTF - inv.MTTF); diff > 3*math.Hypot(sup.StdErr, inv.StdErr) {
		t.Errorf("superposed %v vs inverted %v (diff %v)", sup.MTTF, inv.MTTF, diff)
	}
}

func TestInvertedDeterminismAcrossWorkerCounts(t *testing.T) {
	tr := busyIdle(t, 10, 4)
	cfg := func(workers int) Config {
		return Config{Trials: 20000, Seed: 42, Workers: workers, Engine: Inverted}
	}
	one, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if one.MTTF != four.MTTF || one.StdErr != four.StdErr {
		t.Errorf("worker count changed result: %+v vs %+v", one, four)
	}
}

func TestInvertedFallbackNonInvertibleTrace(t *testing.T) {
	// A LongLoop trace has no exposure table; the inverted engine must
	// fall back to thinning and still match the closed form.
	inner := busyIdle(t, 1e-3, 0.5e-3)
	reps := trace.RepeatFor(inner, 2.0)
	ll, err := trace.NewLongLoop(trace.LoopPhase{Inner: inner, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}
	const rate = 0.05
	res, err := ComponentMTTF(context.Background(), Component{Rate: rate, Trace: ll},
		Config{Trials: 60000, Seed: 21, Engine: Inverted})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (rate * 0.5)
	if numeric.RelErr(res.MTTF, want) > 0.02 {
		t.Errorf("MTTF = %v, want ~%v", res.MTTF, want)
	}
}

func TestInvertedSamplesMatchSummary(t *testing.T) {
	// The collect path (raw samples) and the streaming path must agree
	// on the mean exactly up to accumulation order.
	tr := busyIdle(t, 10, 4)
	comps := []Component{{Rate: 0.1, Trace: tr}}
	cfg := Config{Trials: 30000, Seed: 5, Engine: Inverted}
	sum, err := SystemMTTF(context.Background(), comps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := SystemTTFSamples(context.Background(), comps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != cfg.Trials {
		t.Fatalf("got %d samples, want %d", len(samples), cfg.Trials)
	}
	mean := numeric.Mean(samples)
	if numeric.RelErr(sum.MTTF, mean) > 1e-12 {
		t.Errorf("streaming mean %v vs sample mean %v", sum.MTTF, mean)
	}
}

func TestEngineNames(t *testing.T) {
	for _, e := range []Engine{Superposed, Naive, Inverted} {
		got, err := EngineByName(e.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Errorf("EngineByName(%q) = %v, want %v", e.String(), got, e)
		}
	}
	if _, err := EngineByName("warp"); err == nil {
		t.Error("unknown engine name should fail")
	}
}

func TestFailFastOnBadTrace(t *testing.T) {
	// A vanishing-AVF component with a tiny arrival cap must error out,
	// and cancellation must keep it from burning the whole budget (the
	// test would time out if every trial ran to the cap).
	p, err := trace.NewPiecewise([]trace.Segment{{Start: 0, End: 10, Vuln: 1e-15}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = SystemMTTF(
		context.Background(),
		[]Component{{Name: "bad", Rate: 1, Trace: p}},
		Config{Trials: 1 << 20, Seed: 1, Engine: Superposed, MaxArrivalsPerTrial: 100},
	)
	if err == nil {
		t.Fatal("expected an arrival-cap error")
	}
}

func TestAliasTableMatchesWeights(t *testing.T) {
	weights := []float64{5, 0, 1, 3, 1}
	tab := newAliasTable(weights)
	counts := make([]int, len(weights))
	r := xrand.New(9)
	const n = 1_000_000
	for i := 0; i < n; i++ {
		counts[tab.pick(r.Float64())]++
	}
	total := 10.0
	for i, w := range weights {
		want := float64(n) * w / total
		got := float64(counts[i])
		if w == 0 {
			if got != 0 {
				t.Errorf("zero-weight bucket %d drawn %v times", i, got)
			}
			continue
		}
		// 5-sigma binomial bound.
		sigma := math.Sqrt(float64(n) * (w / total) * (1 - w/total))
		if math.Abs(got-want) > 5*sigma {
			t.Errorf("bucket %d: got %v draws, want %v +- %v", i, got, want, 5*sigma)
		}
	}
}

func TestSuperposedAliasMatchesLinearScan(t *testing.T) {
	// >2 components switches the superposed engine to the alias
	// sampler; the estimate must agree statistically with a 2-component
	// run plus the closed-form-equivalent formulation (C identical
	// components == one component at C times the rate).
	tr := busyIdle(t, 10, 5)
	const rate = 0.02
	const c = 8
	comps := make([]Component, c)
	for i := range comps {
		comps[i] = Component{Rate: rate, Trace: tr}
	}
	multi, err := SystemMTTF(context.Background(), comps, Config{Trials: 100000, Seed: 11, Engine: Superposed})
	if err != nil {
		t.Fatal(err)
	}
	single, err := ComponentMTTF(context.Background(), Component{Rate: rate * c, Trace: tr},
		Config{Trials: 100000, Seed: 12, Engine: Superposed})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(multi.MTTF - single.MTTF); diff > 3*math.Hypot(multi.StdErr, single.StdErr) {
		t.Errorf("alias-sampled system %v vs scaled single %v", multi.MTTF, single.MTTF)
	}
}

func BenchmarkEngines(b *testing.B) {
	// Head-to-head engine cost on the same low-AVF narrow-window trace,
	// where arrival enumeration is most expensive.
	tr, err := trace.BusyIdle(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	comps := []Component{{Rate: 0.01, Trace: tr}}
	for _, e := range []Engine{Superposed, Naive, Inverted} {
		b.Run(e.String(), func(b *testing.B) {
			_, err := SystemMTTF(context.Background(), comps, Config{Trials: b.N, Seed: 1, Engine: e})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
