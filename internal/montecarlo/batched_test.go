package montecarlo

import (
	"context"
	"testing"

	"github.com/soferr/soferr/internal/trace"
)

// TestBatchedBitIdenticalToScalar is the batched kernel's determinism
// contract: for the PCG sampler, every batch size — including the
// default — produces bit-identical estimates to the scalar oracle
// (BatchSize 1), for fixed runs, adaptive runs, raw sample collection,
// and every worker count. Per-trial draws come from per-trial reseeded
// streams, so batching can only reorder the merged-table lookups, never
// the values.
func TestBatchedBitIdenticalToScalar(t *testing.T) {
	comps := fusedTestSystem(t)
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const trials = 3*trialBlock + 123
	scalar, err := c.MTTF(ctx, Config{Trials: trials, Seed: 11, Engine: Fused, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	scalarSamples, err := c.TTFSamples(ctx, Config{Trials: 2 * trialBlock, Seed: 11, Engine: Fused, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	scalarAdaptive, err := c.MTTF(ctx, Config{Trials: 4 * trialBlock, Seed: 11, Engine: Fused, BatchSize: 1, TargetRelStdErr: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, bsz := range []int{0, 2, 7, 16, 64, 256, trialBlock, 10 * trialBlock} {
		for _, workers := range []int{1, 3, 8} {
			cfg := Config{Trials: trials, Seed: 11, Engine: Fused, BatchSize: bsz, Workers: workers}
			got, err := c.MTTF(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != scalar {
				t.Errorf("BatchSize=%d Workers=%d: %+v != scalar %+v", bsz, workers, got, scalar)
			}
		}
		samples, err := c.TTFSamples(ctx, Config{Trials: 2 * trialBlock, Seed: 11, Engine: Fused, BatchSize: bsz})
		if err != nil {
			t.Fatal(err)
		}
		for i := range samples {
			if samples[i] != scalarSamples[i] {
				t.Fatalf("BatchSize=%d: sample %d differs (%v vs %v)", bsz, i, samples[i], scalarSamples[i])
			}
		}
		adaptive, err := c.MTTF(ctx, Config{Trials: 4 * trialBlock, Seed: 11, Engine: Fused, BatchSize: bsz, TargetRelStdErr: 1e-9, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if adaptive != scalarAdaptive {
			t.Errorf("BatchSize=%d adaptive: %+v != scalar %+v", bsz, adaptive, scalarAdaptive)
		}
	}
}

// TestBatchedDegradedFusedFallsBackToScalar: a fused state without a
// merged table (incommensurate periods) or with thinning components is
// not batchable, and the run must silently use the scalar kernel and
// stay bit-identical to the inverted engine (the existing degraded
// contract), whatever BatchSize says.
func TestBatchedDegradedFusedFallsBackToScalar(t *testing.T) {
	comps := []Component{
		{Name: "a", Rate: 0.05, Trace: busyIdle(t, 1.0, 0.5)},
		{Name: "b", Rate: 0.02, Trace: busyIdle(t, 1.0/3.0, 0.1)},
	}
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	if c.fusedState().batchable() {
		t.Skip("expected an unmergeable system for this test")
	}
	ctx := context.Background()
	inv, err := c.MTTF(ctx, Config{Trials: trialBlock, Seed: 5, Engine: Inverted})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := c.MTTF(ctx, Config{Trials: trialBlock, Seed: 5, Engine: Fused, BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if fused != inv {
		t.Errorf("degraded fused with BatchSize=256 = %+v, want inverted-identical %+v", fused, inv)
	}
}

// TestBatchedInvalidBatchSize: negative sizes are a configuration
// error, not a silent fallback.
func TestBatchedInvalidBatchSize(t *testing.T) {
	c, err := Compile(fusedTestSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MTTF(context.Background(), Config{Trials: 64, Engine: Fused, BatchSize: -1}); err == nil {
		t.Fatal("want error for negative BatchSize")
	}
}

// TestBatchedOtherEnginesIgnoreBatchSize: the batch kernel only exists
// for the Fused engine's merged table; other engines must run (scalar)
// and return their usual results for any BatchSize.
func TestBatchedOtherEnginesIgnoreBatchSize(t *testing.T) {
	comps := fusedTestSystem(t)
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, engine := range []Engine{Superposed, Naive, Inverted} {
		plain, err := c.MTTF(ctx, Config{Trials: trialBlock, Seed: 9, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		batched, err := c.MTTF(ctx, Config{Trials: trialBlock, Seed: 9, Engine: engine, BatchSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		if plain != batched {
			t.Errorf("engine %v: BatchSize changed the result (%+v vs %+v)", engine, plain, batched)
		}
	}
}

// opaqueTrace wraps a Piecewise but hides its exposure table: it
// satisfies trace.Trace and nothing else, forcing the engines onto the
// literal thinning fallback — the situation the batch kernel and the
// Sobol sampler must detect and refuse.
type opaqueTrace struct{ p *trace.Piecewise }

func (o opaqueTrace) Period() float64          { return o.p.Period() }
func (o opaqueTrace) AVF() float64             { return o.p.AVF() }
func (o opaqueTrace) VulnAt(t float64) float64 { return o.p.VulnAt(t) }
func (o opaqueTrace) SurvivalIntegral(rate float64) (float64, float64) {
	return o.p.SurvivalIntegral(rate)
}

// TestBatchedWithThinningComponentFallsBack: a mergeable subsystem plus
// a thinning component keeps the merged table but must refuse the
// batch kernel — thinning consumes a cutoff-dependent number of draws
// — and stay bit-identical to the scalar fused path.
func TestBatchedWithThinningComponentFallsBack(t *testing.T) {
	comps := append(fusedTestSystem(t), Component{Name: "opaque", Rate: 0.05, Trace: opaqueTrace{p: busyIdle(t, 1e-3, 0.5e-3)}})
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	fs := c.fusedState()
	if fs.merged == nil {
		t.Fatal("expected a merged table alongside the lazy component")
	}
	if fs.batchable() {
		t.Fatal("thinning component must disqualify the batch kernel")
	}
	ctx := context.Background()
	scalar, err := c.MTTF(ctx, Config{Trials: trialBlock, Seed: 13, Engine: Fused, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := c.MTTF(ctx, Config{Trials: trialBlock, Seed: 13, Engine: Fused, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if scalar != batched {
		t.Errorf("thinning fallback: %+v != %+v", batched, scalar)
	}
}

// TestDefaultBatchGateBySegments pins the table-size gate on the
// default batch kernel: tiny merged tables (where a binary search is
// one or two comparisons) stay scalar under BatchSize 0, an explicit
// BatchSize always forces the batch kernel, and the shared test system
// is big enough that the default matrix above really exercises it.
func TestDefaultBatchGateBySegments(t *testing.T) {
	tiny, err := Compile([]Component{{Name: "a", Rate: 0.05, Trace: busyIdle(t, 24, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if n := tiny.fusedState().merged.NumSegments(); n >= minBatchSegments {
		t.Fatalf("tiny system has %d merged segments, want < %d", n, minBatchSegments)
	}
	br, err := tiny.newBlockRunner(Config{Engine: Fused})
	if err != nil {
		t.Fatal(err)
	}
	if br.newBatch != nil {
		t.Error("default config batches a tiny merged table; the argsort costs more than the searches it replaces")
	}
	br, err = tiny.newBlockRunner(Config{Engine: Fused, BatchSize: DefaultBatchSize})
	if err != nil {
		t.Fatal(err)
	}
	if br.newBatch == nil {
		t.Error("explicit BatchSize did not bypass the segment gate")
	}

	big, err := Compile(fusedTestSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	if n := big.fusedState().merged.NumSegments(); n < minBatchSegments {
		t.Fatalf("fusedTestSystem has only %d merged segments; the bit-identity matrix would no longer cover the default batch path", n)
	}
	br, err = big.newBlockRunner(Config{Engine: Fused})
	if err != nil {
		t.Fatal(err)
	}
	if br.newBatch == nil {
		t.Error("default config does not batch a segment-rich merged table")
	}
}
