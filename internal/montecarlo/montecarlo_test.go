package montecarlo

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/soferr/soferr/internal/analytic"
	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
)

func busyIdle(t *testing.T, period, busy float64) *trace.Piecewise {
	t.Helper()
	p, err := trace.BusyIdle(period, busy)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAlwaysVulnerableIsExponential(t *testing.T) {
	// With AVF = 1 the first raw error is the failure: MTTF = 1/rate.
	tr, err := trace.Always(10)
	if err != nil {
		t.Fatal(err)
	}
	const rate = 0.25
	res, err := ComponentMTTF(context.Background(), Component{Name: "c", Rate: rate, Trace: tr}, Config{Trials: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(res.MTTF, 1/rate) > 0.01 {
		t.Errorf("MTTF = %v, want %v (relerr %v)", res.MTTF, 1/rate, numeric.RelErr(res.MTTF, 1/rate))
	}
}

func TestAgainstClosedForm(t *testing.T) {
	// The validation spine: Monte-Carlo must reproduce Derivation 1's
	// closed form across regimes of rate*L.
	cases := []struct {
		name               string
		rate, period, busy float64
	}{
		{"small rateL", 1e-3, 10, 5},
		{"moderate rateL", 0.05, 10, 5},
		{"large rateL", 0.5, 10, 2},
		{"asymmetric", 0.2, 100, 10},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			tr := busyIdle(t, tt.period, tt.busy)
			want, err := analytic.BusyIdleMTTF(tt.rate, tt.period, tt.busy)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ComponentMTTF(context.Background(), Component{Rate: tt.rate, Trace: tr}, Config{Trials: 150000, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if numeric.RelErr(res.MTTF, want) > 0.015 {
				t.Errorf("MC = %v, closed form = %v (relerr %v, stderr %v)",
					res.MTTF, want, numeric.RelErr(res.MTTF, want), res.RelStdErr())
			}
		})
	}
}

func TestNaiveMatchesSuperposed(t *testing.T) {
	a := busyIdle(t, 10, 5)
	b := busyIdle(t, 10, 3)
	comps := []Component{
		{Name: "a", Rate: 0.1, Trace: a},
		{Name: "b", Rate: 0.05, Trace: b},
	}
	sup, err := SystemMTTF(context.Background(), comps, Config{Trials: 120000, Seed: 3, Engine: Superposed})
	if err != nil {
		t.Fatal(err)
	}
	nai, err := SystemMTTF(context.Background(), comps, Config{Trials: 120000, Seed: 4, Engine: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(sup.MTTF, nai.MTTF) > 0.02 {
		t.Errorf("superposed %v vs naive %v (relerr %v)", sup.MTTF, nai.MTTF, numeric.RelErr(sup.MTTF, nai.MTTF))
	}
}

func TestSuperpositionManyIdenticalComponents(t *testing.T) {
	// C identical components must equal one component at C times the
	// rate (superposition theorem) — and the Monte-Carlo result must
	// agree between the two formulations.
	tr := busyIdle(t, 10, 5)
	const rate = 0.02
	const c = 64
	comps := make([]Component, c)
	for i := range comps {
		comps[i] = Component{Rate: rate, Trace: tr}
	}
	multi, err := SystemMTTF(context.Background(), comps, Config{Trials: 100000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	single, err := ComponentMTTF(context.Background(), Component{Rate: rate * c, Trace: tr}, Config{Trials: 100000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(multi.MTTF, single.MTTF) > 0.02 {
		t.Errorf("C-component system %v vs scaled single %v", multi.MTTF, single.MTTF)
	}
}

func TestDeterminism(t *testing.T) {
	tr := busyIdle(t, 10, 4)
	cfg := Config{Trials: 20000, Seed: 42}
	a, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MTTF != b.MTTF || a.StdErr != b.StdErr {
		t.Errorf("same seed differs: %v vs %v", a, b)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	tr := busyIdle(t, 10, 4)
	one, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, Config{Trials: 20000, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, Config{Trials: 20000, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if one.MTTF != four.MTTF {
		t.Errorf("worker count changed result: %v vs %v", one.MTTF, four.MTTF)
	}
}

func TestSeedMatters(t *testing.T) {
	tr := busyIdle(t, 10, 4)
	a, _ := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, Config{Trials: 5000, Seed: 1})
	b, _ := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, Config{Trials: 5000, Seed: 2})
	if a.MTTF == b.MTTF {
		t.Error("different seeds produced identical estimates")
	}
}

func TestFractionalVulnerability(t *testing.T) {
	// A constant 0.5 vulnerability halves the effective rate:
	// MTTF = 1/(rate*0.5).
	p, err := trace.NewPiecewise([]trace.Segment{{Start: 0, End: 10, Vuln: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	const rate = 0.2
	res, err := ComponentMTTF(context.Background(), Component{Rate: rate, Trace: p}, Config{Trials: 100000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(res.MTTF, 1/(rate*0.5)) > 0.015 {
		t.Errorf("MTTF = %v, want %v", res.MTTF, 1/(rate*0.5))
	}
}

func TestNeverFailingSystemReportsInfiniteMTTF(t *testing.T) {
	// A system in which no component can ever fail has a well-defined
	// MTTF of +Inf with zero standard error — not an error — from every
	// engine. Only the sample-collecting path (TTFSamples, which has no
	// distribution to return) reports ErrNoFailurePossible.
	never, err := trace.Never(10)
	if err != nil {
		t.Fatal(err)
	}
	always, err := trace.Always(10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Component{
		{Name: "zero-avf", Rate: 1, Trace: never},
		{Name: "zero-rate", Rate: 0, Trace: always},
	}
	for _, comp := range cases {
		for _, e := range []Engine{Superposed, Naive, Inverted, Fused} {
			res, err := ComponentMTTF(context.Background(), comp, Config{Trials: 10, Engine: e})
			if err != nil {
				t.Errorf("%s/%v: err = %v, want nil", comp.Name, e, err)
				continue
			}
			if !math.IsInf(res.MTTF, 1) || res.StdErr != 0 {
				t.Errorf("%s/%v: result = %+v, want MTTF +Inf with StdErr 0", comp.Name, e, res)
			}
		}
		if _, err := SystemTTFSamples(context.Background(), []Component{comp}, Config{Trials: 10}); err != ErrNoFailurePossible {
			t.Errorf("%s: TTFSamples err = %v, want ErrNoFailurePossible", comp.Name, err)
		}
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := SystemMTTF(context.Background(), nil, Config{}); err == nil {
		t.Error("empty system should fail")
	}
	tr := busyIdle(t, 10, 5)
	if _, err := SystemMTTF(context.Background(), []Component{{Rate: math.NaN(), Trace: tr}}, Config{}); err == nil {
		t.Error("NaN rate should fail")
	}
	if _, err := SystemMTTF(context.Background(), []Component{{Rate: 1, Trace: nil}}, Config{}); err == nil {
		t.Error("nil trace should fail")
	}
}

func TestStdErrShrinksWithTrials(t *testing.T) {
	tr := busyIdle(t, 10, 5)
	small, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, Config{Trials: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	large, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, Config{Trials: 128000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// 64x the trials should shrink stderr by ~8x; allow slack.
	if large.StdErr > small.StdErr/4 {
		t.Errorf("stderr did not shrink: %v (n=2k) vs %v (n=128k)", small.StdErr, large.StdErr)
	}
}

func TestLongLoopTraceWorks(t *testing.T) {
	// MC over a lazy LongLoop trace must agree with the closed form for
	// the equivalent busy/idle loop.
	inner := busyIdle(t, 1e-3, 0.5e-3)
	reps := trace.RepeatFor(inner, 2.0)
	ll, err := trace.NewLongLoop(trace.LoopPhase{Inner: inner, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}
	const rate = 0.05
	res, err := ComponentMTTF(context.Background(), Component{Rate: rate, Trace: ll}, Config{Trials: 60000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Fine-grained 50% duty cycle at tiny rate*L: MTTF ~= 1/(rate*0.5).
	want := 1 / (rate * 0.5)
	if numeric.RelErr(res.MTTF, want) > 0.02 {
		t.Errorf("MTTF = %v, want ~%v", res.MTTF, want)
	}
}

func BenchmarkSuperposedTrial(b *testing.B) {
	tr, err := trace.BusyIdle(10, 5)
	if err != nil {
		b.Fatal(err)
	}
	comps := []Component{{Rate: 0.1, Trace: tr}}
	b.ResetTimer()
	_, err = SystemMTTF(context.Background(), comps, Config{Trials: b.N, Seed: 1})
	if err != nil && err != ErrNoFailurePossible {
		b.Fatal(err)
	}
}

func TestCompiledReuseMatchesSingleUse(t *testing.T) {
	// One Compiled system must answer repeated queries — across trial
	// counts, seeds, and engines — bit-identically to fresh single-use
	// runs: the precomputed state is shared, never mutated.
	tr := busyIdle(t, 10, 4)
	comps := []Component{
		{Name: "a", Rate: 0.05, Trace: tr},
		{Name: "b", Rate: 0.2, Trace: busyIdle(t, 10, 7)},
		{Name: "c", Rate: 0.1, Trace: tr},
	}
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Trials: 20000, Seed: 1, Engine: Superposed},
		{Trials: 20000, Seed: 1, Engine: Inverted},
		{Trials: 5000, Seed: 9, Engine: Naive},
		{Trials: 20000, Seed: 1, Engine: Superposed}, // repeat of the first
	}
	for _, cfg := range cfgs {
		got, err := c.MTTF(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SystemMTTF(context.Background(), comps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("cfg %+v: compiled %+v != single-use %+v", cfg, got, want)
		}
	}
}

func TestContextCancellationMidRun(t *testing.T) {
	tr := busyIdle(t, 10, 4)
	comps := []Component{{Rate: 0.1, Trace: tr}}

	// Pre-cancelled: no work at all.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SystemMTTF(pre, comps, Config{Trials: 1000, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	// Cancelled mid-run: a huge trial budget that would take far longer
	// than the cancellation delay must stop early with ctx.Err(), and
	// return it distinctly (not as a trial error).
	ctx, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	_, err := SystemMTTF(ctx, comps, Config{Trials: 500_000_000, Seed: 1, Engine: Inverted})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancellation returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, should abort promptly", elapsed)
	}

	// TTFSamples path honors cancellation too.
	if _, err := SystemTTFSamples(pre, comps, Config{Trials: 1000, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled samples run returned %v, want context.Canceled", err)
	}
}
