package montecarlo

import (
	"errors"
	"fmt"
	"math"

	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
)

// ErrExactUnavailable is returned by Exact-engine queries on systems
// whose cumulative hazard cannot be tabulated in closed form: the
// merged table was refused (it wraps trace.ErrIncommensurate or
// trace.ErrMergedTooLarge, so errors.Is sees both the umbrella and the
// cause), or a non-materialized trace appears alongside other failing
// components. Callers fall back to a sampling engine — the sweep
// planner retries such cells with Fused.
var ErrExactUnavailable = errors.New("montecarlo: exact engine cannot tabulate this system's hazard")

// ErrExactNoSamples is returned by sample-collecting runs (TTFSamples)
// under the Exact engine: the closed-form integrator draws no random
// variates, so there are no per-trial failure times to return. MTTF
// queries are unaffected.
var ErrExactNoSamples = errors.New("montecarlo: exact engine is deterministic and has no failure-time samples to collect")

// exactExposure is the capability a single non-materialized trace must
// provide for the distribution queries (Reliability, FailureQuantile):
// an evaluable and invertible cumulative exposure. trace.Piecewise and
// the lazy trace.LongLoop both provide it.
type exactExposure interface {
	Exposure(x float64) float64
	InvertExposure(e float64) float64
}

// exactState is the Exact engine's precomputation: the one-hyperperiod
// survival integral, the per-hyperperiod hazard, and the (evaluate,
// invert) pair over the cumulative hazard H. Every exact query is then
// O(1) arithmetic plus at most one O(log S) table lookup:
//
//	MTTF           = int_0^P exp(-H(s)) ds / (1 - exp(-H(P)))
//	Reliability(t) = exp(-(k*H(P) + H(t - k*P))),  k = floor(t/P)
//	Quantile(p)    = k*P + H^-1(h - k*H(P)),       h = -log1p(-p)
//
// The geometric tail is evaluated with expm1/log1p so that H(P) near
// zero (an almost-never-failing system) cancels nothing, and H(P)
// exactly zero routes to the well-typed never-failing +Inf answer.
type exactState struct {
	// err is the typed refusal; when set, every exact query fails with
	// it (wrapping ErrExactUnavailable).
	err error
	// infinite marks a system that never fails (no live component, or
	// every per-period hazard underflowed to zero): MTTF = +Inf,
	// Reliability = 1, quantiles = +Inf.
	infinite bool
	period   float64 // hyperperiod P
	totalHaz float64 // H(P)
	integral float64 // int_0^P exp(-H(s)) ds
	mttf     float64
	// cumHaz evaluates H on [0, P]; invert is its right-continuous
	// generalized inverse. nil (with err nil) only for a single lazy
	// trace that can integrate survival but not evaluate exposure; MTTF
	// still works, the distribution queries refuse.
	cumHaz func(x float64) float64
	invert func(h float64) float64
}

// exactState returns (building on first use) the Exact engine's
// integration state. It is built independently of fusedState because
// the two treat merge refusal oppositely: Fused silently degrades to
// per-component sampling, Exact must surface the typed error.
func (c *Compiled) exactState() *exactState {
	c.exactOnce.Do(func() { c.exact = newExactState(c.components) })
	return c.exact
}

func newExactState(components []Component) *exactState {
	var live []*Component
	for i := range components {
		comp := &components[i]
		if comp.Rate == 0 || comp.Trace.AVF() == 0 {
			continue // can never fail; contributes nothing to H
		}
		live = append(live, comp)
	}
	if len(live) == 0 {
		return &exactState{infinite: true}
	}

	// All-materialized sets integrate on the merged system table, which
	// aligns every component on the common hyperperiod.
	rates := make([]float64, 0, len(live))
	pieces := make([]*trace.Piecewise, 0, len(live))
	for _, comp := range live {
		p, ok := comp.Trace.(*trace.Piecewise)
		if !ok {
			pieces = nil
			break
		}
		rates = append(rates, comp.Rate)
		pieces = append(pieces, p)
	}
	if pieces != nil {
		m, err := trace.NewMergedExposure(rates, pieces, 0)
		if err != nil {
			return &exactState{err: fmt.Errorf("%w: %w", ErrExactUnavailable, err)}
		}
		es := &exactState{
			period:   m.Period(),
			totalHaz: m.Total(),
			integral: m.SurvivalIntegral(),
			cumHaz:   m.CumHazard,
			invert:   m.Invert,
		}
		es.finish()
		return es
	}

	// A single live component needs no merge: its trace's own survival
	// integral is the system integral, and H(t) = rate * m(t). This
	// covers lazy traces (LongLoop) that cannot join a merge.
	if len(live) == 1 {
		comp := live[0]
		integral, exposure := comp.Trace.SurvivalIntegral(comp.Rate)
		es := &exactState{
			period:   comp.Trace.Period(),
			totalHaz: exposure,
			integral: integral,
		}
		if et, ok := comp.Trace.(exactExposure); ok {
			rate := comp.Rate
			es.cumHaz = func(x float64) float64 { return rate * et.Exposure(x) }
			es.invert = func(h float64) float64 { return et.InvertExposure(h / rate) }
		}
		es.finish()
		return es
	}
	return &exactState{err: fmt.Errorf("%w: non-materialized trace in a %d-component system", ErrExactUnavailable, len(live))}
}

// finish derives the MTTF from the integral and the geometric tail,
// routing a zero per-hyperperiod hazard (every exposure underflowed) to
// the never-failing answer rather than a division by zero.
func (es *exactState) finish() {
	if es.totalHaz == 0 {
		es.infinite = true
		return
	}
	// MTTF = integral * sum_{k>=0} e^(-k*H(P)) = integral/(1-e^(-H(P))).
	// OneMinusExpNeg (expm1) keeps the denominator exact for tiny H(P),
	// where 1-exp(-H(P)) computed literally would cancel to rounding
	// noise and bias the MTTF of almost-never-failing systems.
	es.mttf = es.integral / numeric.OneMinusExpNeg(es.totalHaz)
}

// ExactMTTF returns the exact system MTTF in closed form: the
// one-hyperperiod survival integral divided by the per-hyperperiod
// failure probability. Deterministic, trial-free, and zero-variance; a
// never-failing system returns +Inf. Systems whose hazard cannot be
// tabulated return ErrExactUnavailable.
func (c *Compiled) ExactMTTF() (float64, error) {
	es := c.exactState()
	if es.err != nil {
		return 0, es.err
	}
	if es.infinite {
		return math.Inf(1), nil
	}
	return es.mttf, nil
}

// ExactReliability returns the exact survival probability
// S(t) = exp(-H(t)) for t >= 0, with H extended past the hyperperiod by
// periodicity: H(t) = k*H(P) + H(t - k*P). A never-failing system
// returns 1 for every t; t = +Inf returns 0 for any failing system.
func (c *Compiled) ExactReliability(t float64) (float64, error) {
	if t < 0 || math.IsNaN(t) {
		return 0, fmt.Errorf("montecarlo: ExactReliability at invalid time %v", t)
	}
	es := c.exactState()
	if es.err != nil {
		return 0, es.err
	}
	if es.infinite {
		return 1, nil
	}
	if es.cumHaz == nil {
		return 0, fmt.Errorf("%w: trace cannot evaluate cumulative exposure", ErrExactUnavailable)
	}
	if math.IsInf(t, 1) {
		return 0, nil
	}
	k := math.Floor(t / es.period)
	rem := t - k*es.period
	if rem < 0 {
		rem = 0
	}
	// Roundoff can push the remainder to a full period; fold it back.
	if rem >= es.period {
		k++
		rem -= es.period
		if rem < 0 {
			rem = 0
		}
	}
	// k*H(P) can overflow to +Inf for astronomically large t; ExpNeg
	// clamps it to the correct limit 0.
	return numeric.ExpNeg(k*es.totalHaz + es.cumHaz(rem)), nil
}

// ExactFailureQuantile returns the exact generalized inverse of
// 1 - Reliability: the earliest instant at which the failure
// probability exceeds p. Failures only land at vulnerable instants, so
// quantiles jump across idle spans; p = 0 returns the first vulnerable
// instant, p = 1 and never-failing systems return +Inf.
func (c *Compiled) ExactFailureQuantile(p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("montecarlo: ExactFailureQuantile of invalid probability %v", p)
	}
	es := c.exactState()
	if es.err != nil {
		return 0, es.err
	}
	if es.infinite || p == 1 {
		return math.Inf(1), nil
	}
	if es.invert == nil {
		return 0, fmt.Errorf("%w: trace cannot invert cumulative exposure", ErrExactUnavailable)
	}
	// F(t) > p  <=>  H(t) > -log1p(-p). Log1p keeps tiny p exact: the
	// target hazard for p = 1e-18 is 1e-18, not the 0 that log(1-p)
	// would produce.
	h := -math.Log1p(-p)
	k := math.Floor(h / es.totalHaz)
	rem := h - k*es.totalHaz
	if rem < 0 {
		rem = 0
	}
	if rem >= es.totalHaz {
		k++
		rem -= es.totalHaz
		if rem < 0 {
			rem = 0
		}
	}
	return k*es.period + es.invert(rem), nil
}
