package montecarlo

// aliasTable samples an index with probability proportional to the
// construction weights in O(1) per draw (Walker/Vose alias method),
// replacing the O(C) linear scan over component rates that otherwise
// dominates superposed trials on large systems.
type aliasTable struct {
	prob  []float64
	alias []int32
}

// newAliasTable builds the table from nonnegative weights with a
// positive sum. Construction is O(C).
func newAliasTable(weights []float64) *aliasTable {
	n := len(weights)
	t := &aliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	// Scaled weights: mean 1 across buckets.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are exactly 1 up to rounding.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t
}

// pick maps one uniform draw u in [0, 1) to an index: the integer part
// of u*n selects the bucket and the fractional part is reused as the
// biased coin. One draw per sample keeps the stream consumption equal
// to the linear-scan sampler it replaces.
//
//soferr:hotpath
func (t *aliasTable) pick(u float64) int {
	n := len(t.prob)
	scaled := u * float64(n)
	i := int(scaled)
	if i >= n { // u == 1-ulp with n not a power of two
		i = n - 1
	}
	if scaled-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
