package montecarlo

import (
	"errors"
	"fmt"
	"strings"

	"github.com/soferr/soferr/internal/xrand"
)

// Sampler selects the uniform source feeding the trial kernels.
type Sampler int

const (
	// PCG is the default pseudo-random sampler: every trial draws from
	// its own reseeded PCG stream derived from (Config.Seed, trial
	// index). Works with every engine; converges at the Monte-Carlo
	// 1/sqrt(n) rate.
	PCG Sampler = iota
	// Sobol replaces the per-trial uniforms with coordinates of an
	// Owen-scrambled Sobol low-discrepancy sequence, so the closed-form
	// inversion kernels integrate over a point set with vanishing
	// discrepancy and converge at nearly 1/n instead of 1/sqrt(n).
	//
	// Only the Inverted and Fused engines qualify: they consume a fixed
	// number of uniforms per trial (two per closed-form inversion), so
	// trial i can be assigned point i of a fixed-dimension sequence.
	// The arrival-enumerating engines (Superposed, Naive) and systems
	// with thinning-fallback components draw a variable, value-dependent
	// number of uniforms per trial, which has no meaningful
	// low-discrepancy assignment; such runs are refused with
	// ErrSamplerUnsupported. Trials are striped across qmcReplicates
	// independently scrambled copies of the sequence, so the reported
	// standard error is the honest spread of independent replicate
	// estimates rather than the iid formula QMC invalidates.
	Sobol
)

// String returns the sampler's CLI name.
func (s Sampler) String() string {
	switch s {
	case PCG:
		return "pcg"
	case Sobol:
		return "sobol"
	default:
		return fmt.Sprintf("Sampler(%d)", int(s))
	}
}

// SamplerByName parses a CLI sampler name, case-insensitively. The
// empty string is the default PCG sampler.
func SamplerByName(name string) (Sampler, error) {
	switch strings.ToLower(name) {
	case "", "pcg":
		return PCG, nil
	case "sobol":
		return Sobol, nil
	default:
		return 0, fmt.Errorf("montecarlo: unknown sampler %q (want pcg or sobol)", name)
	}
}

// ErrSamplerUnsupported tags a run whose sampler cannot drive the
// requested engine or system: the Sobol sampler requires a fixed
// per-trial draw count, which only the closed-form Inverted and Fused
// kernels (without thinning fallbacks) provide.
var ErrSamplerUnsupported = errors.New("montecarlo: sampler unsupported for this engine or system")

// qmcReplicates is the number of independently scrambled Sobol
// replicates a QMC run stripes its trials across. It divides trialBlock
// so every block — and therefore every adaptive round boundary — is
// replicate-aligned: each replicate always holds a prefix of its own
// sequence, which keeps adaptive runs bit-identical to fixed runs of
// the same length.
const qmcReplicates = 8

// qmcState is the per-run Sobol configuration: the scrambled replicate
// sequences (immutable, shared by all workers) and the number of
// coordinates one trial consumes.
type qmcState struct {
	seqs []*xrand.ScrambledSobol
	dims int
}

// newQMCState validates Sobol eligibility for the engine's draw layout
// and builds the scrambled replicates. dims is the fixed per-trial
// uniform count; when it exceeds xrand.MaxSobolDims the trailing draws
// are padded from the per-trial PCG stream (still deterministic, and
// the leading — most variance-carrying — draws keep the
// low-discrepancy structure).
func newQMCState(seed uint64, dims int) (*qmcState, error) {
	if dims > xrand.MaxSobolDims {
		dims = xrand.MaxSobolDims
	}
	sobol, err := xrand.NewSobol(dims)
	if err != nil {
		return nil, err
	}
	qs := &qmcState{dims: dims, seqs: make([]*xrand.ScrambledSobol, qmcReplicates)}
	for r := range qs.seqs {
		// Any injective (seed, replicate) -> scramble-key map works; the
		// odd multipliers keep distinct replicates on distinct keys for
		// every seed.
		qs.seqs[r] = sobol.Scrambled(seed*0x9e3779b97f4a7c15 + uint64(r)*0xda942042e4dd58b5 + 0x6a09e667f3bcc909)
	}
	return qs, nil
}

// drawSource is the per-worker uniform source handed to trial kernels.
// In PCG mode (seq nil) every draw delegates to the reseeded per-trial
// PCG stream — bit-identical to handing the kernel the *xrand.Rand
// directly, which is the determinism contract the conformance suites
// pin. In Sobol mode the first dims draws of each trial come from the
// trial's low-discrepancy point and any further draws fall back to the
// PCG stream (over-cap dimension padding).
type drawSource struct {
	rng  xrand.Rand
	seqs []*xrand.ScrambledSobol // nil for PCG
	dims int
	di   int
	pt   [xrand.MaxSobolDims]float64
}

// initDrawSource prepares a worker-local draw source for the runner's
// sampler mode.
func (br *blockRunner) initDrawSource(ds *drawSource) {
	if br.qmc != nil {
		ds.seqs = br.qmc.seqs
		ds.dims = br.qmc.dims
	}
}

// beginTrial positions the source at the given absolute trial index:
// the PCG stream is reseeded to the trial's own substream (exactly
// reseedTrialStream), and in Sobol mode the trial's point is fetched —
// trial i maps to point i/K of replicate i%K, so replicate r sees the
// plain prefix of its own scrambled sequence.
//
//soferr:hotpath
func (ds *drawSource) beginTrial(seed uint64, trial int) {
	reseedTrialStream(&ds.rng, seed, uint64(trial))
	if ds.seqs != nil {
		k := len(ds.seqs)
		ds.seqs[trial%k].Point(uint64(trial/k), ds.pt[:ds.dims])
		ds.di = 0
	}
}

// Float64 returns the next uniform in [0, 1).
//
//soferr:hotpath
func (ds *drawSource) Float64() float64 {
	if ds.di < ds.dims {
		x := ds.pt[ds.di]
		ds.di++
		return x
	}
	return ds.rng.Float64()
}

// Float64Open returns the next uniform in (0, 1). Sobol coordinates
// are already offset off the grid and never hit 0 or 1, so in Sobol
// mode this is the same coordinate Float64 would return.
//
//soferr:hotpath
func (ds *drawSource) Float64Open() float64 {
	if ds.di < ds.dims {
		x := ds.pt[ds.di]
		ds.di++
		return x
	}
	return ds.rng.Float64Open()
}

// qmcTrialDims returns the fixed per-trial uniform draw count of the
// engine's kernel over this system, or an ErrSamplerUnsupported-wrapped
// error when the draw count is not fixed (arrival-enumerating engines,
// thinning-fallback components).
func (c *Compiled) qmcTrialDims(engine Engine) (int, error) {
	switch engine {
	case Inverted:
		return qmcInvDims(c.inv)
	case Fused:
		fs := c.fusedState()
		dims, err := qmcInvDims(fs.rest)
		if err != nil {
			return 0, err
		}
		if fs.merged != nil && fs.totalHaz > 0 {
			dims += 2
		}
		return dims, nil
	default:
		return 0, fmt.Errorf("%w: engine %v enumerates a variable number of arrivals per trial; use inverted or fused", ErrSamplerUnsupported, engine)
	}
}

// qmcInvDims counts the uniforms consumed by a slice of closed-form
// component samplers, refusing thinning fallbacks (their draw count
// depends on the sampled values).
func qmcInvDims(comps []invComp) (int, error) {
	dims := 0
	for i := range comps {
		if comps[i].thinning {
			return 0, fmt.Errorf("%w: component %q has no exposure table (thinning fallback draws a variable number of uniforms); use the pcg sampler", ErrSamplerUnsupported, comps[i].comp.Name)
		}
		// Samplers whose per-period exposure underflowed to zero return
		// +Inf without consuming draws, so they occupy no dimensions.
		if comps[i].perPeriodExposure > 0 {
			dims += 2
		}
	}
	return dims, nil
}
