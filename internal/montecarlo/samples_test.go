package montecarlo

import (
	"context"
	"math"
	"testing"

	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
)

func TestSamplesSortedAndMeanMatches(t *testing.T) {
	tr := busyIdle(t, 10, 5)
	cfg := Config{Trials: 50000, Seed: 3}
	res, err := ComponentMTTF(context.Background(), Component{Rate: 0.1, Trace: tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := SystemTTFSamples(context.Background(), []Component{{Rate: 0.1, Trace: tr}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != cfg.Trials {
		t.Fatalf("got %d samples, want %d", len(samples), cfg.Trials)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatal("samples not sorted")
		}
	}
	if numeric.RelErr(numeric.Mean(samples), res.MTTF) > 1e-12 {
		t.Errorf("sample mean %v != result MTTF %v", numeric.Mean(samples), res.MTTF)
	}
}

func TestTTFStatsExponentialHasUnitCV(t *testing.T) {
	// With AVF = 1 the TTF is exactly exponential: CV ~ 1, KS ~ 0.
	tr, err := trace.Always(10)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := SystemTTFSamples(context.Background(), []Component{{Rate: 0.5, Trace: tr}}, Config{Trials: 100000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeTTFStats(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.CV-1) > 0.02 {
		t.Errorf("CV = %v, want ~1 for exponential", st.CV)
	}
	if st.KSExponential > 0.01 {
		t.Errorf("KS distance = %v, want ~0 for exponential", st.KSExponential)
	}
	// Exponential median = mean * ln 2.
	if numeric.RelErr(st.Median, st.Mean*math.Ln2) > 0.03 {
		t.Errorf("median = %v, want %v", st.Median, st.Mean*math.Ln2)
	}
}

func TestTTFStatsMaskedIsNotExponential(t *testing.T) {
	// Non-exponentiality peaks at intermediate rate*busy: a sizable
	// fraction of trials survives the first busy window, so the TTF
	// density has holes during idle periods that no exponential can
	// match — the distributional fact behind the paper's SOFR critique
	// (Section 3.2). (At very large rate*busy almost all failures land
	// in the first busy window and the TTF is again nearly exponential.)
	tr := busyIdle(t, 10, 5)
	samples, err := SystemTTFSamples(context.Background(), []Component{{Rate: 0.2, Trace: tr}}, Config{Trials: 100000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeTTFStats(samples)
	if err != nil {
		t.Fatal(err)
	}
	if st.KSExponential < 0.04 {
		t.Errorf("KS distance = %v; masked TTF at rate*busy~1 should be visibly non-exponential", st.KSExponential)
	}
}

func TestTTFStatsLowRateIsNearlyExponential(t *testing.T) {
	// Section 3.2.1: as rate*L -> 0 the masked TTF tends to exponential
	// with rate lambda*AVF.
	tr := busyIdle(t, 10, 5)
	samples, err := SystemTTFSamples(context.Background(), []Component{{Rate: 1e-3, Trace: tr}}, Config{Trials: 100000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeTTFStats(samples)
	if err != nil {
		t.Fatal(err)
	}
	if st.KSExponential > 0.01 {
		t.Errorf("KS = %v, want ~0 at tiny rate*L", st.KSExponential)
	}
	if math.Abs(st.CV-1) > 0.02 {
		t.Errorf("CV = %v, want ~1 at tiny rate*L", st.CV)
	}
}

func TestComputeTTFStatsValidation(t *testing.T) {
	if _, err := ComputeTTFStats(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := ComputeTTFStats([]float64{2, 1}); err == nil {
		t.Error("unsorted sample accepted")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := quantileSorted(xs, 0.5); q != 3 {
		t.Errorf("median = %v, want 3", q)
	}
	if q := quantileSorted(xs, 0); q != 1 {
		t.Errorf("min = %v", q)
	}
	if q := quantileSorted(xs, 1); q != 5 {
		t.Errorf("max = %v", q)
	}
	if q := quantileSorted(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v, want 2", q)
	}
	if !math.IsNaN(quantileSorted(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestComputeTTFStatsEdgeCases(t *testing.T) {
	// Too-short samples have no spread to summarize.
	if _, err := ComputeTTFStats(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := ComputeTTFStats([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := ComputeTTFStats([]float64{2, 1}); err == nil {
		t.Error("unsorted sample accepted")
	}

	// A duplicate-value plateau is legal sorted input: quantiles land on
	// the plateau and the KS distance stays in [0, 1].
	plateau := []float64{1, 2, 2, 2, 2, 2, 2, 3}
	st, err := ComputeTTFStats(plateau)
	if err != nil {
		t.Fatal(err)
	}
	if st.Median != 2 {
		t.Errorf("plateau median = %v, want 2", st.Median)
	}
	if st.KSExponential < 0 || st.KSExponential > 1 {
		t.Errorf("KS distance %v outside [0, 1]", st.KSExponential)
	}

	// All-equal samples: zero spread, CV 0, both quantiles on the value.
	flat := []float64{5, 5, 5, 5}
	st, err = ComputeTTFStats(flat)
	if err != nil {
		t.Fatal(err)
	}
	if st.StdDev != 0 || st.CV != 0 || st.Median != 5 || st.P90 != 5 {
		t.Errorf("flat sample stats = %+v", st)
	}
}

func TestQuantileSortedEdgeCases(t *testing.T) {
	if got := quantileSorted(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
	one := []float64{7}
	for _, q := range []float64{0, 0.5, 1} {
		if got := quantileSorted(one, q); got != 7 {
			t.Errorf("single-sample quantile(%v) = %v, want 7", q, got)
		}
	}
	s := []float64{1, 2, 3, 4}
	// q <= 0 clamps to the minimum, q >= 1 to the maximum.
	if got := quantileSorted(s, 0); got != 1 {
		t.Errorf("quantile(0) = %v, want 1", got)
	}
	if got := quantileSorted(s, -0.5); got != 1 {
		t.Errorf("quantile(-0.5) = %v, want 1", got)
	}
	if got := quantileSorted(s, 1); got != 4 {
		t.Errorf("quantile(1) = %v, want 4", got)
	}
	if got := quantileSorted(s, 2); got != 4 {
		t.Errorf("quantile(2) = %v, want 4", got)
	}
	// Interior quantiles interpolate linearly over n-1 gaps.
	if got := quantileSorted(s, 0.5); got != 2.5 {
		t.Errorf("quantile(0.5) = %v, want 2.5", got)
	}
	if got, want := quantileSorted(s, 1.0/3), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("quantile(1/3) = %v, want %v", got, want)
	}
	// Plateaus: interpolation between equal values stays on the value.
	p := []float64{1, 2, 2, 2, 3}
	if got := quantileSorted(p, 0.5); got != 2 {
		t.Errorf("plateau quantile(0.5) = %v, want 2", got)
	}
}
