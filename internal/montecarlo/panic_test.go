package montecarlo

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/soferr/soferr/internal/faultinject"
)

// panicTrace is a masking trace whose VulnAt panics after a scripted
// number of calls — the "corrupted trace implementation" failure mode
// the worker containment must survive.
type panicTrace struct {
	period, avf float64
	after       int64
	calls       atomic.Int64
}

func (p *panicTrace) Period() float64 { return p.period }
func (p *panicTrace) AVF() float64    { return p.avf }
func (p *panicTrace) VulnAt(t float64) float64 {
	if p.calls.Add(1) > p.after {
		panic("panicTrace: scripted trace failure")
	}
	return p.avf
}
func (p *panicTrace) SurvivalIntegral(rate float64) (float64, float64) {
	return p.period, p.avf * p.period
}

// TestTrialPanicContained: a panicking trace surfaces as a typed
// ErrTrialPanic error on the estimate path — carrying the panic value
// — instead of crashing the process, for both summary and
// sample-collecting runs.
func TestTrialPanicContained(t *testing.T) {
	for _, collect := range []bool{false, true} {
		tr := &panicTrace{period: 10, avf: 0.5, after: 100}
		comp := []Component{{Name: "bad", Rate: 0.1, Trace: tr}}
		cfg := Config{Trials: 20000, Seed: 1, Engine: Superposed, Workers: 4}
		var err error
		if collect {
			_, err = func() ([]float64, error) {
				c, cerr := Compile(comp)
				if cerr != nil {
					return nil, cerr
				}
				return c.TTFSamples(context.Background(), cfg)
			}()
		} else {
			_, err = SystemMTTF(context.Background(), comp, cfg)
		}
		if !errors.Is(err, ErrTrialPanic) {
			t.Fatalf("collect=%v: err = %v, want ErrTrialPanic", collect, err)
		}
		if !strings.Contains(err.Error(), "scripted trace failure") {
			t.Errorf("collect=%v: error %q lacks the panic value", collect, err)
		}
	}
}

// TestTrialPanicContainedAdaptive: the adaptive doubling rounds share
// the containment (they run on the same blockRunner).
func TestTrialPanicContainedAdaptive(t *testing.T) {
	tr := &panicTrace{period: 10, avf: 0.5, after: 100}
	_, err := SystemMTTF(context.Background(),
		[]Component{{Name: "bad", Rate: 0.1, Trace: tr}},
		Config{Trials: 20000, Seed: 1, Engine: Superposed, Workers: 4, TargetRelStdErr: 0.01})
	if !errors.Is(err, ErrTrialPanic) {
		t.Fatalf("adaptive err = %v, want ErrTrialPanic", err)
	}
}

// TestInjectedTrialPanicContained drives the same containment through
// the chaos injection point: an armed montecarlo.trial panic rule
// fires inside a worker goroutine mid-run, and the run must return
// ErrTrialPanic. Disarmed, the identical seeded run must then be
// bit-identical to a reference run that never saw injection — the
// miss-is-bit-identical half of the fault-injection contract.
func TestInjectedTrialPanicContained(t *testing.T) {
	tr := busyIdle(t, 10, 5)
	comp := []Component{{Name: "c", Rate: 0.1, Trace: tr}}
	cfg := Config{Trials: 20000, Seed: 3, Engine: Inverted, Workers: 4}

	want, err := SystemMTTF(context.Background(), comp, cfg)
	if err != nil {
		t.Fatal(err)
	}

	disarm := faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "montecarlo.trial", Hits: []int{2}, PanicMsg: "chaos"},
	}})
	_, err = SystemMTTF(context.Background(), comp, cfg)
	disarm()
	if !errors.Is(err, ErrTrialPanic) {
		t.Fatalf("injected panic: err = %v, want ErrTrialPanic", err)
	}

	got, err := SystemMTTF(context.Background(), comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-disarm run differs from reference: %+v vs %+v", got, want)
	}
}

// TestInjectedRelayPanicContained pins the containment of the
// context-cancellation relay goroutine: an armed montecarlo.cancelrelay
// panic rule fires inside the relay (which only runs for cancelable
// contexts), and the run must survive it and report a typed
// ErrTrialPanic instead of crashing the process. Disarmed, the
// identical cancelable-context run must match a Background-context run
// bit-for-bit — the relay never perturbs results.
func TestInjectedRelayPanicContained(t *testing.T) {
	tr := busyIdle(t, 10, 5)
	comp := []Component{{Name: "c", Rate: 0.1, Trace: tr}}
	cfg := Config{Trials: 8192, Seed: 1, Engine: Inverted, Workers: 4}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	disarm := faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "montecarlo.cancelrelay", PanicMsg: "relay chaos"},
	}})
	_, err := SystemMTTF(ctx, comp, cfg)
	disarm()
	if !errors.Is(err, ErrTrialPanic) {
		t.Fatalf("injected relay panic: err = %v, want ErrTrialPanic", err)
	}
	if !strings.Contains(err.Error(), "cancellation relay") || !strings.Contains(err.Error(), "relay chaos") {
		t.Errorf("error %q lacks the relay panic detail", err)
	}

	want, err := SystemMTTF(context.Background(), comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SystemMTTF(ctx, comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("cancelable-context run differs from reference: %+v vs %+v", got, want)
	}
}

// TestInjectedRelayErrorContained: an injected error (no panic) at the
// relay point also fails the run cleanly, wrapping ErrInjected — on
// the adaptive path too, where the relay failure must not be lost to a
// round boundary that converged first.
func TestInjectedRelayErrorContained(t *testing.T) {
	tr := busyIdle(t, 10, 5)
	comp := []Component{{Name: "c", Rate: 0.1, Trace: tr}}
	for _, cfg := range []Config{
		{Trials: 8192, Seed: 1, Engine: Inverted},
		{Trials: 8192, Seed: 1, Engine: Inverted, TargetRelStdErr: 0.05},
	} {
		disarm := faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
			{Point: "montecarlo.cancelrelay"},
		}})
		ctx, cancel := context.WithCancel(context.Background())
		_, err := SystemMTTF(ctx, comp, cfg)
		cancel()
		disarm()
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("adaptive=%v: err = %v, want ErrInjected", cfg.TargetRelStdErr > 0, err)
		}
	}
}

// TestInjectedTrialErrorContained: an injected error (no panic) at the
// trial point also fails the run cleanly, wrapping ErrInjected.
func TestInjectedTrialErrorContained(t *testing.T) {
	defer faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "montecarlo.trial", Hits: []int{1}},
	}})()
	tr := busyIdle(t, 10, 5)
	_, err := SystemMTTF(context.Background(),
		[]Component{{Name: "c", Rate: 0.1, Trace: tr}},
		Config{Trials: 8192, Seed: 1, Engine: Inverted})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}
