package montecarlo

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/soferr/soferr/internal/numeric"
)

// TestSobolSamplerMatchesExact: the QMC estimate is consistent — it
// converges to the same MTTF the closed-form engine computes, with a
// replicate standard error that honestly covers the gap.
func TestSobolSamplerMatchesExact(t *testing.T) {
	comps := fusedTestSystem(t)
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ExactMTTF()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, engine := range []Engine{Inverted, Fused} {
		res, err := c.MTTF(ctx, Config{Trials: 2 * trialBlock, Seed: 17, Engine: engine, Sampler: Sobol})
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if numeric.RelErr(res.MTTF, want) > 0.01 {
			t.Errorf("engine %v: QMC MTTF = %v, exact = %v (relerr %v)", engine, res.MTTF, want, numeric.RelErr(res.MTTF, want))
		}
		if !(res.StdErr > 0) || math.IsInf(res.StdErr, 0) {
			t.Errorf("engine %v: replicate stderr = %v, want finite positive", engine, res.StdErr)
		}
		if math.Abs(res.MTTF-want) > 6*res.StdErr {
			t.Errorf("engine %v: |est-exact| = %v exceeds 6 stderr (%v)", engine, math.Abs(res.MTTF-want), res.StdErr)
		}
	}
}

// TestSobolSamplerDeterminism: QMC runs are bit-identical across worker
// counts and batch sizes, and adaptive runs that stop at the cap equal
// the fixed run of the same length — the same contract the PCG sampler
// has always had.
func TestSobolSamplerDeterminism(t *testing.T) {
	comps := fusedTestSystem(t)
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const trials = 2 * trialBlock
	ref, err := c.MTTF(ctx, Config{Trials: trials, Seed: 23, Engine: Fused, Sampler: Sobol, Workers: 1, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 8} {
		for _, bsz := range []int{1, 64, 509} {
			got, err := c.MTTF(ctx, Config{Trials: trials, Seed: 23, Engine: Fused, Sampler: Sobol, Workers: workers, BatchSize: bsz})
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("workers=%d batch=%d: %+v != %+v", workers, bsz, got, ref)
			}
		}
	}
	// Adaptive at an unreachable target stops at the cap and must equal
	// the fixed run of the same length.
	adaptive, err := c.MTTF(ctx, Config{Trials: trials, Seed: 23, Engine: Fused, Sampler: Sobol, TargetRelStdErr: 1e-12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive != ref {
		t.Errorf("adaptive-at-cap %+v != fixed %+v", adaptive, ref)
	}
	// Different seeds scramble differently.
	other, err := c.MTTF(ctx, Config{Trials: trials, Seed: 24, Engine: Fused, Sampler: Sobol})
	if err != nil {
		t.Fatal(err)
	}
	if other.MTTF == ref.MTTF {
		t.Error("different seeds produced identical QMC estimates")
	}
}

// TestSobolSamplerRejectsUnsupported: arrival-enumerating engines and
// thinning-fallback systems have no fixed per-trial draw count, so the
// Sobol sampler must refuse them with the typed error.
func TestSobolSamplerRejectsUnsupported(t *testing.T) {
	c, err := Compile(fusedTestSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, engine := range []Engine{Superposed, Naive} {
		_, err := c.MTTF(ctx, Config{Trials: 64, Engine: engine, Sampler: Sobol})
		if !errors.Is(err, ErrSamplerUnsupported) {
			t.Errorf("engine %v: err = %v, want ErrSamplerUnsupported", engine, err)
		}
	}

	opaque, err := Compile([]Component{{Name: "opaque", Rate: 0.05, Trace: opaqueTrace{p: busyIdle(t, 1e-3, 0.5e-3)}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{Inverted, Fused} {
		_, err := opaque.MTTF(ctx, Config{Trials: 64, Engine: engine, Sampler: Sobol})
		if !errors.Is(err, ErrSamplerUnsupported) {
			t.Errorf("opaque %v: err = %v, want ErrSamplerUnsupported", engine, err)
		}
	}

	// The Exact engine ignores samplers entirely: no trials, no draws.
	if _, err := c.MTTF(ctx, Config{Engine: Exact, Sampler: Sobol}); err != nil {
		t.Errorf("exact engine with sampler set: %v", err)
	}
}

// TestSamplerByName mirrors EngineByName's contract.
func TestSamplerByName(t *testing.T) {
	cases := []struct {
		in   string
		want Sampler
		ok   bool
	}{
		{"", PCG, true}, {"pcg", PCG, true}, {"PCG", PCG, true},
		{"sobol", Sobol, true}, {"Sobol", Sobol, true},
		{"halton", 0, false}, {"bogus", 0, false},
	}
	for _, tt := range cases {
		got, err := SamplerByName(tt.in)
		if tt.ok && (err != nil || got != tt.want) {
			t.Errorf("SamplerByName(%q) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
		if !tt.ok && err == nil {
			t.Errorf("SamplerByName(%q): want error", tt.in)
		}
	}
	for _, s := range []Sampler{PCG, Sobol} {
		back, err := SamplerByName(s.String())
		if err != nil || back != s {
			t.Errorf("round-trip %v failed: %v, %v", s, back, err)
		}
	}
}

// TestSobolAdaptiveConvergesFasterThanPCG is the headline convergence
// property at test scale: on a reference system, the adaptive loop at a
// moderate precision target stops at no more trials under QMC than
// under PCG. The non-short benchmark suite asserts the stronger <= 1/2
// factor on the SPEC-trace profile (see TestQMCTrialsToTargetHalved).
func TestSobolAdaptiveConvergesFasterThanPCG(t *testing.T) {
	comps := fusedTestSystem(t)
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const target = 0.004
	const cap = 64 * trialBlock
	pcg, err := c.MTTF(ctx, Config{Trials: cap, Seed: 1, Engine: Fused, TargetRelStdErr: target})
	if err != nil {
		t.Fatal(err)
	}
	qmc, err := c.MTTF(ctx, Config{Trials: cap, Seed: 1, Engine: Fused, TargetRelStdErr: target, Sampler: Sobol})
	if err != nil {
		t.Fatal(err)
	}
	if pcg.Trials >= cap {
		t.Fatalf("PCG did not converge below the cap (%d trials); tighten the test setup", pcg.Trials)
	}
	if qmc.Trials > pcg.Trials {
		t.Errorf("QMC needed %d trials, PCG %d: expected QMC <= PCG at target %v", qmc.Trials, pcg.Trials, target)
	}
	if qmc.RelStdErr() > target {
		t.Errorf("QMC stopped above target: rse=%v", qmc.RelStdErr())
	}
}

// TestSobolManyComponentsPadsDims: a system needing more uniforms per
// trial than the Sobol dimension cap still runs (trailing draws pad
// from the per-trial PCG stream) and stays consistent with the exact
// answer and deterministic across worker counts.
func TestSobolManyComponentsPadsDims(t *testing.T) {
	var comps []Component
	for i := 0; i < 40; i++ { // 80 dims needed > 64 cap
		comps = append(comps, Component{
			Rate:  1e-3 * float64(1+i%5),
			Trace: busyIdle(t, 8, float64(1+i%7)),
		})
	}
	c, err := Compile(comps)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res1, err := c.MTTF(ctx, Config{Trials: trialBlock, Seed: 3, Engine: Inverted, Sampler: Sobol, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := c.MTTF(ctx, Config{Trials: trialBlock, Seed: 3, Engine: Inverted, Sampler: Sobol, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res4 {
		t.Errorf("worker count changed padded-dims result: %+v vs %+v", res1, res4)
	}
	want, err := c.ExactMTTF()
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(res1.MTTF, want) > 0.05 {
		t.Errorf("padded QMC MTTF = %v, exact = %v", res1.MTTF, want)
	}
}
