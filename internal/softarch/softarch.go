// Package softarch implements a SoftArch-style first-principles MTTF
// model (Li et al., DSN 2005; Section 5.4 of the reproduced paper).
//
// SoftArch tracks the probability that each value produced during
// execution is erroneous (error generation, proportional to the raw
// error rate and the time a structure holds live state) and when such
// values affect program output, and from these derives the mean time to
// first failure directly — without the AVF step's uniform-vulnerability
// assumption or the SOFR step's exponential-time-to-failure assumption.
//
// Under the masking model of Section 4 (an unmasked raw error is a
// failure at its arrival time), the SoftArch bookkeeping collapses to an
// exact survival computation over the masking trace. For a component
// with raw error rate r and cumulative vulnerability exposure m(t), the
// probability that no failure has occurred by time t is
//
//	S(t) = exp(-r * m(t))
//
// because unmasked errors form an inhomogeneous Poisson process with
// intensity r * vuln(t). The MTTF is the integral of S over [0, inf),
// which the periodic structure of the workload reduces to a single
// period (the geometric tail sums in closed form):
//
//	MTTF = (int_0^L exp(-r*m(s)) ds) / (1 - exp(-r*m(L)))
//
// For a series system the survival functions multiply, which is the
// superposition of the components' error processes. No exponential or
// uniform assumption is made anywhere: this is the same quantity the
// Monte-Carlo engine estimates, computed in closed form.
package softarch

import (
	"errors"
	"fmt"
	"math"

	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNilTrace = errors.New("softarch: nil trace")
)

// Component mirrors montecarlo.Component: a raw-error rate in
// errors/second and a masking trace.
type Component struct {
	Name  string
	Rate  float64
	Trace trace.Trace
}

// ComponentMTTF returns the exact first-principles MTTF of a single
// component in seconds. It returns +Inf when the component can never
// fail (zero rate or zero AVF).
func ComponentMTTF(rate float64, tr trace.Trace) (float64, error) {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return 0, fmt.Errorf("softarch: invalid rate %v", rate)
	}
	if tr == nil {
		return 0, errNilTrace
	}
	if rate == 0 || tr.AVF() == 0 {
		return math.Inf(1), nil
	}
	integral, exposure := tr.SurvivalIntegral(rate)
	if exposure <= 0 {
		return math.Inf(1), nil
	}
	return integral / numeric.OneMinusExpNeg(exposure), nil
}

// SystemMTTF returns the exact first-principles MTTF of a series system.
//
// All component traces must share the same period so that the joint
// survival function remains periodic. Components whose traces are
// *trace.Piecewise are merged by rate-weighted union (exact, because
// Poisson intensities add); a single component of any trace type —
// including the lazy LongLoop used for day-scale workloads — is handled
// directly.
func SystemMTTF(components []Component) (float64, error) {
	live := make([]Component, 0, len(components))
	for i, c := range components {
		if c.Rate < 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
			return 0, fmt.Errorf("softarch: component %d (%s) has invalid rate %v", i, c.Name, c.Rate)
		}
		if c.Trace == nil {
			return 0, fmt.Errorf("softarch: component %d (%s) has nil trace", i, c.Name)
		}
		if c.Rate > 0 && c.Trace.AVF() > 0 {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return math.Inf(1), nil
	}
	if len(live) == 1 {
		return ComponentMTTF(live[0].Rate, live[0].Trace)
	}

	rates := make([]float64, len(live))
	pieces := make([]*trace.Piecewise, len(live))
	total := 0.0
	for i, c := range live {
		p, ok := c.Trace.(*trace.Piecewise)
		if !ok {
			return 0, fmt.Errorf("softarch: component %d (%s): multi-component systems need materialized (Piecewise) traces, got %T", i, c.Name, c.Trace)
		}
		pieces[i] = p
		rates[i] = c.Rate
		total += c.Rate
	}
	union, err := trace.WeightedUnion(rates, pieces)
	if err != nil {
		return 0, fmt.Errorf("softarch: %w", err)
	}
	return ComponentMTTF(total, union)
}
