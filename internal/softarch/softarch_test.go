package softarch

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"github.com/soferr/soferr/internal/analytic"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/xrand"
)

func busyIdle(t *testing.T, period, busy float64) *trace.Piecewise {
	t.Helper()
	p, err := trace.BusyIdle(period, busy)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMatchesClosedForm(t *testing.T) {
	// SoftArch's survival computation must agree exactly with
	// Derivation 1 on the busy/idle loop — both are first principles.
	f := func(rawRate, rawL, rawA float64) bool {
		rate := math.Mod(math.Abs(rawRate), 10) + 1e-5
		l := math.Mod(math.Abs(rawL), 100) + 0.1
		a := math.Mod(math.Abs(rawA), l*0.98) + l*0.01
		tr, err := trace.BusyIdle(l, a)
		if err != nil {
			return false
		}
		got, err := ComponentMTTF(rate, tr)
		if err != nil {
			return false
		}
		want, err := analytic.BusyIdleMTTF(rate, l, a)
		if err != nil {
			return false
		}
		return numeric.RelErr(got, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAlwaysVulnerable(t *testing.T) {
	tr, err := trace.Always(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComponentMTTF(2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(got, 0.5) > 1e-12 {
		t.Errorf("MTTF = %v, want 0.5", got)
	}
}

func TestNeverVulnerableInfinite(t *testing.T) {
	tr, err := trace.Never(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComponentMTTF(2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("MTTF = %v, want +Inf", got)
	}
}

func TestZeroRateInfinite(t *testing.T) {
	tr, err := trace.Always(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComponentMTTF(0, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("MTTF = %v, want +Inf", got)
	}
}

func TestMatchesMonteCarloRandomTraces(t *testing.T) {
	// Random piecewise traces: SoftArch (exact) vs Monte-Carlo
	// (sampled) must agree within a few standard errors.
	r := xrand.New(2024)
	for trial := 0; trial < 8; trial++ {
		nSeg := 2 + r.Intn(6)
		segs := make([]trace.Segment, nSeg)
		cursor := 0.0
		for i := 0; i < nSeg; i++ {
			length := 0.5 + 4*r.Float64()
			segs[i] = trace.Segment{Start: cursor, End: cursor + length, Vuln: r.Float64()}
			cursor += length
		}
		p, err := trace.NewPiecewise(segs)
		if err != nil {
			t.Fatal(err)
		}
		rate := 0.01 + r.Float64()*0.5
		exact, err := ComponentMTTF(rate, p)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := montecarlo.ComponentMTTF(
			context.Background(),
			montecarlo.Component{Rate: rate, Trace: p},
			montecarlo.Config{Trials: 80000, Seed: uint64(trial) + 1},
		)
		if err != nil {
			t.Fatal(err)
		}
		if numeric.RelErr(mc.MTTF, exact) > 0.02 {
			t.Errorf("trial %d: MC %v vs exact %v (relerr %v)", trial, mc.MTTF, exact, numeric.RelErr(mc.MTTF, exact))
		}
	}
}

func TestSystemEqualsScaledSingle(t *testing.T) {
	// n identical components == single component at n-times the rate.
	tr := busyIdle(t, 10, 4)
	const rate = 0.03
	comps := make([]Component, 5)
	for i := range comps {
		comps[i] = Component{Rate: rate, Trace: tr}
	}
	multi, err := SystemMTTF(comps)
	if err != nil {
		t.Fatal(err)
	}
	single, err := ComponentMTTF(5*rate, tr)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(multi, single) > 1e-9 {
		t.Errorf("system %v vs scaled single %v", multi, single)
	}
}

func TestSystemHeterogeneousAgainstMC(t *testing.T) {
	a := busyIdle(t, 10, 6)
	b := busyIdle(t, 10, 2)
	comps := []Component{
		{Name: "a", Rate: 0.05, Trace: a},
		{Name: "b", Rate: 0.2, Trace: b},
	}
	exact, err := SystemMTTF(comps)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := montecarlo.SystemMTTF(context.Background(), []montecarlo.Component{
		{Name: "a", Rate: 0.05, Trace: a},
		{Name: "b", Rate: 0.2, Trace: b},
	}, montecarlo.Config{Trials: 120000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(mc.MTTF, exact) > 0.02 {
		t.Errorf("MC %v vs exact %v", mc.MTTF, exact)
	}
}

func TestSystemAllDeadInfinite(t *testing.T) {
	never, err := trace.Never(10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SystemMTTF([]Component{{Rate: 1, Trace: never}, {Rate: 0, Trace: never}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("MTTF = %v, want +Inf", got)
	}
}

func TestSystemPeriodMismatchFails(t *testing.T) {
	a := busyIdle(t, 10, 5)
	b := busyIdle(t, 20, 5)
	if _, err := SystemMTTF([]Component{{Rate: 1, Trace: a}, {Rate: 1, Trace: b}}); err == nil {
		t.Error("expected period mismatch error")
	}
}

func TestValidation(t *testing.T) {
	tr := busyIdle(t, 10, 5)
	if _, err := ComponentMTTF(math.NaN(), tr); err == nil {
		t.Error("NaN rate should fail")
	}
	if _, err := ComponentMTTF(1, nil); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := SystemMTTF([]Component{{Rate: -1, Trace: tr}}); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestLongLoopSingleComponent(t *testing.T) {
	inner := busyIdle(t, 1e-3, 0.25e-3)
	ll, err := trace.NewLongLoop(trace.LoopPhase{Inner: inner, Reps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComponentMTTF(0.05, ll)
	if err != nil {
		t.Fatal(err)
	}
	// Fine-grained loop at small rate*L: ~1/(rate*AVF).
	want := 1 / (0.05 * 0.25)
	if numeric.RelErr(got, want) > 1e-3 {
		t.Errorf("MTTF = %v, want ~%v", got, want)
	}
}
