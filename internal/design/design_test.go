package design

import (
	"math"
	"testing"

	"github.com/soferr/soferr/internal/units"
)

func TestTable2Dimensions(t *testing.T) {
	if len(ElementCounts) != 5 || ElementCounts[0] != 1e5 || ElementCounts[4] != 1e9 {
		t.Errorf("ElementCounts = %v, want Table 2's 1e5..1e9", ElementCounts)
	}
	if len(ScaleFactors) != 5 || ScaleFactors[0] != 1 || ScaleFactors[4] != 5000 {
		t.Errorf("ScaleFactors = %v", ScaleFactors)
	}
	if len(ComponentCounts) != 5 || ComponentCounts[0] != 2 || ComponentCounts[4] != 500000 {
		t.Errorf("ComponentCounts = %v", ComponentCounts)
	}
	if len(Workloads()) != 5 {
		t.Errorf("Workloads = %v, want 5 families", Workloads())
	}
}

func TestSection41Rates(t *testing.T) {
	// The paper's component rates, errors/year.
	if IntUnitRatePerYear != 2.3e-6 || FPUnitRatePerYear != 4.5e-6 ||
		DecodeUnitRatePerYear != 3.3e-6 || RegFileRatePerYear != 1.0e-4 {
		t.Error("Section 4.1 rates drifted from the paper")
	}
}

func TestRatePerSecond(t *testing.T) {
	// N=1e9, S=1 => 10 errors/year.
	got := units.PerSecondToPerYear(RatePerSecond(1e9, 1))
	if math.Abs(got-10)/10 > 1e-12 {
		t.Errorf("rate = %v errors/year, want 10", got)
	}
}

func TestUnitRatesPerSecond(t *testing.T) {
	i, f, d := UnitRatesPerSecond()
	if i <= 0 || f <= 0 || d <= 0 {
		t.Error("unit rates must be positive")
	}
	if f <= i {
		t.Error("FP unit rate should exceed integer unit rate (4.5e-6 > 2.3e-6)")
	}
	_ = d
}

func TestWorkloadString(t *testing.T) {
	if WorkloadDay.String() != "day" || WorkloadSPECFP.String() != "SPEC fp" {
		t.Error("workload names wrong")
	}
	if Workload(42).String() == "" {
		t.Error("unknown workload should render")
	}
}
