// Package design encodes the paper's experimental parameter space: the
// per-component raw soft error rates of Section 4.1 and the broad
// design-space grid of Table 2 (component element count N, environment
// scaling factor S, system component count C, and workload).
package design

import (
	"fmt"

	"github.com/soferr/soferr/internal/units"
)

// Section 4.1 raw error rates, in errors/year, for the four studied
// processor components (derived by Li et al. [6] from published device
// error rates and device counts; 1e-8 errors/year = 0.001 FIT).
const (
	IntUnitRatePerYear    = 2.3e-6
	FPUnitRatePerYear     = 4.5e-6
	DecodeUnitRatePerYear = 3.3e-6
	RegFileRatePerYear    = 1.0e-4
)

// Table 2 grid dimensions.
var (
	// ElementCounts is the number of elements (bits) N in a component.
	ElementCounts = []float64{1e5, 1e6, 1e7, 1e8, 1e9}
	// ScaleFactors is the environment scaling factor S applied to the
	// baseline per-element rate (1 = terrestrial today; thousands =
	// high altitude, space, or accelerated test).
	ScaleFactors = []float64{1, 5, 100, 2000, 5000}
	// ComponentCounts is the number of components C in the system
	// (processors in a cluster).
	ComponentCounts = []int{2, 8, 5000, 50000, 500000}
)

// Workload identifies a workload family of Table 2.
type Workload int

// Table 2 workloads.
const (
	WorkloadSPECInt Workload = iota + 1
	WorkloadSPECFP
	WorkloadDay
	WorkloadWeek
	WorkloadCombined
)

var workloadNames = map[Workload]string{
	WorkloadSPECInt:  "SPEC int",
	WorkloadSPECFP:   "SPEC fp",
	WorkloadDay:      "day",
	WorkloadWeek:     "week",
	WorkloadCombined: "combined",
}

// String names the workload as in Table 2.
func (w Workload) String() string {
	if s, ok := workloadNames[w]; ok {
		return s
	}
	return fmt.Sprintf("Workload(%d)", int(w))
}

// Workloads lists the Table 2 workload families.
func Workloads() []Workload {
	return []Workload{WorkloadSPECFP, WorkloadSPECInt, WorkloadDay, WorkloadWeek, WorkloadCombined}
}

// RatePerSecond returns the component raw error rate, in errors/second,
// for N elements at scaling factor S (Table 2: N x S x baseline).
func RatePerSecond(n, s float64) float64 {
	return units.ComponentRatePerSecond(n, s)
}

// RatePerYear returns the component raw error rate in errors/year (the
// public API's convention) for N elements at scaling factor S.
func RatePerYear(n, s float64) float64 {
	return units.ComponentRatePerYear(n, s)
}

// UnitRatesPerSecond returns the Section 4.1 rates for the int, fp, and
// decode units in errors/second, the three units the paper applies
// simultaneously for processor-level failure in cluster experiments.
func UnitRatesPerSecond() (intU, fpU, decode float64) {
	return units.PerYearToPerSecond(IntUnitRatePerYear),
		units.PerYearToPerSecond(FPUnitRatePerYear),
		units.PerYearToPerSecond(DecodeUnitRatePerYear)
}
