package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/faultinject"
)

// systemCache is a bounded LRU of compiled Systems keyed by Spec hash,
// with coalesced compilation: concurrent requests for one uncached hash
// produce exactly one compile, and everyone waits on it. Equal Specs
// hash equal, so every request for an equivalent system shares one
// *soferr.System — and with it the System's own memoized query cache,
// which is what turns a repeated identical Spec+query into a pure
// cache hit.
type systemCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used; holds *cacheEntry
	m   map[string]*list.Element // hash -> element

	hits      int64
	misses    int64
	evictions int64

	// Compile accounting lives here (not on Server) because the work
	// runs on the entry's own goroutine, which may outlive the request
	// that started it.
	compiles  atomic.Int64
	compileNs atomic.Int64

	// compileSem bounds how many compiles run at once, and pending
	// bounds how many more may queue behind them. Compile goroutines
	// are detached from their requesters (a timed-out requester
	// releases its query slot and leaves the compile to finish into the
	// cache), so without both bounds a client churning fresh specs
	// under tiny deadlines could pile up unbounded concurrent — or
	// unbounded queued — simulations.
	compileSem chan struct{}
	pending    atomic.Int64
}

// compileQueueFactor: pending compiles (running + queued) are capped at
// this multiple of the concurrent-compile bound; past it new specs are
// refused with errCompileBacklog instead of queued.
const compileQueueFactor = 8

// errCompileBacklog is returned (and mapped to 503) when the compile
// queue is full: the request was well-formed, the server is overloaded.
var errCompileBacklog = errors.New("server busy: compile backlog full, retry later")

// errCompilePanic tags a compile goroutine that panicked: the panic is
// contained to the entry (every waiter sees this error, the entry is
// dropped so the hash can retry) instead of killing the process.
var errCompilePanic = errors.New("server: compile panicked")

// Chaos injection points in the compile path (no-ops unless a
// faultinject schedule is armed — see internal/faultinject).
const (
	// fiCompilePoint fires inside the detached compile goroutine just
	// before the real compile: Delay scripts a slow compile, Err scripts
	// a failing one, PanicMsg a crashing one.
	fiCompilePoint = "server.compile"
	// fiEvictPoint fires after a successful compile; when its rule
	// fires, the entry is force-dropped from the LRU mid-single-flight —
	// the eviction-races-compile scenario — while waiters still get the
	// finished System.
	fiEvictPoint = "server.cache.evict"
)

// cacheEntry is one compiled (or compiling) system. The once gate makes
// compilation single-flight: the entry is published in the map before
// anyone compiles, and every requester waits on done.
type cacheEntry struct {
	hash string
	once sync.Once
	done chan struct{}

	sys       *soferr.System
	err       error
	compileNs int64
}

func newSystemCache(capacity, maxCompiles int) *systemCache {
	if capacity <= 0 {
		capacity = defaultCacheSize
	}
	if maxCompiles <= 0 {
		maxCompiles = 1
	}
	return &systemCache{
		cap:        capacity,
		ll:         list.New(),
		m:          make(map[string]*list.Element),
		compileSem: make(chan struct{}, maxCompiles),
	}
}

// get returns the entry for hash, creating (and inserting) a fresh one
// on miss. hit reports whether the entry already existed — i.e. the
// compile work (successful or failed) was already claimed by an earlier
// request.
func (c *systemCache) get(hash string) (e *cacheEntry, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[hash]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry), true
	}
	c.misses++
	e = &cacheEntry{hash: hash, done: make(chan struct{})}
	c.m[hash] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).hash)
		c.evictions++
	}
	return e, false
}

// compile returns the entry's single-flight compilation result, waiting
// at most until ctx ends. The compile itself runs on its own goroutine
// and is never interrupted (the timing simulator has no preemption
// points); a caller whose deadline fires stops waiting — releasing its
// concurrency slot — while the finished System still lands in the
// cache for the next request. Failed compiles are dropped so a later
// spec with the same hash can retry and invalid specs cannot occupy
// LRU slots. (An entry evicted while still compiling finishes normally
// for its waiters; a concurrent re-request of the same hash may then
// compile once more — bounded duplication under eviction pressure,
// never a wrong answer.)
func (e *cacheEntry) compile(ctx context.Context, c *systemCache, comp *soferr.Compiler, spec soferr.Spec) (*soferr.System, error) {
	e.once.Do(func() {
		if c.pending.Add(1) > int64(cap(c.compileSem))*compileQueueFactor {
			c.pending.Add(-1)
			e.err = errCompileBacklog
			c.drop(e)
			close(e.done)
			return
		}
		go func() {
			defer c.pending.Add(-1)
			// Waiters must always be released and panics must never
			// escape a detached goroutine (that would kill the process),
			// so the close runs last and a panic anywhere in the compile
			// becomes the entry's error.
			defer func() {
				if rec := recover(); rec != nil {
					e.sys = nil
					e.err = fmt.Errorf("%w: %v\n%s", errCompilePanic, rec, debug.Stack())
					c.drop(e)
				}
				close(e.done)
			}()
			c.compileSem <- struct{}{}
			defer func() { <-c.compileSem }()
			start := time.Now()
			if err := faultinject.Fire(fiCompilePoint); err != nil {
				e.err = err
			} else {
				e.sys, e.err = comp.Compile(spec)
			}
			e.compileNs = time.Since(start).Nanoseconds()
			c.compiles.Add(1)
			c.compileNs.Add(e.compileNs)
			if e.err != nil {
				c.drop(e)
			} else if faultinject.Fire(fiEvictPoint) != nil {
				c.forceEvict(e)
			}
		}()
	})
	select {
	case <-e.done:
		return e.sys, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// drop removes e from the cache — but only if its hash still maps to
// this exact entry; after an eviction-and-reinsert cycle the slot may
// hold a newer, healthy entry that must not be discarded.
func (c *systemCache) drop(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[e.hash]; ok && el.Value.(*cacheEntry) == e {
		c.ll.Remove(el)
		delete(c.m, e.hash)
	}
}

// forceEvict drops e and records it as an eviction — the injected
// eviction-mid-single-flight fault. Waiters on e.done still receive the
// compiled System; only the cache forgets it, so the next request for
// the hash recompiles.
func (c *systemCache) forceEvict(e *cacheEntry) {
	c.mu.Lock()
	if el, ok := c.m[e.hash]; ok && el.Value.(*cacheEntry) == e {
		c.ll.Remove(el)
		delete(c.m, e.hash)
		c.evictions++
	}
	c.mu.Unlock()
}

func (c *systemCache) stats() (hits, misses, evictions int64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len(), c.cap
}
