package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/soferr/soferr"
)

func testSpec(rate float64) soferr.Spec {
	return soferr.Spec{
		Name: "batch",
		Components: []soferr.ComponentSpec{{
			Name:        "cache",
			RatePerYear: rate,
			Trace:       soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 4},
		}},
	}
}

func post(t *testing.T, client *http.Client, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func mustUnmarshal(t *testing.T, data []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
}

// TestServedEstimateBitIdenticalToDirectQuery is the acceptance test:
// an estimate served over HTTP must equal a direct System.MTTF query at
// the same (trials, seed, engine) bit for bit, and a repeated identical
// Spec+query must be a cache hit at both layers (compiled-System LRU
// and the System's own query cache).
func TestServedEstimateBitIdenticalToDirectQuery(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	spec := testSpec(1e6)
	req := map[string]interface{}{
		"spec":   spec,
		"method": "montecarlo",
		"trials": 5000,
		"seed":   3,
		"engine": "inverted",
	}
	resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got mttfResponse
	mustUnmarshal(t, body, &got)

	sys, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
		soferr.WithTrials(5000), soferr.WithSeed(3), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate.MTTF != want.MTTF || got.Estimate.StdErr != want.StdErr ||
		got.Estimate.Trials != want.Trials || got.Estimate.Seed != want.Seed ||
		got.Estimate.Engine != want.Engine || got.Estimate.Method != want.Method {
		t.Errorf("served estimate differs from direct query:\n http   %+v\n direct %+v", got.Estimate, want)
	}
	if got.SpecHash != spec.Hash() {
		t.Errorf("spec_hash = %q, want %q", got.SpecHash, spec.Hash())
	}
	if got.CompileCacheHit {
		t.Error("first request reported a compile cache hit")
	}
	if got.Estimate.Cached {
		t.Error("first query reported a query-cache hit")
	}

	// The identical request again: compile cache hit, query cache hit,
	// same bits.
	resp, body = post(t, srv.Client(), srv.URL+"/v1/mttf", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var again mttfResponse
	mustUnmarshal(t, body, &again)
	if !again.CompileCacheHit {
		t.Error("repeated spec did not hit the compile cache")
	}
	if !again.Estimate.Cached {
		t.Error("repeated query did not hit the query cache")
	}
	if again.Estimate.MTTF != got.Estimate.MTTF || again.Estimate.StdErr != got.Estimate.StdErr {
		t.Errorf("cached answer differs: %+v vs %+v", again.Estimate, got.Estimate)
	}
}

func TestCompareEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	spec := testSpec(1e6)
	resp, body := post(t, srv.Client(), srv.URL+"/v1/compare", map[string]interface{}{
		"spec":    spec,
		"methods": []string{"AVF+SOFR", "MC", "softarch"}, // case-insensitive, aliased
		"trials":  2000,
		"seed":    1,
		"engine":  "Inverted",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got compareResponse
	mustUnmarshal(t, body, &got)
	if len(got.Estimates) != 3 {
		t.Fatalf("got %d estimates", len(got.Estimates))
	}
	wantMethods := []soferr.Method{soferr.AVFSOFR, soferr.MonteCarlo, soferr.SoftArch}
	sys, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.CompareWith(context.Background(), []soferr.EstimateOption{
		soferr.WithTrials(2000), soferr.WithSeed(1), soferr.WithEngine(soferr.Inverted),
	}, wantMethods...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Estimates {
		if got.Estimates[i].Method != wantMethods[i] {
			t.Errorf("estimate %d method %v, want %v", i, got.Estimates[i].Method, wantMethods[i])
		}
		if got.Estimates[i].MTTF != direct[i].MTTF {
			t.Errorf("method %v MTTF %v != direct %v", wantMethods[i], got.Estimates[i].MTTF, direct[i].MTTF)
		}
	}
}

func TestDistributionEndpoints(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	spec := testSpec(1e6)
	sys, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, srv.Client(), srv.URL+"/v1/reliability", map[string]interface{}{
		"spec": spec, "t_seconds": 86400.0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reliability status %d: %s", resp.StatusCode, body)
	}
	var rel reliabilityResponse
	mustUnmarshal(t, body, &rel)
	wantRel, err := sys.Reliability(context.Background(), 86400)
	if err != nil {
		t.Fatal(err)
	}
	if float64(rel.Reliability) != wantRel {
		t.Errorf("served reliability %v != direct %v", rel.Reliability, wantRel)
	}

	resp, body = post(t, srv.Client(), srv.URL+"/v1/quantile", map[string]interface{}{
		"spec": spec, "p": 0.5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantile status %d: %s", resp.StatusCode, body)
	}
	var q quantileResponse
	mustUnmarshal(t, body, &q)
	wantT, err := sys.FailureQuantile(context.Background(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if float64(q.TSeconds) != wantT {
		t.Errorf("served quantile %v != direct %v", q.TSeconds, wantT)
	}

	// p = 1 is +Inf and must survive the JSON boundary.
	resp, body = post(t, srv.Client(), srv.URL+"/v1/quantile", map[string]interface{}{
		"spec": spec, "p": 1.0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantile(1) status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &q)
	if !math.IsInf(float64(q.TSeconds), 1) {
		t.Errorf("quantile(1) = %v, want +Inf", q.TSeconds)
	}

	// Invalid probability is the client's fault.
	resp, body = post(t, srv.Client(), srv.URL+"/v1/quantile", map[string]interface{}{
		"spec": spec, "p": 1.5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("quantile(1.5) status %d: %s", resp.StatusCode, body)
	}
}

// TestSweepEndpointMatchesDirectSweep asserts the served sweep is the
// same sweep the library runs: equal cells, equal estimates, bit for
// bit.
func TestSweepEndpointMatchesDirectSweep(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	req := map[string]interface{}{
		"name": "grid",
		"sources": []map[string]interface{}{
			{"name": "half", "trace": map[string]interface{}{"kind": "busyidle", "period_seconds": 10, "busy_seconds": 5}},
			{"name": "tenth", "trace": map[string]interface{}{"kind": "busyidle", "period_seconds": 10, "busy_seconds": 1}},
		},
		"rates_per_year": []float64{1e4, 1e6},
		"counts":         []int{1, 16},
		"methods":        []string{"avf+sofr", "montecarlo"},
		"seed":           5,
		"trials":         2000,
		"engine":         "inverted",
	}
	resp, body := post(t, srv.Client(), srv.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got sweepResponse
	mustUnmarshal(t, body, &got)
	if got.Count != 8 || len(got.Cells) != 8 {
		t.Fatalf("got %d cells, want 8", got.Count)
	}

	half, err := soferr.BusyIdleTrace(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	tenth, err := soferr.BusyIdleTrace(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := soferr.Sweep(context.Background(), soferr.Grid{
		Name: "grid",
		Sources: []soferr.TraceSource{
			{Name: "half", Trace: half}, {Name: "tenth", Trace: tenth},
		},
		RatesPerYear: []float64{1e4, 1e6},
		Counts:       []int{1, 16},
		Methods:      []soferr.Method{soferr.AVFSOFR, soferr.MonteCarlo},
		Seed:         5,
	}, soferr.WithTrials(2000), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if len(got.Cells[i].Estimates) != len(direct[i].Estimates) {
			t.Fatalf("cell %d: %d estimates, want %d", i, len(got.Cells[i].Estimates), len(direct[i].Estimates))
		}
		for j := range direct[i].Estimates {
			g, w := got.Cells[i].Estimates[j], direct[i].Estimates[j]
			if g.MTTF != w.MTTF || g.StdErr != w.StdErr || g.Seed != w.Seed {
				t.Errorf("cell %d estimate %d: served %+v != direct %+v", i, j, g, w)
			}
		}
	}
}

func TestErrorResponses(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	client := srv.Client()

	check := func(name string, resp *http.Response, body []byte, wantStatus int, wantMsg string) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, wantStatus, body)
			return
		}
		var env struct {
			Error httpError `json:"error"`
		}
		mustUnmarshal(t, body, &env)
		if env.Error.Status != wantStatus || !strings.Contains(env.Error.Message, wantMsg) {
			t.Errorf("%s: error %+v does not carry status %d / %q", name, env.Error, wantStatus, wantMsg)
		}
	}

	// Malformed JSON.
	resp, err := client.Post(srv.URL+"/v1/mttf", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	check("malformed", resp, body, http.StatusBadRequest, "invalid request")

	// Unknown request field (typoed option).
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1), "trails": 100,
	})
	check("typo", resp, body, http.StatusBadRequest, "trails")

	// Unknown method and engine names route through the shared parsers.
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1), "method": "warp",
	})
	check("method", resp, body, http.StatusBadRequest, "unknown method")
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1), "engine": "quantum",
	})
	check("engine", resp, body, http.StatusBadRequest, "unknown engine")

	// Invalid spec.
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": map[string]interface{}{"name": "empty"},
	})
	check("empty spec", resp, body, http.StatusBadRequest, "no components")

	// GET on a query endpoint.
	getResp, err := client.Get(srv.URL + "/v1/mttf")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, getResp)
	check("GET", getResp, body, http.StatusMethodNotAllowed, "POST")

	// Monte-Carlo on a system that can never fail is a well-typed
	// answer, not an error: 200 with MTTF "+Inf" and FIT 0 (the PR 4
	// zero-MTTF/FIT=+Inf convention, mirrored).
	neverSpec := soferr.Spec{Components: []soferr.ComponentSpec{{
		RatePerYear: 5,
		Trace:       soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 0},
	}}}
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": neverSpec, "method": "montecarlo", "trials": 100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("never fails: status %d, want 200 (%s)", resp.StatusCode, body)
	} else {
		var never mttfResponse
		if err := json.Unmarshal(body, &never); err != nil {
			t.Fatalf("never fails: %v (%s)", err, body)
		}
		if !math.IsInf(never.Estimate.MTTF, 1) || never.Estimate.FIT != 0 {
			t.Errorf("never fails: estimate %+v, want MTTF +Inf with FIT 0", never.Estimate)
		}
	}

	// An out-of-domain adaptive precision target is unanswerable: 422.
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1), "target_rel_stderr": 1.5,
	})
	check("bad target", resp, body, http.StatusUnprocessableEntity, "target_rel_stderr")
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1), "target_rel_stderr": -0.25,
	})
	check("negative target", resp, body, http.StatusUnprocessableEntity, "target_rel_stderr")

	// A sweep whose axes multiply past the cell cap is rejected before
	// anything is enumerated.
	hugeRates := make([]float64, 1000)
	hugeCounts := make([]int, 100)
	for i := range hugeRates {
		hugeRates[i] = float64(i + 1)
	}
	for i := range hugeCounts {
		hugeCounts[i] = i + 1
	}
	resp, body = post(t, client, srv.URL+"/v1/sweep", map[string]interface{}{
		"sources": []map[string]interface{}{{
			"name":  "half",
			"trace": map[string]interface{}{"kind": "busyidle", "period_seconds": 10, "busy_seconds": 5},
		}},
		"rates_per_year": hugeRates,
		"counts":         hugeCounts,
	})
	check("cell cap", resp, body, http.StatusBadRequest, "exceeds the per-request cap")
}

func TestRequestDeadline(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	// A low-AVF trace on the arrival-enumerating engine with a huge
	// trial count cannot finish in 1ms; the deadline must map onto the
	// query and come back as 504.
	spec := soferr.Spec{Components: []soferr.ComponentSpec{{
		RatePerYear: 1e4,
		Trace:       soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 86400, BusySeconds: 3600},
	}}}
	resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": spec, "method": "montecarlo", "engine": "superposed",
		"trials": 50_000_000, "timeout_ms": 1,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
}

func TestCacheEvictionBounded(t *testing.T) {
	s := New(Config{CacheSize: 2})
	srv := httptest.NewServer(s)
	defer srv.Close()
	for i := 0; i < 5; i++ {
		resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
			"spec": testSpec(float64(1000 + i)), "method": "avf+sofr",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	m := s.Metrics()
	if m.Cache.Size > 2 {
		t.Errorf("cache size %d exceeds capacity 2", m.Cache.Size)
	}
	if m.Cache.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", m.Cache.Evictions)
	}
	if m.Cache.Misses != 5 {
		t.Errorf("misses = %d, want 5", m.Cache.Misses)
	}
	if m.Compiles != 5 {
		t.Errorf("compiles = %d, want 5", m.Compiles)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(10), "method": "softarch",
	})
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	var m Metrics
	mustUnmarshal(t, body, &m)
	if m.Queries["mttf"] != 1 {
		t.Errorf("metrics queries.mttf = %d, want 1", m.Queries["mttf"])
	}
	if m.Cache.Misses != 1 {
		t.Errorf("metrics cache misses = %d, want 1", m.Cache.Misses)
	}
	if m.CompileMSTotal < 0 {
		t.Errorf("compile_ms_total = %v", m.CompileMSTotal)
	}
	// Per-endpoint latency summaries: the one completed mttf request is
	// counted with a positive total and max >= the mean; untouched
	// endpoints stay zero.
	lat := m.Latency["mttf"]
	if lat.Count != 1 {
		t.Errorf("latency.mttf.count = %d, want 1", lat.Count)
	}
	if lat.TotalMS <= 0 || lat.MaxMS <= 0 || lat.MaxMS < lat.TotalMS/float64(lat.Count) {
		t.Errorf("latency.mttf summary inconsistent: %+v", lat)
	}
	if idle := m.Latency["sweep"]; idle.Count != 0 || idle.TotalMS != 0 || idle.MaxMS != 0 {
		t.Errorf("latency.sweep = %+v, want zeros", idle)
	}
	if !strings.Contains(string(body), `"latency"`) {
		t.Errorf("/metrics body lacks latency block: %s", body)
	}
}

// TestServedAdaptiveTarget covers the target_rel_stderr wire option:
// an adaptive query answers 200 with the achieved precision, the
// trials actually run (fewer than the fixed default), and the clamped
// target recorded on the estimate.
func TestServedAdaptiveTarget(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := srv.Client()

	resp, body := post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1e6), "method": "montecarlo",
		"engine": "fused", "seed": 1, "target_rel_stderr": 0.02,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out mttfResponse
	mustUnmarshal(t, body, &out)
	est := out.Estimate
	if est.TargetRelStdErr != 0.02 {
		t.Errorf("estimate target = %v, want 0.02", est.TargetRelStdErr)
	}
	if est.RelStdErr() > 0.02 {
		t.Errorf("achieved RSE %v > target", est.RelStdErr())
	}
	if est.Trials <= 0 || est.Trials >= soferr.DefaultTrials {
		t.Errorf("adaptive served query used %d trials, want (0, %d)", est.Trials, soferr.DefaultTrials)
	}
	if est.Engine != soferr.Fused {
		t.Errorf("engine = %v, want fused", est.Engine)
	}

	// A tighter-than-floor target is clamped, not rejected.
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1e6), "method": "montecarlo",
		"engine": "fused", "seed": 1, "target_rel_stderr": 1e-9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clamped target: status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &out)
	if out.Estimate.TargetRelStdErr != minTargetRelStdErr {
		t.Errorf("clamped target = %v, want %v", out.Estimate.TargetRelStdErr, minTargetRelStdErr)
	}
}

// TestGracefulShutdownMidQuery drives a real http.Server: a query is in
// flight when Shutdown is called, and both the query (complete answer)
// and the shutdown (nil) must succeed.
func TestGracefulShutdownMidQuery(t *testing.T) {
	s := New(Config{MaxTimeout: -1})
	httpSrv := &http.Server{Handler: s}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	url := fmt.Sprintf("http://%s", ln.Addr())

	type result struct {
		status int
		body   []byte
		err    error
	}
	queryDone := make(chan result, 1)
	go func() {
		data, _ := json.Marshal(map[string]interface{}{
			"spec": testSpec(1e4), "method": "montecarlo",
			"engine": "superposed", "trials": 3_000_000, "seed": 1,
		})
		resp, err := http.Post(url+"/v1/mttf", "application/json", bytes.NewReader(data))
		if err != nil {
			queryDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		queryDone <- result{status: resp.StatusCode, body: buf.Bytes()}
	}()

	// Wait for the query to be in flight, then shut down around it.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}
	res := <-queryDone
	if res.err != nil {
		t.Fatalf("in-flight query failed: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight query status %d: %s", res.status, res.body)
	}
	var got mttfResponse
	mustUnmarshal(t, res.body, &got)
	if !(got.Estimate.MTTF > 0) {
		t.Errorf("shutdown-straddling query returned %+v", got.Estimate)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExactEngineServed: the closed-form engine over HTTP. A
// tabulatable spec answers 200 with the deterministic contract (zero
// stderr/trials/seed) and, because exact queries are seed- and
// trial-free, any sampling options on a repeat request hit the same
// query-cache entry. An untabulatable spec (incommensurate periods) is
// a well-typed 422, not a 500.
func TestExactEngineServed(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()
	client := srv.Client()

	spec := testSpec(1e6)
	resp, body := post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": spec, "method": "montecarlo", "engine": "exact",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got mttfResponse
	mustUnmarshal(t, body, &got)
	if got.Estimate.Engine != soferr.Exact || got.Estimate.StdErr != 0 ||
		got.Estimate.Trials != 0 || got.Estimate.Seed != 0 {
		t.Errorf("served exact estimate is not deterministic: %+v", got.Estimate)
	}
	sys, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.MTTF(context.Background(), soferr.MonteCarlo, soferr.WithEngine(soferr.Exact))
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate.MTTF != want.MTTF {
		t.Errorf("served exact MTTF = %v, direct = %v", got.Estimate.MTTF, want.MTTF)
	}

	// Different trials/seed, same exact answer, same cache entry.
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": spec, "method": "montecarlo", "engine": "exact", "trials": 9999, "seed": 42,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var again mttfResponse
	mustUnmarshal(t, body, &again)
	if !again.Estimate.Cached {
		t.Error("exact repeat with sampling options missed the seed-free cache entry")
	}
	if again.Estimate.MTTF != got.Estimate.MTTF || again.Estimate.Trials != 0 || again.Estimate.Seed != 0 {
		t.Errorf("exact cache normalization broken over HTTP: %+v", again.Estimate)
	}

	// Incommensurate periods cannot be tabulated: 422 with the typed
	// message, on the same path every endpoint's errors flow through.
	incomm := soferr.Spec{Components: []soferr.ComponentSpec{
		{RatePerYear: 1e6, Trace: soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 4}},
		{RatePerYear: 1e6, Trace: soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: math.Pi, BusySeconds: 1}},
	}}
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": incomm, "method": "montecarlo", "engine": "exact",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("incommensurate exact: status %d, want 422 (%s)", resp.StatusCode, body)
	}
	var env struct {
		Error httpError `json:"error"`
	}
	mustUnmarshal(t, body, &env)
	if !strings.Contains(env.Error.Message, "exact engine") {
		t.Errorf("422 message %q does not name the exact engine", env.Error.Message)
	}

	// The same system under a sampling engine still answers 200.
	resp, body = post(t, client, srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": incomm, "method": "montecarlo", "engine": "fused", "trials": 2000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("incommensurate fused: status %d, want 200 (%s)", resp.StatusCode, body)
	}
}
