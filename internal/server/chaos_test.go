package server

// The chaos suite: scripted fault schedules (internal/faultinject)
// driven through a live server, asserting the failure model's
// degradation invariants (DESIGN.md, "Failure model"):
//
//  1. the process never dies — every fault is contained to at most the
//     requests it touched;
//  2. every in-flight request terminates with a structured status (an
//     estimate, an error envelope, or a visibly truncated stream —
//     never a hang, never a silent wrong answer);
//  3. seeded answers are bit-identical whenever the fault missed, so
//     chaos runs are debuggable replay for production incidents.
//
// Run with `make chaos` (-race, non-short). Tests arm the global
// fault-injection registry, so none of them may use t.Parallel.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/faultinject"
	"github.com/soferr/soferr/internal/montecarlo"
)

// checkStructured asserts invariant 2 for one response: 200 bodies
// decode as JSON, failures carry the envelope with a matching status.
func checkStructured(t *testing.T, label string, status int, body []byte) {
	t.Helper()
	if status == http.StatusOK {
		var v map[string]interface{}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("%s: 200 with undecodable body %q: %v", label, body, err)
		}
		return
	}
	var envelope struct {
		Error httpError `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Status != status {
		t.Errorf("%s: status %d with unstructured body %q", label, status, body)
	}
}

// referenceMTTF computes the direct in-process answer the served one
// must match bit for bit when no fault fires.
func referenceMTTF(t *testing.T, spec soferr.Spec, trials int, seed uint64) soferr.Estimate {
	t.Helper()
	sys, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
		soferr.WithTrials(trials), soferr.WithSeed(seed), soferr.WithEngine(soferr.Inverted))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// stormMTTF fires concurrent seeded requests at the server and asserts
// every one terminates with a structured status. Distinct rates give
// distinct spec hashes so the compile path stays hot.
func stormMTTF(t *testing.T, srv *httptest.Server, workers, perWorker int) (ok, failed int64) {
	t.Helper()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := map[string]interface{}{
					"spec":   testSpec(1e5 + float64(w*perWorker+i)),
					"trials": 2000, "seed": uint64(i + 1), "engine": "inverted",
				}
				resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", req)
				checkStructured(t, fmt.Sprintf("storm worker %d req %d", w, i), resp.StatusCode, body)
				mu.Lock()
				if resp.StatusCode == http.StatusOK {
					ok++
				} else {
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return ok, failed
}

// postDisarmBitIdentity asserts invariant 3: once the schedule is gone,
// a fresh seeded query (one the chaos run never issued, so no cache can
// answer it) equals the direct computation bit for bit.
func postDisarmBitIdentity(t *testing.T, srv *httptest.Server) {
	t.Helper()
	spec := testSpec(7.5e5)
	want := referenceMTTF(t, spec, 3000, 99)
	resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": spec, "trials": 3000, "seed": 99, "engine": "inverted",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disarm query: %d %s", resp.StatusCode, body)
	}
	var got mttfResponse
	mustUnmarshal(t, body, &got)
	if got.Estimate.MTTF != want.MTTF || got.Estimate.StdErr != want.StdErr {
		t.Errorf("post-disarm estimate differs from direct: %+v vs %+v", got.Estimate, want)
	}
}

// TestChaosCompileFaults: a schedule of failing and slow compiles. The
// process survives, every request ends structured (200 or 500), failed
// hashes are retried rather than cached poisoned, and the disarmed
// server answers bit-identically.
func TestChaosCompileFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs non-short")
	}
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	disarm := faultinject.Arm(faultinject.Schedule{Seed: 11, Rules: []faultinject.Rule{
		{Point: "server.compile", P: 0.3, Count: 10},
		{Point: "server.compile", P: 0.2, Count: 5, Delay: 20 * time.Millisecond, Err: faultinject.ErrInjected},
	}})
	ok, failed := stormMTTF(t, srv, 8, 6)
	stats := faultinject.Snapshot()["server.compile"]
	disarm()
	if stats.Fired == 0 {
		t.Fatalf("compile schedule never fired (stats %+v); the storm tested nothing", stats)
	}
	if failed == 0 {
		t.Error("injected compile faults produced no failed requests")
	}
	if ok == 0 {
		t.Error("every request failed; faults were not contained to their hits")
	}
	t.Logf("compile chaos: %d ok, %d failed, %d/%d fired", ok, failed, stats.Fired, stats.Hits)

	// A hash whose compile failed must be retryable: after disarm every
	// spec compiles, including ones the schedule poisoned.
	ok2, failed2 := stormMTTF(t, srv, 4, 3)
	if failed2 != 0 {
		t.Errorf("post-disarm storm failed %d requests (%d ok)", failed2, ok2)
	}
	postDisarmBitIdentity(t, srv)
}

// TestChaosWorkerPanics: trial-worker panics mid-Monte-Carlo surface as
// structured 500s on exactly the requests whose trials hit them; the
// server, its limiter, and its cache stay consistent throughout.
func TestChaosWorkerPanics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs non-short")
	}
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	disarm := faultinject.Arm(faultinject.Schedule{Seed: 13, Rules: []faultinject.Rule{
		// The trial point fires once per claimed block, across every
		// request's workers; a low probability spreads panics over the
		// storm without failing everything.
		{Point: "montecarlo.trial", P: 0.4, Count: 8, PanicMsg: "chaos trial"},
	}})
	ok, failed := stormMTTF(t, srv, 8, 4)
	fired := faultinject.Snapshot()["montecarlo.trial"].Fired
	disarm()
	if fired == 0 {
		t.Fatal("trial panic schedule never fired; the storm tested nothing")
	}
	if failed == 0 {
		t.Error("injected trial panics produced no failed requests")
	}
	if ok == 0 {
		t.Error("every request failed; panics were not contained per request")
	}
	t.Logf("trial-panic chaos: %d ok, %d failed, %d panics fired", ok, failed, fired)

	// The panic is typed all the way up: a direct hit maps to a 500
	// mentioning the contained panic, not a crash or a generic error.
	disarm = faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "montecarlo.trial", Hits: []int{1}, PanicMsg: "chaos trial"},
	}})
	resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(9e5), "trials": 2000, "seed": 5,
	})
	disarm()
	if resp.StatusCode != http.StatusInternalServerError ||
		!bytes.Contains(body, []byte(montecarlo.ErrTrialPanic.Error())) {
		t.Errorf("direct trial panic: %d %s, want 500 wrapping ErrTrialPanic", resp.StatusCode, body)
	}
	postDisarmBitIdentity(t, srv)
}

// TestChaosEvictionStorm: every successful compile is immediately
// force-evicted mid-single-flight while requests race, on a one-slot
// cache for extra reinsertion pressure. No waiter may observe a zero
// System, no request may hang, and answers stay bit-identical (each
// request just recompiles).
func TestChaosEvictionStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs non-short")
	}
	s := New(Config{CacheSize: 1})
	srv := httptest.NewServer(s)
	defer srv.Close()

	disarm := faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "server.cache.evict"},
	}})
	// Half the storm shares one spec (waiters racing the eviction of
	// their own entry), half churns distinct specs (LRU pressure).
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				rate := 1e6 // shared spec
				if w%2 == 0 {
					rate = 2e5 + float64(w*10+i)
				}
				resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
					"spec": testSpec(rate), "trials": 1000, "seed": 3, "engine": "inverted",
				})
				checkStructured(t, fmt.Sprintf("evict storm %d/%d", w, i), resp.StatusCode, body)
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					failures++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	evictFired := faultinject.Snapshot()["server.cache.evict"].Fired
	disarm()
	if evictFired == 0 {
		t.Fatal("eviction schedule never fired")
	}
	if failures != 0 {
		t.Errorf("%d requests failed under eviction chaos; eviction must never fail a waiter", failures)
	}
	m := s.Metrics()
	if m.Cache.Size != 0 {
		t.Errorf("cache size %d after evict-everything schedule, want 0", m.Cache.Size)
	}
	postDisarmBitIdentity(t, srv)
}

// TestChaosCancellationStorm: clients abandoning requests mid-compile
// and mid-query (tiny deadlines, slow injected compiles) race normal
// traffic. Everything terminates, the limiter and compile queue drain,
// and the server still answers cleanly afterwards.
func TestChaosCancellationStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs non-short")
	}
	s := New(Config{MaxConcurrent: 4})
	srv := httptest.NewServer(s)
	defer srv.Close()

	disarm := faultinject.Arm(faultinject.Schedule{Seed: 17, Rules: []faultinject.Rule{
		{Point: "server.compile", P: 0.5, Count: 20, Delay: 30 * time.Millisecond, Err: nil},
	}})
	defer disarm()
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				body := map[string]interface{}{
					"spec": testSpec(3e5 + float64(w*100+i)), "trials": 2000, "seed": 1,
				}
				if w%2 == 0 {
					// Abandoners: a deadline far shorter than the injected
					// compile delay.
					body["timeout_ms"] = 5
				}
				data, err := json.Marshal(body)
				if err != nil {
					t.Error(err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/mttf", bytes.NewReader(data))
				req.Header.Set("Content-Type", "application/json")
				resp, err := srv.Client().Do(req)
				if err == nil {
					var buf bytes.Buffer
					buf.ReadFrom(resp.Body)
					resp.Body.Close()
					checkStructured(t, fmt.Sprintf("cancel storm %d/%d", w, i), resp.StatusCode, buf.Bytes())
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	disarm()

	// The storm over, the server must be fully drained and answering:
	// no leaked limiter slots, no stuck compile queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Inflight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d long after the storm", s.Metrics().Inflight)
		}
		time.Sleep(10 * time.Millisecond)
	}
	postDisarmBitIdentity(t, srv)
}

// TestChaosSlowCompileDeadline: a compile slower than the request
// deadline times out the requester (504) but still completes into the
// cache — the next request is a hit, and bit-identical to what the
// first would have returned.
func TestChaosSlowCompileDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs non-short")
	}
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	spec := testSpec(4.2e5)
	want := referenceMTTF(t, spec, 2000, 12)

	disarm := faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "server.compile", Hits: []int{1}, Delay: 300 * time.Millisecond, Err: nil},
	}})
	req := map[string]interface{}{"spec": spec, "trials": 2000, "seed": 12, "engine": "inverted"}
	slow := map[string]interface{}{"spec": spec, "trials": 2000, "seed": 12, "engine": "inverted", "timeout_ms": 30}
	resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", slow)
	disarm()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow compile under 30ms deadline: %d %s, want 504", resp.StatusCode, body)
	}
	checkStructured(t, "slow compile", resp.StatusCode, body)

	// The detached compile finishes into the cache regardless.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Compiles == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned compile never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, body = post(t, srv.Client(), srv.URL+"/v1/mttf", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up after abandoned compile: %d %s", resp.StatusCode, body)
	}
	var got mttfResponse
	mustUnmarshal(t, body, &got)
	if !got.CompileCacheHit {
		t.Error("follow-up did not hit the cache the abandoned compile filled")
	}
	if got.Estimate.MTTF != want.MTTF || got.Estimate.StdErr != want.StdErr {
		t.Errorf("estimate after abandoned compile differs: %+v vs %+v", got.Estimate, want)
	}
}

// TestChaosStreamCutAndResume is the sweep half of the acceptance
// criteria: a streaming sweep cut mid-flight (client-side abandonment
// here; the client package chaos-tests server-side cuts) is resumed
// with cursor=K and the remaining cells are bit-identical to the
// uninterrupted stream.
func TestChaosStreamCutAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs non-short")
	}
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	// Uninterrupted reference.
	full, done := streamSweepLines(t, srv.Client(), srv.URL+"/v1/sweep?stream=ndjson", sweepBody())
	if done == nil || len(full) != 8 {
		t.Fatalf("reference stream: %d lines, done=%v", len(full), done)
	}

	// Open the stream, read 3 lines, cut the connection.
	data, err := json.Marshal(sweepBody())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/sweep?stream=ndjson", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var delivered []ndjsonLine
	for sc.Scan() && len(delivered) < 3 {
		var line ndjsonLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, line)
	}
	cancel()
	resp.Body.Close()
	if len(delivered) != 3 {
		t.Fatalf("cut stream delivered %d lines before the cut", len(delivered))
	}

	// Resume from the last delivered index + 1.
	cursor := delivered[len(delivered)-1].Cell.Index + 1
	tail, done := streamSweepLines(t, srv.Client(),
		fmt.Sprintf("%s/v1/sweep?stream=ndjson&cursor=%d", srv.URL, cursor), sweepBody())
	if done == nil {
		t.Fatal("resumed stream had no terminator")
	}
	if len(delivered)+len(tail) != len(full) {
		t.Fatalf("cut(%d) + resumed(%d) != full(%d)", len(delivered), len(tail), len(full))
	}
	for i, line := range append(delivered, tail...) {
		want := full[i]
		if line.Cell.Index != want.Cell.Index || line.Cell.Seed != want.Cell.Seed ||
			!sameEstimates(line.Estimates, want.Estimates) {
			t.Errorf("reassembled cell %d differs from uninterrupted stream:\n got  %+v\n want %+v", i, line, want)
		}
	}
}

// TestChaosHandlerPanicStorm: handler-level panics (the recovery
// middleware's worst case) mixed into live traffic. Every hit request
// gets a structured 500, every miss is untouched, and the recovered
// count matches the schedule exactly.
func TestChaosHandlerPanicStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs non-short")
	}
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	disarm := faultinject.Arm(faultinject.Schedule{Seed: 23, Rules: []faultinject.Rule{
		{Point: "server.handler", P: 0.3, Count: 12, PanicMsg: "handler chaos"},
	}})
	ok, failed := stormMTTF(t, srv, 8, 5)
	fired := faultinject.Snapshot()["server.handler"].Fired
	disarm()
	if fired == 0 {
		t.Fatal("handler panic schedule never fired")
	}
	if failed != fired {
		t.Errorf("failed requests (%d) != fired panics (%d); panics leaked or over-failed", failed, fired)
	}
	if ok+failed != 40 {
		t.Errorf("storm lost requests: %d accounted of 40", ok+failed)
	}
	if got := s.Metrics().PanicsRecovered; got != fired {
		t.Errorf("panics_recovered = %d, want %d", got, fired)
	}
	postDisarmBitIdentity(t, srv)
}
