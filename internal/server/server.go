// Package server exposes the soferr estimation stack behind a stable
// HTTP query interface: clients POST a declarative system Spec plus
// estimate options and get JSON estimates back, with the expensive
// compile step amortized across requests and users.
//
// Layering (see DESIGN.md, "Serving layer"):
//
//   - soferr.Spec is the wire format: a canonical, hashable system
//     description. Equal Specs hash equal.
//   - A bounded LRU keyed by Spec hash maps each distinct Spec to one
//     compiled *soferr.System, with single-flight compilation. Because
//     a System memoizes its own deterministic and seeded-Monte-Carlo
//     queries, a repeated identical Spec+query is served entirely from
//     cache — bit-identical to recomputation.
//   - Every query endpoint runs under a server-wide concurrency limit
//     and a per-request deadline mapped onto the query's context (and
//     soferr.WithTimeLimit for estimate queries).
//
// Endpoints:
//
//	POST /v1/mttf        one estimate: {spec, method, trials, seed, engine, workers, timeout_ms}
//	POST /v1/compare     several methods on one compiled system: {spec, methods, ...}
//	POST /v1/reliability survival probability: {spec, t_seconds, ...}
//	POST /v1/quantile    failure-time quantile: {spec, p, ...}
//	POST /v1/sweep       a design-space grid: {sources, rates_per_year, counts, methods, seed, ...}
//	GET  /healthz        liveness
//	GET  /metrics        query counts, cache hits, compile time (JSON)
//
// Errors are structured: {"error": {"status": N, "message": "..."}}.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/soferr/soferr"
)

// Defaults for Config zero values.
const (
	defaultCacheSize  = 128
	defaultMaxTimeout = 60 * time.Second
	maxRequestBytes   = 1 << 20
	// maxRequestTrials caps client-supplied Monte-Carlo trial counts
	// (50x the package default — sub-0.1% standard error — is plenty for
	// any served query; the deadline bounds the time either way).
	maxRequestTrials = 50 * soferr.DefaultTrials
	// maxSweepCells caps a served sweep's grid size: cell structs are
	// small but the count is the product of client-supplied axes, and
	// every cell is at least one query.
	maxSweepCells = 65536
	// minTargetRelStdErr clamps client-supplied adaptive precision
	// targets: trials scale like 1/target^2, so the floor (together
	// with the trials cap, which adaptive runs also respect) bounds the
	// work one request can demand.
	minTargetRelStdErr = 1e-4
)

// errTargetOutOfDomain tags a target_rel_stderr outside [0, 1): the
// request is well-formed JSON but semantically unanswerable, so it maps
// to 422 rather than the 400 of a malformed body.
var errTargetOutOfDomain = errors.New("target_rel_stderr must be in [0, 1)")

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// CacheSize bounds the compiled-System LRU (default 128 systems).
	CacheSize int
	// MaxConcurrent bounds in-flight query requests (default
	// GOMAXPROCS); excess requests wait, and give up with 503 when their
	// context ends first.
	MaxConcurrent int
	// DefaultTrials is the Monte-Carlo trial count for requests that do
	// not set one (default soferr.DefaultTrials).
	DefaultTrials int
	// MaxTimeout caps (and, for requests that set none, supplies) the
	// per-request deadline (default 60s; negative disables).
	MaxTimeout time.Duration
	// Compiler compiles Specs; supply one to share its benchmark
	// simulation cache with other users (default: a fresh Compiler).
	Compiler *soferr.Compiler
	// Log, when non-nil, receives one line per failed request.
	Log io.Writer
}

// Server is the soferr query service: an http.Handler serving the /v1
// endpoints plus health and metrics. Create it with New; it is safe
// for concurrent use. It keeps no long-lived goroutines, but Spec
// compiles run on short-lived background goroutines (bounded in number
// by the compile semaphore and queue) that may briefly outlive a
// timed-out request — after http.Server.Shutdown returns, an in-flight
// compile can still be finishing into the cache.
type Server struct {
	cfg   Config
	comp  *soferr.Compiler
	cache *systemCache
	sem   chan struct{}
	mux   *http.ServeMux
	start time.Time

	queries    [5]atomic.Int64 // indexed by endpoint
	errorCount atomic.Int64
	inflight   atomic.Int64

	// Per-endpoint request-latency summaries (count/sum/max), measured
	// around the whole handler — decode, compile wait, query, encode —
	// so the cache-hit vs cold-compile split BENCH_serve.json records
	// offline is observable in production via /metrics.
	latCount [5]atomic.Int64
	latNs    [5]atomic.Int64
	latMaxNs [5]atomic.Int64
}

// endpoint indexes the per-endpoint query counters.
type endpoint int

const (
	epMTTF endpoint = iota
	epCompare
	epReliability
	epQuantile
	epSweep
)

var endpointNames = [5]string{"mttf", "compare", "reliability", "quantile", "sweep"}

// New builds a Server from the config.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultTrials <= 0 {
		cfg.DefaultTrials = soferr.DefaultTrials
	}
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = defaultMaxTimeout
	}
	comp := cfg.Compiler
	if comp == nil {
		comp = &soferr.Compiler{}
	}
	s := &Server{
		cfg:   cfg,
		comp:  comp,
		cache: newSystemCache(cfg.CacheSize, cfg.MaxConcurrent),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("/v1/mttf", s.query(epMTTF, s.handleMTTF))
	s.mux.HandleFunc("/v1/compare", s.query(epCompare, s.handleCompare))
	s.mux.HandleFunc("/v1/reliability", s.query(epReliability, s.handleReliability))
	s.mux.HandleFunc("/v1/quantile", s.query(epQuantile, s.handleQuantile))
	s.mux.HandleFunc("/v1/sweep", s.query(epSweep, s.handleSweep))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// httpError is the structured error envelope every failure returns.
type httpError struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	s.errorCount.Add(1)
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "%s %s -> %d %s\n", r.Method, r.URL.Path, status, msg)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error httpError `json:"error"`
	}{httpError{Status: status, Message: msg}})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// statusFor maps a query failure to an HTTP status: bad specs and
// options are the client's fault, deadlines are 504, everything else
// is 500. (A system that cannot fail is no longer an error anywhere
// the server queries — MTTF answers 200 with "+Inf" — and
// out-of-domain options map to 422 via optionsStatus/queryStatus.)
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// query wraps a handler with the shared per-request machinery: POST
// enforcement, the concurrency limiter, and the query counter.
func (s *Server) query(ep endpoint, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, r, http.StatusMethodNotAllowed, "POST a JSON request body")
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			s.writeError(w, r, http.StatusServiceUnavailable, "server saturated; request context ended while waiting")
			return
		}
		s.queries[ep].Add(1)
		s.inflight.Add(1)
		start := time.Now()
		defer func() {
			s.inflight.Add(-1)
			s.observeLatency(ep, time.Since(start))
		}()
		h(w, r)
	}
}

// observeLatency folds one request's wall time into the endpoint's
// count/sum/max summary.
func (s *Server) observeLatency(ep endpoint, d time.Duration) {
	ns := d.Nanoseconds()
	s.latCount[ep].Add(1)
	s.latNs[ep].Add(ns)
	for {
		cur := s.latMaxNs[ep].Load()
		if ns <= cur || s.latMaxNs[ep].CompareAndSwap(cur, ns) {
			return
		}
	}
}

// decode strictly parses the request body into v: unknown fields are
// rejected so typoed options fail loudly instead of silently meaning
// their defaults.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request: %v", err)
	}
	return nil
}

// timeout resolves the effective per-request deadline: the request's
// timeout_ms capped by (or defaulting to) Config.MaxTimeout.
func (s *Server) timeout(requestMS int64) time.Duration {
	d := time.Duration(requestMS) * time.Millisecond
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d < 0 {
		d = 0
	}
	return d
}

// compiled resolves a request's Spec to its compiled System through the
// LRU, waiting at most until ctx ends. cacheHit reports whether the
// hash was already present (compile claimed by an earlier request).
func (s *Server) compiled(ctx context.Context, spec soferr.Spec) (sys *soferr.System, hash string, cacheHit bool, compileNs int64, err error) {
	hash = spec.Hash()
	entry, hit := s.cache.get(hash)
	sys, err = entry.compile(ctx, s.cache, s.comp, spec)
	if err != nil {
		return nil, hash, hit, 0, err
	}
	return sys, hash, hit, entry.compileNs, nil
}

// compileStatus maps a compiled() failure: deadline/cancellation keep
// their query semantics, a full compile backlog is overload (503),
// everything else is a bad spec.
func compileStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return statusFor(err)
	}
	if errors.Is(err, errCompileBacklog) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// estimateOptions are the option fields shared by /v1/mttf and
// /v1/compare.
type estimateOptions struct {
	Trials int    `json:"trials,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Engine string `json:"engine,omitempty"`
	// TargetRelStdErr switches Monte-Carlo queries to adaptive
	// precision targeting: trials run until the relative standard
	// error reaches the target (Trials, clamped as usual, is the cap).
	// Values in (0, minTargetRelStdErr) are clamped up; values outside
	// [0, 1) are rejected with 422.
	TargetRelStdErr float64 `json:"target_rel_stderr,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	TimeoutMS       int64   `json:"timeout_ms,omitempty"`
}

// options lowers the wire fields onto soferr.EstimateOptions. The
// request deadline is not applied here: single-query endpoints append
// WithTimeLimit themselves, and the sweep endpoint deliberately puts
// its one deadline on the whole-request context instead of every cell.
func (s *Server) options(o estimateOptions) ([]soferr.EstimateOption, error) {
	trials := o.Trials
	if trials <= 0 {
		trials = s.cfg.DefaultTrials
	}
	// Clamp untrusted resource knobs: trials is compute time (the
	// deadline bounds it, but keep requests sane) and workers is
	// goroutines spawned before any deadline can fire.
	if trials > maxRequestTrials {
		trials = maxRequestTrials
	}
	workers := o.Workers
	if workers < 0 {
		workers = 0
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	opts := []soferr.EstimateOption{
		soferr.WithTrials(trials),
		soferr.WithSeed(o.Seed),
		soferr.WithWorkers(workers),
	}
	if o.Engine != "" {
		engine, err := soferr.EngineByName(o.Engine)
		if err != nil {
			return nil, err
		}
		opts = append(opts, soferr.WithEngine(engine))
	}
	if o.TargetRelStdErr != 0 {
		target := o.TargetRelStdErr
		if target < 0 || target >= 1 || math.IsNaN(target) {
			return nil, fmt.Errorf("%w (got %v)", errTargetOutOfDomain, target)
		}
		if target < minTargetRelStdErr {
			target = minTargetRelStdErr
		}
		opts = append(opts, soferr.WithTargetRelStdErr(target))
	}
	return opts, nil
}

// optionsStatus maps an options() failure: out-of-domain targets are
// semantically unanswerable (422), everything else is a malformed
// request (400).
func optionsStatus(err error) int {
	if errors.Is(err, errTargetOutOfDomain) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// withDeadline appends the request deadline as a WithTimeLimit option
// (clamped by the whole-request context the handlers also create).
func (s *Server) withDeadline(opts []soferr.EstimateOption, timeoutMS int64) []soferr.EstimateOption {
	if d := s.timeout(timeoutMS); d > 0 {
		opts = append(opts, soferr.WithTimeLimit(d))
	}
	return opts
}

type mttfRequest struct {
	Spec   soferr.Spec `json:"spec"`
	Method string      `json:"method,omitempty"`
	estimateOptions
}

type mttfResponse struct {
	SpecHash        string          `json:"spec_hash"`
	CompileCacheHit bool            `json:"compile_cache_hit"`
	CompileMS       float64         `json:"compile_ms"`
	Estimate        soferr.Estimate `json:"estimate"`
}

func (s *Server) handleMTTF(w http.ResponseWriter, r *http.Request) {
	var req mttfRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	methodName := req.Method
	if methodName == "" {
		methodName = "montecarlo"
	}
	method, err := soferr.MethodByName(methodName)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := s.options(req.estimateOptions)
	if err != nil {
		s.writeError(w, r, optionsStatus(err), err.Error())
		return
	}
	opts = s.withDeadline(opts, req.TimeoutMS)
	// One deadline governs the whole request — compile wait plus query.
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	sys, hash, hit, compileNs, err := s.compiled(ctx, req.Spec)
	if err != nil {
		s.writeError(w, r, compileStatus(err), err.Error())
		return
	}
	est, err := sys.MTTF(ctx, method, opts...)
	if err != nil {
		s.writeError(w, r, statusFor(err), err.Error())
		return
	}
	writeJSON(w, mttfResponse{
		SpecHash:        hash,
		CompileCacheHit: hit,
		CompileMS:       float64(compileNs) / 1e6,
		Estimate:        est,
	})
}

type compareRequest struct {
	Spec    soferr.Spec `json:"spec"`
	Methods []string    `json:"methods,omitempty"`
	estimateOptions
}

type compareResponse struct {
	SpecHash        string            `json:"spec_hash"`
	CompileCacheHit bool              `json:"compile_cache_hit"`
	CompileMS       float64           `json:"compile_ms"`
	Estimates       []soferr.Estimate `json:"estimates"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	methods, err := parseMethods(req.Methods)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := s.options(req.estimateOptions)
	if err != nil {
		s.writeError(w, r, optionsStatus(err), err.Error())
		return
	}
	opts = s.withDeadline(opts, req.TimeoutMS)
	// One deadline governs the whole request: the per-method
	// WithTimeLimit above is clamped by this parent context, so
	// comparing N methods cannot take N deadlines.
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	sys, hash, hit, compileNs, err := s.compiled(ctx, req.Spec)
	if err != nil {
		s.writeError(w, r, compileStatus(err), err.Error())
		return
	}
	ests, err := sys.CompareWith(ctx, opts, methods...)
	if err != nil {
		s.writeError(w, r, statusFor(err), err.Error())
		return
	}
	writeJSON(w, compareResponse{
		SpecHash:        hash,
		CompileCacheHit: hit,
		CompileMS:       float64(compileNs) / 1e6,
		Estimates:       ests,
	})
}

func parseMethods(names []string) ([]soferr.Method, error) {
	if len(names) == 0 {
		return nil, nil // soferr defaults to all three
	}
	out := make([]soferr.Method, len(names))
	for i, n := range names {
		m, err := soferr.MethodByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

type reliabilityRequest struct {
	Spec      soferr.Spec `json:"spec"`
	TSeconds  float64     `json:"t_seconds"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

type reliabilityResponse struct {
	SpecHash        string           `json:"spec_hash"`
	CompileCacheHit bool             `json:"compile_cache_hit"`
	TSeconds        soferr.JSONFloat `json:"t_seconds"`
	Reliability     soferr.JSONFloat `json:"reliability"`
}

func (s *Server) handleReliability(w http.ResponseWriter, r *http.Request) {
	var req reliabilityRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	sys, hash, hit, _, err := s.compiled(ctx, req.Spec)
	if err != nil {
		s.writeError(w, r, compileStatus(err), err.Error())
		return
	}
	rel, err := sys.Reliability(ctx, req.TSeconds)
	if err != nil {
		s.writeError(w, r, queryStatus(err), err.Error())
		return
	}
	writeJSON(w, reliabilityResponse{
		SpecHash:        hash,
		CompileCacheHit: hit,
		TSeconds:        soferr.JSONFloat(req.TSeconds),
		Reliability:     soferr.JSONFloat(rel),
	})
}

type quantileRequest struct {
	Spec      soferr.Spec `json:"spec"`
	P         float64     `json:"p"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

type quantileResponse struct {
	SpecHash        string           `json:"spec_hash"`
	CompileCacheHit bool             `json:"compile_cache_hit"`
	P               soferr.JSONFloat `json:"p"`
	TSeconds        soferr.JSONFloat `json:"t_seconds"`
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	var req quantileRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	sys, hash, hit, _, err := s.compiled(ctx, req.Spec)
	if err != nil {
		s.writeError(w, r, compileStatus(err), err.Error())
		return
	}
	t, err := sys.FailureQuantile(ctx, req.P)
	if err != nil {
		s.writeError(w, r, queryStatus(err), err.Error())
		return
	}
	writeJSON(w, quantileResponse{
		SpecHash:        hash,
		CompileCacheHit: hit,
		P:               soferr.JSONFloat(req.P),
		TSeconds:        soferr.JSONFloat(t),
	})
}

// queryContext applies the per-request deadline to non-estimate queries
// (estimate queries get theirs via WithTimeLimit).
func (s *Server) queryContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	if d := s.timeout(timeoutMS); d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

// queryStatus distinguishes the distribution queries' argument errors
// (an out-of-domain time or probability) from internal failures.
func queryStatus(err error) int {
	if errors.Is(err, soferr.ErrInvalidArgument) {
		return http.StatusBadRequest
	}
	return statusFor(err)
}

// sweepRequest spells out its option fields instead of embedding
// estimateOptions: the grid's base Seed and the per-query seed would
// otherwise collide on the "seed" JSON tag and one would silently
// decode to zero.
type sweepRequest struct {
	Name         string              `json:"name,omitempty"`
	Sources      []soferr.SourceSpec `json:"sources"`
	RatesPerYear []float64           `json:"rates_per_year"`
	Counts       []int               `json:"counts,omitempty"`
	Methods      []string            `json:"methods,omitempty"`
	// Seed is the grid's base seed: per-cell streams derive from
	// (seed, cell index), and each cell's derived seed overrides any
	// per-query seed.
	Seed   uint64 `json:"seed,omitempty"`
	Trials int    `json:"trials,omitempty"`
	Engine string `json:"engine,omitempty"`
	// TargetRelStdErr applies adaptive precision targeting to every
	// cell's Monte-Carlo query (clamped and validated exactly as on the
	// estimate endpoints).
	TargetRelStdErr float64 `json:"target_rel_stderr,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	TimeoutMS       int64   `json:"timeout_ms,omitempty"`
}

type sweepResponse struct {
	Name  string              `json:"name,omitempty"`
	Cells []soferr.CellResult `json:"cells"`
	Count int                 `json:"count"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	for i, src := range req.Sources {
		if err := src.Trace.Validate(); err != nil {
			s.writeError(w, r, http.StatusBadRequest, fmt.Sprintf("source %d: %v", i, err))
			return
		}
	}
	methods, err := parseMethods(req.Methods)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// No withDeadline here: the sweep's single deadline goes on the
	// whole-request context below, not on each cell's query.
	opts, err := s.options(estimateOptions{
		Trials:          req.Trials,
		Engine:          req.Engine,
		TargetRelStdErr: req.TargetRelStdErr,
		Workers:         req.Workers,
	})
	if err != nil {
		s.writeError(w, r, optionsStatus(err), err.Error())
		return
	}
	// Cap the cell count before enumerating anything: the axes are
	// client-controlled and a few large axes in a small body would
	// otherwise demand an enormous allocation.
	countAxis := len(req.Counts)
	if countAxis == 0 {
		countAxis = 1
	}
	if n := int64(len(req.Sources)) * int64(len(req.RatesPerYear)) * int64(countAxis); n > maxSweepCells {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Sprintf("sweep of %d cells exceeds the per-request cap %d", n, maxSweepCells))
		return
	}
	grid := soferr.Grid{
		Name:         req.Name,
		Sources:      s.comp.Sources(req.Sources),
		RatesPerYear: req.RatesPerYear,
		Counts:       req.Counts,
		Methods:      methods,
		Seed:         req.Seed,
	}
	// Enumerate once: shape errors surface here as clean 400s, and the
	// cells feed straight into the engine; errors after this point are
	// runtime failures and map via statusFor.
	cells, err := grid.Cells()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	results, err := soferr.SweepCellsAll(ctx, grid.Sources, cells, methods, nil, opts...)
	if err != nil {
		s.writeError(w, r, statusFor(err), err.Error())
		return
	}
	writeJSON(w, sweepResponse{Name: req.Name, Cells: results, Count: len(results)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{"ok", time.Since(s.start).Seconds()})
}

// Metrics is the /metrics document (also returned by the method for
// tests and embedding).
type Metrics struct {
	Queries map[string]int64 `json:"queries"`
	// Latency carries per-endpoint request-latency summaries: requests
	// completed, total and max wall milliseconds (mean = total/count).
	Latency  map[string]LatencySummary `json:"latency"`
	Errors   int64                     `json:"errors"`
	Inflight int64                     `json:"inflight"`
	Cache    struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Size      int   `json:"size"`
		Capacity  int   `json:"capacity"`
	} `json:"compile_cache"`
	Compiles       int64   `json:"compiles"`
	CompileMSTotal float64 `json:"compile_ms_total"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// LatencySummary is one endpoint's request-latency summary.
type LatencySummary struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Metrics returns a snapshot of the server's counters.
func (s *Server) Metrics() Metrics {
	var m Metrics
	m.Queries = make(map[string]int64, len(endpointNames))
	m.Latency = make(map[string]LatencySummary, len(endpointNames))
	for i, name := range endpointNames {
		m.Queries[name] = s.queries[i].Load()
		m.Latency[name] = LatencySummary{
			Count:   s.latCount[i].Load(),
			TotalMS: float64(s.latNs[i].Load()) / 1e6,
			MaxMS:   float64(s.latMaxNs[i].Load()) / 1e6,
		}
	}
	m.Errors = s.errorCount.Load()
	m.Inflight = s.inflight.Load()
	hits, misses, evictions, size, capacity := s.cache.stats()
	m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions = hits, misses, evictions
	m.Cache.Size, m.Cache.Capacity = size, capacity
	m.Compiles = s.cache.compiles.Load()
	m.CompileMSTotal = float64(s.cache.compileNs.Load()) / 1e6
	m.UptimeSeconds = time.Since(s.start).Seconds()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Metrics())
}
