// Package server exposes the soferr estimation stack behind a stable
// HTTP query interface: clients POST a declarative system Spec plus
// estimate options and get JSON estimates back, with the expensive
// compile step amortized across requests and users.
//
// Layering (see DESIGN.md, "Serving layer"):
//
//   - soferr.Spec is the wire format: a canonical, hashable system
//     description. Equal Specs hash equal.
//   - A bounded LRU keyed by Spec hash maps each distinct Spec to one
//     compiled *soferr.System, with single-flight compilation. Because
//     a System memoizes its own deterministic and seeded-Monte-Carlo
//     queries, a repeated identical Spec+query is served entirely from
//     cache — bit-identical to recomputation.
//   - Every query endpoint runs under a server-wide concurrency limit
//     and a per-request deadline mapped onto the query's context (and
//     soferr.WithTimeLimit for estimate queries).
//
// Endpoints:
//
//	POST /v1/mttf        one estimate: {spec, method, trials, seed, engine, workers, timeout_ms}
//	POST /v1/compare     several methods on one compiled system: {spec, methods, ...}
//	POST /v1/reliability survival probability: {spec, t_seconds, ...}
//	POST /v1/quantile    failure-time quantile: {spec, p, ...}
//	POST /v1/sweep       a design-space grid: {sources, rates_per_year, counts, methods, seed, ...};
//	                     supports cursor/limit pagination and ?stream=ndjson streaming (resumable)
//	GET  /healthz        liveness (200 while the process runs)
//	GET  /readyz         readiness (503 once draining; load balancers stop routing here)
//	GET  /metrics        query counts, cache hits, compile time, error classes, recovered panics (JSON)
//
// Errors are structured: {"error": {"status": N, "message": "..."}},
// with machine-readable extras where a client can act on them
// (retry_after_seconds on overload 503s, max_sweep_cells and
// requested_cells on sweep-cap overflows). The failure model — what
// each fault does to in-flight requests — is documented in DESIGN.md,
// "Failure model", and enforced by the chaos test suite.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/faultinject"
)

// Defaults for Config zero values.
const (
	defaultCacheSize  = 128
	defaultMaxTimeout = 60 * time.Second
	maxRequestBytes   = 1 << 20
	// maxRequestTrials caps client-supplied Monte-Carlo trial counts
	// (50x the package default — sub-0.1% standard error — is plenty for
	// any served query; the deadline bounds the time either way).
	maxRequestTrials = 50 * soferr.DefaultTrials
	// maxSweepCells caps the cells one sweep request may evaluate
	// (Config.MaxSweepCells overrides): cell structs are small but the
	// count is the product of client-supplied axes, and every cell is at
	// least one query. Larger grids page through with cursor/limit.
	maxSweepCells = 65536
	// maxSweepEnumFactor bounds the grid a paged sweep may enumerate at
	// all, as a multiple of the per-request cap: cursor pagination must
	// enumerate the full grid (per-cell seeds derive from absolute cell
	// indices) even though it evaluates only a window of it.
	maxSweepEnumFactor = 4
	// defaultRetryAfterSeconds is the Retry-After hint attached to
	// overload 503s (saturated limiter, full compile backlog): long
	// enough for a slot to drain, short enough that clients keep load.
	defaultRetryAfterSeconds = 1
	// minTargetRelStdErr clamps client-supplied adaptive precision
	// targets: trials scale like 1/target^2, so the floor (together
	// with the trials cap, which adaptive runs also respect) bounds the
	// work one request can demand.
	minTargetRelStdErr = 1e-4
)

// errTargetOutOfDomain tags a target_rel_stderr outside [0, 1): the
// request is well-formed JSON but semantically unanswerable, so it maps
// to 422 rather than the 400 of a malformed body.
var errTargetOutOfDomain = errors.New("target_rel_stderr must be in [0, 1)")

// errUnknownSampler tags an unparseable sampler name. Like
// errTargetOutOfDomain it maps to 422: the body is well-formed JSON,
// the named sampler just does not exist.
var errUnknownSampler = errors.New("unknown sampler")

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// CacheSize bounds the compiled-System LRU (default 128 systems).
	CacheSize int
	// MaxConcurrent bounds in-flight query requests (default
	// GOMAXPROCS); excess requests wait, and give up with 503 when their
	// context ends first.
	MaxConcurrent int
	// DefaultTrials is the Monte-Carlo trial count for requests that do
	// not set one (default soferr.DefaultTrials).
	DefaultTrials int
	// MaxTimeout caps (and, for requests that set none, supplies) the
	// per-request deadline (default 60s; negative disables).
	MaxTimeout time.Duration
	// MaxSweepCells caps the cells one sweep request may evaluate
	// (default 65536). Grids up to maxSweepEnumFactor times larger may
	// still be swept by paging with cursor/limit.
	MaxSweepCells int
	// Compiler compiles Specs; supply one to share its benchmark
	// simulation cache with other users (default: a fresh Compiler).
	Compiler *soferr.Compiler
	// Log, when non-nil, receives one line per failed request.
	Log io.Writer
}

// Server is the soferr query service: an http.Handler serving the /v1
// endpoints plus health and metrics. Create it with New; it is safe
// for concurrent use. It keeps no long-lived goroutines, but Spec
// compiles run on short-lived background goroutines (bounded in number
// by the compile semaphore and queue) that may briefly outlive a
// timed-out request — after http.Server.Shutdown returns, an in-flight
// compile can still be finishing into the cache.
type Server struct {
	cfg   Config
	comp  *soferr.Compiler
	cache *systemCache
	sem   chan struct{}
	mux   *http.ServeMux
	start time.Time

	queries    [5]atomic.Int64 // indexed by endpoint
	errorCount atomic.Int64
	inflight   atomic.Int64

	// ready is the /readyz state: true from New until BeginDrain. The
	// process stays live (/healthz 200) while draining; only routing
	// readiness flips.
	ready atomic.Bool
	// panics counts handler panics the recovery middleware contained.
	panics atomic.Int64
	// errClasses counts failed requests per endpoint by class:
	// [0]=4xx, [1]=5xx (excluding 504), [2]=timeouts (504).
	errClasses [5][3]atomic.Int64

	// samplerQueries counts estimate queries per endpoint by the
	// sampler they resolved to ([0]=pcg, [1]=sobol), so operators can
	// watch QMC adoption per endpoint from /metrics.
	samplerQueries [5][2]atomic.Int64

	// Per-endpoint request-latency summaries (count/sum/max), measured
	// around the whole handler — decode, compile wait, query, encode —
	// so the cache-hit vs cold-compile split BENCH_serve.json records
	// offline is observable in production via /metrics.
	latCount [5]atomic.Int64
	latNs    [5]atomic.Int64
	latMaxNs [5]atomic.Int64
}

// endpoint indexes the per-endpoint query counters.
type endpoint int

const (
	epMTTF endpoint = iota
	epCompare
	epReliability
	epQuantile
	epSweep
)

var endpointNames = [5]string{"mttf", "compare", "reliability", "quantile", "sweep"}

// New builds a Server from the config.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultTrials <= 0 {
		cfg.DefaultTrials = soferr.DefaultTrials
	}
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = defaultMaxTimeout
	}
	comp := cfg.Compiler
	if comp == nil {
		comp = &soferr.Compiler{}
	}
	s := &Server{
		cfg:   cfg,
		comp:  comp,
		cache: newSystemCache(cfg.CacheSize, cfg.MaxConcurrent),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("/v1/mttf", s.query(epMTTF, s.handleMTTF))
	s.mux.HandleFunc("/v1/compare", s.query(epCompare, s.handleCompare))
	s.mux.HandleFunc("/v1/reliability", s.query(epReliability, s.handleReliability))
	s.mux.HandleFunc("/v1/quantile", s.query(epQuantile, s.handleQuantile))
	s.mux.HandleFunc("/v1/sweep", s.query(epSweep, s.handleSweep))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.ready.Store(true)
	return s
}

// ServeHTTP implements http.Handler. It is also the panic-recovery
// middleware: a panic anywhere in a handler — a corrupted trace, an
// injected chaos fault — is contained to that one request (counted,
// logged with its stack) instead of killing the process. Requests that
// had not started their response get a structured 500; mid-stream
// panics abort the connection so the client sees truncation, never a
// clean-looking partial body.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sr := &startedWriter{ResponseWriter: w}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			// The handler deliberately aborted the response; net/http
			// handles this quietly. Not ours to contain.
			panic(rec)
		}
		s.panics.Add(1)
		if s.cfg.Log != nil {
			fmt.Fprintf(s.cfg.Log, "panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
		}
		if !sr.started {
			s.writeError(sr, r, http.StatusInternalServerError,
				fmt.Sprintf("internal error: recovered panic: %v", rec))
			return
		}
		panic(http.ErrAbortHandler)
	}()
	s.mux.ServeHTTP(sr, r)
}

// startedWriter records whether the response has begun, so the recovery
// middleware knows whether a structured 500 is still possible. It
// forwards Flush for the NDJSON streaming path.
type startedWriter struct {
	http.ResponseWriter
	started bool
}

func (sw *startedWriter) WriteHeader(status int) {
	sw.started = true
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *startedWriter) Write(b []byte) (int, error) {
	sw.started = true
	return sw.ResponseWriter.Write(b)
}

func (sw *startedWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// httpError is the structured error envelope every failure returns.
// Beyond status and message it carries machine-readable fields a client
// can act on without parsing prose.
type httpError struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
	// RetryAfterSeconds, when set, mirrors the Retry-After header: the
	// failure is overload, not a bad request — back off and resend.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// MaxSweepCells and RequestedCells are set on sweep-cap overflows so
	// a client can split the grid into cursor/limit pages automatically.
	MaxSweepCells  int64 `json:"max_sweep_cells,omitempty"`
	RequestedCells int64 `json:"requested_cells,omitempty"`
}

// epCtxKey carries the request's endpoint through the context so error
// writes can be classified per endpoint.
type epCtxKey struct{}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	s.writeErrorFull(w, r, httpError{Status: status, Message: msg})
}

func (s *Server) writeErrorFull(w http.ResponseWriter, r *http.Request, he httpError) {
	s.errorCount.Add(1)
	if ep, ok := r.Context().Value(epCtxKey{}).(endpoint); ok {
		switch {
		case he.Status == http.StatusGatewayTimeout:
			s.errClasses[ep][2].Add(1)
		case he.Status >= 500:
			s.errClasses[ep][1].Add(1)
		case he.Status >= 400:
			s.errClasses[ep][0].Add(1)
		}
	}
	// Every overload 503 tells the client when to come back; explicit
	// hints (none yet) would override the default.
	if he.Status == http.StatusServiceUnavailable && he.RetryAfterSeconds == 0 {
		he.RetryAfterSeconds = defaultRetryAfterSeconds
	}
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "%s %s -> %d %s\n", r.Method, r.URL.Path, he.Status, he.Message)
	}
	if he.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(he.RetryAfterSeconds))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(he.Status)
	json.NewEncoder(w).Encode(struct {
		Error httpError `json:"error"`
	}{he})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// statusFor maps a query failure to an HTTP status: bad specs and
// options are the client's fault, deadlines are 504, everything else
// is 500. (A system that cannot fail is no longer an error anywhere
// the server queries — MTTF answers 200 with "+Inf" — and
// out-of-domain options map to 422 via optionsStatus/queryStatus.)
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, soferr.ErrExactUnavailable):
		// The client asked the exact engine about a system whose hazard
		// cannot be tabulated (incommensurate periods, over-cap merge,
		// lazy trace mixtures): semantically unanswerable as asked, not
		// a server fault. Retrying with a sampling engine succeeds.
		return http.StatusUnprocessableEntity
	case errors.Is(err, soferr.ErrSamplerUnsupported):
		// The client asked for the Sobol sampler on an engine or system
		// without a fixed per-trial draw count: unanswerable as asked,
		// answerable with the PCG sampler.
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// fiHandlerPoint is the chaos injection point inside the query wrapper,
// after the limiter: Delay scripts a slow handler, PanicMsg exercises
// the recovery middleware, Err a structured 500. No-op unless a
// faultinject schedule is armed.
const fiHandlerPoint = "server.handler"

// query wraps a handler with the shared per-request machinery: POST
// enforcement, the concurrency limiter, and the query counter.
func (s *Server) query(ep endpoint, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r = r.WithContext(context.WithValue(r.Context(), epCtxKey{}, ep))
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, r, http.StatusMethodNotAllowed, "POST a JSON request body")
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			s.writeError(w, r, http.StatusServiceUnavailable, "server saturated; request context ended while waiting")
			return
		}
		s.queries[ep].Add(1)
		s.inflight.Add(1)
		start := time.Now()
		defer func() {
			s.inflight.Add(-1)
			s.observeLatency(ep, time.Since(start))
		}()
		if err := faultinject.Fire(fiHandlerPoint); err != nil {
			s.writeError(w, r, http.StatusInternalServerError, err.Error())
			return
		}
		h(w, r)
	}
}

// observeLatency folds one request's wall time into the endpoint's
// count/sum/max summary.
func (s *Server) observeLatency(ep endpoint, d time.Duration) {
	ns := d.Nanoseconds()
	s.latCount[ep].Add(1)
	s.latNs[ep].Add(ns)
	for {
		cur := s.latMaxNs[ep].Load()
		if ns <= cur || s.latMaxNs[ep].CompareAndSwap(cur, ns) {
			return
		}
	}
}

// decode strictly parses the request body into v: unknown fields are
// rejected so typoed options fail loudly instead of silently meaning
// their defaults.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request: %v", err)
	}
	return nil
}

// timeout resolves the effective per-request deadline: the request's
// timeout_ms capped by (or defaulting to) Config.MaxTimeout.
func (s *Server) timeout(requestMS int64) time.Duration {
	d := time.Duration(requestMS) * time.Millisecond
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d < 0 {
		d = 0
	}
	return d
}

// compiled resolves a request's Spec to its compiled System through the
// LRU, waiting at most until ctx ends. cacheHit reports whether the
// hash was already present (compile claimed by an earlier request).
func (s *Server) compiled(ctx context.Context, spec soferr.Spec) (sys *soferr.System, hash string, cacheHit bool, compileNs int64, err error) {
	hash = spec.Hash()
	entry, hit := s.cache.get(hash)
	sys, err = entry.compile(ctx, s.cache, s.comp, spec)
	if err != nil {
		return nil, hash, hit, 0, err
	}
	return sys, hash, hit, entry.compileNs, nil
}

// compileStatus maps a compiled() failure: deadline/cancellation keep
// their query semantics, a full compile backlog is overload (503),
// everything else is a bad spec.
func compileStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return statusFor(err)
	}
	if errors.Is(err, errCompileBacklog) {
		return http.StatusServiceUnavailable
	}
	// A contained compile panic or an injected chaos fault is the
	// server's failure, not the spec's.
	if errors.Is(err, errCompilePanic) || errors.Is(err, faultinject.ErrInjected) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// estimateOptions are the option fields shared by /v1/mttf and
// /v1/compare.
type estimateOptions struct {
	Trials int    `json:"trials,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Engine string `json:"engine,omitempty"`
	// Sampler selects the Monte-Carlo draw source ("pcg", the default,
	// or "sobol" for quasi-Monte-Carlo on the inverted and fused
	// engines). Unknown names are 422s; Sobol on an incompatible
	// engine/system maps soferr.ErrSamplerUnsupported to 422 too.
	Sampler string `json:"sampler,omitempty"`
	// TargetRelStdErr switches Monte-Carlo queries to adaptive
	// precision targeting: trials run until the relative standard
	// error reaches the target (Trials, clamped as usual, is the cap).
	// Values in (0, minTargetRelStdErr) are clamped up; values outside
	// [0, 1) are rejected with 422.
	TargetRelStdErr float64 `json:"target_rel_stderr,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	TimeoutMS       int64   `json:"timeout_ms,omitempty"`
}

// options lowers the wire fields onto soferr.EstimateOptions and
// counts the endpoint's query under its sampler label. The request
// deadline is not applied here: single-query endpoints append
// WithTimeLimit themselves, and the sweep endpoint deliberately puts
// its one deadline on the whole-request context instead of every cell.
func (s *Server) options(ep endpoint, o estimateOptions) ([]soferr.EstimateOption, error) {
	trials := o.Trials
	if trials <= 0 {
		trials = s.cfg.DefaultTrials
	}
	// Clamp untrusted resource knobs: trials is compute time (the
	// deadline bounds it, but keep requests sane) and workers is
	// goroutines spawned before any deadline can fire.
	if trials > maxRequestTrials {
		trials = maxRequestTrials
	}
	workers := o.Workers
	if workers < 0 {
		workers = 0
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	opts := []soferr.EstimateOption{
		soferr.WithTrials(trials),
		soferr.WithSeed(o.Seed),
		soferr.WithWorkers(workers),
	}
	if o.Engine != "" {
		engine, err := soferr.EngineByName(o.Engine)
		if err != nil {
			return nil, err
		}
		opts = append(opts, soferr.WithEngine(engine))
	}
	sampler, err := soferr.SamplerByName(o.Sampler)
	if err != nil {
		return nil, fmt.Errorf("%w %q (want pcg or sobol)", errUnknownSampler, o.Sampler)
	}
	opts = append(opts, soferr.WithSampler(sampler))
	s.samplerQueries[ep][sampler].Add(1)
	if o.TargetRelStdErr != 0 {
		target := o.TargetRelStdErr
		if target < 0 || target >= 1 || math.IsNaN(target) {
			return nil, fmt.Errorf("%w (got %v)", errTargetOutOfDomain, target)
		}
		if target < minTargetRelStdErr {
			target = minTargetRelStdErr
		}
		opts = append(opts, soferr.WithTargetRelStdErr(target))
	}
	return opts, nil
}

// optionsStatus maps an options() failure: out-of-domain targets and
// unknown sampler names are semantically unanswerable (422),
// everything else is a malformed request (400).
func optionsStatus(err error) int {
	if errors.Is(err, errTargetOutOfDomain) || errors.Is(err, errUnknownSampler) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// withDeadline appends the request deadline as a WithTimeLimit option
// (clamped by the whole-request context the handlers also create).
func (s *Server) withDeadline(opts []soferr.EstimateOption, timeoutMS int64) []soferr.EstimateOption {
	if d := s.timeout(timeoutMS); d > 0 {
		opts = append(opts, soferr.WithTimeLimit(d))
	}
	return opts
}

type mttfRequest struct {
	Spec   soferr.Spec `json:"spec"`
	Method string      `json:"method,omitempty"`
	estimateOptions
}

type mttfResponse struct {
	SpecHash        string          `json:"spec_hash"`
	CompileCacheHit bool            `json:"compile_cache_hit"`
	CompileMS       float64         `json:"compile_ms"`
	Estimate        soferr.Estimate `json:"estimate"`
}

func (s *Server) handleMTTF(w http.ResponseWriter, r *http.Request) {
	var req mttfRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	methodName := req.Method
	if methodName == "" {
		methodName = "montecarlo"
	}
	method, err := soferr.MethodByName(methodName)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := s.options(epMTTF, req.estimateOptions)
	if err != nil {
		s.writeError(w, r, optionsStatus(err), err.Error())
		return
	}
	opts = s.withDeadline(opts, req.TimeoutMS)
	// One deadline governs the whole request — compile wait plus query.
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	sys, hash, hit, compileNs, err := s.compiled(ctx, req.Spec)
	if err != nil {
		s.writeError(w, r, compileStatus(err), err.Error())
		return
	}
	est, err := sys.MTTF(ctx, method, opts...)
	if err != nil {
		s.writeError(w, r, statusFor(err), err.Error())
		return
	}
	writeJSON(w, mttfResponse{
		SpecHash:        hash,
		CompileCacheHit: hit,
		CompileMS:       float64(compileNs) / 1e6,
		Estimate:        est,
	})
}

type compareRequest struct {
	Spec    soferr.Spec `json:"spec"`
	Methods []string    `json:"methods,omitempty"`
	estimateOptions
}

type compareResponse struct {
	SpecHash        string            `json:"spec_hash"`
	CompileCacheHit bool              `json:"compile_cache_hit"`
	CompileMS       float64           `json:"compile_ms"`
	Estimates       []soferr.Estimate `json:"estimates"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	methods, err := parseMethods(req.Methods)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := s.options(epCompare, req.estimateOptions)
	if err != nil {
		s.writeError(w, r, optionsStatus(err), err.Error())
		return
	}
	opts = s.withDeadline(opts, req.TimeoutMS)
	// One deadline governs the whole request: the per-method
	// WithTimeLimit above is clamped by this parent context, so
	// comparing N methods cannot take N deadlines.
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	sys, hash, hit, compileNs, err := s.compiled(ctx, req.Spec)
	if err != nil {
		s.writeError(w, r, compileStatus(err), err.Error())
		return
	}
	ests, err := sys.CompareWith(ctx, opts, methods...)
	if err != nil {
		s.writeError(w, r, statusFor(err), err.Error())
		return
	}
	writeJSON(w, compareResponse{
		SpecHash:        hash,
		CompileCacheHit: hit,
		CompileMS:       float64(compileNs) / 1e6,
		Estimates:       ests,
	})
}

func parseMethods(names []string) ([]soferr.Method, error) {
	if len(names) == 0 {
		return nil, nil // soferr defaults to all three
	}
	out := make([]soferr.Method, len(names))
	for i, n := range names {
		m, err := soferr.MethodByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

type reliabilityRequest struct {
	Spec      soferr.Spec `json:"spec"`
	TSeconds  float64     `json:"t_seconds"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

type reliabilityResponse struct {
	SpecHash        string           `json:"spec_hash"`
	CompileCacheHit bool             `json:"compile_cache_hit"`
	TSeconds        soferr.JSONFloat `json:"t_seconds"`
	Reliability     soferr.JSONFloat `json:"reliability"`
}

func (s *Server) handleReliability(w http.ResponseWriter, r *http.Request) {
	var req reliabilityRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	sys, hash, hit, _, err := s.compiled(ctx, req.Spec)
	if err != nil {
		s.writeError(w, r, compileStatus(err), err.Error())
		return
	}
	rel, err := sys.Reliability(ctx, req.TSeconds)
	if err != nil {
		s.writeError(w, r, queryStatus(err), err.Error())
		return
	}
	writeJSON(w, reliabilityResponse{
		SpecHash:        hash,
		CompileCacheHit: hit,
		TSeconds:        soferr.JSONFloat(req.TSeconds),
		Reliability:     soferr.JSONFloat(rel),
	})
}

type quantileRequest struct {
	Spec      soferr.Spec `json:"spec"`
	P         float64     `json:"p"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

type quantileResponse struct {
	SpecHash        string           `json:"spec_hash"`
	CompileCacheHit bool             `json:"compile_cache_hit"`
	P               soferr.JSONFloat `json:"p"`
	TSeconds        soferr.JSONFloat `json:"t_seconds"`
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	var req quantileRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	sys, hash, hit, _, err := s.compiled(ctx, req.Spec)
	if err != nil {
		s.writeError(w, r, compileStatus(err), err.Error())
		return
	}
	t, err := sys.FailureQuantile(ctx, req.P)
	if err != nil {
		s.writeError(w, r, queryStatus(err), err.Error())
		return
	}
	writeJSON(w, quantileResponse{
		SpecHash:        hash,
		CompileCacheHit: hit,
		P:               soferr.JSONFloat(req.P),
		TSeconds:        soferr.JSONFloat(t),
	})
}

// queryContext applies the per-request deadline to non-estimate queries
// (estimate queries get theirs via WithTimeLimit).
func (s *Server) queryContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	if d := s.timeout(timeoutMS); d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

// queryStatus distinguishes the distribution queries' argument errors
// (an out-of-domain time or probability) from internal failures.
func queryStatus(err error) int {
	if errors.Is(err, soferr.ErrInvalidArgument) {
		return http.StatusBadRequest
	}
	return statusFor(err)
}

// sweepRequest spells out its option fields instead of embedding
// estimateOptions: the grid's base Seed and the per-query seed would
// otherwise collide on the "seed" JSON tag and one would silently
// decode to zero.
type sweepRequest struct {
	Name         string              `json:"name,omitempty"`
	Sources      []soferr.SourceSpec `json:"sources"`
	RatesPerYear []float64           `json:"rates_per_year"`
	Counts       []int               `json:"counts,omitempty"`
	Methods      []string            `json:"methods,omitempty"`
	// Seed is the grid's base seed: per-cell streams derive from
	// (seed, cell index), and each cell's derived seed overrides any
	// per-query seed.
	Seed   uint64 `json:"seed,omitempty"`
	Trials int    `json:"trials,omitempty"`
	Engine string `json:"engine,omitempty"`
	// Sampler applies to every cell's Monte-Carlo query, validated
	// exactly as on the estimate endpoints.
	Sampler string `json:"sampler,omitempty"`
	// TargetRelStdErr applies adaptive precision targeting to every
	// cell's Monte-Carlo query (clamped and validated exactly as on the
	// estimate endpoints).
	TargetRelStdErr float64 `json:"target_rel_stderr,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	TimeoutMS       int64   `json:"timeout_ms,omitempty"`
	// Stream selects the response shape: "" for the collected JSON
	// document, "ndjson" for one result line per cell as it completes,
	// terminated by a {"done":true,...} line (its absence means the
	// stream was truncated). The ?stream= query parameter overrides.
	Stream string `json:"stream,omitempty"`
	// Cursor and Limit page through the grid: evaluate up to Limit cells
	// starting at absolute cell index Cursor (0 = from the start,
	// Limit 0 = all remaining). Cells are always enumerated from the
	// full grid so per-cell seeds — functions of the absolute index —
	// are identical whether the grid is swept whole or in pages, and a
	// resumed sweep is bit-identical to the tail of an uninterrupted
	// one. ?cursor= and ?limit= query parameters override.
	Cursor int64 `json:"cursor,omitempty"`
	Limit  int64 `json:"limit,omitempty"`
}

type sweepResponse struct {
	Name  string              `json:"name,omitempty"`
	Cells []soferr.CellResult `json:"cells"`
	Count int                 `json:"count"`
	// Cursor echoes the page's starting cell index; NextCursor, when
	// present, is the cursor that resumes the sweep; Total is the full
	// grid's cell count.
	Cursor     int64 `json:"cursor"`
	NextCursor int64 `json:"next_cursor,omitempty"`
	Total      int64 `json:"total"`
}

// sweepLine is one NDJSON result line. Cell.Index is the absolute grid
// index (resume cursor = last index + 1). Per-cell failures arrive as
// lines with Error set instead of failing the stream.
type sweepLine struct {
	Cell      soferr.Cell       `json:"cell"`
	Estimates []soferr.Estimate `json:"estimates,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// sweepDone is the NDJSON terminator line: a client that never sees it
// knows the stream was cut and resumes from its last index + 1.
type sweepDone struct {
	Done       bool  `json:"done"`
	Cursor     int64 `json:"cursor"`
	Count      int64 `json:"count"`
	NextCursor int64 `json:"next_cursor,omitempty"`
	Total      int64 `json:"total"`
	CellErrors int64 `json:"cell_errors,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	for i, src := range req.Sources {
		if err := src.Trace.Validate(); err != nil {
			s.writeError(w, r, http.StatusBadRequest, fmt.Sprintf("source %d: %v", i, err))
			return
		}
	}
	methods, err := parseMethods(req.Methods)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// No withDeadline here: the sweep's single deadline goes on the
	// whole-request context below, not on each cell's query.
	opts, err := s.options(epSweep, estimateOptions{
		Trials:          req.Trials,
		Engine:          req.Engine,
		Sampler:         req.Sampler,
		TargetRelStdErr: req.TargetRelStdErr,
		Workers:         req.Workers,
	})
	if err != nil {
		s.writeError(w, r, optionsStatus(err), err.Error())
		return
	}
	// Query parameters override body paging fields so a client can
	// resume or re-page a sweep without rebuilding the request body.
	if err := overrideSweepParams(r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if req.Stream != "" && req.Stream != "ndjson" {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Sprintf("unknown stream mode %q (want \"ndjson\")", req.Stream))
		return
	}
	// Cap the cell count before enumerating anything: the axes are
	// client-controlled and a few large axes in a small body would
	// otherwise demand an enormous allocation. Two caps: the grid must
	// be enumerable at all (pagination needs absolute indices, hence a
	// full enumeration), and the cursor/limit window actually evaluated
	// must fit the per-request cap.
	countAxis := len(req.Counts)
	if countAxis == 0 {
		countAxis = 1
	}
	evalCap := int64(s.cfg.MaxSweepCells)
	if evalCap <= 0 {
		evalCap = maxSweepCells
	}
	total := int64(len(req.Sources)) * int64(len(req.RatesPerYear)) * int64(countAxis)
	if total > evalCap*maxSweepEnumFactor {
		s.writeErrorFull(w, r, httpError{
			Status: http.StatusBadRequest,
			Message: fmt.Sprintf("grid of %d cells exceeds the enumerable bound %d; shrink the axes",
				total, evalCap*maxSweepEnumFactor),
			MaxSweepCells:  evalCap,
			RequestedCells: total,
		})
		return
	}
	if req.Cursor < 0 || req.Cursor > total {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Sprintf("cursor %d outside [0, %d]", req.Cursor, total))
		return
	}
	if req.Limit < 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Sprintf("limit %d is negative", req.Limit))
		return
	}
	window := total - req.Cursor
	if req.Limit > 0 && req.Limit < window {
		window = req.Limit
	}
	if window > evalCap {
		s.writeErrorFull(w, r, httpError{
			Status: http.StatusBadRequest,
			Message: fmt.Sprintf("sweep of %d cells exceeds the per-request cap %d; page with cursor/limit",
				window, evalCap),
			MaxSweepCells:  evalCap,
			RequestedCells: window,
		})
		return
	}
	grid := soferr.Grid{
		Name:         req.Name,
		Sources:      s.comp.Sources(req.Sources),
		RatesPerYear: req.RatesPerYear,
		Counts:       req.Counts,
		Methods:      methods,
		Seed:         req.Seed,
	}
	// Enumerate the FULL grid, then slice the page: per-cell seeds are
	// derived from absolute cell indices at enumeration time and ride
	// along in Cell.Seed, which is what makes a cursor-resumed page
	// bit-identical to the same cells of an unpaged sweep. Shape errors
	// surface here as clean 400s; errors after this point are runtime
	// failures and map via statusFor.
	cells, err := grid.Cells()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	page := cells[req.Cursor : req.Cursor+window]
	nextCursor := int64(0)
	if end := req.Cursor + window; end < total {
		nextCursor = end
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMS)
	defer cancel()
	if req.Stream == "ndjson" {
		s.streamSweep(ctx, w, r, grid, page, methods, opts, req.Cursor, nextCursor, total)
		return
	}
	results, err := soferr.SweepCellsAll(ctx, grid.Sources, page, methods, nil, opts...)
	if err != nil {
		s.writeError(w, r, statusFor(err), err.Error())
		return
	}
	// The engine renumbers cell indices to page positions; restore the
	// absolute grid indices the cursor contract promises.
	for i := range results {
		results[i].Cell.Index = int(req.Cursor) + i
	}
	writeJSON(w, sweepResponse{
		Name: req.Name, Cells: results, Count: len(results),
		Cursor: req.Cursor, NextCursor: nextCursor, Total: total,
	})
}

// overrideSweepParams applies the ?stream=, ?cursor=, and ?limit= query
// parameters over the body's paging fields.
func overrideSweepParams(r *http.Request, req *sweepRequest) error {
	q := r.URL.Query()
	if v := q.Get("stream"); v != "" {
		req.Stream = v
	}
	for _, p := range []struct {
		name string
		dst  *int64
	}{{"cursor", &req.Cursor}, {"limit", &req.Limit}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("invalid %s parameter %q", p.name, v)
			}
			*p.dst = n
		}
	}
	return nil
}

// streamSweep writes the page as NDJSON: one sweepLine per cell as it
// completes (in cell order, per-cell errors as Error lines), then the
// sweepDone terminator. Once the first line is out the status is
// committed; later failures surface as a truncated stream — no done
// line — which clients treat as "resume from last index + 1".
func (s *Server) streamSweep(ctx context.Context, w http.ResponseWriter, r *http.Request,
	grid soferr.Grid, page []soferr.Cell, methods []soferr.Method, opts []soferr.EstimateOption,
	cursor, nextCursor, total int64) {
	ch, err := soferr.SweepCells(ctx, grid.Sources, page, methods, opts...)
	if err != nil {
		s.writeError(w, r, statusFor(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var delivered, cellErrors int64
	for res := range ch {
		line := sweepLine{Cell: res.Cell, Estimates: res.Estimates}
		line.Cell.Index = int(cursor) + res.Cell.Index
		if res.Err != nil {
			line.Error = res.Err.Error()
			line.Estimates = nil
			cellErrors++
		}
		if err := enc.Encode(line); err != nil {
			// The client went away; drain via context cancellation is the
			// caller's job — just stop writing.
			return
		}
		delivered++
		if flusher != nil {
			flusher.Flush()
		}
	}
	if delivered < int64(len(page)) {
		// The context ended before the page finished: ending without the
		// done line IS the truncation signal.
		return
	}
	enc.Encode(sweepDone{
		Done: true, Cursor: cursor, Count: delivered,
		NextCursor: nextCursor, Total: total, CellErrors: cellErrors,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// handleHealthz is pure liveness: 200 for as long as the process can
// answer at all, including while draining. Orchestrators use it to
// decide whether to restart the process, not whether to route to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{"ok", time.Since(s.start).Seconds()})
}

// BeginDrain flips /readyz to 503 without touching in-flight work: load
// balancers stop routing new requests here while existing ones finish.
// Call it before http.Server.Shutdown so the readiness flip propagates
// ahead of the listener closing.
func (s *Server) BeginDrain() { s.ready.Store(false) }

// Ready reports the /readyz state.
func (s *Server) Ready() bool { return s.ready.Load() }

// handleReadyz is routing readiness: 200 while accepting new work, 503
// (with Retry-After) once BeginDrain has been called. Deliberately not
// routed through writeError — drain-time readiness probes are expected
// traffic, not failures to count.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readyz struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if !s.ready.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(defaultRetryAfterSeconds))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(readyz{"draining", time.Since(s.start).Seconds()})
		return
	}
	writeJSON(w, readyz{"ready", time.Since(s.start).Seconds()})
}

// Metrics is the /metrics document (also returned by the method for
// tests and embedding).
type Metrics struct {
	Queries map[string]int64 `json:"queries"`
	// Latency carries per-endpoint request-latency summaries: requests
	// completed, total and max wall milliseconds (mean = total/count).
	Latency  map[string]LatencySummary `json:"latency"`
	Errors   int64                     `json:"errors"`
	Inflight int64                     `json:"inflight"`
	// ErrorClasses splits each endpoint's failures into client errors,
	// server errors, and timeouts, so an operator can tell overload and
	// bugs apart from bad requests at a glance.
	ErrorClasses map[string]ErrorClassCounts `json:"error_classes"`
	// Samplers labels each estimate endpoint's queries by the
	// Monte-Carlo sampler they resolved to, so PCG-vs-Sobol adoption is
	// observable per endpoint. Endpoints that never run Monte-Carlo
	// (reliability, quantile) are omitted.
	Samplers map[string]SamplerCounts `json:"samplers"`
	// PanicsRecovered counts handler panics the recovery middleware
	// contained; any nonzero value is a bug worth chasing, but a bug
	// that did not take the process down.
	PanicsRecovered int64 `json:"panics_recovered"`
	// FaultInjection reports per-point hit/fired counts while a chaos
	// schedule is armed (absent in production, where nothing is armed).
	FaultInjection map[string]faultinject.PointStats `json:"fault_injection,omitempty"`
	Cache          struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Size      int   `json:"size"`
		Capacity  int   `json:"capacity"`
	} `json:"compile_cache"`
	Compiles       int64   `json:"compiles"`
	CompileMSTotal float64 `json:"compile_ms_total"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// LatencySummary is one endpoint's request-latency summary.
type LatencySummary struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// ErrorClassCounts is one endpoint's failed requests by class. C4xx is
// the client's fault, C5xx the server's (excluding deadlines), and
// Timeouts the per-request deadline expiries (504).
type ErrorClassCounts struct {
	C4xx     int64 `json:"4xx"`
	C5xx     int64 `json:"5xx"`
	Timeouts int64 `json:"timeouts"`
}

// SamplerCounts is one estimate endpoint's queries by sampler.
type SamplerCounts struct {
	PCG   int64 `json:"pcg"`
	Sobol int64 `json:"sobol"`
}

// Metrics returns a snapshot of the server's counters.
func (s *Server) Metrics() Metrics {
	var m Metrics
	m.Queries = make(map[string]int64, len(endpointNames))
	m.Latency = make(map[string]LatencySummary, len(endpointNames))
	for i, name := range endpointNames {
		m.Queries[name] = s.queries[i].Load()
		m.Latency[name] = LatencySummary{
			Count:   s.latCount[i].Load(),
			TotalMS: float64(s.latNs[i].Load()) / 1e6,
			MaxMS:   float64(s.latMaxNs[i].Load()) / 1e6,
		}
	}
	m.ErrorClasses = make(map[string]ErrorClassCounts, len(endpointNames))
	for i, name := range endpointNames {
		m.ErrorClasses[name] = ErrorClassCounts{
			C4xx:     s.errClasses[i][0].Load(),
			C5xx:     s.errClasses[i][1].Load(),
			Timeouts: s.errClasses[i][2].Load(),
		}
	}
	m.Samplers = make(map[string]SamplerCounts, 3)
	for _, ep := range []endpoint{epMTTF, epCompare, epSweep} {
		m.Samplers[endpointNames[ep]] = SamplerCounts{
			PCG:   s.samplerQueries[ep][0].Load(),
			Sobol: s.samplerQueries[ep][1].Load(),
		}
	}
	m.PanicsRecovered = s.panics.Load()
	m.FaultInjection = faultinject.Snapshot()
	m.Errors = s.errorCount.Load()
	m.Inflight = s.inflight.Load()
	hits, misses, evictions, size, capacity := s.cache.stats()
	m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions = hits, misses, evictions
	m.Cache.Size, m.Cache.Capacity = size, capacity
	m.Compiles = s.cache.compiles.Load()
	m.CompileMSTotal = float64(s.cache.compileNs.Load()) / 1e6
	m.UptimeSeconds = time.Since(s.start).Seconds()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Metrics())
}
