package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/soferr/soferr"
	"github.com/soferr/soferr/internal/faultinject"
)

// sweepBody is the 8-cell grid the pagination and streaming tests
// share: 2 sources x 2 rates x 2 counts, Monte-Carlo only so every
// estimate is seed-sensitive.
func sweepBody() map[string]interface{} {
	return map[string]interface{}{
		"name": "paged",
		"sources": []map[string]interface{}{
			{"name": "half", "trace": map[string]interface{}{"kind": "busyidle", "period_seconds": 10, "busy_seconds": 5}},
			{"name": "tenth", "trace": map[string]interface{}{"kind": "busyidle", "period_seconds": 10, "busy_seconds": 1}},
		},
		"rates_per_year": []float64{1e4, 1e6},
		"counts":         []int{1, 16},
		"methods":        []string{"montecarlo"},
		"seed":           7,
		"trials":         1000,
		"engine":         "inverted",
	}
}

func sameEstimates(a, b []soferr.Estimate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].MTTF != b[i].MTTF || a[i].StdErr != b[i].StdErr || a[i].Seed != b[i].Seed {
			return false
		}
	}
	return true
}

// TestSweepCursorPagedBitIdentical: sweeping the grid in cursor/limit
// pages yields exactly the cells of the unpaged sweep — same absolute
// indices, same seeds, same estimate bits — with next_cursor chaining
// the pages.
func TestSweepCursorPagedBitIdentical(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	resp, body := post(t, srv.Client(), srv.URL+"/v1/sweep", sweepBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full sweep: status %d: %s", resp.StatusCode, body)
	}
	var full sweepResponse
	mustUnmarshal(t, body, &full)
	if full.Total != 8 || full.Count != 8 || full.NextCursor != 0 {
		t.Fatalf("full sweep: count=%d total=%d next=%d, want 8/8/0", full.Count, full.Total, full.NextCursor)
	}

	var paged []soferr.CellResult
	cursor := int64(0)
	for page := 0; ; page++ {
		req := sweepBody()
		req["cursor"] = cursor
		req["limit"] = 3
		resp, body := post(t, srv.Client(), srv.URL+"/v1/sweep", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: status %d: %s", page, resp.StatusCode, body)
		}
		var pr sweepResponse
		mustUnmarshal(t, body, &pr)
		if pr.Cursor != cursor || pr.Total != 8 {
			t.Fatalf("page %d: cursor=%d total=%d, want %d/8", page, pr.Cursor, pr.Total, cursor)
		}
		paged = append(paged, pr.Cells...)
		if pr.NextCursor == 0 {
			break
		}
		cursor = pr.NextCursor
	}
	if len(paged) != len(full.Cells) {
		t.Fatalf("paged sweep delivered %d cells, want %d", len(paged), len(full.Cells))
	}
	for i := range full.Cells {
		if paged[i].Cell.Index != i || full.Cells[i].Cell.Index != i {
			t.Errorf("cell %d: absolute indices %d (paged) / %d (full)", i, paged[i].Cell.Index, full.Cells[i].Cell.Index)
		}
		if paged[i].Cell.Seed != full.Cells[i].Cell.Seed {
			t.Errorf("cell %d: paged seed %d != full seed %d", i, paged[i].Cell.Seed, full.Cells[i].Cell.Seed)
		}
		if !sameEstimates(paged[i].Estimates, full.Cells[i].Estimates) {
			t.Errorf("cell %d: paged estimates differ from full sweep:\n paged %+v\n full  %+v",
				i, paged[i].Estimates, full.Cells[i].Estimates)
		}
	}
}

// ndjsonLine decodes both result and terminator lines of a sweep
// stream.
type ndjsonLine struct {
	Cell       soferr.Cell       `json:"cell"`
	Estimates  []soferr.Estimate `json:"estimates"`
	Error      string            `json:"error"`
	Done       bool              `json:"done"`
	Cursor     int64             `json:"cursor"`
	Count      int64             `json:"count"`
	NextCursor int64             `json:"next_cursor"`
	Total      int64             `json:"total"`
}

func streamSweepLines(t *testing.T, client *http.Client, url string, body interface{}) (results []ndjsonLine, done *ndjsonLine) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("stream: status %d: %s", resp.StatusCode, buf.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line ndjsonLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			d := line
			done = &d
			continue
		}
		results = append(results, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return results, done
}

// TestSweepNDJSONStreamAndResume: ?stream=ndjson delivers one line per
// cell plus the done terminator, and resuming from ?cursor=K yields
// lines bit-identical to the tail of the uninterrupted stream — the
// chaos-resume contract on the happy path.
func TestSweepNDJSONStreamAndResume(t *testing.T) {
	srv := httptest.NewServer(New(Config{}))
	defer srv.Close()

	full, done := streamSweepLines(t, srv.Client(), srv.URL+"/v1/sweep?stream=ndjson", sweepBody())
	if len(full) != 8 {
		t.Fatalf("streamed %d lines, want 8", len(full))
	}
	if done == nil || !done.Done || done.Count != 8 || done.Total != 8 || done.NextCursor != 0 {
		t.Fatalf("terminator = %+v, want done with count=8 total=8 next=0", done)
	}
	for i, line := range full {
		if line.Cell.Index != i {
			t.Errorf("line %d carries index %d, want the absolute grid index", i, line.Cell.Index)
		}
		if line.Error != "" || len(line.Estimates) == 0 {
			t.Errorf("line %d: error=%q estimates=%d", i, line.Error, len(line.Estimates))
		}
	}

	// Simulate a stream cut after cell 4: resume from cursor 5.
	tail, done := streamSweepLines(t, srv.Client(), srv.URL+"/v1/sweep?stream=ndjson&cursor=5", sweepBody())
	if len(tail) != 3 {
		t.Fatalf("resumed stream delivered %d lines, want 3", len(tail))
	}
	if done == nil || done.Cursor != 5 || done.NextCursor != 0 || done.Count != 3 {
		t.Fatalf("resumed terminator = %+v", done)
	}
	for i, line := range tail {
		want := full[5+i]
		if line.Cell.Index != want.Cell.Index || line.Cell.Seed != want.Cell.Seed ||
			!sameEstimates(line.Estimates, want.Estimates) {
			t.Errorf("resumed line %d differs from uninterrupted cell %d:\n resumed %+v\n full    %+v",
				i, 5+i, line, want)
		}
	}
}

// TestSweepCapMachineReadable: both cap overflows carry the
// machine-readable max_sweep_cells / requested_cells fields a client
// needs to auto-split, and paging within the cap succeeds.
func TestSweepCapMachineReadable(t *testing.T) {
	srv := httptest.NewServer(New(Config{MaxSweepCells: 4}))
	defer srv.Close()

	var envelope struct {
		Error httpError `json:"error"`
	}

	// 8 cells > cap 4 without paging: refused, with the fields set.
	resp, body := post(t, srv.Client(), srv.URL+"/v1/sweep", sweepBody())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-cap sweep: status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &envelope)
	if envelope.Error.MaxSweepCells != 4 || envelope.Error.RequestedCells != 8 {
		t.Errorf("cap error fields = %+v, want max 4 / requested 8", envelope.Error)
	}

	// The same grid pages fine with limit <= cap.
	req := sweepBody()
	req["limit"] = 4
	resp, body = post(t, srv.Client(), srv.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("paged within cap: status %d: %s", resp.StatusCode, body)
	}
	var pr sweepResponse
	mustUnmarshal(t, body, &pr)
	if pr.Count != 4 || pr.NextCursor != 4 || pr.Total != 8 {
		t.Errorf("page = count %d next %d total %d, want 4/4/8", pr.Count, pr.NextCursor, pr.Total)
	}

	// A grid beyond the enumerable bound (4x cap = 16) is refused even
	// for paging, again with the fields.
	big := sweepBody()
	big["rates_per_year"] = []float64{1, 2, 3, 4, 5}
	big["counts"] = []int{1, 2} // 2 sources x 5 rates x 2 counts = 20 > 16
	resp, body = post(t, srv.Client(), srv.URL+"/v1/sweep", big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-enumerable sweep: status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &envelope)
	if envelope.Error.MaxSweepCells != 4 || envelope.Error.RequestedCells != 20 {
		t.Errorf("enumerable-bound error fields = %+v, want max 4 / requested 20", envelope.Error)
	}

	// A cursor past the end is a clean 400.
	bad := sweepBody()
	bad["cursor"] = 9
	resp, body = post(t, srv.Client(), srv.URL+"/v1/sweep", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cursor past end: status %d: %s", resp.StatusCode, body)
	}
}

// TestReadyzDrainFlip: /readyz answers ready until BeginDrain, then 503
// with Retry-After — while /healthz (liveness) stays 200 throughout.
func TestReadyzDrainFlip(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	if resp, body := get("/readyz"); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("ready")) {
		t.Fatalf("pre-drain /readyz: %d %s", resp.StatusCode, body)
	}
	s.BeginDrain()
	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("draining")) {
		t.Errorf("draining /readyz: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining /readyz carries no Retry-After")
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("liveness flipped during drain: %d", resp.StatusCode)
	}
	// Draining must not fail in-flight or even new work — only routing.
	if resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1e6), "trials": 500,
	}); resp.StatusCode != http.StatusOK {
		t.Errorf("query during drain: %d %s", resp.StatusCode, body)
	}
}

// TestRetryAfterOn503: every 503 envelope carries the Retry-After
// header and its machine-readable mirror.
func TestRetryAfterOn503(t *testing.T) {
	s := New(Config{})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/mttf", nil)
	s.writeError(rec, req, http.StatusServiceUnavailable, "server busy")
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	var envelope struct {
		Error httpError `json:"error"`
	}
	mustUnmarshal(t, rec.Body.Bytes(), &envelope)
	if envelope.Error.RetryAfterSeconds != 1 {
		t.Errorf("retry_after_seconds = %d, want 1", envelope.Error.RetryAfterSeconds)
	}
	// Non-overload errors carry neither.
	rec = httptest.NewRecorder()
	s.writeError(rec, req, http.StatusBadRequest, "bad")
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("400 carries Retry-After %q", got)
	}
}

// TestMetricsErrorClassesAndPanics: failed requests land in their
// endpoint's error-class counters, recovered panics are counted, and
// per-point fault-injection stats appear in /metrics while armed.
func TestMetricsErrorClassesAndPanics(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// A malformed body: mttf 4xx.
	resp, _ := srv.Client().Post(srv.URL+"/v1/mttf", "application/json", bytes.NewReader([]byte("{nope")))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}

	// An injected handler error: mttf 5xx, visible in fault_injection.
	disarm := faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "server.handler", Hits: []int{1}},
	}})
	resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{"spec": testSpec(1)})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected handler error: %d %s", resp.StatusCode, body)
	}
	m := s.Metrics()
	if m.FaultInjection["server.handler"].Fired != 1 {
		t.Errorf("fault_injection = %+v, want server.handler fired once", m.FaultInjection)
	}
	disarm()

	// An injected handler panic: contained by the middleware as a
	// structured 500, counted in panics_recovered.
	disarm = faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "server.handler", Hits: []int{1}, PanicMsg: "chaos"},
	}})
	resp, body = post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{"spec": testSpec(1)})
	disarm()
	if resp.StatusCode != http.StatusInternalServerError || !bytes.Contains(body, []byte("recovered panic")) {
		t.Fatalf("injected panic: %d %s", resp.StatusCode, body)
	}

	m = s.Metrics()
	if ec := m.ErrorClasses["mttf"]; ec.C4xx != 1 || ec.C5xx != 1 {
		t.Errorf("mttf error classes = %+v, want 1x 4xx, 1x 5xx", ec)
	}
	if m.PanicsRecovered != 1 {
		t.Errorf("panics_recovered = %d, want 1", m.PanicsRecovered)
	}
	if m.FaultInjection != nil {
		t.Errorf("fault_injection present while disarmed: %+v", m.FaultInjection)
	}
	// The server still answers normally after the contained panic.
	if resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": testSpec(1e6), "trials": 500,
	}); resp.StatusCode != http.StatusOK {
		t.Errorf("post-panic query: %d %s", resp.StatusCode, body)
	}
}

// TestEvictionMidSingleFlight: an entry force-evicted between compile
// completion and first use (the injected eviction race) still serves
// its waiters; the next request recompiles instead of crashing or
// serving a stale pointer.
func TestEvictionMidSingleFlight(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	req := map[string]interface{}{"spec": testSpec(1e6), "trials": 500, "seed": 9}

	disarm := faultinject.Arm(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: "server.cache.evict", Hits: []int{1}},
	}})
	resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", req)
	disarm()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted-mid-flight request: %d %s", resp.StatusCode, body)
	}
	var first mttfResponse
	mustUnmarshal(t, body, &first)

	m := s.Metrics()
	if m.Cache.Evictions < 1 || m.Cache.Size != 0 {
		t.Errorf("cache after injected eviction: %+v, want >=1 eviction and size 0", m.Cache)
	}

	// Same request again: a fresh compile (no stale hit), same bits.
	resp, body = post(t, srv.Client(), srv.URL+"/v1/mttf", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-eviction request: %d %s", resp.StatusCode, body)
	}
	var second mttfResponse
	mustUnmarshal(t, body, &second)
	if second.CompileCacheHit {
		t.Error("evicted entry reported a compile cache hit")
	}
	if second.Estimate.MTTF != first.Estimate.MTTF || second.Estimate.StdErr != first.Estimate.StdErr {
		t.Errorf("recompiled answer differs: %+v vs %+v", second.Estimate, first.Estimate)
	}
}
