package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/soferr/soferr"
)

// TestSamplerServed covers the sampler field end to end: a Sobol
// estimate over HTTP is bit-identical to the direct query, unknown
// sampler names and sampler-incompatible engines are 422s, and the
// per-endpoint sampler counters show up in /metrics.
func TestSamplerServed(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	spec := testSpec(1e6)
	resp, body := post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": spec, "method": "montecarlo",
		"trials": 5000, "seed": 3, "engine": "fused", "sampler": "sobol",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got mttfResponse
	mustUnmarshal(t, body, &got)
	if got.Estimate.Sampler != soferr.Sobol {
		t.Errorf("served sampler = %v, want Sobol", got.Estimate.Sampler)
	}
	sys, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.MTTF(context.Background(), soferr.MonteCarlo,
		soferr.WithTrials(5000), soferr.WithSeed(3),
		soferr.WithEngine(soferr.Fused), soferr.WithSampler(soferr.Sobol))
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate.MTTF != want.MTTF || got.Estimate.StdErr != want.StdErr ||
		got.Estimate.Trials != want.Trials {
		t.Errorf("served Sobol estimate differs from direct query:\n http   %+v\n direct %+v", got.Estimate, want)
	}

	// Unknown sampler names are semantically unanswerable: 422, named.
	resp, body = post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": spec, "method": "montecarlo", "sampler": "halton",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown sampler: status %d, want 422: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "halton") {
		t.Errorf("unknown-sampler error does not name the sampler: %s", body)
	}

	// Sobol on an arrival-enumerating engine maps ErrSamplerUnsupported
	// to 422 — answerable with pcg, not as asked.
	resp, body = post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": spec, "method": "montecarlo",
		"trials": 64, "engine": "superposed", "sampler": "sobol",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("sobol+superposed: status %d, want 422: %s", resp.StatusCode, body)
	}

	// The sweep endpoint threads the same field through every cell.
	resp, body = post(t, srv.Client(), srv.URL+"/v1/sweep", map[string]interface{}{
		"sources": []soferr.SourceSpec{{
			Name:  "cache",
			Trace: soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 4},
		}},
		"rates_per_year": []float64{1e6},
		"methods":        []string{"montecarlo"},
		"trials":         2000, "engine": "fused", "sampler": "sobol",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	mustUnmarshal(t, body, &sw)
	if len(sw.Cells) != 1 || len(sw.Cells[0].Estimates) != 1 {
		t.Fatalf("sweep shape: %+v", sw)
	}
	if sw.Cells[0].Estimates[0].Sampler != soferr.Sobol {
		t.Errorf("sweep cell sampler = %v, want Sobol", sw.Cells[0].Estimates[0].Sampler)
	}

	// A default-sampler query counts under the pcg label.
	resp, body = post(t, srv.Client(), srv.URL+"/v1/mttf", map[string]interface{}{
		"spec": spec, "method": "montecarlo", "trials": 1000, "seed": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-sampler status %d: %s", resp.StatusCode, body)
	}

	// /metrics labels the endpoint's queries by sampler: two sobol mttf
	// queries resolved above (the halton one failed before resolving),
	// one pcg-by-default, and one sobol sweep.
	m := s.Metrics()
	if got := m.Samplers["mttf"]; got.Sobol != 2 || got.PCG != 1 {
		t.Errorf("mttf sampler counts = %+v, want {PCG:1 Sobol:2}", got)
	}
	if got := m.Samplers["sweep"]; got.Sobol != 1 {
		t.Errorf("sweep sampler counts = %+v, want Sobol:1", got)
	}
	if _, ok := m.Samplers["reliability"]; ok {
		t.Error("reliability endpoint has sampler counts; it never runs Monte-Carlo")
	}
}
