package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/units"
)

func TestWrappedExpPDFNormalizes(t *testing.T) {
	for _, tt := range []struct{ rate, l float64 }{
		{0.5, 3}, {2, 1}, {1e-6, 10}, {10, 0.5},
	} {
		got, err := numeric.Integrate(func(x float64) float64 {
			return WrappedExpPDF(tt.rate, tt.l, x)
		}, 0, tt.l, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if numeric.RelErr(got, 1) > 1e-9 {
			t.Errorf("rate=%v l=%v: integral = %v, want 1", tt.rate, tt.l, got)
		}
	}
}

func TestWrappedExpTendsToUniform(t *testing.T) {
	// Theorem 1: as rate*L -> 0 the wrapped density tends to 1/L.
	const l = 5.0
	prevGap := math.Inf(1)
	for _, rate := range []float64{1, 0.1, 0.01, 0.001, 0.0001} {
		gap := WrappedExpUniformityGap(rate, l)
		if gap >= prevGap {
			t.Errorf("gap did not shrink: rate=%v gap=%v prev=%v", rate, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 3e-4 {
		t.Errorf("gap at rate*L=5e-4 is %v, want < 3e-4", prevGap)
	}
}

func TestWrappedExpCDFEndpoints(t *testing.T) {
	if got := WrappedExpCDF(1, 2, 0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := WrappedExpCDF(1, 2, 2); got != 1 {
		t.Errorf("CDF(L) = %v", got)
	}
	if got := WrappedExpCDF(1, 2, 5); got != 1 {
		t.Errorf("CDF beyond L = %v", got)
	}
}

func TestBusyIdleMTTFMatchesPaperForm(t *testing.T) {
	// The simplified closed form and the paper's printed expression are
	// algebraically identical; verify numerically over a wide space.
	f := func(rawRate, rawL, rawA float64) bool {
		rate := math.Mod(math.Abs(rawRate), 100) + 1e-4
		l := math.Mod(math.Abs(rawL), 1000) + 1e-3
		a := math.Mod(math.Abs(rawA), l-l/1e6) + l/1e7
		simple, err1 := BusyIdleMTTF(rate, l, a)
		paper, err2 := BusyIdleMTTFPaperForm(rate, l, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return numeric.RelErr(simple, paper) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBusyIdleMTTFLimits(t *testing.T) {
	// Always busy (a = l): MTTF = 1/rate exactly.
	got, err := BusyIdleMTTF(2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(got, 0.5) > 1e-12 {
		t.Errorf("always-busy MTTF = %v, want 0.5", got)
	}

	// Never busy: infinite MTTF.
	got, err = BusyIdleMTTF(2, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("never-busy MTTF = %v, want +Inf", got)
	}

	// rate*l -> 0: converges to the AVF answer (Section 3.1.1).
	const l, a = 10.0, 3.0
	for _, rate := range []float64{1e-6, 1e-8, 1e-10} {
		real, err := BusyIdleMTTF(rate, l, a)
		if err != nil {
			t.Fatal(err)
		}
		avf, err := BusyIdleAVFMTTF(rate, l, a)
		if err != nil {
			t.Fatal(err)
		}
		if numeric.RelErr(real, avf) > 10*rate*l {
			t.Errorf("rate=%v: real %v vs AVF %v differ by more than O(rate*l)", rate, real, avf)
		}
	}
}

func TestBusyIdleAVFErrorMonotoneInRate(t *testing.T) {
	// For fixed geometry the AVF error grows with the raw rate — the
	// qualitative claim of Fig 3 (errors grow with lambda).
	const l, a = 16 * units.SecondsPerDay, 8 * units.SecondsPerDay
	base := 10.0 / units.SecondsPerYear // 10 errors/year for the cache
	prev := -1.0
	for _, scale := range []float64{1, 3, 5} {
		e, err := BusyIdleAVFError(base*scale, l, a)
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Errorf("AVF error not increasing: scale %v gives %v after %v", scale, e, prev)
		}
		prev = e
	}
}

func TestBusyIdleAVFErrorFig3Anchors(t *testing.T) {
	// Figure 3's qualitative anchors: at the baseline rate (10/yr) the
	// error stays small even at L = 16 days; at 5x it is substantial.
	base := 10.0 / units.SecondsPerYear
	l := 16 * units.SecondsPerDay
	a := l / 2

	eBase, err := BusyIdleAVFError(base, l, a)
	if err != nil {
		t.Fatal(err)
	}
	if eBase > 0.10 {
		t.Errorf("baseline error = %v, want < 10%%", eBase)
	}

	e5, err := BusyIdleAVFError(5*base, l, a)
	if err != nil {
		t.Fatal(err)
	}
	if e5 < 0.15 {
		t.Errorf("5x error = %v, want > 15%%", e5)
	}

	// Short loops stay accurate even at 5x (L = 1 day).
	eShort, err := BusyIdleAVFError(5*base, units.SecondsPerDay, units.SecondsPerDay/2)
	if err != nil {
		t.Fatal(err)
	}
	if eShort > 0.05 {
		t.Errorf("1-day 5x error = %v, want < 5%%", eShort)
	}
}

func TestBusyIdleErrors(t *testing.T) {
	if _, err := BusyIdleMTTF(0, 1, 1); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := BusyIdleMTTF(1, -1, 0); err == nil {
		t.Error("negative l should fail")
	}
	if _, err := BusyIdleMTTF(1, 1, 2); err == nil {
		t.Error("a > l should fail")
	}
	if _, err := BusyIdleAVFMTTF(1, 0, 0); err == nil {
		t.Error("zero l should fail")
	}
	if _, err := SeriesHalfGaussianMTTF(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestSeriesHalfGaussianFig4(t *testing.T) {
	// Figure 4: error ~15% at N=2 rising to ~32% at N=32, monotone.
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32} {
		e, err := SeriesHalfGaussianSOFRError(n)
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Errorf("N=%d: error %v not increasing (prev %v)", n, e, prev)
		}
		prev = e
	}
	e2, _ := SeriesHalfGaussianSOFRError(2)
	if math.Abs(e2-0.15) > 0.03 {
		t.Errorf("N=2 error = %v, paper reports ~15%%", e2)
	}
	e32, _ := SeriesHalfGaussianSOFRError(32)
	if math.Abs(e32-0.32) > 0.04 {
		t.Errorf("N=32 error = %v, paper reports ~32%%", e32)
	}
}

func TestSeriesHalfGaussianSingleComponent(t *testing.T) {
	// With one component SOFR is exact: both are 1/sqrt(pi).
	real, err := SeriesHalfGaussianMTTF(1)
	if err != nil {
		t.Fatal(err)
	}
	sofr, err := SeriesHalfGaussianSOFRMTTF(1)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(real, sofr) > 1e-6 {
		t.Errorf("N=1: real %v vs SOFR %v", real, sofr)
	}
	if numeric.RelErr(real, 1/math.Sqrt(math.Pi)) > 1e-6 {
		t.Errorf("N=1 MTTF = %v, want 1/sqrt(pi)", real)
	}
}
