// Package analytic implements the paper's closed-form results:
//
//   - Theorem 1 (Appendix A): the wrapped distribution of an exponential
//     arrival time modulo the loop length L, which tends to uniform as
//     lambda*L -> 0. This underpins the validity proof of the AVF step.
//   - Derivation 1 (Section 3.1.2 / Appendix A): the exact MTTF of a
//     component running an infinite loop that is busy for the first A
//     seconds of each L-second iteration — the counter-example workload
//     behind Figure 3.
//   - The Section 3.2.2 construction behind Figure 4: the exact MTTF of
//     a series system of N components with half-Gaussian time to
//     failure, against the SOFR estimate 1/(N*sqrt(pi)).
package analytic

import (
	"errors"
	"math"

	"github.com/soferr/soferr/internal/dist"
	"github.com/soferr/soferr/internal/numeric"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNonPositiveRate    = errors.New("analytic: non-positive rate")
	errBusyWindow         = errors.New("analytic: need 0 <= a <= l with l > 0")
	errBusyWindowPositive = errors.New("analytic: need 0 < a <= l")
	errBadN               = errors.New("analytic: need n >= 1")
	errQuadratureFailed   = errors.New("analytic: quadrature failed")
)

// WrappedExpPDF returns the density of X = T mod L at x in [0, L), where
// T is exponential with the given rate (Theorem 1):
//
//	f(x) = rate * e^(-rate*x) / (1 - e^(-rate*L))
//
// As rate*L -> 0 this tends to the uniform density 1/L.
func WrappedExpPDF(rate, l, x float64) float64 {
	if x < 0 || x >= l {
		return 0
	}
	return rate * numeric.ExpNeg(rate*x) / numeric.OneMinusExpNeg(rate*l)
}

// WrappedExpCDF returns P(T mod L <= x).
func WrappedExpCDF(rate, l, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= l {
		return 1
	}
	return numeric.OneMinusExpNeg(rate*x) / numeric.OneMinusExpNeg(rate*l)
}

// WrappedExpUniformityGap returns the maximum absolute deviation of the
// wrapped density from the uniform density 1/L, scaled by L (so it is a
// dimensionless measure of non-uniformity). It vanishes as rate*L -> 0,
// which is Theorem 1's statement.
func WrappedExpUniformityGap(rate, l float64) float64 {
	// The wrapped density is monotone decreasing; its extremes are at 0
	// and at L^-.
	at0 := WrappedExpPDF(rate, l, 0)
	atL := WrappedExpPDF(rate, l, math.Nextafter(l, 0))
	u := 1 / l
	return l * math.Max(math.Abs(at0-u), math.Abs(atL-u))
}

// BusyIdleMTTF returns the exact MTTF (Derivation 1) of a component
// whose workload loop has iteration length l seconds, busy (vulnerable)
// for the first a seconds of every iteration, under a raw error process
// of the given rate.
//
// The paper's closed form simplifies algebraically to
//
//	E(X) = 1/rate + (l-a) * e^(-rate*a) / (1 - e^(-rate*a))
//
// which is the form evaluated here (stable for rate*l from 1e-12 to
// 1e3). BusyIdleMTTFPaperForm evaluates the paper's original expression
// term by term; the two are property-tested for equality.
func BusyIdleMTTF(rate, l, a float64) (float64, error) {
	if rate <= 0 {
		return 0, errNonPositiveRate
	}
	if l <= 0 || a < 0 || a > l {
		return 0, errBusyWindow
	}
	if a == 0 {
		return math.Inf(1), nil // never vulnerable
	}
	ea := numeric.ExpNeg(rate * a)
	return 1/rate + (l-a)*ea/numeric.OneMinusExpNeg(rate*a), nil
}

// BusyIdleMTTFPaperForm evaluates Derivation 1 exactly as printed in
// Appendix A:
//
//	E(X) = (1-e^(-rate*l))/(1-e^(-rate*a)) * ( l*e^(-rate*l)/(1-e^(-rate*l))^2
//	     - l*e^(-rate*a)*e^(-rate*l)/(1-e^(-rate*l))^2
//	     - a*e^(-rate*a)/(1-e^(-rate*l))
//	     + (1/rate)*(1-e^(-rate*a))/(1-e^(-rate*l))
//	     + l*(e^(-rate*a)-e^(-rate*l))/(1-e^(-rate*l))^2 )
//
// Kept for fidelity and as a cross-check of the simplified form; prefer
// BusyIdleMTTF, which is better conditioned for tiny rate*l.
func BusyIdleMTTFPaperForm(rate, l, a float64) (float64, error) {
	if rate <= 0 {
		return 0, errNonPositiveRate
	}
	if l <= 0 || a <= 0 || a > l {
		return 0, errBusyWindowPositive
	}
	el := numeric.ExpNeg(rate * l)
	ea := numeric.ExpNeg(rate * a)
	d := numeric.OneMinusExpNeg(rate * l)  // 1 - e^(-rate*l)
	da := numeric.OneMinusExpNeg(rate * a) // 1 - e^(-rate*a)
	d2 := d * d
	bracket := l*el/d2 - l*ea*el/d2 - a*ea/d + (1/rate)*da/d + l*(ea-el)/d2
	return d / da * bracket, nil
}

// BusyIdleAVFMTTF returns the AVF-step estimate for the same workload:
// MTTF_AVF = (l/a) * (1/rate), since the AVF of the busy/idle loop is
// a/l (Section 3.1.2).
func BusyIdleAVFMTTF(rate, l, a float64) (float64, error) {
	if rate <= 0 {
		return 0, errNonPositiveRate
	}
	if l <= 0 || a < 0 || a > l {
		return 0, errBusyWindow
	}
	if a == 0 {
		return math.Inf(1), nil
	}
	return l / a / rate, nil
}

// BusyIdleAVFError returns the relative error of the AVF step for the
// busy/idle loop, |E_AVF - E| / E — one point of Figure 3.
func BusyIdleAVFError(rate, l, a float64) (float64, error) {
	real, err := BusyIdleMTTF(rate, l, a)
	if err != nil {
		return 0, err
	}
	avf, err := BusyIdleAVFMTTF(rate, l, a)
	if err != nil {
		return 0, err
	}
	return math.Abs(avf-real) / real, nil
}

// SeriesHalfGaussianMTTF returns the exact MTTF of a series system of n
// components whose times to failure are i.i.d. with density
// 2/sqrt(pi)*e^(-x^2) (Section 3.2.2), computed by quadrature on the
// survival function.
func SeriesHalfGaussianMTTF(n int) (float64, error) {
	if n < 1 {
		return 0, errBadN
	}
	m := dist.MinOfIID{X: dist.HalfGaussian{}, N: n}
	v := m.Mean()
	if math.IsNaN(v) {
		return 0, errQuadratureFailed
	}
	return v, nil
}

// SeriesHalfGaussianSOFRMTTF returns the SOFR estimate for the same
// system. Following Section 3.2.2, the component MTTFs fed to SOFR are
// the true ones (1/sqrt(pi)), so the estimate is 1/(n*sqrt(pi)) and any
// error is attributable to the SOFR step alone.
func SeriesHalfGaussianSOFRMTTF(n int) (float64, error) {
	if n < 1 {
		return 0, errBadN
	}
	return 1 / (float64(n) * math.Sqrt(math.Pi)), nil
}

// SeriesHalfGaussianSOFRError returns the relative SOFR error for n
// components — one point of Figure 4.
func SeriesHalfGaussianSOFRError(n int) (float64, error) {
	real, err := SeriesHalfGaussianMTTF(n)
	if err != nil {
		return 0, err
	}
	sofr, err := SeriesHalfGaussianSOFRMTTF(n)
	if err != nil {
		return 0, err
	}
	return math.Abs(sofr-real) / real, nil
}
