package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	tests := []struct {
		c                  Class
		isInt, isFP, isMem bool
	}{
		{IntALU, true, false, false},
		{IntMul, true, false, false},
		{IntDiv, true, false, false},
		{FPOp, false, true, false},
		{FPDiv, false, true, false},
		{Load, false, false, true},
		{Store, false, false, true},
		{Branch, false, false, false},
	}
	for _, tt := range tests {
		if tt.c.IsInt() != tt.isInt || tt.c.IsFP() != tt.isFP || tt.c.IsMem() != tt.isMem {
			t.Errorf("%v: predicates (%v,%v,%v), want (%v,%v,%v)",
				tt.c, tt.c.IsInt(), tt.c.IsFP(), tt.c.IsMem(), tt.isInt, tt.isFP, tt.isMem)
		}
		if !tt.c.Valid() {
			t.Errorf("%v should be valid", tt.c)
		}
	}
	if Class(0).Valid() || Class(200).Valid() {
		t.Error("invalid classes reported valid")
	}
}

func TestClassString(t *testing.T) {
	if IntALU.String() != "IntALU" || Branch.String() != "Branch" {
		t.Error("class names wrong")
	}
	if Class(99).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestRegConstructors(t *testing.T) {
	r0 := IntReg(0)
	if !r0.IsInt() || r0.IsFP() {
		t.Errorf("IntReg(0) predicates wrong")
	}
	if r0.Index() != 0 {
		t.Errorf("IntReg(0).Index = %d", r0.Index())
	}
	f0 := FPReg(0)
	if !f0.IsFP() || f0.IsInt() {
		t.Errorf("FPReg(0) predicates wrong")
	}
	if f0.Index() != NumIntRegs {
		t.Errorf("FPReg(0).Index = %d, want %d", f0.Index(), NumIntRegs)
	}
	last := FPReg(NumFPRegs - 1)
	if last.Index() != NumRegs-1 {
		t.Errorf("last FP reg index = %d, want %d", last.Index(), NumRegs-1)
	}
}

func TestRegConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { IntReg(-1) },
		func() { IntReg(NumIntRegs) },
		func() { FPReg(NumFPRegs) },
		func() { RegNone.Index() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInstValidate(t *testing.T) {
	good := Inst{Class: IntALU, Dest: IntReg(1), Src1: IntReg(2)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid inst rejected: %v", err)
	}
	bad := []Inst{
		{Class: 0},
		{Class: Store, Dest: IntReg(1)},
		{Class: Branch, Dest: IntReg(1)},
		{Class: IntALU, Src1: Reg(200)},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad inst %d accepted", i)
		}
	}
}
