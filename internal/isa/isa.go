// Package isa defines the instruction representation consumed by the
// trace-driven timing simulator (package turandot). It is deliberately
// minimal: the simulator is trace-driven, so instructions carry their
// outcomes (effective addresses, branch directions) rather than being
// executed semantically — exactly the information a Turandot-style
// model needs for timing.
package isa

import "fmt"

// Class is an instruction class, determining the functional unit and
// latency an instruction uses.
type Class uint8

// Instruction classes. FP divide is pipelined on the POWER4-like
// configuration; integer divide is not (Table 1 of the paper).
const (
	IntALU Class = iota + 1 // integer add/sub/logic: FXU, 1 cycle
	IntMul                  // integer multiply: FXU, 4 cycles
	IntDiv                  // integer divide: FXU, 35 cycles, unpipelined
	FPOp                    // FP add/mul/etc: FPU, 5 cycles
	FPDiv                   // FP divide: FPU, 28 cycles, pipelined
	Load                    // memory load: LSU
	Store                   // memory store: LSU
	Branch                  // conditional branch: BRU
	numClasses
)

var classNames = [...]string{
	IntALU: "IntALU",
	IntMul: "IntMul",
	IntDiv: "IntDiv",
	FPOp:   "FPOp",
	FPDiv:  "FPDiv",
	Load:   "Load",
	Store:  "Store",
	Branch: "Branch",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) && classNames[c] != "" {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c is a defined class.
func (c Class) Valid() bool { return c >= IntALU && c < numClasses }

// IsInt reports whether the class executes on an integer unit.
func (c Class) IsInt() bool { return c == IntALU || c == IntMul || c == IntDiv }

// IsFP reports whether the class executes on a floating-point unit.
func (c Class) IsFP() bool { return c == FPOp || c == FPDiv }

// IsMem reports whether the class is a memory operation.
func (c Class) IsMem() bool { return c == Load || c == Store }

// Reg names an architectural register. 0 means "none"; integer
// registers are 1..NumIntRegs and floating-point registers follow.
type Reg uint8

// Architectural register file shape.
const (
	// RegNone marks an absent operand.
	RegNone Reg = 0
	// NumIntRegs is the number of architectural integer registers.
	NumIntRegs = 32
	// NumFPRegs is the number of architectural FP registers.
	NumFPRegs = 32
	// NumRegs is the total number of addressable architectural registers
	// (excluding RegNone).
	NumRegs = NumIntRegs + NumFPRegs
)

// IntReg returns the i-th architectural integer register (0-based).
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", i))
	}
	return Reg(1 + i)
}

// FPReg returns the i-th architectural FP register (0-based).
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: FP register %d out of range", i))
	}
	return Reg(1 + NumIntRegs + i)
}

// IsInt reports whether r is an integer register.
func (r Reg) IsInt() bool { return r >= 1 && r <= NumIntRegs }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r > NumIntRegs && r <= NumRegs }

// Index returns the dense 0-based index of the register, for use as an
// array subscript. RegNone has no index; callers must check first.
func (r Reg) Index() int {
	if r == RegNone {
		panic("isa: RegNone has no index")
	}
	return int(r) - 1
}

// Inst is one dynamic instruction in a trace.
type Inst struct {
	// PC is the instruction's byte address, used for instruction-cache
	// and branch-predictor indexing.
	PC uint64
	// Class selects functional unit and latency.
	Class Class
	// Dest is the destination register (RegNone for stores/branches).
	Dest Reg
	// Src1 and Src2 are source registers (RegNone when absent).
	Src1 Reg
	Src2 Reg
	// Addr is the effective byte address of a Load or Store.
	Addr uint64
	// Taken is the resolved direction of a Branch.
	Taken bool
}

// Validate returns an error if the instruction is malformed.
func (in *Inst) Validate() error {
	if !in.Class.Valid() {
		return fmt.Errorf("isa: invalid class %d", in.Class)
	}
	for _, r := range [...]Reg{in.Dest, in.Src1, in.Src2} {
		if r > NumRegs {
			return fmt.Errorf("isa: register %d out of range", r)
		}
	}
	if in.Class == Store || in.Class == Branch {
		if in.Dest != RegNone {
			return fmt.Errorf("isa: %v cannot have a destination", in.Class)
		}
	}
	return nil
}
