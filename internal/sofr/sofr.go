// Package sofr implements the SOFR step of the AVF+SOFR methodology
// (Section 2.3): the failure rate of a series system is the sum of the
// failure rates of its components, and the system MTTF is the reciprocal
// of that sum:
//
//	FailureRate_sys = sum_i 1/MTTF_i     (Equation 2)
//	MTTF_sys        = 1/FailureRate_sys  (Equation 3)
//
// This is exact only when every component's time to failure is
// exponentially distributed with a constant rate and failures are
// independent — the assumption whose limits the paper probes.
package sofr

import (
	"errors"
	"fmt"
	"math"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNoComponents = errors.New("sofr: no components")
)

// SystemRate returns the summed failure rate (Equation 2), in failures
// per second, from component MTTFs in seconds. Components with infinite
// MTTF contribute zero.
func SystemRate(mttfs []float64) (float64, error) {
	if len(mttfs) == 0 {
		return 0, errNoComponents
	}
	total := 0.0
	for i, m := range mttfs {
		if math.IsNaN(m) || m < 0 {
			return 0, fmt.Errorf("sofr: component %d has invalid MTTF %v", i, m)
		}
		if m == 0 {
			return 0, fmt.Errorf("sofr: component %d has zero MTTF", i)
		}
		if math.IsInf(m, 1) {
			continue
		}
		total += 1 / m
	}
	return total, nil
}

// SystemMTTF returns the SOFR system MTTF (Equation 3) in seconds from
// component MTTFs in seconds. If no component can fail the result is
// +Inf.
func SystemMTTF(mttfs []float64) (float64, error) {
	rate, err := SystemRate(mttfs)
	if err != nil {
		return 0, err
	}
	if rate == 0 {
		return math.Inf(1), nil
	}
	return 1 / rate, nil
}

// Identical returns the SOFR system MTTF of n identical components with
// the given component MTTF: MTTF/n (the common special case of the
// paper's homogeneous clusters).
func Identical(componentMTTF float64, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("sofr: need n >= 1, got %d", n)
	}
	if componentMTTF <= 0 || math.IsNaN(componentMTTF) {
		return 0, fmt.Errorf("sofr: invalid component MTTF %v", componentMTTF)
	}
	if math.IsInf(componentMTTF, 1) {
		return math.Inf(1), nil
	}
	return componentMTTF / float64(n), nil
}
