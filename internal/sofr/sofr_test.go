package sofr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSystemRateSums(t *testing.T) {
	got, err := SystemRate([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Errorf("rate = %v, want 0.75", got)
	}
}

func TestSystemMTTFReciprocal(t *testing.T) {
	got, err := SystemMTTF([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1/0.75 {
		t.Errorf("MTTF = %v, want %v", got, 1/0.75)
	}
}

func TestInfiniteComponentsIgnored(t *testing.T) {
	got, err := SystemMTTF([]float64{math.Inf(1), 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MTTF = %v, want 2", got)
	}
}

func TestAllInfinite(t *testing.T) {
	got, err := SystemMTTF([]float64{math.Inf(1), math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("MTTF = %v, want +Inf", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := SystemMTTF(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := SystemMTTF([]float64{0}); err == nil {
		t.Error("zero MTTF should fail")
	}
	if _, err := SystemMTTF([]float64{-1}); err == nil {
		t.Error("negative MTTF should fail")
	}
	if _, err := SystemMTTF([]float64{math.NaN()}); err == nil {
		t.Error("NaN should fail")
	}
}

func TestIdentical(t *testing.T) {
	got, err := Identical(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Errorf("Identical = %v, want 25", got)
	}
	inf, err := Identical(math.Inf(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inf, 1) {
		t.Errorf("Identical(inf) = %v, want +Inf", inf)
	}
	if _, err := Identical(100, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Identical(0, 3); err == nil {
		t.Error("zero MTTF should fail")
	}
}

func TestIdenticalMatchesGeneral(t *testing.T) {
	f := func(rawMTTF float64, rawN uint8) bool {
		mttf := math.Mod(math.Abs(rawMTTF), 1e6) + 1e-3
		n := int(rawN%100) + 1
		mttfs := make([]float64, n)
		for i := range mttfs {
			mttfs[i] = mttf
		}
		general, err1 := SystemMTTF(mttfs)
		special, err2 := Identical(mttf, n)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(general-special)/special < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderIndependent(t *testing.T) {
	a, err := SystemMTTF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SystemMTTF([]float64{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-15 {
		t.Errorf("order dependence: %v vs %v", a, b)
	}
}
