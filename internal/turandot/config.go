// Package turandot is a trace-driven, cycle-level timing simulator of an
// out-of-order superscalar processor, standing in for the IBM Turandot
// model ([7] in the paper) that generated the paper's masking traces.
//
// The default configuration reproduces the paper's Table 1 (a POWER4-like
// core at 2.0 GHz): 8-wide fetch, dispatch groups of 5, a 150-entry
// reorder buffer, a 256-entry physical register file (80 integer + 72 FP
// rename registers plus control state), 2 integer / 2 FP / 2 load-store /
// 1 branch unit with the listed latencies, a 32-entry memory queue, split
// 32KB/64KB L1 caches, a 1MB unified L2, 128-entry TLBs, and 1/10/77-cycle
// contentionless latencies.
//
// The simulator's product is the set of per-cycle masking traces of
// Section 4.1: whether the instruction-decode, integer, and floating-point
// units were busy each cycle (a raw error in an idle unit is masked), and
// the fraction of register-file entries holding a value that will be read
// again (an error in a dead register is masked).
package turandot

import (
	"fmt"

	"github.com/soferr/soferr/internal/mem"
)

// Config describes the simulated core. DefaultConfig returns the
// paper's Table 1 machine.
type Config struct {
	// FetchWidth is the maximum instructions fetched per cycle.
	FetchWidth int
	// FetchQueueSize bounds the fetch/decode buffer.
	FetchQueueSize int
	// DispatchWidth is the dispatch-group size (instructions entering
	// the ROB per cycle).
	DispatchWidth int
	// RetireWidth is the maximum instructions retired per cycle (one
	// dispatch group).
	RetireWidth int
	// ROBSize is the reorder-buffer capacity.
	ROBSize int
	// IntRenameRegs and FPRenameRegs are the physical register counts
	// for the two classes; rename capacity beyond the architectural
	// registers bounds in-flight producers.
	IntRenameRegs int
	FPRenameRegs  int
	// RegFileEntries is the total physical register file size used as
	// the denominator of the register-file AVF (Table 1: 256).
	RegFileEntries int
	// MemQueueSize bounds in-flight memory operations.
	MemQueueSize int

	// Functional-unit counts.
	IntUnits int
	FPUnits  int
	LSUnits  int
	BrUnits  int

	// Latencies in cycles.
	IntALULatency int
	IntMulLatency int
	IntDivLatency int // unpipelined
	FPLatency     int
	FPDivLatency  int // pipelined
	BranchLatency int
	StoreLatency  int

	// PredictorBits sizes the gshare branch predictor table (2^bits
	// two-bit counters).
	PredictorBits int

	// Mem configures the cache/TLB hierarchy.
	Mem mem.HierarchyConfig
}

// DefaultConfig returns the base POWER4-like processor of Table 1.
func DefaultConfig() Config {
	return Config{
		FetchWidth:     8,
		FetchQueueSize: 32,
		DispatchWidth:  5,
		RetireWidth:    5,
		ROBSize:        150,
		IntRenameRegs:  80,
		FPRenameRegs:   72,
		RegFileEntries: 256,
		MemQueueSize:   32,

		IntUnits: 2,
		FPUnits:  2,
		LSUnits:  2,
		BrUnits:  1,

		IntALULatency: 1,
		IntMulLatency: 4,
		IntDivLatency: 35,
		FPLatency:     5,
		FPDivLatency:  28,
		BranchLatency: 1,
		StoreLatency:  1,

		PredictorBits: 12,

		Mem: mem.HierarchyConfig{
			L1I: mem.CacheConfig{SizeBytes: 64 * 1024, LineBytes: 128, Ways: 1, LatencyCycles: 1},
			L1D: mem.CacheConfig{SizeBytes: 32 * 1024, LineBytes: 128, Ways: 2, LatencyCycles: 1},
			L2:  mem.CacheConfig{SizeBytes: 1024 * 1024, LineBytes: 128, Ways: 4, LatencyCycles: 10},
			ITLB: mem.TLBConfig{
				Entries: 128, PageBytes: 4096, MissPenaltyCycles: 30,
			},
			DTLB: mem.TLBConfig{
				Entries: 128, PageBytes: 4096, MissPenaltyCycles: 30,
			},
			MemLatencyCycles: 77,
		},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	type bound struct {
		name string
		v    int
		min  int
	}
	checks := []bound{
		{"FetchWidth", c.FetchWidth, 1},
		{"FetchQueueSize", c.FetchQueueSize, 1},
		{"DispatchWidth", c.DispatchWidth, 1},
		{"RetireWidth", c.RetireWidth, 1},
		{"ROBSize", c.ROBSize, 1},
		{"IntRenameRegs", c.IntRenameRegs, 33},
		{"FPRenameRegs", c.FPRenameRegs, 33},
		{"RegFileEntries", c.RegFileEntries, 1},
		{"MemQueueSize", c.MemQueueSize, 1},
		{"IntUnits", c.IntUnits, 1},
		{"FPUnits", c.FPUnits, 1},
		{"LSUnits", c.LSUnits, 1},
		{"BrUnits", c.BrUnits, 1},
		{"IntALULatency", c.IntALULatency, 1},
		{"IntMulLatency", c.IntMulLatency, 1},
		{"IntDivLatency", c.IntDivLatency, 1},
		{"FPLatency", c.FPLatency, 1},
		{"FPDivLatency", c.FPDivLatency, 1},
		{"BranchLatency", c.BranchLatency, 1},
		{"StoreLatency", c.StoreLatency, 1},
		{"PredictorBits", c.PredictorBits, 1},
	}
	for _, b := range checks {
		if b.v < b.min {
			return fmt.Errorf("turandot: %s = %d, need >= %d", b.name, b.v, b.min)
		}
	}
	if c.PredictorBits > 24 {
		return fmt.Errorf("turandot: PredictorBits = %d too large", c.PredictorBits)
	}
	return nil
}
