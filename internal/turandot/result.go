package turandot

import (
	"fmt"

	"github.com/soferr/soferr/internal/isa"
	"github.com/soferr/soferr/internal/trace"
	"github.com/soferr/soferr/internal/units"
)

// Stats aggregates the timing simulator's counters.
type Stats struct {
	Cycles       uint64
	Instructions uint64

	Fetched    uint64
	Dispatched uint64
	Issued     uint64
	Retired    uint64

	Branches    uint64
	Mispredicts uint64

	L1IHits, L1IMisses uint64
	L1DHits, L1DMisses uint64
	L2Hits, L2Misses   uint64
	ITLBMisses         uint64
	DTLBMisses         uint64

	StallROB         uint64
	StallRename      uint64
	StallMemQ        uint64
	FetchStallCycles int64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MispredictRate returns the fraction of branches mispredicted.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// String summarizes the run.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d insts=%d ipc=%.3f branches=%d mispred=%.1f%% l1d-miss=%d l2-miss=%d",
		s.Cycles, s.Instructions, s.IPC(), s.Branches, 100*s.MispredictRate(), s.L1DMisses, s.L2Misses)
}

// Result is the outcome of one simulation: timing statistics plus the
// per-cycle masking information for the four studied components.
type Result struct {
	Config Config
	Stats  Stats

	// DecodeBusy, IntBusy, and FPBusy record, per cycle, whether the
	// instruction-decode, integer, and floating-point units were
	// processing an instruction (Section 4.1's masking rule: a raw
	// error in an idle unit is masked).
	DecodeBusy []bool
	IntBusy    []bool
	FPBusy     []bool

	// RegLive records, per cycle, the fraction of register-file entries
	// holding a value that will be read again (an error in any other
	// entry is masked).
	RegLive []float64
}

// busyRecorder accumulates busy bits during simulation with growth.
type busyRecorder struct {
	decode []bool
	intU   []bool
	fpU    []bool
}

func newBusyRecorder(instructions int) *busyRecorder {
	est := instructions * 2
	if est < 1024 {
		est = 1024
	}
	return &busyRecorder{
		decode: make([]bool, 0, est),
		intU:   make([]bool, 0, est),
		fpU:    make([]bool, 0, est),
	}
}

func grow(b []bool, upto int64) []bool {
	for int64(len(b)) <= upto {
		b = append(b, false)
	}
	return b
}

func (r *busyRecorder) markDecode(cycle int64) {
	r.decode = grow(r.decode, cycle)
	r.decode[cycle] = true
}

func (r *busyRecorder) markInt(from, to int64) {
	r.intU = grow(r.intU, to-1)
	for c := from; c < to; c++ {
		r.intU[c] = true
	}
}

func (r *busyRecorder) markFP(from, to int64) {
	r.fpU = grow(r.fpU, to-1)
	for c := from; c < to; c++ {
		r.fpU[c] = true
	}
}

// buildBusy trims the busy bitmaps to the final cycle count.
func (r *Result) buildBusy(b *busyRecorder, cycles int64) {
	pad := func(bits []bool) []bool {
		bits = grow(bits, cycles-1)
		return bits[:cycles]
	}
	r.DecodeBusy = pad(b.decode)
	r.IntBusy = pad(b.intU)
	r.FPBusy = pad(b.fpU)
}

// buildRegLive converts the def/use records into the per-cycle count of
// live register values: a value is live — and an error in it unmasked —
// from the cycle it is written until the last cycle it is read (Section
// 4.1's conservative rule). Values never read contribute nothing.
func (r *Result) buildRegLive(prog []isa.Inst, wbCycle, lastRead, initLastRead []int64, cycles int64, regFileEntries int) {
	diff := make([]int32, cycles+1)
	mark := func(from, to int64) {
		if to < from {
			return
		}
		if from < 0 {
			from = 0
		}
		if to >= cycles {
			to = cycles - 1
		}
		diff[from]++
		diff[to+1]--
	}
	for id := range prog {
		if prog[id].Dest == isa.RegNone {
			continue
		}
		if lastRead[id] >= 0 {
			mark(wbCycle[id], lastRead[id])
		}
	}
	for reg := range initLastRead {
		if initLastRead[reg] >= 0 {
			mark(0, initLastRead[reg])
		}
	}
	r.RegLive = make([]float64, cycles)
	live := int32(0)
	for c := int64(0); c < cycles; c++ {
		live += diff[c]
		f := float64(live) / float64(regFileEntries)
		if f > 1 {
			f = 1
		}
		r.RegLive[c] = f
	}
}

// ComponentTraces bundles the masking traces of the four components
// studied in Section 4.1.
type ComponentTraces struct {
	Decode  *trace.Piecewise
	Int     *trace.Piecewise
	FP      *trace.Piecewise
	RegFile *trace.Piecewise
}

// Traces converts the per-cycle masking information into masking traces
// at the base clock (Table 1: 2.0 GHz).
func (r *Result) Traces() (*ComponentTraces, error) {
	return r.TracesAt(units.SecondsPerCycle)
}

// TracesAt converts the masking information using an explicit cycle
// duration in seconds.
func (r *Result) TracesAt(cycleSeconds float64) (*ComponentTraces, error) {
	decode, err := trace.FromBits(r.DecodeBusy, cycleSeconds)
	if err != nil {
		return nil, fmt.Errorf("turandot: decode trace: %w", err)
	}
	intTr, err := trace.FromBits(r.IntBusy, cycleSeconds)
	if err != nil {
		return nil, fmt.Errorf("turandot: int trace: %w", err)
	}
	fpTr, err := trace.FromBits(r.FPBusy, cycleSeconds)
	if err != nil {
		return nil, fmt.Errorf("turandot: fp trace: %w", err)
	}
	reg, err := trace.FromLevels(r.RegLive, cycleSeconds)
	if err != nil {
		return nil, fmt.Errorf("turandot: register-file trace: %w", err)
	}
	return &ComponentTraces{Decode: decode, Int: intTr, FP: fpTr, RegFile: reg}, nil
}
