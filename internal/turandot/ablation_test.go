package turandot

import (
	"testing"

	"github.com/soferr/soferr/internal/isa"
)

// Ablation tests: each structural resource of the Table 1 machine must
// actually constrain performance. These pin down the design choices
// DESIGN.md calls out — if a parameter silently stops mattering, the
// simulator has regressed into a simpler model than the paper's.

func runWith(t *testing.T, cfg Config, prog []isa.Inst) *Result {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// independentMix builds a wide-ILP workload that can exploit extra
// resources.
func independentMix(n int) []isa.Inst {
	prog := make([]isa.Inst, n)
	for i := range prog {
		switch i % 4 {
		case 0, 1:
			prog[i] = isa.Inst{Class: isa.IntALU, Dest: isa.IntReg(4 + i%16), Src1: isa.IntReg(1)}
		case 2:
			prog[i] = isa.Inst{Class: isa.FPOp, Dest: isa.FPReg(4 + i%16), Src1: isa.FPReg(1)}
		default:
			prog[i] = isa.Inst{Class: isa.Load, Dest: isa.IntReg(20 + i%8), Src1: isa.IntReg(2),
				Addr: uint64(i%512) * 8}
		}
	}
	return seqPCs(prog)
}

func TestAblationIntUnits(t *testing.T) {
	prog := make([]isa.Inst, 20000)
	for i := range prog {
		prog[i] = isa.Inst{Class: isa.IntALU, Dest: isa.IntReg(4 + i%16), Src1: isa.IntReg(1)}
	}
	seqPCs(prog)
	base := runWith(t, DefaultConfig(), prog)
	one := DefaultConfig()
	one.IntUnits = 1
	halved := runWith(t, one, prog)
	if float64(halved.Stats.Cycles) < 1.6*float64(base.Stats.Cycles) {
		t.Errorf("halving integer units: %d -> %d cycles; expected ~2x",
			base.Stats.Cycles, halved.Stats.Cycles)
	}
}

func TestAblationROBSize(t *testing.T) {
	// Long-latency loads need a deep ROB to overlap; a tiny ROB must
	// hurt a memory-miss workload.
	prog := make([]isa.Inst, 6000)
	for i := range prog {
		if i%3 == 0 {
			prog[i] = isa.Inst{Class: isa.Load, Dest: isa.IntReg(4 + i%8), Src1: isa.IntReg(1),
				Addr: uint64(i) * 256 * 1024}
		} else {
			prog[i] = isa.Inst{Class: isa.IntALU, Dest: isa.IntReg(12 + i%8), Src1: isa.IntReg(2)}
		}
	}
	seqPCs(prog)
	base := runWith(t, DefaultConfig(), prog)
	small := DefaultConfig()
	small.ROBSize = 8
	cramped := runWith(t, small, prog)
	if float64(cramped.Stats.Cycles) < 1.5*float64(base.Stats.Cycles) {
		t.Errorf("ROB 150 -> 8: %d -> %d cycles; expected large slowdown",
			base.Stats.Cycles, cramped.Stats.Cycles)
	}
	if cramped.Stats.StallROB == 0 {
		t.Error("no ROB stalls recorded with an 8-entry ROB")
	}
}

func TestAblationMemQueue(t *testing.T) {
	prog := make([]isa.Inst, 6000)
	for i := range prog {
		prog[i] = isa.Inst{Class: isa.Load, Dest: isa.IntReg(4 + i%8), Src1: isa.IntReg(1),
			Addr: uint64(i) * 256 * 1024}
	}
	seqPCs(prog)
	base := runWith(t, DefaultConfig(), prog)
	tiny := DefaultConfig()
	tiny.MemQueueSize = 2
	blocked := runWith(t, tiny, prog)
	if float64(blocked.Stats.Cycles) < 2*float64(base.Stats.Cycles) {
		t.Errorf("memq 32 -> 2: %d -> %d cycles; expected big slowdown on a miss stream",
			base.Stats.Cycles, blocked.Stats.Cycles)
	}
}

func TestAblationRenameRegs(t *testing.T) {
	// Long-latency FP ops with few rename registers throttle dispatch.
	prog := make([]isa.Inst, 10000)
	for i := range prog {
		prog[i] = isa.Inst{Class: isa.FPDiv, Dest: isa.FPReg(4 + i%16), Src1: isa.FPReg(1)}
	}
	seqPCs(prog)
	base := runWith(t, DefaultConfig(), prog)
	tight := DefaultConfig()
	tight.FPRenameRegs = 36 // only 4 rename registers beyond architectural
	starved := runWith(t, tight, prog)
	if float64(starved.Stats.Cycles) < 2*float64(base.Stats.Cycles) {
		t.Errorf("fp rename 72 -> 36: %d -> %d cycles; expected throttling",
			base.Stats.Cycles, starved.Stats.Cycles)
	}
	if starved.Stats.StallRename == 0 {
		t.Error("no rename stalls recorded")
	}
}

func TestAblationDispatchWidth(t *testing.T) {
	prog := independentMix(20000)
	base := runWith(t, DefaultConfig(), prog)
	narrow := DefaultConfig()
	narrow.DispatchWidth = 1
	serial := runWith(t, narrow, prog)
	if float64(serial.Stats.Cycles) < 1.5*float64(base.Stats.Cycles) {
		t.Errorf("dispatch 5 -> 1: %d -> %d cycles; expected slowdown",
			base.Stats.Cycles, serial.Stats.Cycles)
	}
}

func TestAblationL2Latency(t *testing.T) {
	// A working set that fits L2 but not L1: L2 latency must matter.
	prog := make([]isa.Inst, 20000)
	for i := range prog {
		prog[i] = isa.Inst{Class: isa.Load, Dest: isa.IntReg(4 + i%8), Src1: isa.IntReg(1),
			Addr: uint64(i%4096) * 128} // 512KB set, L1D is 32KB
	}
	seqPCs(prog)
	base := runWith(t, DefaultConfig(), prog)
	slowL2 := DefaultConfig()
	slowL2.Mem.L2.LatencyCycles = 40
	slowed := runWith(t, slowL2, prog)
	if slowed.Stats.Cycles <= base.Stats.Cycles {
		t.Errorf("L2 latency 10 -> 40 made no difference: %d vs %d cycles",
			base.Stats.Cycles, slowed.Stats.Cycles)
	}
}

func TestMemStatsConsistent(t *testing.T) {
	res := run(t, independentMix(20000))
	s := res.Stats
	if s.L1DHits+s.L1DMisses == 0 {
		t.Error("no L1D accesses recorded for a load-heavy program")
	}
	// Every L2 access is an L1 miss (I or D side).
	if s.L2Hits+s.L2Misses > s.L1DMisses+s.L1IMisses {
		t.Errorf("L2 accesses (%d) exceed L1 misses (%d)",
			s.L2Hits+s.L2Misses, s.L1DMisses+s.L1IMisses)
	}
}
