package turandot

import (
	"math"
	"testing"

	"github.com/soferr/soferr/internal/isa"
)

func run(t *testing.T, prog []isa.Inst) *Result {
	t.Helper()
	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// seqPCs assigns PCs looping over a 4 KB code footprint, so after the
// first pass instruction fetch is warm and the test measures
// steady-state pipeline behaviour rather than compulsory icache misses.
func seqPCs(prog []isa.Inst) []isa.Inst {
	const codeWords = 1024
	for i := range prog {
		prog[i].PC = uint64(i%codeWords) * 4
	}
	return prog
}

// aluChain builds n dependent 1-cycle integer ops r5 = r5 + r5.
func aluChain(n int) []isa.Inst {
	prog := make([]isa.Inst, n)
	for i := range prog {
		prog[i] = isa.Inst{Class: isa.IntALU, Dest: isa.IntReg(5), Src1: isa.IntReg(5), Src2: isa.IntReg(5)}
	}
	return seqPCs(prog)
}

// aluIndependent builds n independent integer ops across registers.
func aluIndependent(n int) []isa.Inst {
	prog := make([]isa.Inst, n)
	for i := range prog {
		r := isa.IntReg(4 + i%16)
		prog[i] = isa.Inst{Class: isa.IntALU, Dest: r, Src1: isa.IntReg(1), Src2: isa.IntReg(2)}
	}
	return seqPCs(prog)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.ROBSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	bad = DefaultConfig()
	bad.IntRenameRegs = 10 // fewer than architectural registers
	if err := bad.Validate(); err == nil {
		t.Error("too-few rename regs accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestEmptyProgram(t *testing.T) {
	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(nil); err == nil {
		t.Error("empty program accepted")
	}
}

func TestInvalidInstructionRejected(t *testing.T) {
	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([]isa.Inst{{Class: 0}}); err == nil {
		t.Error("invalid instruction accepted")
	}
}

func TestAllRetired(t *testing.T) {
	res := run(t, aluIndependent(5000))
	if res.Stats.Retired != 5000 {
		t.Errorf("retired %d, want 5000", res.Stats.Retired)
	}
	if res.Stats.Fetched != 5000 || res.Stats.Dispatched != 5000 || res.Stats.Issued != 5000 {
		t.Errorf("pipeline counts: %+v", res.Stats)
	}
}

func TestDependentChainIPCNearOne(t *testing.T) {
	// A chain of dependent 1-cycle ops can execute at most one per cycle.
	res := run(t, aluChain(20000))
	ipc := res.Stats.IPC()
	if ipc > 1.01 {
		t.Errorf("dependent chain IPC = %v, cannot exceed 1", ipc)
	}
	if ipc < 0.80 {
		t.Errorf("dependent chain IPC = %v, pipeline overhead too high", ipc)
	}
}

func TestIndependentOpsBoundByIntUnits(t *testing.T) {
	// Independent integer ops are bound by the 2 integer units.
	res := run(t, aluIndependent(20000))
	ipc := res.Stats.IPC()
	if ipc > 2.01 {
		t.Errorf("IPC = %v exceeds integer-unit bound of 2", ipc)
	}
	if ipc < 1.6 {
		t.Errorf("IPC = %v, want near 2 for independent ops", ipc)
	}
}

func TestMixedIntFPExceedsIntBound(t *testing.T) {
	// Interleaved independent int and FP ops can use both unit pools;
	// IPC should exceed the 2.0 int-only bound (dispatch width 5,
	// 2 int + 2 fp units available).
	n := 20000
	prog := make([]isa.Inst, n)
	for i := range prog {
		if i%2 == 0 {
			prog[i] = isa.Inst{Class: isa.IntALU, Dest: isa.IntReg(4 + i%16), Src1: isa.IntReg(1)}
		} else {
			prog[i] = isa.Inst{Class: isa.FPOp, Dest: isa.FPReg(4 + i%16), Src1: isa.FPReg(1)}
		}
	}
	res := run(t, seqPCs(prog))
	if ipc := res.Stats.IPC(); ipc < 2.5 {
		t.Errorf("mixed IPC = %v, want > 2.5", ipc)
	}
}

func TestIntDivUnpipelined(t *testing.T) {
	// Back-to-back independent divides serialize on the two unpipelined
	// integer units: throughput approaches 2 per 35 cycles.
	n := 2000
	prog := make([]isa.Inst, n)
	for i := range prog {
		prog[i] = isa.Inst{Class: isa.IntDiv, Dest: isa.IntReg(4 + i%16), Src1: isa.IntReg(1), Src2: isa.IntReg(2)}
	}
	res := run(t, seqPCs(prog))
	wantCycles := float64(n) * 35 / 2
	got := float64(res.Stats.Cycles)
	if got < wantCycles*0.95 {
		t.Errorf("cycles = %v, want >= %v (unpipelined divide)", got, wantCycles*0.95)
	}
	if got > wantCycles*1.15 {
		t.Errorf("cycles = %v, want ~%v", got, wantCycles)
	}
}

func TestFPDivPipelined(t *testing.T) {
	// FP divide is pipelined (Table 1): independent divides issue every
	// cycle, so throughput is unit-bound (2/cycle), far better than the
	// unpipelined case. Use enough instructions to amortize cold-start
	// instruction-cache fills (~2.5k cycles).
	n := 20000
	prog := make([]isa.Inst, n)
	for i := range prog {
		prog[i] = isa.Inst{Class: isa.FPDiv, Dest: isa.FPReg(4 + i%16), Src1: isa.FPReg(1), Src2: isa.FPReg(2)}
	}
	res := run(t, seqPCs(prog))
	maxCycles := float64(n)/2*1.4 + 3000
	if float64(res.Stats.Cycles) > maxCycles {
		t.Errorf("cycles = %d, want < %v for pipelined FP divide", res.Stats.Cycles, maxCycles)
	}
}

func TestLoadMissesSlowExecution(t *testing.T) {
	// Loads revisiting a warm 4 KB working set (all L1 hits after one
	// pass) vs loads striding far beyond L2: misses must cost many more
	// cycles.
	const n = 3000
	mk := func(addr func(i int) uint64) []isa.Inst {
		prog := make([]isa.Inst, n)
		for i := range prog {
			prog[i] = isa.Inst{
				Class: isa.Load, Dest: isa.IntReg(4 + i%8), Src1: isa.IntReg(1),
				Addr: addr(i),
			}
		}
		return seqPCs(prog)
	}
	hit := run(t, mk(func(i int) uint64 { return uint64(i%512) * 8 }))
	miss := run(t, mk(func(i int) uint64 { return uint64(i) * 128 * 1024 }))
	if miss.Stats.Cycles < hit.Stats.Cycles*3 {
		t.Errorf("miss run %d cycles vs hit run %d: memory system has no effect",
			miss.Stats.Cycles, hit.Stats.Cycles)
	}
	if miss.Stats.L2Misses < n/2 {
		t.Errorf("expected pervasive L2 misses in striding run, got %d", miss.Stats.L2Misses)
	}
	if hit.Stats.L1DMisses > n/10 {
		t.Errorf("hit run has %d L1D misses, want few", hit.Stats.L1DMisses)
	}
}

func TestBranchMispredictsSlowExecution(t *testing.T) {
	mk := func(random bool) []isa.Inst {
		n := 20000
		prog := make([]isa.Inst, n)
		taken := false
		for i := range prog {
			if i%5 == 4 {
				if random {
					taken = (i*2654435761)%7 < 3 // pseudo-random pattern
				} else {
					taken = false // perfectly predictable
				}
				prog[i] = isa.Inst{Class: isa.Branch, Src1: isa.IntReg(1), Taken: taken}
			} else {
				prog[i] = isa.Inst{Class: isa.IntALU, Dest: isa.IntReg(4 + i%16), Src1: isa.IntReg(1)}
			}
		}
		return seqPCs(prog)
	}
	predictable := run(t, mk(false))
	random := run(t, mk(true))
	if random.Stats.Mispredicts <= predictable.Stats.Mispredicts {
		t.Errorf("mispredicts: random %d <= predictable %d",
			random.Stats.Mispredicts, predictable.Stats.Mispredicts)
	}
	if random.Stats.Cycles <= predictable.Stats.Cycles {
		t.Errorf("cycles: random %d <= predictable %d — mispredicts cost nothing",
			random.Stats.Cycles, predictable.Stats.Cycles)
	}
}

func TestBusyBitsMatchWorkloadClass(t *testing.T) {
	// An FP-only program must never mark the integer unit busy, and vice
	// versa; decode must be busy while dispatching.
	fpOnly := make([]isa.Inst, 3000)
	for i := range fpOnly {
		fpOnly[i] = isa.Inst{Class: isa.FPOp, Dest: isa.FPReg(4 + i%16), Src1: isa.FPReg(1)}
	}
	res := run(t, seqPCs(fpOnly))
	for c, b := range res.IntBusy {
		if b {
			t.Fatalf("integer unit busy at cycle %d in FP-only program", c)
		}
	}
	fpBusy := 0
	for _, b := range res.FPBusy {
		if b {
			fpBusy++
		}
	}
	if fpBusy == 0 {
		t.Error("FP unit never busy in FP-only program")
	}
	decodeBusy := 0
	for _, b := range res.DecodeBusy {
		if b {
			decodeBusy++
		}
	}
	if decodeBusy == 0 {
		t.Error("decode never busy")
	}
}

func TestBusyDurationsScaleWithLatency(t *testing.T) {
	// A long stream of independent FP ops keeps the FP pipeline busy
	// nearly every warm cycle; size the run so cold instruction-cache
	// fills (~2.5k idle cycles) cannot dominate the fraction.
	n := 20000
	prog := make([]isa.Inst, n)
	for i := range prog {
		prog[i] = isa.Inst{Class: isa.FPOp, Dest: isa.FPReg(4 + i%16), Src1: isa.FPReg(1)}
	}
	res := run(t, seqPCs(prog))
	busy := 0
	for _, b := range res.FPBusy {
		if b {
			busy++
		}
	}
	if frac := float64(busy) / float64(res.Stats.Cycles); frac < 0.75 {
		t.Errorf("FP busy fraction = %v, want > 0.75 for a saturated FP stream", frac)
	}
}

func TestRegLiveReflectsDeadValues(t *testing.T) {
	// Program A: every value is read by the next instruction (all live).
	// Program B: values are written and never read (all dead).
	mkLive := func() []isa.Inst {
		prog := make([]isa.Inst, 2000)
		for i := range prog {
			prog[i] = isa.Inst{Class: isa.IntALU, Dest: isa.IntReg(5 + i%2), Src1: isa.IntReg(5 + (i+1)%2)}
		}
		return seqPCs(prog)
	}
	mkDead := func() []isa.Inst {
		prog := make([]isa.Inst, 2000)
		for i := range prog {
			prog[i] = isa.Inst{Class: isa.IntALU, Dest: isa.IntReg(5 + i%16)} // no sources
		}
		return seqPCs(prog)
	}
	live := run(t, mkLive())
	dead := run(t, mkDead())
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	liveAvg, deadAvg := avg(live.RegLive), avg(dead.RegLive)
	if liveAvg <= deadAvg {
		t.Errorf("reg liveness: live program %v <= dead program %v", liveAvg, deadAvg)
	}
	if deadAvg > 0.02 {
		t.Errorf("dead program liveness = %v, want ~0", deadAvg)
	}
	for c, f := range live.RegLive {
		if f < 0 || f > 1 {
			t.Fatalf("liveness out of range at cycle %d: %v", c, f)
		}
	}
}

func TestDeterminism(t *testing.T) {
	prog := aluIndependent(5000)
	a := run(t, prog)
	b := run(t, prog)
	if a.Stats != b.Stats {
		t.Errorf("stats differ across runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestTracesRoundTrip(t *testing.T) {
	res := run(t, aluIndependent(3000))
	traces, err := res.Traces()
	if err != nil {
		t.Fatal(err)
	}
	wantPeriod := float64(res.Stats.Cycles) * 0.5e-9
	for name, tr := range map[string]interface {
		Period() float64
		AVF() float64
	}{
		"decode": traces.Decode, "int": traces.Int, "fp": traces.FP, "regfile": traces.RegFile,
	} {
		if math.Abs(tr.Period()-wantPeriod)/wantPeriod > 1e-9 {
			t.Errorf("%s period = %v, want %v", name, tr.Period(), wantPeriod)
		}
		if tr.AVF() < 0 || tr.AVF() > 1 {
			t.Errorf("%s AVF = %v out of range", name, tr.AVF())
		}
	}
	if traces.Int.AVF() == 0 {
		t.Error("integer AVF = 0 for an integer workload")
	}
	if traces.FP.AVF() != 0 {
		t.Error("FP AVF != 0 for an integer-only workload")
	}
}

func TestStatsString(t *testing.T) {
	res := run(t, aluIndependent(1000))
	if res.Stats.String() == "" {
		t.Error("empty stats string")
	}
	if res.Stats.MispredictRate() != 0 {
		t.Errorf("mispredict rate = %v for branchless program", res.Stats.MispredictRate())
	}
}
