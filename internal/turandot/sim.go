package turandot

import (
	"errors"
	"fmt"

	"github.com/soferr/soferr/internal/isa"
	"github.com/soferr/soferr/internal/mem"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errEmptyProgram = errors.New("turandot: empty program")
)

// Sim is a trace-driven out-of-order timing simulator. Create one with
// New and call Run once per program; a Sim is not safe for concurrent
// use.
type Sim struct {
	cfg  Config
	hier *mem.Hierarchy
	bp   *predictor
}

// New builds a simulator for the given configuration.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, fmt.Errorf("turandot: %w", err)
	}
	return &Sim{
		cfg:  cfg,
		hier: hier,
		bp:   newPredictor(cfg.PredictorBits),
	}, nil
}

// robEntry is one in-flight instruction. The reorder buffer holds
// consecutive dynamic instruction ids, so id % ROBSize addresses the
// entry directly.
type robEntry struct {
	id       int64
	class    isa.Class
	dest     isa.Reg
	src1Prod int64 // producing instruction id, or -1 if value already ready
	src2Prod int64
	issued   bool
	issueAt  int64
	doneAt   int64
	addr     uint64
	pc       uint64
}

// fetchSlot is one entry of the fetch/decode queue.
type fetchSlot struct {
	idx       int64 // index into the program
	fetchedAt int64
}

// maxCyclesPerInst guards against livelock bugs: no realistic program
// takes 1000 cycles per instruction on this machine.
const maxCyclesPerInst = 1000

// Run simulates prog to completion and returns the timing result,
// including the per-cycle masking information of Section 4.1.
func (s *Sim) Run(prog []isa.Inst) (*Result, error) {
	if len(prog) == 0 {
		return nil, errEmptyProgram
	}
	for i := range prog {
		if err := prog[i].Validate(); err != nil {
			return nil, fmt.Errorf("turandot: instruction %d: %w", i, err)
		}
	}

	cfg := s.cfg
	n := int64(len(prog))
	maxCycles := n*maxCyclesPerInst + 10000

	var (
		rob     = make([]robEntry, cfg.ROBSize)
		headID  = int64(0) // oldest in-flight id
		nextID  = int64(0) // next id to dispatch
		fetched = int64(0) // next program index to fetch

		fetchQ = make([]fetchSlot, 0, cfg.FetchQueueSize)

		// renameProd[r] is the id of the most recent in-flight or
		// retired producer of architectural register r, or -1.
		renameProd [isa.NumRegs + 1]int64

		intDefsInFlight int
		fpDefsInFlight  int
		memOpsInFlight  int

		intUnitFree = make([]int64, cfg.IntUnits)
		fpUnitFree  = make([]int64, cfg.FPUnits)
		lsUnitFree  = make([]int64, cfg.LSUnits)
		brUnitFree  = make([]int64, cfg.BrUnits)

		fetchBusyUntil int64 // icache miss / mispredict stall
		blockingBranch = int64(-1)
		curFetchLine   = uint64(1<<64 - 1)

		// Per-instruction records for the register-liveness post-pass.
		wbCycle  = make([]int64, n)
		lastRead = make([]int64, n)
		// Reads of pre-existing architectural values.
		initLastRead [isa.NumRegs + 1]int64

		busy  = newBusyRecorder(int(n))
		stats Stats
	)
	for i := range renameProd {
		renameProd[i] = -1
	}
	for i := range lastRead {
		lastRead[i] = -1
	}
	for i := range initLastRead {
		initLastRead[i] = -1
	}

	intRenameCap := cfg.IntRenameRegs - isa.NumIntRegs
	fpRenameCap := cfg.FPRenameRegs - isa.NumFPRegs

	// ready reports whether producer id's value is available at cycle.
	ready := func(prod, cycle int64) bool {
		if prod < 0 || prod < headID {
			return true // no producer, or producer retired
		}
		e := &rob[prod%int64(cfg.ROBSize)]
		return e.issued && e.doneAt <= cycle
	}

	retiredAll := func() bool { return headID == n }

	var cycle int64
	for cycle = 0; cycle < maxCycles; cycle++ {
		if retiredAll() {
			break
		}

		// --- Retire: up to one dispatch group of completed entries, in order.
		for k := 0; k < cfg.RetireWidth && headID < nextID; k++ {
			e := &rob[headID%int64(cfg.ROBSize)]
			if !e.issued || e.doneAt > cycle {
				break
			}
			if e.dest != isa.RegNone {
				if e.dest.IsInt() {
					intDefsInFlight--
				} else {
					fpDefsInFlight--
				}
			}
			if e.class.IsMem() {
				memOpsInFlight--
			}
			stats.Retired++
			headID++
		}

		// --- Issue: oldest-first among dispatched entries with ready
		// operands and a free unit.
		for id := headID; id < nextID; id++ {
			e := &rob[id%int64(cfg.ROBSize)]
			if e.issued {
				continue
			}
			if !ready(e.src1Prod, cycle) || !ready(e.src2Prod, cycle) {
				continue
			}
			var (
				pool    []int64
				latency int64
				occupy  int64 // how long the unit stays busy (unpipelined ops)
			)
			switch e.class {
			case isa.IntALU:
				pool, latency, occupy = intUnitFree, int64(cfg.IntALULatency), 1
			case isa.IntMul:
				pool, latency, occupy = intUnitFree, int64(cfg.IntMulLatency), 1
			case isa.IntDiv:
				pool, latency, occupy = intUnitFree, int64(cfg.IntDivLatency), int64(cfg.IntDivLatency)
			case isa.FPOp:
				pool, latency, occupy = fpUnitFree, int64(cfg.FPLatency), 1
			case isa.FPDiv:
				pool, latency, occupy = fpUnitFree, int64(cfg.FPDivLatency), 1
			case isa.Load:
				pool, latency, occupy = lsUnitFree, 0, 1 // latency from hierarchy below
			case isa.Store:
				pool, latency, occupy = lsUnitFree, int64(cfg.StoreLatency), 1
			case isa.Branch:
				pool, latency, occupy = brUnitFree, int64(cfg.BranchLatency), 1
			}
			unit := -1
			for u := range pool {
				if pool[u] <= cycle {
					unit = u
					break
				}
			}
			if unit < 0 {
				continue // structural hazard; try younger ops (other classes)
			}
			if e.class == isa.Load {
				latency = int64(s.hier.DataLatency(e.addr))
			} else if e.class == isa.Store {
				// Stores probe the cache for timing state but complete
				// quickly; their latency is hidden by the store queue.
				s.hier.DataLatency(e.addr)
			}
			pool[unit] = cycle + occupy
			e.issued = true
			e.issueAt = cycle
			e.doneAt = cycle + latency
			stats.Issued++

			// Record reads for the register-liveness post-pass.
			recordRead := func(prod int64, reg isa.Reg) {
				if reg == isa.RegNone {
					return
				}
				if prod < 0 {
					if cycle > initLastRead[reg] {
						initLastRead[reg] = cycle
					}
				} else if cycle > lastRead[prod] {
					lastRead[prod] = cycle
				}
			}
			in := &prog[id]
			recordRead(e.src1Prod, in.Src1)
			recordRead(e.src2Prod, in.Src2)
			if e.dest != isa.RegNone {
				wbCycle[id] = e.doneAt
			}

			// Busy accounting for the studied units (Section 4.1):
			// a unit is busy every cycle it is processing an instruction.
			switch {
			case e.class.IsInt():
				busy.markInt(cycle, e.doneAt)
			case e.class.IsFP():
				busy.markFP(cycle, e.doneAt)
			}

			// A resolving branch unblocks fetch after its resolution.
			if e.class == isa.Branch && id == blockingBranch {
				if e.doneAt+1 > fetchBusyUntil {
					fetchBusyUntil = e.doneAt + 1
				}
				blockingBranch = -1
			}
		}

		// --- Dispatch: move a group from the fetch queue into the ROB.
		dispatched := 0
		for dispatched < cfg.DispatchWidth && len(fetchQ) > 0 {
			slot := fetchQ[0]
			if slot.fetchedAt >= cycle {
				break // decode takes one cycle
			}
			if nextID-headID >= int64(cfg.ROBSize) {
				stats.StallROB++
				break
			}
			in := &prog[slot.idx]
			if in.Dest != isa.RegNone {
				if in.Dest.IsInt() && intDefsInFlight >= intRenameCap {
					stats.StallRename++
					break
				}
				if in.Dest.IsFP() && fpDefsInFlight >= fpRenameCap {
					stats.StallRename++
					break
				}
			}
			if in.Class.IsMem() && memOpsInFlight >= cfg.MemQueueSize {
				stats.StallMemQ++
				break
			}

			id := nextID
			e := &rob[id%int64(cfg.ROBSize)]
			*e = robEntry{
				id:       id,
				class:    in.Class,
				dest:     in.Dest,
				src1Prod: -1,
				src2Prod: -1,
				addr:     in.Addr,
				pc:       in.PC,
			}
			if in.Src1 != isa.RegNone {
				e.src1Prod = renameProd[in.Src1]
			}
			if in.Src2 != isa.RegNone {
				e.src2Prod = renameProd[in.Src2]
			}
			if in.Dest != isa.RegNone {
				renameProd[in.Dest] = id
				if in.Dest.IsInt() {
					intDefsInFlight++
				} else {
					fpDefsInFlight++
				}
			}
			if in.Class.IsMem() {
				memOpsInFlight++
			}
			nextID++
			fetchQ = fetchQ[1:]
			dispatched++
			stats.Dispatched++
		}
		if dispatched > 0 {
			busy.markDecode(cycle)
		}

		// --- Fetch: up to FetchWidth sequential instructions.
		if blockingBranch < 0 && cycle >= fetchBusyUntil {
			for w := 0; w < cfg.FetchWidth && fetched < n && len(fetchQ) < cfg.FetchQueueSize; w++ {
				in := &prog[fetched]
				line := in.PC >> 7 // 128-byte fetch line
				if line != curFetchLine {
					lat := int64(s.hier.FetchLatency(in.PC))
					curFetchLine = line
					if lat > int64(cfg.Mem.L1I.LatencyCycles) {
						// Miss: the line arrives after lat cycles.
						fetchBusyUntil = cycle + lat
						stats.FetchStallCycles += lat
						break
					}
				}
				fetchQ = append(fetchQ, fetchSlot{idx: fetched, fetchedAt: cycle})
				stats.Fetched++
				if in.Class == isa.Branch {
					stats.Branches++
					pred := s.bp.predict(in.PC)
					s.bp.update(in.PC, in.Taken)
					if pred != in.Taken {
						stats.Mispredicts++
						blockingBranch = int64(fetched)
						fetched++
						break // stall until the branch resolves
					}
					if in.Taken {
						fetched++
						break // taken branch ends the fetch group
					}
				}
				fetched++
			}
		}
	}

	if !retiredAll() {
		return nil, fmt.Errorf("turandot: exceeded %d cycles with %d/%d retired (livelock?)",
			maxCycles, headID, n)
	}

	stats.Cycles = uint64(cycle)
	stats.Instructions = uint64(n)
	s.fillMemStats(&stats)

	res := &Result{
		Config: cfg,
		Stats:  stats,
	}
	res.buildBusy(busy, cycle)
	res.buildRegLive(prog, wbCycle, lastRead, initLastRead[:], cycle, cfg.RegFileEntries)
	return res, nil
}

func (s *Sim) fillMemStats(st *Stats) {
	st.L1IHits, st.L1IMisses = s.hier.L1I.Hits(), s.hier.L1I.Misses()
	st.L1DHits, st.L1DMisses = s.hier.L1D.Hits(), s.hier.L1D.Misses()
	st.L2Hits, st.L2Misses = s.hier.L2.Hits(), s.hier.L2.Misses()
	st.ITLBMisses = s.hier.ITLB.Misses()
	st.DTLBMisses = s.hier.DTLB.Misses()
}
