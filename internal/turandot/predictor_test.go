package turandot

import "testing"

func TestPredictorLearnsBias(t *testing.T) {
	p := newPredictor(12)
	mis := 0
	for i := 0; i < 2000; i++ {
		taken := i%20 != 19 // loop branch: taken 19 of 20
		if p.predict(0x1000) != taken {
			mis++
		}
		p.update(0x1000, taken)
	}
	if rate := float64(mis) / 2000; rate > 0.12 {
		t.Errorf("mispredict rate %v on a 95%%-biased loop branch, want <= 12%%", rate)
	}
}

func TestPredictorLearnsAlternating(t *testing.T) {
	// A strictly alternating branch defeats bimodal but not gshare; the
	// tournament must converge to near-perfect prediction.
	p := newPredictor(12)
	mis := 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if p.predict(0x2000) != taken {
			mis++
		}
		p.update(0x2000, taken)
	}
	late := 0
	for i := n; i < n+1000; i++ {
		taken := i%2 == 0
		if p.predict(0x2000) != taken {
			late++
		}
		p.update(0x2000, taken)
	}
	if late > 50 {
		t.Errorf("alternating branch still mispredicts %d/1000 after training", late)
	}
}

func TestPredictorManyInterleavedLoops(t *testing.T) {
	// Dozens of loop branches with different periods, interleaved — the
	// workload-generator pattern. The tournament's bimodal side must
	// keep the aggregate mispredict rate near the sum of the boundary
	// frequencies (~1/period), not near 50%.
	p := newPredictor(12)
	const branches = 64
	mis, total := 0, 0
	counts := [branches]int{}
	for round := 0; round < 400; round++ {
		for b := 0; b < branches; b++ {
			period := 8 + b%24
			counts[b]++
			taken := counts[b]%period != 0
			pc := uint64(0x4000 + b*64)
			if p.predict(pc) != taken {
				mis++
			}
			total++
			p.update(pc, taken)
		}
	}
	if rate := float64(mis) / float64(total); rate > 0.20 {
		t.Errorf("interleaved loop mispredict rate = %v, want <= 20%%", rate)
	}
}

func TestPredictorRandomBranchNearHalf(t *testing.T) {
	p := newPredictor(12)
	// A deterministic pseudo-random direction stream.
	x := uint64(0x9e3779b97f4a7c15)
	mis, total := 0, 0
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		taken := x&1 == 1
		if p.predict(0x8000) != taken {
			mis++
		}
		total++
		p.update(0x8000, taken)
	}
	rate := float64(mis) / float64(total)
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("random branch mispredict rate = %v, want ~0.5", rate)
	}
}
