package turandot

// predictor is a tournament (McFarling-style) branch predictor, as used
// by Alpha 21264-class and POWER-class machines: a bimodal (per-PC)
// table of two-bit counters, a gshare (global-history) table, and a
// chooser table that learns per index which component predicts better.
//
// The combination matters for synthetic workloads: branches whose
// outcomes are periodic per-PC but interleaved with many other branches
// present noisy global history, where bimodal wins; branches correlated
// with recent outcomes favour gshare. The chooser adapts per branch.
type predictor struct {
	history uint32
	mask    uint32
	bimodal []uint8 // 2-bit saturating: taken if >= 2
	gshare  []uint8
	chooser []uint8 // >= 2 selects gshare, else bimodal
}

func newPredictor(bits int) *predictor {
	size := 1 << uint(bits)
	p := &predictor{
		mask:    uint32(size - 1),
		bimodal: make([]uint8, size),
		gshare:  make([]uint8, size),
		chooser: make([]uint8, size),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
		p.gshare[i] = 1
		p.chooser[i] = 1 // weakly bimodal
	}
	return p
}

func (p *predictor) bimodalIndex(pc uint64) uint32 { return uint32(pc>>2) & p.mask }
func (p *predictor) gshareIndex(pc uint64) uint32  { return (uint32(pc>>2) ^ p.history) & p.mask }

// predict returns the predicted direction for the branch at pc.
func (p *predictor) predict(pc uint64) bool {
	pb := p.bimodal[p.bimodalIndex(pc)] >= 2
	pg := p.gshare[p.gshareIndex(pc)] >= 2
	if p.chooser[p.bimodalIndex(pc)] >= 2 {
		return pg
	}
	return pb
}

// update trains both components and the chooser, then shifts the
// outcome into the global history.
func (p *predictor) update(pc uint64, taken bool) {
	bi := p.bimodalIndex(pc)
	gi := p.gshareIndex(pc)
	pb := p.bimodal[bi] >= 2
	pg := p.gshare[gi] >= 2

	// Chooser trains only when the components disagree.
	if pb != pg {
		c := p.chooser[bi]
		if pg == taken {
			if c < 3 {
				c++
			}
		} else if c > 0 {
			c--
		}
		p.chooser[bi] = c
	}

	train := func(t []uint8, i uint32) {
		c := t[i]
		if taken {
			if c < 3 {
				c++
			}
		} else if c > 0 {
			c--
		}
		t[i] = c
	}
	train(p.bimodal, bi)
	train(p.gshare, gi)

	p.history = ((p.history << 1) | b2u(taken)) & p.mask
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
