// Package ctxlib seeds positive and negative cases for the ctxflow
// analyzer over a library (non-main) package.
package ctxlib

import "context"

type store struct{}

func Query(ctx context.Context, q string) error { return ctx.Err() }

func (s *store) Get(ctx context.Context, key string) error { return ctx.Err() }

func Lookup(q string, ctx context.Context) error { // want `Lookup takes context.Context at parameter 2`
	return ctx.Err()
}

func detached() error {
	ctx := context.Background() // want `context.Background\(\) inside a library package`
	return ctx.Err()
}

func todo() error {
	return context.TODO().Err() // want `context.TODO\(\) inside a library package`
}

// MustQuery is the documented ctx-less convenience wrapper.
//
//soferr:allow ctxflow convenience wrapper; callers needing cancellation use Query
func MustQuery(q string) error {
	return Query(context.Background(), q)
}

func unjustified() {
	/* want `soferr:allow ctxflow needs a justification` */ //soferr:allow ctxflow
	_ = context.Background()                                // want `context.Background\(\) inside a library package`
}
