// Command ctxmain shows that package main is exempt from the ctxflow
// contract: main owns the root context.
package main

import "context"

func main() {
	ctx := context.Background()
	run(ctx)
}

func run(ctx context.Context) {
	<-ctx.Done()
}
