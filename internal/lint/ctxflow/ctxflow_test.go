package ctxflow_test

import (
	"testing"

	"github.com/soferr/soferr/internal/lint/ctxflow"
	"github.com/soferr/soferr/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), ctxflow.Analyzer, "ctxlib", "ctxmain")
}
