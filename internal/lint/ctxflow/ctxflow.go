// Package ctxflow implements the soferrlint analyzer enforcing the
// context contract on library packages (every non-main package,
// excluding tests):
//
//   - a function that takes a context.Context takes it as the first
//     parameter (after the receiver), so ctx threads uniformly
//     through the query path;
//   - context.Background() and context.TODO() are forbidden inside
//     library code — a fresh root context severs the caller's
//     deadline and cancellation; thread the ctx parameter instead.
//     Convenience wrappers that are deliberately ctx-less document it
//     with //soferr:allow ctxflow <why>.
//
// Escape hatch: //soferr:allow ctxflow <why>.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/soferr/soferr/internal/lint/directive"
)

const name = "ctxflow"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "require context.Context first and forbid context.Background/TODO in library packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := pass.ResultOf[directive.Analyzer].(*directive.Index)
	for _, a := range dirs.Unjustified(name) {
		pass.Reportf(a.Pos, "soferr:allow %s needs a justification (\"//soferr:allow %s <why>\")", name, name)
	}

	if pass.Pkg.Name() == "main" {
		dirs.ReportStale(name, pass.Reportf)
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	report := func(n ast.Node, format string, args ...interface{}) {
		if dirs.Allows(name, n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	inTest := false
	ins.Preorder([]ast.Node{
		(*ast.File)(nil),
		(*ast.FuncDecl)(nil),
		(*ast.CallExpr)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inTest = strings.HasSuffix(pass.Fset.File(n.Pos()).Name(), "_test.go")
		case *ast.FuncDecl:
			if inTest {
				return
			}
			checkCtxFirst(pass, report, n)
		case *ast.CallExpr:
			if inTest {
				return
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				report(n, "context.%s() inside a library package severs the caller's deadline and cancellation; thread the ctx parameter (or //soferr:allow ctxflow <why>)", fn.Name())
			}
		}
	})
	dirs.ReportStale(name, pass.Reportf)
	return nil, nil
}

func checkCtxFirst(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), fd *ast.FuncDecl) {
	params := fd.Type.Params
	if params == nil {
		return
	}
	pos := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) && pos > 0 {
			report(field, "%s takes context.Context at parameter %d; the contract threads ctx first so every query path cancels uniformly", fd.Name.Name, pos+1)
			return
		}
		pos += n
	}
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
