// Package gorun is a dependency package for the gocontain tests: it
// is NOT containment-scoped itself, but its contained runners are
// exported through the Contained package fact so a scoped consumer can
// launch them with a bare go statement.
package gorun

// Runner is a contained runner: its body opens with a recover-bearing
// defer, so a panic anywhere inside cannot escape the goroutine.
func Runner() {
	defer func() {
		if rec := recover(); rec != nil {
			_ = rec
		}
	}()
	work()
}

// Bare has no containment; launching it with go leaks panics.
func Bare() { work() }

// Pool carries a contained method runner.
type Pool struct{ n int }

// Drain is contained: the recover defer is its first statement.
func (p *Pool) Drain() {
	defer func() { _ = recover() }()
	p.n = 0
}

// Fill is not contained.
func (p *Pool) Fill() { p.n++ }

func work() {}
