// Package gocon seeds positive and negative cases for the gocontain
// analyzer. The package opts into containment scope with the marker
// below; every go statement must launch a recover-bearing goroutine, a
// known contained runner, or carry a justified allow.
//
//soferr:contained
package gocon

import "gorun"

// localRunner is a same-package contained runner.
func localRunner() {
	defer func() {
		if rec := recover(); rec != nil {
			_ = rec
		}
	}()
	step()
}

// localBare is not contained.
func localBare() { step() }

func step() {}

func literalContained() {
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				_ = rec
			}
		}()
		step()
	}()
}

// literalSecondDefer mirrors the server compile goroutine: the recover
// defer is the second top-level defer, which still contains the panic.
func literalSecondDefer(done chan struct{}) {
	go func() {
		defer close(done)
		defer func() { _ = recover() }()
		step()
	}()
}

func literalBare() {
	go func() { // want `go statement launches a goroutine without a top-level recover-bearing defer`
		step()
	}()
}

// literalNestedRecover buries the recover inside a branch; the defer
// itself is not top-level, so the goroutine is still uncontained.
func literalNestedRecover(deep bool) {
	go func() { // want `go statement launches a goroutine without a top-level recover-bearing defer`
		if deep {
			defer func() { _ = recover() }()
		}
		step()
	}()
}

func namedLocalContained() {
	go localRunner()
}

func namedLocalBare() {
	go localBare() // want `go statement launches localBare, which is not a known contained runner`
}

func namedImportedContained() {
	go gorun.Runner()
}

func namedImportedBare() {
	go gorun.Bare() // want `go statement launches gorun\.Bare, which is not a known contained runner`
}

func methodImportedContained(p *gorun.Pool) {
	go p.Drain()
}

func methodImportedBare(p *gorun.Pool) {
	go p.Fill() // want `go statement launches p\.Fill, which is not a known contained runner`
}

func allowedEmitter(out chan int) {
	//soferr:allow gocontain body is a single channel send; nothing in it can panic
	go func() {
		out <- 1
	}()
}

// unjustifiedAllow shows a bare allow is flagged AND suppresses
// nothing: the goroutine underneath is still diagnosed.
func unjustifiedAllow(out chan int) {
	/* want `soferr:allow gocontain needs a justification` */ //soferr:allow gocontain
	go func() {                                               // want `go statement launches a goroutine without a top-level recover-bearing defer`
		out <- 1
	}()
}

func staleAllow() {
	/* want `soferr:allow gocontain suppresses no gocontain diagnostic` */ //soferr:allow gocontain the bare goroutine this excused is gone
	go localRunner()
}
