package gocon

// Test files are exempt: chaos tests launch goroutines that crash on
// purpose, and requiring containment there would defeat them.
func crashForTest() {
	go func() {
		panic("deliberate")
	}()
}
