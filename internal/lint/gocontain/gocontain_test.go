package gocontain_test

import (
	"testing"

	"github.com/soferr/soferr/internal/lint/gocontain"
	"github.com/soferr/soferr/internal/lint/linttest"
)

func TestGocontain(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), gocontain.Analyzer, "gorun", "gocon")
}
