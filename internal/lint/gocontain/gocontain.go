// Package gocontain implements the soferrlint analyzer enforcing the
// panic-containment contract of the serving tier (see DESIGN.md,
// "Failure model"): a panic escaping any goroutine kills the whole
// process, so in the contained packages (internal/server,
// internal/sweep, internal/montecarlo, and client — recognized by the
// //soferr:contained package marker AND by import path, so deleting
// the marker cannot silence the check) every go statement must launch
// a goroutine that cannot leak a panic:
//
//   - a function literal with a top-level recover-bearing defer (a
//     defer whose deferred function calls recover()), or
//   - a named function or method whose own body carries such a defer
//     — a contained runner. Containment is looked up in the declaring
//     package directly and, across package boundaries, through the
//     Contained package fact this analyzer exports for every package
//     it visits.
//
// Test files are exempt: chaos tests deliberately crash goroutines.
// Escape hatch: //soferr:allow gocontain <why> — for goroutine bodies
// that are structurally panic-free (a single channel select, a
// wg.Wait+close pair) where a recover would be dead code.
package gocontain

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/soferr/soferr/internal/lint/directive"
)

const name = "gocontain"

// Contained is the package fact listing the package's contained
// runners — functions and methods whose bodies begin life with a
// recover-bearing defer — so a cross-package `go pkg.Runner()` can be
// verified without re-parsing the dependency.
type Contained struct {
	// Names holds plain function names and "Type.Method" entries.
	Names []string
}

// AFact marks Contained as an analysis fact.
func (*Contained) AFact() {}

func (c *Contained) String() string {
	names := append([]string(nil), c.Names...)
	sort.Strings(names)
	return fmt.Sprintf("contained%v", names)
}

var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "require every go statement in the contained packages to launch a recover-bearing goroutine or a contained runner",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, directive.Analyzer},
	FactTypes: []analysis.Fact{(*Contained)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := pass.ResultOf[directive.Analyzer].(*directive.Index)
	for _, a := range dirs.Unjustified(name) {
		pass.Reportf(a.Pos, "soferr:allow %s needs a justification (\"//soferr:allow %s <why>\")", name, name)
	}

	// Collect this package's contained runners and export them for
	// downstream packages — every package exports, even out-of-scope
	// ones, so a contained runner library can live anywhere.
	local := containedDecls(pass)
	if len(local) > 0 {
		names := make([]string, 0, len(local))
		for n := range local {
			names = append(names, n)
		}
		sort.Strings(names)
		pass.ExportPackageFact(&Contained{Names: names})
	}

	inScope := dirs.Contained() || directive.ContainedPaths[pass.Pkg.Path()]
	if !inScope {
		dirs.ReportStale(name, pass.Reportf)
		return nil, nil
	}

	report := func(n ast.Node, format string, args ...interface{}) {
		if dirs.Allows(name, n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	inTest := false
	ins.Preorder([]ast.Node{(*ast.File)(nil), (*ast.GoStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inTest = strings.HasSuffix(pass.Fset.File(n.Pos()).Name(), "_test.go")
		case *ast.GoStmt:
			if inTest {
				return
			}
			checkGoStmt(pass, report, local, n)
		}
	})
	dirs.ReportStale(name, pass.Reportf)
	return nil, nil
}

func checkGoStmt(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), local map[string]bool, g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if hasRecoverDefer(fun.Body) {
			return
		}
		report(g, "go statement launches a goroutine without a top-level recover-bearing defer; a panic here kills the process — add `defer func() { if rec := recover(); rec != nil { ... } }()` first (or //soferr:allow gocontain <why>)")
	default:
		if fn := calleeFunc(pass, g.Call); fn != nil && isContainedRunner(pass, local, fn) {
			return
		}
		report(g, "go statement launches %s, which is not a known contained runner; give it a top-level recover-bearing defer (or //soferr:allow gocontain <why>)", types.ExprString(g.Call.Fun))
	}
}

// hasRecoverDefer reports whether the block's TOP-LEVEL statements
// include a defer whose deferred function literal calls recover().
// Only top-level defers count: a recover buried in a nested helper
// leaves the statements around it uncontained.
func hasRecoverDefer(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit)
		if !ok {
			continue
		}
		if callsRecover(lit.Body) {
			return true
		}
	}
	return false
}

// callsRecover reports whether the block contains a call to the
// recover builtin.
func callsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeFunc resolves the go statement's callee to its *types.Func,
// handling plain identifiers and selector expressions (methods and
// imported functions).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isContainedRunner reports whether the named function is a contained
// runner: declared in this package with a top-level recover-bearing
// defer, or exported as such by its declaring package's Contained fact.
func isContainedRunner(pass *analysis.Pass, local map[string]bool, fn *types.Func) bool {
	key := runnerKey(fn)
	if fn.Pkg() == pass.Pkg {
		return local[key]
	}
	if fn.Pkg() == nil {
		return false
	}
	var fact Contained
	if !pass.ImportPackageFact(fn.Pkg(), &fact) {
		return false
	}
	for _, n := range fact.Names {
		if n == key {
			return true
		}
	}
	return false
}

// containedDecls scans the package's function declarations for
// contained runners, keyed the same way runnerKey keys a *types.Func.
func containedDecls(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.File(f.Pos()).Name(), "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasRecoverDefer(fd.Body) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out[runnerKey(fn)] = true
		}
	}
	return out
}

// runnerKey names a function for the Contained fact: "F" for a
// package-level function, "T.M" for a method on T or *T.
func runnerKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
