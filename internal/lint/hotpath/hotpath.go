// Package hotpath implements the soferrlint analyzer that turns the
// AllocsPerRun regression tests into source-level checks. A function
// annotated //soferr:hotpath (the per-trial loops and inversion
// kernels) must stay free of the heap-escaping constructs the
// annotation forbids:
//
//   - fmt calls (formatting allocates and drags in interfaces);
//   - append to a slice without a visible make(..., len, cap)
//     preallocation in the same function;
//   - conversions and assignments of concrete values into interface
//     types (each boxes its operand);
//   - closures that capture an enclosing loop's variables (the
//     capture forces the variable to the heap every iteration).
//
// The runtime AllocsPerRun tests remain the ground truth; this
// analyzer catches the regressions at compile time and on paths the
// tests do not exercise. Escape hatch: //soferr:allow hotpath <why>.
package hotpath

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/soferr/soferr/internal/lint/directive"
)

const name = "hotpath"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid heap-escaping constructs in //soferr:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := pass.ResultOf[directive.Analyzer].(*directive.Index)
	for _, a := range dirs.Unjustified(name) {
		pass.Reportf(a.Pos, "soferr:allow %s needs a justification (\"//soferr:allow %s <why>\")", name, name)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !dirs.Hotpath(fd) || fd.Body == nil {
			return
		}
		check(pass, dirs, fd)
	})
	dirs.ReportStale(name, pass.Reportf)
	return nil, nil
}

func check(pass *analysis.Pass, dirs *directive.Index, fd *ast.FuncDecl) {
	report := func(n ast.Node, format string, args ...interface{}) {
		if dirs.Allows(name, n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	// Track the for/range statements enclosing each node so closures
	// can be tested against their loops' variables. The stack grows on
	// entering a loop node and shrinks when the walk passes its End.
	var loops []ast.Stmt
	pruneLoops := func(pos ast.Node) {
		for len(loops) > 0 && pos.Pos() >= loops[len(loops)-1].End() {
			loops = loops[:len(loops)-1]
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		pruneLoops(n)
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
		case *ast.FuncLit:
			if v := capturedLoopVar(pass, n, loops); v != "" {
				report(n, "hotpath closure captures loop variable %s; the capture heap-allocates it every iteration", v)
			}
			// Keep walking: the closure body is hot too.
		case *ast.CallExpr:
			checkCall(pass, report, fd, n)
		case *ast.AssignStmt:
			checkInterfaceAssign(pass, report, n)
		case *ast.ValueSpec:
			checkInterfaceValueSpec(pass, report, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), fd *ast.FuncDecl, call *ast.CallExpr) {
	// fmt calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call, "hotpath calls fmt.%s; formatting allocates — build errors and strings outside the trial loop", fn.Name())
			return
		}
	}
	// append without a visible preallocation.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if !preallocated(pass, fd, call.Args[0]) {
				report(call, "hotpath append without a visible make(_, len, cap) preallocation in this function; grow outside the hot loop or preallocate")
			}
			return
		}
	}
	// Explicit conversion to an interface type: T(x) with T interface.
	if len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			if isInterface(tv.Type) && !isInterface(pass.TypesInfo.TypeOf(call.Args[0])) {
				report(call, "hotpath converts a concrete value to interface %s; the conversion boxes its operand", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			}
		}
	}
}

// preallocated reports whether the append target is an identifier
// whose defining assignment in the same function is a three-argument
// make (explicit capacity).
func preallocated(pass *analysis.Pass, fd *ast.FuncDecl, target ast.Expr) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, lhs := range assign.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(assign.Rhs) {
				continue
			}
			lobj := pass.TypesInfo.Defs[lid]
			if lobj == nil {
				lobj = pass.TypesInfo.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			if mk, ok := assign.Rhs[i].(*ast.CallExpr); ok {
				if mid, ok := mk.Fun.(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[mid].(*types.Builtin); ok && b.Name() == "make" && len(mk.Args) == 3 {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

func checkInterfaceAssign(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		lt := pass.TypesInfo.TypeOf(assign.Lhs[i])
		rt := pass.TypesInfo.TypeOf(assign.Rhs[i])
		if isInterface(lt) && rt != nil && !isInterface(rt) && !isUntypedNil(pass, assign.Rhs[i]) {
			report(assign.Rhs[i], "hotpath assigns a concrete %s into interface %s; the assignment boxes its operand",
				types.TypeString(rt, types.RelativeTo(pass.Pkg)), types.TypeString(lt, types.RelativeTo(pass.Pkg)))
		}
	}
}

func checkInterfaceValueSpec(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), spec *ast.ValueSpec) {
	if spec.Type == nil || len(spec.Values) == 0 {
		return
	}
	lt := pass.TypesInfo.TypeOf(spec.Type)
	if !isInterface(lt) {
		return
	}
	for _, v := range spec.Values {
		rt := pass.TypesInfo.TypeOf(v)
		if rt != nil && !isInterface(rt) && !isUntypedNil(pass, v) {
			report(v, "hotpath assigns a concrete %s into interface %s; the assignment boxes its operand",
				types.TypeString(rt, types.RelativeTo(pass.Pkg)), types.TypeString(lt, types.RelativeTo(pass.Pkg)))
		}
	}
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// capturedLoopVar returns the name of an enclosing-loop variable the
// closure references, or "" when it captures none.
func capturedLoopVar(pass *analysis.Pass, lit *ast.FuncLit, loops []ast.Stmt) string {
	loopVars := make(map[types.Object]string)
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{l.Key, l.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						loopVars[obj] = id.Name
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return ""
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if name, ok := loopVars[pass.TypesInfo.Uses[id]]; ok {
				captured = name
			}
		}
		return true
	})
	return captured
}
