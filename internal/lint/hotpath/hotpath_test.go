package hotpath_test

import (
	"testing"

	"github.com/soferr/soferr/internal/lint/hotpath"
	"github.com/soferr/soferr/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), hotpath.Analyzer, "hot")
}
