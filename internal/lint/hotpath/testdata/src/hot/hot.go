// Package hot seeds positive and negative cases for the hotpath
// analyzer: only //soferr:hotpath-annotated functions are checked,
// and each forbidden construct has an annotated and an allowed form.
package hot

import "fmt"

type codeErr int

func (codeErr) Error() string { return "code" }

//soferr:hotpath
func hotFmt(x float64) string {
	return fmt.Sprintf("%v", x) // want `hotpath calls fmt.Sprintf; formatting allocates`
}

//soferr:hotpath
func hotAppendBad(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x*2) // want `hotpath append without a visible make`
	}
	return out
}

//soferr:hotpath
func hotAppendPrealloc(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

//soferr:hotpath
func hotIfaceConv(x codeErr) error {
	return error(x) // want `hotpath converts a concrete value to interface error`
}

//soferr:hotpath
func hotIfaceAssign(x float64) {
	var box interface{}
	box = x // want `hotpath assigns a concrete float64 into interface interface\{\}`
	_ = box
}

//soferr:hotpath
func hotIfaceDecl(x float64) {
	var box interface{} = x // want `hotpath assigns a concrete float64 into interface`
	_ = box
}

//soferr:hotpath
func hotClosure(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		add := func() { total += x } // want `hotpath closure captures loop variable x`
		add()
	}
	return total
}

//soferr:hotpath
func hotAllowedFmt(x float64) string {
	//soferr:allow hotpath abort path; formats once per run, not per trial
	return fmt.Sprintf("%v", x)
}

func coldUnjustified() {
	/* want `soferr:allow hotpath needs a justification` */ //soferr:allow hotpath
}

//soferr:hotpath
func hotStaleAllow(x float64) float64 {
	/* want `soferr:allow hotpath suppresses no hotpath diagnostic` */ //soferr:allow hotpath excuses nothing; the fmt call it covered is gone
	return x * 2
}

// cold is not annotated, so nothing in it is checked.
func cold(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x)
	}
	_ = fmt.Sprintf("%d", len(out))
	return out
}
