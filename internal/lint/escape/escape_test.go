package escape_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/soferr/soferr/internal/lint/escape"
)

func fixtureOutput(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "gcflags_m_output.txt"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestParseCompilerOutput(t *testing.T) {
	diags := escape.ParseCompilerOutput(fixtureOutput(t))
	want := []escape.Diag{
		{File: "kern/kern.go", Line: 12, Message: "make([]float64, len(xs)) escapes to heap"},
		{File: "kern/kern.go", Line: 24, Message: "make([]float64, n) escapes to heap"},
		{File: "kern/kern.go", Line: 33, Message: "moved to heap: x"},
		{File: "kern/kern.go", Line: 40, Message: "make([]float64, n) escapes to heap"},
	}
	if !reflect.DeepEqual(diags, want) {
		t.Errorf("ParseCompilerOutput:\n got %v\nwant %v", diags, want)
	}
}

func TestHotpathRangesAndAttribute(t *testing.T) {
	hot, err := escape.HotpathRanges(filepath.Join("testdata", "srcmod"))
	if err != nil {
		t.Fatal(err)
	}
	ranges := hot["kern/kern.go"]
	if len(ranges) != 2 {
		t.Fatalf("HotpathRanges: got %v, want HotKernel and Ring.Push", ranges)
	}
	if ranges[0].Name != "HotKernel" || ranges[1].Name != "Ring.Push" {
		t.Errorf("HotpathRanges names: got %v", ranges)
	}
	// The cold functions sit between and after the hotpath ranges.
	if ranges[0].Start > 12 || ranges[0].End < 20 || ranges[1].Start > 33 || ranges[1].End < 34 {
		t.Errorf("HotpathRanges lines: got %v", ranges)
	}

	entries := escape.Attribute(escape.ParseCompilerOutput(fixtureOutput(t)), hot)
	want := []string{
		"kern/kern.go:HotKernel: make([]float64, len(xs)) escapes to heap",
		"kern/kern.go:Ring.Push: moved to heap: x",
	}
	if !reflect.DeepEqual(entries, want) {
		t.Errorf("Attribute:\n got %v\nwant %v", entries, want)
	}
}

func TestBaselineRoundTripAndDiff(t *testing.T) {
	const text = `# header comment explaining the file
# another header line

a.go:F: x escapes to heap  # reused scratch buffer, one per stream
b.go:T.M: moved to heap: y
c.go:G: make([]int, n) escapes to heap
`
	b, err := escape.ReadBaseline(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := []string{
		"a.go:F: x escapes to heap",
		"b.go:T.M: moved to heap: y",
		"c.go:G: make([]int, n) escapes to heap",
	}
	if !reflect.DeepEqual(b.Entries, wantEntries) {
		t.Errorf("ReadBaseline entries:\n got %v\nwant %v", b.Entries, wantEntries)
	}
	if got := b.Comments["a.go:F: x escapes to heap"]; got != "reused scratch buffer, one per stream" {
		t.Errorf("ReadBaseline comment: got %q", got)
	}

	// c.go:G is fixed (stale), d.go:H is new drift.
	current := []string{
		"a.go:F: x escapes to heap",
		"b.go:T.M: moved to heap: y",
		"d.go:H: func literal escapes to heap",
	}
	added, removed := escape.Diff(current, b)
	if !reflect.DeepEqual(added, []string{"d.go:H: func literal escapes to heap"}) {
		t.Errorf("Diff added: got %v", added)
	}
	if !reflect.DeepEqual(removed, []string{"c.go:G: make([]int, n) escapes to heap"}) {
		t.Errorf("Diff removed: got %v", removed)
	}

	// An update preserves the surviving entry's comment and drops the
	// stale entry.
	var buf bytes.Buffer
	if err := escape.WriteBaseline(&buf, current, b.Comments); err != nil {
		t.Fatal(err)
	}
	reread, err := escape.ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reread.Entries, current) {
		t.Errorf("WriteBaseline round trip:\n got %v\nwant %v", reread.Entries, current)
	}
	if got := reread.Comments["a.go:F: x escapes to heap"]; got != "reused scratch buffer, one per stream" {
		t.Errorf("WriteBaseline dropped the comment: got %q", got)
	}
	if !strings.HasPrefix(buf.String(), "# soferrlint escape baseline") {
		t.Errorf("WriteBaseline header missing:\n%s", buf.String())
	}
}

func TestDiffCleanBaseline(t *testing.T) {
	b := &escape.Baseline{Entries: []string{"a.go:F: x escapes to heap"}}
	added, removed := escape.Diff([]string{"a.go:F: x escapes to heap"}, b)
	if len(added) != 0 || len(removed) != 0 {
		t.Errorf("Diff on identical sets: added %v removed %v", added, removed)
	}
}
