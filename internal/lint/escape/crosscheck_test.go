package escape_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"github.com/soferr/soferr/internal/lint/escape"
	"github.com/soferr/soferr/internal/montecarlo"
	"github.com/soferr/soferr/internal/trace"
)

// TestBaselineAgreesWithAllocsPerRun cross-checks the committed escape
// baseline against the runtime measurement on a representative trial
// kernel: the baseline must attribute zero heap escapes to the
// montecarlo trial functions, and AllocsPerRun on a compiled system
// must agree — O(1) setup allocations for a multi-block run, far
// below one per trial. If either half drifts, the static and dynamic
// views of the zero-alloc contract have diverged.
func TestBaselineAgreesWithAllocsPerRun(t *testing.T) {
	// Static half: the committed baseline may list escapes in the trial
	// kernels only for code off the steady state (error/panic paths),
	// and every such entry must say why — an undocumented suppression
	// is indistinguishable from an accepted regression.
	b, err := escape.ReadBaselineFile(filepath.Join("testdata", "escape_baseline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) == 0 {
		t.Fatal("escape baseline is missing or empty; run make lint-fix-baseline")
	}
	for _, e := range b.Entries {
		if b.Comments[e] == "" {
			t.Errorf("baseline entry has no justification comment: %s", e)
		}
		// A make/composite-literal escape in a trial kernel would be a
		// per-trial heap allocation, which no comment can excuse.
		if strings.HasPrefix(e, "internal/montecarlo/") && strings.Contains(e, "make(") {
			t.Errorf("baseline accepts a per-call backing-store allocation in a trial kernel: %s", e)
		}
	}

	// Dynamic half: the same kernels measured by the runtime.
	busy, err := trace.BusyIdle(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := trace.NewPiecewise([]trace.Segment{
		{Start: 0, End: 4, Vuln: 0.3}, {Start: 4, End: 12, Vuln: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := montecarlo.Compile([]montecarlo.Component{
		{Name: "a", Rate: 0.05, Trace: busy},
		{Name: "b", Rate: 0.08, Trace: frac},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const trials = 8192
	cfg := montecarlo.Config{Trials: trials, Seed: 1, Workers: 1, Engine: montecarlo.Fused}
	// Warm lazily built state outside the measured runs.
	warm := cfg
	warm.Trials = 16
	if _, err := c.MTTF(ctx, warm); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := c.MTTF(ctx, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// One escape per trial would be >= trials; O(1) setup (accumulator
	// slice, worker goroutine, closures) stays far below 64.
	if allocs > 64 {
		t.Errorf("trial kernel allocates: %v allocations per %d-trial run, but the escape baseline records none for internal/montecarlo", allocs, trials)
	}
}
