// Package escape implements the compiler-verified half of the
// per-trial zero-alloc contract: the `soferrlint escape` driver mode.
//
// The allocfree and hotpath analyzers pattern-match allocation-forcing
// constructs, but the gc compiler's escape analysis is the ground
// truth for what actually reaches the heap. This package runs
//
//	go build -gcflags='-m -m' ./...
//
// over the module, extracts every "escapes to heap" / "moved to heap"
// diagnostic, attributes each one to the enclosing function, keeps
// only those inside //soferr:hotpath functions, and diffs the result
// against the committed baseline (testdata/escape_baseline.txt beside
// this package). A hotpath escape absent from the baseline fails the
// run — a refactor cannot silently add a heap allocation to a trial
// kernel. A baseline entry the compiler no longer produces also fails:
// the inventory must not rot (same philosophy as stale
// //soferr:allow detection). `soferrlint escape -update` regenerates
// the baseline deliberately, preserving trailing per-entry comments
// for entries that survive.
//
// Baseline entries are line-number-free —
//
//	internal/xrand/xrand.go:Rand.Exp: new(big.Float) escapes to heap  # why it is intentional
//
// — so unrelated edits above a function do not churn the file.
package escape

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BaselinePath is the committed baseline, relative to the module root.
const BaselinePath = "internal/lint/escape/testdata/escape_baseline.txt"

// Diag is one escape diagnostic from the compiler, positions relative
// to the module root.
type Diag struct {
	File    string // slash-separated, module-root-relative
	Line    int
	Message string // "x escapes to heap", trailing flow colon stripped
}

// diagRE matches a compiler diagnostic line: path.go:line:col: message.
var diagRE = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.+)$`)

// ParseCompilerOutput extracts escape diagnostics from `go build
// -gcflags='-m -m'` output. Package headers ("# import/path"),
// indented escape-flow detail lines, and non-escape notes (inlining
// decisions, "leaking param" annotations) are skipped. With -m -m the
// compiler prints each escape twice — once introducing the flow trace
// (trailing colon) and once plain — so results are deduplicated.
func ParseCompilerOutput(r io.Reader) []Diag {
	seen := make(map[Diag]bool)
	var out []Diag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t") {
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(m[4], ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		d := Diag{
			File:    strings.TrimPrefix(filepath.ToSlash(m[1]), "./"),
			Line:    n,
			Message: msg,
		}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// FuncRange is a //soferr:hotpath function's position in a file.
type FuncRange struct {
	Name       string // "F" or "T.M"
	Start, End int    // line range, inclusive
}

// HotpathRanges parses every non-test Go file under modRoot (skipping
// vendor and testdata trees) and returns, per module-root-relative
// file path, the line ranges of functions carrying the
// //soferr:hotpath doc marker.
func HotpathRanges(modRoot string) (map[string][]FuncRange, error) {
	out := make(map[string][]FuncRange)
	fset := token.NewFileSet()
	err := filepath.WalkDir(modRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("escape: parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(modRoot, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotpath(fd) {
				continue
			}
			out[rel] = append(out[rel], FuncRange{
				Name:  funcName(fd),
				Start: fset.Position(fd.Pos()).Line,
				End:   fset.Position(fd.End()).Line,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// isHotpath reports whether the declaration's doc comment carries the
// //soferr:hotpath marker, using the same grammar as the directive
// analyzer (an optional trailing note after the marker is fine).
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text, ok := strings.CutPrefix(c.Text, "//soferr:")
		if !ok {
			continue
		}
		if text == "hotpath" || strings.HasPrefix(text, "hotpath ") {
			return true
		}
	}
	return false
}

// funcName names a declaration the way baseline entries spell it:
// "F" for a function, "T.M" for a method on T or *T.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Unwrap generic receivers (T[P]) down to the type name.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// Attribute keeps the diagnostics that land inside hotpath functions
// and renders them as sorted, deduplicated baseline entries:
// "file.go:Func: message".
func Attribute(diags []Diag, hot map[string][]FuncRange) []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range diags {
		for _, r := range hot[d.File] {
			if d.Line < r.Start || d.Line > r.End {
				continue
			}
			e := fmt.Sprintf("%s:%s: %s", d.File, r.Name, d.Message)
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
			break
		}
	}
	sort.Strings(out)
	return out
}

// Baseline is the committed inventory of intentional hotpath escapes.
type Baseline struct {
	Entries []string
	// Comments maps an entry to its trailing "# why" annotation, kept
	// verbatim across -update runs while the entry survives.
	Comments map[string]string
}

// ReadBaseline parses the baseline format: one entry per line, blank
// lines and full-line # comments skipped, an optional trailing
// comment per entry introduced by "  # ".
func ReadBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{Comments: make(map[string]string)}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		entry := line
		if i := strings.Index(line, "  # "); i >= 0 {
			entry = strings.TrimRight(line[:i], " \t")
			b.Comments[entry] = strings.TrimSpace(line[i+len("  # "):])
		}
		b.Entries = append(b.Entries, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(b.Entries)
	return b, nil
}

// ReadBaselineFile is ReadBaseline over a path; a missing file is an
// empty baseline, so the first -update run bootstraps it.
func ReadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &Baseline{Comments: make(map[string]string)}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaseline(f)
}

// WriteBaseline renders sorted entries with the standard header,
// carrying over the given per-entry comments.
func WriteBaseline(w io.Writer, entries []string, comments map[string]string) error {
	sorted := append([]string(nil), entries...)
	sort.Strings(sorted)
	var buf bytes.Buffer
	buf.WriteString(`# soferrlint escape baseline — intentional heap escapes in //soferr:hotpath functions.
#
# Format: file.go:Func: compiler message   (optionally "  # why it is intentional")
# Regenerate deliberately with: make lint-fix-baseline
# A hotpath escape not listed here fails make lint; so does a stale entry.
`)
	for _, e := range sorted {
		buf.WriteString(e)
		if c := comments[e]; c != "" {
			buf.WriteString("  # " + c)
		}
		buf.WriteByte('\n')
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Diff splits the current entries against the baseline: added entries
// are new hotpath escapes, removed entries are stale baseline lines.
func Diff(current []string, baseline *Baseline) (added, removed []string) {
	cur := make(map[string]bool, len(current))
	for _, e := range current {
		cur[e] = true
	}
	base := make(map[string]bool, len(baseline.Entries))
	for _, e := range baseline.Entries {
		base[e] = true
		if !cur[e] {
			removed = append(removed, e)
		}
	}
	for _, e := range current {
		if !base[e] {
			added = append(added, e)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// Current runs the compiler over the module and returns the hotpath
// escape entries it reports now.
func Current(modRoot string) ([]string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "./...")
	cmd.Dir = modRoot
	var stderr bytes.Buffer
	cmd.Stdout = io.Discard
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escape: go build -gcflags='-m -m' failed: %v\n%s", err, stderr.String())
	}
	hot, err := HotpathRanges(modRoot)
	if err != nil {
		return nil, err
	}
	return Attribute(ParseCompilerOutput(&stderr), hot), nil
}

// Main is the `soferrlint escape` entry point. With update set it
// rewrites the baseline (preserving comments for surviving entries)
// and returns 0; otherwise it diffs and returns 1 on any drift.
func Main(modRoot string, update bool, stdout, stderr io.Writer) int {
	current, err := Current(modRoot)
	if err != nil {
		fmt.Fprintf(stderr, "soferrlint escape: %v\n", err)
		return 2
	}
	path := filepath.Join(modRoot, filepath.FromSlash(BaselinePath))
	baseline, err := ReadBaselineFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "soferrlint escape: read baseline: %v\n", err)
		return 2
	}
	if update {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(stderr, "soferrlint escape: %v\n", err)
			return 2
		}
		werr := WriteBaseline(f, current, baseline.Comments)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "soferrlint escape: write baseline: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stdout, "soferrlint escape: baseline updated: %d hotpath escape(s) recorded in %s\n", len(current), BaselinePath)
		return 0
	}
	added, removed := Diff(current, baseline)
	for _, e := range added {
		fmt.Fprintf(stderr, "soferrlint escape: new hotpath heap escape not in baseline:\n  %s\n", e)
	}
	for _, e := range removed {
		fmt.Fprintf(stderr, "soferrlint escape: stale baseline entry (the compiler no longer reports it):\n  %s\n", e)
	}
	if len(added) > 0 || len(removed) > 0 {
		fmt.Fprintf(stderr, "soferrlint escape: %d new, %d stale — fix the escape or run `make lint-fix-baseline` and justify the change in review\n", len(added), len(removed))
		return 1
	}
	fmt.Fprintf(stdout, "soferrlint escape: ok — %d baselined hotpath escape(s), no drift\n", len(current))
	return 0
}
