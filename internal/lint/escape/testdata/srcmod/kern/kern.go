// Package kern is a fixture for the escape driver tests: a hotpath
// kernel with an intentional escape, cold functions whose escapes must
// not be attributed, and a hotpath method. Line numbers matter — the
// captured compiler output in ../../gcflags_m_output.txt refers to
// this file.
package kern

// HotKernel is the representative trial kernel.
//
//soferr:hotpath
func HotKernel(xs []float64) float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * x
	}
	s := 0.0
	for _, v := range out {
		s += v
	}
	return s
}

func coldSetup(n int) []float64 {
	return make([]float64, n)
}

// Ring is a reusable buffer.
type Ring struct{ buf []float64 }

// Push appends into the ring.
//
//soferr:hotpath
func (r *Ring) Push(x float64) {
	r.buf = append(r.buf, x)
}

var sink []float64

func coldLeak() {
	sink = coldSetup(8)
}
