// Package nondeterminism implements the soferrlint analyzer enforcing
// the deterministic-core contract: the packages whose results must be
// bit-identical for a given seed across runs, machines, and worker
// counts (trace, montecarlo, sweep, xrand, numeric, and the root
// soferr query paths) may not read wall clocks, use the global
// math/rand streams, or let map iteration order feed returned or
// ordered data.
//
// Scope: a package is in scope when it carries the
// //soferr:deterministic marker above its package clause or when its
// import path is one of the known core packages (so deleting the
// marker does not silence the check). Test files are exempt — they
// may time things and shuffle inputs freely.
//
// Escape hatch: //soferr:allow nondeterminism <why>.
package nondeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/soferr/soferr/internal/lint/directive"
)

const name = "nondeterminism"

// KnownChecks lists every analyzer name an //soferr:allow directive
// may legitimately reference. This analyzer reports unknown names so a
// typo cannot silently suppress nothing.
var KnownChecks = map[string]bool{
	"nondeterminism": true,
	"hotpath":        true,
	"errcontract":    true,
	"ctxflow":        true,
	"faultpoint":     true,
	"floatprec":      true,
	"allocfree":      true,
	"gocontain":      true,
}

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid wall clocks, global math/rand, and order-feeding map iteration in the deterministic core",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Analyzer},
	Run:      run,
}

// wallClockFuncs are the time-package functions whose results depend
// on when the process runs.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := pass.ResultOf[directive.Analyzer].(*directive.Index)

	// Directive grammar errors owned by this analyzer: its own
	// justification-less allows, plus allows naming no known check.
	for _, a := range dirs.Unjustified(name) {
		pass.Reportf(a.Pos, "soferr:allow %s needs a justification (\"//soferr:allow %s <why>\")", name, name)
	}
	for _, a := range dirs.UnknownChecks(KnownChecks) {
		pass.Reportf(a.Pos, "soferr:allow names unknown check %q (want one of nondeterminism, hotpath, errcontract, ctxflow, faultpoint, floatprec, allocfree, gocontain)", a.Check)
	}

	if !dirs.Deterministic() && !directive.CorePaths[pass.Pkg.Path()] {
		dirs.ReportStale(name, pass.Reportf)
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	report := func(pos ast.Node, format string, args ...interface{}) {
		if dirs.Allows(name, pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}

	nodeFilter := []ast.Node{
		(*ast.File)(nil),
		(*ast.ImportSpec)(nil),
		(*ast.SelectorExpr)(nil),
		(*ast.RangeStmt)(nil),
	}
	inTest := false
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inTest = isTestFile(pass, n)
		case *ast.ImportSpec:
			if inTest {
				return
			}
			path := strings.Trim(n.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				report(n, "deterministic core imports %s; draw from internal/xrand with an explicit seed instead", path)
			}
		case *ast.SelectorExpr:
			if inTest {
				return
			}
			fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return
			}
			if fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
				report(n, "deterministic core reads the wall clock (time.%s); results must depend only on inputs and the seed", fn.Name())
			}
		case *ast.RangeStmt:
			if inTest {
				return
			}
			checkMapRange(pass, report, n)
		}
	})
	dirs.ReportStale(name, pass.Reportf)
	return nil, nil
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.File(f.Pos()).Name(), "_test.go")
}

// checkMapRange flags range-over-map loops whose bodies feed ordered
// or returned data: a return statement, a channel send, or an append
// whose result is not visibly sorted afterwards in the same block.
// Order-insensitive folds (sums, max, set membership) pass untouched.
func checkMapRange(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var appended []*ast.Ident
	bad := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				report(rng, "map iteration order feeds a return value; collect and sort first (or //soferr:allow nondeterminism <why>)")
				bad = true
				return false
			}
		case *ast.SendStmt:
			report(rng, "map iteration order feeds a channel; collect and sort first (or //soferr:allow nondeterminism <why>)")
			bad = true
			return false
		case *ast.CallExpr:
			if b, ok := pass.TypesInfo.Uses[funIdent(n)].(*types.Builtin); ok && b.Name() == "append" {
				if target, ok := n.Args[0].(*ast.Ident); ok {
					appended = append(appended, target)
				} else {
					report(rng, "map iteration order feeds appended data; collect and sort first (or //soferr:allow nondeterminism <why>)")
					bad = true
					return false
				}
			}
		}
		return !bad
	})
	if bad {
		return
	}
	for _, target := range appended {
		if !sortedAfter(pass, rng, target) {
			report(rng, "map iteration order feeds %s without a following sort; sort it before use (or //soferr:allow nondeterminism <why>)", target.Name)
			return
		}
	}
}

// sortedAfter reports whether, somewhere after the range loop within
// the loop's syntactic neighborhood, the appended-to variable is
// passed to a sort (sort.* or slices.Sort*). It is a syntactic
// best-effort check for the canonical collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, target *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		obj = pass.TypesInfo.Defs[target]
	}
	if obj == nil {
		return false
	}
	for _, f := range pass.Files {
		if f.Pos() <= rng.Pos() && rng.End() <= f.End() {
			found := false
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Pos() < rng.End() || found {
					return !found
				}
				if !isSortCall(pass, call) {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(an ast.Node) bool {
						if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
							found = true
						}
						return !found
					})
				}
				return !found
			})
			return found
		}
	}
	return false
}

// funIdent returns the call's function identifier, or a fresh blank
// ident (which resolves to no object) when the callee is not a plain
// identifier.
func funIdent(call *ast.CallExpr) *ast.Ident {
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{Name: "_"}
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
