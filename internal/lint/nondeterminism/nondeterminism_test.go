package nondeterminism_test

import (
	"testing"

	"github.com/soferr/soferr/internal/lint/linttest"
	"github.com/soferr/soferr/internal/lint/nondeterminism"
)

func TestNondeterminism(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), nondeterminism.Analyzer, "nondet", "unmarked")
}
