// Package nondet seeds positive and negative cases for the
// nondeterminism analyzer: the package is marked deterministic, so
// wall clocks, global math/rand, and order-feeding map iteration are
// diagnostics, while order-insensitive folds and sorted collections
// pass.
//
//soferr:deterministic
package nondet

import (
	"math/rand" // want `deterministic core imports math/rand`
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `deterministic core reads the wall clock \(time.Now\)`
	return t.Unix()
}

func wallClockSince(start time.Time) time.Duration {
	return time.Since(start) // want `deterministic core reads the wall clock \(time.Since\)`
}

func allowedWallClock() int64 {
	//soferr:allow nondeterminism latency metric is observability, not part of the estimate
	t := time.Now()
	return t.Unix()
}

func unjustifiedAllow() int64 {
	/* want `soferr:allow nondeterminism needs a justification` */ //soferr:allow nondeterminism
	t := time.Now()                                                // want `deterministic core reads the wall clock`
	return t.Unix()
}

func globalRand() float64 {
	return rand.Float64()
}

func mapOrderReturned(m map[string]int) []string {
	for k := range m { // want `map iteration order feeds a return value`
		if k == "stop" {
			return []string{k}
		}
	}
	return nil
}

func mapOrderAppended(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order feeds keys without a following sort`
		keys = append(keys, k)
	}
	return keys
}

func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapOrderSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mapOrderChannel(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration order feeds a channel`
		ch <- k
	}
}

//soferr:allow nondeterminism the caller shuffles deliberately; order does not reach results
func mapOrderAllowedWholeFunc(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func typoedAllow() {
	//soferr:allow nondetreminism oops // want `soferr:allow names unknown check "nondetreminism"`
}
