// Package unmarked carries no //soferr:deterministic marker and is
// not a known core import path, so the nondeterminism contract does
// not apply: wall clocks and unordered map iteration pass untouched.
package unmarked

import "time"

func Timestamp() int64 {
	return time.Now().Unix()
}

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
