// Package faultinject is a minimal stub of the real registry: the
// faultpoint analyzer matches Fire call sites by the callee's package
// name, so testdata packages import this local copy.
package faultinject

// Fire reports whether an armed fault fires at the named point.
func Fire(point string) error { return nil }
