// Package fpb imports fpa and reuses one of its point names, so the
// cross-package collision flows through the Points package fact.
package fpb

import (
	"faultinject"

	_ "fpa"
)

const fiClashPoint = "fpa.good" // want `fault point "fpa.good" collides with fpa.fiGoodPoint`

func Work() error {
	return faultinject.Fire(fiClashPoint)
}
