// Package fpa seeds the in-package faultpoint cases: declared and
// fired points pass; dead points, duplicate values, literals,
// non-constant names, and off-convention constants are diagnostics.
package fpa

import "faultinject"

const (
	fiGoodPoint = "fpa.good"
	fiDeadPoint = "fpa.dead" // want `fault point fiDeadPoint \("fpa.dead"\) has no faultinject.Fire site`
	fiDupAPoint = "fpa.dup"
	fiDupBPoint = "fpa.dup" // want `fault point "fpa.dup" declared twice in this package \(fiDupAPoint and fiDupBPoint\)`
	notAPoint   = "fpa.loose"
)

func Work() error {
	if err := faultinject.Fire(fiGoodPoint); err != nil {
		return err
	}
	if err := faultinject.Fire("fpa.literal"); err != nil { // want `faultinject.Fire with a non-constant point name`
		return err
	}
	p := pointName()
	if err := faultinject.Fire(p); err != nil { // want `faultinject.Fire with a non-constant point name`
		return err
	}
	if err := faultinject.Fire(notAPoint); err != nil { // want `Fire point constant notAPoint does not follow the fi...Point naming convention`
		return err
	}
	if err := faultinject.Fire(fiDupAPoint); err != nil {
		return err
	}
	return faultinject.Fire(fiDupBPoint)
}

func pointName() string { return "fpa.dynamic" }
