package faultpoint_test

import (
	"testing"

	"github.com/soferr/soferr/internal/lint/faultpoint"
	"github.com/soferr/soferr/internal/lint/linttest"
)

func TestFaultpoint(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), faultpoint.Analyzer, "faultinject", "fpa", "fpb")
}
