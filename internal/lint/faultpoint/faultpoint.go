// Package faultpoint implements the soferrlint analyzer enforcing the
// fault-injection registry contract (internal/faultinject): chaos
// schedules script faults by point NAME, so a renamed, duplicated, or
// orphaned point silently turns a chaos test into a no-op. The
// analyzer checks that
//
//   - every faultinject.Fire call site passes a declared point
//     constant (named fi...Point), never a string literal or a
//     computed value;
//   - point names are unique — within the package and, through
//     package facts, across every package in the import graph;
//   - every declared point constant is armed by at least one Fire
//     site in its declaring package (dead-point detection), so a
//     schedule written against it can actually fire.
//
// Escape hatch: //soferr:allow faultpoint <why>.
package faultpoint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/soferr/soferr/internal/lint/directive"
)

const name = "faultpoint"

// Points is the package fact carrying a package's declared injection
// points, so downstream packages can detect cross-package name
// collisions.
type Points struct {
	// Names maps point name -> qualified constant ("pkg.fiFooPoint").
	Names map[string]string
}

// AFact marks Points as an analysis fact.
func (*Points) AFact() {}

func (p *Points) String() string {
	keys := make([]string, 0, len(p.Names))
	for k := range p.Names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("points%v", keys)
}

var Analyzer = &analysis.Analyzer{
	Name:      name,
	Doc:       "require declared, unique, and live faultinject point constants at every Fire site",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, directive.Analyzer},
	FactTypes: []analysis.Fact{(*Points)(nil)},
	Run:       run,
}

var pointNameRE = regexp.MustCompile(`^fi\w*Point$`)

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := pass.ResultOf[directive.Analyzer].(*directive.Index)
	for _, a := range dirs.Unjustified(name) {
		pass.Reportf(a.Pos, "soferr:allow %s needs a justification (\"//soferr:allow %s <why>\")", name, name)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	report := func(n ast.Node, format string, args ...interface{}) {
		if dirs.Allows(name, n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	// Pass 1: declared point constants (name convention fi...Point).
	type declared struct {
		ident *ast.Ident
		value string
	}
	var decls []declared
	byValue := make(map[string]*ast.Ident)
	ins.Preorder([]ast.Node{(*ast.ValueSpec)(nil)}, func(n ast.Node) {
		spec := n.(*ast.ValueSpec)
		for _, id := range spec.Names {
			if !pointNameRE.MatchString(id.Name) {
				continue
			}
			c, ok := pass.TypesInfo.Defs[id].(*types.Const)
			if !ok || c.Val().Kind() != constant.String {
				continue
			}
			v := constant.StringVal(c.Val())
			if prev, dup := byValue[v]; dup {
				report(id, "fault point %q declared twice in this package (%s and %s); chaos schedules address points by name, so duplicates arm both", v, prev.Name, id.Name)
			} else {
				byValue[v] = id
			}
			decls = append(decls, declared{id, v})
		}
	})

	// Pass 2: Fire call sites.
	fired := make(map[types.Object]bool)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isFireCall(pass, call) || len(call.Args) != 1 {
			return
		}
		arg := ast.Unparen(call.Args[0])
		id, ok := arg.(*ast.Ident)
		if !ok {
			if sel, isSel := arg.(*ast.SelectorExpr); isSel {
				id, ok = sel.Sel, true
			}
		}
		if ok {
			if c, isConst := pass.TypesInfo.Uses[id].(*types.Const); isConst {
				fired[c] = true
				if !pointNameRE.MatchString(id.Name) {
					report(arg, "Fire point constant %s does not follow the fi...Point naming convention; dead-point detection cannot track it", id.Name)
				}
				return
			}
		}
		report(arg, "faultinject.Fire with a non-constant point name; declare an fi...Point constant so chaos schedules and dead-point detection can see it")
	})

	// Dead points: declared but never armed by a Fire site here.
	for _, d := range decls {
		if !fired[pass.TypesInfo.Defs[d.ident]] {
			report(d.ident, "fault point %s (%q) has no faultinject.Fire site in its declaring package; a chaos schedule against it can never fire", d.ident.Name, d.value)
		}
	}

	// Cross-package uniqueness through facts.
	if len(decls) > 0 {
		names := make(map[string]string, len(decls))
		for _, d := range decls {
			names[d.value] = pass.Pkg.Path() + "." + d.ident.Name
		}
		for _, imp := range transitiveImports(pass.Pkg) {
			var fact Points
			if !pass.ImportPackageFact(imp, &fact) {
				continue
			}
			for _, d := range decls {
				if prev, dup := fact.Names[d.value]; dup {
					report(d.ident, "fault point %q collides with %s; point names are global to the chaos registry", d.value, prev)
				}
			}
		}
		pass.ExportPackageFact(&Points{Names: names})
	}

	dirs.ReportStale(name, pass.Reportf)
	return nil, nil
}

func isFireCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Fire" || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Name() == "faultinject"
}

func transitiveImports(pkg *types.Package) []*types.Package {
	seen := make(map[*types.Package]bool)
	var out []*types.Package
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		out = append(out, p)
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	for _, imp := range pkg.Imports() {
		visit(imp)
	}
	return out
}
