// Package linttest is the analysistest-style harness for the
// soferrlint analyzers. The x/tools analysistest package is not
// vendored with the toolchain's go/analysis subset, so this package
// reimplements the part the suite needs: load a package rooted at
// testdata/src/<pkg>, type-check it against the standard library (and
// against sibling testdata packages, so fact flow across imports is
// exercised), run the analyzer with its Requires dependencies, and
// diff the diagnostics against `// want "regexp"` comments.
//
// Expectation syntax, per line (trailing or preceding comments both
// attach to their own line):
//
//	x := foo() // want "naked errors" "second diagnostic on this line"
//
// Each quoted string is a regexp that must match one diagnostic
// reported on that line; every diagnostic must be matched by exactly
// one expectation and vice versa.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the caller's testdata directory, mirroring
// analysistest.TestData.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each named package from testdata/src/<pkg>, applies the
// analyzer (and its Requires closure, with package facts flowing
// across testdata-local imports), and checks diagnostics against the
// // want comments in the named packages' sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	h := &harness{
		t:        t,
		srcdir:   filepath.Join(testdata, "src"),
		fset:     token.NewFileSet(),
		loaded:   make(map[string]*loadedPkg),
		analyzed: make(map[analyzedKey][]analysis.Diagnostic),
		results:  make(map[analyzedKey]interface{}),
		pkgFacts: make(map[*types.Package][]analysis.Fact),
	}
	h.stdImporter = importer.ForCompiler(h.fset, "source", nil)
	for _, pkg := range pkgs {
		lp := h.load(pkg)
		diags := h.analyze(a, lp)
		h.check(lp, diags)
	}
}

type loadedPkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	// deps are the testdata-local imports, in import order.
	deps []*loadedPkg
}

type analyzedKey struct {
	a   *analysis.Analyzer
	pkg *types.Package
}

type harness struct {
	t           *testing.T
	srcdir      string
	fset        *token.FileSet
	stdImporter types.Importer
	loaded      map[string]*loadedPkg
	analyzed    map[analyzedKey][]analysis.Diagnostic
	results     map[analyzedKey]interface{}
	pkgFacts    map[*types.Package][]analysis.Fact
}

// Import implements types.Importer over testdata-local packages first,
// falling back to the source importer for the standard library.
func (h *harness) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(h.srcdir, path)); err == nil && st.IsDir() {
		return h.load(path).pkg, nil
	}
	return h.stdImporter.Import(path)
}

func (h *harness) load(path string) *loadedPkg {
	h.t.Helper()
	if lp, ok := h.loaded[path]; ok {
		if lp == nil {
			h.t.Fatalf("linttest: import cycle through %s", path)
		}
		return lp
	}
	h.loaded[path] = nil // cycle guard
	dir := filepath.Join(h.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		h.t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(h.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			h.t.Fatalf("linttest: parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		h.t.Fatalf("linttest: no Go files under %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: h}
	pkg, err := conf.Check(path, h.fset, files, info)
	if err != nil {
		h.t.Fatalf("linttest: type-check %s: %v", path, err)
	}
	lp := &loadedPkg{path: path, files: files, pkg: pkg, info: info}
	for _, imp := range pkg.Imports() {
		if dep, ok := h.loaded[imp.Path()]; ok && dep != nil {
			lp.deps = append(lp.deps, dep)
		}
	}
	h.loaded[path] = lp
	return lp
}

// analyze runs the analyzer (and its Requires closure) over the
// package, memoized, after analyzing testdata-local dependencies so
// package facts flow along imports like a real driver.
func (h *harness) analyze(a *analysis.Analyzer, lp *loadedPkg) []analysis.Diagnostic {
	h.t.Helper()
	key := analyzedKey{a, lp.pkg}
	if diags, ok := h.analyzed[key]; ok {
		return diags
	}
	h.analyzed[key] = nil // cycle guard; analyzers must not be cyclic
	for _, dep := range lp.deps {
		h.analyze(a, dep)
	}
	resultOf := make(map[*analysis.Analyzer]interface{})
	for _, req := range a.Requires {
		h.analyze(req, lp)
		resultOf[req] = h.results[analyzedKey{req, lp.pkg}]
	}

	var diags []analysis.Diagnostic
	factTypes := make(map[reflect.Type]bool)
	for _, f := range a.FactTypes {
		factTypes[reflect.TypeOf(f)] = true
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       h.fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   resultOf,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
		ImportPackageFact: func(pkg *types.Package, fact Fact) bool {
			for _, f := range h.pkgFacts[pkg] {
				if reflect.TypeOf(f) == reflect.TypeOf(fact) {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
					return true
				}
			}
			return false
		},
		ExportPackageFact: func(fact Fact) {
			if !factTypes[reflect.TypeOf(fact)] {
				h.t.Fatalf("linttest: %s exported unregistered fact type %T", a.Name, fact)
			}
			h.pkgFacts[lp.pkg] = append(h.pkgFacts[lp.pkg], fact)
		},
		ImportObjectFact: func(obj types.Object, fact Fact) bool { return false },
		ExportObjectFact: func(obj types.Object, fact Fact) {
			h.t.Fatalf("linttest: object facts are not supported by this harness (%s)", a.Name)
		},
		AllPackageFacts: func() []analysis.PackageFact { return nil },
		AllObjectFacts:  func() []analysis.ObjectFact { return nil },
	}
	result, err := a.Run(pass)
	if err != nil {
		h.t.Fatalf("linttest: analyzer %s on %s: %v", a.Name, lp.path, err)
	}
	if a.ResultType != nil && result != nil && reflect.TypeOf(result) != a.ResultType {
		h.t.Fatalf("linttest: analyzer %s returned %T, want %v", a.Name, result, a.ResultType)
	}
	h.results[key] = result
	h.analyzed[key] = diags
	return diags
}

// Fact aliases analysis.Fact for the closures above.
type Fact = analysis.Fact

// wantRE matches an expectation introduced at a comment start ("//
// want" or "/* want ... */") or embedded after an inner "//" — the
// latter lets a test attach a want to a line whose only comment is a
// directive under test.
var wantRE = regexp.MustCompile(`(?:^|//|/\*)\s*want\s+(.*?)\s*(?:\*/)?$`)

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	hit  bool
}

// check diffs diagnostics against the package's want comments.
func (h *harness) check(lp *loadedPkg, diags []analysis.Diagnostic) {
	h.t.Helper()
	var wants []*expectation
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := h.fset.Position(c.Pos())
				for _, raw := range splitQuoted(h.t, pos, m[1]) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						h.t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := h.fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			h.t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			h.t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the sequence of Go-quoted or backquoted strings
// after "want".
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			t.Fatalf("%s: malformed want expectation at %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want string %q", pos, s)
		}
		raw := s[:end+2]
		unq, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", pos, raw, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no expectations", pos)
	}
	return out
}
