package allocfree_test

import (
	"testing"

	"github.com/soferr/soferr/internal/lint/allocfree"
	"github.com/soferr/soferr/internal/lint/linttest"
)

func TestAllocfree(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), allocfree.Analyzer, "alloc")
}
