// Package alloc seeds positive and negative cases for the allocfree
// analyzer: only //soferr:hotpath functions are checked, and each
// allocation-forcing construct has a flagged and an allowed form.
package alloc

type point struct{ x, y float64 }

type accum struct{ total float64 }

func (a *accum) add(x float64) { a.total += x }

func variadicSum(xs ...float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

func fixedSum(a, b float64) float64 { return a + b }

func mixed(scale float64, xs ...float64) float64 { return scale * variadicSum(xs...) }

//soferr:hotpath
func hotAddressOfLiteral() *point {
	return &point{1, 2} // want `hotpath takes the address of a composite literal`
}

//soferr:hotpath
func hotSliceLiteral(x float64) float64 {
	xs := []float64{x, 2 * x} // want `hotpath builds a slice literal`
	return xs[0]
}

//soferr:hotpath
func hotMapLiteral(x float64) float64 {
	m := map[string]float64{"x": x} // want `hotpath builds a map literal`
	return m["x"]
}

//soferr:hotpath
func hotValueLiteral(x float64) float64 {
	p := point{x, x} // a plain value literal lives on the stack
	return p.x
}

//soferr:hotpath
func hotArrayLiteral(x float64) float64 {
	xs := [2]float64{x, 2 * x} // arrays are values, not heap stores
	return xs[0]
}

//soferr:hotpath
func hotStringToBytes(s string) []byte {
	return []byte(s) // want `hotpath converts string to \[\]byte`
}

//soferr:hotpath
func hotBytesToString(b []byte) string {
	return string(b) // want `hotpath converts \[\]byte to string`
}

//soferr:hotpath
func hotStringToRunes(s string) []rune {
	return []rune(s) // want `hotpath converts string to \[\]rune`
}

//soferr:hotpath
func hotNumericConversion(x float64) int {
	return int(x) // scalar conversions do not allocate
}

//soferr:hotpath
func hotVariadicLoose(a, b float64) float64 {
	return variadicSum(a, b) // want `hotpath calls a variadic function with loose arguments`
}

//soferr:hotpath
func hotVariadicMixedLoose(a float64) float64 {
	return mixed(2, a, a) // want `hotpath calls a variadic function with loose arguments`
}

//soferr:hotpath
func hotVariadicSpread(xs []float64) float64 {
	return variadicSum(xs...) // spreading reuses the caller's slice
}

//soferr:hotpath
func hotVariadicEmpty() float64 {
	return variadicSum() // empty variadic part builds no slice
}

//soferr:hotpath
func hotFixedArity(a, b float64) float64 {
	return fixedSum(a, b)
}

//soferr:hotpath
func hotMethodValue(a *accum) func(float64) {
	return a.add // want `hotpath takes the method value a\.add`
}

//soferr:hotpath
func hotMethodCall(a *accum, x float64) {
	a.add(x) // direct call binds nothing
}

//soferr:hotpath
func hotAllowed(s string) []byte {
	//soferr:allow allocfree one-time header build; runs once per stream, not per trial
	return []byte(s)
}

func coldUnjustified() {
	/* want `soferr:allow allocfree needs a justification` */ //soferr:allow allocfree
}

//soferr:hotpath
func hotStaleAllow(a, b float64) float64 {
	/* want `soferr:allow allocfree suppresses no allocfree diagnostic` */ //soferr:allow allocfree the slice literal this excused is gone
	return fixedSum(a, b)
}

// cold is not annotated: nothing in it is checked.
func cold(s string) []byte {
	m := map[string]int{"n": len(s)}
	_ = m
	_ = &point{1, 2}
	_ = variadicSum(1, 2, 3)
	return []byte(s)
}
