// Package allocfree implements the soferrlint analyzer that closes
// the static half of the per-trial zero-alloc contract. The hotpath
// analyzer (PR 7) catches fmt calls, unpreallocated appends, interface
// boxing, and loop-variable captures; this analyzer flags the
// allocation-forcing constructs beyond those, inside every
// //soferr:hotpath function:
//
//   - composite literals that must live on the heap: &T{...} (the
//     address escapes the statement) and slice/map literals (backing
//     stores are heap allocations unless the compiler can prove
//     otherwise — in a hot loop, do not make it guess);
//   - string <-> []byte (and string -> []rune) conversions, each of
//     which copies its operand into a fresh allocation;
//   - calls of variadic functions that materialize an argument slice
//     (spreading an existing slice with ... is fine);
//   - method values (x.M used as a value, not called), which allocate
//     a bound-method closure.
//
// The compiler's own escape analysis remains the ground truth: the
// `soferrlint escape` driver (internal/lint/escape) diffs the
// -gcflags='-m -m' output attributed to hotpath functions against a
// committed baseline, so anything this pattern pass misses still
// fails the build. Escape hatch: //soferr:allow allocfree <why>.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/soferr/soferr/internal/lint/directive"
)

const name = "allocfree"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid allocation-forcing constructs (escaping literals, string<->[]byte, variadic materialization, method values) in //soferr:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := pass.ResultOf[directive.Analyzer].(*directive.Index)
	for _, a := range dirs.Unjustified(name) {
		pass.Reportf(a.Pos, "soferr:allow %s needs a justification (\"//soferr:allow %s <why>\")", name, name)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !dirs.Hotpath(fd) || fd.Body == nil {
			return
		}
		check(pass, dirs, fd)
	})
	dirs.ReportStale(name, pass.Reportf)
	return nil, nil
}

func check(pass *analysis.Pass, dirs *directive.Index, fd *ast.FuncDecl) {
	report := func(n ast.Node, format string, args ...interface{}) {
		if dirs.Allows(name, n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	// calledFuns collects every expression in call position, so method
	// values that are immediately invoked are not flagged.
	calledFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calledFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			checkAddressOfLiteral(pass, report, n)
		case *ast.CompositeLit:
			checkSliceMapLiteral(pass, report, n)
		case *ast.CallExpr:
			checkConversion(pass, report, n)
			checkVariadic(pass, report, n)
		case *ast.SelectorExpr:
			checkMethodValue(pass, report, calledFuns, n)
		}
		return true
	})
}

// checkAddressOfLiteral flags &T{...}: taking a composite literal's
// address forces it (and everything it references) toward the heap.
func checkAddressOfLiteral(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), u *ast.UnaryExpr) {
	if u.Op != token.AND {
		return
	}
	if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
		report(u, "hotpath takes the address of a composite literal; the literal escapes to the heap — hoist it out of the hot loop or reuse a preallocated value")
	}
}

// checkSliceMapLiteral flags slice and map composite literals: their
// backing stores are allocations the trial loop must not pay per call.
func checkSliceMapLiteral(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		report(lit, "hotpath builds a slice literal; the backing array allocates — preallocate it outside the hot loop")
	case *types.Map:
		report(lit, "hotpath builds a map literal; maps allocate — preallocate it outside the hot loop")
	}
}

// checkConversion flags string <-> []byte and string -> []rune
// conversions, each of which copies into a fresh allocation.
func checkConversion(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isString(dst) && isByteOrRuneSlice(src):
		report(call, "hotpath converts %s to string; the conversion copies into a fresh allocation", types.TypeString(src, types.RelativeTo(pass.Pkg)))
	case isByteOrRuneSlice(dst) && isString(src):
		report(call, "hotpath converts string to %s; the conversion copies into a fresh allocation", types.TypeString(dst, types.RelativeTo(pass.Pkg)))
	}
}

// checkVariadic flags calls of variadic functions that pass loose
// variadic arguments: the call materializes a fresh argument slice.
// Spreading an existing slice (f(xs...)) reuses the caller's storage.
func checkVariadic(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || !sig.Variadic() {
		return // builtins (append is hotpath's business) and non-variadic calls
	}
	if len(call.Args) < sig.Params().Len() {
		return // variadic part left empty: no slice is built
	}
	report(call, "hotpath calls a variadic function with loose arguments; the call materializes an argument slice — pass a preallocated slice with ... or add fixed-arity helpers")
}

// checkMethodValue flags method values: x.M referenced as a value
// allocates a closure binding x.
func checkMethodValue(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), calledFuns map[ast.Expr]bool, sel *ast.SelectorExpr) {
	if calledFuns[sel] {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	report(sel, "hotpath takes the method value %s.%s; binding the receiver allocates a closure — call it directly or hoist the bound value out of the hot path", types.ExprString(sel.X), sel.Sel.Name)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Byte, types.Rune: // aliases of Uint8 and Int32
		return true
	}
	return false
}
