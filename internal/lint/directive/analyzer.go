package directive

import (
	"reflect"

	"golang.org/x/tools/go/analysis"
)

// Analyzer parses the soferr directive grammar once per package and
// hands the index to the five contract analyzers through ResultOf. It
// reports nothing itself; grammar errors are reported by the analyzer
// each directive names (missing justifications) and by nondeterminism
// (unknown check names), so a typo cannot silently suppress anything.
var Analyzer = &analysis.Analyzer{
	Name:       "soferrdirectives",
	Doc:        "parse //soferr:deterministic, //soferr:hotpath, and //soferr:allow directives",
	ResultType: reflect.TypeOf((*Index)(nil)),
	Run: func(pass *analysis.Pass) (interface{}, error) {
		return Parse(pass.Fset, pass.Files), nil
	},
}
