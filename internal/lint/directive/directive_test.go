package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"github.com/soferr/soferr/internal/lint/directive"
)

const src = `// Package p is the directive-parsing fixture.
//
//soferr:deterministic
//soferr:contained
package p

//soferr:hotpath
func hot() {}

func cold() {}

//soferr:allow errcontract whole function is a legacy shim
func shim() {
	helper()
}

func lines() {
	helper() //soferr:allow ctxflow trailing with reason
	//soferr:allow nondeterminism standalone with reason
	helper()
	helper()
}

//soferr:allow hotpath
func bare() {}

func helper() {}
`

func TestParse(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := directive.Parse(fset, []*ast.File{f})

	if !idx.Deterministic() {
		t.Error("Deterministic() = false, want true")
	}
	if !idx.Contained() {
		t.Error("Contained() = false, want true")
	}

	funcs := make(map[string]*ast.FuncDecl)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			funcs[fd.Name.Name] = fd
		}
	}
	if !idx.Hotpath(funcs["hot"]) {
		t.Error("Hotpath(hot) = false, want true")
	}
	if idx.Hotpath(funcs["cold"]) {
		t.Error("Hotpath(cold) = true, want false")
	}

	// A doc-comment allow covers the whole function.
	shimCall := callsIn(funcs["shim"])[0]
	if !idx.Allows("errcontract", shimCall.Pos()) {
		t.Error("doc-comment allow does not cover the function body")
	}
	if idx.Allows("nondeterminism", shimCall.Pos()) {
		t.Error("doc-comment allow leaks to another check")
	}

	// A trailing allow covers its own line; a standalone allow covers
	// the next line and no further.
	calls := callsIn(funcs["lines"])
	if len(calls) != 3 {
		t.Fatalf("got %d calls in lines(), want 3", len(calls))
	}
	if !idx.Allows("ctxflow", calls[0].Pos()) {
		t.Error("trailing allow does not cover its own line")
	}
	if !idx.Allows("nondeterminism", calls[1].Pos()) {
		t.Error("standalone allow does not cover the next line")
	}
	if idx.Allows("nondeterminism", calls[2].Pos()) {
		t.Error("standalone allow leaks past the next line")
	}

	// A justification-less allow suppresses nothing and is reported.
	bareCall := funcs["bare"]
	if idx.Allows("hotpath", bareCall.Body.Pos()) {
		t.Error("bare allow suppresses despite missing justification")
	}
	unj := idx.Unjustified("hotpath")
	if len(unj) != 1 {
		t.Fatalf("Unjustified(hotpath) = %d entries, want 1", len(unj))
	}

	known := map[string]bool{"errcontract": true, "ctxflow": true, "nondeterminism": true, "hotpath": true}
	if bad := idx.UnknownChecks(known); len(bad) != 0 {
		t.Errorf("UnknownChecks = %v, want none", bad)
	}

	// Stale tracking: the ctxflow allow was consulted (and suppressed)
	// above, the errcontract allow too; nondeterminism was consulted on
	// its covered line. An allow never consulted — or consulted only at
	// positions outside its range — is stale.
	if st := idx.Stale("ctxflow"); len(st) != 0 {
		t.Errorf("Stale(ctxflow) = %d entries after a suppressing lookup, want 0", len(st))
	}
	// The hotpath allow on bare() is unjustified, so it is never stale
	// (it is reported as unjustified instead).
	if st := idx.Stale("hotpath"); len(st) != 0 {
		t.Errorf("Stale(hotpath) = %d entries, want 0 (unjustified allows are not stale)", len(st))
	}
}

func TestStale(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := directive.Parse(fset, []*ast.File{f})

	// No lookups at all: every justified allow is stale for its check.
	if st := idx.Stale("errcontract"); len(st) != 1 {
		t.Fatalf("Stale(errcontract) = %d entries before any lookup, want 1", len(st))
	}

	// A miss (position outside the range) does not consume the allow.
	if idx.Allows("errcontract", f.End()) {
		t.Error("Allows matched outside the directive's range")
	}
	if st := idx.Stale("errcontract"); len(st) != 1 {
		t.Fatalf("Stale(errcontract) = %d entries after a miss, want 1", len(st))
	}

	// A hit consumes it.
	var shim *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "shim" {
			shim = fd
		}
	}
	if !idx.Allows("errcontract", shim.Body.Pos()) {
		t.Fatal("Allows missed inside the function the doc-comment allow covers")
	}
	if st := idx.Stale("errcontract"); len(st) != 0 {
		t.Fatalf("Stale(errcontract) = %d entries after a hit, want 0", len(st))
	}
}

func callsIn(fd *ast.FuncDecl) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}
