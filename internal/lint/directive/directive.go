// Package directive parses the soferr annotation grammar shared by
// every analyzer in the soferrlint suite (see DESIGN.md, "Static
// contracts"):
//
//	//soferr:deterministic
//	    Package marker. Placed above (or inside the doc comment of)
//	    the package clause, it opts the whole package into the
//	    nondeterminism contract. The six core packages carry it; the
//	    analyzer also recognizes them by import path so deleting the
//	    marker does not silence the check.
//
//	//soferr:hotpath
//	    Function marker. Placed in a function's doc comment, it
//	    declares the function allocation-free per call and arms the
//	    hotpath analyzer over its body.
//
//	//soferr:contained
//	    Package marker. Placed above (or inside the doc comment of)
//	    the package clause, it opts the whole package into the
//	    panic-containment contract: every go statement must launch a
//	    recover-bearing goroutine (the gocontain analyzer). The
//	    serving and trial-loop packages carry it; the analyzer also
//	    recognizes them by import path.
//
//	//soferr:allow <check> <justification>
//	    Escape hatch. Suppresses diagnostics of analyzer <check> on
//	    the line the comment trails, on the statement the comment
//	    precedes, or — when placed in a function's doc comment — on
//	    the whole function. The justification is mandatory: an allow
//	    without one is itself a diagnostic from the named analyzer,
//	    and an allow that suppresses nothing is reported as stale.
//
// Like the //go: directives, soferr directives are comments whose text
// starts exactly with "soferr:" (no space after "//").
package directive

import (
	"go/ast"
	"go/token"
	"strings"
	"sync"
)

// CorePaths are the deterministic-core packages recognized by import
// path even without the //soferr:deterministic marker, so deleting the
// marker cannot silence the nondeterminism and floatprec checks.
var CorePaths = map[string]bool{
	"github.com/soferr/soferr":                     true,
	"github.com/soferr/soferr/internal/trace":      true,
	"github.com/soferr/soferr/internal/montecarlo": true,
	"github.com/soferr/soferr/internal/sweep":      true,
	"github.com/soferr/soferr/internal/xrand":      true,
	"github.com/soferr/soferr/internal/numeric":    true,
}

// ContainedPaths are the panic-containment packages recognized by
// import path even without the //soferr:contained marker: the tiers
// whose goroutines must never let a panic kill the process (see
// DESIGN.md, "Failure model").
var ContainedPaths = map[string]bool{
	"github.com/soferr/soferr/internal/server":     true,
	"github.com/soferr/soferr/internal/sweep":      true,
	"github.com/soferr/soferr/internal/montecarlo": true,
	"github.com/soferr/soferr/client":              true,
}

// Allow is one parsed //soferr:allow directive.
type Allow struct {
	// Check is the analyzer name the directive suppresses.
	Check string
	// Justification is the free-text reason; empty means the directive
	// is malformed and must be reported.
	Justification string
	// Pos is the position of the directive comment itself.
	Pos token.Pos
	// From and To bound the source range the suppression covers.
	From, To token.Pos
}

// Index holds the parsed directives of one file set pass, ready for
// suppression lookups.
type Index struct {
	fset   *token.FileSet
	allows []Allow
	// used marks, per allows entry, whether the allow suppressed at
	// least one diagnostic; an unused justified allow is stale. Guarded
	// by mu: one Index is shared by every analyzer of a package, and
	// drivers may run analyzers concurrently.
	used []bool
	mu   sync.Mutex
	// hotpath maps *ast.FuncDecl nodes annotated //soferr:hotpath.
	hotpath map[*ast.FuncDecl]bool
	// deterministic is set when any file marks the package
	// //soferr:deterministic.
	deterministic bool
	// contained is set when any file marks the package
	// //soferr:contained.
	contained bool
}

// Parse scans the files' comments and builds the directive index.
// Suppression ranges are resolved against the file's syntax: a trailing
// directive covers its own line, a standalone directive covers the
// following line, and a directive inside a function's doc comment
// covers the function.
func Parse(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{fset: fset, hotpath: make(map[*ast.FuncDecl]bool)}
	for _, f := range files {
		idx.parseFile(f)
	}
	return idx
}

func (idx *Index) parseFile(f *ast.File) {
	// Function doc comments: hotpath markers and function-wide allows.
	docOf := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if ok && fd.Doc != nil {
			docOf[fd.Doc] = fd
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//soferr:")
			if !ok {
				continue
			}
			switch {
			case text == "deterministic" || strings.HasPrefix(text, "deterministic "):
				if c.Pos() < f.Name.End() {
					idx.deterministic = true
				}
			case text == "contained" || strings.HasPrefix(text, "contained "):
				if c.Pos() < f.Name.End() {
					idx.contained = true
				}
			case text == "hotpath" || strings.HasPrefix(text, "hotpath "):
				if fd := docOf[cg]; fd != nil {
					idx.hotpath[fd] = true
				}
			case strings.HasPrefix(text, "allow"):
				idx.addAllow(f, cg, c, docOf[cg], strings.TrimPrefix(text, "allow"))
			}
		}
	}
}

func (idx *Index) addAllow(f *ast.File, cg *ast.CommentGroup, c *ast.Comment, fd *ast.FuncDecl, rest string) {
	fields := strings.Fields(rest)
	a := Allow{Pos: c.Pos()}
	if len(fields) > 0 {
		a.Check = fields[0]
		a.Justification = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	}
	switch {
	case fd != nil:
		// Doc-comment allow: the whole function.
		a.From, a.To = fd.Pos(), fd.End()
	default:
		// Line-level allow: the directive's own line (trailing comment)
		// plus the following line (standalone comment above a
		// statement).
		file := idx.fset.File(c.Pos())
		line := file.Line(c.Pos())
		a.From = file.LineStart(line)
		if line+2 <= file.LineCount() {
			a.To = file.LineStart(line+2) - 1
		} else {
			a.To = token.Pos(file.Base() + file.Size())
		}
	}
	idx.allows = append(idx.allows, a)
	idx.used = append(idx.used, false)
}

// Allows reports whether a diagnostic of the named check at pos is
// suppressed by a justified allow directive, and marks the suppressing
// allow used so Stale can report the ones that suppress nothing.
func (idx *Index) Allows(check string, pos token.Pos) bool {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	hit := false
	for i, a := range idx.allows {
		if a.Check == check && a.Justification != "" && a.From <= pos && pos <= a.To {
			idx.used[i] = true
			hit = true
		}
	}
	return hit
}

// Stale returns the justified allow directives for the named check
// that never suppressed a diagnostic. The analyzer owning the check
// calls it after its scan and reports each one, so the suppression
// inventory cannot rot as the code it excused is fixed.
func (idx *Index) Stale(check string) []Allow {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	var out []Allow
	for i, a := range idx.allows {
		if a.Check == check && a.Justification != "" && !idx.used[i] {
			out = append(out, a)
		}
	}
	return out
}

// Unjustified returns the allow directives for the named check that
// carry no justification; the analyzer owning the check reports them.
func (idx *Index) Unjustified(check string) []Allow {
	var out []Allow
	for _, a := range idx.allows {
		if a.Check == check && a.Justification == "" {
			out = append(out, a)
		}
	}
	return out
}

// ReportStale reports, through reportf (normally pass.Reportf), every
// justified allow of the named check that suppressed no diagnostic.
// Analyzers call it once, after their scan, so the report reflects the
// whole pass.
func (idx *Index) ReportStale(check string, reportf func(pos token.Pos, format string, args ...interface{})) {
	for _, a := range idx.Stale(check) {
		reportf(a.Pos, "soferr:allow %s suppresses no %s diagnostic; the code it excused is gone — remove the stale allow", check, check)
	}
}

// UnknownChecks returns allow directives naming none of the known
// checks (reported once, by the suite's first analyzer, so typos don't
// silently suppress nothing).
func (idx *Index) UnknownChecks(known map[string]bool) []Allow {
	var out []Allow
	for _, a := range idx.allows {
		if !known[a.Check] {
			out = append(out, a)
		}
	}
	return out
}

// Deterministic reports whether any file declared the package
// //soferr:deterministic.
func (idx *Index) Deterministic() bool { return idx.deterministic }

// Contained reports whether any file declared the package
// //soferr:contained.
func (idx *Index) Contained() bool { return idx.contained }

// Hotpath reports whether the function is annotated //soferr:hotpath.
func (idx *Index) Hotpath(fd *ast.FuncDecl) bool { return idx.hotpath[fd] }
