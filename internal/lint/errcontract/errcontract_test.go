package errcontract_test

import (
	"testing"

	"github.com/soferr/soferr/internal/lint/errcontract"
	"github.com/soferr/soferr/internal/lint/linttest"
)

func TestErrcontract(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), errcontract.Analyzer, "errc")
}
