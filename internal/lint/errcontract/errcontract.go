// Package errcontract implements the soferrlint analyzer enforcing
// the typed-error contract: errors crossing package boundaries are
// typed sentinels (package-level errors.New vars) or wrap one with
// %w, so callers branch with errors.Is/errors.As instead of matching
// message text. Two constructs break the contract and are flagged in
// non-test code:
//
//   - a naked errors.New(...) in a return statement — the error is a
//     fresh dynamic value no caller can test for; hoist it to a
//     package-level sentinel or wrap a sentinel with fmt.Errorf and
//     %w;
//   - string matching on err.Error() (strings.Contains/HasPrefix/
//     HasSuffix/EqualFold or ==/!= against a string) — message text
//     is not API.
//
// Escape hatch: //soferr:allow errcontract <why>.
package errcontract

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/soferr/soferr/internal/lint/directive"
)

const name = "errcontract"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid naked errors.New at return sites and string matching on err.Error() in non-test code",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Analyzer},
	Run:      run,
}

var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := pass.ResultOf[directive.Analyzer].(*directive.Index)
	for _, a := range dirs.Unjustified(name) {
		pass.Reportf(a.Pos, "soferr:allow %s needs a justification (\"//soferr:allow %s <why>\")", name, name)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	report := func(n ast.Node, format string, args ...interface{}) {
		if dirs.Allows(name, n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	inTest := false
	ins.Preorder([]ast.Node{
		(*ast.File)(nil),
		(*ast.ReturnStmt)(nil),
		(*ast.CallExpr)(nil),
		(*ast.BinaryExpr)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inTest = strings.HasSuffix(pass.Fset.File(n.Pos()).Name(), "_test.go")
		case *ast.ReturnStmt:
			if inTest {
				return
			}
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isErrorsNew(pass, call) {
					report(call, "naked errors.New at a return site; hoist it to a package-level sentinel or wrap one with fmt.Errorf and %%w")
				}
			}
		case *ast.CallExpr:
			if inTest {
				return
			}
			checkStringMatch(pass, report, n)
		case *ast.BinaryExpr:
			if inTest {
				return
			}
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			if isErrErrorCall(pass, n.X) || isErrErrorCall(pass, n.Y) {
				report(n, "comparing err.Error() text; match the sentinel with errors.Is instead — message text is not API")
			}
		}
	})
	dirs.ReportStale(name, pass.Reportf)
	return nil, nil
}

func isErrorsNew(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "errors" && fn.Name() == "New"
}

func checkStringMatch(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringMatchFuncs[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if isErrErrorCall(pass, arg) {
			report(call, "strings.%s on err.Error(); match the sentinel with errors.Is instead — message text is not API", fn.Name())
			return
		}
	}
}

// isErrErrorCall reports whether e is a call of the Error() method on
// a value of type error.
func isErrErrorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && types.AssignableTo(t, types.Universe.Lookup("error").Type())
}
