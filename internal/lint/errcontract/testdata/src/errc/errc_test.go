package errc

import (
	"errors"
	"strings"
)

// Test files are exempt from the errcontract checks: ad-hoc errors and
// message matching are fine inside tests.

func testOnlyNaked() error {
	return errors.New("errc: test-only")
}

func testOnlyMatch(err error) bool {
	return strings.Contains(err.Error(), "test-only")
}
