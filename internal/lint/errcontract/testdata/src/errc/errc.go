// Package errc seeds positive and negative cases for the errcontract
// analyzer: naked errors.New at return sites and message-text matching
// are diagnostics; sentinels, %w wrapping, and errors.Is pass.
package errc

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors of this package; callers branch with errors.Is.
var errBoom = errors.New("errc: boom")

func naked() error {
	return errors.New("errc: naked") // want `naked errors.New at a return site`
}

func sentinel() error {
	return errBoom
}

func wrapped(q string) error {
	return fmt.Errorf("errc: query %s: %w", q, errBoom)
}

func matchText(err error) bool {
	return strings.Contains(err.Error(), "boom") // want `strings.Contains on err.Error\(\)`
}

func matchPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "errc:") // want `strings.HasPrefix on err.Error\(\)`
}

func compareText(err error) bool {
	return err.Error() == "errc: boom" // want `comparing err.Error\(\) text`
}

func matchTyped(err error) bool {
	return errors.Is(err, errBoom)
}

func plainStrings(s string) bool {
	return strings.Contains(s, "boom")
}

func allowedNaked() error {
	//soferr:allow errcontract wire message pinned by an external protocol test
	return errors.New("errc: pinned")
}

func unjustified() error {
	/* want `soferr:allow errcontract needs a justification` */ //soferr:allow errcontract
	return errors.New("errc: pinned too")                       // want `naked errors.New at a return site`
}
