package floatprec_test

import (
	"testing"

	"github.com/soferr/soferr/internal/lint/floatprec"
	"github.com/soferr/soferr/internal/lint/linttest"
)

func TestFloatprec(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), floatprec.Analyzer, "fprec", "fphot")
}
