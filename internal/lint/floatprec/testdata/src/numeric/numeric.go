// Package numeric is a testdata stand-in for the repo's numeric
// toolkit, so the floatprec fixtures can exercise the
// numeric.ExpNeg/OneMinusExpNeg recognition by package name.
package numeric

import "math"

func ExpNeg(x float64) float64 { return math.Exp(-x) }

func OneMinusExpNeg(x float64) float64 { return -math.Expm1(-x) }

type KahanSum struct{ sum, c float64 }

func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

func (k *KahanSum) Sum() float64 { return k.sum + k.c }
